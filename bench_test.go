// Benchmarks regenerating each of the paper's tables and figures in
// testing.B form (one benchmark family per table/figure; the harebench
// command produces the full formatted reports). Datasets are the synthetic
// suite scaled down so `go test -bench=. -benchmem` completes quickly;
// absolute numbers are therefore smaller than the harness runs recorded in
// EXPERIMENTS.md, but the relative shapes are the same.
package hare_test

import (
	"fmt"
	"sync"
	"testing"

	"hare/internal/baseline/bt"
	"hare/internal/baseline/bts"
	"hare/internal/baseline/ews"
	"hare/internal/baseline/exact"
	"hare/internal/baseline/twoscent"
	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/gen"
	"hare/internal/motif"
	"hare/internal/stream"
	"hare/internal/temporal"
)

const benchDelta = 600

var (
	benchMu    sync.Mutex
	benchCache = map[string]*temporal.Graph{}
)

// benchGraph returns a cached scaled dataset.
func benchGraph(b *testing.B, name string, scale float64) *temporal.Graph {
	b.Helper()
	key := fmt.Sprintf("%s@%g", name, scale)
	benchMu.Lock()
	defer benchMu.Unlock()
	if g, ok := benchCache[key]; ok {
		return g
	}
	cfg, err := gen.DatasetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.Generate(gen.Scaled(cfg, scale))
	if err != nil {
		b.Fatal(err)
	}
	benchCache[key] = g
	return g
}

// --- Table II ---------------------------------------------------------------

func BenchmarkTable2Stats(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		temporal.ComputeStats(g, 20)
	}
}

// --- Table III: single-thread algorithm runtimes ----------------------------

func benchTable3(b *testing.B, name string, scale float64) {
	g := benchGraph(b, name, scale)
	b.Run("EX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.Count(g, benchDelta)
		}
	})
	b.Run("EWS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ews.EstimateAll(g, benchDelta, ews.Options{P: 0.05, Seed: 1})
		}
	})
	b.Run("FAST", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fast.Count(g, benchDelta)
		}
	})
	b.Run("BT-Pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bt.CountPairs(g, benchDelta)
		}
	})
	b.Run("BTS-Pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bts.EstimatePairs(g, benchDelta, bts.Options{Q: 0.3, Seed: 1})
		}
	})
	b.Run("FAST-Pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fast.CountStarPair(g, benchDelta)
		}
	})
	b.Run("2SCENT-Tri", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			twoscent.CountCycles(g, benchDelta)
		}
	})
	b.Run("FAST-Tri", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fast.CountTri(g, benchDelta)
		}
	})
}

func BenchmarkTable3CollegeMsg(b *testing.B)   { benchTable3(b, "collegemsg", 1) }
func BenchmarkTable3EmailEu(b *testing.B)      { benchTable3(b, "email-eu", 0.25) }
func BenchmarkTable3WikiTalk(b *testing.B)     { benchTable3(b, "wikitalk", 0.1) }
func BenchmarkTable3SuperUser(b *testing.B)    { benchTable3(b, "superuser", 0.1) }
func BenchmarkTable3MathOverflow(b *testing.B) { benchTable3(b, "mathoverflow", 0.2) }

// --- Fig. 9: per-node counting cost on a skewed graph -----------------------

func BenchmarkFig9PerNode(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.1)
	scratch := fast.NewScratch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		counts := &motif.Counts{TriMultiplicity: 3}
		for u := 0; u < g.NumNodes(); u++ {
			fast.CountStarPairNode(g, temporal.NodeID(u), benchDelta, counts, scratch)
			fast.CountTriNode(g, temporal.NodeID(u), benchDelta, &counts.Tri, false)
		}
	}
}

// --- Fig. 10: accuracy runs (FAST vs EX on the four accuracy datasets) ------

func BenchmarkFig10FAST(b *testing.B) {
	for _, name := range []string{"collegemsg", "superuser", "wikitalk", "stackoverflow"} {
		g := benchGraph(b, name, 0.05)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fast.Count(g, benchDelta)
			}
		})
	}
}

func BenchmarkFig10EX(b *testing.B) {
	for _, name := range []string{"collegemsg", "superuser", "wikitalk", "stackoverflow"} {
		g := benchGraph(b, name, 0.05)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exact.Count(g, benchDelta)
			}
		})
	}
}

// --- Fig. 11: thread scaling ------------------------------------------------

func BenchmarkFig11HARE(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.25)
	for _, th := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(threadName(th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.Count(g, benchDelta, engine.Options{Workers: th})
			}
		})
	}
}

func BenchmarkFig11EXParallel(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.25)
	for _, th := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(threadName(th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exact.CountParallel(g, benchDelta, th)
			}
		})
	}
}

func BenchmarkFig11HAREPair(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.25)
	for _, th := range []int{1, 4, 16} {
		b.Run(threadName(th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.CountStarPair(g, benchDelta, engine.Options{Workers: th})
			}
		})
	}
}

func BenchmarkFig11BTSPair(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.25)
	for _, th := range []int{1, 4, 16} {
		b.Run(threadName(th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bts.EstimatePairs(g, benchDelta, bts.Options{Q: 0.3, Seed: 1, Workers: th})
			}
		})
	}
}

// --- Fig. 12(a): δ sensitivity ----------------------------------------------

func BenchmarkFig12Delta(b *testing.B) {
	g := benchGraph(b, "superuser", 0.1)
	for _, d := range []temporal.Timestamp{7200, 14400, 21600, 28800} {
		b.Run(deltaName(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.Count(g, d, engine.Options{Workers: 16})
			}
		})
	}
}

func BenchmarkFig12DeltaEX(b *testing.B) {
	g := benchGraph(b, "superuser", 0.1)
	for _, d := range []temporal.Timestamp{7200, 28800} {
		b.Run(deltaName(d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exact.Count(g, d)
			}
		})
	}
}

// --- Fig. 12(b): degree-threshold ablation ----------------------------------

func BenchmarkFig12Thrd(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.25)
	st := temporal.ComputeStats(g, 20)
	cases := []struct {
		name string
		opts engine.Options
	}{
		{"static-no-thrd", engine.Options{Workers: 16, Schedule: engine.ScheduleStatic, DegreeThreshold: -1}},
		{"dynamic-no-thrd", engine.Options{Workers: 16, DegreeThreshold: -1}},
		{"thrd-10pct", engine.Options{Workers: 16, DegreeThreshold: st.MaxDegree / 10}},
		{"thrd-auto", engine.Options{Workers: 16}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.Count(g, benchDelta, c.opts)
			}
		})
	}
}

// --- Streaming ingest throughput (edges/sec vs workers) ---------------------

// benchStreamEdges returns a power-law edge stream in time order.
func benchStreamEdges(b *testing.B, name string, scale float64) []temporal.Edge {
	b.Helper()
	return benchGraph(b, name, scale).Edges()
}

func benchStreamIngest(b *testing.B, mode stream.Mode) {
	edges := benchStreamEdges(b, "wikitalk", 0.25)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(threadName(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := stream.NewCounter(stream.Options{
					Delta: benchDelta, Mode: mode, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				for lo := 0; lo < len(edges); lo += 8192 {
					hi := min(lo+8192, len(edges))
					if err := c.AddBatch(edges[lo:hi]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkStreamIngest measures the parallel AddBatch path: edges/sec of
// cumulative online counting as the worker count grows.
func BenchmarkStreamIngest(b *testing.B) { benchStreamIngest(b, stream.Cumulative) }

// BenchmarkStreamIngestSliding measures the same ingest with sliding-window
// retirement enabled (roughly double the per-edge scan work).
func BenchmarkStreamIngestSliding(b *testing.B) { benchStreamIngest(b, stream.Sliding) }

// BenchmarkStreamIngestSequential is the one-edge-at-a-time baseline the
// batched path is measured against.
func BenchmarkStreamIngestSequential(b *testing.B) {
	edges := benchStreamEdges(b, "wikitalk", 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := stream.New(benchDelta)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range edges {
			if err := c.Add(e.From, e.To, e.Time); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func threadName(th int) string {
	return "threads-" + itoa(th)
}

func deltaName(d temporal.Timestamp) string {
	return "delta-" + itoa(int(d))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
