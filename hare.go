// Package hare is a scalable exact counter for δ-temporal motifs in large
// temporal graphs, reproducing "Scalable Motif Counting for Large-scale
// Temporal Graphs" (Gao et al., ICDE 2022).
//
// A temporal graph is a multiset of directed timestamped edges. Given a time
// window δ, hare exactly counts the instances of all 36 2-/3-node 3-edge
// δ-temporal motifs (the M11..M66 grid of Paranjape et al.) using the FAST
// algorithms and, optionally, the HARE hierarchical parallel framework:
//
//	g, err := hare.LoadFile("edges.txt", hare.LoadOptions{})
//	...
//	res, err := hare.Count(g, 600, hare.WithWorkers(8))
//	fmt.Println(res.Matrix.At(hare.MustLabel("M26"))) // temporal cycles
//
// The package is pure Go (stdlib only) and deterministic: ties between equal
// timestamps are broken by input order, identically in every algorithm.
package hare

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Re-exported core types. Aliases keep the public surface in one import
// path while the implementation lives in internal packages.
type (
	// Graph is an immutable directed temporal multigraph.
	Graph = temporal.Graph
	// Builder accumulates edges and builds a Graph.
	Builder = temporal.Builder
	// Edge is a directed timestamped edge.
	Edge = temporal.Edge
	// NodeID identifies a node (dense non-negative integers).
	NodeID = temporal.NodeID
	// Timestamp is an edge time in integer units (conventionally seconds).
	Timestamp = temporal.Timestamp
	// HalfEdge is an edge viewed from one endpoint (time, neighbor, direction).
	HalfEdge = temporal.HalfEdge
	// Seq is a columnar view of a chronologically ordered half-edge sequence,
	// as returned by Graph.Seq and Graph.Between.
	Seq = temporal.Seq
	// LoadOptions controls edge-list parsing.
	LoadOptions = temporal.LoadOptions
	// Stats summarises a graph (Table II columns).
	Stats = temporal.Stats
	// Matrix holds per-motif counts in the paper's 6×6 grid.
	Matrix = motif.Matrix
	// Label names a motif cell, e.g. Label{Row:2, Col:6} = M26.
	Label = motif.Label
	// Category is the motif topology class (pair, star, triangle).
	Category = motif.Category
)

// Motif category constants.
const (
	CategoryPair = motif.CategoryPair
	CategoryStar = motif.CategoryStar
	CategoryTri  = motif.CategoryTri
)

// NewBuilder returns a Builder with capacity for n edges.
func NewBuilder(n int) *Builder { return temporal.NewBuilder(n) }

// FromEdges builds a Graph from an edge slice (self-loops are dropped).
func FromEdges(edges []Edge) *Graph { return temporal.FromEdges(edges) }

// LoadFile reads a graph file: ".hare" paths load as binary snapshots
// (mmapped, zero-parse — see LoadSnapshot), everything else as a
// whitespace-separated "u v t" edge list (gzip transparent). Text loading
// is parallel by default — plain files are memory-mapped and parsed in
// newline-aligned chunks, ".gz" files pipeline decompression with
// parsing — and bit-identical to the sequential loader; see
// LoadOptions.Workers.
func LoadFile(path string, opts LoadOptions) (*Graph, error) {
	return temporal.LoadFile(path, opts)
}

// ReadEdgeList parses an edge list from a reader (parallel chunked parsing
// per LoadOptions.Workers).
func ReadEdgeList(r io.Reader, opts LoadOptions) (*Graph, error) {
	return temporal.ReadEdgeList(r, opts)
}

// SaveFile writes a graph to path: ".hare" (and ".hare.gz") paths save the
// binary snapshot format, everything else an edge list (gzip when the path
// ends in .gz).
func SaveFile(path string, g *Graph) error { return temporal.SaveFile(path, g) }

// Snapshot format errors, re-exported for callers classifying a failed
// LoadSnapshot/ReadSnapshot with errors.Is. A failed snapshot load always
// matches one of these or *SnapshotVersionError — never an untyped error —
// and never yields a partially loaded graph.
var (
	// ErrSnapshotMagic: the file does not start with the .hare magic.
	ErrSnapshotMagic = temporal.ErrSnapshotMagic
	// ErrSnapshotTruncated: the file ends before the canonical layout does.
	ErrSnapshotTruncated = temporal.ErrSnapshotTruncated
	// ErrSnapshotChecksum: a header or section checksum mismatched.
	ErrSnapshotChecksum = temporal.ErrSnapshotChecksum
	// ErrSnapshotMalformed: structurally invalid contents (bad section
	// table, implausible counts, or CSR invariants that do not hold).
	ErrSnapshotMalformed = temporal.ErrSnapshotMalformed
)

// SnapshotVersionError reports a snapshot written by a newer format
// version than this binary supports (match with errors.As; callers
// typically fall back to a text load — see FileLoader).
type SnapshotVersionError = temporal.SnapshotVersionError

// SaveSnapshot writes g to path in the versioned binary .hare snapshot
// format (docs/FORMAT.md): the graph's columnar CSR laid out section by
// section, little-endian, checksummed, and 8-byte aligned so LoadSnapshot
// can mmap it back without parsing. Output is deterministic — equal graphs
// produce bit-identical files.
func SaveSnapshot(path string, g *Graph) error { return temporal.SaveSnapshot(path, g) }

// LoadSnapshot reads a .hare snapshot into a read-only Graph. On
// little-endian 64-bit platforms with mmap support the columns alias the
// file mapping directly — zero-copy, zero-parse, page-cache shared across
// processes — and the mapping is released when the Graph is garbage
// collected; elsewhere the columns are read into freshly allocated slices.
// Every checksum and structural invariant is verified before the Graph is
// returned: corrupt or truncated files yield a typed error (see
// ErrSnapshotMagic and friends), never a crash or a silently wrong graph.
func LoadSnapshot(path string) (*Graph, error) { return temporal.LoadSnapshot(path) }

// WriteSnapshot writes g's snapshot bytes to w (SaveSnapshot's streaming
// form).
func WriteSnapshot(w io.Writer, g *Graph) error { return temporal.WriteSnapshot(w, g) }

// ReadSnapshot reads a snapshot from r into an owned (non-mmapped) Graph,
// with the same total validation as LoadSnapshot.
func ReadSnapshot(r io.Reader) (*Graph, error) { return temporal.ReadSnapshot(r) }

// ComputeStats returns summary statistics (topK bounds the top-degree list).
func ComputeStats(g *Graph, topK int) Stats { return temporal.ComputeStats(g, topK) }

// ParseLabel parses a motif name like "M26".
func ParseLabel(s string) (Label, error) { return motif.ParseLabel(s) }

// MustLabel is ParseLabel for known-good literals; it panics on error.
func MustLabel(s string) Label {
	l, err := motif.ParseLabel(s)
	if err != nil {
		panic(err)
	}
	return l
}

// AllLabels returns the 36 motif labels in grid order.
func AllLabels() []Label { return motif.AllLabels() }

// Result is the outcome of a counting run.
type Result struct {
	// Matrix holds the exact per-motif instance counts.
	Matrix Matrix
	// Elapsed is the wall-clock counting time (excluding graph loading).
	Elapsed time.Duration
	// Workers is the number of worker goroutines used.
	Workers int
	// DegreeThreshold is the effective thrd the HARE engine applied: the
	// WithDegreeThreshold value when given, otherwise the auto-derived
	// top-20 heuristic. 0 when the sequential path ran or the graph was too
	// small for an intra-node stage; negative when it was disabled.
	DegreeThreshold int
}

// Option configures Count.
type Option func(*config)

type config struct {
	workers  int
	thrd     int
	only     motif.Category
	hasOnly  bool
	schedule engine.Schedule
}

// WithWorkers sets the number of worker goroutines. 0 (default) selects
// GOMAXPROCS; 1 forces the sequential FAST algorithms (which use the
// center-removal triangle optimisation).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithDegreeThreshold sets HARE's degree threshold thrd explicitly. The
// default derives it from the top-20 node degrees; a negative value disables
// intra-node parallelism.
func WithDegreeThreshold(t int) Option { return func(c *config) { c.thrd = t } }

// WithOnly restricts counting to one motif category (pair and star motifs
// are always counted together — they share Algorithm 1 — so CategoryPair and
// CategoryStar are equivalent here, and the non-requested categories are
// simply zero in the result).
func WithOnly(cat Category) Option {
	return func(c *config) { c.only, c.hasOnly = cat, true }
}

// WithStaticSchedule switches HARE's inter-node stage to static node
// assignment (the paper's "without thrd" ablation uses this mode).
func WithStaticSchedule() Option {
	return func(c *config) { c.schedule = engine.ScheduleStatic }
}

// Count exactly counts all δ-temporal motif instances in g.
func Count(g *Graph, delta Timestamp, opts ...Option) (Result, error) {
	if g == nil {
		return Result{}, fmt.Errorf("hare: nil graph")
	}
	if delta < 0 {
		return Result{}, fmt.Errorf("hare: negative δ (%d)", delta)
	}
	var c config
	for _, o := range opts {
		o(&c)
	}
	workers := c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	doStar := !c.hasOnly || c.only == CategoryPair || c.only == CategoryStar
	doTri := !c.hasOnly || c.only == CategoryTri

	start := time.Now()
	var res Result
	if workers == 1 && c.schedule == engine.ScheduleDynamic && c.thrd == 0 {
		counts := sequential(g, delta, doStar, doTri)
		res.Matrix = counts.ToMatrix()
	} else {
		eo := engine.Options{Workers: workers, DegreeThreshold: c.thrd, Schedule: c.schedule}
		// Resolve the auto heuristic once, up front: the run uses the
		// resolved value directly (no second O(n) degree scan) and the
		// Result reports the threshold actually applied rather than the
		// unset option.
		eff := engine.EffectiveDegreeThreshold(g, eo)
		if eff != 0 {
			eo.DegreeThreshold = eff
		}
		var counts *motif.Counts
		switch {
		case doStar && doTri:
			counts = engine.Count(g, delta, eo)
		case doStar:
			counts = engine.CountStarPair(g, delta, eo)
		default:
			counts = engine.CountTri(g, delta, eo)
		}
		res.Matrix = counts.ToMatrix()
		res.DegreeThreshold = eff
	}
	res.Elapsed = time.Since(start)
	res.Workers = workers
	if !c.hasOnly {
		return res, nil
	}
	// Zero out non-requested categories for the restricted modes.
	for _, l := range motif.AllLabels() {
		keep := l.Category() == c.only ||
			(c.only == CategoryPair && l.Category() == CategoryStar) ||
			(c.only == CategoryStar && l.Category() == CategoryPair)
		if !keep {
			res.Matrix.Set(l, 0)
		}
	}
	return res, nil
}

func sequential(g *Graph, delta Timestamp, doStar, doTri bool) *motif.Counts {
	counts := &motif.Counts{TriMultiplicity: 1}
	s := fast.NewScratch()
	for u := 0; u < g.NumNodes(); u++ {
		if doStar {
			fast.CountStarPairNode(g, NodeID(u), delta, counts, s)
		}
		if doTri {
			fast.CountTriNode(g, NodeID(u), delta, &counts.Tri, true)
		}
	}
	return counts
}

// CountNode returns the motif counts in which node u participates as the
// counting center: stars centered at u, pairs incident to u, and every
// triangle containing u. Useful as a structural feature vector for one node.
func CountNode(g *Graph, u NodeID, delta Timestamp) (Matrix, error) {
	if g == nil {
		return Matrix{}, fmt.Errorf("hare: nil graph")
	}
	if u < 0 || int(u) >= g.NumNodes() {
		return Matrix{}, fmt.Errorf("hare: node %d out of range [0,%d)", u, g.NumNodes())
	}
	return fast.NodeProfile(g, u, delta), nil
}
