package hare

import (
	"hare/internal/higher"
	"hare/internal/temporal"
)

// Star4Counter holds counts of 4-node, 3-edge δ-temporal star motifs — the
// first step of the paper's higher-order future-work direction — indexed by
// the direction pattern of the chronologically ordered edges relative to
// the center (8 non-isomorphic motifs).
type Star4Counter = higher.Star4Counter

// Star4Options configures the higher-order counters' parallel scheduling
// (workers, degree threshold, chunking); counts are exact at any setting.
type Star4Options = higher.Options

// higherOptions maps the shared Option list onto the higher-order
// counters' scheduling knobs. Only WithWorkers and WithDegreeThreshold
// apply; the remaining options configure Count-specific behaviour and are
// ignored here.
func higherOptions(opts []Option) higher.Options {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return higher.Options{Workers: c.workers, DegreeThreshold: c.thrd}
}

// CountStar4 exactly counts the 4-node, 3-edge star motifs in g: a center
// node with three in-window edges to three distinct neighbors. It derives
// the counts from the same counter family as Count (see internal/higher for
// the decomposition identity) and shares its exactness guarantees. Counting
// parallelises over centers with the same worker/scheduling machinery as
// Count — WithWorkers and WithDegreeThreshold apply (default: all CPUs,
// automatic threshold); counts are bit-identical at any setting.
func CountStar4(g *Graph, delta Timestamp, opts ...Option) (Star4Counter, error) {
	if g == nil {
		return Star4Counter{}, errNilGraph
	}
	if delta < 0 {
		return Star4Counter{}, errNegativeDelta(delta)
	}
	return higher.CountStar4(g, delta, higherOptions(opts)), nil
}

var errNilGraph = temporalError("nil graph")

type temporalError string

func (e temporalError) Error() string { return "hare: " + string(e) }

func errNegativeDelta(d temporal.Timestamp) error {
	return temporalError("negative δ")
}

// Path4Counter holds counts of the 24 non-isomorphic 4-node, 3-edge
// δ-temporal path motifs.
type Path4Counter = higher.PathCounter

// Path4Label identifies one 4-node path motif.
type Path4Label = higher.PathLabel

// CountPath4 exactly counts the 4-node, 3-edge path motifs in g (edges
// a–b, b–c, c–d over four distinct nodes within δ). Together with
// CountStar4 this covers every connected 4-node 3-edge motif. Counting
// parallelises over middle edges — WithWorkers and WithDegreeThreshold
// apply as in CountStar4.
func CountPath4(g *Graph, delta Timestamp, opts ...Option) (Path4Counter, error) {
	if g == nil {
		return Path4Counter{}, errNilGraph
	}
	if delta < 0 {
		return Path4Counter{}, errNegativeDelta(delta)
	}
	return higher.CountPath4(g, delta, higherOptions(opts)), nil
}
