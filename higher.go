package hare

import (
	"hare/internal/higher"
	"hare/internal/temporal"
)

// Star4Counter holds counts of 4-node, 3-edge δ-temporal star motifs — the
// first step of the paper's higher-order future-work direction — indexed by
// the direction pattern of the chronologically ordered edges relative to
// the center (8 non-isomorphic motifs).
type Star4Counter = higher.Star4Counter

// CountStar4 exactly counts the 4-node, 3-edge star motifs in g: a center
// node with three in-window edges to three distinct neighbors. It derives
// the counts from the same counter family as Count (see
// internal/higher for the decomposition identity) and shares its exactness
// guarantees.
func CountStar4(g *Graph, delta Timestamp) (Star4Counter, error) {
	if g == nil {
		return Star4Counter{}, errNilGraph
	}
	if delta < 0 {
		return Star4Counter{}, errNegativeDelta(delta)
	}
	return higher.Count(g, delta), nil
}

var errNilGraph = temporalError("nil graph")

type temporalError string

func (e temporalError) Error() string { return "hare: " + string(e) }

func errNegativeDelta(d temporal.Timestamp) error {
	return temporalError("negative δ")
}

// Path4Counter holds counts of the 24 non-isomorphic 4-node, 3-edge
// δ-temporal path motifs.
type Path4Counter = higher.PathCounter

// Path4Label identifies one 4-node path motif.
type Path4Label = higher.PathLabel

// CountPath4 exactly counts the 4-node, 3-edge path motifs in g (edges
// a–b, b–c, c–d over four distinct nodes within δ). Together with
// CountStar4 this covers every connected 4-node 3-edge motif.
func CountPath4(g *Graph, delta Timestamp) (Path4Counter, error) {
	if g == nil {
		return Path4Counter{}, errNilGraph
	}
	if delta < 0 {
		return Path4Counter{}, errNegativeDelta(delta)
	}
	return higher.CountPaths(g, delta), nil
}
