// Ablation benchmarks for the design choices called out in DESIGN.md: the
// sequential triangle dedup trick, scratch reuse in the FAST-Star hot loop,
// HARE's dynamic chunk size, the per-pair index behind FAST-Tri, and the
// incremental-vs-batch counting trade-off.
package hare_test

import (
	"sort"
	"testing"

	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/stream"
	"hare/internal/temporal"
)

// Ablation: paper Algorithm 2's center-removal avoids counting each triangle
// three times in sequential mode; recount mode trades that for dependency
// freedom. The inner E(v,w) scans drop 3×, though the outer i/j loops still
// run per center, so the end-to-end gap is smaller (~1.25× measured here).
func BenchmarkAblationTriDedup(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.1)
	b.Run("dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var tri motif.TriCounter
			for u := 0; u < g.NumNodes(); u++ {
				fast.CountTriNode(g, temporal.NodeID(u), benchDelta, &tri, true)
			}
		}
	})
	b.Run("recount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var tri motif.TriCounter
			for u := 0; u < g.NumNodes(); u++ {
				fast.CountTriNode(g, temporal.NodeID(u), benchDelta, &tri, false)
			}
		}
	})
}

// Ablation: reusing the m_in/m_out scratch maps across centers versus fresh
// maps per center. Measured: a wash at synthetic scales — Go's small-map
// allocation is cheap and clear() costs about as much; kept for the
// worst-case hub sequences where maps grow large.
func BenchmarkAblationScratchReuse(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.1)
	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			counts := &motif.Counts{TriMultiplicity: 1}
			s := fast.NewScratch()
			for u := 0; u < g.NumNodes(); u++ {
				fast.CountStarPairNode(g, temporal.NodeID(u), benchDelta, counts, s)
			}
		}
	})
	b.Run("fresh-per-center", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			counts := &motif.Counts{TriMultiplicity: 1}
			for u := 0; u < g.NumNodes(); u++ {
				fast.CountStarPairNode(g, temporal.NodeID(u), benchDelta, counts, fast.NewScratch())
			}
		}
	})
}

// Ablation: HARE's dynamic-scheduling chunk size. Tiny chunks pay cursor
// contention; huge chunks re-create load imbalance.
func BenchmarkAblationChunkSize(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.25)
	for _, chunk := range []int{1, 16, 64, 512, 8192} {
		b.Run("chunk-"+itoa(chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.Count(g, benchDelta, engine.Options{Workers: 16, ChunkSize: chunk})
			}
		})
	}
}

// Ablation: FAST-Tri's per-pair index E(v,w) versus re-filtering the
// neighbor's full adjacency (what BT/2SCENT-style scans do). The naive
// variant is implemented against the public Graph API and validated against
// the indexed counts before timing.
func BenchmarkAblationPairIndex(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.1)
	var want motif.TriCounter
	for u := 0; u < g.NumNodes(); u++ {
		fast.CountTriNode(g, temporal.NodeID(u), benchDelta, &want, true)
	}
	var got motif.TriCounter
	countTriNoIndex(g, benchDelta, &got)
	if want != got {
		b.Fatal("naive triangle variant disagrees with indexed FAST-Tri")
	}
	b.Run("pair-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var tri motif.TriCounter
			for u := 0; u < g.NumNodes(); u++ {
				fast.CountTriNode(g, temporal.NodeID(u), benchDelta, &tri, true)
			}
		}
	})
	b.Run("adjacency-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var tri motif.TriCounter
			countTriNoIndex(g, benchDelta, &tri)
		}
	})
}

// countTriNoIndex replicates FAST-Tri's dedup traversal but resolves E(v,w)
// by filtering v's full sequence instead of using the per-pair index.
func countTriNoIndex(g *temporal.Graph, delta temporal.Timestamp, tri *motif.TriCounter) {
	for ui := 0; ui < g.NumNodes(); ui++ {
		u := temporal.NodeID(ui)
		su := g.Seq(u)
		for i := 0; i < su.Len()-1; i++ {
			ei := su.At(i)
			if ei.Other < u {
				continue
			}
			di := motif.Dir(ei.Dir())
			for j := i + 1; j < su.Len(); j++ {
				ej := su.At(j)
				if ej.Time-ei.Time > delta {
					break
				}
				if ej.Other == ei.Other || ej.Other < u {
					continue
				}
				dj := motif.Dir(ej.Dir())
				sv := g.Seq(ei.Other)
				lo := sort.Search(sv.Len(), func(k int) bool { return sv.Time[k] >= ej.Time-delta })
				for k := lo; k < sv.Len(); k++ {
					ek := sv.At(k)
					if ek.Time > ei.Time+delta {
						break
					}
					if ek.Other != ej.Other {
						continue
					}
					dk := motif.Dir(ek.Dir())
					switch {
					case ek.ID < ei.ID:
						tri[motif.TriIndex(motif.TriI, di, dj, dk)]++
					case ek.ID == ei.ID:
						// the center-incident edge itself: skip
					case ek.ID < ej.ID:
						tri[motif.TriIndex(motif.TriII, di, dj, dk)]++
					case ek.ID > ej.ID:
						tri[motif.TriIndex(motif.TriIII, di, dj, dk)]++
					}
				}
			}
		}
	}
}

// Ablation: one incremental pass (stream) versus a batch recount per
// checkpoint — the trade-off that motivates the online counter for live
// systems.
func BenchmarkAblationStreamVsBatch(b *testing.B) {
	g := benchGraph(b, "sms-a", 0.25)
	edges := g.Edges()
	const checkpoints = 8
	b.Run("stream-online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, _ := stream.New(benchDelta)
			step := len(edges)/checkpoints + 1
			for k, e := range edges {
				_ = c.Add(e.From, e.To, e.Time)
				if k%step == step-1 {
					_ = c.Matrix()
				}
			}
		}
	})
	b.Run("batch-recount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			step := len(edges)/checkpoints + 1
			for k := step - 1; k < len(edges); k += step {
				sub := temporal.FromEdges(edges[:k+1])
				fast.Count(sub, benchDelta)
			}
		}
	})
}

// Extension: higher-order 4-node star counting costs one extra O(d) pass per
// center on top of FAST-Star.
func BenchmarkAblationStar4(b *testing.B) {
	g := benchGraph(b, "wikitalk", 0.1)
	b.Run("fast-star-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fast.CountStarPair(g, benchDelta)
		}
	})
	b.Run("with-star4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			higher.Count(g, benchDelta)
		}
	})
}
