// Package motif defines the taxonomy of 2- and 3-node, 3-edge δ-temporal
// motifs from Paranjape et al. (WSDM'17) as used by Gao et al. (ICDE 2022):
// the 36-label grid M11..M66, the pair/star/triangle categorisation, the
// compact triple and quadruple counters (Pair[2][2][2], Star[3][2][2][2],
// Tri[3][2][2][2]) and the isomorphism merges that map counter cells onto
// motif labels.
package motif

import "fmt"

// Dir is an edge direction relative to a reference node: In points toward
// it, Out points away (the paper's "in"/"o").
type Dir uint8

const (
	In  Dir = 0
	Out Dir = 1
)

// String returns the paper's notation for the direction.
func (d Dir) String() string {
	if d == Out {
		return "o"
	}
	return "in"
}

// Flip returns the direction seen from the other endpoint.
func (d Dir) Flip() Dir { return d ^ 1 }

// DirOf maps a half-edge outward flag to its direction index — the one
// conversion shared by the batch and stream counting kernels.
func DirOf(out bool) Dir {
	if out {
		return Out
	}
	return In
}

// StarType is the position of the isolated edge in a star motif (paper
// Fig. 3): Star-I isolated first, Star-II isolated second, Star-III isolated
// third.
type StarType uint8

const (
	StarI StarType = iota
	StarII
	StarIII
)

func (t StarType) String() string {
	switch t {
	case StarI:
		return "Star-I"
	case StarII:
		return "Star-II"
	case StarIII:
		return "Star-III"
	}
	return fmt.Sprintf("StarType(%d)", uint8(t))
}

// TriType is the temporal position of the non-center edge e_k relative to the
// two center-incident edges e_i < e_j (paper Fig. 7): Triangle-I before both,
// Triangle-II between, Triangle-III after both.
type TriType uint8

const (
	TriI TriType = iota
	TriII
	TriIII
)

func (t TriType) String() string {
	switch t {
	case TriI:
		return "Triangle-I"
	case TriII:
		return "Triangle-II"
	case TriIII:
		return "Triangle-III"
	}
	return fmt.Sprintf("TriType(%d)", uint8(t))
}

// Category partitions the 36 motifs by topology.
type Category uint8

const (
	CategoryPair Category = iota // 2 nodes, 3 edges (4 motifs)
	CategoryStar                 // 3 nodes, star structure (24 motifs)
	CategoryTri                  // 3 nodes, triangle structure (8 motifs)
)

func (c Category) String() string {
	switch c {
	case CategoryPair:
		return "pair"
	case CategoryStar:
		return "star"
	case CategoryTri:
		return "triangle"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Label names a motif cell Mij of the 6×6 grid; Row and Col are 1-based.
type Label struct {
	Row, Col int
}

// String renders the paper's Mij notation, e.g. "M24".
func (l Label) String() string { return fmt.Sprintf("M%d%d", l.Row, l.Col) }

// Valid reports whether the label addresses a grid cell.
func (l Label) Valid() bool {
	return l.Row >= 1 && l.Row <= 6 && l.Col >= 1 && l.Col <= 6
}

// Category returns the topological category of the labelled motif:
// rows 5-6 × cols 5-6 are pairs, rows 1-4 × cols 5-6 are triangles, the
// remaining 24 cells (cols 1-4) are stars.
func (l Label) Category() Category {
	switch {
	case l.Col <= 4:
		return CategoryStar
	case l.Row <= 4:
		return CategoryTri
	default:
		return CategoryPair
	}
}

// ParseLabel parses "Mij" (case-insensitive, e.g. "m24").
func ParseLabel(s string) (Label, error) {
	if len(s) != 3 || (s[0] != 'M' && s[0] != 'm') {
		return Label{}, fmt.Errorf("motif: bad label %q (want Mij)", s)
	}
	r, c := int(s[1]-'0'), int(s[2]-'0')
	l := Label{Row: r, Col: c}
	if !l.Valid() {
		return Label{}, fmt.Errorf("motif: label %q out of range", s)
	}
	return l, nil
}

// AllLabels returns the 36 labels in row-major order.
func AllLabels() []Label {
	out := make([]Label, 0, 36)
	for r := 1; r <= 6; r++ {
		for c := 1; c <= 6; c++ {
			out = append(out, Label{Row: r, Col: c})
		}
	}
	return out
}

// PairLabels returns the 4 pair motif labels.
func PairLabels() []Label {
	return []Label{{5, 5}, {5, 6}, {6, 5}, {6, 6}}
}

// StarLabels returns the 24 star motif labels in row-major order.
func StarLabels() []Label {
	out := make([]Label, 0, 24)
	for r := 1; r <= 6; r++ {
		for c := 1; c <= 4; c++ {
			out = append(out, Label{Row: r, Col: c})
		}
	}
	return out
}

// TriLabels returns the 8 triangle motif labels in row-major order.
func TriLabels() []Label {
	out := make([]Label, 0, 8)
	for r := 1; r <= 4; r++ {
		for c := 5; c <= 6; c++ {
			out = append(out, Label{Row: r, Col: c})
		}
	}
	return out
}
