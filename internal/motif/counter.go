package motif

import "fmt"

// PairCounter is the paper's triple counter Pair[dir1, dir2, dir3] for pair
// temporal motifs: 8 cells indexed by the directions of the three edges
// relative to the counting center. Each of the 4 non-isomorphic pair motifs
// occupies two complementary cells (the same instance seen from either
// endpoint), and each single cell equals the exact instance count.
type PairCounter [8]uint64

// PairIndex flattens (d1,d2,d3) into a PairCounter index.
func PairIndex(d1, d2, d3 Dir) int { return int(d1)<<2 | int(d2)<<1 | int(d3) }

// PairDirs inverts PairIndex.
func PairDirs(i int) (d1, d2, d3 Dir) {
	return Dir(i >> 2 & 1), Dir(i >> 1 & 1), Dir(i & 1)
}

// At returns the cell for the given direction pattern.
func (c *PairCounter) At(d1, d2, d3 Dir) uint64 { return c[PairIndex(d1, d2, d3)] }

// Add accumulates another counter into c.
func (c *PairCounter) Add(o *PairCounter) {
	for i := range c {
		c[i] += o[i]
	}
}

// Sub removes another counter from c. Every cell of o must be <= the
// matching cell of c (o is a sub-multiset of the instances in c, e.g. the
// expired instances of a sliding window); violating that is a programming
// error and panics rather than silently wrapping around.
func (c *PairCounter) Sub(o *PairCounter) {
	for i := range c {
		if o[i] > c[i] {
			panic(fmt.Sprintf("motif: pair cell %d underflow (%d - %d)", i, c[i], o[i]))
		}
		c[i] -= o[i]
	}
}

// Total returns the sum over all cells (twice the number of pair instances,
// since each instance is recorded from both endpoints).
func (c *PairCounter) Total() uint64 {
	var s uint64
	for _, v := range c {
		s += v
	}
	return s
}

// StarCounter is the paper's quadruple counter Star[Type, dir1, dir2, dir3]:
// 24 cells in bijection with the 24 non-isomorphic star temporal motifs.
type StarCounter [24]uint64

// StarIndex flattens (type,d1,d2,d3) into a StarCounter index.
func StarIndex(t StarType, d1, d2, d3 Dir) int {
	return int(t)<<3 | int(d1)<<2 | int(d2)<<1 | int(d3)
}

// StarCell inverts StarIndex.
func StarCell(i int) (t StarType, d1, d2, d3 Dir) {
	return StarType(i >> 3), Dir(i >> 2 & 1), Dir(i >> 1 & 1), Dir(i & 1)
}

// At returns the cell for the given type and direction pattern.
func (c *StarCounter) At(t StarType, d1, d2, d3 Dir) uint64 {
	return c[StarIndex(t, d1, d2, d3)]
}

// Add accumulates another counter into c.
func (c *StarCounter) Add(o *StarCounter) {
	for i := range c {
		c[i] += o[i]
	}
}

// Sub removes another counter from c; see PairCounter.Sub for the contract.
func (c *StarCounter) Sub(o *StarCounter) {
	for i := range c {
		if o[i] > c[i] {
			panic(fmt.Sprintf("motif: star cell %d underflow (%d - %d)", i, c[i], o[i]))
		}
		c[i] -= o[i]
	}
}

// Total returns the sum over all cells (= total star instances).
func (c *StarCounter) Total() uint64 {
	var s uint64
	for _, v := range c {
		s += v
	}
	return s
}

// TriCounter is the paper's quadruple counter Tri[Type, dir_i, dir_j, dir_k]:
// 24 cells covering the 8 non-isomorphic triangle motifs three times each
// (one cell per choice of center vertex, paper Fig. 8).
type TriCounter [24]uint64

// TriIndex flattens (type, di, dj, dk) into a TriCounter index.
func TriIndex(t TriType, di, dj, dk Dir) int {
	return int(t)<<3 | int(di)<<2 | int(dj)<<1 | int(dk)
}

// TriCell inverts TriIndex.
func TriCell(i int) (t TriType, di, dj, dk Dir) {
	return TriType(i >> 3), Dir(i >> 2 & 1), Dir(i >> 1 & 1), Dir(i & 1)
}

// At returns the cell for the given type and direction pattern.
func (c *TriCounter) At(t TriType, di, dj, dk Dir) uint64 {
	return c[TriIndex(t, di, dj, dk)]
}

// Add accumulates another counter into c.
func (c *TriCounter) Add(o *TriCounter) {
	for i := range c {
		c[i] += o[i]
	}
}

// Sub removes another counter from c; see PairCounter.Sub for the contract.
func (c *TriCounter) Sub(o *TriCounter) {
	for i := range c {
		if o[i] > c[i] {
			panic(fmt.Sprintf("motif: tri cell %d underflow (%d - %d)", i, c[i], o[i]))
		}
		c[i] -= o[i]
	}
}

// Total returns the sum over all cells.
func (c *TriCounter) Total() uint64 {
	var s uint64
	for _, v := range c {
		s += v
	}
	return s
}

// Counts aggregates the three counters produced by one counting run.
//
// TriMultiplicity records how many times each triangle instance was counted:
// 3 for the parallel-friendly recounting mode (every vertex acts as center),
// 1 for the sequential dedup mode (paper Algorithm 2 line 26). Matrix()
// normalises by it. Zero is treated as 1 so the zero value is usable.
type Counts struct {
	Pair            PairCounter
	Star            StarCounter
	Tri             TriCounter
	TriMultiplicity int
}

// Add accumulates another Counts with the same TriMultiplicity. Mixing
// multiplicities is a programming error and panics.
func (c *Counts) Add(o *Counts) {
	if c.triMult() != o.triMult() {
		panic(fmt.Sprintf("motif: mixing TriMultiplicity %d and %d", c.triMult(), o.triMult()))
	}
	c.Pair.Add(&o.Pair)
	c.Star.Add(&o.Star)
	c.Tri.Add(&o.Tri)
}

// Sub removes another Counts with the same TriMultiplicity (the inverse of
// Add, with Add's mixing rule and the per-counter underflow contract).
func (c *Counts) Sub(o *Counts) {
	if c.triMult() != o.triMult() {
		panic(fmt.Sprintf("motif: mixing TriMultiplicity %d and %d", c.triMult(), o.triMult()))
	}
	c.Pair.Sub(&o.Pair)
	c.Star.Sub(&o.Star)
	c.Tri.Sub(&o.Tri)
}

func (c *Counts) triMult() int {
	if c.TriMultiplicity == 0 {
		return 1
	}
	return c.TriMultiplicity
}
