package motif

import (
	"hare/internal/temporal"
)

// Classify determines the motif label of a candidate instance: three edges
// given in chronological order (the caller guarantees order and the δ
// constraint). ok is false when the edges do not induce a connected 2- or
// 3-node graph (e.g. they span 4 nodes).
//
// Classify is the specification the fast counters are tested against: it
// derives the label from first principles (topology + direction pattern)
// with no shared code with the counting algorithms.
func Classify(e1, e2, e3 temporal.Edge) (Label, bool) {
	nodes := make([]temporal.NodeID, 0, 6)
	add := func(v temporal.NodeID) {
		for _, x := range nodes {
			if x == v {
				return
			}
		}
		nodes = append(nodes, v)
	}
	for _, e := range [3]temporal.Edge{e1, e2, e3} {
		if e.From == e.To {
			return Label{}, false // self-loops are outside the taxonomy
		}
		add(e.From)
		add(e.To)
	}
	switch len(nodes) {
	case 2:
		return classifyPair(e1, e2, e3), true
	case 3:
		return classifyTriple(e1, e2, e3, nodes)
	default:
		return Label{}, false
	}
}

func classifyPair(e1, e2, e3 temporal.Edge) Label {
	u := e1.From
	dir := func(e temporal.Edge) Dir {
		if e.From == u {
			return Out
		}
		return In
	}
	return PairLabel(dir(e1), dir(e2), dir(e3))
}

func classifyTriple(e1, e2, e3 temporal.Edge, nodes []temporal.NodeID) (Label, bool) {
	es := [3]temporal.Edge{e1, e2, e3}
	// Count incidences per node.
	inc := map[temporal.NodeID]int{}
	for _, e := range es {
		inc[e.From]++
		inc[e.To]++
	}
	var center temporal.NodeID = -1
	for _, v := range nodes {
		if inc[v] == 3 {
			center = v
			break
		}
	}
	if center >= 0 {
		return classifyStar(es, center), true
	}
	// No degree-3 node on 3 nodes and 3 edges: every node has exactly two
	// incident edges, i.e. a triangle. Verify the three edges cover three
	// distinct node pairs (a repeated pair would force a degree-3 node, so
	// this always holds; keep the check as a guard).
	pairKey := func(e temporal.Edge) [2]temporal.NodeID {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		return [2]temporal.NodeID{a, b}
	}
	if pairKey(e1) == pairKey(e2) || pairKey(e1) == pairKey(e3) || pairKey(e2) == pairKey(e3) {
		return Label{}, false
	}
	return classifyTriangle(es), true
}

func classifyStar(es [3]temporal.Edge, center temporal.NodeID) Label {
	other := func(e temporal.Edge) temporal.NodeID {
		if e.From == center {
			return e.To
		}
		return e.From
	}
	dir := func(e temporal.Edge) Dir {
		if e.From == center {
			return Out
		}
		return In
	}
	o1, o2, o3 := other(es[0]), other(es[1]), other(es[2])
	var t StarType
	switch {
	case o2 == o3 && o1 != o2:
		t = StarI // first edge isolated
	case o1 == o3 && o2 != o1:
		t = StarII // second edge isolated
	default: // o1 == o2 && o3 != o1
		t = StarIII // third edge isolated
	}
	return StarLabel(t, dir(es[0]), dir(es[1]), dir(es[2]))
}

func classifyTriangle(es [3]temporal.Edge) Label {
	// View the instance from the vertex shared by the first two edges; the
	// third edge is then the non-incident one (Triangle-III position). The
	// Fig. 8 merge guarantees any center choice yields the same label.
	u := sharedNode(es[0], es[1])
	dirRel := func(e temporal.Edge, v temporal.NodeID) Dir {
		if e.From == v {
			return Out
		}
		return In
	}
	var v temporal.NodeID // the non-center endpoint of the earlier incident edge
	if es[0].From == u {
		v = es[0].To
	} else {
		v = es[0].From
	}
	return TriLabel(TriIII, dirRel(es[0], u), dirRel(es[1], u), dirRel(es[2], v))
}

func sharedNode(a, b temporal.Edge) temporal.NodeID {
	if a.From == b.From || a.From == b.To {
		return a.From
	}
	return a.To
}
