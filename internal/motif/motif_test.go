package motif

import (
	"testing"
	"testing/quick"
)

func TestLabelParsingAndString(t *testing.T) {
	l, err := ParseLabel("M24")
	if err != nil || l != (Label{2, 4}) {
		t.Fatalf("ParseLabel(M24) = %v, %v", l, err)
	}
	if l.String() != "M24" {
		t.Fatalf("String = %q", l.String())
	}
	if _, err := ParseLabel("M07"); err == nil {
		t.Fatal("want error for out-of-range label")
	}
	if _, err := ParseLabel("X11"); err == nil {
		t.Fatal("want error for bad prefix")
	}
	if _, err := ParseLabel("M111"); err == nil {
		t.Fatal("want error for bad length")
	}
	if l, err := ParseLabel("m63"); err != nil || l != (Label{6, 3}) {
		t.Fatalf("lower-case parse failed: %v %v", l, err)
	}
}

func TestCategoryPartition(t *testing.T) {
	var pairs, stars, tris int
	for _, l := range AllLabels() {
		switch l.Category() {
		case CategoryPair:
			pairs++
		case CategoryStar:
			stars++
		case CategoryTri:
			tris++
		}
	}
	if pairs != 4 || stars != 24 || tris != 8 {
		t.Fatalf("partition = %d/%d/%d, want 4/24/8", pairs, stars, tris)
	}
	if len(PairLabels()) != 4 || len(StarLabels()) != 24 || len(TriLabels()) != 8 {
		t.Fatal("label list sizes wrong")
	}
	for _, l := range PairLabels() {
		if l.Category() != CategoryPair {
			t.Errorf("%v not a pair", l)
		}
	}
	for _, l := range StarLabels() {
		if l.Category() != CategoryStar {
			t.Errorf("%v not a star", l)
		}
	}
	for _, l := range TriLabels() {
		if l.Category() != CategoryTri {
			t.Errorf("%v not a triangle", l)
		}
	}
}

func TestDir(t *testing.T) {
	if In.String() != "in" || Out.String() != "o" {
		t.Fatal("Dir strings wrong")
	}
	if In.Flip() != Out || Out.Flip() != In {
		t.Fatal("Flip wrong")
	}
}

func TestTypeStrings(t *testing.T) {
	if StarI.String() != "Star-I" || StarII.String() != "Star-II" || StarIII.String() != "Star-III" {
		t.Fatal("StarType strings wrong")
	}
	if TriI.String() != "Triangle-I" || TriII.String() != "Triangle-II" || TriIII.String() != "Triangle-III" {
		t.Fatal("TriType strings wrong")
	}
	if CategoryPair.String() != "pair" || CategoryStar.String() != "star" || CategoryTri.String() != "triangle" {
		t.Fatal("Category strings wrong")
	}
}

func TestPairIndexRoundTrip(t *testing.T) {
	f := func(a, b, c bool) bool {
		d1, d2, d3 := boolDir(a), boolDir(b), boolDir(c)
		i := PairIndex(d1, d2, d3)
		if i < 0 || i >= 8 {
			return false
		}
		r1, r2, r3 := PairDirs(i)
		return r1 == d1 && r2 == d2 && r3 == d3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStarIndexRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	for _, st := range []StarType{StarI, StarII, StarIII} {
		for _, d1 := range []Dir{In, Out} {
			for _, d2 := range []Dir{In, Out} {
				for _, d3 := range []Dir{In, Out} {
					i := StarIndex(st, d1, d2, d3)
					if i < 0 || i >= 24 || seen[i] {
						t.Fatalf("bad or duplicate index %d", i)
					}
					seen[i] = true
					rt, r1, r2, r3 := StarCell(i)
					if rt != st || r1 != d1 || r2 != d2 || r3 != d3 {
						t.Fatalf("round trip failed at %d", i)
					}
				}
			}
		}
	}
	if len(seen) != 24 {
		t.Fatalf("covered %d cells, want 24", len(seen))
	}
}

func TestTriIndexRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	for _, tt := range []TriType{TriI, TriII, TriIII} {
		for _, d1 := range []Dir{In, Out} {
			for _, d2 := range []Dir{In, Out} {
				for _, d3 := range []Dir{In, Out} {
					i := TriIndex(tt, d1, d2, d3)
					if seen[i] {
						t.Fatalf("duplicate index %d", i)
					}
					seen[i] = true
					rt, r1, r2, r3 := TriCell(i)
					if rt != tt || r1 != d1 || r2 != d2 || r3 != d3 {
						t.Fatalf("round trip failed at %d", i)
					}
				}
			}
		}
	}
	if len(seen) != 24 {
		t.Fatalf("covered %d cells, want 24", len(seen))
	}
}

func boolDir(b bool) Dir {
	if b {
		return Out
	}
	return In
}

func TestCountersAddTotal(t *testing.T) {
	var a, b Counts
	a.Star[3] = 5
	b.Star[3] = 7
	a.Pair[1] = 2
	b.Pair[1] = 3
	a.Tri[9] = 1
	b.Tri[9] = 1
	a.Add(&b)
	if a.Star[3] != 12 || a.Pair[1] != 5 || a.Tri[9] != 2 {
		t.Fatalf("Add failed: %+v", a)
	}
	if a.Star.Total() != 12 || a.Pair.Total() != 5 || a.Tri.Total() != 2 {
		t.Fatal("totals wrong")
	}
}

func TestCountersSub(t *testing.T) {
	var a, b Counts
	a.Star[3] = 5
	b.Star[3] = 2
	a.Pair[1] = 4
	b.Pair[1] = 4
	a.Tri[9] = 3
	b.Tri[9] = 1
	a.Sub(&b)
	if a.Star[3] != 3 || a.Pair[1] != 0 || a.Tri[9] != 2 {
		t.Fatalf("Sub failed: %+v", a)
	}
}

func TestCountersSubUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on cell underflow")
		}
	}()
	var a, b Counts
	b.Star[0] = 1
	a.Sub(&b)
}

func TestCountsSubMismatchedMultiplicityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mixed TriMultiplicity")
		}
	}()
	a := Counts{TriMultiplicity: 1}
	b := Counts{TriMultiplicity: 3}
	a.Sub(&b)
}

func TestCountsAddMismatchedMultiplicityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mixed TriMultiplicity")
		}
	}()
	a := Counts{TriMultiplicity: 1}
	b := Counts{TriMultiplicity: 3}
	a.Add(&b)
}

func TestCounterAt(t *testing.T) {
	var s StarCounter
	s[StarIndex(StarII, Out, In, Out)] = 9
	if s.At(StarII, Out, In, Out) != 9 {
		t.Fatal("StarCounter.At wrong")
	}
	var p PairCounter
	p[PairIndex(In, Out, In)] = 4
	if p.At(In, Out, In) != 4 {
		t.Fatal("PairCounter.At wrong")
	}
	var tr TriCounter
	tr[TriIndex(TriIII, In, In, Out)] = 2
	if tr.At(TriIII, In, In, Out) != 2 {
		t.Fatal("TriCounter.At wrong")
	}
}
