package motif

// This file pins counter cells to motif labels Mij. The mapping is
// reconstructed from the paper's text (see DESIGN.md §3.4) and verified in
// tests against every worked example the paper gives:
//
//	Star[I,in,o,in] = M24          (Sec. IV-A.2)
//	Star[III,o,o,in] = M63         (Fig. 1 walk-through)
//	Pair[o,in,o] = M65             (Fig. 1 walk-through)
//	Tri[III,o,in,o] ≅ Tri[II,in,o,in] ≅ Tri[I,o,in,o] = M25 (Sec. IV-B.3)
//	and the full Fig. 8 table for triangles.

// StarLabel maps a star counter cell to its motif label. The bijection: the
// motif's row pair is fixed by the star type (Star-I -> rows 1-2, Star-II ->
// rows 3-4, Star-III -> rows 5-6); within the pair the isolated edge's
// direction selects the row (Out -> first, In -> second); the column encodes
// the two paired edges' directions in time order:
// (In,Out)->1, (In,In)->2, (Out,Out)->3, (Out,In)->4.
func StarLabel(t StarType, d1, d2, d3 Dir) Label {
	var isolated Dir
	var pa, pb Dir // paired edges in time order
	switch t {
	case StarI:
		isolated, pa, pb = d1, d2, d3
	case StarII:
		isolated, pa, pb = d2, d1, d3
	case StarIII:
		isolated, pa, pb = d3, d1, d2
	}
	row := 2 * int(t)
	if isolated == Out {
		row++
	} else {
		row += 2
	}
	col := starCol(pa, pb)
	return Label{Row: row, Col: col}
}

func starCol(a, b Dir) int {
	switch {
	case a == In && b == Out:
		return 1
	case a == In && b == In:
		return 2
	case a == Out && b == Out:
		return 3
	default: // Out, In
		return 4
	}
}

// PairLabel maps a pair counter cell (directions relative to either
// endpoint) to its motif label. The two complementary cells (d1,d2,d3) and
// (¬d1,¬d2,¬d3) name the same motif.
func PairLabel(d1, d2, d3 Dir) Label {
	// Canonicalise on the orientation whose first edge is Out.
	if d1 == In {
		d1, d2, d3 = d1.Flip(), d2.Flip(), d3.Flip()
	}
	switch {
	case d2 == Out && d3 == Out: // o,o,o
		return Label{5, 5}
	case d2 == In && d3 == In: // o,in,in  (≅ in,o,o)
		return Label{5, 6}
	case d2 == In && d3 == Out: // o,in,o  (≅ in,o,in)
		return Label{6, 5}
	default: // o,o,in  (≅ in,in,o)
		return Label{6, 6}
	}
}

// triLabelTable transcribes the paper's Fig. 8: for each triangle label the
// three isomorphic counter cells (one per center-vertex choice).
var triLabelTable = []struct {
	label Label
	cells [3]int
}{
	{Label{4, 5}, [3]int{TriIndex(TriI, In, Out, Out), TriIndex(TriII, In, In, Out), TriIndex(TriIII, Out, Out, In)}},
	{Label{3, 5}, [3]int{TriIndex(TriI, Out, Out, Out), TriIndex(TriII, In, In, In), TriIndex(TriIII, Out, In, In)}},
	{Label{1, 5}, [3]int{TriIndex(TriI, In, In, Out), TriIndex(TriII, In, Out, Out), TriIndex(TriIII, Out, Out, Out)}},
	{Label{2, 5}, [3]int{TriIndex(TriI, Out, In, Out), TriIndex(TriII, In, Out, In), TriIndex(TriIII, Out, In, Out)}},
	{Label{2, 6}, [3]int{TriIndex(TriI, In, Out, In), TriIndex(TriII, Out, In, Out), TriIndex(TriIII, In, Out, In)}},
	{Label{4, 6}, [3]int{TriIndex(TriI, Out, Out, In), TriIndex(TriII, Out, In, In), TriIndex(TriIII, In, In, In)}},
	{Label{1, 6}, [3]int{TriIndex(TriI, In, In, In), TriIndex(TriII, Out, Out, Out), TriIndex(TriIII, In, Out, Out)}},
	{Label{3, 6}, [3]int{TriIndex(TriI, Out, In, In), TriIndex(TriII, Out, Out, In), TriIndex(TriIII, In, In, Out)}},
}

// triCellLabel[i] is the label of TriCounter cell i.
var triCellLabel [24]Label

func init() {
	var seen [24]bool
	for _, row := range triLabelTable {
		for _, c := range row.cells {
			if seen[c] {
				panic("motif: duplicate triangle cell in Fig. 8 table")
			}
			seen[c] = true
			triCellLabel[c] = row.label
		}
	}
	for i, ok := range seen {
		if !ok {
			panic("motif: triangle cell missing from Fig. 8 table: " + triCellLabel[i].String())
		}
	}
}

// TriLabel maps a triangle counter cell to its motif label (paper Fig. 8).
func TriLabel(t TriType, di, dj, dk Dir) Label {
	return triCellLabel[TriIndex(t, di, dj, dk)]
}

// TriCells returns the three isomorphic counter cells of a triangle label.
// ok is false when the label is not a triangle motif.
func TriCells(l Label) (cells [3]int, ok bool) {
	for _, row := range triLabelTable {
		if row.label == l {
			return row.cells, true
		}
	}
	return cells, false
}

// PairCells returns the two complementary counter cells of a pair label.
// ok is false when the label is not a pair motif.
func PairCells(l Label) (cells [2]int, ok bool) {
	if l.Category() != CategoryPair {
		return cells, false
	}
	n := 0
	for i := 0; i < 8; i++ {
		d1, d2, d3 := PairDirs(i)
		if PairLabel(d1, d2, d3) == l {
			cells[n] = i
			n++
		}
	}
	if n != 2 {
		return cells, false
	}
	return cells, true
}

// StarCellOf returns the unique counter cell of a star label. ok is false
// when the label is not a star motif.
func StarCellOf(l Label) (cell int, ok bool) {
	if l.Category() != CategoryStar {
		return 0, false
	}
	for i := 0; i < 24; i++ {
		t, d1, d2, d3 := StarCell(i)
		if StarLabel(t, d1, d2, d3) == l {
			return i, true
		}
	}
	return 0, false
}
