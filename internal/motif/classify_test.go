package motif

import (
	"testing"

	"hare/internal/temporal"
)

func TestClassifyPair(t *testing.T) {
	// Paper Fig. 1: <(d,e,14s),(e,d,18s),(d,e,21s)> is M65.
	l, ok := Classify(
		temporal.Edge{From: 3, To: 4, Time: 14},
		temporal.Edge{From: 4, To: 3, Time: 18},
		temporal.Edge{From: 3, To: 4, Time: 21},
	)
	if !ok || l != (Label{6, 5}) {
		t.Fatalf("got %v ok=%v, want M65", l, ok)
	}
}

func TestClassifyStar(t *testing.T) {
	// Paper Fig. 1: <(a,c,4s),(a,c,8s),(d,a,9s)> is M63.
	l, ok := Classify(
		temporal.Edge{From: 0, To: 2, Time: 4},
		temporal.Edge{From: 0, To: 2, Time: 8},
		temporal.Edge{From: 3, To: 0, Time: 9},
	)
	if !ok || l != (Label{6, 3}) {
		t.Fatalf("got %v ok=%v, want M63", l, ok)
	}
	// Star-I: first edge isolated: u->x then two edges u<->y.
	l, ok = Classify(
		temporal.Edge{From: 0, To: 1, Time: 1},
		temporal.Edge{From: 0, To: 2, Time: 2},
		temporal.Edge{From: 2, To: 0, Time: 3},
	)
	if !ok || l.Category() != CategoryStar || l.Row > 2 {
		t.Fatalf("Star-I instance classified as %v", l)
	}
	// Star-II: middle edge isolated.
	l, ok = Classify(
		temporal.Edge{From: 0, To: 1, Time: 1},
		temporal.Edge{From: 0, To: 2, Time: 2},
		temporal.Edge{From: 1, To: 0, Time: 3},
	)
	if !ok || l.Row < 3 || l.Row > 4 {
		t.Fatalf("Star-II instance classified as %v", l)
	}
}

func TestClassifyTriangle(t *testing.T) {
	// Paper: <(e,c,6s),(d,c,10s),(d,e,14s)> is M46.
	l, ok := Classify(
		temporal.Edge{From: 4, To: 2, Time: 6},
		temporal.Edge{From: 3, To: 2, Time: 10},
		temporal.Edge{From: 3, To: 4, Time: 14},
	)
	if !ok || l != (Label{4, 6}) {
		t.Fatalf("got %v ok=%v, want M46", l, ok)
	}
	// Paper: <(a,c,8s),(d,a,9s),(c,d,17s)> is M25.
	l, ok = Classify(
		temporal.Edge{From: 0, To: 2, Time: 8},
		temporal.Edge{From: 3, To: 0, Time: 9},
		temporal.Edge{From: 2, To: 3, Time: 17},
	)
	if !ok || l != (Label{2, 5}) {
		t.Fatalf("got %v ok=%v, want M25", l, ok)
	}
	// Cyclic triangle a->b, b->c, c->a is M26.
	l, ok = Classify(
		temporal.Edge{From: 0, To: 1, Time: 1},
		temporal.Edge{From: 1, To: 2, Time: 2},
		temporal.Edge{From: 2, To: 0, Time: 3},
	)
	if !ok || l != (Label{2, 6}) {
		t.Fatalf("cycle got %v ok=%v, want M26", l, ok)
	}
}

func TestClassifyRejects(t *testing.T) {
	// Four distinct nodes: not a motif.
	if _, ok := Classify(
		temporal.Edge{From: 0, To: 1, Time: 1},
		temporal.Edge{From: 2, To: 3, Time: 2},
		temporal.Edge{From: 0, To: 1, Time: 3},
	); ok {
		t.Fatal("4-node pattern accepted")
	}
	// Self-loop edges are rejected.
	if _, ok := Classify(
		temporal.Edge{From: 0, To: 0, Time: 1},
		temporal.Edge{From: 0, To: 1, Time: 2},
		temporal.Edge{From: 1, To: 0, Time: 3},
	); ok {
		t.Fatal("self-loop accepted")
	}
}

// Every triangle label must be reachable by Classify, and the choice of
// which vertex Classify uses internally must not matter: rotating node IDs
// leaves the label unchanged.
func TestClassifyTriangleRelabelInvariance(t *testing.T) {
	base := [3]temporal.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 2, To: 1, Time: 2},
		{From: 0, To: 2, Time: 3},
	}
	want, ok := Classify(base[0], base[1], base[2])
	if !ok {
		t.Fatal("base triangle not classified")
	}
	perms := [][3]temporal.NodeID{{1, 2, 0}, {2, 0, 1}, {0, 2, 1}, {1, 0, 2}, {2, 1, 0}}
	for _, p := range perms {
		var es [3]temporal.Edge
		for i, e := range base {
			es[i] = temporal.Edge{From: p[e.From], To: p[e.To], Time: e.Time}
		}
		got, ok := Classify(es[0], es[1], es[2])
		if !ok || got != want {
			t.Fatalf("perm %v: got %v ok=%v, want %v", p, got, ok, want)
		}
	}
}

// Exhaustively generate all direction patterns for each topology and check
// the full 36-label space is reachable.
func TestClassifyCoversAllLabels(t *testing.T) {
	seen := map[Label]bool{}
	dirs := []bool{false, true} // false = forward, true = reversed
	// Pairs: edges between nodes 0 and 1.
	mk := func(rev bool, a, b temporal.NodeID, tm temporal.Timestamp) temporal.Edge {
		if rev {
			return temporal.Edge{From: b, To: a, Time: tm}
		}
		return temporal.Edge{From: a, To: b, Time: tm}
	}
	for _, r1 := range dirs {
		for _, r2 := range dirs {
			for _, r3 := range dirs {
				// pair
				if l, ok := Classify(mk(r1, 0, 1, 1), mk(r2, 0, 1, 2), mk(r3, 0, 1, 3)); ok {
					seen[l] = true
				}
				// stars: isolated edge in each temporal position
				if l, ok := Classify(mk(r1, 0, 1, 1), mk(r2, 0, 2, 2), mk(r3, 0, 2, 3)); ok {
					seen[l] = true
				}
				if l, ok := Classify(mk(r1, 0, 2, 1), mk(r2, 0, 1, 2), mk(r3, 0, 2, 3)); ok {
					seen[l] = true
				}
				if l, ok := Classify(mk(r1, 0, 2, 1), mk(r2, 0, 2, 2), mk(r3, 0, 1, 3)); ok {
					seen[l] = true
				}
				// triangles: three temporal orders of the pair coverage
				if l, ok := Classify(mk(r1, 0, 1, 1), mk(r2, 0, 2, 2), mk(r3, 1, 2, 3)); ok {
					seen[l] = true
				}
				if l, ok := Classify(mk(r1, 0, 1, 1), mk(r2, 1, 2, 2), mk(r3, 0, 2, 3)); ok {
					seen[l] = true
				}
				if l, ok := Classify(mk(r1, 1, 2, 1), mk(r2, 0, 1, 2), mk(r3, 0, 2, 3)); ok {
					seen[l] = true
				}
			}
		}
	}
	if len(seen) != 36 {
		missing := []Label{}
		for _, l := range AllLabels() {
			if !seen[l] {
				missing = append(missing, l)
			}
		}
		t.Fatalf("reached %d labels, want 36; missing %v", len(seen), missing)
	}
}
