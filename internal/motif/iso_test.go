package motif

import (
	"strings"
	"testing"
)

// The paper's explicit anchor points for the cell->label mapping.
func TestPaperAnchors(t *testing.T) {
	if got := StarLabel(StarI, In, Out, In); got != (Label{2, 4}) {
		t.Errorf("Star[I,in,o,in] = %v, want M24 (paper Sec. IV-A.2)", got)
	}
	if got := StarLabel(StarIII, Out, Out, In); got != (Label{6, 3}) {
		t.Errorf("Star[III,o,o,in] = %v, want M63 (paper Fig. 1 walk-through)", got)
	}
	if got := PairLabel(Out, In, Out); got != (Label{6, 5}) {
		t.Errorf("Pair[o,in,o] = %v, want M65 (paper Fig. 1 walk-through)", got)
	}
	// Sec. IV-B.3 example: M25's three isomorphic triangle cells.
	for _, c := range []struct {
		tt         TriType
		di, dj, dk Dir
	}{
		{TriIII, Out, In, Out},
		{TriII, In, Out, In},
		{TriI, Out, In, Out},
	} {
		if got := TriLabel(c.tt, c.di, c.dj, c.dk); got != (Label{2, 5}) {
			t.Errorf("Tri[%v,%v,%v,%v] = %v, want M25", c.tt, c.di, c.dj, c.dk, got)
		}
	}
	// The cyclic triangle is M26 (2SCENT's target motif).
	if got := TriLabel(TriII, Out, In, Out); got != (Label{2, 6}) {
		t.Errorf("cyclic triangle Tri[II,o,in,o] = %v, want M26", got)
	}
}

func TestStarLabelBijection(t *testing.T) {
	seen := map[Label]bool{}
	for i := 0; i < 24; i++ {
		st, d1, d2, d3 := StarCell(i)
		l := StarLabel(st, d1, d2, d3)
		if l.Category() != CategoryStar {
			t.Fatalf("cell %d maps to non-star %v", i, l)
		}
		if seen[l] {
			t.Fatalf("label %v hit twice", l)
		}
		seen[l] = true
	}
	if len(seen) != 24 {
		t.Fatalf("star mapping covers %d labels, want 24", len(seen))
	}
}

func TestStarRowsGroupByType(t *testing.T) {
	wantRows := map[StarType][2]int{StarI: {1, 2}, StarII: {3, 4}, StarIII: {5, 6}}
	for i := 0; i < 24; i++ {
		st, d1, d2, d3 := StarCell(i)
		l := StarLabel(st, d1, d2, d3)
		rows := wantRows[st]
		if l.Row != rows[0] && l.Row != rows[1] {
			t.Errorf("%v cell in row %d, want %v", st, l.Row, rows)
		}
	}
}

func TestPairLabelComplementary(t *testing.T) {
	for i := 0; i < 8; i++ {
		d1, d2, d3 := PairDirs(i)
		a := PairLabel(d1, d2, d3)
		b := PairLabel(d1.Flip(), d2.Flip(), d3.Flip())
		if a != b {
			t.Errorf("cell %d and its complement map to %v vs %v", i, a, b)
		}
		if a.Category() != CategoryPair {
			t.Errorf("cell %d maps to non-pair %v", i, a)
		}
	}
	// All four pair labels are reachable.
	seen := map[Label]bool{}
	for i := 0; i < 8; i++ {
		seen[PairLabel(PairDirs(i))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("pair mapping covers %d labels, want 4", len(seen))
	}
	// Specific identifications from the paper's text.
	if PairLabel(Out, Out, Out) != (Label{5, 5}) || PairLabel(In, In, In) != (Label{5, 5}) {
		t.Error("M55 mapping wrong")
	}
	if PairLabel(In, Out, Out) != (Label{5, 6}) || PairLabel(Out, In, In) != (Label{5, 6}) {
		t.Error("M56 mapping wrong")
	}
	if PairLabel(In, Out, In) != (Label{6, 5}) {
		t.Error("M65 mapping wrong")
	}
	if PairLabel(In, In, Out) != (Label{6, 6}) || PairLabel(Out, Out, In) != (Label{6, 6}) {
		t.Error("M66 mapping wrong")
	}
}

func TestTriLabelPartition(t *testing.T) {
	perLabel := map[Label]int{}
	perType := map[Label]map[TriType]int{}
	for i := 0; i < 24; i++ {
		tt, di, dj, dk := TriCell(i)
		l := TriLabel(tt, di, dj, dk)
		if l.Category() != CategoryTri {
			t.Fatalf("cell %d maps to non-triangle %v", i, l)
		}
		perLabel[l]++
		if perType[l] == nil {
			perType[l] = map[TriType]int{}
		}
		perType[l][tt]++
	}
	if len(perLabel) != 8 {
		t.Fatalf("triangle mapping covers %d labels, want 8", len(perLabel))
	}
	for l, n := range perLabel {
		if n != 3 {
			t.Errorf("%v has %d cells, want 3", l, n)
		}
		// One cell per center choice, hence one per type.
		for _, tt := range []TriType{TriI, TriII, TriIII} {
			if perType[l][tt] != 1 {
				t.Errorf("%v has %d cells of %v, want 1", l, perType[l][tt], tt)
			}
		}
	}
}

func TestTriCellsLookup(t *testing.T) {
	for _, l := range TriLabels() {
		cells, ok := TriCells(l)
		if !ok {
			t.Fatalf("TriCells(%v) not found", l)
		}
		for _, c := range cells {
			tt, di, dj, dk := TriCell(c)
			if TriLabel(tt, di, dj, dk) != l {
				t.Fatalf("cell %d of %v maps back to %v", c, l, TriLabel(tt, di, dj, dk))
			}
		}
	}
	if _, ok := TriCells(Label{1, 1}); ok {
		t.Fatal("TriCells should reject star labels")
	}
}

func TestPairCellsLookup(t *testing.T) {
	for _, l := range PairLabels() {
		cells, ok := PairCells(l)
		if !ok {
			t.Fatalf("PairCells(%v) not found", l)
		}
		if cells[0] == cells[1] {
			t.Fatalf("PairCells(%v) degenerate", l)
		}
		for _, c := range cells {
			if PairLabel(PairDirs(c)) != l {
				t.Fatalf("cell %d of %v maps back wrong", c, l)
			}
		}
	}
	if _, ok := PairCells(Label{1, 5}); ok {
		t.Fatal("PairCells should reject triangle labels")
	}
}

func TestStarCellOfLookup(t *testing.T) {
	for _, l := range StarLabels() {
		cell, ok := StarCellOf(l)
		if !ok {
			t.Fatalf("StarCellOf(%v) not found", l)
		}
		st, d1, d2, d3 := StarCell(cell)
		if StarLabel(st, d1, d2, d3) != l {
			t.Fatalf("cell %d of %v maps back wrong", cell, l)
		}
	}
	if _, ok := StarCellOf(Label{5, 5}); ok {
		t.Fatal("StarCellOf should reject pair labels")
	}
}

func TestToMatrix(t *testing.T) {
	c := Counts{TriMultiplicity: 3}
	// One star instance in Star[I,in,o,in] -> M24.
	c.Star[StarIndex(StarI, In, Out, In)] = 7
	// Pair instance: both complementary cells hold the exact count 5.
	cells, _ := PairCells(Label{5, 5})
	c.Pair[cells[0]] = 5
	c.Pair[cells[1]] = 5
	// Triangle: 4 instances counted once per vertex across three cells.
	tcells, _ := TriCells(Label{2, 6})
	for _, cell := range tcells {
		c.Tri[cell] = 4
	}
	m := c.ToMatrix()
	if m.At(Label{2, 4}) != 7 {
		t.Errorf("M24 = %d, want 7", m.At(Label{2, 4}))
	}
	if m.At(Label{5, 5}) != 5 {
		t.Errorf("M55 = %d, want 5", m.At(Label{5, 5}))
	}
	if m.At(Label{2, 6}) != 4 {
		t.Errorf("M26 = %d, want 4", m.At(Label{2, 6}))
	}
	if m.Total() != 16 {
		t.Errorf("total = %d, want 16", m.Total())
	}
	// Dedup mode: one cell holds everything, multiplicity 1.
	d := Counts{TriMultiplicity: 1}
	d.Tri[tcells[0]] = 4
	md := d.ToMatrix()
	if md.At(Label{2, 6}) != 4 {
		t.Errorf("dedup M26 = %d, want 4", md.At(Label{2, 6}))
	}
}

func TestMatrixHelpers(t *testing.T) {
	var m Matrix
	m.Set(Label{1, 1}, 10)
	m.AddAt(Label{1, 1}, 5)
	m.Set(Label{5, 5}, 3)
	m.Set(Label{2, 6}, 2)
	if m.At(Label{1, 1}) != 15 {
		t.Fatal("Set/AddAt/At wrong")
	}
	if m.Total() != 20 {
		t.Fatalf("Total = %d", m.Total())
	}
	if m.CategoryTotal(CategoryStar) != 15 || m.CategoryTotal(CategoryPair) != 3 || m.CategoryTotal(CategoryTri) != 2 {
		t.Fatal("CategoryTotal wrong")
	}
	var o Matrix
	if m.Equal(&o) {
		t.Fatal("Equal false positive")
	}
	diff := m.Diff(&o)
	if len(diff) != 3 {
		t.Fatalf("Diff = %v", diff)
	}
	o = m
	if !m.Equal(&o) || len(m.Diff(&o)) != 0 {
		t.Fatal("Equal/Diff on identical matrices wrong")
	}
	top := m.TopMotifs(2)
	if len(top) != 2 || top[0].Label != (Label{1, 1}) || top[0].Count != 15 {
		t.Fatalf("TopMotifs = %v", top)
	}
	if got := m.TopMotifs(100); len(got) != 36 {
		t.Fatalf("TopMotifs(100) len = %d", len(got))
	}
	s := m.String()
	if !strings.Contains(s, "total=20") || !strings.Contains(s, "i=6") {
		t.Fatalf("render missing pieces:\n%s", s)
	}
}

func TestFromLabelCounts(t *testing.T) {
	m := FromLabelCounts(map[Label]uint64{{2, 6}: 9, {5, 5}: 1})
	if m.At(Label{2, 6}) != 9 || m.At(Label{5, 5}) != 1 || m.Total() != 10 {
		t.Fatalf("FromLabelCounts wrong: %v", m)
	}
}
