package motif

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Matrix holds the final per-motif instance counts in the paper's 6×6 layout
// (Fig. 2 / Fig. 10): Matrix[i][j] is the count of motif M(i+1)(j+1).
type Matrix [6][6]uint64

// At returns the count for a label.
func (m *Matrix) At(l Label) uint64 { return m[l.Row-1][l.Col-1] }

// Set stores the count for a label.
func (m *Matrix) Set(l Label, v uint64) { m[l.Row-1][l.Col-1] = v }

// AddAt increments the count for a label.
func (m *Matrix) AddAt(l Label, v uint64) { m[l.Row-1][l.Col-1] += v }

// Total returns the sum over all 36 motifs.
func (m *Matrix) Total() uint64 {
	var s uint64
	for i := range m {
		for j := range m[i] {
			s += m[i][j]
		}
	}
	return s
}

// CategoryTotal sums the counts of one motif category.
func (m *Matrix) CategoryTotal(c Category) uint64 {
	var s uint64
	for _, l := range AllLabels() {
		if l.Category() == c {
			s += m.At(l)
		}
	}
	return s
}

// Equal reports whether two matrices are identical.
func (m *Matrix) Equal(o *Matrix) bool { return *m == *o }

// Diff returns the labels whose counts differ between m and o.
func (m *Matrix) Diff(o *Matrix) []Label {
	var out []Label
	for _, l := range AllLabels() {
		if m.At(l) != o.At(l) {
			out = append(out, l)
		}
	}
	return out
}

// ToMatrix merges the raw counters into per-motif counts:
//
//   - each star cell maps 1:1 onto a star label;
//   - the two complementary pair cells each hold the exact count, so the
//     merged value is their mean (they are equal for a correct counter);
//   - the three isomorphic triangle cells are summed and divided by
//     TriMultiplicity (3 in recount mode, 1 in dedup mode).
func (c *Counts) ToMatrix() Matrix {
	var m Matrix
	for i, v := range c.Star {
		t, d1, d2, d3 := StarCell(i)
		m.AddAt(StarLabel(t, d1, d2, d3), v)
	}
	for _, l := range PairLabels() {
		cells, _ := PairCells(l)
		m.Set(l, (c.Pair[cells[0]]+c.Pair[cells[1]])/2)
	}
	mult := uint64(c.triMult())
	for _, row := range triLabelTable {
		var s uint64
		for _, cell := range row.cells {
			s += c.Tri[cell]
		}
		m.Set(row.label, s/mult)
	}
	return m
}

// FromLabelCounts builds a Matrix from a label→count map (used by the
// enumeration-based baselines).
func FromLabelCounts(counts map[Label]uint64) Matrix {
	var m Matrix
	for l, v := range counts {
		m.Set(l, v)
	}
	return m
}

// Write renders the matrix in the paper's Fig. 10 layout: one row per grid
// row, blank-padded counts, with a trailing category summary.
func (m *Matrix) Write(w io.Writer) {
	width := 6
	for i := range m {
		for j := range m[i] {
			if n := len(fmt.Sprint(m[i][j])); n+1 > width {
				width = n + 1
			}
		}
	}
	fmt.Fprintf(w, "%4s", "")
	for j := 1; j <= 6; j++ {
		fmt.Fprintf(w, "%*s", width, fmt.Sprintf("j=%d", j))
	}
	fmt.Fprintln(w)
	for i := range m {
		fmt.Fprintf(w, "i=%d ", i+1)
		for j := range m[i] {
			fmt.Fprintf(w, "%*d", width, m[i][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "pairs=%d stars=%d triangles=%d total=%d\n",
		m.CategoryTotal(CategoryPair), m.CategoryTotal(CategoryStar),
		m.CategoryTotal(CategoryTri), m.Total())
}

// String renders the matrix via Write.
func (m *Matrix) String() string {
	var b strings.Builder
	m.Write(&b)
	return b.String()
}

// TopMotifs returns the n most frequent motifs with their counts, descending
// (count ties broken by label order).
func (m *Matrix) TopMotifs(n int) []LabelCount {
	all := make([]LabelCount, 0, 36)
	for _, l := range AllLabels() {
		all = append(all, LabelCount{Label: l, Count: m.At(l)})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Count > all[j].Count })
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// LabelCount pairs a motif label with an instance count.
type LabelCount struct {
	Label Label
	Count uint64
}
