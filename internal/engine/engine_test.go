package engine_test

import (
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

// skewedGraph puts most edges on a small hub set so the intra-node stage is
// exercised.
func skewedGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(3)) // hubs 0..2
		v := temporal.NodeID(3 + r.Intn(nodes-3))
		if r.Intn(2) == 0 {
			u, v = v, u
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(r, 5+r.Intn(30), 50+r.Intn(400), 80)
		delta := int64(1 + r.Intn(40))
		want := fast.Count(g, delta).ToMatrix()
		for _, workers := range []int{1, 2, 4, 8} {
			got := engine.Count(g, delta, engine.Options{Workers: workers}).ToMatrix()
			if !got.Equal(&want) {
				t.Fatalf("trial %d workers=%d: diff %v", trial, workers, got.Diff(&want))
			}
		}
	}
}

func TestParallelMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(r, 4+r.Intn(10), 30+r.Intn(150), 40)
		delta := int64(1 + r.Intn(25))
		want := brute.Count(g, delta)
		got := engine.Count(g, delta, engine.Options{Workers: 4}).ToMatrix()
		if !got.Equal(&want) {
			t.Fatalf("trial %d: diff %v", trial, got.Diff(&want))
		}
	}
}

func TestHierarchicalThresholds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := skewedGraph(r, 40, 2000, 200)
	delta := int64(60)
	want := fast.Count(g, delta).ToMatrix()
	for _, thrd := range []int{-1, 0, 1, 5, 50, 100000} {
		got := engine.Count(g, delta, engine.Options{Workers: 6, DegreeThreshold: thrd}).ToMatrix()
		if !got.Equal(&want) {
			t.Fatalf("thrd=%d: diff %v", thrd, got.Diff(&want))
		}
	}
}

func TestStaticSchedule(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := skewedGraph(r, 30, 1000, 100)
	delta := int64(30)
	want := fast.Count(g, delta).ToMatrix()
	got := engine.Count(g, delta, engine.Options{Workers: 5, Schedule: engine.ScheduleStatic, DegreeThreshold: -1}).ToMatrix()
	if !got.Equal(&want) {
		t.Fatalf("static schedule diff: %v", got.Diff(&want))
	}
}

func TestCountStarPairOnly(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGraph(r, 12, 300, 60)
	delta := int64(20)
	want := fast.CountStarPair(g, delta)
	got := engine.CountStarPair(g, delta, engine.Options{Workers: 4})
	if got.Star != want.Star || got.Pair != want.Pair {
		t.Fatal("star/pair-only parallel run differs from sequential")
	}
	if got.Tri.Total() != 0 {
		t.Fatal("star/pair-only run counted triangles")
	}
}

func TestCountTriOnly(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := randomGraph(r, 12, 300, 60)
	delta := int64(20)
	wantM := fast.Count(g, delta).ToMatrix()
	got := engine.CountTri(g, delta, engine.Options{Workers: 4}).ToMatrix()
	for _, l := range motif.TriLabels() {
		if got.At(l) != wantM.At(l) {
			t.Fatalf("%v = %d, want %d", l, got.At(l), wantM.At(l))
		}
	}
	if got.CategoryTotal(motif.CategoryStar) != 0 || got.CategoryTotal(motif.CategoryPair) != 0 {
		t.Fatal("tri-only run counted stars/pairs")
	}
}

func TestZeroValueOptions(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 0}, {From: 0, To: 1, Time: 1}, {From: 0, To: 1, Time: 2},
	})
	m := engine.Count(g, 10, engine.Options{}).ToMatrix()
	if m.At(motif.Label{Row: 5, Col: 5}) != 1 {
		t.Fatalf("M55 = %d, want 1", m.At(motif.Label{Row: 5, Col: 5}))
	}
}

func TestEmptyGraphParallel(t *testing.T) {
	g := temporal.FromEdges(nil)
	m := engine.Count(g, 10, engine.Options{Workers: 8}).ToMatrix()
	if m.Total() != 0 {
		t.Fatalf("empty graph counted %d", m.Total())
	}
}

func TestManyMoreWorkersThanNodes(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := randomGraph(r, 4, 60, 20)
	delta := int64(10)
	want := fast.Count(g, delta).ToMatrix()
	got := engine.Count(g, delta, engine.Options{Workers: 32, ChunkSize: 1}).ToMatrix()
	if !got.Equal(&want) {
		t.Fatalf("diff %v", got.Diff(&want))
	}
}
