// Package engine implements HARE, the paper's hierarchical parallel framework
// for the FAST counting algorithms.
//
// Two cooperating strategies (paper §IV-C):
//
//   - inter-node parallelism: workers dynamically pull chunks of center nodes
//     from a shared atomic cursor (the analogue of OpenMP dynamic
//     scheduling);
//   - intra-node parallelism: nodes whose temporal degree exceeds a threshold
//     thrd are processed one at a time, with the first-edge loop of
//     Algorithms 1/2 split across workers.
//
// Every worker accumulates into private counters that are merged at the end
// (the analogue of OpenMP reduction), so the hot path has no shared mutable
// state. Triangles are counted in recount mode (once per vertex) to stay
// dependency free; the merge divides by three.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Schedule selects how center nodes are assigned to workers in the
// inter-node stage.
type Schedule int

const (
	// ScheduleDynamic is the default: workers pull fixed-size chunks from an
	// atomic cursor as they become free.
	ScheduleDynamic Schedule = iota
	// ScheduleStatic pre-splits the node range into one contiguous block per
	// worker. It exists to reproduce the paper's Fig. 12(b) ablation
	// ("without thrd" / static OpenMP mode): long-tailed degree
	// distributions make it badly load imbalanced.
	ScheduleStatic
)

// Options configures a HARE run. The zero value means: one worker per CPU,
// automatic degree threshold (minimum degree of the top-20 nodes, the
// paper's default), dynamic scheduling, hierarchical mode on.
type Options struct {
	// Workers is the number of goroutines (#threads in the paper). <= 0
	// selects runtime.GOMAXPROCS(0).
	Workers int
	// DegreeThreshold is thrd: nodes with temporal degree strictly greater
	// are processed with intra-node parallelism. 0 selects the automatic
	// top-20 heuristic; negative disables the intra-node stage entirely
	// (flat inter-node parallelism, the "without thrd" ablation).
	DegreeThreshold int
	// Schedule selects dynamic (default) or static node assignment.
	Schedule Schedule
	// ChunkSize is the number of center nodes per dynamic work unit
	// (default 64).
	ChunkSize int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveWorkers resolves Options.Workers to the goroutine count a run
// would actually use (<= 0 selects GOMAXPROCS).
func (o Options) EffectiveWorkers() int { return o.workers() }

func (o Options) chunk() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return 64
}

// Count runs HARE over all 36 motifs and returns the merged counters
// (TriMultiplicity == 3).
func Count(g *temporal.Graph, delta temporal.Timestamp, opts Options) *motif.Counts {
	return run(g, delta, opts, true, true)
}

// CountStarPair runs HARE for star and pair motifs only ("HARE-Pair" reports
// the pair subset of this run).
func CountStarPair(g *temporal.Graph, delta temporal.Timestamp, opts Options) *motif.Counts {
	return run(g, delta, opts, true, false)
}

// CountTri runs HARE for triangle motifs only ("HARE-Tri").
func CountTri(g *temporal.Graph, delta temporal.Timestamp, opts Options) *motif.Counts {
	return run(g, delta, opts, false, true)
}

// EffectiveDegreeThreshold reports the thrd a run with opts uses to split
// light from heavy centers: the explicit Options.DegreeThreshold when set,
// otherwise the automatic top-20 heuristic. A return of 0 means the graph
// is too small for the heuristic and the run has no intra-node stage;
// negative means the caller disabled it. Callers (hare.Count's Result)
// surface this so reports show the threshold actually applied rather than
// the requested option.
func EffectiveDegreeThreshold(g *temporal.Graph, opts Options) int {
	if thrd := opts.DegreeThreshold; thrd != 0 {
		return thrd
	}
	return temporal.TopKDegreeThreshold(g, 20)
}

// Dispatch is HARE's dynamic work scheduler, exported so sibling subsystems
// (higher-order counting, null-model ensembles) parallelise with the same
// machinery: workers goroutines repeatedly pull up-to-chunk-sized index
// ranges [start, end) ⊂ [0, n) from a shared atomic cursor until the range
// is exhausted, then Dispatch returns. body runs concurrently with itself;
// the worker id in [0, workers) lets callers index per-worker accumulators.
// workers and chunk below 1 are treated as 1; with one worker the whole
// range is delivered in a single call on the caller's goroutine.
func Dispatch(workers, chunk, n int, body func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	if workers == 1 {
		body(0, 0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := int64(chunk)
			for {
				end := cursor.Add(c)
				start := end - c
				if start >= int64(n) {
					return
				}
				if end > int64(n) {
					end = int64(n)
				}
				body(w, int(start), int(end))
			}
		}(w)
	}
	wg.Wait()
}

func run(g *temporal.Graph, delta temporal.Timestamp, opts Options, doStar, doTri bool) *motif.Counts {
	workers := opts.workers()
	thrd := EffectiveDegreeThreshold(g, opts)
	if opts.DegreeThreshold == 0 && thrd == 0 {
		thrd = int(^uint(0) >> 1) // tiny graph: no intra-node stage
	}

	var light, heavy []temporal.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(temporal.NodeID(u))
		if d < 3 && (!doTri || d < 2) {
			continue // cannot host any motif as center
		}
		if thrd > 0 && d > thrd {
			heavy = append(heavy, temporal.NodeID(u))
		} else {
			light = append(light, temporal.NodeID(u))
		}
	}

	perWorker := make([]*motif.Counts, workers)
	scratch := make([]*fast.Scratch, workers)
	for w := range perWorker {
		perWorker[w] = &motif.Counts{TriMultiplicity: 3}
		scratch[w] = fast.NewScratch()
		scratch[w].Grow(g.NumNodes()) // keep the workers' hot loops allocation free
	}

	// Stage 1: inter-node parallelism over light centers.
	interNode(g, delta, opts, light, perWorker, scratch, doStar, doTri)

	// Stage 2: intra-node parallelism, one heavy center at a time.
	for _, u := range heavy {
		intraNode(g, u, delta, workers, perWorker, scratch, doStar, doTri)
	}

	total := &motif.Counts{TriMultiplicity: 3}
	for _, c := range perWorker {
		total.Add(c)
	}
	return total
}

func interNode(g *temporal.Graph, delta temporal.Timestamp, opts Options,
	nodes []temporal.NodeID, perWorker []*motif.Counts, scratch []*fast.Scratch,
	doStar, doTri bool) {
	workers := len(perWorker)
	var wg sync.WaitGroup
	countNodes := func(w int, batch []temporal.NodeID) {
		for _, u := range batch {
			if doStar {
				fast.CountStarPairNode(g, u, delta, perWorker[w], scratch[w])
			}
			if doTri {
				fast.CountTriNode(g, u, delta, &perWorker[w].Tri, false)
			}
		}
	}
	switch opts.Schedule {
	case ScheduleStatic:
		per := (len(nodes) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			if lo >= len(nodes) {
				break
			}
			hi := min(lo+per, len(nodes))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				countNodes(w, nodes[lo:hi])
			}(w, lo, hi)
		}
	default:
		Dispatch(workers, opts.chunk(), len(nodes), func(w, start, end int) {
			countNodes(w, nodes[start:end])
		})
		return
	}
	wg.Wait()
}

func intraNode(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp,
	workers int, perWorker []*motif.Counts, scratch []*fast.Scratch,
	doStar, doTri bool) {
	su := g.Seq(u)
	// First-edge iterations near the start of S_u dominate (longer suffix to
	// scan), so use small dynamic chunks rather than a static split.
	Dispatch(workers, su.Len()/(workers*8)+1, su.Len(), func(w, start, end int) {
		if doStar {
			fast.CountStarPairRange(su, delta, perWorker[w], scratch[w], start, end)
		}
		if doTri {
			fast.CountTriRange(g, u, delta, &perWorker[w].Tri, false, start, end)
		}
	})
}
