package engine_test

import (
	"sync"
	"testing"

	"hare/internal/engine"
)

// Dispatch must deliver every index exactly once, with in-range worker ids,
// for any workers/chunk combination including the degenerate ones.
func TestDispatchCoversRangeOnce(t *testing.T) {
	for _, tc := range []struct{ workers, chunk, n int }{
		{1, 64, 100}, {4, 1, 100}, {4, 7, 100}, {16, 64, 10},
		{0, 0, 33}, // clamped to 1 worker, chunk 1
		{8, 3, 0},  // empty range: no calls
	} {
		var mu sync.Mutex
		seen := make([]int, tc.n)
		calls := 0
		engine.Dispatch(tc.workers, tc.chunk, tc.n, func(w, start, end int) {
			if w < 0 || (tc.workers > 0 && w >= tc.workers) {
				t.Errorf("worker id %d out of range", w)
			}
			mu.Lock()
			calls++
			for i := start; i < end; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d chunk=%d: index %d delivered %d times",
					tc.workers, tc.chunk, i, c)
			}
		}
		if tc.n == 0 && calls != 0 {
			t.Fatalf("empty range produced %d calls", calls)
		}
	}
}
