package stream

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hare/internal/brute"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// trials scales a randomized-trial count down under -short (the CI race job
// runs with it), keeping full coverage on the plain test pass.
func trials(t *testing.T, n int) int {
	t.Helper()
	if testing.Short() {
		return max(1, n/5)
	}
	return n
}

// feedBatches ingests edges through AddBatch in slices of size batch.
func feedBatches(t *testing.T, c *Counter, edges []temporal.Edge, batch int) {
	t.Helper()
	for len(edges) > 0 {
		n := min(batch, len(edges))
		if err := c.AddBatch(edges[:n]); err != nil {
			t.Fatal(err)
		}
		edges = edges[n:]
	}
}

// liveSubset returns the edges inside the window [lastT-δ, lastT], in input
// order (which preserves the tie convention under FromEdges' stable sort).
func liveSubset(edges []temporal.Edge, lastT, delta temporal.Timestamp) []temporal.Edge {
	var out []temporal.Edge
	for _, e := range edges {
		if e.Time >= lastT-delta {
			out = append(out, e)
		}
	}
	return out
}

// TestAddBatchMatchesSequential is the core equivalence property of the
// parallel ingest path: for random streams, arbitrary batch splits, worker
// counts, and both modes, AddBatch's matrices are bit-identical to
// sequential Add's and to the batch FAST oracle.
func TestAddBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < trials(t, 30); trial++ {
		nodes := 2 + r.Intn(20)
		edges := sortedRandomEdges(r, nodes, 50+r.Intn(900), 1+int64(r.Intn(80)))
		delta := int64(r.Intn(40))
		batch := 1 + r.Intn(len(edges))
		workers := 1 + r.Intn(8)
		mode := Mode(r.Intn(2))

		seq, err := NewCounter(Options{Delta: delta, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		feed(t, seq, edges)

		par, err := NewCounter(Options{Delta: delta, Mode: mode, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		feedBatches(t, par, edges, batch)

		label := fmt.Sprintf("trial %d (δ=%d, %d edges, batch=%d, workers=%d, mode=%d)",
			trial, delta, len(edges), batch, workers, mode)
		want := seq.Matrix()
		got := par.Matrix()
		if !got.Equal(&want) {
			t.Fatalf("%s: batch vs sequential diff %v", label, got.Diff(&want))
		}
		oracle := fast.Count(temporal.FromEdges(edges), delta).ToMatrix()
		if !got.Equal(&oracle) {
			t.Fatalf("%s: batch vs FAST diff %v", label, got.Diff(&oracle))
		}
		if mode == Sliding {
			ws, err := seq.WindowMatrix()
			if err != nil {
				t.Fatal(err)
			}
			wp, err := par.WindowMatrix()
			if err != nil {
				t.Fatal(err)
			}
			if !wp.Equal(&ws) {
				t.Fatalf("%s: window batch vs sequential diff %v", label, wp.Diff(&ws))
			}
		}
		if par.Edges() != seq.Edges() || par.SelfLoopsDropped() != seq.SelfLoopsDropped() {
			t.Fatalf("%s: edge accounting diverged", label)
		}
	}
}

// TestSlidingWindowMatchesBrute cross-checks WindowMatrix at every
// checkpoint against a brute-force count over exactly the window's edge
// subset — the defining property of sliding mode.
func TestSlidingWindowMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < trials(t, 20); trial++ {
		nodes := 2 + r.Intn(10)
		edges := sortedRandomEdges(r, nodes, 30+r.Intn(200), 1+int64(r.Intn(60)))
		delta := int64(r.Intn(25))
		c, err := NewSliding(delta)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range edges {
			if err := c.Add(e.From, e.To, e.Time); err != nil {
				t.Fatal(err)
			}
			if i%7 != 6 {
				continue
			}
			got, err := c.WindowMatrix()
			if err != nil {
				t.Fatal(err)
			}
			live := liveSubset(edges[:i+1], e.Time, delta)
			want := brute.Count(temporal.FromEdges(live), delta)
			if !got.Equal(&want) {
				t.Fatalf("trial %d after %d edges (δ=%d): window diff %v",
					trial, i+1, delta, got.Diff(&want))
			}
			// Cumulative counts must be unaffected by retirement.
			cum := c.Matrix()
			wantCum := brute.Count(temporal.FromEdges(edges[:i+1]), delta)
			if !cum.Equal(&wantCum) {
				t.Fatalf("trial %d after %d edges: cumulative diff %v",
					trial, i+1, cum.Diff(&wantCum))
			}
		}
	}
}

// Sliding mode through the parallel path must agree with brute force on the
// window subset too (larger batches, several workers).
func TestSlidingBatchMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < trials(t, 8); trial++ {
		edges := sortedRandomEdges(r, 2+r.Intn(14), 400+r.Intn(400), 1+int64(r.Intn(100)))
		delta := int64(5 + r.Intn(30))
		c, err := NewCounter(Options{Delta: delta, Mode: Sliding, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		batch := 64 + r.Intn(300)
		for start := 0; start < len(edges); start += batch {
			end := min(start+batch, len(edges))
			if err := c.AddBatch(edges[start:end]); err != nil {
				t.Fatal(err)
			}
			got, err := c.WindowMatrix()
			if err != nil {
				t.Fatal(err)
			}
			lastT := edges[end-1].Time
			want := brute.Count(temporal.FromEdges(liveSubset(edges[:end], lastT, delta)), delta)
			if !got.Equal(&want) {
				t.Fatalf("trial %d after %d edges (δ=%d, batch=%d): diff %v",
					trial, end, delta, batch, got.Diff(&want))
			}
		}
	}
}

func TestAdvanceDrainsWindow(t *testing.T) {
	c, err := NewSliding(10)
	if err != nil {
		t.Fatal(err)
	}
	// A tight triangle: all three motif edges inside one window.
	_ = c.Add(0, 1, 100)
	_ = c.Add(1, 2, 103)
	_ = c.Add(2, 0, 106)
	w, _ := c.WindowMatrix()
	if w.Total() != 1 {
		t.Fatalf("window total = %d, want 1", w.Total())
	}
	// Advancing within δ of the first edge keeps the instance live.
	if err := c.Advance(109); err != nil {
		t.Fatal(err)
	}
	w, _ = c.WindowMatrix()
	if w.Total() != 1 {
		t.Fatalf("window total after Advance(109) = %d, want 1", w.Total())
	}
	// Advancing past it drains the window; cumulative counts stay.
	if err := c.Advance(200); err != nil {
		t.Fatal(err)
	}
	w, _ = c.WindowMatrix()
	if w.Total() != 0 {
		t.Fatalf("window total after Advance(200) = %d, want 0", w.Total())
	}
	if m := c.Matrix(); m.Total() != 1 {
		t.Fatalf("cumulative total after Advance = %d, want 1", m.Total())
	}
	if err := c.Advance(150); err == nil {
		t.Fatal("want error for Advance behind watermark")
	}
	// New edges behind the advanced watermark are rejected.
	if err := c.Add(0, 1, 150); err == nil {
		t.Fatal("want error for Add behind advanced watermark")
	}
}

func TestAddBatchRejectsAtomically(t *testing.T) {
	c, err := NewCounter(Options{Delta: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	before := c.Matrix()
	bad := []temporal.Edge{
		{From: 1, To: 2, Time: 101},
		{From: 2, To: 3, Time: 99}, // out of order within the batch
	}
	if err := c.AddBatch(bad); err == nil {
		t.Fatal("want error for out-of-order batch")
	}
	bad2 := []temporal.Edge{{From: 1, To: 2, Time: 50}} // behind the stream
	if err := c.AddBatch(bad2); err == nil {
		t.Fatal("want error for batch behind watermark")
	}
	bad3 := []temporal.Edge{{From: -1, To: 2, Time: 101}}
	if err := c.AddBatch(bad3); err == nil {
		t.Fatal("want error for negative node id")
	}
	after := c.Matrix()
	if c.Edges() != 1 || !after.Equal(&before) {
		t.Fatal("rejected batch mutated the counter")
	}
	if err := c.AddBatch(nil); err != nil {
		t.Fatal(err)
	}
}

// EdgeIDs are int32; both ingest paths must refuse to wrap them rather than
// silently corrupt the windows' ID order.
func TestEdgeIDExhaustion(t *testing.T) {
	c, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	c.nextID = math.MaxInt32 - 1
	if err := c.Add(0, 1, 5); err != nil {
		t.Fatal(err) // one id left: fine
	}
	if err := c.Add(1, 2, 6); err == nil {
		t.Fatal("want error when the id space is exhausted")
	}
	if err := c.AddBatch([]temporal.Edge{{From: 1, To: 2, Time: 6}}); err == nil {
		t.Fatal("want batch error when the id space is exhausted")
	}
	// Self-loops consume no ids and still pass.
	if err := c.AddBatch([]temporal.Edge{{From: 2, To: 2, Time: 7}}); err != nil {
		t.Fatal(err)
	}
}

func TestAddBatchSelfLoops(t *testing.T) {
	c, err := NewCounter(Options{Delta: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	edges := []temporal.Edge{
		{From: 0, To: 0, Time: 1},
		{From: 0, To: 1, Time: 2},
		{From: 3, To: 3, Time: 3},
	}
	if err := c.AddBatch(edges); err != nil {
		t.Fatal(err)
	}
	if c.SelfLoopsDropped() != 2 || c.Edges() != 1 {
		t.Fatalf("loops=%d edges=%d", c.SelfLoopsDropped(), c.Edges())
	}
}

// A parallel-path batch that filters down to zero real edges still advances
// the watermark, so sliding mode must retire what fell out of the window.
func TestSlidingAllLoopBatchRetires(t *testing.T) {
	c, err := NewCounter(Options{Delta: 10, Mode: Sliding, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Add(0, 1, 100)
	_ = c.Add(1, 2, 103)
	_ = c.Add(2, 0, 106)
	w, _ := c.WindowMatrix()
	if w.Total() != 1 {
		t.Fatalf("window total = %d, want 1", w.Total())
	}
	// Enough self-loops to take the parallel path, far past the window.
	loops := make([]temporal.Edge, MinParallelBatch+64)
	for i := range loops {
		loops[i] = temporal.Edge{From: 7, To: 7, Time: 1000}
	}
	if err := c.AddBatch(loops); err != nil {
		t.Fatal(err)
	}
	w, _ = c.WindowMatrix()
	if w.Total() != 0 {
		t.Fatalf("window total after all-loop batch = %d, want 0", w.Total())
	}
	if m := c.Matrix(); m.Total() != 1 {
		t.Fatalf("cumulative total = %d, want 1", m.Total())
	}
}

func TestWindowMatrixRequiresSliding(t *testing.T) {
	c, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WindowMatrix(); err == nil {
		t.Fatal("want error for WindowMatrix on cumulative counter")
	}
	if c.Mode() != Cumulative {
		t.Fatal("New must build a cumulative counter")
	}
	s, err := NewSliding(10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode() != Sliding {
		t.Fatal("NewSliding must build a sliding counter")
	}
}

func TestNewCounterValidation(t *testing.T) {
	if _, err := NewCounter(Options{Delta: -1}); err == nil {
		t.Fatal("want error for negative δ")
	}
	if _, err := NewCounter(Options{Delta: 1, Mode: Mode(7)}); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

// TestScratchShedding checks the documented memory policy: after a
// pathological high-degree burst, the scratch maps are reallocated (not
// just cleared) once traffic calms down, releasing the burst's buckets.
func TestScratchShedding(t *testing.T) {
	c, err := New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	// Burst: one hub talks to shedFloor+ distinct neighbors inside the
	// window, so a scan populates > shedFloor map entries.
	for i := 0; i < shedFloor+128; i++ {
		if err := c.Add(0, temporal.NodeID(i+1), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	burstMap := reflect.ValueOf(c.kern.runIn).Pointer()
	if c.kern.peak < shedFloor {
		t.Fatalf("burst peak = %d, want >= %d", c.kern.peak, shedFloor)
	}
	// Quiet traffic on fresh nodes: tiny windows, population far below the
	// high-water mark — the maps must be swapped for small ones.
	base := temporal.NodeID(shedFloor + 1000)
	for i := 0; i < 4; i++ {
		if err := c.Add(base+temporal.NodeID(i), base+temporal.NodeID(i+1), int64(shedFloor+200+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reflect.ValueOf(c.kern.runIn).Pointer(); got == burstMap {
		t.Fatal("scratch maps not reallocated after burst subsided")
	}
	if c.kern.peak >= shedFloor {
		t.Fatalf("high-water mark not reset: %d", c.kern.peak)
	}
}

func TestFeed(t *testing.T) {
	input := `# comment
0 1 10
1 2 12
% another comment

2 0 14
3 3 15
0 3 16
`
	c, err := NewCounter(Options{Delta: 100, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var batches, edgesSeen int
	n, err := c.Feed(strings.NewReader(input), FeedOptions{
		BatchSize: 2,
		OnBatch:   func(_ *Counter, n int) { batches++; edgesSeen += n },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || edgesSeen != 5 || batches != 3 {
		t.Fatalf("n=%d edgesSeen=%d batches=%d", n, edgesSeen, batches)
	}
	if c.Edges() != 4 || c.SelfLoopsDropped() != 1 {
		t.Fatalf("edges=%d loops=%d", c.Edges(), c.SelfLoopsDropped())
	}
	// Same counts as the equivalent Add loop.
	want := motif.Matrix{}
	{
		ref, _ := New(100)
		_ = ref.Add(0, 1, 10)
		_ = ref.Add(1, 2, 12)
		_ = ref.Add(2, 0, 14)
		_ = ref.Add(3, 3, 15)
		_ = ref.Add(0, 3, 16)
		want = ref.Matrix()
	}
	got := c.Matrix()
	if !got.Equal(&want) {
		t.Fatalf("feed vs add diff %v", got.Diff(&want))
	}

	for _, bad := range []string{
		"0 1\n", "x 1 2\n", "0 y 2\n", "0 1 z\n", "0 1 5\n0 1 3\n",
		"-5 1 10\n",           // negative id must fail at the line, not wrap
		"-4294967291 2 20\n",  // below MinInt32: would alias node +5 if int32-converted
		"99999999999 2 20\n",  // above MaxInt32
		"0 1 5\n\n# c\n0 1 3", // ordering checked across comments too
	} {
		c2, _ := New(10)
		if _, err := c2.Feed(strings.NewReader(bad), FeedOptions{}); err == nil {
			t.Fatalf("want error for input %q", bad)
		}
	}
	// Ingestion errors must name the exact input line, even past the first
	// batch: edge on line 4 (after a comment) is out of order.
	c3, _ := New(10)
	_, err = c3.Feed(strings.NewReader("1 2 10\n2 3 11\n# note\n3 4 5\n"), FeedOptions{BatchSize: 2})
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want line-numbered out-of-order error, got %v", err)
	}
}

// TestFeedParallelParseEquivalence: Feed with ParseWorkers must be
// bit-identical to the sequential scanner path — same totals, same counts,
// same error on the same line — over valid and invalid inputs.
func TestFeedParallelParseEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var sb strings.Builder
	tnow := int64(0)
	for i := 0; i < 5000; i++ {
		switch {
		case i%97 == 0:
			sb.WriteString("# checkpoint\n")
		case i%131 == 0:
			sb.WriteString("\n")
		default:
			tnow += int64(r.Intn(3))
			fmt.Fprintf(&sb, "%d %d %d\n", r.Intn(40), r.Intn(40), tnow)
		}
	}
	inputs := []string{
		sb.String(),
		"0 1 10\n1 2 12\n2 0 14\n3 3 15\n0 3 16\n",
		"1 2 10\n2 3 11\n# note\n3 4 5\n", // out of order at line 4
		"1 2 10\nbogus\n2 3 11\n",         // parse error at line 2
		"1 2 10\n99999999999 2 20\n",      // id out of range at line 2
		"",                                // empty stream
	}
	for i, input := range inputs {
		seq, err1 := NewCounter(Options{Delta: 50, Workers: 2})
		if err1 != nil {
			t.Fatal(err1)
		}
		n1, ferr1 := seq.Feed(strings.NewReader(input), FeedOptions{BatchSize: 64})
		par, err2 := NewCounter(Options{Delta: 50, Workers: 2})
		if err2 != nil {
			t.Fatal(err2)
		}
		n2, ferr2 := par.Feed(strings.NewReader(input), FeedOptions{BatchSize: 64, ParseWorkers: 4})
		if n1 != n2 {
			t.Fatalf("input %d: totals %d vs %d", i, n1, n2)
		}
		if (ferr1 == nil) != (ferr2 == nil) || (ferr1 != nil && ferr1.Error() != ferr2.Error()) {
			t.Fatalf("input %d: errors %v vs %v", i, ferr1, ferr2)
		}
		sm, pm := seq.Matrix(), par.Matrix()
		if !sm.Equal(&pm) {
			t.Fatalf("input %d: counts diverge: %v", i, sm.Diff(&pm))
		}
		if seq.Edges() != par.Edges() || seq.SelfLoopsDropped() != par.SelfLoopsDropped() {
			t.Fatalf("input %d: edges %d/%d loops %d/%d", i,
				seq.Edges(), par.Edges(), seq.SelfLoopsDropped(), par.SelfLoopsDropped())
		}
	}
}

// The big-batch path must also agree when one AddBatch call spans many
// multiples of δ, so edges arrive and expire inside the same call.
func TestSlidingExpiryWithinOneBatch(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	edges := sortedRandomEdges(r, 10, 800, 2000) // span >> δ
	delta := int64(20)
	c, err := NewCounter(Options{Delta: delta, Mode: Sliding, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBatch(edges); err != nil {
		t.Fatal(err)
	}
	lastT := edges[len(edges)-1].Time
	got, err := c.WindowMatrix()
	if err != nil {
		t.Fatal(err)
	}
	want := brute.Count(temporal.FromEdges(liveSubset(edges, lastT, delta)), delta)
	if !got.Equal(&want) {
		t.Fatalf("diff %v", got.Diff(&want))
	}
	cum := c.Matrix()
	wantCum := fast.Count(temporal.FromEdges(edges), delta).ToMatrix()
	if !cum.Equal(&wantCum) {
		t.Fatalf("cumulative diff %v", cum.Diff(&wantCum))
	}
}
