package stream

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// MinParallelBatch is the batch size below which fan-out overhead outweighs
// the parallel scans and AddBatch falls back to the sequential path.
// Callers tuning snapshot granularity against ingest parallelism (e.g.
// cmd/harestream) can use it to tell which side of the trade they are on.
const MinParallelBatch = 256

// batchChunk is the number of edges per dynamic work unit in the scan
// phases (the engine package's chunked-cursor discipline).
const batchChunk = 256

// AddBatch ingests a batch of edges, equivalent to calling Add for each in
// order but fanned out over the counter's workers: windows are appended
// shard-parallel, then every batch edge's arrival scan (and, in sliding
// mode, every expiry's retirement scan) runs concurrently into per-worker
// private counters that are merged at the end. Because each edge's scans
// are bounded by explicit (EdgeID, time) predicates rather than by mutable
// window state, the merged tallies are bit-identical to sequential Add.
//
// The batch is validated up front and rejected atomically: on error no edge
// of the batch has been ingested. Self-loops are counted and dropped, as in
// Add.
func (c *Counter) AddBatch(edges []temporal.Edge) error {
	if len(edges) >= 1<<30 {
		// The phase bucketing packs rec indices into int32s (index<<1|side);
		// larger batches would overflow them silently. Split at the caller.
		return fmt.Errorf("stream: batch of %d edges exceeds the %d limit; split it", len(edges), 1<<30-1)
	}
	last, started := c.lastT, c.started
	nonLoops := 0
	for i, e := range edges {
		if e.From < 0 || e.To < 0 {
			return fmt.Errorf("stream: batch edge %d: negative node id (%d,%d)", i, e.From, e.To)
		}
		if started && e.Time < last {
			return fmt.Errorf("stream: batch edge %d: out-of-order edge at t=%d (last %d)", i, e.Time, last)
		}
		started, last = true, e.Time
		if e.From != e.To {
			nonLoops++
		}
	}
	if int64(c.nextID) > math.MaxInt32-int64(nonLoops) {
		// See the matching guard in Add: int32 EdgeIDs must not wrap.
		return fmt.Errorf("stream: batch of %d edges would exhaust the edge id space (%d ingested)", nonLoops, c.nextID)
	}
	if len(edges) == 0 {
		return nil
	}
	workers := c.opts.Workers
	if workers > len(edges)/(MinParallelBatch/4) {
		workers = len(edges) / (MinParallelBatch / 4)
	}
	if workers <= 1 || len(edges) < MinParallelBatch {
		for _, e := range edges {
			c.addValidated(e.From, e.To, e.Time)
		}
		return nil
	}

	// Assign IDs up front; the counting phases only need (id, u, v, t).
	recs := make([]edgeRec, 0, len(edges))
	id := c.nextID
	for _, e := range edges {
		if e.From == e.To {
			c.loops++
			continue
		}
		recs = append(recs, edgeRec{id: id, u: e.From, v: e.To, t: e.Time})
		id++
	}
	c.nextID = id
	c.started, c.lastT = true, last
	cutoff := last - c.opts.Delta
	if len(recs) == 0 {
		// Nothing to count, but the watermark still advanced: expire what
		// fell out of the window, as a loop of Add calls would have.
		if c.opts.Mode == Sliding {
			c.retireExpired(cutoff)
		}
		return nil
	}

	// Bucket the batch's half-edges by owning worker in one O(n) pass: each
	// worker owns a fixed subset of shards, and a bucket entry names a rec
	// index plus which endpoint's half belongs to that worker. Buckets are
	// filled in batch order, so per-node append order (= EdgeID order) in
	// the phases below is deterministic.
	buckets := make([][]int32, workers)
	for i, r := range recs {
		gu := int(shardOf(r.u, c.shardBits)) % workers
		buckets[gu] = append(buckets[gu], int32(i)<<1)
		gv := int(shardOf(r.v, c.shardBits)) % workers
		buckets[gv] = append(buckets[gv], int32(i)<<1|1)
	}

	// Phase 1: append both half-edges of every batch edge, shard-parallel.
	c.parallel(workers, func(w int) {
		for _, ref := range buckets[w] {
			r := recs[ref>>1]
			if ref&1 == 0 {
				c.window(r.u).push(r.id, r.t, r.v, true)
			} else {
				c.window(r.v).push(r.id, r.t, r.u, false)
			}
		}
	})

	// Phase 2: arrival scans over the batch, worker-private counters. The
	// (ID < id, Time >= t-δ) window predicate reconstructs each edge's
	// exact as-of-arrival state from the already-appended arrays, so scan
	// order across workers cannot change the sums.
	c.scanPhase(workers, recs, false)

	// Phase 3 (sliding): queue the batch, pop everything now expired, and
	// run the retirement scans concurrently too — each expiring edge's
	// companions are fixed by the (ID > id, Time <= t+δ) predicate.
	if c.opts.Mode == Sliding {
		for _, r := range recs {
			c.fifo.push(r)
		}
		if popped := c.fifo.popExpired(cutoff); len(popped) > 0 {
			c.scanPhase(workers, popped, true)
		}
		c.fifo.compact()
	}

	// Phase 4: reclaim expired window prefixes, shard-parallel. Purely a
	// memory operation: the scans above never look behind the cutoff.
	c.parallel(workers, func(w int) {
		for _, ref := range buckets[w] {
			r := recs[ref>>1]
			if ref&1 == 0 {
				c.peek(r.u).trim(cutoff)
			} else {
				c.peek(r.v).trim(cutoff)
			}
		}
	})
	return nil
}

// scanPhase fans the per-edge scans of recs out over workers with private
// counters, then merges them into the counter's tallies (retire selects the
// retirement kernels and the retired accumulator).
func (c *Counter) scanPhase(workers int, recs []edgeRec, retire bool) {
	for len(c.workerScratch) < workers {
		c.workerScratch = append(c.workerScratch, newScratch())
	}
	perWorker := make([]motif.Counts, workers)
	var cursor atomic.Int64
	c.parallel(workers, func(w int) {
		counts := &perWorker[w]
		counts.TriMultiplicity = 1
		kern := c.workerScratch[w]
		for {
			end := cursor.Add(batchChunk)
			start := end - batchChunk
			if start >= int64(len(recs)) {
				return
			}
			if end > int64(len(recs)) {
				end = int64(len(recs))
			}
			for _, r := range recs[start:end] {
				var pop int
				if retire {
					uw := c.peek(r.u).after(r.id, r.t+c.opts.Delta)
					vw := c.peek(r.v).after(r.id, r.t+c.opts.Delta)
					pop = kern.countRetire(counts, uw, vw, r.u, r.v)
				} else {
					uw := c.peek(r.u).before(r.t-c.opts.Delta, r.id)
					vw := c.peek(r.v).before(r.t-c.opts.Delta, r.id)
					pop = kern.countArrival(counts, uw, vw, r.u, r.v)
				}
				kern.shed(pop)
			}
		}
	})
	total := &c.counts
	if retire {
		total = &c.retired
	}
	for w := range perWorker {
		total.Add(&perWorker[w])
	}
}

func (c *Counter) parallel(workers int, fn func(w int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
