package stream

import (
	"math/rand"
	"sort"
	"testing"

	"hare/internal/brute"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// sortedRandomEdges yields a random edge list in non-decreasing time order.
func sortedRandomEdges(r *rand.Rand, nodes, edges int, span int64) []temporal.Edge {
	out := make([]temporal.Edge, 0, edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		out = append(out, temporal.Edge{From: u, To: v, Time: r.Int63n(span)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

func feed(t *testing.T, c *Counter, edges []temporal.Edge) {
	t.Helper()
	for _, e := range edges {
		if err := c.Add(e.From, e.To, e.Time); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		nodes := 2 + r.Intn(12)
		edges := sortedRandomEdges(r, nodes, 1+r.Intn(150), 1+int64(r.Intn(50)))
		delta := int64(r.Intn(30))
		c, err := New(delta)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, c, edges)
		want := brute.Count(temporal.FromEdges(edges), delta)
		got := c.Matrix()
		if !got.Equal(&want) {
			t.Fatalf("trial %d (δ=%d, %d edges): diff %v", trial, delta, len(edges), got.Diff(&want))
		}
	}
}

// Every prefix of the stream must agree with a batch run over that prefix —
// the defining property of an online exact counter.
func TestStreamPrefixConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	edges := sortedRandomEdges(r, 8, 120, 40)
	delta := int64(12)
	c, err := New(delta)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		if err := c.Add(e.From, e.To, e.Time); err != nil {
			t.Fatal(err)
		}
		if i%10 != 9 {
			continue
		}
		want := fast.Count(temporal.FromEdges(edges[:i+1]), delta).ToMatrix()
		got := c.Matrix()
		if !got.Equal(&want) {
			t.Fatalf("after %d edges: diff %v", i+1, got.Diff(&want))
		}
	}
}

func TestStreamTieHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		edges := sortedRandomEdges(r, 2+r.Intn(6), 1+r.Intn(120), 1+int64(r.Intn(4)))
		delta := int64(r.Intn(4))
		c, _ := New(delta)
		feed(t, c, edges)
		want := brute.Count(temporal.FromEdges(edges), delta)
		got := c.Matrix()
		if !got.Equal(&want) {
			t.Fatalf("trial %d: diff %v", trial, got.Diff(&want))
		}
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("want error for negative δ")
	}
	c, _ := New(10)
	if err := c.Add(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(1, 2, 99); err == nil {
		t.Fatal("want error for out-of-order edge")
	}
	if err := c.Add(-1, 2, 200); err == nil {
		t.Fatal("want error for negative node")
	}
	// Equal timestamps are fine.
	if err := c.Add(1, 2, 100); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSelfLoops(t *testing.T) {
	c, _ := New(10)
	_ = c.Add(0, 0, 1)
	_ = c.Add(0, 1, 2)
	if c.SelfLoopsDropped() != 1 || c.Edges() != 1 {
		t.Fatalf("loops=%d edges=%d", c.SelfLoopsDropped(), c.Edges())
	}
}

func TestStreamAccessors(t *testing.T) {
	c, _ := New(42)
	if c.Delta() != 42 || c.Edges() != 0 {
		t.Fatal("accessors wrong on empty counter")
	}
	m := c.Matrix()
	if m.Total() != 0 {
		t.Fatal("empty counter has counts")
	}
}

// The window must actually trim: after a long quiet gap, per-node state
// shrinks back to the live suffix.
func TestStreamWindowTrim(t *testing.T) {
	c, _ := New(10)
	for i := 0; i < 1000; i++ {
		if err := c.Add(0, 1, int64(i)*100); err != nil {
			t.Fatal(err)
		}
	}
	w := c.peek(0)
	if live := w.live().Len(); live > 2 {
		t.Fatalf("window kept %d live edges, want <= 2", live)
	}
	if len(w.id) > 64 {
		t.Fatalf("backing columns not compacted: %d", len(w.id))
	}
	// Widely spaced edges produce no motifs.
	m := c.Matrix()
	if m.Total() != 0 {
		t.Fatalf("spaced stream counted %d motifs", m.Total())
	}
}

func TestStreamKnownInstances(t *testing.T) {
	c, _ := New(100)
	// A cycle completes one M26 exactly when the closing edge arrives.
	_ = c.Add(0, 1, 1)
	_ = c.Add(1, 2, 2)
	before := c.Matrix()
	if before.Total() != 0 {
		t.Fatal("premature counts")
	}
	_ = c.Add(2, 0, 3)
	after := c.Matrix()
	if after.At(motif.Label{Row: 2, Col: 6}) != 1 || after.Total() != 1 {
		t.Fatalf("matrix after cycle:\n%v", &after)
	}
	// Ping-pong pair: u->v, v->u, u->v is M65.
	c2, _ := New(100)
	_ = c2.Add(5, 6, 10)
	_ = c2.Add(6, 5, 20)
	_ = c2.Add(5, 6, 30)
	m := c2.Matrix()
	if m.At(motif.Label{Row: 6, Col: 5}) != 1 || m.Total() != 1 {
		t.Fatalf("pair matrix:\n%v", &m)
	}
}

func TestStreamSkewedGraph(t *testing.T) {
	// Hub-heavy stream exercises the larger-window join path.
	r := rand.New(rand.NewSource(54))
	var edges []temporal.Edge
	for i := 0; i < 400; i++ {
		hub := temporal.NodeID(r.Intn(2))
		other := temporal.NodeID(2 + r.Intn(10))
		if r.Intn(2) == 0 {
			edges = append(edges, temporal.Edge{From: hub, To: other, Time: int64(i)})
		} else {
			edges = append(edges, temporal.Edge{From: other, To: hub, Time: int64(i)})
		}
	}
	delta := int64(25)
	c, _ := New(delta)
	feed(t, c, edges)
	want := brute.Count(temporal.FromEdges(edges), delta)
	got := c.Matrix()
	if !got.Equal(&want) {
		t.Fatalf("diff %v", got.Diff(&want))
	}
}
