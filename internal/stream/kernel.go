package stream

import (
	"hare/internal/motif"
	"hare/internal/temporal"
)

// scratch holds one worker's reusable hash maps for the per-edge scans. A
// scratch must not be shared between goroutines; the batched ingest path
// gives every worker its own.
//
// Memory policy: clear() empties a map but Go never releases its buckets, so
// one pathological high-degree burst (a node with a huge δ-window) would pin
// that worst-case footprint forever. The scratch therefore tracks a
// high-water mark of entries populated per scan and reallocates the maps
// once the mark exceeds shedFloor while the current scan used less than
// 1/shedRatio of it — steady-state traffic pays nothing, and a burst's
// buckets are shed as soon as the stream calms down.
type scratch struct {
	runIn   map[temporal.NodeID]uint64
	runOut  map[temporal.NodeID]uint64
	nbrJoin map[temporal.NodeID][]temporal.HalfEdge
	peak    int // max entries populated in one scan since the last shed
}

const (
	shedFloor = 4096
	shedRatio = 8
)

func newScratch() *scratch {
	return &scratch{
		runIn:   make(map[temporal.NodeID]uint64),
		runOut:  make(map[temporal.NodeID]uint64),
		nbrJoin: make(map[temporal.NodeID][]temporal.HalfEdge),
	}
}

// shed applies the memory policy after one edge's scans; pop is the number
// of map entries those scans populated.
func (s *scratch) shed(pop int) {
	if pop > s.peak {
		s.peak = pop
	}
	if s.peak >= shedFloor && pop*shedRatio <= s.peak {
		s.runIn = make(map[temporal.NodeID]uint64, pop)
		s.runOut = make(map[temporal.NodeID]uint64, pop)
		s.nbrJoin = make(map[temporal.NodeID][]temporal.HalfEdge, pop)
		s.peak = pop
	}
}

// countArrival tallies every motif instance completed by the edge
// (id, u->v, t): the arriving edge is the chronologically last edge of each
// instance. uw and vw are columnar views of the endpoints' δ-windows as of
// the arrival — edges with ID < id and Time >= t-δ. Returns the scratch
// population for shed accounting.
func (s *scratch) countArrival(counts *motif.Counts, uw, vw temporal.Seq, u, v temporal.NodeID) int {
	pop := s.scanStarPair(counts, uw, v, true)
	if p := s.scanStarPair(counts, vw, u, false); p > pop {
		pop = p
	}
	if p := s.joinTriangles(&counts.Tri, true, uw, vw); p > pop {
		pop = p
	}
	return pop
}

// countRetire tallies every still-live motif instance whose chronologically
// first edge is the expiring edge (id, u->v, t): its two later edges lie in
// the endpoints' forward windows — edges with ID > id and Time <= t+δ.
// Every such instance was counted at arrival time (all three edges span
// <= δ), so subtracting these tallies retires exactly the instances that
// drop out of the sliding window. Returns the scratch population.
func (s *scratch) countRetire(counts *motif.Counts, uw, vw temporal.Seq, u, v temporal.NodeID) int {
	pop := s.retireStarPair(counts, uw, v, true)
	if p := s.retireStarPair(counts, vw, u, false); p > pop {
		pop = p
	}
	if p := s.joinTriangles(&counts.Tri, false, uw, vw); p > pop {
		pop = p
	}
	return pop
}

// scanStarPair counts the star/pair triples whose last edge is the arriving
// edge, centered at the window's owner. other is the arriving edge's far
// endpoint and out its direction relative to the owner.
//
// One forward pass over the window with running totals: at each candidate
// middle edge e2, the number of valid first edges of each class is known
// from the running counters, split by whether the first edge goes to the
// same neighbor as e2 / as the arriving edge.
func (s *scratch) scanStarPair(counts *motif.Counts, win temporal.Seq, other temporal.NodeID, out bool) int {
	if win.Len() < 2 {
		return 0
	}
	d3 := motif.DirOf(out)
	clear(s.runIn)
	clear(s.runOut)
	var nIn, nOut uint64
	for i := 0; i < win.Len(); i++ {
		e2Other, e2Out := win.Other[i], win.Out[i]
		d2 := motif.DirOf(e2Out)
		if e2Other == other {
			// e2 pairs with the arriving edge (both to `other`): a first
			// edge to `other` completes a 2-node pair; elsewhere it is the
			// isolated first edge of a Star-I.
			cin, cout := s.runIn[other], s.runOut[other]
			counts.Pair[motif.PairIndex(motif.In, d2, d3)] += cin
			counts.Pair[motif.PairIndex(motif.Out, d2, d3)] += cout
			counts.Star[motif.StarIndex(motif.StarI, motif.In, d2, d3)] += nIn - cin
			counts.Star[motif.StarIndex(motif.StarI, motif.Out, d2, d3)] += nOut - cout
		} else {
			// e2 goes to some n != other: a first edge to n pairs with e2
			// (Star-III); a first edge to `other` pairs with the arriving
			// edge (Star-II).
			counts.Star[motif.StarIndex(motif.StarIII, motif.In, d2, d3)] += s.runIn[e2Other]
			counts.Star[motif.StarIndex(motif.StarIII, motif.Out, d2, d3)] += s.runOut[e2Other]
			counts.Star[motif.StarIndex(motif.StarII, motif.In, d2, d3)] += s.runIn[other]
			counts.Star[motif.StarIndex(motif.StarII, motif.Out, d2, d3)] += s.runOut[other]
		}
		if e2Out {
			s.runOut[e2Other]++
			nOut++
		} else {
			s.runIn[e2Other]++
			nIn++
		}
	}
	return len(s.runIn) + len(s.runOut)
}

// retireStarPair is scanStarPair's time mirror: the fixed edge is the
// chronologically *first* edge of each triple (direction d1 relative to the
// owner), and win holds the owner's later in-window edges. One forward pass
// treating each window edge as the last edge e3, with running totals over
// the middle-edge candidates seen so far — the same loop shape as batch
// FAST's Algorithm 1 inner loop with the retiring edge as e1.
func (s *scratch) retireStarPair(counts *motif.Counts, win temporal.Seq, other temporal.NodeID, out bool) int {
	if win.Len() < 2 {
		return 0
	}
	d1 := motif.DirOf(out)
	clear(s.runIn)
	clear(s.runOut)
	var nIn, nOut uint64
	for i := 0; i < win.Len(); i++ {
		e3Other, e3Out := win.Other[i], win.Out[i]
		d3 := motif.DirOf(e3Out)
		if e3Other == other {
			// e3 pairs with the retiring edge (both to `other`): a middle
			// edge to `other` makes the triple a 2-node pair; elsewhere the
			// middle edge is isolated (Star-II).
			cin, cout := s.runIn[other], s.runOut[other]
			counts.Pair[motif.PairIndex(d1, motif.In, d3)] += cin
			counts.Pair[motif.PairIndex(d1, motif.Out, d3)] += cout
			counts.Star[motif.StarIndex(motif.StarII, d1, motif.In, d3)] += nIn - cin
			counts.Star[motif.StarIndex(motif.StarII, d1, motif.Out, d3)] += nOut - cout
		} else {
			// e3 goes to some n != other: a middle edge to n pairs with e3
			// (Star-I); a middle edge to `other` pairs with the retiring
			// edge (Star-III).
			counts.Star[motif.StarIndex(motif.StarI, d1, motif.In, d3)] += s.runIn[e3Other]
			counts.Star[motif.StarIndex(motif.StarI, d1, motif.Out, d3)] += s.runOut[e3Other]
			counts.Star[motif.StarIndex(motif.StarIII, d1, motif.In, d3)] += s.runIn[other]
			counts.Star[motif.StarIndex(motif.StarIII, d1, motif.Out, d3)] += s.runOut[other]
		}
		if e3Out {
			s.runOut[e3Other]++
			nOut++
		} else {
			s.runIn[e3Other]++
			nIn++
		}
	}
	return len(s.runIn) + len(s.runOut)
}

// joinTriangles enumerates the triangles in which the fixed edge u->v is the
// chronologically extreme edge of the instance: its two companions are one
// window edge u<->w joined with one window edge v<->w. With arrival == true
// the fixed edge is the newest (last) edge and the windows look backward;
// otherwise it is a retiring (first) edge and the windows look forward.
//
// Both cases record the instance in the cell its *arrival* classification
// uses — Triangle-III from the perspective of the vertex not on the last
// edge — so the sliding window's retired tallies subtract cell-exactly from
// the cumulative ones: di/dj are the center-incident edges' directions in
// chronological order, dk the last edge's direction relative to the first
// edge's far endpoint.
func (s *scratch) joinTriangles(tri *motif.TriCounter, arrival bool, uWin, vWin temporal.Seq) int {
	if uWin.Len() == 0 || vWin.Len() == 0 {
		return 0
	}
	// Hash the smaller window by shared neighbor, scan the larger.
	swapped := false
	if uWin.Len() > vWin.Len() {
		uWin, vWin = vWin, uWin
		swapped = true
	}
	clear(s.nbrJoin)
	for i := 0; i < uWin.Len(); i++ {
		a := uWin.At(i)
		s.nbrJoin[a.Other] = append(s.nbrJoin[a.Other], a)
	}
	for i := 0; i < vWin.Len(); i++ {
		b := vWin.At(i)
		for _, a := range s.nbrJoin[b.Other] {
			aw, bw := a, b // aw is u<->w, bw is v<->w (pre-swap orientation)
			if swapped {
				aw, bw = b, a
			}
			var di, dj, dk motif.Dir
			if arrival {
				// The fixed edge is last; the center is the shared vertex w,
				// so the window edges' directions flip to w's perspective.
				diW := motif.Dir(aw.Dir()).Flip()
				djW := motif.Dir(bw.Dir()).Flip()
				if aw.ID < bw.ID {
					di, dj = diW, djW
					dk = motif.Out // ei's far endpoint is u; u->v leaves u
				} else {
					di, dj = djW, diW
					dk = motif.In // ei's far endpoint is v; u->v enters v
				}
			} else {
				// The fixed edge is first (ei); the last edge is the later
				// of (aw,bw) and the center its non-endpoint, u or v — so
				// every direction is already stored center-relative.
				if aw.ID > bw.ID {
					// aw (u<->w) is last: center v, ej = bw, dk = aw rel. u.
					di, dj, dk = motif.In, motif.Dir(bw.Dir()), motif.Dir(aw.Dir())
				} else {
					// bw (v<->w) is last: center u, ej = aw, dk = bw rel. v.
					di, dj, dk = motif.Out, motif.Dir(aw.Dir()), motif.Dir(bw.Dir())
				}
			}
			tri[motif.TriIndex(motif.TriIII, di, dj, dk)]++
		}
	}
	return len(s.nbrJoin)
}
