package stream

import (
	"sort"

	"hare/internal/temporal"
)

// nodeWindow is one node's edge history in the same columnar layout as the
// batch graph's CSR spans: four parallel arrays sorted by EdgeID
// (equivalently by time, since ingestion is chronological). Expired edges
// are trimmed lazily; the backing columns are compacted once the live region
// falls below half the capacity, keeping amortised O(1) appends and O(d^δ)
// memory.
//
// All counting scans slice the window by explicit (EdgeID, Timestamp)
// predicates rather than by the head pointer, so trimming is pure memory
// reclamation and can run at any point where no scan is in flight.
type nodeWindow struct {
	id    []temporal.EdgeID
	time  []temporal.Timestamp
	other []temporal.NodeID
	out   []bool
	head  int // first live (non-expired) index
}

func (w *nodeWindow) trim(cutoff temporal.Timestamp) {
	for w.head < len(w.id) && w.time[w.head] < cutoff {
		w.head++
	}
	if w.head > len(w.id)/2 && w.head > 32 {
		n := copy(w.id, w.id[w.head:])
		copy(w.time, w.time[w.head:])
		copy(w.other, w.other[w.head:])
		copy(w.out, w.out[w.head:])
		w.id = w.id[:n]
		w.time = w.time[:n]
		w.other = w.other[:n]
		w.out = w.out[:n]
		w.head = 0
	}
}

func (w *nodeWindow) push(id temporal.EdgeID, t temporal.Timestamp, other temporal.NodeID, out bool) {
	w.id = append(w.id, id)
	w.time = append(w.time, t)
	w.other = append(w.other, other)
	w.out = append(w.out, out)
}

// live returns the non-trimmed region as a columnar view.
func (w *nodeWindow) live() temporal.Seq {
	return temporal.Seq{
		ID:    w.id[w.head:],
		Time:  w.time[w.head:],
		Other: w.other[w.head:],
		Out:   w.out[w.head:],
	}
}

// before returns the window edges with Time >= minTime and ID < id: the
// δ-window an arriving edge with that (id, time) sees. The result aliases
// the backing columns and is invalidated by the next push or trim.
func (w *nodeWindow) before(minTime temporal.Timestamp, id temporal.EdgeID) temporal.Seq {
	if w == nil {
		return temporal.Seq{}
	}
	live := w.live()
	lo := live.LowerBoundTime(minTime)
	hi := sort.Search(live.Len(), func(i int) bool { return live.ID[i] >= id })
	if lo >= hi {
		return temporal.Seq{}
	}
	return live.Slice(lo, hi)
}

// after returns the window edges with ID > id and Time <= maxTime: the
// in-window successors a retiring edge with that (id, time+δ) had. Same
// aliasing caveat as before.
func (w *nodeWindow) after(id temporal.EdgeID, maxTime temporal.Timestamp) temporal.Seq {
	if w == nil {
		return temporal.Seq{}
	}
	live := w.live()
	lo := sort.Search(live.Len(), func(i int) bool { return live.ID[i] > id })
	hi := live.UpperBoundTime(maxTime)
	if lo >= hi {
		return temporal.Seq{}
	}
	return live.Slice(lo, hi)
}

// windowShard owns the δ-windows of the nodes hashing to it. Shards
// partition per-node state so that the batched ingest path can append and
// trim concurrently, one goroutine per shard group, with no locking.
type windowShard struct {
	windows map[temporal.NodeID]*nodeWindow
}

func (s *windowShard) window(u temporal.NodeID) *nodeWindow {
	w := s.windows[u]
	if w == nil {
		w = &nodeWindow{}
		s.windows[u] = w
	}
	return w
}

// shardOf hashes a node to its shard with Fibonacci multiplicative hashing;
// shards is always a power of two.
func shardOf(u temporal.NodeID, shardBits uint) uint32 {
	return (uint32(u) * 0x9E3779B9) >> (32 - shardBits)
}

// edgeRec is one live edge queued for expiry in sliding-window mode.
type edgeRec struct {
	id   temporal.EdgeID
	u, v temporal.NodeID
	t    temporal.Timestamp
}

// edgeFIFO is the sliding-window expiry queue, in EdgeID (= time) order.
type edgeFIFO struct {
	recs []edgeRec
	head int
}

func (f *edgeFIFO) push(r edgeRec) { f.recs = append(f.recs, r) }

// popExpired removes and returns every queued edge with Time < cutoff.
// The result aliases the queue and is invalidated by the next push or
// compact call, so retire the popped edges before touching the queue again.
func (f *edgeFIFO) popExpired(cutoff temporal.Timestamp) []edgeRec {
	lo := f.head
	for f.head < len(f.recs) && f.recs[f.head].t < cutoff {
		f.head++
	}
	return f.recs[lo:f.head]
}

// compact reclaims the popped prefix once no popExpired result is live.
func (f *edgeFIFO) compact() {
	if f.head > len(f.recs)/2 && f.head > 1024 {
		n := copy(f.recs, f.recs[f.head:])
		f.recs = f.recs[:n]
		f.head = 0
	}
}
