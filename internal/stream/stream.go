// Package stream provides exact online δ-temporal motif counting for edge
// streams — the "frequently updated dynamic systems" the paper's
// introduction motivates. Edges arrive in non-decreasing time order; after
// every arrival the counter holds the exact cumulative counts of all motif
// instances completed so far and, in sliding mode, the exact counts of the
// instances lying entirely inside the last δ window.
//
// The algorithm inverts FAST's loop structure: instead of fixing the first
// edge and scanning forward (Algorithm 1), the newest edge is the *last*
// edge of every newly completed instance, and one backward scan over each
// endpoint's δ-window counts the completed star/pair triples while a
// shared-neighbor join between the two windows enumerates the completed
// triangles. Per-edge cost is O(d^δ) for stars/pairs plus output-sensitive
// work for triangles — the same asymptotics as batch FAST, paid
// incrementally. Sliding mode additionally runs the time-mirrored scans
// when an edge expires: the expiring edge is the *first* edge of every
// instance leaving the window, so the same kernels retire them exactly.
//
// Per-node window state is sharded by node hash, and AddBatch fans a batch
// of edges out over worker goroutines with private per-worker counters
// merged at the end (the engine package's reduction discipline), so ingest
// throughput and state maintenance both scale across cores while results
// stay bit-identical to sequential Add and to batch hare.Count.
package stream

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// Mode selects what Counter.Matrix-family accessors can report.
type Mode int

const (
	// Cumulative counts every instance completed since the stream began.
	// This is the cheapest mode: expired edges are forgotten, never
	// re-examined.
	Cumulative Mode = iota
	// Sliding additionally retires instances as their first edge leaves the
	// δ window, so WindowMatrix reports exactly the instances whose edges
	// all lie in [t_latest-δ, t_latest]. Roughly doubles per-edge work.
	Sliding
)

// Options configures a Counter. The zero value of everything but Delta is
// usable: cumulative mode, GOMAXPROCS batch workers, automatic shard count.
type Options struct {
	// Delta is the motif window δ (>= 0).
	Delta temporal.Timestamp
	// Mode selects cumulative-only or sliding-window counting.
	Mode Mode
	// Workers is the goroutine count for AddBatch fan-out. <= 0 selects
	// runtime.GOMAXPROCS(0). Sequential Add ignores it.
	Workers int
	// Shards is the number of node-window shards (rounded up to a power of
	// two). <= 0 derives it from Workers. More shards than workers keeps
	// the per-shard append loops balanced under skewed node hashes.
	Shards int
}

// Counter is an exact online motif counter. The zero value is not usable;
// call New or NewCounter.
type Counter struct {
	opts      Options
	shardBits uint
	shards    []windowShard

	counts  motif.Counts // completed instances (cumulative)
	retired motif.Counts // expired instances (sliding mode only)
	fifo    edgeFIFO     // live edges pending expiry (sliding mode only)

	nextID  temporal.EdgeID
	lastT   temporal.Timestamp
	started bool
	loops   uint64

	kern          *scratch   // sequential-path scratch
	workerScratch []*scratch // batch workers' scratches, grown on demand
}

// New returns an empty cumulative Counter with the given window δ.
func New(delta temporal.Timestamp) (*Counter, error) {
	return NewCounter(Options{Delta: delta})
}

// NewSliding returns an empty sliding-window Counter with window δ.
func NewSliding(delta temporal.Timestamp) (*Counter, error) {
	return NewCounter(Options{Delta: delta, Mode: Sliding})
}

// NewCounter returns an empty Counter with the given options.
func NewCounter(opts Options) (*Counter, error) {
	if opts.Delta < 0 {
		return nil, fmt.Errorf("stream: negative δ (%d)", opts.Delta)
	}
	if opts.Mode != Cumulative && opts.Mode != Sliding {
		return nil, fmt.Errorf("stream: unknown mode (%d)", opts.Mode)
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Shards <= 0 {
		opts.Shards = 4 * opts.Workers
	}
	bitsN := uint(bits.Len(uint(opts.Shards - 1)))
	if bitsN == 0 {
		bitsN = 1 // at least two shards so shardOf's shift stays in range
	}
	c := &Counter{
		opts:      opts,
		shardBits: bitsN,
		shards:    make([]windowShard, 1<<bitsN),
		counts:    motif.Counts{TriMultiplicity: 1},
		retired:   motif.Counts{TriMultiplicity: 1},
		kern:      newScratch(),
	}
	for i := range c.shards {
		c.shards[i].windows = make(map[temporal.NodeID]*nodeWindow)
	}
	return c, nil
}

// Delta returns the counter's window.
func (c *Counter) Delta() temporal.Timestamp { return c.opts.Delta }

// Mode returns the counter's counting mode.
func (c *Counter) Mode() Mode { return c.opts.Mode }

// Edges returns the number of edges ingested (self-loops excluded).
func (c *Counter) Edges() int { return int(c.nextID) }

// SelfLoopsDropped returns how many self-loop edges were ignored.
func (c *Counter) SelfLoopsDropped() uint64 { return c.loops }

// Matrix returns the cumulative exact per-motif counts over everything
// ingested so far, in every mode.
func (c *Counter) Matrix() motif.Matrix { return c.counts.ToMatrix() }

// WindowMatrix returns the exact per-motif counts of the instances whose
// edges all lie in the current window [t-δ, t], where t is the largest
// timestamp seen (via Add, AddBatch, or Advance). Only sliding-mode
// counters track the retirements this needs.
func (c *Counter) WindowMatrix() (motif.Matrix, error) {
	if c.opts.Mode != Sliding {
		return motif.Matrix{}, fmt.Errorf("stream: WindowMatrix requires Sliding mode")
	}
	live := c.counts
	live.Sub(&c.retired)
	return live.ToMatrix(), nil
}

// window returns node u's window, creating it if needed.
func (c *Counter) window(u temporal.NodeID) *nodeWindow {
	return c.shards[shardOf(u, c.shardBits)].window(u)
}

// peek returns node u's window or nil, without creating it.
func (c *Counter) peek(u temporal.NodeID) *nodeWindow {
	return c.shards[shardOf(u, c.shardBits)].windows[u]
}

// Add ingests the directed edge u -> v at time t. Times must be
// non-decreasing; equal timestamps are ordered by arrival, matching the
// batch algorithms' tie convention. Self-loops are counted and dropped.
func (c *Counter) Add(u, v temporal.NodeID, t temporal.Timestamp) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("stream: negative node id (%d,%d)", u, v)
	}
	if c.started && t < c.lastT {
		return fmt.Errorf("stream: out-of-order edge at t=%d (last %d)", t, c.lastT)
	}
	if c.nextID >= math.MaxInt32 {
		// EdgeIDs are int32 and every window scan relies on their monotonic
		// order; wrapping would corrupt counts silently, so refuse instead.
		return fmt.Errorf("stream: edge id space exhausted after %d edges", c.nextID)
	}
	c.addValidated(u, v, t)
	return nil
}

func (c *Counter) addValidated(u, v temporal.NodeID, t temporal.Timestamp) {
	c.started, c.lastT = true, t
	cutoff := t - c.opts.Delta
	if c.opts.Mode == Sliding {
		c.retireExpired(cutoff)
	}
	if u == v {
		c.loops++
		return
	}
	id := c.nextID
	c.nextID++

	wu, wv := c.window(u), c.window(v)
	uw := wu.before(cutoff, id)
	vw := wv.before(cutoff, id)
	pop := c.kern.countArrival(&c.counts, uw, vw, u, v)
	c.kern.shed(pop)

	wu.push(id, t, v, true)
	wv.push(id, t, u, false)
	wu.trim(cutoff)
	wv.trim(cutoff)
	if c.opts.Mode == Sliding {
		c.fifo.push(edgeRec{id: id, u: u, v: v, t: t})
	}
}

// retireExpired pops every live edge older than cutoff and subtracts the
// instances it leads. Pops happen in EdgeID order, so each expiring edge is
// the chronologically first edge of every instance it still participates
// in; its companions are exactly the in-window edges that follow it
// (ID greater, time within δ) — see scratch.countRetire.
func (c *Counter) retireExpired(cutoff temporal.Timestamp) {
	for _, r := range c.fifo.popExpired(cutoff) {
		uw := c.peek(r.u).after(r.id, r.t+c.opts.Delta)
		vw := c.peek(r.v).after(r.id, r.t+c.opts.Delta)
		pop := c.kern.countRetire(&c.retired, uw, vw, r.u, r.v)
		c.kern.shed(pop)
	}
	c.fifo.compact()
}

// Advance moves the sliding window's right edge to time t without ingesting
// an edge, expiring everything older than t-δ — e.g. to drain a quiet
// stream for a dashboard. Subsequent edges must not be older than t.
// In cumulative mode it only enforces the time watermark.
func (c *Counter) Advance(t temporal.Timestamp) error {
	if c.started && t < c.lastT {
		return fmt.Errorf("stream: Advance to t=%d behind watermark %d", t, c.lastT)
	}
	c.started, c.lastT = true, t
	if c.opts.Mode == Sliding {
		c.retireExpired(t - c.opts.Delta)
	}
	return nil
}
