// Package stream provides exact online δ-temporal motif counting for edge
// streams — the "frequently updated dynamic systems" the paper's
// introduction motivates. Edges arrive in non-decreasing time order; after
// every arrival the counter holds the exact cumulative counts of all motif
// instances completed so far.
//
// The algorithm inverts FAST's loop structure: instead of fixing the first
// edge and scanning forward (Algorithm 1), the newest edge is the *last*
// edge of every newly completed instance, and one backward scan over each
// endpoint's δ-window counts the completed star/pair triples while a
// shared-neighbor join between the two windows enumerates the completed
// triangles. Per-edge cost is O(d^δ) for stars/pairs plus output-sensitive
// work for triangles — the same asymptotics as batch FAST, paid
// incrementally.
package stream

import (
	"fmt"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// nodeWindow is one node's in-window edge history. Expired edges are trimmed
// lazily; the backing slice is compacted once the live region falls below
// half the capacity, keeping amortised O(1) appends and O(d^δ) memory.
type nodeWindow struct {
	edges []temporal.HalfEdge
	head  int // first live (non-expired) index
}

func (w *nodeWindow) live() []temporal.HalfEdge { return w.edges[w.head:] }

func (w *nodeWindow) trim(cutoff temporal.Timestamp) {
	for w.head < len(w.edges) && w.edges[w.head].Time < cutoff {
		w.head++
	}
	if w.head > len(w.edges)/2 && w.head > 32 {
		n := copy(w.edges, w.edges[w.head:])
		w.edges = w.edges[:n]
		w.head = 0
	}
}

func (w *nodeWindow) push(h temporal.HalfEdge) { w.edges = append(w.edges, h) }

// Counter is an exact online motif counter. The zero value is not usable;
// call New.
type Counter struct {
	delta   temporal.Timestamp
	counts  motif.Counts
	windows map[temporal.NodeID]*nodeWindow
	nextID  temporal.EdgeID
	lastT   temporal.Timestamp
	started bool
	loops   uint64

	// reusable scratch for the per-add scans
	runIn   map[temporal.NodeID]uint64
	runOut  map[temporal.NodeID]uint64
	nbrJoin map[temporal.NodeID][]temporal.HalfEdge
}

// New returns an empty Counter with the given window δ (must be >= 0).
func New(delta temporal.Timestamp) (*Counter, error) {
	if delta < 0 {
		return nil, fmt.Errorf("stream: negative δ (%d)", delta)
	}
	return &Counter{
		delta:   delta,
		counts:  motif.Counts{TriMultiplicity: 1},
		windows: make(map[temporal.NodeID]*nodeWindow),
		runIn:   make(map[temporal.NodeID]uint64),
		runOut:  make(map[temporal.NodeID]uint64),
		nbrJoin: make(map[temporal.NodeID][]temporal.HalfEdge),
	}, nil
}

// Delta returns the counter's window.
func (c *Counter) Delta() temporal.Timestamp { return c.delta }

// Edges returns the number of edges ingested (self-loops excluded).
func (c *Counter) Edges() int { return int(c.nextID) }

// SelfLoopsDropped returns how many self-loop edges were ignored.
func (c *Counter) SelfLoopsDropped() uint64 { return c.loops }

// Matrix returns the cumulative exact per-motif counts over everything
// ingested so far.
func (c *Counter) Matrix() motif.Matrix { return c.counts.ToMatrix() }

// Add ingests the directed edge u -> v at time t. Times must be
// non-decreasing; equal timestamps are ordered by arrival, matching the
// batch algorithms' tie convention. Self-loops are counted and dropped.
func (c *Counter) Add(u, v temporal.NodeID, t temporal.Timestamp) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("stream: negative node id (%d,%d)", u, v)
	}
	if c.started && t < c.lastT {
		return fmt.Errorf("stream: out-of-order edge at t=%d (last %d)", t, c.lastT)
	}
	c.started, c.lastT = true, t
	if u == v {
		c.loops++
		return nil
	}
	id := c.nextID
	c.nextID++

	wu, wv := c.window(u), c.window(v)
	cutoff := t - c.delta
	wu.trim(cutoff)
	wv.trim(cutoff)

	// Stars and pairs completed by this edge, from each endpoint's view.
	c.scanStarPair(wu.live(), v, true)
	c.scanStarPair(wv.live(), u, false)
	// Triangles completed by this edge.
	c.joinTriangles(wu.live(), wv.live())

	wu.push(temporal.HalfEdge{ID: id, Time: t, Other: v, Out: true})
	wv.push(temporal.HalfEdge{ID: id, Time: t, Other: u, Out: false})
	return nil
}

func (c *Counter) window(u temporal.NodeID) *nodeWindow {
	w := c.windows[u]
	if w == nil {
		w = &nodeWindow{}
		c.windows[u] = w
	}
	return w
}

// scanStarPair counts the star/pair triples whose last edge is the arriving
// edge, centered at the window's owner. other is the arriving edge's far
// endpoint and out its direction relative to the owner.
//
// One forward pass over the window with running totals: at each candidate
// middle edge e2, the number of valid first edges of each class is known
// from the running counters, split by whether the first edge goes to the
// same neighbor as e2 / as the arriving edge.
func (c *Counter) scanStarPair(win []temporal.HalfEdge, other temporal.NodeID, out bool) {
	if len(win) < 2 {
		return
	}
	d3 := motif.In
	if out {
		d3 = motif.Out
	}
	clear(c.runIn)
	clear(c.runOut)
	var nIn, nOut uint64
	for _, e2 := range win {
		d2 := motif.Dir(e2.Dir())
		if e2.Other == other {
			// e2 pairs with the arriving edge (both to `other`): first edge
			// to `other` completes a 2-node pair; elsewhere completes a
			// Star-II (first and third edges to the same neighbor...
			// no: first edge isolated is Star-I).
			cin, cout := c.runIn[other], c.runOut[other]
			c.counts.Pair[motif.PairIndex(motif.In, d2, d3)] += cin
			c.counts.Pair[motif.PairIndex(motif.Out, d2, d3)] += cout
			c.counts.Star[motif.StarIndex(motif.StarI, motif.In, d2, d3)] += nIn - cin
			c.counts.Star[motif.StarIndex(motif.StarI, motif.Out, d2, d3)] += nOut - cout
		} else {
			// e2 goes to some n != other: a first edge to n completes a
			// Star-III pattern paired as (e1,e2); a first edge to `other`
			// completes Star-II (e1 and e3 paired).
			c.counts.Star[motif.StarIndex(motif.StarIII, motif.In, d2, d3)] += c.runIn[e2.Other]
			c.counts.Star[motif.StarIndex(motif.StarIII, motif.Out, d2, d3)] += c.runOut[e2.Other]
			c.counts.Star[motif.StarIndex(motif.StarII, motif.In, d2, d3)] += c.runIn[other]
			c.counts.Star[motif.StarIndex(motif.StarII, motif.Out, d2, d3)] += c.runOut[other]
		}
		if e2.Out {
			c.runOut[e2.Other]++
			nOut++
		} else {
			c.runIn[e2.Other]++
			nIn++
		}
	}
}

// joinTriangles enumerates triangles completed by the arriving edge (u,v):
// one earlier edge u<->w joined with one earlier edge v<->w. Each completed
// instance is classified from the shared vertex w's perspective, where the
// arriving edge is the non-incident, chronologically last edge
// (Triangle-III).
func (c *Counter) joinTriangles(uWin, vWin []temporal.HalfEdge) {
	if len(uWin) == 0 || len(vWin) == 0 {
		return
	}
	// Hash the smaller window by shared neighbor, scan the larger.
	swapped := false
	if len(uWin) > len(vWin) {
		uWin, vWin = vWin, uWin
		swapped = true
	}
	clear(c.nbrJoin)
	for _, a := range uWin {
		c.nbrJoin[a.Other] = append(c.nbrJoin[a.Other], a)
	}
	for _, b := range vWin {
		for _, a := range c.nbrJoin[b.Other] {
			// a is u<->w, b is v<->w (pre-swap orientation): directions
			// relative to w are the flips of the stored ones.
			aw, bw := a, b
			if swapped {
				aw, bw = b, a
			}
			// From w: ei is the earlier of (aw,bw), ej the later; dk is the
			// arriving edge u->v relative to ei's far endpoint.
			diW := motif.Dir(aw.Dir()).Flip() // aw relative to w
			djW := motif.Dir(bw.Dir()).Flip()
			var dk motif.Dir
			var di, dj motif.Dir
			if aw.ID < bw.ID {
				di, dj = diW, djW
				dk = motif.Out // ei's far endpoint is u; u->v leaves u
			} else {
				di, dj = djW, diW
				dk = motif.In // ei's far endpoint is v; u->v enters v
			}
			c.counts.Tri[motif.TriIndex(motif.TriIII, di, dj, dk)]++
		}
	}
}
