package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"hare/internal/temporal"
)

// FeedOptions configures Counter.Feed.
type FeedOptions struct {
	// BatchSize is the number of parsed edges handed to each AddBatch call
	// (default 4096).
	BatchSize int
	// OnBatch, when non-nil, runs after every ingested batch — the hook for
	// periodic snapshots. n is the number of edges in that batch.
	OnBatch func(c *Counter, n int)
}

// DefaultFeedBatch is the Feed batch size when FeedOptions.BatchSize is 0.
// Large enough that AddBatch's fan-out amortises, small enough that
// snapshots stay responsive on slow streams.
const DefaultFeedBatch = 4096

// Feed ingests a whitespace-separated "u v t" edge list from r in batches
// through AddBatch — the reader-driven counterpart of Add for log pipes and
// files. Blank lines and lines starting with '#' or '%' are skipped.
// Per-line failures (id range, time ordering) are validated before
// batching, so those errors name the exact input line rather than a
// batch-relative index. It returns the number of edges ingested
// (self-loops included, as they are ingested and counted too).
func (c *Counter) Feed(r io.Reader, opts FeedOptions) (int64, error) {
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultFeedBatch
	}
	var total int64
	batch := make([]temporal.Edge, 0, batchSize)
	batchLine := 0 // input line of the current batch's first edge
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := c.AddBatch(batch); err != nil {
			// Reachable for stream-level failures the per-line checks can't
			// see (e.g. edge-id-space exhaustion after 2^31-1 edges): the
			// line range localises them as tightly as a batch allows.
			return fmt.Errorf("stream: lines %d-%d: %v", batchLine, batchLine+len(batch)-1, err)
		}
		total += int64(len(batch))
		if opts.OnBatch != nil {
			opts.OnBatch(c, len(batch))
		}
		batch = batch[:0]
		return nil
	}

	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	started, lastT := c.started, c.lastT
	for scan.Scan() {
		lineNo++
		el, skip, err := temporal.ParseEdgeLine(scan.Text(), false)
		if err != nil {
			return total, fmt.Errorf("stream: line %d: %v", lineNo, err)
		}
		if skip {
			continue
		}
		if el.U < 0 || el.V < 0 || el.U > math.MaxInt32 || el.V > math.MaxInt32 {
			return total, fmt.Errorf("stream: line %d: node id out of range (%d,%d)", lineNo, el.U, el.V)
		}
		if started && el.T < lastT {
			return total, fmt.Errorf("stream: line %d: out-of-order edge at t=%d (last %d)", lineNo, el.T, lastT)
		}
		started, lastT = true, el.T
		if len(batch) == 0 {
			batchLine = lineNo
		}
		batch = append(batch, temporal.Edge{
			From: temporal.NodeID(el.U), To: temporal.NodeID(el.V), Time: el.T,
		})
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := scan.Err(); err != nil {
		return total, err
	}
	return total, flush()
}
