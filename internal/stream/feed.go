package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"hare/internal/temporal"
)

// FeedOptions configures Counter.Feed.
type FeedOptions struct {
	// BatchSize is the number of parsed edges handed to each AddBatch call
	// (default 4096).
	BatchSize int
	// OnBatch, when non-nil, runs after every ingested batch — the hook for
	// periodic snapshots. n is the number of edges in that batch.
	OnBatch func(c *Counter, n int)
	// ParseWorkers > 1 parses the input with that many goroutines using the
	// batch loader's chunked byte-level pipeline, bit-identical to the
	// sequential path (same edges, same error on the same line). Parsing
	// then proceeds at chunk granularity, which adds latency on live pipes
	// — leave it at 0 (sequential) for tail -f-style feeds and raise it for
	// file replays and backfills.
	ParseWorkers int
}

// DefaultFeedBatch is the Feed batch size when FeedOptions.BatchSize is 0.
// Large enough that AddBatch's fan-out amortises, small enough that
// snapshots stay responsive on slow streams.
const DefaultFeedBatch = 4096

// feeder holds Feed's shared per-edge ingest state: validation, batching,
// the AddBatch flush, and the snapshot hook. Both the sequential scanner
// path and the parallel chunk path drive the same methods, so their
// observable behaviour — edge order, error text and line numbers, snapshot
// cadence — cannot drift apart.
type feeder struct {
	c         *Counter
	opts      FeedOptions
	batchSize int
	batch     []temporal.Edge
	batchLine int // input line of the current batch's first edge
	total     int64
	started   bool
	lastT     temporal.Timestamp
}

func newFeeder(c *Counter, opts FeedOptions, batchSize int) *feeder {
	return &feeder{
		c: c, opts: opts, batchSize: batchSize,
		batch:   make([]temporal.Edge, 0, batchSize),
		started: c.started, lastT: c.lastT,
	}
}

// ingest validates one parsed "u v t" line and appends it, flushing a full
// batch. Errors name lineNo, the absolute input line.
func (f *feeder) ingest(u, v int64, t temporal.Timestamp, lineNo int) error {
	if u < 0 || v < 0 || u > math.MaxInt32 || v > math.MaxInt32 {
		return fmt.Errorf("stream: line %d: node id out of range (%d,%d)", lineNo, u, v)
	}
	if f.started && t < f.lastT {
		return fmt.Errorf("stream: line %d: out-of-order edge at t=%d (last %d)", lineNo, t, f.lastT)
	}
	f.started, f.lastT = true, t
	if len(f.batch) == 0 {
		f.batchLine = lineNo
	}
	f.batch = append(f.batch, temporal.Edge{
		From: temporal.NodeID(u), To: temporal.NodeID(v), Time: t,
	})
	if len(f.batch) >= f.batchSize {
		return f.flush()
	}
	return nil
}

func (f *feeder) flush() error {
	if len(f.batch) == 0 {
		return nil
	}
	if err := f.c.AddBatch(f.batch); err != nil {
		// Reachable for stream-level failures the per-line checks can't
		// see (e.g. edge-id-space exhaustion after 2^31-1 edges): the
		// line range localises them as tightly as a batch allows.
		return fmt.Errorf("stream: lines %d-%d: %v", f.batchLine, f.batchLine+len(f.batch)-1, err)
	}
	f.total += int64(len(f.batch))
	if f.opts.OnBatch != nil {
		f.opts.OnBatch(f.c, len(f.batch))
	}
	f.batch = f.batch[:0]
	return nil
}

// Feed ingests a whitespace-separated "u v t" edge list from r in batches
// through AddBatch — the reader-driven counterpart of Add for log pipes and
// files. Blank lines and lines starting with '#' or '%' are skipped.
// Per-line failures (id range, time ordering) are validated before
// batching, so those errors name the exact input line rather than a
// batch-relative index. It returns the number of edges ingested
// (self-loops included, as they are ingested and counted too).
func (c *Counter) Feed(r io.Reader, opts FeedOptions) (int64, error) {
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultFeedBatch
	}
	f := newFeeder(c, opts, batchSize)
	if opts.ParseWorkers > 1 {
		return c.feedParallel(r, opts, f)
	}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		el, skip, err := temporal.ParseEdgeLine(scan.Text(), false)
		if err != nil {
			return f.total, fmt.Errorf("stream: line %d: %v", lineNo, err)
		}
		if skip {
			continue
		}
		if err := f.ingest(el.U, el.V, el.T, lineNo); err != nil {
			return f.total, err
		}
	}
	if err := scan.Err(); err != nil {
		return f.total, err
	}
	return f.total, f.flush()
}

// feedParallel is Feed with parsing fanned out over the chunk pipeline.
// Validation, batching, and AddBatch stay on the calling goroutine in input
// order, driving the same feeder as the sequential path.
func (c *Counter) feedParallel(r io.Reader, opts FeedOptions, f *feeder) (int64, error) {
	var ferr error
	err := temporal.ForEachParsedChunk(r, false, opts.ParseWorkers, func(pc temporal.ParsedChunk) bool {
		for i := range pc.U {
			if err := f.ingest(pc.U[i], pc.V[i], pc.T[i], pc.LineBase+int(pc.Line[i])); err != nil {
				ferr = err
				return false
			}
		}
		if pc.Err != nil {
			if pc.ErrRead {
				ferr = pc.Err // raw, matching the sequential scan.Err() path
			} else {
				ferr = fmt.Errorf("stream: line %d: %v", pc.LineBase+pc.ErrLine, pc.Err)
			}
			return false
		}
		return true
	})
	if ferr != nil {
		return f.total, ferr
	}
	if err != nil {
		return f.total, err
	}
	return f.total, f.flush()
}
