package nullmodel

import (
	"math/rand"
	"sort"
	"testing"

	"hare/internal/temporal"
)

// edgesEqual compares the chronologically sorted edge lists of two graphs.
func edgesEqual(a, b *temporal.Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// The in-place Sampler must draw samples bit-identical to the copy-based
// Sample for the same seed, across models, seeds, and scratch reuse.
func TestSamplerMatchesSample(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomGraph(r, 25, 500, 800)
	for _, model := range []Model{TimeShuffle, DegreeRewire} {
		s := NewSampler(g, model)
		for seed := int64(0); seed < 8; seed++ {
			want, err := Sample(g, model, seed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Sample(seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%v seed %d: invalid sample: %v", model, seed, err)
			}
			if got.NumNodes() != want.NumNodes() || !edgesEqual(got, want) {
				t.Fatalf("%v seed %d: in-place sample differs from copy-based", model, seed)
			}
			if got.SelfLoopsDropped() != want.SelfLoopsDropped() {
				t.Fatalf("%v seed %d: self-loop accounting differs", model, seed)
			}
		}
	}
	if s := NewSampler(g, Model(99)); s != nil {
		if _, err := s.Sample(1); err == nil {
			t.Fatal("want error for unknown model")
		}
	}
}

// O(1) graphs per ensemble: the Sampler must hand back the same scratch
// graph on every draw, and a steady-state draw must cost only a bounded
// handful of fixed allocations (the per-sample RNG), not fresh columns.
func TestSamplerScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	g := randomGraph(r, 40, 3000, 1000)
	for _, model := range []Model{TimeShuffle, DegreeRewire} {
		s := NewSampler(g, model)
		g1, err := s.Sample(1)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := s.Sample(2)
		if err != nil {
			t.Fatal(err)
		}
		if g1 != g2 {
			t.Fatalf("%v: scratch graph not reused across samples", model)
		}
		seed := int64(3)
		avg := testing.AllocsPerRun(5, func() {
			if _, err := s.Sample(seed); err != nil {
				t.Fatal(err)
			}
			seed++
		})
		if avg > 8 {
			t.Fatalf("%v: steady-state sample allocates %.1f times, want O(1)", model, avg)
		}
	}
}

// TimeShuffle property: the static edge multiset — hence every in/out
// degree — is preserved exactly; only timestamps move, as a permutation.
func TestSamplerTimeShuffleInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := randomGraph(r, 18, 400, 300)
	s := NewSampler(g, TimeShuffle)
	for seed := int64(0); seed < 5; seed++ {
		sg, err := s.Sample(seed)
		if err != nil {
			t.Fatal(err)
		}
		if sg.NumEdges() != g.NumEdges() {
			t.Fatal("edge count changed")
		}
		pairs := func(gr *temporal.Graph) map[[2]temporal.NodeID]int {
			m := map[[2]temporal.NodeID]int{}
			for _, e := range gr.Edges() {
				m[[2]temporal.NodeID{e.From, e.To}]++
			}
			return m
		}
		pg, ps := pairs(g), pairs(sg)
		if len(pg) != len(ps) {
			t.Fatal("static pair multiset changed")
		}
		for k, v := range pg {
			if ps[k] != v {
				t.Fatalf("pair %v count changed", k)
			}
		}
		for u := 0; u < g.NumNodes(); u++ {
			if sg.Degree(temporal.NodeID(u)) != g.Degree(temporal.NodeID(u)) {
				t.Fatalf("degree of %d changed", u)
			}
		}
		times := func(gr *temporal.Graph) []temporal.Timestamp {
			ts := append([]temporal.Timestamp(nil), gr.Times()...)
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			return ts
		}
		tg, tsg := times(g), times(sg)
		for i := range tg {
			if tg[i] != tsg[i] {
				t.Fatal("timestamp multiset changed")
			}
		}
	}
}

// DegreeRewire property: per-node in- and out-degree sequences and the
// timestamp multiset are preserved exactly; no self-loops ever appear.
func TestSamplerDegreeRewireInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	g := randomGraph(r, 15, 400, 500)
	s := NewSampler(g, DegreeRewire)
	inOut := func(gr *temporal.Graph) ([]int, []int) {
		in := make([]int, gr.NumNodes())
		out := make([]int, gr.NumNodes())
		for _, e := range gr.Edges() {
			out[e.From]++
			in[e.To]++
		}
		return in, out
	}
	ig, og := inOut(g)
	for seed := int64(0); seed < 5; seed++ {
		sg, err := s.Sample(seed)
		if err != nil {
			t.Fatal(err)
		}
		if sg.NumEdges() != g.NumEdges() || sg.SelfLoopsDropped() != 0 {
			t.Fatalf("seed %d: rewire changed the edge count (%d vs %d, %d self-loops)",
				seed, sg.NumEdges(), g.NumEdges(), sg.SelfLoopsDropped())
		}
		is, os := inOut(sg)
		for u := range ig {
			if is[u] != ig[u] || os[u] != og[u] {
				t.Fatalf("seed %d: degree of %d changed", seed, u)
			}
		}
		// Timestamps are untouched per sorted position.
		gt, st := g.Times(), sg.Times()
		for i := range gt {
			if gt[i] != st[i] {
				t.Fatal("rewire changed a timestamp")
			}
		}
	}
}

// Regression: under maximal swap pressure — a two-hub graph where almost
// every candidate swap would create a self-loop — DegreeRewire must reject
// consistently with the builder's self-loop accounting: never a dropped
// edge, never a nonzero SelfLoopsDropped, on both sampling paths.
func TestDegreeRewireSelfLoopRegression(t *testing.T) {
	b := temporal.NewBuilder(0)
	for k := temporal.NodeID(1); k <= 12; k++ {
		_ = b.AddEdge(0, k, temporal.Timestamp(k))     // 0 -> k
		_ = b.AddEdge(k, 0, temporal.Timestamp(100+k)) // k -> 0
	}
	g := b.Build()
	s := NewSampler(g, DegreeRewire)
	for seed := int64(0); seed < 50; seed++ {
		for _, path := range []func() (*temporal.Graph, error){
			func() (*temporal.Graph, error) { return Sample(g, DegreeRewire, seed) },
			func() (*temporal.Graph, error) { return s.Sample(seed) },
		} {
			sg, err := path()
			if err != nil {
				t.Fatal(err)
			}
			if sg.NumEdges() != g.NumEdges() {
				t.Fatalf("seed %d: sample lost %d edges to self-loops",
					seed, g.NumEdges()-sg.NumEdges())
			}
			if sg.SelfLoopsDropped() != 0 {
				t.Fatalf("seed %d: %d self-loop swaps slipped through",
					seed, sg.SelfLoopsDropped())
			}
		}
	}
}

func TestParseModel(t *testing.T) {
	for _, m := range []Model{TimeShuffle, DegreeRewire} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("want error for unknown model name")
	}
}
