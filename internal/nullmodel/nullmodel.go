// Package nullmodel measures the statistical significance of motif counts
// against randomised reference graphs — the standard methodology of motif
// analysis (Milo et al., Science 2002) adapted to temporal graphs, and the
// quantitative backbone of the anomaly-detection applications the paper
// motivates. A motif is over-represented when its count in the real graph
// sits many standard deviations above its counts in null samples.
//
// Two null models are provided:
//
//   - TimeShuffle permutes timestamps across edges: the static structure is
//     preserved exactly while temporal ordering (and hence temporal motif
//     structure) is randomised. This isolates *temporal* significance.
//   - DegreeRewire swaps the targets of random edge pairs: in- and
//     out-degree sequences and the timestamp sequence are preserved while
//     the wiring is randomised. This isolates *structural* significance.
package nullmodel

import (
	"fmt"
	"math"
	"math/rand"

	"hare/internal/engine"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Model selects a randomisation strategy.
type Model int

const (
	// TimeShuffle permutes edge timestamps uniformly.
	TimeShuffle Model = iota
	// DegreeRewire performs double-edge target swaps (10·|E| attempts),
	// preserving each node's in- and out-degree and every timestamp.
	DegreeRewire
)

func (m Model) String() string {
	switch m {
	case TimeShuffle:
		return "time-shuffle"
	case DegreeRewire:
		return "degree-rewire"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Sample draws one randomised graph under the given model.
func Sample(g *temporal.Graph, model Model, seed int64) (*temporal.Graph, error) {
	r := rand.New(rand.NewSource(seed))
	src := g.Edges()
	edges := append([]temporal.Edge(nil), src...)
	switch model {
	case TimeShuffle:
		times := make([]temporal.Timestamp, len(edges))
		for i, e := range edges {
			times[i] = e.Time
		}
		r.Shuffle(len(times), func(i, j int) { times[i], times[j] = times[j], times[i] })
		for i := range edges {
			edges[i].Time = times[i]
		}
	case DegreeRewire:
		attempts := 10 * len(edges)
		for a := 0; a < attempts; a++ {
			i, j := r.Intn(len(edges)), r.Intn(len(edges))
			if i == j {
				continue
			}
			ei, ej := edges[i], edges[j]
			// Swap targets; reject swaps that create self-loops.
			if ei.From == ej.To || ej.From == ei.To {
				continue
			}
			edges[i].To, edges[j].To = ej.To, ei.To
		}
	default:
		return nil, fmt.Errorf("nullmodel: unknown model %v", model)
	}
	return temporal.FromEdges(edges), nil
}

// Options configures a significance run.
type Options struct {
	// Model is the null model (default TimeShuffle).
	Model Model
	// Trials is the number of null samples (default 20).
	Trials int
	// Seed feeds the deterministic RNG chain.
	Seed int64
	// Workers is passed to the counting engine (0 = all CPUs).
	Workers int
}

func (o Options) trials() int {
	if o.Trials > 0 {
		return o.Trials
	}
	return 20
}

// Report holds real counts and null-model statistics per motif.
type Report struct {
	Model  Model
	Trials int
	Real   motif.Matrix
	Mean   [6][6]float64
	Std    [6][6]float64
}

// MeanAt returns the null-model mean count for a label.
func (r *Report) MeanAt(l motif.Label) float64 { return r.Mean[l.Row-1][l.Col-1] }

// StdAt returns the null-model standard deviation for a label.
func (r *Report) StdAt(l motif.Label) float64 { return r.Std[l.Row-1][l.Col-1] }

// ZScore returns (real − mean)/std for a label. A zero-variance null with a
// matching real count scores 0; with a differing real count it returns ±Inf.
func (r *Report) ZScore(l motif.Label) float64 {
	real := float64(r.Real.At(l))
	mean, std := r.MeanAt(l), r.StdAt(l)
	diff := real - mean
	if std == 0 {
		switch {
		case diff == 0:
			return 0
		case diff > 0:
			return math.Inf(1)
		default:
			return math.Inf(-1)
		}
	}
	return diff / std
}

// TopSignificant returns the n motifs with the largest |z|, descending.
func (r *Report) TopSignificant(n int) []motif.LabelCount {
	type zl struct {
		l motif.Label
		z float64
	}
	all := make([]zl, 0, 36)
	for _, l := range motif.AllLabels() {
		all = append(all, zl{l, math.Abs(r.ZScore(l))})
	}
	for i := 0; i < len(all); i++ { // small fixed n: selection sort is fine
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].z > all[best].z {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]motif.LabelCount, n)
	for i := 0; i < n; i++ {
		out[i] = motif.LabelCount{Label: all[i].l, Count: r.Real.At(all[i].l)}
	}
	return out
}

// Significance counts motifs in g and in Trials null samples, returning
// per-motif statistics.
func Significance(g *temporal.Graph, delta temporal.Timestamp, opts Options) (*Report, error) {
	rep := &Report{Model: opts.Model, Trials: opts.trials()}
	eo := engine.Options{Workers: opts.Workers}
	rep.Real = engine.Count(g, delta, eo).ToMatrix()

	var sum, sumSq [6][6]float64
	for t := 0; t < rep.Trials; t++ {
		sample, err := Sample(g, opts.Model, opts.Seed+int64(t)*7919)
		if err != nil {
			return nil, err
		}
		m := engine.Count(sample, delta, eo).ToMatrix()
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				v := float64(m[i][j])
				sum[i][j] += v
				sumSq[i][j] += v * v
			}
		}
	}
	n := float64(rep.Trials)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			mean := sum[i][j] / n
			rep.Mean[i][j] = mean
			variance := sumSq[i][j]/n - mean*mean
			if variance < 0 {
				variance = 0
			}
			rep.Std[i][j] = math.Sqrt(variance)
		}
	}
	return rep, nil
}
