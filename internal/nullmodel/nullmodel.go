// Package nullmodel measures the statistical significance of motif counts
// against randomised reference graphs — the standard methodology of motif
// analysis (Milo et al., Science 2002) adapted to temporal graphs, and the
// quantitative backbone of the anomaly-detection applications the paper
// motivates. A motif is over-represented when its count in the real graph
// sits many standard deviations above its counts in null samples.
//
// Two null models are provided:
//
//   - TimeShuffle permutes timestamps across edges: the static structure is
//     preserved exactly while temporal ordering (and hence temporal motif
//     structure) is randomised. This isolates *temporal* significance.
//   - DegreeRewire swaps the targets of random edge pairs: in- and
//     out-degree sequences and the timestamp sequence are preserved while
//     the wiring is randomised. This isolates *structural* significance.
//
// Sampling and counting are driven by Ensemble, which draws and counts the
// null samples in parallel (one in-place Sampler per worker) and aggregates
// per-motif moments deterministically: a fixed seed gives bit-identical
// z-scores at any worker count.
package nullmodel

import (
	"fmt"
	"math"
	"math/rand"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// Model selects a randomisation strategy.
type Model int

const (
	// TimeShuffle permutes edge timestamps uniformly.
	TimeShuffle Model = iota
	// DegreeRewire performs double-edge target swaps (10·|E| attempts),
	// preserving each node's in- and out-degree and every timestamp.
	DegreeRewire
)

func (m Model) String() string {
	switch m {
	case TimeShuffle:
		return "time-shuffle"
	case DegreeRewire:
		return "degree-rewire"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// ParseModel parses a model name as printed by Model.String.
func ParseModel(s string) (Model, error) {
	switch s {
	case "time-shuffle":
		return TimeShuffle, nil
	case "degree-rewire":
		return DegreeRewire, nil
	}
	return 0, fmt.Errorf("nullmodel: unknown model %q (want time-shuffle or degree-rewire)", s)
}

// mutate applies the model's randomisation to edges in place. The RNG
// stream depends only on (model, seed) — never on worker count or on
// whether the caller is the copy-based Sample or the in-place Sampler — so
// every sampling path draws bit-identical samples for a given seed.
func mutate(edges []temporal.Edge, model Model, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	switch model {
	case TimeShuffle:
		r.Shuffle(len(edges), func(i, j int) {
			edges[i].Time, edges[j].Time = edges[j].Time, edges[i].Time
		})
	case DegreeRewire:
		rewire(edges, r)
	default:
		return fmt.Errorf("nullmodel: unknown model %v", model)
	}
	return nil
}

// rewire performs 10·|E| double-edge target-swap attempts in place. A swap
// is applied only when neither resulting edge is a self-loop: the graph
// builder drops self-loops (mirroring the loader's self-loop accounting,
// Graph.SelfLoopsDropped), so letting one through would silently shrink the
// sample by an edge and break the degree-sequence invariant the model
// exists to preserve. Both Sample and Sampler route through this one
// function so the rejection rule cannot drift between the two paths.
func rewire(edges []temporal.Edge, r *rand.Rand) {
	attempts := 10 * len(edges)
	for a := 0; a < attempts; a++ {
		i, j := r.Intn(len(edges)), r.Intn(len(edges))
		if i == j {
			continue
		}
		ei, ej := edges[i], edges[j]
		// Swapping targets turns (ei.From→ei.To, ej.From→ej.To) into
		// (ei.From→ej.To, ej.From→ei.To); reject the swap when either new
		// edge would be a self-loop.
		if ei.From == ej.To || ej.From == ei.To {
			continue
		}
		edges[i].To, edges[j].To = ej.To, ei.To
	}
}

// Sample draws one randomised graph under the given model. It copies the
// edge list and builds a fresh graph per call; ensembles should prefer
// Sampler, which reuses one scratch graph across samples and draws
// bit-identical samples for the same seeds.
func Sample(g *temporal.Graph, model Model, seed int64) (*temporal.Graph, error) {
	edges := append([]temporal.Edge(nil), g.Edges()...)
	if err := mutate(edges, model, seed); err != nil {
		return nil, err
	}
	return temporal.FromEdges(edges), nil
}

// Options configures a significance run.
type Options struct {
	// Model is the null model (default TimeShuffle).
	Model Model
	// Trials is the number of null samples (default 20).
	Trials int
	// Seed feeds the deterministic RNG chain: sample t draws from seed
	// Seed + t·7919, so results do not depend on scheduling.
	Seed int64
	// Workers is the number of worker goroutines drawing and counting null
	// samples concurrently — and the engine parallelism for the real-graph
	// count (0 = all CPUs). Any value yields bit-identical statistics.
	Workers int
}

func (o Options) trials() int {
	if o.Trials > 0 {
		return o.Trials
	}
	return 20
}

// Report holds real counts and null-model statistics per motif.
type Report struct {
	Model  Model
	Trials int
	// Workers is the worker count the ensemble ran with (informational —
	// it does not affect any statistic).
	Workers int
	Real    motif.Matrix
	Mean    [6][6]float64
	Std     [6][6]float64
	// PUpper and PLower are add-one-smoothed empirical tail p-values:
	// (1 + #{null ≥ real}) / (Trials + 1) and the ≤ analogue. They are never
	// exactly 0 — N samples cannot certify an event rarer than 1/(N+1).
	PUpper [6][6]float64
	PLower [6][6]float64
}

// MeanAt returns the null-model mean count for a label.
func (r *Report) MeanAt(l motif.Label) float64 { return r.Mean[l.Row-1][l.Col-1] }

// StdAt returns the null-model standard deviation for a label.
func (r *Report) StdAt(l motif.Label) float64 { return r.Std[l.Row-1][l.Col-1] }

// PUpperAt returns the empirical upper-tail p-value for a label: small
// values mean the real count is significantly *over*-represented.
func (r *Report) PUpperAt(l motif.Label) float64 { return r.PUpper[l.Row-1][l.Col-1] }

// PLowerAt returns the empirical lower-tail p-value for a label: small
// values mean the real count is significantly *under*-represented.
func (r *Report) PLowerAt(l motif.Label) float64 { return r.PLower[l.Row-1][l.Col-1] }

// ZScore returns (real − mean)/std for a label. A zero-variance null with a
// matching real count scores 0; with a differing real count it returns ±Inf.
func (r *Report) ZScore(l motif.Label) float64 {
	real := float64(r.Real.At(l))
	mean, std := r.MeanAt(l), r.StdAt(l)
	diff := real - mean
	if std == 0 {
		switch {
		case diff == 0:
			return 0
		case diff > 0:
			return math.Inf(1)
		default:
			return math.Inf(-1)
		}
	}
	return diff / std
}

// TopSignificant returns the n motifs with the largest |z|, descending.
func (r *Report) TopSignificant(n int) []motif.LabelCount {
	type zl struct {
		l motif.Label
		z float64
	}
	all := make([]zl, 0, 36)
	for _, l := range motif.AllLabels() {
		all = append(all, zl{l, math.Abs(r.ZScore(l))})
	}
	for i := 0; i < len(all); i++ { // small fixed n: selection sort is fine
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].z > all[best].z {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]motif.LabelCount, n)
	for i := 0; i < n; i++ {
		out[i] = motif.LabelCount{Label: all[i].l, Count: r.Real.At(all[i].l)}
	}
	return out
}

// Significance counts motifs in g and in Trials null samples, returning
// per-motif statistics. It is the one-call form of Ensemble.Run.
func Significance(g *temporal.Graph, delta temporal.Timestamp, opts Options) (*Report, error) {
	e := &Ensemble{Model: opts.Model, Samples: opts.trials(), Seed: opts.Seed, Workers: opts.Workers}
	return e.Run(g, delta)
}
