package nullmodel

import (
	"hare/internal/temporal"
)

// Sampler draws null samples in place: the base graph's edge list is copied
// into a reusable buffer, mutated columnarly (TimeShuffle permutes the
// timestamp column, DegreeRewire rewires the target column), and rebuilt
// onto one reusable scratch graph. An ensemble therefore allocates O(1)
// graphs no matter how many samples it draws, instead of a FromEdges rebuild
// per sample.
//
// Samples are bit-identical to the copy-based Sample for the same seed (the
// two share the mutation code and the RNG stream).
//
// A Sampler is not safe for concurrent use; ensembles run one per worker.
type Sampler struct {
	base  *temporal.Graph
	model Model
	buf   []temporal.Edge
	rb    temporal.Rebuilder
}

// NewSampler returns a Sampler drawing from g under the given model.
func NewSampler(g *temporal.Graph, model Model) *Sampler {
	return &Sampler{base: g, model: model}
}

// Sample draws the null sample for one seed. The returned graph aliases the
// Sampler's scratch storage: the next Sample call overwrites it, so callers
// that need it longer must copy it (or use the package-level Sample).
func (s *Sampler) Sample(seed int64) (*temporal.Graph, error) {
	s.buf = append(s.buf[:0], s.base.Edges()...)
	if err := mutate(s.buf, s.model, seed); err != nil {
		return nil, err
	}
	return s.rb.Rebuild(s.buf), nil
}
