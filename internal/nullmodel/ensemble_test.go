package nullmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// reportsBitIdentical compares every statistic of two reports exactly
// (float equality, not tolerance — the ensemble promises bit-identity).
func reportsBitIdentical(a, b *Report) bool {
	return a.Model == b.Model && a.Trials == b.Trials &&
		a.Real == b.Real && a.Mean == b.Mean && a.Std == b.Std &&
		a.PUpper == b.PUpper && a.PLower == b.PLower
}

// The ensemble's z-scores and p-values must be bit-identical at any worker
// count: the aggregation chunking, per-sample seeding, and merge order are
// all independent of scheduling. Run under -race this also exercises the
// concurrent sampling machinery.
func TestEnsembleDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g := randomGraph(r, 30, 900, 2000)
	for _, model := range []Model{TimeShuffle, DegreeRewire} {
		var base *Report
		for _, workers := range []int{1, 4, 16} {
			e := &Ensemble{Model: model, Samples: 40, Seed: 5, Workers: workers}
			rep, err := e.Run(g, 50)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = rep
				continue
			}
			if !reportsBitIdentical(base, rep) {
				t.Fatalf("%v: workers=%d report differs from workers=1", model, workers)
			}
		}
	}
}

// Statistical sanity: a graph that has already been time-shuffled is itself
// a draw from the TimeShuffle null, so its z-scores must hover near zero —
// no motif should look significant.
func TestEnsembleNullOnShuffledGraph(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	g := randomGraph(r, 40, 1500, 5000)
	shuffled, err := Sample(g, TimeShuffle, 997)
	if err != nil {
		t.Fatal(err)
	}
	e := &Ensemble{Model: TimeShuffle, Samples: 60, Seed: 1, Workers: 4}
	rep, err := e.Run(shuffled, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range motif.AllLabels() {
		z := rep.ZScore(l)
		if math.IsInf(z, 0) || math.Abs(z) > 5 {
			t.Errorf("%v: z = %.2f on an already-shuffled graph", l, z)
		}
		if p := rep.PUpperAt(l); math.Abs(z) < 1 && p < 0.05 {
			t.Errorf("%v: p = %.3f despite z = %.2f", l, p, z)
		}
	}
}

// Empirical p-values: add-one smoothing keeps them in (0, 1], and the two
// tails always overlap (every sample is >=, <=, or both).
func TestEnsemblePValues(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g := randomGraph(r, 20, 400, 600)
	e := &Ensemble{Model: TimeShuffle, Samples: 17, Seed: 9, Workers: 3}
	rep, err := e.Run(g, 30)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(rep.Trials)
	for _, l := range motif.AllLabels() {
		up, lo := rep.PUpperAt(l), rep.PLowerAt(l)
		for _, p := range []float64{up, lo} {
			if p < 1/(n+1)-1e-12 || p > 1 {
				t.Fatalf("%v: p-value %v out of range", l, p)
			}
		}
		if up+lo < 1 {
			t.Fatalf("%v: tails don't overlap (%.3f + %.3f < 1)", l, up, lo)
		}
	}
}

// Odd sample counts, tiny ensembles, and more workers than chunks must all
// work; Report.Workers reflects the clamped effective parallelism.
func TestEnsembleShapes(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	g := randomGraph(r, 10, 150, 200)
	for _, samples := range []int{1, 2, 16, 17, 33} {
		e := &Ensemble{Model: DegreeRewire, Samples: samples, Seed: 2, Workers: 16}
		rep, err := e.Run(g, 25)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Trials != samples {
			t.Fatalf("Trials = %d, want %d", rep.Trials, samples)
		}
		maxChunks := (samples + aggChunk - 1) / aggChunk
		if rep.Workers > maxChunks {
			t.Fatalf("Workers = %d with only %d chunks", rep.Workers, maxChunks)
		}
	}
	// Default sample count.
	e := &Ensemble{Model: TimeShuffle, Seed: 1}
	rep, err := e.Run(g, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 20 {
		t.Fatalf("default Trials = %d, want 20", rep.Trials)
	}
}

// Unit-level contract of the moment aggregator: merging with empty states
// is the identity, and a chunked merge reproduces the whole-set mean and
// variance up to floating-point noise.
func TestMomentsMerge(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	real := &motif.Matrix{}
	var whole moments
	var chunks [3]moments
	var values []float64
	for i := 0; i < 30; i++ {
		var m motif.Matrix
		m[0][0] = uint64(r.Intn(1000))
		values = append(values, float64(m[0][0]))
		whole.observe(&m, real)
		chunks[i%3].observe(&m, real)
	}
	var merged moments
	var empty moments
	merged.merge(&empty) // no-op
	for c := range chunks {
		merged.merge(&chunks[c])
	}
	merged.merge(&empty) // still a no-op
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	n := float64(len(values))
	wantMean := sum / n
	wantVar := sumSq/n - wantMean*wantMean
	for _, st := range []*moments{&whole, &merged} {
		if st.n != n {
			t.Fatalf("n = %v, want %v", st.n, n)
		}
		if math.Abs(st.mean[0][0]-wantMean) > 1e-9*wantMean {
			t.Fatalf("mean = %v, want %v", st.mean[0][0], wantMean)
		}
		if math.Abs(st.m2[0][0]/n-wantVar) > 1e-6*wantVar {
			t.Fatalf("variance = %v, want %v", st.m2[0][0]/n, wantVar)
		}
		if st.ge[0][0] != int64(n) { // every observation >= the zero real
			t.Fatalf("ge = %d, want %v", st.ge[0][0], n)
		}
	}
}

func TestEnsembleErrors(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	g := randomGraph(r, 5, 20, 50)
	if _, err := (&Ensemble{Model: TimeShuffle}).Run(nil, 10); err == nil {
		t.Fatal("want error for nil graph")
	}
	if _, err := (&Ensemble{Model: TimeShuffle}).Run(g, -1); err == nil {
		t.Fatal("want error for negative delta")
	}
	if _, err := (&Ensemble{Model: Model(42)}).Run(g, 10); err == nil {
		t.Fatal("want error for unknown model")
	}
	if _, err := Significance(g, -1, Options{}); err == nil {
		t.Fatal("want error through the Significance wrapper")
	}
}

// BenchmarkEnsemble measures ensemble throughput across worker counts; the
// parallel runs must beat the workers=1 sequential loop (CI records the
// trajectory in BENCH_4.json via harebench; the ≥3x-at-8-workers target is
// asserted on the bench datasets there, hardware permitting).
func BenchmarkEnsemble(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	g := randomGraph(r, 300, 30_000, 500_000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := &Ensemble{Model: TimeShuffle, Samples: 32, Seed: 1, Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(g, temporal.Timestamp(3000)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(32*b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// The scatter/gather significance path: sample matrices drawn in disjoint
// index ranges (any partition, any per-range worker count) and re-folded
// by ReportFromSamples must reproduce Ensemble.Run bit-identically — this
// is the invariant the internal/shard coordinator relies on.
func TestSampleMatricesPartitionAssemblesRunReport(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g := randomGraph(r, 30, 800, 1500)
	const samples, seed = 22, int64(9)
	var delta temporal.Timestamp = 60
	for _, model := range []Model{TimeShuffle, DegreeRewire} {
		e := &Ensemble{Model: model, Samples: samples, Seed: seed, Workers: 3}
		want, err := e.Run(g, delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, cuts := range [][]int{
			{0, samples},
			{0, 1, samples},
			{0, 7, 11, samples},
			{0, 4, 8, 12, 16, samples},
		} {
			mats := make([]motif.Matrix, 0, samples)
			for i := 0; i+1 < len(cuts); i++ {
				part, err := SampleMatrices(g, delta, model, seed, cuts[i], cuts[i+1], i+1)
				if err != nil {
					t.Fatal(err)
				}
				if len(part) != cuts[i+1]-cuts[i] {
					t.Fatalf("range [%d,%d): %d matrices", cuts[i], cuts[i+1], len(part))
				}
				mats = append(mats, part...)
			}
			got, err := ReportFromSamples(model, want.Real, mats, want.Workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reportsBitIdentical(want, got) {
				t.Fatalf("%v: assembled report from cuts %v differs from Ensemble.Run", model, cuts)
			}
		}
	}
}

func TestSampleMatricesErrors(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	g := randomGraph(r, 10, 50, 100)
	if _, err := SampleMatrices(nil, 10, TimeShuffle, 1, 0, 2, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := SampleMatrices(g, -1, TimeShuffle, 1, 0, 2, 1); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := SampleMatrices(g, 10, TimeShuffle, 1, 3, 2, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := SampleMatrices(g, 10, Model(99), 1, 0, 2, 1); err == nil {
		t.Error("unknown model accepted")
	}
	if out, err := SampleMatrices(g, 10, TimeShuffle, 1, 5, 5, 1); err != nil || len(out) != 0 {
		t.Errorf("empty range: %v, %d matrices", err, len(out))
	}
	if _, err := ReportFromSamples(TimeShuffle, motif.Matrix{}, nil, 1); err == nil {
		t.Error("empty sample set accepted")
	}
}
