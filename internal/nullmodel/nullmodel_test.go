package nullmodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hare/internal/motif"
	"hare/internal/temporal"
)

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func TestTimeShufflePreservesStructure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomGraph(r, 20, 300, 1000)
	s, err := Sample(g, TimeShuffle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", s.NumEdges(), g.NumEdges())
	}
	// Multiset of (From,To) pairs unchanged; multiset of timestamps unchanged.
	pairCount := func(gr *temporal.Graph) map[[2]temporal.NodeID]int {
		m := map[[2]temporal.NodeID]int{}
		for _, e := range gr.Edges() {
			m[[2]temporal.NodeID{e.From, e.To}]++
		}
		return m
	}
	timeList := func(gr *temporal.Graph) []temporal.Timestamp {
		ts := make([]temporal.Timestamp, 0, gr.NumEdges())
		for _, e := range gr.Edges() {
			ts = append(ts, e.Time)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		return ts
	}
	pg, ps := pairCount(g), pairCount(s)
	if len(pg) != len(ps) {
		t.Fatal("pair multiset changed")
	}
	for k, v := range pg {
		if ps[k] != v {
			t.Fatalf("pair %v count changed: %d vs %d", k, ps[k], v)
		}
	}
	tg, ts2 := timeList(g), timeList(s)
	for i := range tg {
		if tg[i] != ts2[i] {
			t.Fatal("timestamp multiset changed")
		}
	}
}

func TestDegreeRewirePreservesDegrees(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := randomGraph(r, 15, 400, 500)
	s, err := Sample(g, DegreeRewire, 9)
	if err != nil {
		t.Fatal(err)
	}
	outDeg := func(gr *temporal.Graph) []int {
		d := make([]int, gr.NumNodes())
		for _, e := range gr.Edges() {
			d[e.From]++
		}
		return d
	}
	inDeg := func(gr *temporal.Graph) []int {
		d := make([]int, gr.NumNodes())
		for _, e := range gr.Edges() {
			d[e.To]++
		}
		return d
	}
	og, os := outDeg(g), outDeg(s)
	ig, is := inDeg(g), inDeg(s)
	for u := range og {
		if og[u] != os[u] {
			t.Fatalf("out-degree of %d changed: %d vs %d", u, os[u], og[u])
		}
		if ig[u] != is[u] {
			t.Fatalf("in-degree of %d changed: %d vs %d", u, is[u], ig[u])
		}
	}
	if s.SelfLoopsDropped() != 0 {
		t.Fatal("rewire created self-loops")
	}
	// Timestamps per position unchanged.
	for i, e := range s.Edges() {
		if e.Time != g.Edges()[i].Time {
			t.Fatal("rewire changed a timestamp")
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 10, 200, 300)
	for _, model := range []Model{TimeShuffle, DegreeRewire} {
		a, _ := Sample(g, model, 42)
		b, _ := Sample(g, model, 42)
		for i := range a.Edges() {
			if a.Edges()[i] != b.Edges()[i] {
				t.Fatalf("%v: sample not deterministic", model)
			}
		}
		c, _ := Sample(g, model, 43)
		same := true
		for i := range a.Edges() {
			if a.Edges()[i] != c.Edges()[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: different seeds gave identical samples", model)
		}
	}
	if _, err := Sample(g, Model(99), 1); err == nil {
		t.Fatal("want error for unknown model")
	}
}

func TestModelString(t *testing.T) {
	if TimeShuffle.String() != "time-shuffle" || DegreeRewire.String() != "degree-rewire" {
		t.Fatal("model strings wrong")
	}
}

// Planted temporal bursts must be significant against the time-shuffle null:
// the ping-pong pair pattern is injected at far above chance rate.
func TestSignificanceDetectsPlantedPattern(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	b := temporal.NewBuilder(0)
	// Background noise over a long horizon.
	for i := 0; i < 2000; i++ {
		u := temporal.NodeID(r.Intn(50))
		v := temporal.NodeID(r.Intn(50))
		if u == v {
			v = (v + 1) % 50
		}
		_ = b.AddEdge(u, v, r.Int63n(2_000_000))
	}
	// Planted tight ping-pong conversations.
	for i := 0; i < 60; i++ {
		u := temporal.NodeID(50 + r.Intn(10))
		v := temporal.NodeID(60 + r.Intn(10))
		t0 := r.Int63n(2_000_000)
		_ = b.AddEdge(u, v, t0)
		_ = b.AddEdge(v, u, t0+5)
		_ = b.AddEdge(u, v, t0+11)
	}
	g := b.Build()
	rep, err := Significance(g, 60, Options{Model: TimeShuffle, Trials: 15, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m65 := motif.Label{Row: 6, Col: 5}
	if z := rep.ZScore(m65); !(z > 3 || math.IsInf(z, 1)) {
		t.Fatalf("planted M65 z-score = %.2f, want > 3", z)
	}
	top := rep.TopSignificant(5)
	found := false
	for _, lc := range top {
		if lc.Label == m65 {
			found = true
		}
	}
	if !found {
		t.Fatalf("M65 not among top significant motifs: %v", top)
	}
}

func TestZScoreEdgeCases(t *testing.T) {
	rep := &Report{}
	l := motif.Label{Row: 1, Col: 1}
	// zero std, zero diff
	if z := rep.ZScore(l); z != 0 {
		t.Fatalf("z = %f, want 0", z)
	}
	rep.Real.Set(l, 10)
	if z := rep.ZScore(l); !math.IsInf(z, 1) {
		t.Fatalf("z = %f, want +Inf", z)
	}
	rep.Mean[0][0] = 20
	if z := rep.ZScore(l); !math.IsInf(z, -1) {
		t.Fatalf("z = %f, want -Inf", z)
	}
	rep.Std[0][0] = 5
	if z := rep.ZScore(l); z != -2 {
		t.Fatalf("z = %f, want -2", z)
	}
}

func TestReportAccessors(t *testing.T) {
	rep := &Report{}
	l := motif.Label{Row: 3, Col: 4}
	rep.Mean[2][3] = 7.5
	rep.Std[2][3] = 1.5
	if rep.MeanAt(l) != 7.5 || rep.StdAt(l) != 1.5 {
		t.Fatal("accessors wrong")
	}
	if got := rep.TopSignificant(100); len(got) != 36 {
		t.Fatalf("TopSignificant(100) len = %d", len(got))
	}
}
