package nullmodel

import (
	"fmt"
	"math"
	"sync"

	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// aggChunk is the number of consecutive samples aggregated into one moment
// state. It is a fixed constant — not a tunable — because it defines the
// deterministic aggregation tree: each chunk's Welford state depends only on
// the sample indices it covers (per-sample seeds are index-derived), and
// chunk states merge in index order, so the resulting floating-point
// statistics are bit-identical at any worker count. Small enough that even
// modest ensembles (the default 20 samples) fan out across workers; the
// cost is one ~1.5 KiB moment state per chunk.
const aggChunk = 4

// Ensemble generates and counts N null samples concurrently. Each worker
// owns an in-place Sampler (one scratch graph reused across its samples)
// and a FAST scratch; sample t draws from seed Seed + t·7919 regardless of
// which worker runs it, so the ensemble is a pure function of
// (graph, delta, Model, Samples, Seed).
type Ensemble struct {
	// Model is the null model (default TimeShuffle).
	Model Model
	// Samples is the number of null samples (default 20).
	Samples int
	// Seed feeds the per-sample deterministic RNG chain.
	Seed int64
	// Workers is the parallelism for sampling/counting and for the
	// real-graph count (0 = all CPUs). It never changes the statistics.
	Workers int
}

func (e *Ensemble) samples() int {
	if e.Samples > 0 {
		return e.Samples
	}
	return 20
}

// sampleSeed derives sample t's RNG seed. The 7919 stride keeps the chain
// of the original sequential significance loop, so ensembles reproduce its
// samples exactly.
func sampleSeed(seed int64, t int) int64 { return seed + int64(t)*7919 }

// moments accumulates per-motif count moments (Welford) plus tail counts
// for empirical p-values over a set of samples.
type moments struct {
	n    float64
	mean [6][6]float64
	m2   [6][6]float64
	ge   [6][6]int64 // samples with null count >= real
	le   [6][6]int64 // samples with null count <= real
}

// observe folds one sample's count matrix into the state (Welford update).
func (s *moments) observe(m, real *motif.Matrix) {
	s.n++
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			v := float64(m[i][j])
			d := v - s.mean[i][j]
			s.mean[i][j] += d / s.n
			s.m2[i][j] += d * (v - s.mean[i][j])
			if m[i][j] >= real[i][j] {
				s.ge[i][j]++
			}
			if m[i][j] <= real[i][j] {
				s.le[i][j]++
			}
		}
	}
}

// merge folds another state into s (Chan et al. parallel-variance combine).
// Merging chunk states in a fixed order keeps the result deterministic.
func (s *moments) merge(o *moments) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			d := o.mean[i][j] - s.mean[i][j]
			s.m2[i][j] += o.m2[i][j] + d*d*s.n*o.n/n
			s.mean[i][j] += d * o.n / n
			s.ge[i][j] += o.ge[i][j]
			s.le[i][j] += o.le[i][j]
		}
	}
	s.n = n
}

// countMatrix counts one sample with the sequential FAST algorithms
// (parallelism lives across samples, not within one), reusing the worker's
// counter and scratch.
func countMatrix(g *temporal.Graph, delta temporal.Timestamp,
	counts *motif.Counts, s *fast.Scratch) motif.Matrix {
	*counts = motif.Counts{TriMultiplicity: 1}
	for u := 0; u < g.NumNodes(); u++ {
		fast.CountStarPairNode(g, temporal.NodeID(u), delta, counts, s)
		fast.CountTriNode(g, temporal.NodeID(u), delta, &counts.Tri, true)
	}
	return counts.ToMatrix()
}

// Run counts motifs in g and in Samples null samples, returning per-motif
// statistics: mean, standard deviation, z-scores, and empirical tail
// p-values. Results are bit-identical for a fixed (Model, Samples, Seed)
// at any Workers value.
func (e *Ensemble) Run(g *temporal.Graph, delta temporal.Timestamp) (*Report, error) {
	if g == nil {
		return nil, fmt.Errorf("nullmodel: nil graph")
	}
	if delta < 0 {
		return nil, fmt.Errorf("nullmodel: negative δ (%d)", delta)
	}
	samples := e.samples()
	rep := &Report{Model: e.Model, Trials: samples}
	rep.Real = engine.Count(g, delta, engine.Options{Workers: e.Workers}).ToMatrix()

	nchunks := (samples + aggChunk - 1) / aggChunk
	workers := engine.Options{Workers: e.Workers}.EffectiveWorkers()
	if workers > nchunks {
		workers = nchunks // spare workers would never get a chunk
	}
	rep.Workers = workers

	chunkStats := make([]moments, nchunks)
	samplers := make([]*Sampler, workers)
	scratch := make([]*fast.Scratch, workers)
	for w := 0; w < workers; w++ {
		samplers[w] = NewSampler(g, e.Model)
		scratch[w] = fast.NewScratch()
		scratch[w].Grow(g.NumNodes())
	}
	var (
		errMu  sync.Mutex
		runErr error
	)
	engine.Dispatch(workers, 1, nchunks, func(w, lo, hi int) {
		var counts motif.Counts
		for c := lo; c < hi; c++ {
			first, last := c*aggChunk, min((c+1)*aggChunk, samples)
			for t := first; t < last; t++ {
				sg, err := samplers[w].Sample(sampleSeed(e.Seed, t))
				if err != nil { // unknown model: first error wins, workers drain
					errMu.Lock()
					if runErr == nil {
						runErr = err
					}
					errMu.Unlock()
					return
				}
				m := countMatrix(sg, delta, &counts, scratch[w])
				chunkStats[c].observe(&m, &rep.Real)
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}

	finishReport(rep, chunkStats)
	return rep, nil
}

// finishReport merges the per-chunk moment states in index order — the
// deterministic aggregation tree — and derives the report statistics.
func finishReport(rep *Report, chunkStats []moments) {
	var total moments
	for c := range chunkStats {
		total.merge(&chunkStats[c])
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			rep.Mean[i][j] = total.mean[i][j]
			variance := total.m2[i][j] / total.n
			if variance < 0 {
				variance = 0
			}
			rep.Std[i][j] = math.Sqrt(variance)
			rep.PUpper[i][j] = (1 + float64(total.ge[i][j])) / (total.n + 1)
			rep.PLower[i][j] = (1 + float64(total.le[i][j])) / (total.n + 1)
		}
	}
}

// SampleMatrices draws and counts the null samples with indices [lo, hi)
// and returns their exact count matrices in index order. Sample t uses the
// same deterministic seed chain as Ensemble.Run (Seed + t·7919), so any
// partition of [0, Samples) across processes reproduces exactly the
// matrices a single Run would have observed — the worker half of the
// scatter/gather significance path (internal/shard). workers bounds local
// parallelism and never changes the matrices.
func SampleMatrices(g *temporal.Graph, delta temporal.Timestamp, model Model,
	seed int64, lo, hi, workers int) ([]motif.Matrix, error) {
	if g == nil {
		return nil, fmt.Errorf("nullmodel: nil graph")
	}
	if delta < 0 {
		return nil, fmt.Errorf("nullmodel: negative δ (%d)", delta)
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("nullmodel: invalid sample range [%d, %d)", lo, hi)
	}
	n := hi - lo
	out := make([]motif.Matrix, n)
	if n == 0 {
		return out, nil
	}
	w := engine.Options{Workers: workers}.EffectiveWorkers()
	if w > n {
		w = n
	}
	samplers := make([]*Sampler, w)
	scratch := make([]*fast.Scratch, w)
	for i := 0; i < w; i++ {
		samplers[i] = NewSampler(g, model)
		scratch[i] = fast.NewScratch()
		scratch[i].Grow(g.NumNodes())
	}
	var (
		errMu  sync.Mutex
		runErr error
	)
	engine.Dispatch(w, 1, n, func(w, a, b int) {
		var counts motif.Counts
		for i := a; i < b; i++ {
			sg, err := samplers[w].Sample(sampleSeed(seed, lo+i))
			if err != nil {
				errMu.Lock()
				if runErr == nil {
					runErr = err
				}
				errMu.Unlock()
				return
			}
			out[i] = countMatrix(sg, delta, &counts, scratch[w])
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}

// ReportFromSamples assembles the exact Ensemble.Run report from
// already-counted sample matrices: samples[t] must be the count matrix of
// null sample t (the SampleMatrices output for [0, len(samples))). The
// matrices fold into the same fixed-size aggregation chunks, observed in
// sample-index order and merged in chunk-index order, so the resulting
// floating-point statistics are bit-identical to a single-process
// Ensemble.Run with the same model, seed chain and sample count — the
// gather half of the scatter/gather significance path. workers is recorded
// verbatim in Report.Workers (informational). len(samples) must be >= 1.
func ReportFromSamples(model Model, real motif.Matrix, samples []motif.Matrix, workers int) (*Report, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("nullmodel: no sample matrices")
	}
	rep := &Report{Model: model, Trials: len(samples), Workers: workers, Real: real}
	chunkStats := make([]moments, (len(samples)+aggChunk-1)/aggChunk)
	for t := range samples {
		chunkStats[t/aggChunk].observe(&samples[t], &rep.Real)
	}
	finishReport(rep, chunkStats)
	return rep, nil
}
