// Package approx estimates the higher-order motif counts (4-node stars,
// 4-node paths, compiled query plans) by deterministic stratified
// importance sampling, with per-cell normal confidence intervals derived
// from across-stratum Welford variance.
//
// The estimator rides the same structural fact as the exact parallel
// counters and the shard tier: every motif instance has a unique pivot
// (center node for stars and center plans, structural-middle / pivot-slot
// edge for paths and edge plans), so the exact count is a sum of per-pivot
// tallies over a contiguous ID domain. Instead of evaluating every pivot,
// the plan splits the domain into contiguous strata, sizes each stratum's
// draw budget by a degree-based cost proxy (largest-remainder allocation),
// and samples pivot IDs uniformly within each stratum with a per-stratum
// seeded RNG. A stratum whose allocation reaches its size is enumerated
// exactly (zero variance) — hubs that would dominate the variance are
// counted, not sampled.
//
// Everything is a pure function of (graph shape, knobs): the plan, the
// per-stratum draws, and the finishing sums are bit-identical at any
// worker count and across the shard wire. docs/APPROX.md is the normative
// spec.
package approx

import (
	"errors"
	"fmt"
	"math"
)

// Defaults for the two knobs; the zero Options value selects both.
const (
	DefaultEpsilon    = 0.05
	DefaultConfidence = 0.95
)

const (
	// maxStrata caps the stratum count: strata are the shard scatter unit
	// and the finishing sum's sequential merge, so the cap bounds both the
	// wire payload and the merge cost. Geometric slicing needs only
	// ~log2(domain) strata, so the cap rarely binds.
	maxStrata = 64
	// drawFloor is the minimum sample per unsaturated stratum.
	drawFloor = 8
)

// Typed knob rejections, matched with errors.Is by the API and serving
// tiers.
var (
	ErrEpsilon    = errors.New("approx: epsilon must be in (0, 1)")
	ErrConfidence = errors.New("approx: confidence must be in (0, 1)")
	ErrSamples    = errors.New("approx: samples must be >= 0")
)

// Options are the estimator knobs. The zero value asks for a 5% target
// relative standard error at 95% confidence with seed 0 and automatic
// sizing — the serving tier's `epsilon=0.05` default.
type Options struct {
	// Epsilon is the target relative standard error of the total count
	// (0 selects DefaultEpsilon). The automatic draw budget is
	// ceil((z/epsilon)^2) — the sample size at which a unit-coefficient-
	// of-variation series meets the target at the chosen confidence.
	Epsilon float64
	// Confidence is the CI level in (0, 1); 0 selects DefaultConfidence.
	Confidence float64
	// Seed derives every per-stratum RNG stream. Same seed, same knobs,
	// same graph ⇒ identical estimate and CI at any worker count.
	Seed int64
	// Samples overrides the automatic draw budget when > 0 (tests and
	// benchmarks pin it; the serving tier exposes it as samples=).
	Samples int
	// Workers is the estimator's goroutine count (<= 0 selects
	// GOMAXPROCS). A scheduling knob only: never part of plans, keys, or
	// results.
	Workers int
}

// Validate reports the first knob violation, nil if the options are
// usable.
func (o Options) Validate() error {
	if o.Epsilon < 0 || o.Epsilon >= 1 || math.IsNaN(o.Epsilon) {
		return fmt.Errorf("%w (got %v)", ErrEpsilon, o.Epsilon)
	}
	if o.Confidence < 0 || o.Confidence >= 1 || math.IsNaN(o.Confidence) {
		return fmt.Errorf("%w (got %v)", ErrConfidence, o.Confidence)
	}
	if o.Samples < 0 {
		return fmt.Errorf("%w (got %d)", ErrSamples, o.Samples)
	}
	return nil
}

func (o Options) epsilon() float64 {
	if o.Epsilon > 0 {
		return o.Epsilon
	}
	return DefaultEpsilon
}

func (o Options) confidence() float64 {
	if o.Confidence > 0 {
		return o.Confidence
	}
	return DefaultConfidence
}

// Stratum is one contiguous slice of the plan's weight-ranked pivot
// order. Ranking by weight is what makes stratification effective on the
// hub-skewed graphs the estimator exists for: pivots of similar cost (and
// therefore similar tally magnitude) share a stratum, the hub strata
// carry most of the draw budget, and the very top typically saturates —
// hubs are enumerated exactly, never extrapolated from a lucky miss.
type Stratum struct {
	// Lo, Hi bound the half-open rank range [Lo, Hi) into the plan's
	// pivot permutation (weight-descending, ID ascending on ties).
	Lo, Hi int
	// Draws is the number of evaluations: a simple random sample without
	// replacement when !Exact, the full enumeration (Hi-Lo) when Exact.
	Draws int
	// Exact marks a saturated stratum — its allocation reached its size,
	// so it is enumerated in ID order and contributes zero variance.
	Exact bool
	// Seed seeds this stratum's private RNG stream (ignored when Exact).
	Seed int64
}

// Plan is a fully materialized sampling plan: strata bounds, per-stratum
// draw budgets and seeds, and the finishing z-quantile. It is a pure
// function of (domain, weights, options) — the coordinator and every
// shard worker rebuild byte-identical plans from the wire knobs — and is
// immutable and safe for concurrent use.
type Plan struct {
	// Domain is the pivot-ID domain size ([0, Domain) is partitioned).
	Domain int
	// Cells is the kernel's cell count (8 stars, 48 path slots, 1 query).
	Cells int
	// Budget is the requested total draw budget after clamping to
	// [drawFloor, Domain]; saturation caps may realize fewer evaluations.
	Budget int
	// Z is the two-sided normal quantile for the confidence level.
	Z float64
	// Epsilon and Confidence echo the resolved knobs.
	Epsilon, Confidence float64
	// Seed echoes the plan seed the strata streams derive from.
	Seed int64
	// Strata partitions the ranks [0, Domain) in ascending rank order.
	Strata []Stratum

	// perm maps rank -> pivot ID (weight descending, ID ascending on
	// ties). Never serialized: every node rebuilds it deterministically
	// from the graph and knobs via NewPlan, so only knobs cross the wire.
	perm []int32
}

// PivotAt resolves rank r to its pivot ID.
func (p *Plan) PivotAt(r int) int { return int(p.perm[r]) }

// ExactStrata counts the saturated (exactly enumerated) strata.
func (p *Plan) ExactStrata() int {
	n := 0
	for i := range p.Strata {
		if p.Strata[i].Exact {
			n++
		}
	}
	return n
}

// BuildPlan materializes the sampling plan for a pivot domain of the given
// size, with weight(id) the nonnegative per-pivot cost/variance proxy.
// Deterministic: equal inputs produce equal plans, field for field.
func BuildPlan(domain, cells int, weight func(id int) float64, o Options) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	eps, conf := o.epsilon(), o.confidence()
	z := zQuantile((1 + conf) / 2)
	p := &Plan{Domain: domain, Cells: cells, Z: z, Epsilon: eps, Confidence: conf, Seed: o.Seed}
	if domain <= 0 {
		return p, nil
	}

	// Draw budget: explicit override, else the CLT sizing ceil((z/eps)^2),
	// clamped to [2, domain] — a budget at the domain size degenerates to
	// exact enumeration (every stratum saturates).
	budget := o.Samples
	if budget <= 0 {
		budget = int(math.Ceil((z / eps) * (z / eps)))
	}
	if budget < drawFloor {
		budget = drawFloor
	}
	if budget > domain {
		budget = domain
	}
	p.Budget = budget

	// Stratum count cap: the draw floor must be affordable per stratum.
	sMax := maxStrata
	if sMax > budget/drawFloor {
		sMax = budget / drawFloor
	}
	if sMax > domain {
		sMax = domain
	}
	if sMax < 1 {
		sMax = 1
	}

	// Rank the pivots by weight (descending; ID breaks ties, so the
	// permutation is a pure function of the weights). The per-pivot
	// weights are sanitized once: negative/NaN/Inf proxies count as 0,
	// and every pivot carries a +1 floor so no stratum's share vanishes.
	wts := make([]float64, domain)
	for id := 0; id < domain; id++ {
		w := weight(id)
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			w = 0
		}
		wts[id] = w + 1
	}
	p.perm = rankByWeight(wts)

	// Geometric rank slices from the head: sizes 1, 2, 4, … On a skewed
	// graph the ranked head holds the dominant pivots, so the head strata
	// are tiny, win the weight allocation, saturate under the waterfall,
	// and are enumerated exactly — no dominant pivot is ever left to
	// sampling luck (a single missed hub can hold most of the count). The
	// last slice absorbs the tail when the cap bites; on a uniform graph
	// the weights are flat and the tail slice simply keeps most of the
	// budget.
	bounds := []int{0}
	for size := 1; len(bounds) < sMax; size *= 2 {
		next := bounds[len(bounds)-1] + size
		if next >= domain {
			break
		}
		bounds = append(bounds, next)
	}
	strata := make([]Stratum, len(bounds))
	weights := make([]float64, len(bounds))
	for i := range strata {
		hi := domain
		if i+1 < len(bounds) {
			hi = bounds[i+1]
		}
		strata[i] = Stratum{Lo: bounds[i], Hi: hi, Seed: mixSeed(o.Seed, i)}
		w := 0.0
		for r := bounds[i]; r < hi; r++ {
			w += wts[p.perm[r]]
		}
		weights[i] = w
	}

	// Allocation: a draw floor per stratum (the variance estimate needs a
	// few degrees of freedom to be stable — 2 draws give it exactly one),
	// the remainder by largest-remainder apportionment over the weights,
	// then
	// a saturation waterfall — a stratum allocated its full size is capped
	// (it will enumerate exactly), and the excess re-apportions over the
	// still-unsaturated strata until the budget is placed or everything
	// saturates. At budget == domain the waterfall converges to full
	// enumeration: epsilon small enough degrades gracefully to exact.
	remaining := budget
	for i := range strata {
		base := drawFloor
		if n := strata[i].Hi - strata[i].Lo; base > n {
			base = n
		}
		strata[i].Draws = base
		remaining -= base
	}
	for remaining > 0 {
		var elig []int
		var eligW []float64
		for i := range strata {
			if strata[i].Draws < strata[i].Hi-strata[i].Lo {
				elig = append(elig, i)
				eligW = append(eligW, weights[i])
			}
		}
		if len(elig) == 0 {
			break
		}
		for j, add := range apportion(remaining, eligW) {
			strata[elig[j]].Draws += add
		}
		remaining = 0
		for i := range strata {
			if n := strata[i].Hi - strata[i].Lo; strata[i].Draws > n {
				remaining += strata[i].Draws - n
				strata[i].Draws = n
			}
		}
	}
	for i := range strata {
		if strata[i].Draws == strata[i].Hi-strata[i].Lo {
			strata[i].Exact = true
		}
	}
	p.Strata = strata
	return p, nil
}

// rankByWeight returns the pivot permutation sorted by weight descending,
// ID ascending on ties — the plan's canonical rank order. Plan
// construction is pure overhead next to the draws it schedules, and a
// comparison sort over the whole domain was the estimator's single
// hottest block on large graphs, so the ranking is an LSD radix sort on
// order-inverted IEEE bits instead: the weights are sanitized positive
// floats, whose bit patterns order like the values, so complementing the
// bits yields an ascending integer sort == descending float sort, and
// radix stability turns ascending-ID initialization into the tie-break.
// O(domain) per pass, four 16-bit passes, identical output to the
// comparison sort on every input.
func rankByWeight(wts []float64) []int32 {
	type pair struct {
		key uint64
		id  int32
	}
	n := len(wts)
	pairs := make([]pair, n)
	for id := range wts {
		pairs[id] = pair{^math.Float64bits(wts[id]), int32(id)}
	}
	tmp := make([]pair, n)
	var count [1 << 16]int32
	for shift := 0; shift < 64; shift += 16 {
		clear(count[:])
		for i := range pairs {
			count[uint16(pairs[i].key>>shift)]++
		}
		if count[uint16(pairs[0].key>>shift)] == int32(n) {
			continue // all keys share this digit: the pass is a no-op
		}
		pos := int32(0)
		for d := range count {
			c := count[d]
			count[d] = pos
			pos += c
		}
		for i := range pairs {
			d := uint16(pairs[i].key >> shift)
			tmp[count[d]] = pairs[i]
			count[d]++
		}
		pairs, tmp = tmp, pairs
	}
	perm := make([]int32, n)
	for i := range pairs {
		perm[i] = pairs[i].id
	}
	return perm
}

// apportion splits units integer-exactly in proportion to weights (all
// > 0) by largest-remainder: floor every share, then hand the leftover
// units to the largest fractional remainders, ties to the lower index.
// Deterministic; the quadratic remainder scan is trivial at <= maxStrata.
func apportion(units int, weights []float64) []int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	out := make([]int, len(weights))
	frac := make([]float64, len(weights))
	assigned := 0
	for i, w := range weights {
		q := float64(units) * w / total
		out[i] = int(q)
		frac[i] = q - float64(out[i])
		assigned += out[i]
	}
	for left := units - assigned; left > 0; left-- {
		best := -1
		for i := range frac {
			if frac[i] >= 0 && (best < 0 || frac[i] > frac[best]) {
				best = i
			}
		}
		out[best]++
		frac[best] = -1
	}
	return out
}

// mixSeed derives stratum i's RNG seed from the plan seed with a
// splitmix64 finalization step: decorrelated streams, pure arithmetic,
// identical on every worker that rebuilds the plan.
func mixSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// zQuantile is the standard normal inverse CDF by Acklam's rational
// approximation (|relative error| < 1.15e-9 on (0,1)): deterministic,
// dependency-free, and identical across platforms for the finishing math.
func zQuantile(p float64) float64 {
	const (
		a1, a2, a3 = -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02
		a4, a5, a6 = 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00
		b1, b2, b3 = -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02
		b4, b5     = 6.680131188771972e+01, -1.328068155288572e+01
		c1, c2, c3 = -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00
		c4, c5, c6 = -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00
		d1, d2, d3 = 7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00
		d4         = 3.754408661907416e+00
		plow       = 0.02425
	)
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}
