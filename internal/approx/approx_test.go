package approx

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hare/internal/gen"
	"hare/internal/higher"
	"hare/internal/query"
	"hare/internal/temporal"
)

// randomGraph mirrors the corpus generator of the exact-counter tests
// (internal/higher, internal/brute): those packages prove the exact
// counters against exhaustive brute force on exactly this family, which is
// what makes CountStar4/CountPath4/Execute valid oracles here.
func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

// hubGraph is a small hub-skewed corpus graph: the shape the estimator
// exists for, and the shape where naive uniform sampling would miscover.
func hubGraph(seed int64) *temporal.Graph {
	return gen.MustGenerate(gen.Config{
		Name: "hub", Nodes: 1200, Edges: 2400, TimeSpan: 5000,
		ZipfS: 1.4, ReplyProb: 0.2, RepeatProb: 0.1, TriadProb: 0.1,
		BurstLen: 4, Seed: seed,
	})
}

func TestZQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.995, 2.5758293035489004},
		{0.01, -2.3263478740408408},
	}
	for _, c := range cases {
		if got := zQuantile(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("zQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(zQuantile(0), -1) || !math.IsInf(zQuantile(1), 1) {
		t.Errorf("zQuantile must saturate at the endpoints")
	}
}

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{{Epsilon: -0.1}, {Epsilon: 1}, {Epsilon: math.NaN()}} {
		if err := o.Validate(); err == nil {
			t.Errorf("Options%+v.Validate() = nil, want ErrEpsilon", o)
		}
	}
	for _, o := range []Options{{Confidence: -0.5}, {Confidence: 1}} {
		if err := o.Validate(); err == nil {
			t.Errorf("Options%+v.Validate() = nil, want ErrConfidence", o)
		}
	}
	if err := (Options{Samples: -1}).Validate(); err == nil {
		t.Errorf("negative Samples must be rejected")
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options must validate, got %v", err)
	}
}

func TestBuildPlanProperties(t *testing.T) {
	g := hubGraph(1)
	k := StarKernel{}
	weight := func(id int) float64 { return k.Weight(g, id) }
	for _, o := range []Options{
		{},
		{Epsilon: 0.1, Confidence: 0.9, Seed: 7},
		{Samples: 50, Seed: 3},
		{Samples: 5},
		{Samples: 1 << 30}, // clamps to the domain: fully exact plan
	} {
		p, err := BuildPlan(k.Domain(g), k.Cells(), weight, o)
		if err != nil {
			t.Fatalf("BuildPlan(%+v): %v", o, err)
		}
		if p.Budget < 2 || p.Budget > p.Domain {
			t.Fatalf("budget %d outside [2, %d]", p.Budget, p.Domain)
		}
		covered, draws := 0, 0
		for i, st := range p.Strata {
			if st.Lo != covered {
				t.Fatalf("stratum %d starts at %d, want %d (contiguous)", i, st.Lo, covered)
			}
			covered = st.Hi
			n := st.Hi - st.Lo
			if n <= 0 {
				t.Fatalf("stratum %d is empty", i)
			}
			if st.Exact != (st.Draws == n) {
				t.Fatalf("stratum %d: exact=%v with draws %d of %d", i, st.Exact, st.Draws, n)
			}
			if !st.Exact && st.Draws < 2 {
				t.Fatalf("stratum %d: sampled with %d < 2 draws", i, st.Draws)
			}
			draws += st.Draws
		}
		if covered != p.Domain {
			t.Fatalf("strata cover [0, %d), want [0, %d)", covered, p.Domain)
		}
		if draws > p.Budget {
			t.Fatalf("allocated %d draws over budget %d", draws, p.Budget)
		}
		// Same inputs, same plan — the property the shard tier rides.
		p2, _ := BuildPlan(k.Domain(g), k.Cells(), weight, o)
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("BuildPlan is not deterministic for %+v", o)
		}
	}
	if _, err := BuildPlan(10, 1, func(int) float64 { return 1 }, Options{Epsilon: 2}); err == nil {
		t.Fatalf("invalid epsilon must fail BuildPlan")
	}
	empty, err := BuildPlan(0, 8, func(int) float64 { return 1 }, Options{})
	if err != nil || len(empty.Strata) != 0 {
		t.Fatalf("empty domain: plan %+v, err %v", empty, err)
	}
}

func mustSpec(t *testing.T, text string) *query.Spec {
	t.Helper()
	s, err := query.ParseSpec(text)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", text, err)
	}
	return s
}

// kernels under test, with their exact oracles (proven against exhaustive
// brute force in their home packages).
func kernelsFor(t *testing.T, g *temporal.Graph, delta temporal.Timestamp) map[string]struct {
	k     Kernel
	exact float64
} {
	star := higher.CountStar4(g, delta, higher.Options{Workers: 1})
	path := higher.CountPath4(g, delta, higher.Options{Workers: 1})
	tri := query.Compile(mustSpec(t, "a->b; b->c; c->a"))
	return map[string]struct {
		k     Kernel
		exact float64
	}{
		"star4": {StarKernel{}, float64(star.Total())},
		"path4": {PathKernel{}, float64(path.Total())},
		"query": {PlanKernel{Plan: tri}, float64(tri.Execute(g, delta, query.Options{Workers: 1}))},
	}
}

func TestKernelsMatchExactOracles(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomGraph(r, 40, 300, 2000)
	const delta = 400
	for name, tc := range kernelsFor(t, g, delta) {
		// Exhaustive plan (Samples = domain) must reproduce the exact
		// count with a zero-width interval: every stratum saturates.
		res, err := Estimate(g, tc.k, delta, Options{Samples: tc.k.Domain(g)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Total.Estimate != tc.exact || res.Total.Low != tc.exact || res.Total.High != tc.exact {
			t.Errorf("%s saturated: total %+v, want exactly %v", name, res.Total, tc.exact)
		}
		if res.ExactStrata != res.Strata {
			t.Errorf("%s saturated: %d/%d exact strata", name, res.ExactStrata, res.Strata)
		}
	}
	// Star cells must match the exact counter cell-for-cell when saturated.
	star := higher.CountStar4(g, delta, higher.Options{Workers: 1})
	res, err := Star4(g, delta, Options{Samples: g.NumNodes()})
	if err != nil {
		t.Fatal(err)
	}
	for i, iv := range res.Cells {
		if iv.Estimate != float64(star[i]) {
			t.Errorf("star cell %d: %v, want %v", i, iv.Estimate, star[i])
		}
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	g := hubGraph(2)
	const delta = 600
	for name, tc := range kernelsFor(t, g, delta) {
		var ref *Result
		for _, workers := range []int{1, 2, 4} {
			res, err := Estimate(g, tc.k, delta, Options{Seed: 42, Samples: 300, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !reflect.DeepEqual(ref, res) {
				t.Errorf("%s: workers=%d result differs from workers=1\n got %+v\nwant %+v",
					name, workers, res, ref)
			}
		}
	}
	// The epsilon/conf road: auto-sized budgets must be deterministic too.
	a, err := Star4(g, delta, Options{Epsilon: 0.1, Confidence: 0.9, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Star4(g, delta, Options{Epsilon: 0.1, Confidence: 0.9, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("auto-sized star4 differs across worker counts")
	}
}

func TestUnbiasedness(t *testing.T) {
	// Mean over many seeds must land within 1% of the exact count: the
	// Horvitz–Thompson reweighting is unbiased, so the only slack is
	// sampling noise, which the seed count averages down.
	r := rand.New(rand.NewSource(23))
	g := randomGraph(r, 200, 800, 3000)
	const delta, seeds = 500, 150
	kernels := kernelsFor(t, g, delta)
	// The triangle spec is too sparse on this corpus for a 1% mean bound
	// (the bound would be a fraction of one instance); unbiasedness of the
	// edge-pivot road is checked on a denser spec.
	chain := query.Compile(mustSpec(t, "a->b; b->c; c->d"))
	kernels["query"] = struct {
		k     Kernel
		exact float64
	}{PlanKernel{Plan: chain}, float64(chain.Execute(g, delta, query.Options{Workers: 1}))}
	for name, tc := range kernels {
		if tc.exact == 0 {
			t.Fatalf("%s: corpus graph has zero exact count; pick a denser corpus", name)
		}
		// Half the domain: every kernel genuinely samples (no kernel
		// saturates into trivially exact enumeration).
		samples := tc.k.Domain(g) / 2
		sum, sampled := 0.0, false
		for seed := int64(1); seed <= seeds; seed++ {
			res, err := Estimate(g, tc.k, delta, Options{Samples: samples, Seed: seed, Workers: 1})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			sum += res.Total.Estimate
			sampled = sampled || res.ExactStrata < res.Strata
		}
		if !sampled {
			t.Fatalf("%s: every stratum saturated; the test proved nothing", name)
		}
		mean := sum / seeds
		if rel := math.Abs(mean-tc.exact) / tc.exact; rel > 0.01 {
			t.Errorf("%s: mean over %d seeds = %v, exact = %v (rel err %.4f > 1%%)",
				name, seeds, mean, tc.exact, rel)
		}
	}
}

// TestCICalibration is the differential coverage test the race job runs as
// its dedicated approx-calibration step: across many seeds and 1/2/4
// workers, the reported 95% CI must cover the exact (brute-force-checked)
// count at >= the stated confidence. Every trial is a fixed (seed, knobs)
// pair, so the tally is reproducible, not statistically flaky.
func TestCICalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration tally is the race job's dedicated non-short step")
	}
	const delta = 600
	r := rand.New(rand.NewSource(31))
	// Corpus sized so that a third of any kernel's domain is still a few
	// hundred draws — the regime the epsilon knob produces (budget
	// (z/ε)² ≈ 1537 at the serving default). Far smaller pinned budgets
	// sit below CLT territory on skewed tallies and are not part of the
	// calibration contract (docs/APPROX.md).
	graphs := map[string]*temporal.Graph{
		"uniform": randomGraph(r, 600, 1800, 9000),
		"hub":     hubGraph(3),
	}
	const seeds = 60
	for gname, g := range graphs {
		kernels := kernelsFor(t, g, delta)
		// The triangle spec is ultra-sparse on these corpora (single-digit
		// exact counts): with almost every per-pivot tally zero, a sampled
		// stratum can observe nothing and report a zero-width interval —
		// the documented sparse-count limitation (docs/APPROX.md), not a
		// calibration defect. The coverage tally uses the denser chain
		// spec; sparse specs belong in exact mode.
		chain := query.Compile(mustSpec(t, "a->b; b->c; c->d"))
		kernels["query"] = struct {
			k     Kernel
			exact float64
		}{PlanKernel{Plan: chain}, float64(chain.Execute(g, delta, query.Options{Workers: 1}))}
		for name, tc := range kernels {
			// Two sweeps per kernel: the serving default (epsilon=0.05,
			// which saturates small domains — exact by construction), and
			// a pinned budget of a third of the domain, which forces real
			// sampling so the tally exercises the normal CI itself.
			sweeps := map[string]Options{
				"eps": {Epsilon: 0.05, Confidence: 0.95},
				"cap": {Samples: tc.k.Domain(g) / 3, Confidence: 0.95},
			}
			for sname, base := range sweeps {
				covered, trials := 0, 0
				for seed := int64(1); seed <= seeds; seed++ {
					o := base
					o.Seed = seed
					o.Workers = 1 << (seed % 3) // 1, 2, 4: the worker sweep
					res, err := Estimate(g, tc.k, delta, o)
					if err != nil {
						t.Fatalf("%s/%s/%s seed %d: %v", gname, name, sname, seed, err)
					}
					trials++
					if res.Total.Low <= tc.exact && tc.exact <= res.Total.High {
						covered++
					}
				}
				rate := float64(covered) / float64(trials)
				t.Logf("%s/%s/%s: CI coverage %d/%d = %.3f (stated %.2f)",
					gname, name, sname, covered, trials, rate, 0.95)
				if rate < 0.95 {
					t.Errorf("%s/%s/%s: coverage %.3f below the stated confidence 0.95",
						gname, name, sname, rate)
				}
			}
		}
	}
}

func TestFinishRejectsMismatches(t *testing.T) {
	g := hubGraph(4)
	plan, err := NewPlan(g, StarKernel{}, Options{Samples: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Finish(plan, nil); err == nil {
		t.Errorf("Finish must reject a moment/stratum count mismatch")
	}
	moments := EstimateStrata(g, StarKernel{}, 600, plan, 2, 0, len(plan.Strata))
	bad := make([]Moments, len(moments))
	copy(bad, moments)
	bad[0].Mean = bad[0].Mean[:1]
	if _, err := Finish(plan, bad); err == nil {
		t.Errorf("Finish must reject a series-length mismatch")
	}
	copy(bad, moments)
	bad[0].Draws++
	if _, err := Finish(plan, bad); err == nil {
		t.Errorf("Finish must reject a draw-count mismatch")
	}
	if _, err := Finish(plan, moments); err != nil {
		t.Errorf("Finish on matching moments: %v", err)
	}
}

func TestEstimateStrataRangesCompose(t *testing.T) {
	// Concatenating per-range moments in stratum order must finish to the
	// same result as the full local run — the shard gather contract.
	g := hubGraph(5)
	const delta = 600
	plan, err := NewPlan(g, PathKernel{}, Options{Samples: 256, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	full := EstimateStrata(g, PathKernel{}, delta, plan, 2, 0, len(plan.Strata))
	mid := len(plan.Strata) / 2
	parts := append(
		EstimateStrata(g, PathKernel{}, delta, plan, 3, 0, mid),
		EstimateStrata(g, PathKernel{}, delta, plan, 1, mid, len(plan.Strata))...)
	if !reflect.DeepEqual(full, parts) {
		t.Fatalf("range-split moments differ from the full run")
	}
	a, err := Finish(plan, full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Finish(plan, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("finished results differ across the split")
	}
}
