package approx

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/query"
	"hare/internal/temporal"
)

// Moments is one stratum's Welford state over the sampled per-pivot
// series: Cells per-cell series plus one trailing per-pivot-total series
// (index Cells). It is the shard wire payload — raw float64 means and M2s
// round-trip exactly through JSON, so a coordinator finishing remote
// moments is bit-identical to finishing local ones.
type Moments struct {
	// Draws is the number of evaluations folded in.
	Draws int `json:"draws"`
	// Exact marks a saturated stratum (full enumeration, zero variance).
	Exact bool `json:"exact,omitempty"`
	// Sum is the plain per-series sum of the evaluations — the point
	// estimate's numerator. Tallies are integers, so an exact stratum's
	// Sum is its count with no float error (exact mode stays exact).
	Sum []float64 `json:"sum"`
	// Mean and M2 are the running Welford mean and sum of squared
	// deviations per series; M2 feeds the variance, Mean exists to update
	// it stably.
	Mean []float64 `json:"mean"`
	M2   []float64 `json:"m2"`
}

func newMoments(series int) Moments {
	return Moments{
		Sum:  make([]float64, series),
		Mean: make([]float64, series),
		M2:   make([]float64, series),
	}
}

// observe folds one evaluation in, Welford-style (numerically stable,
// order-deterministic: the draw sequence is fixed by the stratum seed).
func (m *Moments) observe(y []float64) {
	m.Draws++
	n := float64(m.Draws)
	for i, v := range y {
		m.Sum[i] += v
		d := v - m.Mean[i]
		m.Mean[i] += d / n
		m.M2[i] += d * (v - m.Mean[i])
	}
}

// EstimateStrata evaluates the plan's strata with indices in [lo, hi)
// (clamped to [0, len(plan.Strata))) and returns their moments in stratum
// order — the per-shard work unit of the scatter tier, and the whole job
// when called with the full range. Each stratum is one work unit under
// engine.Dispatch; its moments are a pure function of (g, kernel, delta,
// stratum), so the result is bit-identical at any worker count.
func EstimateStrata(g *temporal.Graph, k Kernel, delta temporal.Timestamp, plan *Plan, workers, lo, hi int) []Moments {
	if lo < 0 {
		lo = 0
	}
	if hi > len(plan.Strata) {
		hi = len(plan.Strata)
	}
	if lo >= hi {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	series := plan.Cells + 1
	out := make([]Moments, hi-lo)
	scratch := make([]*fast.Scratch, workers)
	bufs := make([][]float64, workers)
	for w := range scratch {
		scratch[w] = fast.NewScratch()
		scratch[w].Grow(g.NumNodes())
		bufs[w] = make([]float64, series)
	}
	engine.Dispatch(workers, 1, hi-lo, func(w, a, b int) {
		for i := a; i < b; i++ {
			out[i] = sampleStratum(g, k, delta, plan, lo+i, scratch[w], bufs[w])
		}
	})
	return out
}

// sampleStratum draws (or enumerates) one stratum, resolving ranks to
// pivot IDs through the plan's weight permutation. The RNG stream is the
// stratum's own, so the draw sequence — and therefore the moments — do not
// depend on which worker runs the stratum or on any other stratum.
func sampleStratum(g *temporal.Graph, k Kernel, delta temporal.Timestamp, plan *Plan, idx int, scratch *fast.Scratch, buf []float64) Moments {
	st := &plan.Strata[idx]
	cells := len(buf) - 1
	m := newMoments(len(buf))
	m.Exact = st.Exact
	eval := func(rank int) {
		k.Eval(g, delta, plan.PivotAt(rank), scratch, buf[:cells])
		total := 0.0
		for _, v := range buf[:cells] {
			total += v
		}
		buf[cells] = total
		m.observe(buf)
	}
	if st.Exact {
		for r := st.Lo; r < st.Hi; r++ {
			eval(r)
		}
		return m
	}
	// Simple random sample without replacement, by partial Fisher–Yates
	// over the stratum's ranks: no draw is wasted re-evaluating a pivot,
	// the dominant pivot is in-sample with probability Draws/n, and the
	// finite-population correction in Finish is honest.
	rng := rand.New(rand.NewSource(st.Seed))
	n := st.Hi - st.Lo
	ranks := make([]int32, n)
	for i := range ranks {
		ranks[i] = int32(st.Lo + i)
	}
	for j := 0; j < st.Draws; j++ {
		swap := j + rng.Intn(n-j)
		ranks[j], ranks[swap] = ranks[swap], ranks[j]
		eval(int(ranks[j]))
	}
	return m
}

// Interval is one estimated count with its confidence bounds.
type Interval struct {
	// Estimate is the unbiased point estimate.
	Estimate float64 `json:"estimate"`
	// Low and High bound the normal CI at the plan's confidence level;
	// Low is clamped at 0 (counts are nonnegative).
	Low  float64 `json:"low"`
	High float64 `json:"high"`
}

// Result is a finished estimate: per-cell intervals in kernel cell order
// plus the total-count interval (its variance is the total series' own,
// not a sum of cell variances — cells are correlated within a pivot).
type Result struct {
	Cells       []Interval
	Total       Interval
	Draws       int // evaluations actually performed
	Strata      int
	ExactStrata int
	Epsilon     float64
	Confidence  float64
}

// Finish folds per-stratum moments into the estimate and CIs, iterating
// strata in index order with plain float64 sums — the deterministic merge
// the bit-identity contract requires. moments must align one-to-one with
// plan.Strata (the coordinator concatenates shard parts in shard order,
// which is stratum order).
func Finish(plan *Plan, moments []Moments) (*Result, error) {
	if len(moments) != len(plan.Strata) {
		return nil, fmt.Errorf("approx: %d moment sets for %d strata", len(moments), len(plan.Strata))
	}
	series := plan.Cells + 1
	res := &Result{
		Cells:       make([]Interval, plan.Cells),
		Strata:      len(plan.Strata),
		ExactStrata: plan.ExactStrata(),
		Epsilon:     plan.Epsilon,
		Confidence:  plan.Confidence,
	}
	est := make([]float64, series)
	vr := make([]float64, series)
	// dfDen accumulates Σ v_s²/(m_s−1) per series for Welch–Satterthwaite:
	// with few sampled strata the variance estimate itself is noisy, and
	// the t-quantile at the effective df widens the interval accordingly.
	dfDen := make([]float64, series)
	for s := range moments {
		m := &moments[s]
		st := &plan.Strata[s]
		if len(m.Sum) != series || len(m.Mean) != series || len(m.M2) != series {
			return nil, fmt.Errorf("approx: stratum %d has %d series, plan wants %d", s, len(m.Sum), series)
		}
		if m.Draws != st.Draws || m.Exact != st.Exact {
			return nil, fmt.Errorf("approx: stratum %d draws %d/exact=%v, plan wants %d/%v",
				s, m.Draws, m.Exact, st.Draws, st.Exact)
		}
		res.Draws += m.Draws
		n := float64(st.Hi - st.Lo)
		md := float64(m.Draws)
		for i := 0; i < series; i++ {
			if m.Exact {
				// A saturated stratum's Sum is its exact count: no
				// reweighting, no float division, zero variance.
				est[i] += m.Sum[i]
				continue
			}
			// Horvitz–Thompson over a without-replacement uniform sample:
			// the stratum total is n·mean, estimated as n·Sum/draws.
			est[i] += n * m.Sum[i] / md
			if m.Draws >= 2 {
				// Deliberately conservative variance: n²·s²/m is the
				// with-replacement formula, a strict upper bound on the
				// SRSWOR variance (the finite-population correction is
				// dropped). Sample variance under-measures skewed tallies
				// in small samples; the slack buys the coverage guarantee
				// the calibration test enforces. Saturated strata are
				// exact either way.
				v := n * n * (m.M2[i] / (md - 1)) / md
				vr[i] += v
				dfDen[i] += v * v / (md - 1)
			}
		}
	}
	sampled := res.ExactStrata < res.Strata
	for i := 0; i < series; i++ {
		q := plan.Z
		if dfDen[i] > 0 {
			df := vr[i] * vr[i] / dfDen[i]
			q = tQuantile((1+plan.Confidence)/2, df)
		}
		if sampled && vr[i] < est[i] {
			// Poisson-scale variance floor (var >= estimate): a sampled
			// count cannot honestly claim sub-shot-noise precision — when
			// the head strata saturate and the thin sampled tail shows
			// near-zero spread, the across-strata variance collapses while
			// a few residual instances in the unseen tail remain
			// perfectly plausible. Fully saturated runs (every stratum
			// exact) keep their zero-width interval.
			vr[i] = est[i]
		}
		half := q * math.Sqrt(vr[i])
		iv := Interval{Estimate: est[i], Low: est[i] - half, High: est[i] + half}
		if iv.Low < 0 {
			iv.Low = 0
		}
		if i < plan.Cells {
			res.Cells[i] = iv
		} else {
			res.Total = iv
		}
	}
	return res, nil
}

// tQuantile is the Student-t inverse CDF at df degrees of freedom, via the
// Cornish–Fisher expansion around the normal quantile (Peiser). df is
// clamped at 1; the expansion's error is a few percent there and vanishes
// as df grows — conservative enough for interval widening, deterministic,
// dependency-free.
func tQuantile(p, df float64) float64 {
	if df < 1 {
		df = 1
	}
	z := zQuantile(p)
	z2 := z * z
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	return z + g1/df + g2/(df*df) + g3/(df*df*df)
}

// NewPlan builds the sampling plan for kernel k on g — the single plan
// constructor every tier shares, so a coordinator and its workers always
// agree on strata, budgets, and seeds.
func NewPlan(g *temporal.Graph, k Kernel, o Options) (*Plan, error) {
	return BuildPlan(k.Domain(g), k.Cells(), func(id int) float64 { return k.Weight(g, id) }, o)
}

// Estimate runs the full plan locally: build, sample, finish.
func Estimate(g *temporal.Graph, k Kernel, delta temporal.Timestamp, o Options) (*Result, error) {
	plan, err := NewPlan(g, k, o)
	if err != nil {
		return nil, err
	}
	moments := EstimateStrata(g, k, delta, plan, o.Workers, 0, len(plan.Strata))
	return Finish(plan, moments)
}

// Star4 estimates the 8-cell star counter (cells in motif.PairDirs order).
func Star4(g *temporal.Graph, delta temporal.Timestamp, o Options) (*Result, error) {
	return Estimate(g, StarKernel{}, delta, o)
}

// Path4 estimates the 48-slot path counter (canonical labels carry the
// counts; see higher.AllPathLabels).
func Path4(g *temporal.Graph, delta temporal.Timestamp, o Options) (*Result, error) {
	return Estimate(g, PathKernel{}, delta, o)
}

// Query estimates a compiled plan's total count (one cell).
func Query(g *temporal.Graph, p *query.Plan, delta temporal.Timestamp, o Options) (*Result, error) {
	return Estimate(g, PlanKernel{Plan: p}, delta, o)
}
