package approx

import (
	"hare/internal/fast"
	"hare/internal/higher"
	"hare/internal/query"
	"hare/internal/temporal"
)

// Kernel is one sampleable counting problem: a pivot-ID domain whose
// per-pivot tallies sum to the exact count, a per-pivot cost/variance
// proxy for stratum allocation, and the per-pivot evaluation itself. All
// methods must be pure (safe for concurrent use with per-worker scratch).
type Kernel interface {
	// Cells is the number of counter cells Eval fills (8 star patterns,
	// 48 path slots, 1 query total).
	Cells() int
	// Domain is the pivot-ID domain size on g (nodes or edges).
	Domain(g *temporal.Graph) int
	// Weight is the nonnegative allocation proxy for pivot id — a cheap
	// stand-in for the pivot's tally variance, typically a degree product.
	Weight(g *temporal.Graph, id int) float64
	// Eval writes pivot id's exact per-cell tally into out[:Cells()],
	// overwriting every cell. scratch is a per-worker fast.Scratch grown
	// to NumNodes.
	Eval(g *temporal.Graph, delta temporal.Timestamp, id int, scratch *fast.Scratch, out []float64)
}

// StarKernel samples 4-node stars by center node. Weight is d³ — the
// all-triples count a center of temporal degree d can host dominates both
// its cost and its tally variance.
type StarKernel struct{}

// Cells implements Kernel (the 8 direction-pattern star motifs).
func (StarKernel) Cells() int { return 8 }

// Domain implements Kernel: centers are nodes.
func (StarKernel) Domain(g *temporal.Graph) int { return g.NumNodes() }

// Weight implements Kernel.
func (StarKernel) Weight(g *temporal.Graph, id int) float64 {
	d := float64(g.Degree(temporal.NodeID(id)))
	return d * d * d
}

// Eval implements Kernel via the exact per-center counter the parallel
// star machinery schedules.
func (StarKernel) Eval(g *temporal.Graph, delta temporal.Timestamp, id int, scratch *fast.Scratch, out []float64) {
	s4, _ := higher.CountNode(g, temporal.NodeID(id), delta, scratch)
	for i := range s4 {
		out[i] = float64(s4[i])
	}
}

// PathKernel samples 4-node paths by structural-middle edge. Weight is
// d(src)·d(dst) — the window-pair bound on the per-middle-edge scan.
type PathKernel struct{}

// Cells implements Kernel: the full 48-slot path counter (24 canonical
// labels plus unused slots, kept so cells line up with higher.PathCounter).
func (PathKernel) Cells() int { return 48 }

// Domain implements Kernel: middles are edges.
func (PathKernel) Domain(g *temporal.Graph) int { return g.NumEdges() }

// Weight implements Kernel.
func (PathKernel) Weight(g *temporal.Graph, id int) float64 {
	e := temporal.EdgeID(id)
	return float64(g.Degree(g.Src()[e])) * float64(g.Degree(g.Dst()[e]))
}

// Eval implements Kernel via the exact per-middle-edge counter.
func (PathKernel) Eval(g *temporal.Graph, delta temporal.Timestamp, id int, _ *fast.Scratch, out []float64) {
	var pc higher.PathCounter
	higher.CountPathMiddle(g, temporal.EdgeID(id), delta, &pc)
	for i := range pc {
		out[i] = float64(pc[i])
	}
}

// PlanKernel samples a compiled query plan by its pivot family: center
// nodes for PlanCenter (weight d³), pivot-slot edges for PlanEdge (weight
// d(src)·d(dst)).
type PlanKernel struct{ Plan *query.Plan }

// Cells implements Kernel: one total per pivot.
func (PlanKernel) Cells() int { return 1 }

// Domain implements Kernel.
func (k PlanKernel) Domain(g *temporal.Graph) int { return k.Plan.Domain(g) }

// Weight implements Kernel.
func (k PlanKernel) Weight(g *temporal.Graph, id int) float64 {
	if k.Plan.Kind() == query.PlanCenter {
		return StarKernel{}.Weight(g, id)
	}
	return PathKernel{}.Weight(g, id)
}

// Eval implements Kernel via the plan's exact per-pivot tally.
func (k PlanKernel) Eval(g *temporal.Graph, delta temporal.Timestamp, id int, scratch *fast.Scratch, out []float64) {
	out[0] = float64(k.Plan.PivotCount(g, delta, id, scratch))
}
