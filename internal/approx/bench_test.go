package approx

import (
	"fmt"
	"math/rand"
	"testing"

	"hare/internal/temporal"
)

// benchHubGraph builds a hub-skewed graph: the shape the estimator exists
// for, where exact counters burn most of their time on a long tail of
// light pivots that sampling skips.
func benchHubGraph(r *rand.Rand, nodes, edges, hubEdges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges + hubEdges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	for i := 0; i < hubEdges; i++ {
		v := temporal.NodeID(1 + r.Intn(nodes-1))
		if r.Intn(2) == 0 {
			_ = b.AddEdge(0, v, r.Int63n(span))
		} else {
			_ = b.AddEdge(v, 0, r.Int63n(span))
		}
	}
	return b.Build()
}

// BenchmarkApproxStar4 measures the full estimator pipeline (plan build +
// stratified draws + finish) on the star family at the headline knobs.
func BenchmarkApproxStar4(b *testing.B) {
	r := rand.New(rand.NewSource(91))
	g := benchHubGraph(r, 400, 30_000, 8_000, 200_000)
	b.ResetTimer()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Star4(g, 5_000, Options{Epsilon: 0.05, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApproxPath4 measures the path-family estimator; the pinned CI
// run pairs it with the exact BenchmarkCountPath4 in internal/higher so
// the regression fence tracks both sides of the speedup.
func BenchmarkApproxPath4(b *testing.B) {
	r := rand.New(rand.NewSource(92))
	g := benchHubGraph(r, 400, 12_000, 3_000, 200_000)
	b.ResetTimer()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Path4(g, 2_000, Options{Epsilon: 0.05, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApproxPlan isolates plan construction (weights, radix ranking,
// stratification, apportionment) — the estimator's fixed overhead, which
// must stay O(domain) and small next to the draws it schedules.
func BenchmarkApproxPlan(b *testing.B) {
	r := rand.New(rand.NewSource(93))
	g := benchHubGraph(r, 400, 60_000, 15_000, 200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(g, PathKernel{}, Options{Epsilon: 0.05, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
