// Package higher implements the paper's stated future-work direction:
// counting higher-order (more-node) temporal motifs "by expanding the number
// of center nodes and slightly adapting the structure of the counters"
// (paper §VI).
//
// The first step beyond the 36-motif grid is the 4-node, 3-edge δ-temporal
// star: a center node with three edges to three *distinct* neighbors inside
// the window — exactly the triples the 3-node algorithms discard. Because
// every ordered triple of center-incident edges is either a pair pattern
// (one distinct neighbor), a 3-node star (two), or a 4-node star (three),
// the 4-node counts follow from one extra aggregate counter by
// complementing the counters FAST-Star already maintains:
//
//	Star4[d1,d2,d3] = All[d1,d2,d3] − Σ_type Star[type,d1,d2,d3] − Pair[d1,d2,d3]
//
// where All counts every center-incident ordered triple within δ by
// direction pattern (a 2-class sliding window, O(d) per center). The result
// is exact, runs in the same asymptotics as FAST-Star, and — like FAST — is
// embarrassingly parallel over centers (each 4-node star has a unique
// center).
package higher

import (
	"fmt"

	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Star4Counter counts 4-node, 3-edge star motifs by the direction pattern
// (d1,d2,d3) of the chronologically ordered edges relative to the center:
// 8 non-isomorphic motifs (the three leaves are interchangeable, so the
// direction pattern is a complete invariant).
type Star4Counter [8]uint64

// At returns the count for a direction pattern.
func (c *Star4Counter) At(d1, d2, d3 motif.Dir) uint64 {
	return c[motif.PairIndex(d1, d2, d3)]
}

// Add accumulates another counter.
func (c *Star4Counter) Add(o *Star4Counter) {
	for i := range c {
		c[i] += o[i]
	}
}

// Total returns the number of 4-node star instances.
func (c *Star4Counter) Total() uint64 {
	var s uint64
	for _, v := range c {
		s += v
	}
	return s
}

// String lists the 8 pattern counts in the paper's in/o notation.
func (c *Star4Counter) String() string {
	s := ""
	for i, v := range c {
		d1, d2, d3 := motif.PairDirs(i)
		s += fmt.Sprintf("S4[%s,%s,%s]=%d ", d1, d2, d3, v)
	}
	return s
}

// CountNode counts the 4-node stars centered at u, also returning the
// intermediate 3-node counters it derives them from (useful when the caller
// wants the full 2-/3-/4-node profile of one node in a single pass).
func CountNode(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp,
	scratch *fast.Scratch) (Star4Counter, motif.Counts) {
	var all [8]uint64
	countAllTriples(g.Seq(u), delta, &all)
	counts := motif.Counts{TriMultiplicity: 1}
	fast.CountStarPairNode(g, u, delta, &counts, scratch)
	var s4 Star4Counter
	for i := range s4 {
		d1, d2, d3 := motif.PairDirs(i)
		v := all[i]
		v -= counts.Star.At(motif.StarI, d1, d2, d3)
		v -= counts.Star.At(motif.StarII, d1, d2, d3)
		v -= counts.Star.At(motif.StarIII, d1, d2, d3)
		v -= counts.Pair.At(d1, d2, d3)
		s4[i] = v
	}
	return s4, counts
}

// Count counts all 4-node, 3-edge star motifs in the graph. Each instance
// has a unique center, so the per-center counts sum without correction.
func Count(g *temporal.Graph, delta temporal.Timestamp) Star4Counter {
	var total Star4Counter
	scratch := fast.NewScratch()
	for u := 0; u < g.NumNodes(); u++ {
		s4, _ := CountNode(g, temporal.NodeID(u), delta, scratch)
		total.Add(&s4)
	}
	return total
}

// countAllTriples tallies every ordered triple (i<j<k, t_k − t_i ≤ δ) of one
// center's sequence by direction pattern, with the push/pop sliding window
// (cf. Paranjape's general counter, specialised to two classes and inlined
// for the counter-adaptation the paper's future-work section sketches).
func countAllTriples(seq temporal.Seq, delta temporal.Timestamp, out *[8]uint64) {
	n := seq.Len()
	if n < 3 {
		return
	}
	times, outs := seq.Time, seq.Out
	var c1 [2]uint64
	var c2 [4]uint64
	start := 0
	for k := 0; k < n; k++ {
		for times[start] < times[k]-delta {
			x := int(motif.DirOf(outs[start]))
			c1[x]--
			c2[x<<1|0] -= c1[0]
			c2[x<<1|1] -= c1[1]
			start++
		}
		z := int(motif.DirOf(outs[k]))
		for xy := 0; xy < 4; xy++ {
			out[xy<<1|z] += c2[xy]
		}
		c2[0<<1|z] += c1[0]
		c2[1<<1|z] += c1[1]
		c1[z]++
	}
}
