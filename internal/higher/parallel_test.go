package higher

import (
	"fmt"
	"math/rand"
	"testing"

	"hare/internal/temporal"
)

// hubGraph plants a handful of very-high-degree centers on a random
// background so the heavy (intra-center / heavy-middle) stages actually run.
func hubGraph(r *rand.Rand, nodes, edges, hubEdges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges + hubEdges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	for i := 0; i < hubEdges; i++ {
		v := temporal.NodeID(1 + r.Intn(nodes-1))
		if r.Intn(2) == 0 {
			_ = b.AddEdge(0, v, r.Int63n(span))
		} else {
			_ = b.AddEdge(v, 0, r.Int63n(span))
		}
	}
	return b.Build()
}

// The parallel star counter must be bit-identical to the sequential
// reference for every scheduling regime: auto threshold, everything-heavy,
// heavy stage disabled, workers beyond the center count.
func TestCountStar4MatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 12; trial++ {
		g := hubGraph(r, 4+r.Intn(12), 40+r.Intn(150), 60+r.Intn(60), 1+int64(r.Intn(40)))
		delta := int64(1 + r.Intn(25))
		want := Count(g, delta)
		for _, opts := range []Options{
			{Workers: 4},
			{Workers: 4, DegreeThreshold: 1, ChunkSize: 3}, // all active centers heavy
			{Workers: 4, DegreeThreshold: -1},              // heavy stage disabled
			{Workers: 32},
		} {
			got := CountStar4(g, delta, opts)
			if got != want {
				t.Fatalf("trial %d opts %+v:\n got %s\nwant %s", trial, opts, &got, &want)
			}
		}
		if got := CountStar4(g, delta, Options{Workers: 1}); got != want {
			t.Fatalf("trial %d: workers=1 path diverged", trial)
		}
	}
}

// Same contract for the path counter across its scheduling regimes.
func TestCountPath4MatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for trial := 0; trial < 10; trial++ {
		g := hubGraph(r, 4+r.Intn(10), 30+r.Intn(120), 50+r.Intn(50), 1+int64(r.Intn(30)))
		delta := int64(1 + r.Intn(20))
		want := CountPaths(g, delta)
		for _, opts := range []Options{
			{Workers: 4},
			{Workers: 4, DegreeThreshold: 1, ChunkSize: 5}, // every middle edge heavy
			{Workers: 4, DegreeThreshold: -1},
			{Workers: 1},
		} {
			got := CountPath4(g, delta, opts)
			if got != want {
				t.Fatalf("trial %d opts %+v: parallel paths diverged", trial, opts)
			}
		}
	}
}

// Any partition of [0, n) by last-edge index must sum to the full
// all-triples counter — the invariant the intra-center split rests on.
func TestCountAllTriplesRangePartition(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		g := hubGraph(r, 3+r.Intn(5), 20+r.Intn(80), 0, 1+int64(r.Intn(10)))
		delta := int64(r.Intn(8))
		for u := 0; u < g.NumNodes(); u++ {
			seq := g.Seq(temporal.NodeID(u))
			var want [8]uint64
			countAllTriples(seq, delta, &want)
			// Random 3-way split.
			n := seq.Len()
			a, b := 0, 0
			if n > 0 {
				a, b = r.Intn(n+1), r.Intn(n+1)
			}
			if a > b {
				a, b = b, a
			}
			var got [8]uint64
			countAllTriplesRange(seq, delta, &got, 0, a)
			countAllTriplesRange(seq, delta, &got, a, b)
			countAllTriplesRange(seq, delta, &got, b, n)
			if got != want {
				t.Fatalf("trial %d node %d split (%d,%d,%d): got %v want %v",
					trial, u, a, b, n, got, want)
			}
		}
	}
}

// Centers with fewer than three incident edges cannot host a 4-node star
// and must be skipped, not scheduled.
func TestCountStar4SkipsLowDegreeCenters(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 2, To: 0, Time: 2},
		{From: 0, To: 3, Time: 3},
		{From: 5, To: 6, Time: 4}, // degree-1 bystanders
	})
	got := CountStar4(g, 10, Options{Workers: 4})
	if want := Count(g, 10); got != want {
		t.Fatalf("got %s want %s", &got, &want)
	}
	if got.Total() != 1 {
		t.Fatalf("total = %d, want 1", got.Total())
	}
}

func TestOptionsDefaults(t *testing.T) {
	if (Options{}).workers() < 1 {
		t.Fatal("zero Options must resolve to >= 1 worker")
	}
	if (Options{Workers: 3}).workers() != 3 {
		t.Fatal("explicit workers ignored")
	}
	if (Options{}).chunk() != 64 || (Options{ChunkSize: 7}).chunk() != 7 {
		t.Fatal("chunk defaults wrong")
	}
	// EffectiveWorkers is the exported resolution callers sizing
	// per-worker accumulators for ForEdgesRange rely on — it must agree
	// with the scheduler's own.
	if (Options{Workers: 3}).EffectiveWorkers() != 3 || (Options{}).EffectiveWorkers() != (Options{}).workers() {
		t.Fatal("EffectiveWorkers diverges from the scheduler's resolution")
	}
	g := temporal.FromEdges([]temporal.Edge{{From: 0, To: 1, Time: 0}})
	if effThrd(g, Options{DegreeThreshold: 5}) != 5 {
		t.Fatal("explicit threshold ignored")
	}
	if effThrd(g, Options{}) != 0 {
		t.Fatal("tiny graph should have no heavy stage")
	}
}

func BenchmarkCountStar4(b *testing.B) {
	r := rand.New(rand.NewSource(91))
	g := hubGraph(r, 400, 30_000, 8_000, 200_000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CountStar4(g, 5_000, Options{Workers: workers})
			}
		})
	}
}

func BenchmarkCountPath4(b *testing.B) {
	r := rand.New(rand.NewSource(92))
	g := hubGraph(r, 400, 12_000, 3_000, 200_000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CountPath4(g, 2_000, Options{Workers: workers})
			}
		})
	}
}

// Range counters are the shard workers' unit of work: any partition of the
// node IDs (stars) or middle-edge IDs (paths) must sum — partial counter by
// partial counter — to the full count, at every scheduling regime, and
// out-of-bounds ranges must clamp rather than panic.
func TestCountRangePartitionsSumToFull(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	for trial := 0; trial < 8; trial++ {
		g := hubGraph(r, 4+r.Intn(10), 40+r.Intn(120), 50+r.Intn(50), 1+int64(r.Intn(30)))
		delta := temporal.Timestamp(1 + r.Intn(25))
		for _, workers := range []int{1, 3} {
			opts := Options{Workers: workers}
			wantS := CountStar4(g, delta, opts)
			wantP := CountPath4(g, delta, opts)
			cut := func(n int) []int {
				cuts := []int{0}
				for pos := 0; pos < n; {
					pos += 1 + r.Intn(n/2+1)
					if pos > n {
						pos = n
					}
					cuts = append(cuts, pos)
				}
				if cuts[len(cuts)-1] != n {
					cuts = append(cuts, n)
				}
				return cuts
			}
			var gotS Star4Counter
			for cuts, i := cut(g.NumNodes()), 0; i+1 < len(cuts); i++ {
				part := CountStar4Range(g, delta, opts, cuts[i], cuts[i+1])
				gotS.Add(&part)
			}
			if gotS != wantS {
				t.Fatalf("trial %d workers %d: star4 partition sum %v != full %v", trial, workers, gotS, wantS)
			}
			var gotP PathCounter
			for cuts, i := cut(g.NumEdges()), 0; i+1 < len(cuts); i++ {
				part := CountPath4Range(g, delta, opts, cuts[i], cuts[i+1])
				gotP.Add(&part)
			}
			if gotP != wantP {
				t.Fatalf("trial %d workers %d: path4 partition sum differs from full", trial, workers)
			}
		}
	}
	// Clamping: negative lo, overlong hi, and empty/inverted ranges.
	g := hubGraph(r, 8, 60, 40, 20)
	if got, want := CountStar4Range(g, 10, Options{Workers: 1}, -5, g.NumNodes()+7), CountStar4(g, 10, Options{Workers: 1}); got != want {
		t.Errorf("clamped star4 range differs from full count")
	}
	if got := CountStar4Range(g, 10, Options{}, 3, 3); got.Total() != 0 {
		t.Errorf("empty star4 range counted %d", got.Total())
	}
	if got := CountPath4Range(g, 10, Options{}, 5, 2); got.Total() != 0 {
		t.Errorf("inverted path4 range counted %d", got.Total())
	}
	if got, want := CountPath4Range(g, 10, Options{Workers: 1}, -1, g.NumEdges()+3), CountPaths(g, 10); got != want {
		t.Errorf("clamped path4 range differs from full count")
	}
}
