package higher

import (
	"fmt"

	"hare/internal/temporal"
)

// 4-node, 3-edge δ-temporal paths complete the 4-node 3-edge family next to
// the stars: edges a–b, b–c, c–d over four distinct nodes. Every instance
// has a unique *structural middle* edge (the one sharing a node with both
// others), which anchors the counting loop; the temporal order of the three
// edges and their directions along the a→b→c→d traversal define the motif.
//
// Taxonomy: 6 temporal permutations of (first-leg, middle, last-leg) × 2³
// directions = 48 raw patterns; path reversal (reading d,c,b,a) identifies
// them in pairs, leaving 24 non-isomorphic 4-node path motifs. With the 8
// stars this covers all 32 connected 4-node 3-edge δ-temporal motifs.

// PathLabel identifies one of the 24 non-isomorphic 4-node path motifs.
// The zero value is not a valid label; obtain labels from PathCounter or
// CanonicalPath.
type PathLabel uint8

// String renders the label as "P<perm><dirs>" where perm is the temporal
// role order (e.g. "fmg" = first-leg, middle, last-leg) and dirs are the
// traversal directions of the chronologically ordered edges ('>' forward,
// '<' backward along a→b→c→d).
func (l PathLabel) String() string {
	perm := pathPerms[l>>3]
	d := l & 7
	dirs := [3]byte{}
	for i := 0; i < 3; i++ {
		if d>>(2-i)&1 == 1 {
			dirs[i] = '>'
		} else {
			dirs[i] = '<'
		}
	}
	return fmt.Sprintf("P%s%s", perm, dirs)
}

// pathPerms[p] spells the temporal role order for permutation index p.
// Roles: f = leg a-b, m = middle b-c, g = leg c-d.
var pathPerms = [6]string{"fmg", "fgm", "mfg", "mgf", "gfm", "gmf"}

// permIndex maps the temporal ranks of (f, m, g) to a permutation index.
func permIndex(rankF, rankM, rankG int) uint8 {
	switch {
	case rankF == 0 && rankM == 1:
		return 0 // f m g
	case rankF == 0 && rankG == 1:
		return 1 // f g m
	case rankM == 0 && rankF == 1:
		return 2 // m f g
	case rankM == 0 && rankG == 1:
		return 3 // m g f
	case rankG == 0 && rankF == 1:
		return 4 // g f m
	default:
		return 5 // g m f
	}
}

// reversedPerm[p] is the permutation index after swapping the roles f and g.
var reversedPerm = [6]uint8{
	0: 5, // fmg -> gmf
	1: 4, // fgm -> gfm
	2: 3, // mfg -> mgf
	3: 2,
	4: 1,
	5: 0,
}

// CanonicalPath returns the canonical label for a raw pattern: the temporal
// ranks of the three roles and the traversal direction of each role
// (true = forward along a→b→c→d). The canonical form is the lexicographic
// minimum of the pattern and its path reversal.
func CanonicalPath(rankF, rankM, rankG int, fwdF, fwdM, fwdG bool) PathLabel {
	enc := encodePath(permIndex(rankF, rankM, rankG), fwdF, fwdM, fwdG)
	// Reversal: roles f and g swap, every direction flips.
	rev := encodePath(reversedPerm[permIndex(rankF, rankM, rankG)], !fwdG, !fwdM, !fwdF)
	if rev < enc {
		enc = rev
	}
	return enc
}

// encodePath packs a permutation index and the *chronologically ordered*
// directions into a label. Directions arrive per role; reorder them by rank
// first.
func encodePath(perm uint8, fwdF, fwdM, fwdG bool) PathLabel {
	// Roles in temporal order for this permutation.
	order := pathPerms[perm]
	var bits uint8
	for i := 0; i < 3; i++ {
		var fwd bool
		switch order[i] {
		case 'f':
			fwd = fwdF
		case 'm':
			fwd = fwdM
		default:
			fwd = fwdG
		}
		if fwd {
			bits |= 1 << (2 - i)
		}
	}
	return PathLabel(perm<<3 | bits)
}

// PathCounter holds counts for the 24 path motifs, indexed by canonical
// label (48 slots, only canonical ones populated).
type PathCounter [48]uint64

// At returns the count for a label.
func (c *PathCounter) At(l PathLabel) uint64 { return c[l] }

// Add accumulates another counter.
func (c *PathCounter) Add(o *PathCounter) {
	for i := range c {
		c[i] += o[i]
	}
}

// Total returns the number of path instances.
func (c *PathCounter) Total() uint64 {
	var s uint64
	for _, v := range c {
		s += v
	}
	return s
}

// Labels returns the populated labels with counts, in label order.
func (c *PathCounter) Labels() []struct {
	Label PathLabel
	Count uint64
} {
	var out []struct {
		Label PathLabel
		Count uint64
	}
	for i, v := range c {
		if v > 0 {
			out = append(out, struct {
				Label PathLabel
				Count uint64
			}{PathLabel(i), v})
		}
	}
	return out
}

// CountPaths exactly counts all 4-node, 3-edge path motifs. For every edge
// in the role of the structural middle (b–c), the legs are drawn from the
// δ-neighbourhoods of b and c; cost is O(Σ_m d^δ(b)·d^δ(c)), so it is
// pricier than the 3-node algorithms — it exists to complete the
// higher-order family, per the paper's §VI.
func CountPaths(g *temporal.Graph, delta temporal.Timestamp) PathCounter {
	var out PathCounter
	for id := 0; id < g.NumEdges(); id++ {
		countPathsMiddle(g, temporal.EdgeID(id), delta, &out)
	}
	return out
}

// CountPathMiddle adds to out every path instance whose structural middle
// is the given edge — the same per-edge unit CountPath4Range schedules,
// exposed so samplers (internal/approx) can evaluate a single pivot without
// paying a full range dispatch per draw.
func CountPathMiddle(g *temporal.Graph, mid temporal.EdgeID, delta temporal.Timestamp, out *PathCounter) {
	countPathsMiddle(g, mid, delta, out)
}

// countPathsMiddle tallies every path instance whose structural middle is
// the given edge. Each instance has a unique middle, so per-edge tallies
// sum without correction — the unit of work for the parallel CountPath4.
func countPathsMiddle(g *temporal.Graph, mid temporal.EdgeID, delta temporal.Timestamp, out *PathCounter) {
	b, c := g.Src()[mid], g.Dst()[mid]
	mt := g.Times()[mid]
	fw := windowAround(g.Seq(b), mt, delta)
	gw := windowAround(g.Seq(c), mt, delta)
	for fi := 0; fi < fw.Len(); fi++ {
		fID, fOther := fw.ID[fi], fw.Other[fi]
		if fID == mid || fOther == c {
			continue // multi-edge on the middle pair: not a path
		}
		fTime, fOut := fw.Time[fi], fw.Out[fi]
		for gi := 0; gi < gw.Len(); gi++ {
			gID, gOther := gw.ID[gi], gw.Other[gi]
			if gID == mid || gOther == b || gOther == fOther {
				continue // triangle or repeated node: not a path
			}
			if span3(fTime, mt, gw.Time[gi]) > delta {
				continue
			}
			// Temporal ranks by EdgeID (total order).
			rankF, rankM, rankG := ranks(fID, mid, gID)
			// Directions along a→b→c→d: f forward means a→b, i.e. f
			// points *into* b; m forward means b→c (always true for
			// the stored orientation); g forward means c→d, i.e. g
			// points *out of* c.
			out[CanonicalPath(rankF, rankM, rankG, !fOut, true, gw.Out[gi])]++
		}
	}
}

// windowAround returns the half-edges with |t − center| ≤ δ.
func windowAround(seq temporal.Seq, center temporal.Timestamp, delta temporal.Timestamp) temporal.Seq {
	start := seq.LowerBoundTime(center - delta)
	end := seq.UpperBoundTime(center + delta)
	return seq.Slice(start, end)
}

func span3(a, b, c temporal.Timestamp) temporal.Timestamp {
	min, max := a, a
	if b < min {
		min = b
	}
	if b > max {
		max = b
	}
	if c < min {
		min = c
	}
	if c > max {
		max = c
	}
	return max - min
}

func ranks(idF, idM, idG temporal.EdgeID) (rf, rm, rg int) {
	if idF > idM {
		rf++
	}
	if idF > idG {
		rf++
	}
	if idM > idF {
		rm++
	}
	if idM > idG {
		rm++
	}
	if idG > idF {
		rg++
	}
	if idG > idM {
		rg++
	}
	return
}

// NumPathMotifs is the number of non-isomorphic 4-node 3-edge path motifs.
const NumPathMotifs = 24

// AllPathLabels enumerates the canonical path labels.
func AllPathLabels() []PathLabel {
	seen := map[PathLabel]bool{}
	var out []PathLabel
	for perm := uint8(0); perm < 6; perm++ {
		for bits := uint8(0); bits < 8; bits++ {
			raw := PathLabel(perm<<3 | bits)
			canon := canonicalOf(raw)
			if !seen[canon] {
				seen[canon] = true
				out = append(out, canon)
			}
		}
	}
	return out
}

// canonicalOf canonicalises a raw encoded pattern.
func canonicalOf(raw PathLabel) PathLabel {
	perm := uint8(raw) >> 3
	bits := uint8(raw) & 7
	// Decode chronological dirs back to per-role dirs.
	order := pathPerms[perm]
	var fwdF, fwdM, fwdG bool
	for i := 0; i < 3; i++ {
		fwd := bits>>(2-i)&1 == 1
		switch order[i] {
		case 'f':
			fwdF = fwd
		case 'm':
			fwdM = fwd
		default:
			fwdG = fwd
		}
	}
	rev := encodePath(reversedPerm[perm], !fwdG, !fwdM, !fwdF)
	if rev < raw {
		return rev
	}
	return raw
}
