package higher

import (
	"math/rand"
	"testing"

	"hare/internal/temporal"
)

// brutePaths enumerates 4-node path instances directly from ordered edge
// triples, classifying from first principles (incidence analysis), sharing
// only the canonical-label definition with the counting algorithm.
func brutePaths(g *temporal.Graph, delta temporal.Timestamp) PathCounter {
	var out PathCounter
	edges := g.Edges()
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			if edges[j].Time-edges[i].Time > delta {
				break
			}
			for k := j + 1; k < len(edges); k++ {
				if edges[k].Time-edges[i].Time > delta {
					break
				}
				trio := [3]temporal.Edge{edges[i], edges[j], edges[k]}
				ids := [3]temporal.EdgeID{temporal.EdgeID(i), temporal.EdgeID(j), temporal.EdgeID(k)}
				if l, ok := classifyPath(trio, ids); ok {
					out[l]++
				}
			}
		}
	}
	return out
}

// classifyPath decides whether three edges form a 4-node path and returns
// the canonical label.
func classifyPath(es [3]temporal.Edge, ids [3]temporal.EdgeID) (PathLabel, bool) {
	nodes := map[temporal.NodeID]int{}
	for _, e := range es {
		if e.From == e.To {
			return 0, false
		}
		nodes[e.From]++
		nodes[e.To]++
	}
	if len(nodes) != 4 {
		return 0, false
	}
	// Find the structural middle: the edge sharing a node with both others.
	shares := func(a, b temporal.Edge) bool {
		return a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To
	}
	midIdx := -1
	for m := 0; m < 3; m++ {
		o1, o2 := (m+1)%3, (m+2)%3
		if shares(es[m], es[o1]) && shares(es[m], es[o2]) && !shares(es[o1], es[o2]) {
			if midIdx != -1 {
				return 0, false // ambiguous: not a simple path (e.g. star)
			}
			midIdx = m
		}
	}
	if midIdx == -1 {
		return 0, false
	}
	m := es[midIdx]
	b, c := m.From, m.To // traversal a -> b -> c -> d with m stored as b->c
	var fIdx, gIdx int
	o1, o2 := (midIdx+1)%3, (midIdx+2)%3
	if es[o1].From == b || es[o1].To == b {
		fIdx, gIdx = o1, o2
	} else {
		fIdx, gIdx = o2, o1
	}
	f, gE := es[fIdx], es[gIdx]
	if !(f.From == b || f.To == b) || !(gE.From == c || gE.To == c) {
		return 0, false
	}
	rank := func(idx int) int {
		r := 0
		for _, other := range []int{0, 1, 2} {
			if other != idx && ids[other] < ids[idx] {
				r++
			}
		}
		return r
	}
	fwdF := f.To == b    // a -> b
	fwdG := gE.From == c // c -> d
	return CanonicalPath(rank(fIdx), rank(midIdx), rank(gIdx), fwdF, true, fwdG), true
}

func TestPathTaxonomy(t *testing.T) {
	labels := AllPathLabels()
	if len(labels) != NumPathMotifs {
		t.Fatalf("canonical labels = %d, want %d", len(labels), NumPathMotifs)
	}
	seen := map[string]bool{}
	for _, l := range labels {
		s := l.String()
		if seen[s] {
			t.Fatalf("duplicate label string %q", s)
		}
		seen[s] = true
		if canonicalOf(l) != l {
			t.Fatalf("label %v not a fixed point of canonicalisation", l)
		}
	}
}

func TestCanonicalPathReversalInvariance(t *testing.T) {
	// A pattern and its reversal must share a label.
	for rf := 0; rf < 3; rf++ {
		for rm := 0; rm < 3; rm++ {
			for rg := 0; rg < 3; rg++ {
				if rf == rm || rm == rg || rf == rg {
					continue
				}
				for bits := 0; bits < 8; bits++ {
					fF, fM, fG := bits&4 != 0, bits&2 != 0, bits&1 != 0
					a := CanonicalPath(rf, rm, rg, fF, fM, fG)
					b := CanonicalPath(rg, rm, rf, !fG, !fM, !fF)
					if a != b {
						t.Fatalf("reversal broke canonical form: %v vs %v", a, b)
					}
				}
			}
		}
	}
}

func TestKnownPath(t *testing.T) {
	// a=0 -> b=1 -> c=2 -> d=3 strictly in time order, all forward.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 1, To: 2, Time: 2},
		{From: 2, To: 3, Time: 3},
	})
	c := CountPaths(g, 10)
	if c.Total() != 1 {
		t.Fatalf("total = %d, want 1", c.Total())
	}
	want := CanonicalPath(0, 1, 2, true, true, true)
	if c.At(want) != 1 {
		t.Fatalf("expected label %v missing", want)
	}
	if got := CountPaths(g, 1); got.Total() != 0 {
		t.Fatalf("δ=1 counted %d", got.Total())
	}
}

func TestPathExcludesOtherShapes(t *testing.T) {
	// Star (three distinct leaves) must not count as a path.
	star := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 0, To: 2, Time: 2}, {From: 0, To: 3, Time: 3},
	})
	if c := CountPaths(star, 10); c.Total() != 0 {
		t.Fatalf("star counted as path: %d", c.Total())
	}
	// Triangle must not count.
	tri := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	if c := CountPaths(tri, 10); c.Total() != 0 {
		t.Fatalf("triangle counted as path: %d", c.Total())
	}
}

func TestPathsMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 35; trial++ {
		g := randomGraph(r, 4+r.Intn(10), 1+r.Intn(120), 1+int64(r.Intn(40)))
		delta := int64(r.Intn(25))
		want := brutePaths(g, delta)
		got := CountPaths(g, delta)
		if got != want {
			t.Fatalf("trial %d δ=%d: got total %d want %d", trial, delta, got.Total(), want.Total())
		}
	}
}

func TestPathsTieHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 5+r.Intn(5), 1+r.Intn(80), 1+int64(r.Intn(3)))
		delta := int64(r.Intn(4))
		want := brutePaths(g, delta)
		got := CountPaths(g, delta)
		if got != want {
			t.Fatalf("trial %d: got %d want %d", trial, got.Total(), want.Total())
		}
	}
}

func TestPathCounterHelpers(t *testing.T) {
	var a, b PathCounter
	l := AllPathLabels()[0]
	a[l] = 2
	b[l] = 3
	a.Add(&b)
	if a.At(l) != 5 || a.Total() != 5 {
		t.Fatal("Add/At/Total wrong")
	}
	ls := a.Labels()
	if len(ls) != 1 || ls[0].Label != l || ls[0].Count != 5 {
		t.Fatalf("Labels = %v", ls)
	}
}
