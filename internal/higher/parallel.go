package higher

import (
	"runtime"

	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Options configures the parallel higher-order counters. The zero value
// means: one worker per CPU, automatic degree threshold (the HARE top-20
// heuristic), default chunking. Both counters are exact at any setting —
// the options only steer scheduling.
type Options struct {
	// Workers is the number of goroutines (<= 0 selects GOMAXPROCS;
	// 1 runs the sequential reference loops).
	Workers int
	// DegreeThreshold splits light from heavy work the same way the HARE
	// engine does: centers (stars) or middle-edge endpoints (paths) with
	// temporal degree strictly greater are scheduled with finer-grained
	// parallelism. 0 selects the automatic top-20 heuristic; negative
	// disables the heavy stage.
	DegreeThreshold int
	// ChunkSize is the number of light work items per dynamic work unit
	// (default 64).
	ChunkSize int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveWorkers resolves Workers to the goroutine count a run actually
// uses (<= 0 selects GOMAXPROCS). Callers sizing per-worker accumulators
// for ForEdgesRange need the same resolution the scheduler applies.
func (o Options) EffectiveWorkers() int { return o.workers() }

func (o Options) chunk() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return 64
}

// effThrd resolves the degree threshold like the HARE engine: the explicit
// value when set, the automatic top-20 heuristic when 0. A non-positive
// result means "no heavy stage" (tiny graph, or explicitly disabled).
func effThrd(g *temporal.Graph, opts Options) int {
	if opts.DegreeThreshold != 0 {
		return opts.DegreeThreshold
	}
	return temporal.TopKDegreeThreshold(g, 20)
}

// CountStar4 counts the 4-node, 3-edge star motifs with the engine's
// scheduling machinery: light centers are pulled in dynamic chunks, heavy
// centers (degree > thrd) are processed one at a time with both counter
// families range-split across workers and the complement applied after the
// partials merge. Counts are bit-identical to the sequential Count at any
// worker count (per-center tallies are exact integer sums).
func CountStar4(g *temporal.Graph, delta temporal.Timestamp, opts Options) Star4Counter {
	return CountStar4Range(g, delta, opts, 0, g.NumNodes())
}

// CountStar4Range counts the 4-node stars whose center node lies in the
// half-open ID range [lo, hi) (clamped to [0, NumNodes)). Every 4-node star
// has a unique center, so any partition of the node IDs yields partial
// counters that sum — in any order, the cells are exact uint64 tallies — to
// CountStar4's full counter: the per-shard work unit of the scatter/gather
// serving path (internal/shard).
func CountStar4Range(g *temporal.Graph, delta temporal.Timestamp, opts Options, lo, hi int) Star4Counter {
	if lo < 0 {
		lo = 0
	}
	if hi > g.NumNodes() {
		hi = g.NumNodes()
	}
	var total Star4Counter
	if lo >= hi {
		return total
	}
	workers := opts.workers()
	if workers == 1 {
		scratch := fast.NewScratch()
		for u := lo; u < hi; u++ {
			s4, _ := CountNode(g, temporal.NodeID(u), delta, scratch)
			total.Add(&s4)
		}
		return total
	}
	thrd := effThrd(g, opts)
	var light, heavy []temporal.NodeID
	for u := lo; u < hi; u++ {
		d := g.Degree(temporal.NodeID(u))
		if d < 3 {
			continue // a 4-node star needs three incident edges
		}
		if thrd > 0 && d > thrd {
			heavy = append(heavy, temporal.NodeID(u))
		} else {
			light = append(light, temporal.NodeID(u))
		}
	}
	scratch := make([]*fast.Scratch, workers)
	perW := make([]Star4Counter, workers)
	for w := range scratch {
		scratch[w] = fast.NewScratch()
		scratch[w].Grow(g.NumNodes())
	}

	// Stage 1: inter-center parallelism over light centers.
	engine.Dispatch(workers, opts.chunk(), len(light), func(w, a, b int) {
		for _, u := range light[a:b] {
			s4, _ := CountNode(g, u, delta, scratch[w])
			perW[w].Add(&s4)
		}
	})
	for w := range perW {
		total.Add(&perW[w])
	}

	// Stage 2: intra-center parallelism, one heavy center at a time. The
	// all-triples counter splits by last-edge index, FAST-Star by first-edge
	// index; both partitions are exact, so the per-center sums equal the
	// sequential counters and the complement identity applies unchanged.
	allPart := make([][8]uint64, workers)
	countsPart := make([]motif.Counts, workers)
	for _, u := range heavy {
		su := g.Seq(u)
		for w := 0; w < workers; w++ {
			allPart[w] = [8]uint64{}
			countsPart[w] = motif.Counts{TriMultiplicity: 1}
		}
		engine.Dispatch(workers, su.Len()/(workers*8)+1, su.Len(), func(w, a, b int) {
			countAllTriplesRange(su, delta, &allPart[w], a, b)
			fast.CountStarPairRange(su, delta, &countsPart[w], scratch[w], a, b)
		})
		var all [8]uint64
		counts := motif.Counts{TriMultiplicity: 1}
		for w := 0; w < workers; w++ {
			for i := range all {
				all[i] += allPart[w][i]
			}
			counts.Add(&countsPart[w])
		}
		for i := range all {
			d1, d2, d3 := motif.PairDirs(i)
			v := all[i]
			v -= counts.Star.At(motif.StarI, d1, d2, d3)
			v -= counts.Star.At(motif.StarII, d1, d2, d3)
			v -= counts.Star.At(motif.StarIII, d1, d2, d3)
			v -= counts.Pair.At(d1, d2, d3)
			total[i] += v
		}
	}
	return total
}

// countAllTriplesRange tallies the ordered triples whose *last* edge index
// k lies in [lo, hi) — the range analogue of countAllTriples. The sliding
// window state at k = lo is reconstructed by replaying the in-window prefix
// (O(window) work), after which the loop proceeds exactly as the sequential
// one; a partition of [0, n) therefore sums to the full counter.
func countAllTriplesRange(seq temporal.Seq, delta temporal.Timestamp, out *[8]uint64, lo, hi int) {
	n := seq.Len()
	if n < 3 || lo >= hi {
		return
	}
	times, outs := seq.Time, seq.Out
	var c1 [2]uint64
	var c2 [4]uint64
	// Window start for k = lo, then replay the additions the sequential
	// loop would have accumulated for indices [start, lo).
	start := seq.LowerBoundTime(times[lo] - delta)
	for x := start; x < lo; x++ {
		z := int(motif.DirOf(outs[x]))
		c2[0<<1|z] += c1[0]
		c2[1<<1|z] += c1[1]
		c1[z]++
	}
	for k := lo; k < hi; k++ {
		for times[start] < times[k]-delta {
			x := int(motif.DirOf(outs[start]))
			c1[x]--
			c2[x<<1|0] -= c1[0]
			c2[x<<1|1] -= c1[1]
			start++
		}
		z := int(motif.DirOf(outs[k]))
		for xy := 0; xy < 4; xy++ {
			out[xy<<1|z] += c2[xy]
		}
		c2[0<<1|z] += c1[0]
		c2[1<<1|z] += c1[1]
		c1[z]++
	}
}

// CountPath4 counts the 4-node, 3-edge path motifs in parallel over middle
// edges. Middle edges with a heavy endpoint (degree > thrd) dominate the
// O(d(b)·d(c)) per-edge cost, so they are scheduled one edge per work unit
// after the chunked light edges — no worker inherits a contiguous block of
// hubs. Bit-identical to the sequential CountPaths at any worker count.
func CountPath4(g *temporal.Graph, delta temporal.Timestamp, opts Options) PathCounter {
	return CountPath4Range(g, delta, opts, 0, g.NumEdges())
}

// CountPath4Range counts the 4-node paths whose structural-middle edge ID
// lies in [lo, hi) (clamped to [0, NumEdges)). Every path instance has a
// unique middle edge, so partial counters over any partition of the edge
// IDs sum to CountPath4's full counter — the per-shard work unit of the
// scatter/gather serving path (internal/shard).
func CountPath4Range(g *temporal.Graph, delta temporal.Timestamp, opts Options, lo, hi int) PathCounter {
	var total PathCounter
	perW := make([]PathCounter, opts.workers())
	ForEdgesRange(g, opts, lo, hi, func(w int, id temporal.EdgeID) {
		countPathsMiddle(g, id, delta, &perW[w])
	})
	for w := range perW {
		total.Add(&perW[w])
	}
	return total
}

// ForEdgesRange schedules body exactly once per edge ID in [lo, hi)
// (clamped to [0, NumEdges)) with the two-stage machinery the path counter
// established: light edges are pulled in dynamic chunks, while edges with a
// heavy endpoint (degree > thrd) are scheduled one per work unit so no
// worker inherits a contiguous block of hubs. body runs concurrently with
// itself; the worker id indexes [0, opts.EffectiveWorkers()) so callers can
// accumulate into per-worker partials. With one worker, body runs on the
// caller's goroutine in ascending ID order. Exactly-once delivery is what
// keeps per-edge tallies bit-identical at any worker count — both
// CountPath4Range and the query compiler's edge-pivot plans
// (internal/query) schedule through this function.
func ForEdgesRange(g *temporal.Graph, opts Options, lo, hi int, body func(worker int, id temporal.EdgeID)) {
	if lo < 0 {
		lo = 0
	}
	if hi > g.NumEdges() {
		hi = g.NumEdges()
	}
	if lo >= hi {
		return
	}
	workers := opts.workers()
	if workers == 1 {
		for id := lo; id < hi; id++ {
			body(0, temporal.EdgeID(id))
		}
		return
	}
	thrd := effThrd(g, opts)
	src, dst := g.Src(), g.Dst()
	var light, heavy []temporal.EdgeID
	for id := lo; id < hi; id++ {
		if thrd > 0 && (g.Degree(src[id]) > thrd || g.Degree(dst[id]) > thrd) {
			heavy = append(heavy, temporal.EdgeID(id))
		} else {
			light = append(light, temporal.EdgeID(id))
		}
	}
	engine.Dispatch(workers, opts.chunk(), len(light), func(w, a, b int) {
		for _, id := range light[a:b] {
			body(w, id)
		}
	})
	engine.Dispatch(workers, 1, len(heavy), func(w, a, b int) {
		for _, id := range heavy[a:b] {
			body(w, id)
		}
	})
}
