package higher

import (
	"math/rand"
	"testing"

	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// bruteStar4 enumerates 4-node star instances directly: ordered edge triples
// within δ, all incident to a common center, with three distinct far
// endpoints.
func bruteStar4(g *temporal.Graph, delta temporal.Timestamp) Star4Counter {
	var out Star4Counter
	edges := g.Edges()
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			if edges[j].Time-edges[i].Time > delta {
				break
			}
			for k := j + 1; k < len(edges); k++ {
				if edges[k].Time-edges[i].Time > delta {
					break
				}
				e1, e2, e3 := edges[i], edges[j], edges[k]
				for _, u := range []temporal.NodeID{e1.From, e1.To} {
					if !incident(e2, u) || !incident(e3, u) {
						continue
					}
					o1, o2, o3 := other(e1, u), other(e2, u), other(e3, u)
					if o1 == o2 || o1 == o3 || o2 == o3 {
						continue
					}
					out[motif.PairIndex(dir(e1, u), dir(e2, u), dir(e3, u))]++
				}
			}
		}
	}
	return out
}

func incident(e temporal.Edge, u temporal.NodeID) bool { return e.From == u || e.To == u }

func other(e temporal.Edge, u temporal.NodeID) temporal.NodeID {
	if e.From == u {
		return e.To
	}
	return e.From
}

func dir(e temporal.Edge, u temporal.NodeID) motif.Dir {
	if e.From == u {
		return motif.Out
	}
	return motif.In
}

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func TestKnownStar4(t *testing.T) {
	// A center with one edge to each of three distinct leaves: one 4-node
	// star, pattern (o, in, o).
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 2, To: 0, Time: 2},
		{From: 0, To: 3, Time: 3},
	})
	c := Count(g, 10)
	if c.Total() != 1 {
		t.Fatalf("total = %d, want 1\n%s", c.Total(), &c)
	}
	if got := c.At(motif.Out, motif.In, motif.Out); got != 1 {
		t.Fatalf("S4[o,in,o] = %d, want 1", got)
	}
	// Outside the window: nothing.
	if c := Count(g, 1); c.Total() != 0 {
		t.Fatalf("δ=1 total = %d, want 0", c.Total())
	}
}

func TestThreeNodePatternsExcluded(t *testing.T) {
	// A 3-node star (two edges to the same leaf) and a pair must not appear.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 0, To: 1, Time: 2},
		{From: 0, To: 2, Time: 3},
	})
	if c := Count(g, 10); c.Total() != 0 {
		t.Fatalf("3-node pattern counted as 4-node star: %s", &c)
	}
}

func TestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 3+r.Intn(12), 1+r.Intn(150), 1+int64(r.Intn(40)))
		delta := int64(r.Intn(25))
		want := bruteStar4(g, delta)
		got := Count(g, delta)
		if got != want {
			t.Fatalf("trial %d δ=%d:\n got %s\nwant %s", trial, delta, &got, &want)
		}
	}
}

func TestTieHeavyMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 4+r.Intn(6), 1+r.Intn(120), 1+int64(r.Intn(4)))
		delta := int64(r.Intn(4))
		want := bruteStar4(g, delta)
		got := Count(g, delta)
		if got != want {
			t.Fatalf("trial %d: got %s want %s", trial, &got, &want)
		}
	}
}

// The decomposition identity: All = Pair + 3-node stars + 4-node stars, per
// direction pattern, per center.
func TestDecompositionIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	g := randomGraph(r, 10, 300, 60)
	delta := int64(20)
	scratch := fast.NewScratch()
	for u := 0; u < g.NumNodes(); u++ {
		var all [8]uint64
		countAllTriples(g.Seq(temporal.NodeID(u)), delta, &all)
		s4, counts := CountNode(g, temporal.NodeID(u), delta, scratch)
		for i := 0; i < 8; i++ {
			d1, d2, d3 := motif.PairDirs(i)
			sum := s4[i] + counts.Pair.At(d1, d2, d3) +
				counts.Star.At(motif.StarI, d1, d2, d3) +
				counts.Star.At(motif.StarII, d1, d2, d3) +
				counts.Star.At(motif.StarIII, d1, d2, d3)
			if sum != all[i] {
				t.Fatalf("center %d pattern %d: decomposition %d != all %d", u, i, sum, all[i])
			}
		}
	}
}

func TestCounterHelpers(t *testing.T) {
	var c Star4Counter
	c[motif.PairIndex(motif.In, motif.In, motif.Out)] = 3
	var o Star4Counter
	o[motif.PairIndex(motif.In, motif.In, motif.Out)] = 4
	c.Add(&o)
	if c.At(motif.In, motif.In, motif.Out) != 7 || c.Total() != 7 {
		t.Fatal("Add/At/Total wrong")
	}
	if s := c.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if c := Count(temporal.FromEdges(nil), 10); c.Total() != 0 {
		t.Fatal("empty graph counted")
	}
	g := temporal.FromEdges([]temporal.Edge{{From: 0, To: 1, Time: 0}, {From: 0, To: 2, Time: 1}})
	if c := Count(g, 10); c.Total() != 0 {
		t.Fatal("2-edge graph counted")
	}
}
