package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func withInfo(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := readBuildInfo
	readBuildInfo = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { readBuildInfo = orig })
}

func TestVersionNoBuildInfo(t *testing.T) {
	withInfo(t, nil, false)
	if got := Version(); got != "unknown" {
		t.Fatalf("Version() = %q, want unknown", got)
	}
}

func TestVersionDevelFallback(t *testing.T) {
	withInfo(t, &debug.BuildInfo{GoVersion: "go1.24.0"}, true)
	if got := Version(); got != "devel, go1.24.0" {
		t.Fatalf("Version() = %q", got)
	}
}

func TestVersionModuleAndVCS(t *testing.T) {
	withInfo(t, &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123456789abcdef01234567"},
			{Key: "vcs.time", Value: "2026-07-30T12:00:00Z"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	got := Version()
	for _, want := range []string{"v1.2.3", "rev 0123456789ab+dirty", "2026-07-30T12:00:00Z", "go1.24.0"} {
		if !strings.Contains(got, want) {
			t.Errorf("Version() = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "0123456789abc") {
		t.Errorf("revision not truncated to 12 chars: %q", got)
	}
}

func TestVersionDevelModuleUsesVCS(t *testing.T) {
	withInfo(t, &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "(devel)"},
		Settings:  []debug.BuildSetting{{Key: "vcs.revision", Value: "abc123"}},
	}, true)
	got := Version()
	if !strings.Contains(got, "rev abc123") || strings.Contains(got, "devel,") {
		t.Errorf("Version() = %q", got)
	}
}

// The real binary path: whatever the environment provides, Version never
// panics and never returns empty.
func TestVersionReal(t *testing.T) {
	if got := Version(); got == "" {
		t.Fatal("empty version")
	}
}
