// Package buildinfo derives a version string for the hare binaries from
// the build metadata the Go toolchain embeds (runtime/debug.ReadBuildInfo):
// module version when built as a versioned dependency, VCS revision and
// commit time when built from a checkout. Every command exposes it via
// -version and hared additionally reports it from /healthz.
package buildinfo

import (
	"runtime/debug"
	"strings"
)

// readBuildInfo is stubbed in tests to exercise the formatting paths.
var readBuildInfo = debug.ReadBuildInfo

// Version returns a single-line version string: the module version if it
// is a real release, then "rev <short-hash>[+dirty] (<commit time>)" when
// VCS metadata is present, and the toolchain that built the binary.
// Without any build info (unusual: tests of old toolchains) it returns
// "unknown".
func Version() string {
	bi, ok := readBuildInfo()
	if !ok {
		return "unknown"
	}
	var parts []string
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		parts = append(parts, v)
	}
	var rev, at, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		r := "rev " + rev + dirty
		if at != "" {
			r += " (" + at + ")"
		}
		parts = append(parts, r)
	}
	if len(parts) == 0 {
		parts = append(parts, "devel")
	}
	if bi.GoVersion != "" {
		parts = append(parts, bi.GoVersion)
	}
	return strings.Join(parts, ", ")
}
