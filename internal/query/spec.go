// Package query is the generalized temporal-motif query compiler: it turns
// a small declarative motif *spec* — an ordered, directed 3-edge pattern
// over at most four node variables — into a counting *plan* that runs over
// the columnar CSR core with the same worker/degree-threshold/chunking
// machinery as the hand-tuned counters (engine.Dispatch light/heavy
// scheduling), and the same exactness bar: plans are exact, bit-identical
// at any worker count, and range-splittable along their pivot for the
// scatter/gather tier.
//
// A spec names the paper's δ-temporal motif semantics directly (Paranjape
// et al., WSDM'17 Def. 1, as used throughout this repository): the i-th
// listed edge is the i-th edge in temporal (EdgeID) order, node variables
// bind injectively to distinct graph nodes, and the whole instance spans at
// most δ. The count of a spec is the number of (edge triple, variable
// assignment) pairs; because a connected spec in which every variable
// occurs has no order-preserving automorphisms, this equals the number of
// motif instances.
//
// Specs close ROADMAP item 4: star4 and path4 were each a hand-written PR
// through the hot path, while a new shape is now a query —
//
//	a->b; b->c; c->a     temporal 3-cycle (M26's cyclic closure)
//	a->b; a->c; a->d     4-node out-star, one of CountStar4's 8 cells
//	a->b; b->c; c->d     4-node forward path, one of CountPath4's 24 classes
//
// compiled, cached under a canonical key, served by /v1/query, and
// scattered across shard workers without touching the counting machinery.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// SpecEdges is the number of edges every spec has: like the rest of this
// repository, queries count 3-edge δ-temporal motifs (the paper's grid and
// its 4-node extensions are all 3-edge families).
const SpecEdges = 3

// MaxNodes bounds the node variables of a spec. With three edges a
// connected pattern has at most four distinct endpoints, which is also the
// largest family the counting tiers serve (4-node stars and paths).
const MaxNodes = 4

// Typed validation errors, matched with errors.Is. ParseSpec and
// ParseSpecJSON never return an untyped validation failure: every rejected
// spec wraps exactly one of these (syntax errors wrap ErrSyntax).
var (
	// ErrSyntax: the text or JSON form could not be parsed at all.
	ErrSyntax = errors.New("query: spec syntax error")
	// ErrEdgeCount: the spec does not have exactly SpecEdges edges.
	ErrEdgeCount = errors.New("query: spec must have exactly 3 edges")
	// ErrSelfLoop: some edge has the same variable at both ends (δ-temporal
	// motifs never contain self-loops; the graph builder drops them).
	ErrSelfLoop = errors.New("query: spec edge is a self-loop")
	// ErrTooManyNodes: the spec uses more than MaxNodes node variables.
	ErrTooManyNodes = errors.New("query: spec exceeds 4 node variables")
	// ErrDisconnected: the spec's edges do not form one connected pattern.
	ErrDisconnected = errors.New("query: spec is disconnected")
)

// SpecEdge is one directed edge of a spec, endpoints given as variable
// indices in [0, NumNodes).
type SpecEdge struct {
	Src, Dst int
}

// Spec is a validated, canonicalized motif spec. Obtain one from ParseSpec
// or ParseSpecJSON; the zero value is not valid. Two specs describe the
// same motif (differ only by variable renaming) exactly when their
// Canonical strings are equal — the property the serving tier's cache key
// rides on.
type Spec struct {
	edges [SpecEdges]SpecEdge
	nodes int
}

// NumNodes returns the number of node variables (2..4).
func (s *Spec) NumNodes() int { return s.nodes }

// Edges returns the ordered directed edges over variable indices; the i-th
// edge is the i-th in temporal order.
func (s *Spec) Edges() [SpecEdges]SpecEdge { return s.edges }

// varName renders variable index i in the canonical a..d alphabet.
func varName(i int) string { return string(rune('a' + i)) }

// Canonical returns the canonical text form: edges in temporal order,
// "src->dst" terms joined by "; ", variables named a..d in canonical
// order. Isomorphic specs (equal up to variable renaming) have equal
// canonical forms, and ParseSpec(s.Canonical()) reproduces s exactly.
func (s *Spec) Canonical() string {
	var b strings.Builder
	for i, e := range s.edges {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(varName(e.Src))
		b.WriteString("->")
		b.WriteString(varName(e.Dst))
	}
	return b.String()
}

// String returns the canonical text form.
func (s *Spec) String() string { return s.Canonical() }

// ParseSpec parses the compact text form: SpecEdges directed edge terms
// "x->y" (or the mirrored sugar "y<-x"), separated by ";" or ",".
// Variable names are letter/digit/underscore words; naming is free-form —
// the spec is canonicalized, so "hub->s1; hub->s2; hub->s3" and
// "a->b; a->c; a->d" are the same spec. Rejections carry typed errors
// (ErrSyntax, ErrEdgeCount, ErrSelfLoop, ErrTooManyNodes,
// ErrDisconnected).
func ParseSpec(text string) (*Spec, error) {
	var srcs, dsts []string
	for _, term := range splitTerms(text) {
		src, dst, err := parseTerm(term)
		if err != nil {
			return nil, err
		}
		srcs, dsts = append(srcs, src), append(dsts, dst)
	}
	return newSpec(srcs, dsts)
}

// splitTerms splits on ';' and ',' and drops blank fields (so a trailing
// separator is tolerated, but an interior empty term is caught by
// parseTerm's caller via the edge count).
func splitTerms(text string) []string {
	fields := strings.FieldsFunc(text, func(r rune) bool { return r == ';' || r == ',' })
	var out []string
	for _, f := range fields {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseTerm parses one "x->y" or "y<-x" edge term.
func parseTerm(term string) (src, dst string, err error) {
	if i := strings.Index(term, "->"); i >= 0 {
		src, dst = term[:i], term[i+2:]
	} else if i := strings.Index(term, "<-"); i >= 0 {
		dst, src = term[:i], term[i+2:]
	} else {
		return "", "", fmt.Errorf("%w: edge term %q has no \"->\"", ErrSyntax, term)
	}
	if src, err = parseVar(src); err != nil {
		return "", "", err
	}
	if dst, err = parseVar(dst); err != nil {
		return "", "", err
	}
	return src, dst, nil
}

// parseVar validates one variable name: a non-empty letter/digit/underscore
// word.
func parseVar(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("%w: empty variable name", ErrSyntax)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
		default:
			return "", fmt.Errorf("%w: variable %q contains %q", ErrSyntax, s, r)
		}
	}
	return s, nil
}

// specJSON is the JSON wire form of a spec: an ordered edge list with named
// variables, mirroring the text form term for term.
type specJSON struct {
	Edges []struct {
		Src string `json:"src"`
		Dst string `json:"dst"`
	} `json:"edges"`
}

// ParseSpecJSON parses the JSON form {"edges":[{"src":"a","dst":"b"},...]},
// with the same validation, canonicalization and typed errors as ParseSpec.
func ParseSpecJSON(data []byte) (*Spec, error) {
	var js specJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	var srcs, dsts []string
	for _, e := range js.Edges {
		src, err := parseVar(e.Src)
		if err != nil {
			return nil, err
		}
		dst, err := parseVar(e.Dst)
		if err != nil {
			return nil, err
		}
		srcs, dsts = append(srcs, src), append(dsts, dst)
	}
	return newSpec(srcs, dsts)
}

// MarshalJSON renders the canonical JSON form.
func (s *Spec) MarshalJSON() ([]byte, error) {
	var js specJSON
	for _, e := range s.edges {
		js.Edges = append(js.Edges, struct {
			Src string `json:"src"`
			Dst string `json:"dst"`
		}{varName(e.Src), varName(e.Dst)})
	}
	return json.Marshal(js)
}

// newSpec validates named edges and returns the canonicalized spec.
func newSpec(srcs, dsts []string) (*Spec, error) {
	if len(srcs) != SpecEdges {
		return nil, fmt.Errorf("%w (got %d)", ErrEdgeCount, len(srcs))
	}
	index := map[string]int{}
	lookup := func(name string) int {
		i, ok := index[name]
		if !ok {
			i = len(index)
			index[name] = i
		}
		return i
	}
	var s Spec
	for i := range srcs {
		if srcs[i] == dsts[i] {
			return nil, fmt.Errorf("%w: %q->%q", ErrSelfLoop, srcs[i], dsts[i])
		}
		s.edges[i] = SpecEdge{Src: lookup(srcs[i]), Dst: lookup(dsts[i])}
	}
	s.nodes = len(index)
	if s.nodes > MaxNodes {
		return nil, fmt.Errorf("%w (got %d)", ErrTooManyNodes, s.nodes)
	}
	if !s.connected() {
		return nil, ErrDisconnected
	}
	s.canonicalize()
	return &s, nil
}

// connected reports whether the spec's edges form one connected pattern
// over its variables (union-find over at most four elements).
func (s *Spec) connected() bool {
	var parent [MaxNodes]int
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range s.edges {
		parent[find(e.Src)] = find(e.Dst)
	}
	root := find(0)
	for v := 1; v < s.nodes; v++ {
		if find(v) != root {
			return false
		}
	}
	return true
}

// canonicalize relabels the variables to the lexicographically minimal
// encoding of the ordered edge list over all permutations of the variable
// indices (k ≤ 4, so at most 24 candidates — brute force is the honest
// optimum here). Edge order is temporal and never permuted: only names
// move. The result is a complete isomorphism invariant for specs, playing
// the role motif/iso.go's cell→label tables play for the 36-motif grid.
func (s *Spec) canonicalize() {
	best := s.edges
	perm := make([]int, s.nodes)
	for i := range perm {
		perm[i] = i
	}
	permute(perm, 0, func() {
		var cand [SpecEdges]SpecEdge
		for i, e := range s.edges {
			cand[i] = SpecEdge{Src: perm[e.Src], Dst: perm[e.Dst]}
		}
		if lessEdges(cand, best) {
			best = cand
		}
	})
	s.edges = best
}

// permute enumerates the permutations of p[k:] in place, calling fn for
// each complete permutation of p.
func permute(p []int, k int, fn func()) {
	if k == len(p) {
		fn()
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, fn)
		p[k], p[i] = p[i], p[k]
	}
}

// lessEdges orders edge lists lexicographically by (Src, Dst) pairs.
func lessEdges(a, b [SpecEdges]SpecEdge) bool {
	for i := range a {
		switch {
		case a[i].Src != b[i].Src:
			return a[i].Src < b[i].Src
		case a[i].Dst != b[i].Dst:
			return a[i].Dst < b[i].Dst
		}
	}
	return false
}

// center returns the variable incident to every edge, if any (the counting
// pivot of the star families), and whether one exists.
func (s *Spec) center() (int, bool) {
	for v := 0; v < s.nodes; v++ {
		ok := true
		for _, e := range s.edges {
			if e.Src != v && e.Dst != v {
				ok = false
				break
			}
		}
		if ok {
			return v, true
		}
	}
	return 0, false
}
