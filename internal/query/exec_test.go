package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hare/internal/brute"
	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Corpus generators mirror internal/higher's conventions: uniform random
// multigraphs and hub-skewed graphs (node 0 a hub) so the light/heavy
// scheduling split is exercised on both sides.

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func hubGraph(r *rand.Rand, nodes, edges, hubEdges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges + hubEdges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	for i := 0; i < hubEdges; i++ {
		v := temporal.NodeID(1 + r.Intn(nodes-1))
		if r.Intn(2) == 0 {
			_ = b.AddEdge(0, v, r.Int63n(span))
		} else {
			_ = b.AddEdge(v, 0, r.Int63n(span))
		}
	}
	return b.Build()
}

// schedulingRegimes is the option matrix every exactness test runs under:
// the 1/2/4-worker ladder plus the degree-threshold extremes.
var schedulingRegimes = []Options{
	{Workers: 1},
	{Workers: 2},
	{Workers: 4},
	{Workers: 4, DegreeThreshold: 1, ChunkSize: 3}, // everything heavy, tiny chunks
	{Workers: 4, DegreeThreshold: -1},              // heavy stage disabled
}

// bruteCount adapts a spec to the oracle's mirrored edge type.
func bruteCount(g *temporal.Graph, delta temporal.Timestamp, s *Spec) uint64 {
	var edges [SpecEdges]brute.SpecEdge
	for i, e := range s.Edges() {
		edges[i] = brute.SpecEdge{Src: e.Src, Dst: e.Dst}
	}
	return brute.CountSpec(g, delta, edges)
}

// starSpecText builds the 4-node star spec whose compiled plan must read
// Star4Counter cell (d1, d2, d3).
func starSpecText(d1, d2, d3 motif.Dir) string {
	leaves := [3]string{"x", "y", "z"}
	terms := make([]string, 0, 3)
	for i, d := range [3]motif.Dir{d1, d2, d3} {
		if d == motif.Out {
			terms = append(terms, "c->"+leaves[i])
		} else {
			terms = append(terms, leaves[i]+"->c")
		}
	}
	return strings.Join(terms, "; ")
}

// pathSpecText builds the 4-node path spec (nodes a-b-c-d, legs f = a-b,
// m = b-c, g = c-d) whose roles have the given temporal ranks and
// traversal directions (true = forward along a→b→c→d).
func pathSpecText(rankF, rankM, rankG int, fwdF, fwdM, fwdG bool) string {
	terms := make([]string, 3)
	place := func(rank int, term string) { terms[rank] = term }
	mk := func(fwd bool, from, to string) string {
		if fwd {
			return from + "->" + to
		}
		return to + "->" + from
	}
	place(rankF, mk(fwdF, "a", "b"))
	place(rankM, mk(fwdM, "b", "c"))
	place(rankG, mk(fwdG, "c", "d"))
	return strings.Join(terms, "; ")
}

// Every 4-node star spec must compile to a center plan whose count is
// bit-identical to the hand-tuned CountStar4's cell — at 1/2/4 workers and
// both threshold extremes — and the eight cells must exhaust the counter.
func TestCompiledStarMatchesCountStar4(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	for trial := 0; trial < 4; trial++ {
		g := hubGraph(r, 5+r.Intn(10), 50+r.Intn(120), 50+r.Intn(50), 1+int64(r.Intn(40)))
		delta := int64(1 + r.Intn(25))
		want := higher.CountStar4(g, delta, higher.Options{Workers: 1})
		var sum uint64
		for d1 := motif.In; d1 <= motif.Out; d1++ {
			for d2 := motif.In; d2 <= motif.Out; d2++ {
				for d3 := motif.In; d3 <= motif.Out; d3++ {
					s, err := ParseSpec(starSpecText(d1, d2, d3))
					if err != nil {
						t.Fatal(err)
					}
					p := Compile(s)
					if p.Kind() != PlanCenter {
						t.Fatalf("star spec %q compiled to %v, want center", s, p.Kind())
					}
					cell := want.At(d1, d2, d3)
					sum += cell
					for _, opts := range schedulingRegimes {
						if got := p.Execute(g, delta, opts); got != cell {
							t.Fatalf("spec %q opts %+v: count %d, want star cell (%v,%v,%v) = %d",
								s, opts, got, d1, d2, d3, cell)
						}
					}
					if got := bruteCount(g, delta, s); got != cell {
						t.Fatalf("spec %q: brute %d, want %d", s, got, cell)
					}
				}
			}
		}
		if sum != want.Total() {
			t.Fatalf("star cells sum %d, want total %d", sum, want.Total())
		}
	}
}

// All 48 raw path patterns: a pattern and its reversal must canonicalize to
// one spec text (one cache key per canonical path label), and the compiled
// count must be bit-identical to CountPath4's canonical cell across the
// scheduling regimes.
func TestCompiledPathMatchesCountPath4(t *testing.T) {
	r := rand.New(rand.NewSource(402))
	g := hubGraph(r, 6+r.Intn(8), 60+r.Intn(80), 40+r.Intn(40), 30)
	delta := int64(5 + r.Intn(20))
	want := higher.CountPath4(g, delta, higher.Options{Workers: 1})

	specByLabel := map[higher.PathLabel]*Spec{}
	for _, ranks := range [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}} {
		for bits := 0; bits < 8; bits++ {
			fwdF, fwdM, fwdG := bits&4 != 0, bits&2 != 0, bits&1 != 0
			label := higher.CanonicalPath(ranks[0], ranks[1], ranks[2], fwdF, fwdM, fwdG)
			s, err := ParseSpec(pathSpecText(ranks[0], ranks[1], ranks[2], fwdF, fwdM, fwdG))
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := specByLabel[label]; ok {
				if prev.Canonical() != s.Canonical() {
					t.Fatalf("label %v maps to two canonical specs: %q and %q", label, prev, s)
				}
				continue
			}
			specByLabel[label] = s
		}
	}
	if len(specByLabel) != higher.NumPathMotifs {
		t.Fatalf("got %d canonical path specs, want %d", len(specByLabel), higher.NumPathMotifs)
	}
	var sum uint64
	for label, s := range specByLabel {
		p := Compile(s)
		if p.Kind() != PlanEdge {
			t.Fatalf("path spec %q compiled to %v, want edge", s, p.Kind())
		}
		cell := want.At(label)
		sum += cell
		for _, opts := range schedulingRegimes {
			if got := p.Execute(g, delta, opts); got != cell {
				t.Fatalf("spec %q (label %v) opts %+v: count %d, want %d", s, label, opts, got, cell)
			}
		}
	}
	if sum != want.Total() {
		t.Fatalf("path cells sum %d, want total %d", sum, want.Total())
	}
}

// Novel shapes the hand-tuned counters cannot serve — the temporal
// triangle, the cycle-closing 3-path, ping-pong multi-edges, 3-node stars —
// must match the independent brute-force enumeration on both corpora at
// every scheduling regime, and their range partials must sum to the total.
func TestCompiledNovelShapesMatchBrute(t *testing.T) {
	shapes := []string{
		"a->b; b->c; c->a", // temporal triangle
		"a->b; b->c; a->c", // 3-path closed by a shortcut (cycle closure)
		"b->a; a->c; c->b", // triangle, mixed chronology
		"a->b; b->a; a->b", // 2-node ping-pong
		"a->b; a->b; b->a", // 2-node, repeated forward edge
		"a->b; a->c; b->a", // 3-node star with a return edge
		"a->b; c->b; b->a", // in-in-return
		"a->b; b->c; c->d", // 4-node path (edge pivot, cross-checked twice)
		"a->b; c->b; c->d", // 4-node path, middle reversed
	}
	r := rand.New(rand.NewSource(403))
	for trial := 0; trial < 4; trial++ {
		var g *temporal.Graph
		if trial%2 == 0 {
			g = randomGraph(r, 4+r.Intn(10), 60+r.Intn(120), 1+int64(r.Intn(40)))
		} else {
			g = hubGraph(r, 5+r.Intn(10), 40+r.Intn(80), 40+r.Intn(60), 1+int64(r.Intn(40)))
		}
		delta := int64(1 + r.Intn(25))
		for _, text := range shapes {
			s, err := ParseSpec(text)
			if err != nil {
				t.Fatal(err)
			}
			p := Compile(s)
			want := bruteCount(g, delta, s)
			for _, opts := range schedulingRegimes {
				if got := p.Execute(g, delta, opts); got != want {
					t.Fatalf("trial %d spec %q opts %+v: count %d, brute %d", trial, s, opts, got, want)
				}
			}
			// Partition the pivot domain three ways: partials must sum
			// exactly (the shard tier's scatter/gather contract).
			n := p.Domain(g)
			opts := Options{Workers: 2}
			var sum uint64
			for _, cut := range [][2]int{{-3, n / 3}, {n / 3, 2 * n / 3}, {2 * n / 3, n + 5}} {
				sum += p.ExecuteRange(g, delta, opts, cut[0], cut[1])
			}
			if sum != want {
				t.Fatalf("spec %q: range partials sum %d, want %d", s, sum, want)
			}
		}
	}
}

// Degenerate domains: empty ranges and graphs smaller than the spec.
func TestExecuteDegenerate(t *testing.T) {
	s, _ := ParseSpec("a->b; b->c; c->a")
	p := Compile(s)
	g := temporal.FromEdges([]temporal.Edge{{From: 0, To: 1, Time: 1}})
	for _, opts := range []Options{{Workers: 1}, {Workers: 4}} {
		if got := p.Execute(g, 10, opts); got != 0 {
			t.Fatalf("1-edge graph: count %d, want 0", got)
		}
		if got := p.ExecuteRange(g, 10, opts, 5, 2); got != 0 {
			t.Fatalf("inverted range: count %d, want 0", got)
		}
	}
	star, _ := ParseSpec("a->b; a->c; a->d")
	ps := Compile(star)
	if got := ps.ExecuteRange(g, 10, Options{Workers: 2}, 3, 1); got != 0 {
		t.Fatalf("inverted center range: count %d, want 0", got)
	}
}

// A worked, hand-checkable instance: one triangle within δ, none outside.
func TestTriangleKnown(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 1, To: 2, Time: 2},
		{From: 2, To: 0, Time: 3},
		{From: 0, To: 2, Time: 9}, // wrong direction for the cycle
	})
	s, _ := ParseSpec("a->b; b->c; c->a")
	p := Compile(s)
	if got := p.Execute(g, 10, Options{Workers: 1}); got != 1 {
		t.Fatalf("triangle count = %d, want 1", got)
	}
	if got := p.Execute(g, 1, Options{Workers: 1}); got != 0 {
		t.Fatalf("δ=1 triangle count = %d, want 0", got)
	}
}

func TestPlanKindString(t *testing.T) {
	if PlanCenter.String() != "center" || PlanEdge.String() != "edge" {
		t.Fatalf("PlanKind strings: %q, %q", PlanCenter, PlanEdge)
	}
}

// Compile is deterministic and the plan reports its spec back.
func TestCompileAccessors(t *testing.T) {
	for _, text := range []string{"a->b; a->c; a->d", "a->b; b->c; c->a"} {
		s, _ := ParseSpec(text)
		p := Compile(s)
		if p.Spec() != s {
			t.Fatalf("Plan.Spec() lost the spec for %q", text)
		}
		if fmt.Sprint(p.Kind()) == "" {
			t.Fatalf("empty kind for %q", text)
		}
		// The shard tier's partition guard: both plan kinds count over a
		// contiguous pivot range, so every compiled plan is splittable.
		if !p.Splittable() {
			t.Fatalf("plan for %q not splittable", text)
		}
	}
}
