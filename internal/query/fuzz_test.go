package query

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzParseSpec drives both spec parsers with one input: the raw string
// through ParseSpec, and (when it looks like JSON) through ParseSpecJSON.
// The invariants mirror the snapshot fuzzer's contract (typed errors,
// canonical re-encode): no panic, every rejection wraps exactly one typed
// error, and every accepted spec canonicalizes to a fixed point that
// round-trips through both the text and JSON forms.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"a->b; a->c; a->d",
		"a->b; b->c; c->a",
		"a->b; b->c; c->d",
		"b<-a, c<-a, d<-a",
		"hub->s1; hub->s2; hub->s3",
		"a->b; a->b; a->b",
		"a->a; a->b; b->c",
		"a->b; c->d; e->a",
		"a->b; c->d; a->b",
		"a->b; ->c; c->d",
		"a->b",
		"",
		`{"edges":[{"src":"a","dst":"b"},{"src":"b","dst":"c"},{"src":"c","dst":"a"}]}`,
		`{"edges":[{"src":"a","dst":"a"}]}`,
		`{"edges":`,
	} {
		f.Add(seed)
	}
	typed := []error{ErrSyntax, ErrEdgeCount, ErrSelfLoop, ErrTooManyNodes, ErrDisconnected}
	checkTyped := func(t *testing.T, err error, form string) {
		n := 0
		for _, want := range typed {
			if errors.Is(err, want) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("%s rejection wraps %d typed errors, want exactly 1: %v", form, n, err)
		}
	}
	roundTrip := func(t *testing.T, s *Spec, form string) {
		canon := s.Canonical()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("%s: canonical %q does not reparse: %v", form, canon, err)
		}
		if again.Canonical() != canon {
			t.Fatalf("%s: canonical not a fixed point: %q -> %q", form, canon, again.Canonical())
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal %q: %v", form, canon, err)
		}
		viaJSON, err := ParseSpecJSON(data)
		if err != nil {
			t.Fatalf("%s: JSON form %s of %q does not reparse: %v", form, data, canon, err)
		}
		if viaJSON.Canonical() != canon {
			t.Fatalf("%s: JSON round trip changed spec: %q -> %q", form, canon, viaJSON.Canonical())
		}
		if n := s.NumNodes(); n < 2 || n > MaxNodes {
			t.Fatalf("%s: accepted spec %q has %d variables", form, canon, n)
		}
		// Every accepted spec must compile (Compile is total on valid specs).
		if p := Compile(s); p.Spec() != s {
			t.Fatalf("%s: plan lost its spec for %q", form, canon)
		}
	}

	f.Fuzz(func(t *testing.T, text string) {
		if s, err := ParseSpec(text); err != nil {
			checkTyped(t, err, "text")
		} else {
			roundTrip(t, s, "text")
		}
		if strings.HasPrefix(strings.TrimSpace(text), "{") {
			if s, err := ParseSpecJSON([]byte(text)); err != nil {
				checkTyped(t, err, "json")
			} else {
				roundTrip(t, s, "json")
			}
		}
	})
}
