package query

import (
	"hare/internal/fast"
	"hare/internal/higher"
	"hare/internal/temporal"
)

// Domain returns the size of the plan's pivot range domain on g: NumNodes
// for center plans, NumEdges for edge plans. ExecuteRange over any
// partition of [0, Domain(g)) sums exactly to Execute — the contract the
// shard tier's scatter/gather rides on.
func (p *Plan) Domain(g *temporal.Graph) int {
	if p.kind == PlanCenter {
		return g.NumNodes()
	}
	return g.NumEdges()
}

// Execute counts the spec's instances in g within δ, scheduling with the
// same worker/degree-threshold/chunking machinery as the hand-tuned
// counters. The result is exact and bit-identical at any worker count.
func (p *Plan) Execute(g *temporal.Graph, delta temporal.Timestamp, opts Options) uint64 {
	return p.ExecuteRange(g, delta, opts, 0, p.Domain(g))
}

// PivotCount counts the instances bound to one pivot ID: the per-center
// cell for PlanCenter (id is a node), the per-pivot-edge tally for PlanEdge
// (id is an edge). ExecuteRange over any ID set equals the sum of
// PivotCount over it; samplers (internal/approx) call this per draw,
// reusing one scratch across draws instead of paying a range dispatch each.
func (p *Plan) PivotCount(g *temporal.Graph, delta temporal.Timestamp, id int, scratch *fast.Scratch) uint64 {
	if p.kind == PlanCenter {
		s4, _ := higher.CountNode(g, temporal.NodeID(id), delta, scratch)
		return s4.At(p.dirs[0], p.dirs[1], p.dirs[2])
	}
	return p.countPivotEdge(g, temporal.EdgeID(id), delta)
}

// padCount keeps per-worker tallies on separate cache lines; the merge sums
// in worker order (exact uint64 addition, so order is immaterial anyway).
type padCount struct {
	v uint64
	_ [56]byte
}

// ExecuteRange counts the instances whose pivot ID (center node for
// PlanCenter, pivot-slot graph edge for PlanEdge) lies in the half-open
// range [lo, hi), clamped to [0, Domain(g)).
func (p *Plan) ExecuteRange(g *temporal.Graph, delta temporal.Timestamp, opts Options, lo, hi int) uint64 {
	if p.kind == PlanCenter {
		// Delegation: a 4-node center spec is exactly one cell of the star
		// counter (the leaf assignment is forced by temporal order), so the
		// compiled plan *is* the hand-tuned machinery plus a cell read.
		c := higher.CountStar4Range(g, delta, opts, lo, hi)
		return c.At(p.dirs[0], p.dirs[1], p.dirs[2])
	}
	per := make([]padCount, opts.EffectiveWorkers())
	higher.ForEdgesRange(g, opts, lo, hi, func(w int, id temporal.EdgeID) {
		per[w].v += p.countPivotEdge(g, id, delta)
	})
	var total uint64
	for i := range per {
		total += per[i].v
	}
	return total
}

// countPivotEdge tallies every instance whose pivot-slot edge is the graph
// edge e: bind the pivot spec edge's variables to e's endpoints, then run
// the two compiled enumeration levels over the δ windows (±δ around e's
// time — a sound superset, since an instance spans ≤ δ) of their anchor
// nodes' chronological sequences. Each candidate graph edge appears exactly
// once in its level's anchor window (no self-loops), and an instance
// determines its pivot edge and variable assignment uniquely (a connected
// spec using every variable has no order-preserving automorphisms), so
// per-pivot-edge tallies sum without correction — the unit of work for
// ForEdgesRange and the shard tier.
func (p *Plan) countPivotEdge(g *temporal.Graph, e temporal.EdgeID, delta temporal.Timestamp) uint64 {
	pe := p.spec.edges[p.pivotSlot]
	var nodes [MaxNodes]temporal.NodeID
	var ids [SpecEdges]temporal.EdgeID
	var times [SpecEdges]temporal.Timestamp
	nodes[pe.Src], nodes[pe.Dst] = g.Src()[e], g.Dst()[e]
	mt := g.Times()[e]
	ids[p.pivotSlot], times[p.pivotSlot] = e, mt

	s0, s1 := &p.steps[0], &p.steps[1]
	w0 := windowAround(g.Seq(nodes[s0.anchor]), mt, delta)
	var w1 temporal.Seq
	if s1.hoist {
		w1 = windowAround(g.Seq(nodes[s1.anchor]), mt, delta)
	}
	var count uint64
	for i := 0; i < w0.Len(); i++ {
		if w0.Out[i] != s0.wantOut {
			continue
		}
		if !bindOther(s0, w0.Other[i], &nodes) {
			continue
		}
		ids[s0.slot], times[s0.slot] = w0.ID[i], w0.Time[i]
		wi := w1
		if !s1.hoist {
			wi = windowAround(g.Seq(nodes[s1.anchor]), mt, delta)
		}
		for j := 0; j < wi.Len(); j++ {
			if wi.Out[j] != s1.wantOut {
				continue
			}
			if !bindOther(s1, wi.Other[j], &nodes) {
				continue
			}
			ids[s1.slot], times[s1.slot] = wi.ID[j], wi.Time[j]
			// Temporal order is EdgeID order (the repo-wide total order):
			// the listing order of the spec must be strictly increasing,
			// which also enforces the three edges are distinct.
			if ids[0] < ids[1] && ids[1] < ids[2] && span3(times[0], times[1], times[2]) <= delta {
				count++
			}
		}
	}
	return count
}

// bindOther applies a step's far-end constraint to candidate node ov:
// equality against the already-bound variable, or the injectivity filter
// followed by binding. Reports whether the candidate survives.
func bindOther(st *step, ov temporal.NodeID, nodes *[MaxNodes]temporal.NodeID) bool {
	if st.otherBound {
		return ov == nodes[st.other]
	}
	for _, v := range st.distinct {
		if ov == nodes[v] {
			return false
		}
	}
	nodes[st.other] = ov
	return true
}

// windowAround returns the half-edges with |t − center| ≤ δ (the same
// window the path counter scans around its middle edge).
func windowAround(seq temporal.Seq, center, delta temporal.Timestamp) temporal.Seq {
	return seq.Slice(seq.LowerBoundTime(center-delta), seq.UpperBoundTime(center+delta))
}

func span3(a, b, c temporal.Timestamp) temporal.Timestamp {
	lo, hi := a, a
	if b < lo {
		lo = b
	}
	if b > hi {
		hi = b
	}
	if c < lo {
		lo = c
	}
	if c > hi {
		hi = c
	}
	return hi - lo
}
