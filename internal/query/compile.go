package query

import (
	"hare/internal/higher"
	"hare/internal/motif"
)

// Options steers plan scheduling with the exact knobs of the hand-tuned
// counters (internal/higher): Workers, DegreeThreshold, ChunkSize. It is an
// alias, not a copy — a caller tuning CountStar4 and a compiled plan with
// one Options value gets identical scheduling in both.
type Options = higher.Options

// PlanKind is the pivot family a compiled plan iterates over.
type PlanKind int

const (
	// PlanCenter pivots on center nodes: the spec is a 4-node star (one
	// variable incident to every edge), and the plan delegates to the
	// hand-tuned CountStar4Range machinery, reading one counter cell. The
	// range domain is node IDs.
	PlanCenter PlanKind = iota
	// PlanEdge pivots on graph edges bound to one spec edge: the generic
	// ordered-edge-window scan executor. The range domain is edge IDs.
	PlanEdge
)

// String names the pivot for responses and reports.
func (k PlanKind) String() string {
	if k == PlanCenter {
		return "center"
	}
	return "edge"
}

// step is one compiled enumeration level of an edge-pivot plan: scan the δ
// window of an already-bound anchor node's chronological sequence for
// candidate graph edges filling spec edge slot.
type step struct {
	slot       int   // spec edge slot this step binds
	anchor     int   // bound variable whose Seq is scanned
	wantOut    bool  // candidate direction: true iff anchor is the slot's Src
	other      int   // variable at the candidate's far end
	otherBound bool  // far end already bound → equality filter; else binds it
	distinct   []int // bound variables the far end must differ from (injectivity)
	hoist      bool  // anchor is bound by the pivot → window computed once per pivot edge
}

// Plan is a compiled counting plan. Plans are immutable and safe for
// concurrent use; obtain one from Compile. Both pivot families partition
// the count over a contiguous ID domain (nodes or edges), so any plan is
// range-splittable for the scatter/gather tier: partials from a partition
// of [0, Domain(g)) sum — exactly, in any order — to Execute's total.
type Plan struct {
	spec *Spec
	kind PlanKind

	// PlanCenter: per-temporal-slot direction relative to the center.
	dirs [SpecEdges]motif.Dir

	// PlanEdge: the spec edge bound to the pivot graph edge, then the two
	// enumeration levels in binding order.
	pivotSlot int
	steps     [SpecEdges - 1]step
}

// Spec returns the plan's (canonicalized) spec.
func (p *Plan) Spec() *Spec { return p.spec }

// Splittable reports whether the plan partitions its count over a
// contiguous pivot ID range (ExecuteRange partials over a partition of
// [0, Domain) sum to the total). Both current plan kinds do; the shard
// tier checks this and whole-routes a plan that does not, via rendezvous
// hashing, the way /v1/count is routed.
func (p *Plan) Splittable() bool { return true }

// Kind returns the pivot family.
func (p *Plan) Kind() PlanKind { return p.kind }

// Compile lowers a spec to a counting plan. Every spec accepted by
// ParseSpec compiles: a 4-node spec with a center variable becomes a
// PlanCenter delegating to the star machinery, everything else a PlanEdge
// (connectivity guarantees the greedy binding order below always finds an
// anchored next slot).
func Compile(s *Spec) *Plan {
	p := &Plan{spec: s}
	if c, ok := s.center(); ok && s.nodes == MaxNodes {
		p.kind = PlanCenter
		for i, e := range s.edges {
			if e.Src == c {
				p.dirs[i] = motif.Out
			} else {
				p.dirs[i] = motif.In
			}
		}
		return p
	}
	p.kind = PlanEdge
	p.pivotSlot = pickPivot(s)
	pe := s.edges[p.pivotSlot]
	bound := []int{pe.Src, pe.Dst}
	var done [SpecEdges]bool
	done[p.pivotSlot] = true
	for level := 0; level < SpecEdges-1; level++ {
		slot := nextSlot(s, done, bound)
		e := s.edges[slot]
		st := step{slot: slot}
		if contains(bound, e.Src) {
			st.anchor, st.wantOut, st.other = e.Src, true, e.Dst
		} else {
			st.anchor, st.wantOut, st.other = e.Dst, false, e.Src
		}
		st.hoist = st.anchor == pe.Src || st.anchor == pe.Dst
		if contains(bound, st.other) {
			st.otherBound = true
		} else {
			st.distinct = append([]int(nil), bound...)
			bound = append(bound, st.other)
		}
		done[slot] = true
		p.steps[level] = st
	}
	return p
}

// pickPivot selects the spec edge sharing a variable with the most other
// edges (ties to the lowest slot): the structural middle of a path, any
// edge of a triangle. Anchoring both enumeration levels directly to the
// pivot's endpoints keeps their δ windows hoistable out of the scan loops.
func pickPivot(s *Spec) int {
	best, bestScore := 0, -1
	for i, e := range s.edges {
		score := 0
		for j, o := range s.edges {
			if j != i && (o.Src == e.Src || o.Src == e.Dst || o.Dst == e.Src || o.Dst == e.Dst) {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// nextSlot returns the lowest unprocessed slot sharing a variable with the
// bound set. Connected specs always have one.
func nextSlot(s *Spec, done [SpecEdges]bool, bound []int) int {
	for i, e := range s.edges {
		if !done[i] && (contains(bound, e.Src) || contains(bound, e.Dst)) {
			return i
		}
	}
	panic("query: disconnected spec reached the compiler") // unreachable: newSpec validates
}

func contains(vars []int, v int) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}
