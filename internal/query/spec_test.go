package query

import (
	"encoding/json"
	"errors"
	"testing"
)

// Isomorphic specs — variable renamings, the "<-" sugar, and (for paths)
// the whole-path reversal — must collapse to one canonical text: that
// string is the serving tier's cache key.
func TestCanonicalCollapsesIsomorphs(t *testing.T) {
	classes := [][]string{
		{"a->b; a->c; a->d", "hub->s1; hub->s2; hub->s3", "b<-a, c<-a, d<-a", "x->y; x->z; x->w"},
		{"a->b; b->c; c->a", "u->v; v->w; w->u", "b<-a; c<-b; a<-c"},
		{"a->b; b->c; c->d", "d->c; c->b; b->a"}, // path reversal: relabel a<->d, b<->c
		{"a->b; c->b; c->d", "d->c; b->c; b->a"},
		{"a->b; a->b; a->b", "x->y; x->y; x->y"},
		{"a->b; b->a; a->b", "y<-x; x<-y; y<-x"},
	}
	seen := map[string]int{}
	for ci, class := range classes {
		var canon string
		for _, text := range class {
			s, err := ParseSpec(text)
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", text, err)
			}
			if canon == "" {
				canon = s.Canonical()
			} else if s.Canonical() != canon {
				t.Errorf("ParseSpec(%q).Canonical() = %q, want %q", text, s.Canonical(), canon)
			}
		}
		if prev, dup := seen[canon]; dup {
			t.Errorf("classes %d and %d share canonical %q", prev, ci, canon)
		}
		seen[canon] = ci
	}
}

// Canonical forms are fixed points: reparsing the canonical text yields the
// same spec, and the canonical text reuses the a..d alphabet in
// first-appearance order of the minimal labeling.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, text := range []string{
		"a->b; a->c; a->d",
		"a->b; b->c; c->a",
		"a->b; b->c; c->d",
		"p->q; q->p; r->q",
		"m->n; m->n; n->m",
	} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		again, err := ParseSpec(s.Canonical())
		if err != nil {
			t.Fatalf("reparse %q: %v", s.Canonical(), err)
		}
		if again.Canonical() != s.Canonical() {
			t.Errorf("canonical not a fixed point: %q -> %q", s.Canonical(), again.Canonical())
		}
		if *again != *s {
			t.Errorf("reparsed spec differs: %+v vs %+v", again, s)
		}
	}
}

func TestParseSpecTypedErrors(t *testing.T) {
	cases := []struct {
		text string
		want error
	}{
		{"", ErrEdgeCount},
		{"a->b", ErrEdgeCount},
		{"a->b; b->c", ErrEdgeCount},
		{"a->b; b->c; c->d; d->a", ErrEdgeCount},
		{"a->b; b=>c; c->d", ErrSyntax},
		{"a->b; ->c; c->d", ErrSyntax},
		{"a->b; b->c!; c->d", ErrSyntax},
		{"a->a; a->b; b->c", ErrSelfLoop},
		{"a->b; b->c; c->c", ErrSelfLoop},
		{"a->b; c->d; e->a", ErrTooManyNodes}, // 5 variables: arity checked before connectivity
		{"a->b; c->d; a->b", ErrDisconnected},
		{"a->b; a->b; c->d", ErrDisconnected},
	}
	for _, tc := range cases {
		s, err := ParseSpec(tc.text)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted as %q, want %v", tc.text, s.Canonical(), tc.want)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("ParseSpec(%q) error = %v, want errors.Is(%v)", tc.text, err, tc.want)
		}
	}

	// Blank terms (trailing or doubled separators) are dropped, not errors.
	s, err := ParseSpec("a->b;; b->c; c->a; ")
	if err != nil {
		t.Fatalf("blank terms should be tolerated: %v", err)
	}
	if want, _ := ParseSpec("a->b; b->c; c->a"); *s != *want {
		t.Fatalf("blank-term spec = %q, want %q", s.Canonical(), want.Canonical())
	}
}

// The JSON form is term-for-term equivalent to the text form, shares its
// typed errors, and MarshalJSON round-trips through ParseSpecJSON.
func TestParseSpecJSON(t *testing.T) {
	s, err := ParseSpecJSON([]byte(`{"edges":[{"src":"hub","dst":"x"},{"src":"hub","dst":"y"},{"src":"hub","dst":"z"}]}`))
	if err != nil {
		t.Fatalf("ParseSpecJSON: %v", err)
	}
	want, _ := ParseSpec("a->b; a->c; a->d")
	if *s != *want {
		t.Fatalf("JSON spec = %q, want %q", s.Canonical(), want.Canonical())
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	again, err := ParseSpecJSON(data)
	if err != nil {
		t.Fatalf("round-trip parse of %s: %v", data, err)
	}
	if *again != *s {
		t.Fatalf("round trip changed spec: %q -> %q", s.Canonical(), again.Canonical())
	}

	for _, tc := range []struct {
		data string
		want error
	}{
		{`{`, ErrSyntax},
		{`{"edges":[{"src":"a","dst":""},{"src":"a","dst":"c"},{"src":"a","dst":"d"}]}`, ErrSyntax},
		{`{"edges":[{"src":"a","dst":"b"}]}`, ErrEdgeCount},
		{`{"edges":[{"src":"a","dst":"a"},{"src":"a","dst":"b"},{"src":"b","dst":"c"}]}`, ErrSelfLoop},
	} {
		if _, err := ParseSpecJSON([]byte(tc.data)); !errors.Is(err, tc.want) {
			t.Errorf("ParseSpecJSON(%s) error = %v, want errors.Is(%v)", tc.data, err, tc.want)
		}
	}
}

func TestSpecAccessors(t *testing.T) {
	s, err := ParseSpec("a->b; b->c; c->a")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", s.NumNodes())
	}
	if s.String() != s.Canonical() {
		t.Errorf("String %q != Canonical %q", s.String(), s.Canonical())
	}
	edges := s.Edges()
	for _, e := range edges {
		if e.Src == e.Dst || e.Src >= s.NumNodes() || e.Dst >= s.NumNodes() {
			t.Errorf("bad canonical edge %+v", e)
		}
	}
}
