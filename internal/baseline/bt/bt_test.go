package bt

import (
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func TestPatternsCoverAllLabels(t *testing.T) {
	for _, l := range motif.AllLabels() {
		p, ok := PatternOf(l)
		if !ok {
			t.Fatalf("no pattern for %v", l)
		}
		want := 3
		if l.Category() == motif.CategoryPair {
			want = 2
		}
		if p.NumVars != want {
			t.Errorf("%v pattern has %d vars, want %d", l, p.NumVars, want)
		}
	}
	if _, ok := PatternOf(motif.Label{Row: 9, Col: 9}); ok {
		t.Fatal("invalid label should have no pattern")
	}
}

func TestPatternSelfConsistency(t *testing.T) {
	// Realising a label's pattern as concrete edges must classify back to
	// the same label.
	for _, l := range motif.AllLabels() {
		p, _ := PatternOf(l)
		var es [3]temporal.Edge
		for k := 0; k < 3; k++ {
			es[k] = temporal.Edge{
				From: temporal.NodeID(p.Edges[k][0]),
				To:   temporal.NodeID(p.Edges[k][1]),
				Time: temporal.Timestamp(k),
			}
		}
		got, ok := motif.Classify(es[0], es[1], es[2])
		if !ok || got != l {
			t.Errorf("pattern %v of %v classifies to %v (ok=%v)", p, l, got, ok)
		}
	}
}

func TestCountCycle(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	p, _ := PatternOf(motif.Label{Row: 2, Col: 6})
	if got := Count(g, 10, p); got != 1 {
		t.Fatalf("M26 count = %d, want 1", got)
	}
	if got := Count(g, 1, p); got != 0 {
		t.Fatalf("M26 count at δ=1 = %d, want 0", got)
	}
}

func TestCountAllMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 2+r.Intn(9), 1+r.Intn(100), 1+int64(r.Intn(30)))
		delta := int64(r.Intn(20))
		want := brute.Count(g, delta)
		got := CountAll(g, delta)
		if !got.Equal(&want) {
			t.Fatalf("trial %d δ=%d: diff %v", trial, delta, got.Diff(&want))
		}
	}
}

func TestCountPairsMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(r, 2+r.Intn(5), 1+r.Intn(80), 20)
		delta := int64(r.Intn(15))
		want := brute.Count(g, delta)
		got := CountPairs(g, delta)
		for _, l := range motif.PairLabels() {
			if got[l] != want.At(l) {
				t.Fatalf("trial %d: %v = %d, want %d", trial, l, got[l], want.At(l))
			}
		}
	}
}

func TestMatchFromSpans(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 4}, {From: 2, To: 0, Time: 9},
	})
	p, _ := PatternOf(motif.Label{Row: 2, Col: 6})
	var spans []temporal.Timestamp
	n := MatchFrom(g, 10, p, 0, func(span temporal.Timestamp) { spans = append(spans, span) })
	if n != 1 || len(spans) != 1 || spans[0] != 8 {
		t.Fatalf("n=%d spans=%v, want one span of 8", n, spans)
	}
}
