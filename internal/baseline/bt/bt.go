// Package bt implements the chronological edge-driven backtracking algorithm
// for temporal subgraph isomorphism of Mackey et al. (IEEE Big Data 2018),
// the paper's "BT" baseline.
//
// A 3-edge motif is expressed as a Pattern: a chronological sequence of
// pattern edges over node variables. Matching walks the data edges in
// chronological (EdgeID) order: the first pattern edge ranges over all data
// edges; each subsequent pattern edge extends the partial match with a later
// data edge consistent with the variable binding and the δ window. Node
// variables bind injectively.
//
// The matcher also powers the sampling baselines: BTS re-runs it inside
// sampled time windows and EWS anchors it on sampled first edges.
package bt

import (
	"fmt"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// Pattern is a chronological 3-edge motif pattern over NumVars node
// variables (2 for pairs, 3 for stars and triangles). Edges[k] holds the
// (source, destination) variable indexes of the k-th edge in time order.
type Pattern struct {
	Edges   [3][2]uint8
	NumVars int
}

// String renders the pattern, e.g. "(0->1)(1->2)(2->0)".
func (p Pattern) String() string {
	s := ""
	for _, e := range p.Edges {
		s += fmt.Sprintf("(%d->%d)", e[0], e[1])
	}
	return s
}

var patternByLabel map[motif.Label]Pattern

func init() {
	patternByLabel = make(map[motif.Label]Pattern, 36)
	// Topology templates covering all 36 motifs; directions are flipped
	// exhaustively. Variable 0 plays the pair endpoint / star center /
	// first triangle corner.
	templates := []struct {
		vars  int
		pairs [3][2]uint8
	}{
		{2, [3][2]uint8{{0, 1}, {0, 1}, {0, 1}}}, // pair
		{3, [3][2]uint8{{0, 1}, {0, 2}, {0, 2}}}, // star, isolated first
		{3, [3][2]uint8{{0, 2}, {0, 1}, {0, 2}}}, // star, isolated second
		{3, [3][2]uint8{{0, 2}, {0, 2}, {0, 1}}}, // star, isolated third
		{3, [3][2]uint8{{0, 1}, {0, 2}, {1, 2}}}, // triangle, pair 01 first
		{3, [3][2]uint8{{0, 1}, {1, 2}, {0, 2}}}, // triangle, pair 02 last
		{3, [3][2]uint8{{1, 2}, {0, 1}, {0, 2}}}, // triangle, pair 12 first
	}
	for _, tpl := range templates {
		for mask := 0; mask < 8; mask++ {
			var p Pattern
			p.NumVars = tpl.vars
			var rep [3]temporal.Edge
			for k := 0; k < 3; k++ {
				src, dst := tpl.pairs[k][0], tpl.pairs[k][1]
				if mask>>k&1 == 1 {
					src, dst = dst, src
				}
				p.Edges[k] = [2]uint8{src, dst}
				rep[k] = temporal.Edge{
					From: temporal.NodeID(src),
					To:   temporal.NodeID(dst),
					Time: temporal.Timestamp(k + 1),
				}
			}
			l, ok := motif.Classify(rep[0], rep[1], rep[2])
			if !ok {
				panic("bt: template does not classify: " + p.String())
			}
			if _, dup := patternByLabel[l]; !dup {
				patternByLabel[l] = p
			}
		}
	}
	if len(patternByLabel) != 36 {
		panic(fmt.Sprintf("bt: derived %d patterns, want 36", len(patternByLabel)))
	}
}

// PatternOf returns the matching pattern for a motif label.
func PatternOf(l motif.Label) (Pattern, bool) {
	p, ok := patternByLabel[l]
	return p, ok
}

// matcher holds the state of one backtracking run.
type matcher struct {
	g       *temporal.Graph
	delta   temporal.Timestamp
	pattern Pattern
	bound   [3]temporal.NodeID
	isSet   [3]bool
	deadAt  temporal.Timestamp // t1 + δ
	onMatch func(span temporal.Timestamp)
	t1      temporal.Timestamp
}

// MatchFrom enumerates all matches whose first (chronologically earliest)
// data edge is the edge with ID first, invoking fn with each match's time
// span t3 − t1. Returns the number of matches.
func MatchFrom(g *temporal.Graph, delta temporal.Timestamp, p Pattern,
	first temporal.EdgeID, fn func(span temporal.Timestamp)) uint64 {
	e := g.Edge(first)
	m := &matcher{g: g, delta: delta, pattern: p, onMatch: fn, t1: e.Time, deadAt: e.Time + delta}
	m.bound[p.Edges[0][0]] = e.From
	m.bound[p.Edges[0][1]] = e.To
	if e.From == e.To {
		return 0
	}
	m.isSet[p.Edges[0][0]] = true
	m.isSet[p.Edges[0][1]] = true
	return m.extend(1, first)
}

func (m *matcher) extend(level int, lastID temporal.EdgeID) uint64 {
	if level == 3 {
		if m.onMatch != nil {
			m.onMatch(m.g.Edge(lastID).Time - m.t1)
		}
		return 1
	}
	srcVar, dstVar := m.pattern.Edges[level][0], m.pattern.Edges[level][1]
	srcSet, dstSet := m.isSet[srcVar], m.isSet[dstVar]
	var n uint64
	switch {
	case srcSet && dstSet:
		// Faithful to Mackey et al.: walk the bound source's time-sorted
		// adjacency and filter on the target, rather than using this
		// repository's per-pair index (an optimisation BT does not have —
		// and a large part of why FAST-Pair wins in Table III).
		a, b := m.bound[srcVar], m.bound[dstVar]
		seq := m.g.Seq(a).After(lastID)
		for i := 0; i < seq.Len(); i++ {
			if seq.Time[i] > m.deadAt {
				break
			}
			if seq.Out[i] && seq.Other[i] == b { // a -> b as required
				n += m.extend(level+1, seq.ID[i])
			}
		}
	case srcSet:
		a := m.bound[srcVar]
		seq := m.g.Seq(a).After(lastID)
		for i := 0; i < seq.Len(); i++ {
			if seq.Time[i] > m.deadAt {
				break
			}
			if !seq.Out[i] || m.conflicts(seq.Other[i]) {
				continue
			}
			m.bound[dstVar], m.isSet[dstVar] = seq.Other[i], true
			n += m.extend(level+1, seq.ID[i])
			m.isSet[dstVar] = false
		}
	case dstSet:
		b := m.bound[dstVar]
		seq := m.g.Seq(b).After(lastID)
		for i := 0; i < seq.Len(); i++ {
			if seq.Time[i] > m.deadAt {
				break
			}
			if seq.Out[i] || m.conflicts(seq.Other[i]) {
				continue
			}
			m.bound[srcVar], m.isSet[srcVar] = seq.Other[i], true
			n += m.extend(level+1, seq.ID[i])
			m.isSet[srcVar] = false
		}
	default:
		// Cannot happen for connected 3-edge patterns: every later edge
		// shares at least one variable with an earlier one.
		panic("bt: disconnected pattern prefix")
	}
	return n
}

// conflicts reports whether binding node v would violate injectivity.
func (m *matcher) conflicts(v temporal.NodeID) bool {
	for i := 0; i < m.pattern.NumVars; i++ {
		if m.isSet[i] && m.bound[i] == v {
			return true
		}
	}
	return false
}

// Count counts all instances of one pattern in the graph.
func Count(g *temporal.Graph, delta temporal.Timestamp, p Pattern) uint64 {
	var n uint64
	for id := 0; id < g.NumEdges(); id++ {
		n += MatchFrom(g, delta, p, temporal.EdgeID(id), nil)
	}
	return n
}

// CountLabels counts the given motif labels by backtracking, one pattern per
// label ("BT" over that motif set).
func CountLabels(g *temporal.Graph, delta temporal.Timestamp, labels []motif.Label) map[motif.Label]uint64 {
	out := make(map[motif.Label]uint64, len(labels))
	for _, l := range labels {
		p, ok := PatternOf(l)
		if !ok {
			continue
		}
		out[l] = Count(g, delta, p)
	}
	return out
}

// CountPairs is the paper's "BT-Pair": exact backtracking count of the four
// 2-node motifs.
func CountPairs(g *temporal.Graph, delta temporal.Timestamp) map[motif.Label]uint64 {
	return CountLabels(g, delta, motif.PairLabels())
}

// CountAll runs BT over the full 36-motif grid and returns the matrix
// (a second independent exact algorithm, used for cross-validation).
func CountAll(g *temporal.Graph, delta temporal.Timestamp) motif.Matrix {
	return motif.FromLabelCounts(CountLabels(g, delta, motif.AllLabels()))
}
