// Package bts implements the interval-sampling approximation of Liu, Benson
// and Charikar (WSDM'19), the paper's "BTS" baseline: a sampling layer that
// sits on top of an exact counter (BT, as in the paper's experiments).
//
// The timeline is covered by windows of length L = c·δ with a uniformly
// random offset. Each window is kept with probability q; motif instances
// fully inside a kept window are counted exactly with BT and re-weighted by
// the inverse inclusion probability. An instance of duration d (= t3 − t1,
// d ≤ δ < L) lies fully inside some window of the random grid with
// probability (L − d)/L and its window is kept with probability q, so the
// weight 1/(q·(L−d)/L) makes the estimator unbiased.
package bts

import (
	"math/rand"
	"sort"

	"hare/internal/baseline/bt"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Options configures the sampler.
type Options struct {
	// WindowFactor is c in L = c·δ (default 10; must be > 1).
	WindowFactor int
	// Q is the per-window keep probability in (0, 1] (default 0.3).
	Q float64
	// Seed feeds the deterministic RNG.
	Seed int64
	// Workers > 1 processes sampled windows concurrently (the paper runs
	// BTS under the same OpenMP parallel mode as everything else).
	Workers int
}

func (o Options) factor() int {
	if o.WindowFactor > 1 {
		return o.WindowFactor
	}
	return 10
}

func (o Options) q() float64 {
	if o.Q > 0 && o.Q <= 1 {
		return o.Q
	}
	return 0.3
}

// Estimate approximates the instance counts of the given motif labels.
func Estimate(g *temporal.Graph, delta temporal.Timestamp, labels []motif.Label, opts Options) map[motif.Label]float64 {
	out := make(map[motif.Label]float64, len(labels))
	lo, hi, ok := g.TimeSpan()
	if !ok || delta <= 0 {
		return out
	}
	L := temporal.Timestamp(opts.factor()) * delta
	q := opts.q()
	rng := rand.New(rand.NewSource(opts.Seed))
	offset := temporal.Timestamp(rng.Int63n(int64(L)))
	gridLo := lo - offset

	type window struct{ lo, hi temporal.Timestamp }
	var kept []window
	for w := gridLo; w <= hi; w += L {
		if rng.Float64() < q {
			kept = append(kept, window{w, w + L})
		}
	}

	estimates := make([]map[motif.Label]float64, len(kept))
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	done := make(chan int)
	for i, win := range kept {
		go func(i int, win window) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			sub := extractRange(g, win.lo, win.hi)
			est := make(map[motif.Label]float64, len(labels))
			for _, l := range labels {
				p, ok := bt.PatternOf(l)
				if !ok {
					continue
				}
				var sum float64
				for id := 0; id < sub.NumEdges(); id++ {
					bt.MatchFrom(sub, delta, p, temporal.EdgeID(id), func(span temporal.Timestamp) {
						incl := float64(L-span) / float64(L)
						sum += 1 / (q * incl)
					})
				}
				est[l] = sum
			}
			estimates[i] = est
		}(i, win)
	}
	for range kept {
		<-done
	}
	for _, est := range estimates {
		for l, v := range est {
			out[l] += v
		}
	}
	return out
}

// EstimatePairs is the paper's "BTS-Pair": approximate counts of the four
// 2-node motifs.
func EstimatePairs(g *temporal.Graph, delta temporal.Timestamp, opts Options) map[motif.Label]float64 {
	return Estimate(g, delta, motif.PairLabels(), opts)
}

func extractRange(g *temporal.Graph, lo, hi temporal.Timestamp) *temporal.Graph {
	edges := g.Edges()
	from := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= lo })
	to := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= hi })
	return temporal.FromEdges(edges[from:to])
}
