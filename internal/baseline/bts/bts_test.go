package bts

import (
	"math"
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func TestDegenerateEmpty(t *testing.T) {
	out := EstimatePairs(temporal.FromEdges(nil), 10, Options{})
	for l, v := range out {
		if v != 0 {
			t.Fatalf("%v = %f on empty graph", l, v)
		}
	}
	if out := EstimatePairs(randomGraph(rand.New(rand.NewSource(1)), 5, 30, 20), 0, Options{}); len(out) != 0 {
		t.Fatal("δ=0 should return empty estimate")
	}
}

// With q=1 every window is kept; the estimator still re-weights by the
// window-inclusion probability, so it is unbiased but not exact per draw.
// Averaging over offsets (seeds) must converge to the truth.
func TestUnbiasedOverSeeds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := randomGraph(r, 8, 250, 400)
	delta := int64(20)
	want := brute.Count(g, delta)
	m55 := motif.Label{Row: 5, Col: 5}
	truth := float64(want.CategoryTotal(motif.CategoryPair))
	_ = m55

	const seeds = 160
	var sum float64
	for s := int64(0); s < seeds; s++ {
		est := EstimatePairs(g, delta, Options{Q: 1, WindowFactor: 8, Seed: s})
		for _, v := range est {
			sum += v
		}
	}
	mean := sum / seeds
	if truth == 0 {
		t.Skip("degenerate instance-free draw")
	}
	if rel := math.Abs(mean-truth) / truth; rel > 0.15 {
		t.Fatalf("mean estimate %.1f vs truth %.1f (rel err %.2f)", mean, truth, rel)
	}
}

func TestSampledEstimateReasonable(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 10, 600, 800)
	delta := int64(25)
	want := brute.Count(g, delta)
	truth := float64(want.CategoryTotal(motif.CategoryPair))
	if truth == 0 {
		t.Skip("no pair instances in draw")
	}
	const seeds = 120
	var sum float64
	for s := int64(0); s < seeds; s++ {
		est := EstimatePairs(g, delta, Options{Q: 0.5, WindowFactor: 6, Seed: s, Workers: 4})
		for _, v := range est {
			sum += v
		}
	}
	mean := sum / seeds
	if rel := math.Abs(mean-truth) / truth; rel > 0.25 {
		t.Fatalf("mean estimate %.1f vs truth %.1f (rel err %.2f)", mean, truth, rel)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomGraph(r, 8, 200, 300)
	a := EstimatePairs(g, 15, Options{Seed: 7})
	b := EstimatePairs(g, 15, Options{Seed: 7, Workers: 4})
	for l, v := range a {
		if b[l] != v {
			t.Fatalf("%v: %f vs %f across runs with same seed", l, v, b[l])
		}
	}
}
