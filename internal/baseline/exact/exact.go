package exact

import (
	"sort"
	"sync"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// CountPairs runs the 2-node stage of EX: the 2-class sliding-window triple
// counter over every node pair's merged edge sequence ("EX-Pair").
func CountPairs(g *temporal.Graph, delta temporal.Timestamp) motif.Matrix {
	var m motif.Matrix
	tc := newTripleCounter(2)
	var times []temporal.Timestamp
	var classes []uint8
	for u := 0; u < g.NumNodes(); u++ {
		for _, w := range g.Neighbors(temporal.NodeID(u)) {
			if w <= temporal.NodeID(u) {
				continue // each unordered pair once
			}
			seq := g.Between(temporal.NodeID(u), w)
			if seq.Len() < 3 {
				continue
			}
			times = times[:0]
			classes = classes[:0]
			for i := 0; i < seq.Len(); i++ {
				times = append(times, seq.Time[i])
				classes = append(classes, uint8(motif.DirOf(seq.Out[i])))
			}
			tc.reset()
			tc.run(times, classes, delta)
			for x := 0; x < 2; x++ {
				for y := 0; y < 2; y++ {
					for z := 0; z < 2; z++ {
						if n := tc.at(x, y, z); n > 0 {
							m.AddAt(motif.PairLabel(motif.Dir(x), motif.Dir(y), motif.Dir(z)), n)
						}
					}
				}
			}
		}
	}
	return m
}

// CountStars runs the star stage of EX over all centers ("EX-Star").
func CountStars(g *temporal.Graph, delta temporal.Timestamp) motif.Matrix {
	var m motif.Matrix
	countStars(g, delta, &m)
	return m
}

// CountTriangles runs the triangle stage of EX ("EX-Tri").
func CountTriangles(g *temporal.Graph, delta temporal.Timestamp) motif.Matrix {
	var m motif.Matrix
	countTriangles(g, delta, &m)
	return m
}

// Count runs the full EX algorithm: pair, star and triangle stages.
func Count(g *temporal.Graph, delta temporal.Timestamp) motif.Matrix {
	var m motif.Matrix
	pairs := CountPairs(g, delta)
	for _, l := range motif.PairLabels() {
		m.Set(l, pairs.At(l))
	}
	countStars(g, delta, &m)
	countTriangles(g, delta, &m)
	return m
}

// CountParallel is the time-partitioned parallel EX used as the Fig. 11
// baseline. The time range is split into per-worker slabs counted
// concurrently; motifs spanning a slab boundary live inside a ±δ window
// around it and are counted by a sequential inclusion–exclusion correction
// pass (crossing = window − left half − right half). The sequential pass is
// the data-dependent fraction that caps EX's parallel scaling — more workers
// mean more boundaries and more serial work, reproducing the paper's
// observation that EX slows down beyond ~16 threads.
func CountParallel(g *temporal.Graph, delta temporal.Timestamp, workers int) motif.Matrix {
	lo, hi, ok := g.TimeSpan()
	if !ok || workers <= 1 {
		return Count(g, delta)
	}
	span := hi - lo + 1
	minSlab := 2*delta + 1
	nslabs := workers
	if int64(nslabs) > span/minSlab {
		nslabs = int(span / minSlab)
	}
	if nslabs <= 1 {
		return Count(g, delta)
	}
	slabW := span / int64(nslabs)

	bounds := make([]temporal.Timestamp, 0, nslabs+1)
	for i := 0; i <= nslabs; i++ {
		bounds = append(bounds, lo+int64(i)*slabW)
	}
	bounds[nslabs] = hi + 1

	// Parallel slab stage.
	partial := make([]motif.Matrix, nslabs)
	var wg sync.WaitGroup
	for i := 0; i < nslabs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := extractRange(g, bounds[i], bounds[i+1])
			partial[i] = Count(sub, delta)
		}(i)
	}
	wg.Wait()

	var total motif.Matrix
	for i := range partial {
		for _, l := range motif.AllLabels() {
			total.AddAt(l, partial[i].At(l))
		}
	}

	// Sequential boundary-correction stage.
	for i := 1; i < nslabs; i++ {
		b := bounds[i]
		win := Count(extractRange(g, b-delta, b+delta), delta)
		left := Count(extractRange(g, b-delta, b), delta)
		right := Count(extractRange(g, b, b+delta), delta)
		for _, l := range motif.AllLabels() {
			total.AddAt(l, win.At(l)-left.At(l)-right.At(l))
		}
	}
	return total
}

// extractRange builds the subgraph of edges with timestamps in [lo, hi).
func extractRange(g *temporal.Graph, lo, hi temporal.Timestamp) *temporal.Graph {
	edges := g.Edges()
	from := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= lo })
	to := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= hi })
	return temporal.FromEdges(edges[from:to])
}
