package exact

import (
	"sort"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// Triangle stage of EX: enumerate the static triangles of the underlying
// undirected graph, then run the 6-class sliding-window triple counter over
// each triangle's merged temporal edge sequence. Class triples that use all
// three node pairs are triangle motif instances; the remaining triples are
// star/pair patterns inside the triangle and are counted by the other stages.
//
// This is the stage that dominates EX's cost on skewed graphs: a hub pair's
// edge sequence is re-scanned once per static triangle it participates in,
// which FAST-Tri avoids — the source of the paper's Table III gap.

// Edge classes within a triangle (a,b,c), a<b<c by node ID.
const (
	clsAB = iota
	clsBA
	clsAC
	clsCA
	clsBC
	clsCB
	numTriClasses
)

// triClassLabel[(x*6+y)*6+z] is the motif label completed by class triple
// (x,y,z), or an invalid label when the classes do not cover three node
// pairs. Built once on first use via motif.Classify on representative edges.
var triClassLabel [numTriClasses * numTriClasses * numTriClasses]motif.Label

func init() {
	// Representative nodes a=0, b=1, c=2.
	rep := [numTriClasses]temporal.Edge{
		clsAB: {From: 0, To: 1},
		clsBA: {From: 1, To: 0},
		clsAC: {From: 0, To: 2},
		clsCA: {From: 2, To: 0},
		clsBC: {From: 1, To: 2},
		clsCB: {From: 2, To: 1},
	}
	pairOf := func(c int) int { return c / 2 } // 0:ab 1:ac 2:bc
	for x := 0; x < numTriClasses; x++ {
		for y := 0; y < numTriClasses; y++ {
			for z := 0; z < numTriClasses; z++ {
				idx := (x*numTriClasses+y)*numTriClasses + z
				if pairOf(x) == pairOf(y) || pairOf(x) == pairOf(z) || pairOf(y) == pairOf(z) {
					continue // not a triangle triple
				}
				e1, e2, e3 := rep[x], rep[y], rep[z]
				e1.Time, e2.Time, e3.Time = 1, 2, 3
				l, ok := motif.Classify(e1, e2, e3)
				if !ok || l.Category() != motif.CategoryTri {
					panic("exact: triangle class table inconsistent")
				}
				triClassLabel[idx] = l
			}
		}
	}
}

// staticAdj returns, per node, the sorted distinct static neighbors — a
// direct view of the graph's grouped neighbor-key column.
func staticAdj(g *temporal.Graph) [][]temporal.NodeID {
	adj := make([][]temporal.NodeID, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		adj[u] = g.Neighbors(temporal.NodeID(u))
	}
	return adj
}

// forEachTriangle invokes fn for every static triangle a<b<c.
func forEachTriangle(adj [][]temporal.NodeID, fn func(a, b, c temporal.NodeID)) {
	for a := range adj {
		na := adj[a]
		// neighbors of a greater than a
		ia := sort.Search(len(na), func(i int) bool { return int(na[i]) > a })
		higher := na[ia:]
		for i, b := range higher {
			nb := adj[b]
			ib := sort.Search(len(nb), func(k int) bool { return nb[k] > b })
			// intersect higher[i+1:] with nb[ib:]
			p, q := i+1, ib
			for p < len(higher) && q < len(nb) {
				switch {
				case higher[p] < nb[q]:
					p++
				case higher[p] > nb[q]:
					q++
				default:
					fn(temporal.NodeID(a), b, higher[p])
					p++
					q++
				}
			}
		}
	}
}

// mergedSeq merges the three pair sequences of triangle (a,b,c) by EdgeID and
// returns parallel (times, classes) slices. Buffers are reused via the
// provided scratch.
type triScratch struct {
	times   []temporal.Timestamp
	classes []uint8
	tc      *tripleCounter
}

func newTriScratch() *triScratch {
	return &triScratch{tc: newTripleCounter(numTriClasses)}
}

func (s *triScratch) merge(g *temporal.Graph, a, b, c temporal.NodeID) {
	ab := g.Between(a, b) // dir relative to a
	ac := g.Between(a, c)
	bc := g.Between(b, c) // dir relative to b
	s.times = s.times[:0]
	s.classes = s.classes[:0]
	i, j, k := 0, 0, 0
	for i < ab.Len() || j < ac.Len() || k < bc.Len() {
		best := -1
		var id temporal.EdgeID
		if i < ab.Len() {
			best, id = 0, ab.ID[i]
		}
		if j < ac.Len() && (best == -1 || ac.ID[j] < id) {
			best, id = 1, ac.ID[j]
		}
		if k < bc.Len() && (best == -1 || bc.ID[k] < id) {
			best = 2
		}
		switch best {
		case 0:
			s.times = append(s.times, ab.Time[i])
			if ab.Out[i] {
				s.classes = append(s.classes, clsAB)
			} else {
				s.classes = append(s.classes, clsBA)
			}
			i++
		case 1:
			s.times = append(s.times, ac.Time[j])
			if ac.Out[j] {
				s.classes = append(s.classes, clsAC)
			} else {
				s.classes = append(s.classes, clsCA)
			}
			j++
		default:
			s.times = append(s.times, bc.Time[k])
			if bc.Out[k] {
				s.classes = append(s.classes, clsBC)
			} else {
				s.classes = append(s.classes, clsCB)
			}
			k++
		}
	}
}

// countTriangles runs the triangle stage over the whole graph, adding
// per-label counts into m.
func countTriangles(g *temporal.Graph, delta temporal.Timestamp, m *motif.Matrix) {
	adj := staticAdj(g)
	s := newTriScratch()
	forEachTriangle(adj, func(a, b, c temporal.NodeID) {
		s.merge(g, a, b, c)
		s.tc.reset()
		s.tc.run(s.times, s.classes, delta)
		for x := 0; x < numTriClasses; x++ {
			for y := 0; y < numTriClasses; y++ {
				for z := 0; z < numTriClasses; z++ {
					n := s.tc.at(x, y, z)
					if n == 0 {
						continue
					}
					if l := triClassLabel[(x*numTriClasses+y)*numTriClasses+z]; l.Valid() {
						m.AddAt(l, n)
					}
				}
			}
		}
	})
}
