package exact

import (
	"math/rand"
	"sort"
	"testing"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// starSweeper must be reusable across centers, including degenerate ones
// (a short sequence between two busy centers must not leak state).
func TestStarSweeperReuseAcrossCenters(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	g := randomGraph(r, 8, 120, 40)
	delta := int64(15)

	fresh := func(u temporal.NodeID) [24]uint64 {
		s := newStarSweeper()
		s.sweep(g.Seq(u), delta)
		return s.accum
	}
	reused := newStarSweeper()
	for u := 0; u < g.NumNodes(); u++ {
		reused.sweep(g.Seq(temporal.NodeID(u)), delta)
		if reused.accum != fresh(temporal.NodeID(u)) {
			t.Fatalf("center %d: reused sweeper differs from fresh sweeper", u)
		}
	}
}

// A center with fewer than three edges must produce zero counts even right
// after a busy center.
func TestStarSweeperShortSequence(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		// Node 0 is busy; node 5 has one edge.
		{From: 0, To: 1, Time: 1}, {From: 0, To: 2, Time: 2}, {From: 0, To: 1, Time: 3},
		{From: 0, To: 3, Time: 4}, {From: 5, To: 6, Time: 5},
	})
	s := newStarSweeper()
	s.sweep(g.Seq(0), 100)
	busy := s.accum
	var total uint64
	for _, v := range busy {
		total += v
	}
	if total == 0 {
		t.Fatal("busy center should have star counts")
	}
	s.sweep(g.Seq(5), 100)
	for i, v := range s.accum {
		if v != 0 {
			t.Fatalf("short sequence produced accum[%d]=%d", i, v)
		}
	}
}

func TestForEachTriangle(t *testing.T) {
	// K4 on nodes 0..3 with one timestamped edge per pair: 4 triangles.
	var edges []temporal.Edge
	tm := temporal.Timestamp(0)
	for a := temporal.NodeID(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			tm++
			edges = append(edges, temporal.Edge{From: a, To: b, Time: tm})
		}
	}
	g := temporal.FromEdges(edges)
	adj := staticAdj(g)
	var got [][3]temporal.NodeID
	forEachTriangle(adj, func(a, b, c temporal.NodeID) {
		if !(a < b && b < c) {
			t.Fatalf("triangle (%d,%d,%d) not ordered", a, b, c)
		}
		got = append(got, [3]temporal.NodeID{a, b, c})
	})
	if len(got) != 4 {
		t.Fatalf("found %d triangles in K4, want 4", len(got))
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i][0] != got[j][0] {
			return got[i][0] < got[j][0]
		}
		if got[i][1] != got[j][1] {
			return got[i][1] < got[j][1]
		}
		return got[i][2] < got[j][2]
	})
	want := [][3]temporal.NodeID{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("triangle %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestForEachTriangleMultiEdgesCountOnce(t *testing.T) {
	// Parallel temporal edges between the same pair must not duplicate the
	// static triangle.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 0, Time: 2}, {From: 0, To: 1, Time: 3},
		{From: 1, To: 2, Time: 4}, {From: 2, To: 0, Time: 5},
	})
	n := 0
	forEachTriangle(staticAdj(g), func(a, b, c temporal.NodeID) { n++ })
	if n != 1 {
		t.Fatalf("found %d static triangles, want 1", n)
	}
}

func TestTriClassLabelTable(t *testing.T) {
	valid := 0
	for x := 0; x < numTriClasses; x++ {
		for y := 0; y < numTriClasses; y++ {
			for z := 0; z < numTriClasses; z++ {
				l := triClassLabel[(x*numTriClasses+y)*numTriClasses+z]
				if !l.Valid() {
					continue
				}
				valid++
				if l.Category() != motif.CategoryTri {
					t.Fatalf("class triple (%d,%d,%d) mapped to %v", x, y, z, l)
				}
			}
		}
	}
	// Three pair choices for the first class slot share their pair with one
	// other class: valid triples = pairs of distinct pair-assignments:
	// 3! orders × 2^3 directions = 48.
	if valid != 48 {
		t.Fatalf("class table has %d valid triples, want 48", valid)
	}
}

func TestExtractRange(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 10}, {From: 1, To: 2, Time: 20}, {From: 2, To: 3, Time: 30},
	})
	sub := extractRange(g, 15, 30)
	if sub.NumEdges() != 1 || sub.Edges()[0].Time != 20 {
		t.Fatalf("extractRange wrong: %v", sub.Edges())
	}
	if extractRange(g, 100, 200).NumEdges() != 0 {
		t.Fatal("empty range should be empty")
	}
	if extractRange(g, 0, 100).NumEdges() != 3 {
		t.Fatal("full range should keep everything")
	}
}

func TestPairStageNeighborIteration(t *testing.T) {
	// CountPairs visits each unordered pair once, from its lower endpoint,
	// via the graph's sorted neighbor keys.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 0, Time: 2}, {From: 0, To: 2, Time: 3},
	})
	var higher []temporal.NodeID
	for _, w := range g.Neighbors(0) {
		if w > 0 {
			higher = append(higher, w)
		}
	}
	if len(higher) != 2 {
		t.Fatalf("node 0 has %d higher neighbors, want 2", len(higher))
	}
	if g.Between(0, 1).Len() != 2 || g.Between(0, 2).Len() != 1 {
		t.Fatalf("pair sequence lengths wrong: %d/%d", g.Between(0, 1).Len(), g.Between(0, 2).Len())
	}
	// From node 1's perspective only node 0 is adjacent, and it is lower.
	for _, w := range g.Neighbors(1) {
		if w > 1 {
			t.Fatalf("node 1 should see no higher-ID neighbors, got %d", w)
		}
	}
}
