package exact

import (
	"hare/internal/motif"
	"hare/internal/temporal"
)

// starSweeper counts all star motifs centered at one node with a single
// chronological sweep over S_u, in the style of Paranjape et al.'s star
// counter: a δ-window over the sequence plus a family of aggregate and
// per-neighbor tuple counters ("more than ten triple and tuple counters", as
// the HARE paper puts it).
//
// For the window ending at position j (the candidate last edge e3, neighbor
// m, class z) the star triples are split by which positions share a neighbor:
//
//	Star-I   {2,3} -> m:  pairs with second edge to m minus pairs fully on m
//	Star-II  {1,3} -> m:  pairs with first edge to m minus pairs fully on m
//	Star-III {1,2} -> n≠m: pairs fully on some n, summed, minus those on m
//
// Pairs fully on m complete 2-node (pair) motifs and are intentionally not
// counted here — EX counts them in the pair stage.
//
// Per-neighbor "pairs with first/second edge on m" are maintained in O(1)
// per event via prefix-sum identities over the contiguous window:
//
//	secondTo_m[x][y] = sumPre_m[y][x]  − cnt1_m[y] · prefX[start]
//	firstTo_m[x][y]  = cnt1_m[x] · prefY[j] − sumPost_m[x][y]
//
// where prefC[p] counts class-c edges among positions [0,p), sumPre
// accumulates prefX at each window edge's position and sumPost accumulates
// prefY just after it.
type starSweeper struct {
	pref  [2][]uint64 // prefix class counts, length len(seq)+1
	cnt1  [2]uint64
	bTot  [4]uint64 // pairs on the same neighbor, aggregated
	nbr   map[temporal.NodeID]*nbrState
	accum [24]uint64 // star counts indexed by motif.StarIndex
}

type nbrState struct {
	cnt1    [2]uint64
	b       [4]uint64 // pairs fully on this neighbor [x][y]
	sumPre  [4]uint64 // [y][x]: Σ prefX[p] over window edges (class y) on this neighbor
	sumPost [4]uint64 // [x][y]: Σ prefY[p+1] over window edges (class x) on this neighbor
}

func newStarSweeper() *starSweeper {
	return &starSweeper{nbr: make(map[temporal.NodeID]*nbrState)}
}

func (s *starSweeper) reset(n int) {
	for i := 0; i < 2; i++ {
		if cap(s.pref[i]) < n+1 {
			s.pref[i] = make([]uint64, n+1)
		} else {
			s.pref[i] = s.pref[i][:n+1]
			clear(s.pref[i])
		}
	}
	s.cnt1 = [2]uint64{}
	s.bTot = [4]uint64{}
	clear(s.nbr)
	clear(s.accum[:])
}

func (s *starSweeper) state(m temporal.NodeID) *nbrState {
	st := s.nbr[m]
	if st == nil {
		st = &nbrState{}
		s.nbr[m] = st
	}
	return st
}

// sweep runs the sweep for one center's sequence and accumulates star counts.
func (s *starSweeper) sweep(seq temporal.Seq, delta temporal.Timestamp) {
	n := seq.Len()
	s.reset(n)
	if n < 3 {
		return
	}
	for p := 0; p < n; p++ {
		s.pref[0][p+1] = s.pref[0][p]
		s.pref[1][p+1] = s.pref[1][p]
		s.pref[motif.DirOf(seq.Out[p])][p+1]++
	}
	start := 0
	for j := 0; j < n; j++ {
		e3 := seq.At(j)
		for seq.Time[start] < e3.Time-delta {
			s.pop(seq.At(start), start)
			start++
		}
		s.accumulate(e3, j, start)
		s.push(e3, j)
	}
}

// accumulate treats seq[j] as the last edge of star triples.
func (s *starSweeper) accumulate(e3 temporal.HalfEdge, j, start int) {
	m := e3.Other
	z := motif.Dir(e3.Dir())
	st := s.nbr[m]
	var zero nbrState
	if st == nil {
		st = &zero
	}
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			xy := x<<1 | y
			b := st.b[xy]
			secondTo := st.sumPre[y<<1|x] - st.cnt1[y]*s.pref[x][start]
			firstTo := st.cnt1[x]*s.pref[y][j] - st.sumPost[xy]
			dx, dy := motif.Dir(x), motif.Dir(y)
			s.accum[motif.StarIndex(motif.StarI, dx, dy, z)] += secondTo - b
			s.accum[motif.StarIndex(motif.StarII, dx, dy, z)] += firstTo - b
			s.accum[motif.StarIndex(motif.StarIII, dx, dy, z)] += s.bTot[xy] - b
		}
	}
}

// push admits seq[j] to the window.
func (s *starSweeper) push(e temporal.HalfEdge, j int) {
	c := e.Dir()
	st := s.state(e.Other)
	for x := 0; x < 2; x++ {
		st.b[x<<1|c] += st.cnt1[x]
		s.bTot[x<<1|c] += st.cnt1[x]
		st.sumPre[c<<1|x] += s.pref[x][j]
		st.sumPost[c<<1|x] += s.pref[x][j+1]
	}
	st.cnt1[c]++
	s.cnt1[c]++
}

// pop retires the oldest window edge (at position p).
func (s *starSweeper) pop(e temporal.HalfEdge, p int) {
	c := e.Dir()
	st := s.nbr[e.Other]
	st.cnt1[c]--
	s.cnt1[c]--
	for y := 0; y < 2; y++ {
		st.b[c<<1|y] -= st.cnt1[y]
		s.bTot[c<<1|y] -= st.cnt1[y]
		st.sumPre[c<<1|y] -= s.pref[y][p]
		st.sumPost[c<<1|y] -= s.pref[y][p+1]
	}
}

// countStars runs the star stage of EX over all centers, adding per-label
// counts into m.
func countStars(g *temporal.Graph, delta temporal.Timestamp, m *motif.Matrix) {
	s := newStarSweeper()
	for u := 0; u < g.NumNodes(); u++ {
		s.sweep(g.Seq(temporal.NodeID(u)), delta)
		for i, v := range s.accum {
			if v == 0 {
				continue
			}
			t, d1, d2, d3 := motif.StarCell(i)
			m.AddAt(motif.StarLabel(t, d1, d2, d3), v)
		}
	}
}
