// Package exact re-implements EX, the exact δ-temporal motif counting
// framework of Paranjape, Benson and Leskovec (WSDM'17), which the paper uses
// as its primary baseline.
//
// EX decomposes the problem by induced subgraph: 2-node counts run the
// general sliding-window triple counter over each node pair's edge sequence;
// star counts run a per-center sweep maintaining a family of per-neighbor and
// aggregate tuple counters; triangle counts enumerate static triangles and
// run the triple counter with six edge classes over each triangle's merged
// sequence. All stages are exact and share the EdgeID tie-breaking convention
// of the rest of this repository.
package exact

import "hare/internal/temporal"

// tripleCounter is the general counting engine of EX (Paranjape et al.,
// Algorithm 1): given a chronological stream of class-labelled edges, it
// counts, for every ordered class triple (x,y,z), the subsequences i<j<k with
// t_k − t_i ≤ δ.
//
// The window is a contiguous suffix of the processed stream. Push finalises
// all triples whose last edge is the new one; Pop retires the oldest window
// edge, removing the pairs that start with it. count3 is cumulative and never
// decremented.
type tripleCounter struct {
	c      int
	count1 []uint64 // [c]
	count2 []uint64 // [c][c], pairs fully inside the window
	count3 []uint64 // [c][c][c], cumulative completed triples
}

func newTripleCounter(classes int) *tripleCounter {
	return &tripleCounter{
		c:      classes,
		count1: make([]uint64, classes),
		count2: make([]uint64, classes*classes),
		count3: make([]uint64, classes*classes*classes),
	}
}

func (tc *tripleCounter) reset() {
	clear(tc.count1)
	clear(tc.count2)
	clear(tc.count3)
}

// push adds the newest edge of class z: triples first (completed by this
// edge), then pairs, then singles.
func (tc *tripleCounter) push(z int) {
	c := tc.c
	for xy := 0; xy < c*c; xy++ {
		tc.count3[xy*c+z] += tc.count2[xy]
	}
	for x := 0; x < c; x++ {
		tc.count2[x*c+z] += tc.count1[x]
	}
	tc.count1[z]++
}

// pop retires the oldest window edge of class x. Every other window edge is
// newer, so exactly count1[y] pairs (x,y) start with it (after excluding the
// popped edge itself).
func (tc *tripleCounter) pop(x int) {
	tc.count1[x]--
	c := tc.c
	for y := 0; y < c; y++ {
		tc.count2[x*c+y] -= tc.count1[y]
	}
}

// at returns the completed-triple count for class triple (x,y,z).
func (tc *tripleCounter) at(x, y, z int) uint64 {
	return tc.count3[(x*tc.c+y)*tc.c+z]
}

// run processes a chronological sequence of (time, class) pairs and leaves
// the per-triple results in count3.
func (tc *tripleCounter) run(times []temporal.Timestamp, classes []uint8, delta temporal.Timestamp) {
	start := 0
	for k := range times {
		for times[start] < times[k]-delta {
			tc.pop(int(classes[start]))
			start++
		}
		tc.push(int(classes[k]))
	}
}
