package exact

import (
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func TestTripleCounterSmall(t *testing.T) {
	// Stream of classes 0,1,0 at times 0,1,2 with δ=10: one (0,1,0) triple.
	tc := newTripleCounter(2)
	tc.run([]temporal.Timestamp{0, 1, 2}, []uint8{0, 1, 0}, 10)
	if got := tc.at(0, 1, 0); got != 1 {
		t.Fatalf("count3[0][1][0] = %d, want 1", got)
	}
	var total uint64
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			for z := 0; z < 2; z++ {
				total += tc.at(x, y, z)
			}
		}
	}
	if total != 1 {
		t.Fatalf("total triples = %d, want 1", total)
	}
}

func TestTripleCounterWindowEviction(t *testing.T) {
	// δ=5: (0@0, 0@10, 0@12) has no valid triple; (0@10,0@12,0@13) does.
	tc := newTripleCounter(1)
	tc.run([]temporal.Timestamp{0, 10, 12, 13}, []uint8{0, 0, 0, 0}, 5)
	if got := tc.at(0, 0, 0); got != 1 {
		t.Fatalf("triples = %d, want 1", got)
	}
}

func TestTripleCounterAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(60)
		nc := 1 + r.Intn(4)
		delta := temporal.Timestamp(r.Intn(20))
		times := make([]temporal.Timestamp, n)
		classes := make([]uint8, n)
		var cur temporal.Timestamp
		for i := range times {
			cur += temporal.Timestamp(r.Intn(4))
			times[i] = cur
			classes[i] = uint8(r.Intn(nc))
		}
		tc := newTripleCounter(nc)
		tc.run(times, classes, delta)
		want := make([]uint64, nc*nc*nc)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for k := j + 1; k < n; k++ {
					if times[k]-times[i] <= delta {
						want[(int(classes[i])*nc+int(classes[j]))*nc+int(classes[k])]++
					}
				}
			}
		}
		for x := 0; x < nc; x++ {
			for y := 0; y < nc; y++ {
				for z := 0; z < nc; z++ {
					if tc.at(x, y, z) != want[(x*nc+y)*nc+z] {
						t.Fatalf("trial %d: (%d,%d,%d) = %d, want %d",
							trial, x, y, z, tc.at(x, y, z), want[(x*nc+y)*nc+z])
					}
				}
			}
		}
	}
}

func TestCountPairsMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(8), 1+r.Intn(120), 1+int64(r.Intn(40)))
		delta := int64(r.Intn(25))
		want := brute.Count(g, delta)
		got := CountPairs(g, delta)
		for _, l := range motif.PairLabels() {
			if got.At(l) != want.At(l) {
				t.Fatalf("trial %d δ=%d: %v = %d, want %d", trial, delta, l, got.At(l), want.At(l))
			}
		}
		if got.CategoryTotal(motif.CategoryStar) != 0 || got.CategoryTotal(motif.CategoryTri) != 0 {
			t.Fatalf("trial %d: pair stage counted non-pair motifs", trial)
		}
	}
}

func TestCountStarsMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(10), 1+r.Intn(120), 1+int64(r.Intn(40)))
		delta := int64(r.Intn(25))
		want := brute.Count(g, delta)
		got := CountStars(g, delta)
		for _, l := range motif.StarLabels() {
			if got.At(l) != want.At(l) {
				t.Fatalf("trial %d δ=%d: %v = %d, want %d", trial, delta, l, got.At(l), want.At(l))
			}
		}
	}
}

func TestCountTrianglesMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 3+r.Intn(10), 1+r.Intn(150), 1+int64(r.Intn(40)))
		delta := int64(r.Intn(25))
		want := brute.Count(g, delta)
		got := CountTriangles(g, delta)
		for _, l := range motif.TriLabels() {
			if got.At(l) != want.At(l) {
				t.Fatalf("trial %d δ=%d: %v = %d, want %d", trial, delta, l, got.At(l), want.At(l))
			}
		}
	}
}

func TestCountMatchesFAST(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 4+r.Intn(15), 50+r.Intn(250), 60)
		delta := int64(1 + r.Intn(30))
		want := fast.Count(g, delta).ToMatrix()
		got := Count(g, delta)
		if !got.Equal(&want) {
			t.Fatalf("trial %d: EX and FAST disagree at %v", trial, got.Diff(&want))
		}
	}
}

func TestCountParallelExact(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 5+r.Intn(12), 100+r.Intn(300), 500)
		delta := int64(1 + r.Intn(20))
		want := Count(g, delta)
		for _, workers := range []int{1, 2, 3, 8} {
			got := CountParallel(g, delta, workers)
			if !got.Equal(&want) {
				t.Fatalf("trial %d workers=%d: diff %v", trial, workers, got.Diff(&want))
			}
		}
	}
}

func TestCountParallelTinySpan(t *testing.T) {
	// Time span too small to slab: must fall back to sequential.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	want := Count(g, 10)
	got := CountParallel(g, 10, 16)
	if !got.Equal(&want) {
		t.Fatalf("diff %v", got.Diff(&want))
	}
}

func TestCountEmpty(t *testing.T) {
	g := temporal.FromEdges(nil)
	m := Count(g, 10)
	if m.Total() != 0 {
		t.Fatalf("empty graph counted %d", m.Total())
	}
	mp := CountParallel(g, 10, 4)
	if mp.Total() != 0 {
		t.Fatalf("empty graph (parallel) counted %d", mp.Total())
	}
}
