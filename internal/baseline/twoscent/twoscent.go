// Package twoscent implements the paper's "2SCENT-Tri" baseline: temporal
// cycle enumeration after Kumar and Calders (VLDB 2018), restricted to
// 3-edge cycles — which is exactly how the paper uses it ("2SCENT can only
// detect the triangle motif M26").
//
// The original 2SCENT has a source-detection phase (a backward pass that
// builds per-root candidate intervals, accelerated with Bloom filters) and a
// constrained DFS phase. For the 3-edge scope the same structure holds: a
// closing-edge prefilter plays the source-detection role, followed by a
// two-hop constrained DFS per root edge. The simplification is documented in
// DESIGN.md; the result is exact for M26.
package twoscent

import (
	"sort"

	"hare/internal/temporal"
)

// CountCycles counts the instances of the cyclic triangle motif M26: edge
// sequences a->b, b->c, c->a in chronological order within δ.
func CountCycles(g *temporal.Graph, delta temporal.Timestamp) uint64 {
	var n uint64
	for id := 0; id < g.NumEdges(); id++ {
		root := g.Edge(temporal.EdgeID(id))
		deadline := root.Time + delta
		// Source detection: the root a must receive an edge later in the
		// window, otherwise no cycle can close. This prunes the DFS the way
		// 2SCENT's candidate intervals do.
		if !hasIncomingAfter(g, root.From, temporal.EdgeID(id), deadline) {
			continue
		}
		// Constrained DFS, depth 2: a->b (root), b->c, c->a.
		for _, h2 := range halfEdgesAfter(g.Seq(root.To), temporal.EdgeID(id)) {
			if h2.Time > deadline {
				break
			}
			if !h2.Out || h2.Other == root.From {
				continue
			}
			// Close via c's outgoing adjacency, as the DFS of the original
			// algorithm does (2SCENT carries no per-pair edge index).
			c := h2.Other
			for _, h3 := range halfEdgesAfter(g.Seq(c), h2.ID) {
				if h3.Time > deadline {
					break
				}
				if h3.Out && h3.Other == root.From { // c -> a closes the cycle
					n++
				}
			}
		}
	}
	return n
}

// hasIncomingAfter reports whether node a has an incoming edge with ID >
// after and time <= deadline.
func hasIncomingAfter(g *temporal.Graph, a temporal.NodeID, after temporal.EdgeID, deadline temporal.Timestamp) bool {
	for _, h := range halfEdgesAfter(g.Seq(a), after) {
		if h.Time > deadline {
			return false
		}
		if !h.Out {
			return true
		}
	}
	return false
}

func halfEdgesAfter(seq []temporal.HalfEdge, after temporal.EdgeID) []temporal.HalfEdge {
	i := sort.Search(len(seq), func(k int) bool { return seq[k].ID > after })
	return seq[i:]
}
