// Package twoscent implements the paper's "2SCENT-Tri" baseline: temporal
// cycle enumeration after Kumar and Calders (VLDB 2018), restricted to
// 3-edge cycles — which is exactly how the paper uses it ("2SCENT can only
// detect the triangle motif M26").
//
// The original 2SCENT has a source-detection phase (a backward pass that
// builds per-root candidate intervals, accelerated with Bloom filters) and a
// constrained DFS phase. For the 3-edge scope the same structure holds: a
// closing-edge prefilter plays the source-detection role, followed by a
// two-hop constrained DFS per root edge. The simplification is documented in
// DESIGN.md; the result is exact for M26.
package twoscent

import (
	"hare/internal/temporal"
)

// CountCycles counts the instances of the cyclic triangle motif M26: edge
// sequences a->b, b->c, c->a in chronological order within δ.
func CountCycles(g *temporal.Graph, delta temporal.Timestamp) uint64 {
	var n uint64
	for id := 0; id < g.NumEdges(); id++ {
		root := g.Edge(temporal.EdgeID(id))
		deadline := root.Time + delta
		// Source detection: the root a must receive an edge later in the
		// window, otherwise no cycle can close. This prunes the DFS the way
		// 2SCENT's candidate intervals do.
		if !hasIncomingAfter(g, root.From, temporal.EdgeID(id), deadline) {
			continue
		}
		// Constrained DFS, depth 2: a->b (root), b->c, c->a.
		s2 := g.Seq(root.To).After(temporal.EdgeID(id))
		for i := 0; i < s2.Len(); i++ {
			if s2.Time[i] > deadline {
				break
			}
			if !s2.Out[i] || s2.Other[i] == root.From {
				continue
			}
			// Close via c's outgoing adjacency, as the DFS of the original
			// algorithm does (2SCENT carries no per-pair edge index).
			s3 := g.Seq(s2.Other[i]).After(s2.ID[i])
			for k := 0; k < s3.Len(); k++ {
				if s3.Time[k] > deadline {
					break
				}
				if s3.Out[k] && s3.Other[k] == root.From { // c -> a closes the cycle
					n++
				}
			}
		}
	}
	return n
}

// hasIncomingAfter reports whether node a has an incoming edge with ID >
// after and time <= deadline.
func hasIncomingAfter(g *temporal.Graph, a temporal.NodeID, after temporal.EdgeID, deadline temporal.Timestamp) bool {
	seq := g.Seq(a).After(after)
	for i := 0; i < seq.Len(); i++ {
		if seq.Time[i] > deadline {
			return false
		}
		if !seq.Out[i] {
			return true
		}
	}
	return false
}
