package twoscent

import (
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func TestCountCyclesSimple(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	if got := CountCycles(g, 10); got != 1 {
		t.Fatalf("cycles = %d, want 1", got)
	}
	if got := CountCycles(g, 1); got != 0 {
		t.Fatalf("cycles at δ=1 = %d, want 0", got)
	}
}

func TestCountCyclesWrongOrder(t *testing.T) {
	// Structurally a cycle, but no rotation of the edges is chronological.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 2, To: 0, Time: 2}, {From: 1, To: 2, Time: 3},
	})
	if got := CountCycles(g, 10); got != 0 {
		t.Fatalf("cycles = %d, want 0", got)
	}
}

func TestCountCyclesMatchesBruteM26(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	m26 := motif.Label{Row: 2, Col: 6}
	for trial := 0; trial < 40; trial++ {
		nodes := 3 + r.Intn(10)
		edges := 1 + r.Intn(150)
		b := temporal.NewBuilder(edges)
		for i := 0; i < edges; i++ {
			u := temporal.NodeID(r.Intn(nodes))
			v := temporal.NodeID(r.Intn(nodes))
			if u == v {
				v = (v + 1) % temporal.NodeID(nodes)
			}
			_ = b.AddEdge(u, v, r.Int63n(40))
		}
		g := b.Build()
		delta := int64(r.Intn(25))
		want := brute.CountLabel(g, delta, m26)
		if got := CountCycles(g, delta); got != want {
			t.Fatalf("trial %d δ=%d: cycles = %d, want %d", trial, delta, got, want)
		}
	}
}

func TestCountCyclesEmpty(t *testing.T) {
	if got := CountCycles(temporal.FromEdges(nil), 10); got != 0 {
		t.Fatalf("cycles = %d, want 0", got)
	}
}
