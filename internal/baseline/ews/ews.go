// Package ews implements the edge–wedge sampling approximation of Wang et
// al. (CIKM 2020), the paper's "EWS" baseline for 3-node 3-edge motifs.
//
// Anchor edges are sampled with probability p. For each sampled edge the
// instances in which it is the chronologically FIRST edge are counted
// exactly by local backtracking; since every instance has exactly one first
// edge, dividing by p gives an unbiased estimate. The wedge stage samples
// the second-edge expansions with probability q and re-weights by 1/q — the
// paper's experiments use q = 1, making the wedge stage exhaustive.
package ews

import (
	"math"
	"math/rand"

	"hare/internal/baseline/bt"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Options configures the sampler.
type Options struct {
	// P is the edge-sampling probability in (0, 1] (default 0.1; the paper
	// uses 0.01 at its dataset scales).
	P float64
	// Q is the wedge-sampling probability in (0, 1] (default 1, as in the
	// paper's setup).
	Q float64
	// Seed feeds the deterministic RNG.
	Seed int64
}

func (o Options) p() float64 {
	if o.P > 0 && o.P <= 1 {
		return o.P
	}
	return 0.1
}

func (o Options) q() float64 {
	if o.Q > 0 && o.Q <= 1 {
		return o.Q
	}
	return 1
}

// sampleAnchors draws the Bernoulli(p) anchor set by geometric
// skip-sampling: the gap to the next accepted edge is geometric with
// success probability p, so one uniform draw per ACCEPTED edge replaces
// one per edge — O(pm) RNG work instead of O(m), the dominant cost at the
// paper's p = 0.01 scales. The accepted set is still an exact Bernoulli(p)
// sample in ascending edge order.
func sampleAnchors(rng *rand.Rand, m int, p float64) []temporal.EdgeID {
	sampled := make([]temporal.EdgeID, 0, int(float64(m)*p)+1)
	if p >= 1 {
		for id := 0; id < m; id++ {
			sampled = append(sampled, temporal.EdgeID(id))
		}
		return sampled
	}
	logKeep := math.Log1p(-p) // log(1-p), strictly negative for p in (0,1)
	id := -1
	for {
		// skip ~ Geometric(p): floor(log(1-U)/log(1-p)), U uniform [0,1).
		skip := int(math.Log1p(-rng.Float64()) / logKeep)
		id += 1 + skip
		if id >= m {
			return sampled
		}
		sampled = append(sampled, temporal.EdgeID(id))
	}
}

// Estimate approximates the instance counts of the given motif labels and
// reports, per label, an unbiased estimate of each estimate's sampling
// variance.
//
// The two sampling stages compose into one Bernoulli(r) thinning with
// r = p·q (an anchor contributes iff both coins land), each kept anchor
// contributing its exact first-edge match count m re-weighted by 1/r. The
// variance of such a thinned sum is (1-r)/r · Σ m² over all anchors, whose
// unbiased sample estimate is (1-r)/r² · Σ m² over the KEPT anchors — the
// value returned. At r = 1 the estimator degenerates to the exact count
// and the variance to zero.
func Estimate(g *temporal.Graph, delta temporal.Timestamp, labels []motif.Label, opts Options) (est, variance map[motif.Label]float64) {
	p, q := opts.p(), opts.q()
	r := p * q
	rng := rand.New(rand.NewSource(opts.Seed))
	sampled := sampleAnchors(rng, g.NumEdges(), p)
	// A second RNG stream decides wedge (second-edge) retention so that the
	// decision sequence is independent of the anchor draw.
	wedgeRng := rand.New(rand.NewSource(opts.Seed ^ 0x5851f42d4c957f2d))

	est = make(map[motif.Label]float64, len(labels))
	variance = make(map[motif.Label]float64, len(labels))
	varScale := (1 - r) / (r * r)
	for _, l := range labels {
		pat, ok := bt.PatternOf(l)
		if !ok {
			continue
		}
		var sum, sumSq float64
		for _, id := range sampled {
			if q < 1 && wedgeRng.Float64() >= q {
				// Wedge-sampled variant: this anchor's expansion is dropped
				// (and re-weighted by 1/q on the kept ones below).
				continue
			}
			m := float64(bt.MatchFrom(g, delta, pat, id, nil))
			sum += m
			sumSq += m * m
		}
		est[l] = sum / r
		variance[l] = varScale * sumSq
	}
	return est, variance
}

// EstimateAll approximates all 36 motif counts ("EWS" in Table III), with
// per-label variance estimates as in Estimate.
func EstimateAll(g *temporal.Graph, delta temporal.Timestamp, opts Options) (est, variance map[motif.Label]float64) {
	return Estimate(g, delta, motif.AllLabels(), opts)
}
