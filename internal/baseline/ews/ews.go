// Package ews implements the edge–wedge sampling approximation of Wang et
// al. (CIKM 2020), the paper's "EWS" baseline for 3-node 3-edge motifs.
//
// Anchor edges are sampled with probability p. For each sampled edge the
// instances in which it is the chronologically FIRST edge are counted
// exactly by local backtracking; since every instance has exactly one first
// edge, dividing by p gives an unbiased estimate. The wedge stage samples
// the second-edge expansions with probability q and re-weights by 1/q — the
// paper's experiments use q = 1, making the wedge stage exhaustive.
package ews

import (
	"math/rand"

	"hare/internal/baseline/bt"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Options configures the sampler.
type Options struct {
	// P is the edge-sampling probability in (0, 1] (default 0.1; the paper
	// uses 0.01 at its dataset scales).
	P float64
	// Q is the wedge-sampling probability in (0, 1] (default 1, as in the
	// paper's setup).
	Q float64
	// Seed feeds the deterministic RNG.
	Seed int64
}

func (o Options) p() float64 {
	if o.P > 0 && o.P <= 1 {
		return o.P
	}
	return 0.1
}

func (o Options) q() float64 {
	if o.Q > 0 && o.Q <= 1 {
		return o.Q
	}
	return 1
}

// Estimate approximates the instance counts of the given motif labels.
func Estimate(g *temporal.Graph, delta temporal.Timestamp, labels []motif.Label, opts Options) map[motif.Label]float64 {
	p, q := opts.p(), opts.q()
	rng := rand.New(rand.NewSource(opts.Seed))
	sampled := make([]temporal.EdgeID, 0, int(float64(g.NumEdges())*p)+1)
	for id := 0; id < g.NumEdges(); id++ {
		if rng.Float64() < p {
			sampled = append(sampled, temporal.EdgeID(id))
		}
	}
	// A second RNG stream decides wedge (second-edge) retention so that the
	// decision sequence is independent of the anchor draw.
	wedgeRng := rand.New(rand.NewSource(opts.Seed ^ 0x5851f42d4c957f2d))

	out := make(map[motif.Label]float64, len(labels))
	for _, l := range labels {
		pat, ok := bt.PatternOf(l)
		if !ok {
			continue
		}
		var sum float64
		for _, id := range sampled {
			if q >= 1 {
				sum += float64(bt.MatchFrom(g, delta, pat, id, nil))
				continue
			}
			// Wedge-sampled variant: keep this anchor's expansion with
			// probability q and re-weight.
			if wedgeRng.Float64() < q {
				sum += float64(bt.MatchFrom(g, delta, pat, id, nil)) / q
			}
		}
		out[l] = sum / p
	}
	return out
}

// EstimateAll approximates all 36 motif counts ("EWS" in Table III).
func EstimateAll(g *temporal.Graph, delta temporal.Timestamp, opts Options) map[motif.Label]float64 {
	return Estimate(g, delta, motif.AllLabels(), opts)
}
