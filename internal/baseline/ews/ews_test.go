package ews

import (
	"math"
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

// p=1, q=1 degenerates to the exact count: every instance is found from its
// unique first edge with weight 1 — and the variance estimate must be zero.
func TestDegenerateExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 3+r.Intn(8), 1+r.Intn(120), 40)
		delta := int64(r.Intn(25))
		want := brute.Count(g, delta)
		got, v := EstimateAll(g, delta, Options{P: 1, Q: 1})
		for _, l := range motif.AllLabels() {
			if math.Abs(got[l]-float64(want.At(l))) > 1e-9 {
				t.Fatalf("trial %d: %v = %f, want %d", trial, l, got[l], want.At(l))
			}
			if v[l] != 0 {
				t.Fatalf("trial %d: %v variance = %f at r=1, want 0", trial, l, v[l])
			}
		}
	}
}

// The skip-sampled anchor set must be a faithful Bernoulli(p) draw: an
// unbiased count of edges, all ids in range, strictly ascending.
func TestSkipSamplingIsBernoulli(t *testing.T) {
	const m, p, seeds = 400, 0.15, 300
	var total int
	for s := int64(0); s < seeds; s++ {
		rng := rand.New(rand.NewSource(s))
		sampled := sampleAnchors(rng, m, p)
		total += len(sampled)
		prev := temporal.EdgeID(-1)
		for _, id := range sampled {
			if id <= prev || int(id) >= m {
				t.Fatalf("seed %d: sample not an ascending in-range set: %v", s, sampled)
			}
			prev = id
		}
	}
	mean := float64(total) / seeds
	want := p * m
	// Binomial sd per draw is sqrt(m·p·(1-p)) ≈ 7.1; over 300 seeds the
	// standard error of the mean is ≈ 0.41, so ±1.5 is a >3σ tolerance.
	if math.Abs(mean-want) > 1.5 {
		t.Fatalf("mean sample size %.2f, want %.2f", mean, want)
	}
}

func TestUnbiasedOverSeeds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := randomGraph(r, 10, 500, 300)
	delta := int64(20)
	want := brute.Count(g, delta)
	truth := float64(want.Total())
	if truth == 0 {
		t.Skip("no instances in draw")
	}
	const seeds = 120
	var sum float64
	for s := int64(0); s < seeds; s++ {
		est, _ := EstimateAll(g, delta, Options{P: 0.3, Seed: s})
		for _, v := range est {
			sum += v
		}
	}
	mean := sum / seeds
	if rel := math.Abs(mean-truth) / truth; rel > 0.2 {
		t.Fatalf("mean estimate %.1f vs truth %.1f (rel err %.2f)", mean, truth, rel)
	}
}

// The reported per-label variance must track the empirically observed
// variance of that label's estimate across seeds — within a factor of two,
// which a wrong scale factor (e.g. a missing 1/r) would blow through. The
// comparison is per label because distinct labels share one anchor draw and
// therefore covary; their variances do not add up to the total's.
func TestVarianceTracksEmpirical(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGraph(r, 10, 500, 300)
	delta := int64(20)
	const seeds = 200
	ests := make(map[motif.Label][]float64)
	reported := make(map[motif.Label]float64)
	for s := int64(0); s < seeds; s++ {
		est, v := EstimateAll(g, delta, Options{P: 0.3, Seed: s})
		for l, e := range est {
			ests[l] = append(ests[l], e)
			reported[l] += v[l]
		}
	}
	checked := 0
	for l, xs := range ests {
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= seeds
		var empirical float64
		for _, x := range xs {
			empirical += (x - mean) * (x - mean)
		}
		empirical /= seeds - 1
		// Only labels with a stable empirical variance make a meaningful
		// comparison; rare labels are dominated by sampling noise.
		if mean < 50 || empirical == 0 {
			continue
		}
		checked++
		if ratio := reported[l] / seeds / empirical; ratio < 0.5 || ratio > 2 {
			t.Errorf("%v: reported variance %.1f vs empirical %.1f (ratio %.2f)",
				l, reported[l]/seeds, empirical, ratio)
		}
	}
	if checked == 0 {
		t.Fatal("no label had enough mass to check — regenerate the graph")
	}
}

func TestWedgeSamplingUnbiased(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 10, 400, 250)
	delta := int64(18)
	want := brute.Count(g, delta)
	truth := float64(want.Total())
	if truth == 0 {
		t.Skip("no instances in draw")
	}
	const seeds = 150
	var sum float64
	for s := int64(0); s < seeds; s++ {
		est, _ := EstimateAll(g, delta, Options{P: 0.5, Q: 0.5, Seed: s})
		for _, v := range est {
			sum += v
		}
	}
	mean := sum / seeds
	if rel := math.Abs(mean-truth) / truth; rel > 0.25 {
		t.Fatalf("mean estimate %.1f vs truth %.1f (rel err %.2f)", mean, truth, rel)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomGraph(r, 8, 200, 150)
	a, av := EstimateAll(g, 15, Options{P: 0.4, Seed: 9})
	b, bv := EstimateAll(g, 15, Options{P: 0.4, Seed: 9})
	for l, v := range a {
		if b[l] != v || av[l] != bv[l] {
			t.Fatalf("%v differs across identical runs", l)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	out, v := EstimateAll(temporal.FromEdges(nil), 10, Options{})
	for l, x := range out {
		if x != 0 || v[l] != 0 {
			t.Fatalf("%v = %f (var %f) on empty graph", l, x, v[l])
		}
	}
}
