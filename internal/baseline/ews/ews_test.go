package ews

import (
	"math"
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

// p=1, q=1 degenerates to the exact count: every instance is found from its
// unique first edge with weight 1.
func TestDegenerateExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 3+r.Intn(8), 1+r.Intn(120), 40)
		delta := int64(r.Intn(25))
		want := brute.Count(g, delta)
		got := EstimateAll(g, delta, Options{P: 1, Q: 1})
		for _, l := range motif.AllLabels() {
			if math.Abs(got[l]-float64(want.At(l))) > 1e-9 {
				t.Fatalf("trial %d: %v = %f, want %d", trial, l, got[l], want.At(l))
			}
		}
	}
}

func TestUnbiasedOverSeeds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := randomGraph(r, 10, 500, 300)
	delta := int64(20)
	want := brute.Count(g, delta)
	truth := float64(want.Total())
	if truth == 0 {
		t.Skip("no instances in draw")
	}
	const seeds = 120
	var sum float64
	for s := int64(0); s < seeds; s++ {
		est := EstimateAll(g, delta, Options{P: 0.3, Seed: s})
		for _, v := range est {
			sum += v
		}
	}
	mean := sum / seeds
	if rel := math.Abs(mean-truth) / truth; rel > 0.2 {
		t.Fatalf("mean estimate %.1f vs truth %.1f (rel err %.2f)", mean, truth, rel)
	}
}

func TestWedgeSamplingUnbiased(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 10, 400, 250)
	delta := int64(18)
	want := brute.Count(g, delta)
	truth := float64(want.Total())
	if truth == 0 {
		t.Skip("no instances in draw")
	}
	const seeds = 150
	var sum float64
	for s := int64(0); s < seeds; s++ {
		est := EstimateAll(g, delta, Options{P: 0.5, Q: 0.5, Seed: s})
		for _, v := range est {
			sum += v
		}
	}
	mean := sum / seeds
	if rel := math.Abs(mean-truth) / truth; rel > 0.25 {
		t.Fatalf("mean estimate %.1f vs truth %.1f (rel err %.2f)", mean, truth, rel)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomGraph(r, 8, 200, 150)
	a := EstimateAll(g, 15, Options{P: 0.4, Seed: 9})
	b := EstimateAll(g, 15, Options{P: 0.4, Seed: 9})
	for l, v := range a {
		if b[l] != v {
			t.Fatalf("%v differs across identical runs", l)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	out := EstimateAll(temporal.FromEdges(nil), 10, Options{})
	for l, v := range out {
		if v != 0 {
			t.Fatalf("%v = %f on empty graph", l, v)
		}
	}
}
