// Package fast implements the paper's core contribution: the FAST-Star and
// FAST-Tri exact counting algorithms (Gao et al., ICDE 2022, Algorithms 1
// and 2).
//
// Both algorithms treat every node of the temporal graph as a center node u
// and scan u's chronologically ordered edge sequence S_u. FAST-Star counts
// all 24 star and 4 pair motifs with one quadruple and one triple counter;
// FAST-Tri counts all 8 triangle motifs with a second quadruple counter.
// Both run in time linear in |E| for bounded in-window degree d^δ
// (O(d^δ·|E|) and O((d^δ)²·|E|) respectively).
//
// The hot loops iterate the graph's columnar CSR layout (temporal.Seq views)
// directly, and the per-worker Scratch replaces Algorithm 1's hash maps with
// dense epoch-versioned arrays: resetting between first-edge iterations is a
// single epoch bump, and a warmed-up Scratch makes the per-center path
// allocation free.
//
// Per-center counting is side-effect free with respect to other centers,
// which is what makes the HARE framework (package engine) embarrassingly
// parallel.
package fast

import (
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Scratch holds the reusable per-worker counters of Algorithm 1 (m_in and
// m_out), stored as dense arrays indexed by NodeID with an epoch mark per
// slot: a slot is live only when its mark equals the current epoch, so
// clearing between scans is one epoch increment instead of a map clear.
// Reusing a Scratch across centers keeps the hot loop allocation free once
// the arrays have grown to the graph's node space (Grow preallocates).
// A Scratch must not be shared between goroutines.
type Scratch struct {
	in    []uint64
	out   []uint64
	mark  []uint32
	epoch uint32
}

// NewScratch returns an empty Scratch. It grows on demand; call Grow with
// the graph's node count to preallocate and keep the hot path allocation
// free from the first center.
func NewScratch() *Scratch {
	return &Scratch{epoch: 1}
}

// Grow ensures the scratch covers node IDs in [0, n).
func (s *Scratch) Grow(n int) {
	if n <= len(s.mark) {
		return
	}
	if grown := 2 * len(s.mark); n < grown {
		n = grown
	}
	in := make([]uint64, n)
	copy(in, s.in)
	s.in = in
	out := make([]uint64, n)
	copy(out, s.out)
	s.out = out
	mark := make([]uint32, n)
	copy(mark, s.mark)
	s.mark = mark
}

// reset invalidates every slot in O(1) by advancing the epoch.
func (s *Scratch) reset() {
	s.epoch++
	if s.epoch == 0 { // wrapped: marks from 2^32 scans ago could alias
		clear(s.mark)
		s.epoch = 1
	}
}

// vals returns the live (m_in, m_out) counters for node u (zero when the
// slot is stale or out of range).
func (s *Scratch) vals(u temporal.NodeID) (cin, cout uint64) {
	if int(u) < len(s.mark) && s.mark[u] == s.epoch {
		return s.in[u], s.out[u]
	}
	return 0, 0
}

// bump increments m_out (out == true) or m_in for node u, reviving a stale
// slot first.
func (s *Scratch) bump(u temporal.NodeID, out bool) {
	if int(u) >= len(s.mark) {
		s.Grow(int(u) + 1)
	}
	if s.mark[u] != s.epoch {
		s.mark[u] = s.epoch
		s.in[u], s.out[u] = 0, 0
	}
	if out {
		s.out[u]++
	} else {
		s.in[u]++
	}
}

// CountStarPairNode runs Algorithm 1 (FAST-Star) for a single center node u,
// accumulating into counts. Every star motif centered at u and every pair
// motif seen from u's side is recorded.
func CountStarPairNode(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp,
	counts *motif.Counts, s *Scratch) {
	s.Grow(g.NumNodes())
	su := g.Seq(u)
	CountStarPairRange(su, delta, counts, s, 0, su.Len())
}

// CountStarPairRange runs the outer loop of Algorithm 1 for first-edge
// indices i in [from, to) of the sequence su. Splitting the range across
// workers is HARE's intra-node parallel mode; the union over a partition of
// [0, su.Len()) equals CountStarPairNode.
func CountStarPairRange(su temporal.Seq, delta temporal.Timestamp,
	counts *motif.Counts, s *Scratch, from, to int) {
	n := su.Len()
	if to > n-2 {
		to = n - 2
	}
	times, others, outs := su.Time, su.Other, su.Out
	for i := from; i < to; i++ {
		t1, o1 := times[i], others[i]
		d1 := motif.DirOf(outs[i])
		s.reset()
		var nIn, nOut uint64 // #e_in, #e_out: middle-edge candidates so far
		for j := i + 1; j < n; j++ {
			if times[j]-t1 > delta {
				break
			}
			o3 := others[j]
			d3 := motif.DirOf(outs[j])
			if o3 == o1 {
				cin, cout := s.vals(o1)
				counts.Pair[motif.PairIndex(d1, motif.In, d3)] += cin
				counts.Pair[motif.PairIndex(d1, motif.Out, d3)] += cout
				counts.Star[motif.StarIndex(motif.StarII, d1, motif.In, d3)] += nIn - cin
				counts.Star[motif.StarIndex(motif.StarII, d1, motif.Out, d3)] += nOut - cout
			} else {
				cin3, cout3 := s.vals(o3)
				cin1, cout1 := s.vals(o1)
				counts.Star[motif.StarIndex(motif.StarI, d1, motif.In, d3)] += cin3
				counts.Star[motif.StarIndex(motif.StarI, d1, motif.Out, d3)] += cout3
				counts.Star[motif.StarIndex(motif.StarIII, d1, motif.In, d3)] += cin1
				counts.Star[motif.StarIndex(motif.StarIII, d1, motif.Out, d3)] += cout1
			}
			if outs[j] {
				s.bump(o3, true)
				nOut++
			} else {
				s.bump(o3, false)
				nIn++
			}
		}
	}
}

// CountTriNode runs Algorithm 2 (FAST-Tri) for a single center node u,
// accumulating into tri.
//
// With dedup == false every triangle instance is recorded once per vertex
// (three isomorphic cells in total — the parallel-friendly recounting mode;
// divide by three when merging). With dedup == true only neighbors with ID
// greater than u participate, which is equivalent to the paper's sequential
// center-removal trick: every instance is recorded exactly once, from its
// smallest vertex.
func CountTriNode(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp,
	tri *motif.TriCounter, dedup bool) {
	CountTriRange(g, u, delta, tri, dedup, 0, g.Degree(u))
}

// CountTriRange runs the outer loop of Algorithm 2 for first-edge indices i
// in [from, to) of S_u (intra-node parallel mode).
func CountTriRange(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp,
	tri *motif.TriCounter, dedup bool, from, to int) {
	su := g.Seq(u)
	n := su.Len()
	if to > n-1 {
		to = n - 1
	}
	times, others, outs, ids := su.Time, su.Other, su.Out, su.ID
	for i := from; i < to; i++ {
		oi := others[i]
		if dedup && oi < u {
			continue
		}
		ti := times[i]
		di := motif.DirOf(outs[i])
		idi := ids[i]
		for j := i + 1; j < n; j++ {
			if times[j]-ti > delta {
				break
			}
			oj := others[j]
			if oj == oi {
				continue
			}
			if dedup && oj < u {
				continue
			}
			dj := motif.DirOf(outs[j])
			idj := ids[j]
			between := g.Between(oi, oj) // directions relative to v = oi
			bn := between.Len()
			if bn == 0 {
				continue
			}
			// Only edges with t_k >= t_j − δ can participate (Triangle-I
			// needs t_j − t_k ≤ δ; types II/III start at t_i ≥ t_j − δ).
			bTimes := between.Time
			minT := times[j] - delta
			lo, hi := 0, bn
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if bTimes[mid] < minT {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			bIDs, bOuts := between.ID, between.Out
			for k := lo; k < bn; k++ {
				if bTimes[k]-ti > delta {
					break // Triangle-III needs t_k − t_i ≤ δ
				}
				dk := motif.DirOf(bOuts[k])
				switch {
				case bIDs[k] < idi:
					tri[motif.TriIndex(motif.TriI, di, dj, dk)]++
				case bIDs[k] < idj:
					tri[motif.TriIndex(motif.TriII, di, dj, dk)]++
				default:
					tri[motif.TriIndex(motif.TriIII, di, dj, dk)]++
				}
			}
		}
	}
}

// Count runs both FAST algorithms sequentially over all centers, using the
// dedup mode for triangles (TriMultiplicity == 1). This is the
// single-threaded reference entry point ("FAST" in the paper's Table III).
func Count(g *temporal.Graph, delta temporal.Timestamp) *motif.Counts {
	counts := &motif.Counts{TriMultiplicity: 1}
	s := NewScratch()
	s.Grow(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		CountStarPairNode(g, temporal.NodeID(u), delta, counts, s)
		CountTriNode(g, temporal.NodeID(u), delta, &counts.Tri, true)
	}
	return counts
}

// CountRecount is Count with the recounting triangle mode (TriMultiplicity
// == 3): slower for a single thread but dependency free, matching what each
// HARE worker computes.
func CountRecount(g *temporal.Graph, delta temporal.Timestamp) *motif.Counts {
	counts := &motif.Counts{TriMultiplicity: 3}
	s := NewScratch()
	s.Grow(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		CountStarPairNode(g, temporal.NodeID(u), delta, counts, s)
		CountTriNode(g, temporal.NodeID(u), delta, &counts.Tri, false)
	}
	return counts
}

// CountStarPair runs only FAST-Star over all centers ("FAST-Pair" in the
// paper reports the pair-motif subset of this run).
func CountStarPair(g *temporal.Graph, delta temporal.Timestamp) *motif.Counts {
	counts := &motif.Counts{TriMultiplicity: 1}
	s := NewScratch()
	s.Grow(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		CountStarPairNode(g, temporal.NodeID(u), delta, counts, s)
	}
	return counts
}

// CountTri runs only FAST-Tri over all centers with sequential dedup
// ("FAST-Tri" in the paper's Table III).
func CountTri(g *temporal.Graph, delta temporal.Timestamp) *motif.TriCounter {
	var tri motif.TriCounter
	for u := 0; u < g.NumNodes(); u++ {
		CountTriNode(g, temporal.NodeID(u), delta, &tri, true)
	}
	return &tri
}

// NodeProfile returns the motif counts in which node u participates as the
// counting center: stars centered at u, pairs seen from u's side, and
// triangles containing u (each triangle once). Useful as a per-node
// structural feature vector (see examples/motiffeatures).
func NodeProfile(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp) motif.Matrix {
	counts := &motif.Counts{TriMultiplicity: 1}
	CountStarPairNode(g, u, delta, counts, NewScratch())
	CountTriNode(g, u, delta, &counts.Tri, false) // u-centered view of each triangle, once
	// The pair counter here holds u's one-sided view; both complementary
	// cells of a pair label must contribute.
	m := counts.ToMatrix()
	for _, l := range motif.PairLabels() {
		cells, _ := motif.PairCells(l)
		m.Set(l, counts.Pair[cells[0]]+counts.Pair[cells[1]])
	}
	return m
}
