// Package fast implements the paper's core contribution: the FAST-Star and
// FAST-Tri exact counting algorithms (Gao et al., ICDE 2022, Algorithms 1
// and 2).
//
// Both algorithms treat every node of the temporal graph as a center node u
// and scan u's chronologically ordered edge sequence S_u. FAST-Star counts
// all 24 star and 4 pair motifs with one quadruple and one triple counter;
// FAST-Tri counts all 8 triangle motifs with a second quadruple counter.
// Both run in time linear in |E| for bounded in-window degree d^δ
// (O(d^δ·|E|) and O((d^δ)²·|E|) respectively).
//
// Per-center counting is side-effect free with respect to other centers,
// which is what makes the HARE framework (package engine) embarrassingly
// parallel.
package fast

import (
	"sort"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// Scratch holds the reusable per-worker hash maps of Algorithm 1 (m_in and
// m_out). Reusing a Scratch across centers keeps the hot loop allocation
// free. A Scratch must not be shared between goroutines.
type Scratch struct {
	in  map[temporal.NodeID]uint64
	out map[temporal.NodeID]uint64
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch {
	return &Scratch{
		in:  make(map[temporal.NodeID]uint64),
		out: make(map[temporal.NodeID]uint64),
	}
}

func (s *Scratch) reset() {
	clear(s.in)
	clear(s.out)
}

// CountStarPairNode runs Algorithm 1 (FAST-Star) for a single center node u,
// accumulating into counts. Every star motif centered at u and every pair
// motif seen from u's side is recorded.
func CountStarPairNode(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp,
	counts *motif.Counts, s *Scratch) {
	su := g.Seq(u)
	CountStarPairRange(su, delta, counts, s, 0, len(su))
}

// CountStarPairRange runs the outer loop of Algorithm 1 for first-edge
// indices i in [from, to) of the sequence su. Splitting the range across
// workers is HARE's intra-node parallel mode; the union over a partition of
// [0, len(su)) equals CountStarPairNode.
func CountStarPairRange(su []temporal.HalfEdge, delta temporal.Timestamp,
	counts *motif.Counts, s *Scratch, from, to int) {
	if to > len(su)-2 {
		to = len(su) - 2
	}
	for i := from; i < to; i++ {
		e1 := su[i]
		d1 := motif.Dir(e1.Dir())
		s.reset()
		var nIn, nOut uint64 // #e_in, #e_out: middle-edge candidates so far
		for j := i + 1; j < len(su); j++ {
			e3 := su[j]
			if e3.Time-e1.Time > delta {
				break
			}
			d3 := motif.Dir(e3.Dir())
			if e3.Other == e1.Other {
				cin, cout := s.in[e1.Other], s.out[e1.Other]
				counts.Pair[motif.PairIndex(d1, motif.In, d3)] += cin
				counts.Pair[motif.PairIndex(d1, motif.Out, d3)] += cout
				counts.Star[motif.StarIndex(motif.StarII, d1, motif.In, d3)] += nIn - cin
				counts.Star[motif.StarIndex(motif.StarII, d1, motif.Out, d3)] += nOut - cout
			} else {
				counts.Star[motif.StarIndex(motif.StarI, d1, motif.In, d3)] += s.in[e3.Other]
				counts.Star[motif.StarIndex(motif.StarI, d1, motif.Out, d3)] += s.out[e3.Other]
				counts.Star[motif.StarIndex(motif.StarIII, d1, motif.In, d3)] += s.in[e1.Other]
				counts.Star[motif.StarIndex(motif.StarIII, d1, motif.Out, d3)] += s.out[e1.Other]
			}
			if e3.Out {
				s.out[e3.Other]++
				nOut++
			} else {
				s.in[e3.Other]++
				nIn++
			}
		}
	}
}

// CountTriNode runs Algorithm 2 (FAST-Tri) for a single center node u,
// accumulating into tri.
//
// With dedup == false every triangle instance is recorded once per vertex
// (three isomorphic cells in total — the parallel-friendly recounting mode;
// divide by three when merging). With dedup == true only neighbors with ID
// greater than u participate, which is equivalent to the paper's sequential
// center-removal trick: every instance is recorded exactly once, from its
// smallest vertex.
func CountTriNode(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp,
	tri *motif.TriCounter, dedup bool) {
	su := g.Seq(u)
	CountTriRange(g, u, delta, tri, dedup, 0, len(su))
}

// CountTriRange runs the outer loop of Algorithm 2 for first-edge indices i
// in [from, to) of S_u (intra-node parallel mode).
func CountTriRange(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp,
	tri *motif.TriCounter, dedup bool, from, to int) {
	su := g.Seq(u)
	if to > len(su)-1 {
		to = len(su) - 1
	}
	for i := from; i < to; i++ {
		ei := su[i]
		if dedup && ei.Other < u {
			continue
		}
		di := motif.Dir(ei.Dir())
		for j := i + 1; j < len(su); j++ {
			ej := su[j]
			if ej.Time-ei.Time > delta {
				break
			}
			if ej.Other == ei.Other {
				continue
			}
			if dedup && ej.Other < u {
				continue
			}
			dj := motif.Dir(ej.Dir())
			between := g.Between(ei.Other, ej.Other) // directions relative to v = ei.Other
			if len(between) == 0 {
				continue
			}
			// Only edges with t_k >= t_j − δ can participate (Triangle-I
			// needs t_j − t_k ≤ δ; types II/III start at t_i ≥ t_j − δ).
			lo := sort.Search(len(between), func(k int) bool {
				return between[k].Time >= ej.Time-delta
			})
			for _, ek := range between[lo:] {
				if ek.Time > ei.Time+delta {
					break // Triangle-III needs t_k − t_i ≤ δ
				}
				dk := motif.Dir(ek.Dir())
				switch {
				case ek.ID < ei.ID:
					tri[motif.TriIndex(motif.TriI, di, dj, dk)]++
				case ek.ID < ej.ID:
					tri[motif.TriIndex(motif.TriII, di, dj, dk)]++
				default:
					tri[motif.TriIndex(motif.TriIII, di, dj, dk)]++
				}
			}
		}
	}
}

// Count runs both FAST algorithms sequentially over all centers, using the
// dedup mode for triangles (TriMultiplicity == 1). This is the
// single-threaded reference entry point ("FAST" in the paper's Table III).
func Count(g *temporal.Graph, delta temporal.Timestamp) *motif.Counts {
	counts := &motif.Counts{TriMultiplicity: 1}
	s := NewScratch()
	for u := 0; u < g.NumNodes(); u++ {
		CountStarPairNode(g, temporal.NodeID(u), delta, counts, s)
		CountTriNode(g, temporal.NodeID(u), delta, &counts.Tri, true)
	}
	return counts
}

// CountRecount is Count with the recounting triangle mode (TriMultiplicity
// == 3): slower for a single thread but dependency free, matching what each
// HARE worker computes.
func CountRecount(g *temporal.Graph, delta temporal.Timestamp) *motif.Counts {
	counts := &motif.Counts{TriMultiplicity: 3}
	s := NewScratch()
	for u := 0; u < g.NumNodes(); u++ {
		CountStarPairNode(g, temporal.NodeID(u), delta, counts, s)
		CountTriNode(g, temporal.NodeID(u), delta, &counts.Tri, false)
	}
	return counts
}

// CountStarPair runs only FAST-Star over all centers ("FAST-Pair" in the
// paper reports the pair-motif subset of this run).
func CountStarPair(g *temporal.Graph, delta temporal.Timestamp) *motif.Counts {
	counts := &motif.Counts{TriMultiplicity: 1}
	s := NewScratch()
	for u := 0; u < g.NumNodes(); u++ {
		CountStarPairNode(g, temporal.NodeID(u), delta, counts, s)
	}
	return counts
}

// CountTri runs only FAST-Tri over all centers with sequential dedup
// ("FAST-Tri" in the paper's Table III).
func CountTri(g *temporal.Graph, delta temporal.Timestamp) *motif.TriCounter {
	var tri motif.TriCounter
	for u := 0; u < g.NumNodes(); u++ {
		CountTriNode(g, temporal.NodeID(u), delta, &tri, true)
	}
	return &tri
}

// NodeProfile returns the motif counts in which node u participates as the
// counting center: stars centered at u, pairs seen from u's side, and
// triangles containing u (each triangle once). Useful as a per-node
// structural feature vector (see examples/motiffeatures).
func NodeProfile(g *temporal.Graph, u temporal.NodeID, delta temporal.Timestamp) motif.Matrix {
	counts := &motif.Counts{TriMultiplicity: 1}
	CountStarPairNode(g, u, delta, counts, NewScratch())
	CountTriNode(g, u, delta, &counts.Tri, false) // u-centered view of each triangle, once
	// The pair counter here holds u's one-sided view; both complementary
	// cells of a pair label must contribute.
	m := counts.ToMatrix()
	for _, l := range motif.PairLabels() {
		cells, _ := motif.PairCells(l)
		m.Set(l, counts.Pair[cells[0]]+counts.Pair[cells[1]])
	}
	return m
}
