package fast

import (
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// fig1Graph is the paper's Fig. 1 toy graph (a=0,...,e=4).
func fig1Graph() *temporal.Graph {
	return temporal.FromEdges([]temporal.Edge{
		{From: 4, To: 3, Time: 1},
		{From: 0, To: 2, Time: 4},
		{From: 4, To: 2, Time: 6},
		{From: 0, To: 2, Time: 8},
		{From: 3, To: 0, Time: 9},
		{From: 3, To: 2, Time: 10},
		{From: 0, To: 1, Time: 11},
		{From: 3, To: 4, Time: 14},
		{From: 0, To: 2, Time: 15},
		{From: 2, To: 3, Time: 17},
		{From: 4, To: 3, Time: 18},
		{From: 3, To: 4, Time: 21},
	})
}

func randomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func TestFig1WalkThroughStarPair(t *testing.T) {
	g := fig1Graph()
	counts := &motif.Counts{TriMultiplicity: 1}
	s := NewScratch()
	// Center node a=0 with δ=10s, as worked through in Sec. IV-A.3: the
	// paper's narrative records Star[III,o,o,in], Star[III,o,o,o],
	// Star[II,o,in,o], Star[II,o,o,o] — one instance each.
	CountStarPairNode(g, 0, 10, counts, s)
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"Star[III,o,o,in]", counts.Star.At(motif.StarIII, motif.Out, motif.Out, motif.In), 1},
		{"Star[III,o,o,o]", counts.Star.At(motif.StarIII, motif.Out, motif.Out, motif.Out), 1},
		{"Star[II,o,in,o]", counts.Star.At(motif.StarII, motif.Out, motif.In, motif.Out), 1},
		{"Star[II,o,o,o]", counts.Star.At(motif.StarII, motif.Out, motif.Out, motif.Out), 1},
	}
	var total uint64
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
		total += c.got
	}
	if st := counts.Star.Total(); st != total {
		t.Errorf("star total for center a = %d, want %d (no extra motifs)", st, total)
	}
	if pt := counts.Pair.Total(); pt != 0 {
		t.Errorf("pair total for center a = %d, want 0", pt)
	}
}

func TestFig1WalkThroughTriangle(t *testing.T) {
	g := fig1Graph()
	var tri motif.TriCounter
	// Center node e=4 with δ=10s, as worked through in Sec. IV-B.2:
	// Tri[III,o,o,o] += 1, then one Triangle-II hit for the instance
	// <(e,c,6s),(d,c,10s),(d,e,14s)>. The paper's text writes that second
	// cell as Tri[II,o,in,o], but that contradicts the paper itself: the
	// introduction names this instance M46, its dir_k definition makes
	// (d->c) "in" w.r.t. v=c, and its Fig. 8 lists Tri[II,o,in,in] under
	// M46 (Tri[II,o,in,o] belongs to the cyclic M26). We follow Fig. 8.
	CountTriNode(g, 4, 10, &tri, false)
	if got := tri.At(motif.TriIII, motif.Out, motif.Out, motif.Out); got != 1 {
		t.Errorf("Tri[III,o,o,o] = %d, want 1", got)
	}
	if got := tri.At(motif.TriII, motif.Out, motif.In, motif.In); got != 1 {
		t.Errorf("Tri[II,o,in,in] = %d, want 1", got)
	}
	if tri.Total() != 2 {
		t.Errorf("tri total for center e = %d, want 2", tri.Total())
	}
}

func TestFig1IntroInstances(t *testing.T) {
	// The introduction names three instances at δ=10s: one M63, one M46,
	// one M65. Verify they appear in the full count.
	g := fig1Graph()
	m := Count(g, 10).ToMatrix()
	if m.At(motif.Label{Row: 6, Col: 3}) < 1 {
		t.Error("M63 missing")
	}
	if m.At(motif.Label{Row: 4, Col: 6}) < 1 {
		t.Error("M46 missing")
	}
	if m.At(motif.Label{Row: 6, Col: 5}) < 1 {
		t.Error("M65 missing")
	}
}

func TestFig1MatchesBrute(t *testing.T) {
	g := fig1Graph()
	for _, delta := range []int64{0, 1, 5, 10, 20, 1000} {
		want := brute.Count(g, delta)
		got := Count(g, delta).ToMatrix()
		if !got.Equal(&want) {
			t.Errorf("δ=%d: FAST differs from brute at %v", delta, got.Diff(&want))
		}
	}
}

func TestRandomGraphsMatchBrute(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nodes := 2 + r.Intn(12)
		edges := 1 + r.Intn(120)
		span := int64(1 + r.Intn(60))
		delta := int64(r.Intn(40))
		g := randomGraph(r, nodes, edges, span)
		want := brute.Count(g, delta)
		got := Count(g, delta).ToMatrix()
		if !got.Equal(&want) {
			t.Fatalf("trial %d (n=%d e=%d span=%d δ=%d): diff %v\nfast:\n%v\nbrute:\n%v",
				trial, nodes, edges, span, delta, got.Diff(&want), &got, &want)
		}
	}
}

// Heavy timestamp collisions exercise the EdgeID tie-breaking rules.
func TestTieHeavyGraphsMatchBrute(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 2+r.Intn(8), 1+r.Intn(100), 1+int64(r.Intn(4)))
		delta := int64(r.Intn(5))
		want := brute.Count(g, delta)
		got := Count(g, delta).ToMatrix()
		if !got.Equal(&want) {
			t.Fatalf("trial %d: diff %v", trial, got.Diff(&want))
		}
	}
}

func TestRecountEqualsDedup(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 3+r.Intn(10), 1+r.Intn(150), 40)
		delta := int64(1 + r.Intn(30))
		a := Count(g, delta).ToMatrix()
		b := CountRecount(g, delta).ToMatrix()
		if !a.Equal(&b) {
			t.Fatalf("trial %d: dedup and recount disagree at %v", trial, a.Diff(&b))
		}
	}
}

func TestPairCellsComplementaryEqual(t *testing.T) {
	// Each pair instance is seen once from each endpoint, so complementary
	// counter cells must be exactly equal.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 2+r.Intn(6), 1+r.Intn(120), 30)
		c := CountStarPair(g, int64(1+r.Intn(20)))
		for _, l := range motif.PairLabels() {
			cells, _ := motif.PairCells(l)
			if c.Pair[cells[0]] != c.Pair[cells[1]] {
				t.Fatalf("trial %d: %v cells unequal: %d vs %d",
					trial, l, c.Pair[cells[0]], c.Pair[cells[1]])
			}
		}
	}
}

func TestTriangleCellsEqualAcrossTypes(t *testing.T) {
	// In recount mode every instance lands once in each of its three
	// isomorphic cells, so the three cells of a label hold equal totals.
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 3+r.Intn(8), 1+r.Intn(150), 30)
		c := CountRecount(g, int64(1+r.Intn(25)))
		for _, l := range motif.TriLabels() {
			cells, _ := motif.TriCells(l)
			a, b, cc := c.Tri[cells[0]], c.Tri[cells[1]], c.Tri[cells[2]]
			if a != b || b != cc {
				t.Fatalf("trial %d: %v cells unequal: %d/%d/%d", trial, l, a, b, cc)
			}
		}
	}
}

func TestCountRangePartition(t *testing.T) {
	// Splitting the first-edge range across arbitrary cut points must give
	// the same counts as the whole-node call (the intra-node invariant).
	r := rand.New(rand.NewSource(21))
	g := randomGraph(r, 6, 300, 50)
	delta := int64(15)
	var hub temporal.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(temporal.NodeID(u)) > g.Degree(hub) {
			hub = temporal.NodeID(u)
		}
	}
	whole := &motif.Counts{TriMultiplicity: 3}
	CountStarPairNode(g, hub, delta, whole, NewScratch())
	CountTriNode(g, hub, delta, &whole.Tri, false)

	su := g.Seq(hub)
	for trial := 0; trial < 10; trial++ {
		cut1 := r.Intn(su.Len() + 1)
		cut2 := cut1 + r.Intn(su.Len()+1-cut1)
		parts := &motif.Counts{TriMultiplicity: 3}
		s := NewScratch()
		for _, rg := range [][2]int{{0, cut1}, {cut1, cut2}, {cut2, su.Len()}} {
			CountStarPairRange(su, delta, parts, s, rg[0], rg[1])
			CountTriRange(g, hub, delta, &parts.Tri, false, rg[0], rg[1])
		}
		if parts.Star != whole.Star || parts.Pair != whole.Pair || parts.Tri != whole.Tri {
			t.Fatalf("trial %d: partition (0,%d,%d) differs from whole", trial, cut1, cut2)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := temporal.FromEdges(nil)
	if got := func() uint64 { m := Count(empty, 100).ToMatrix(); return m.Total() }(); got != 0 {
		t.Fatalf("empty graph counted %d motifs", got)
	}
	two := temporal.FromEdges([]temporal.Edge{{From: 0, To: 1, Time: 0}, {From: 1, To: 0, Time: 1}})
	if got := func() uint64 { m := Count(two, 100).ToMatrix(); return m.Total() }(); got != 0 {
		t.Fatalf("2-edge graph counted %d motifs", got)
	}
	// δ = 0 with distinct timestamps: nothing fits in a zero window.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 0}, {From: 0, To: 1, Time: 1}, {From: 0, To: 1, Time: 2},
	})
	if got := func() uint64 { m := Count(g, 0).ToMatrix(); return m.Total() }(); got != 0 {
		t.Fatalf("δ=0 counted %d motifs", got)
	}
	// δ = 0 with identical timestamps: the triple is a valid instance.
	tie := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 5}, {From: 0, To: 1, Time: 5}, {From: 0, To: 1, Time: 5},
	})
	m := Count(tie, 0).ToMatrix()
	if m.Total() != 1 || m.At(motif.Label{Row: 5, Col: 5}) != 1 {
		t.Fatalf("tied-δ=0 matrix wrong: %v", &m)
	}
}

func TestNodeProfile(t *testing.T) {
	g := fig1Graph()
	// Node a=0: from the Fig. 1 walk-through it centers 4 star instances
	// and no pair; it participates in triangles (e.g. the M25 instance).
	p := NodeProfile(g, 0, 10)
	if got := p.CategoryTotal(motif.CategoryStar); got != 4 {
		t.Errorf("star profile = %d, want 4", got)
	}
	if got := p.CategoryTotal(motif.CategoryPair); got != 0 {
		t.Errorf("pair profile = %d, want 0", got)
	}
	if got := p.At(motif.Label{Row: 2, Col: 5}); got != 1 {
		t.Errorf("M25 participation = %d, want 1", got)
	}
	// Node e=4 participates in the M65 pair instance (d<->e) — the profile
	// must report it once even though only one side's counter is filled.
	pe := NodeProfile(g, 4, 10)
	if got := pe.At(motif.Label{Row: 6, Col: 5}); got != 1 {
		t.Errorf("e's M65 participation = %d, want 1", got)
	}
}
