package fast

import (
	"math/rand"
	"testing"

	"hare/internal/motif"
	"hare/internal/temporal"
)

// The per-center hot path must be allocation free in steady state: once the
// Scratch has grown to the graph's node space, counting a center touches
// only preallocated columns and dense counters. This is the regression guard
// for the columnar-CSR / dense-scratch rework.
func TestSteadyStateZeroAllocsPerCenter(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := randomGraph(r, 40, 3000, 200)
	const delta = 60
	s := NewScratch()
	s.Grow(g.NumNodes())
	counts := &motif.Counts{TriMultiplicity: 3}
	pass := func() {
		for u := 0; u < g.NumNodes(); u++ {
			CountStarPairNode(g, temporal.NodeID(u), delta, counts, s)
			CountTriNode(g, temporal.NodeID(u), delta, &counts.Tri, false)
		}
	}
	// AllocsPerRun performs its own warm-up call before measuring, which
	// absorbs any one-time growth.
	if avg := testing.AllocsPerRun(5, pass); avg != 0 {
		t.Fatalf("steady-state pass allocates %.1f times, want 0", avg)
	}
}

// Scratch state must not leak between centers even across epoch wraps: the
// epoch counter reset path has to clear the mark array.
func TestScratchEpochWrap(t *testing.T) {
	s := NewScratch()
	s.Grow(4)
	s.bump(2, true)
	if _, cout := s.vals(2); cout != 1 {
		t.Fatal("bump not visible")
	}
	// Force a wrap: set the epoch to its maximum and reset twice.
	s.epoch = ^uint32(0) - 1
	s.bump(3, false)
	s.reset() // -> MaxUint32
	s.reset() // wraps -> clears marks, epoch 1
	if cin, cout := s.vals(3); cin != 0 || cout != 0 {
		t.Fatalf("stale counters survived the epoch wrap: (%d,%d)", cin, cout)
	}
	s.bump(3, false)
	if cin, _ := s.vals(3); cin != 1 {
		t.Fatal("bump after wrap not visible")
	}
}
