package server_test

// End-to-end tests of the live-dataset tier over a real HTTP server: text
// batches POSTed to /v1/ingest, /v1/count answers bit-identical to direct
// hare.Count over the same edges, the version-keyed cache invalidating on
// append, and /v1/watch streaming a planted anomaly's alert (and staying
// silent on the null stream). The CI race job runs this file under -race.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hare"
	"hare/internal/temporal"
)

// liveTestServer registers one live dataset on a real HTTP server.
func liveTestServer(t *testing.T, name string, delta hare.Timestamp) (*hare.Server, *hare.LiveDataset, *httptest.Server) {
	t.Helper()
	srv, err := hare.NewServer(hare.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := hare.NewLiveDataset(name, hare.LiveOptions{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterLive(d, "e2e live dataset"); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, d, hs
}

// ingestText POSTs one text batch and decodes the response.
func ingestText(t *testing.T, hs *httptest.Server, dataset, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/ingest?dataset="+dataset, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, data)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func edgesToText(edges []temporal.Edge) string {
	var sb strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&sb, "%d %d %d\n", e.From, e.To, e.Time)
	}
	return sb.String()
}

func TestLiveEndToEndBitIdentity(t *testing.T) {
	// Replay a generated corpus into a live dataset in uneven text batches,
	// then prove the served cumulative counts are bit-identical to direct
	// hare.Count over the same edges — the invariant every tier holds.
	g := e2eGraph(t)
	edges := g.Edges()
	_, d, hs := liveTestServer(t, "stream", 600)

	batch := 0
	for lo := 0; lo < len(edges); batch++ {
		hi := lo + 997 + 401*(batch%3) // uneven on purpose
		if hi > len(edges) {
			hi = len(edges)
		}
		res := ingestText(t, hs, "stream", edgesToText(edges[lo:hi]))
		if int(res["accepted"].(float64)) != hi-lo {
			t.Fatalf("batch %d: accepted %v, want %d", batch, res["accepted"], hi-lo)
		}
		if int(res["version"].(float64)) != batch+2 {
			t.Fatalf("batch %d: version %v, want %d", batch, res["version"], batch+2)
		}
		lo = hi
	}
	if got := d.Version(); got != uint64(batch)+1 {
		t.Fatalf("final version = %d, want %d", got, batch+1)
	}

	want, err := hare.Count(g, 600)
	if err != nil {
		t.Fatal(err)
	}

	// (a) the online stream counter's cumulative matrix;
	online := d.Matrix()
	if !online.Equal(&want.Matrix) {
		t.Fatalf("online cumulative counts diverge from hare.Count: %v", online.Diff(&want.Matrix))
	}

	// (b) the served answer, computed by the batch engine over the live
	// dataset's graph snapshot.
	resp, err := http.Get(hs.URL + "/v1/count?dataset=stream&delta=600")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count: %d: %s", resp.StatusCode, data)
	}
	var body e2eResponse
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	for _, l := range hare.AllLabels() {
		if body.Matrix[l.String()] != want.Matrix.At(l) {
			t.Fatalf("served %s = %d, want %d", l, body.Matrix[l.String()], want.Matrix.At(l))
		}
	}
	if body.Total != want.Matrix.Total() {
		t.Fatalf("served total = %d, want %d", body.Total, want.Matrix.Total())
	}
}

func TestLiveCacheInvalidationOnIngest(t *testing.T) {
	srv, _, hs := liveTestServer(t, "feed", 600)

	fetch := func() e2eResponse {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/count?dataset=feed&delta=600")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("count: %d: %s", resp.StatusCode, data)
		}
		var body e2eResponse
		if err := json.Unmarshal(data, &body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	// Seed: a chain within δ — M11..-class motifs exist.
	ingestText(t, hs, "feed", "0 1 10\n1 2 20\n2 3 30\n")

	first := fetch()
	if first.Cached {
		t.Fatal("first query served from cache")
	}
	second := fetch()
	if !second.Cached {
		t.Fatal("repeat query at the same version missed the cache")
	}
	_, missesBefore, _, _ := srv.CacheStats()

	// Append: the version advances, so the cached v2 answer must become
	// unreachable — a fresh compute (miss) with the new edges included.
	ingestText(t, hs, "feed", "3 4 40\n4 1 45\n")
	third := fetch()
	if third.Cached || third.Coalesced {
		t.Fatal("post-ingest query served a stale cached answer")
	}
	_, missesAfter, _, _ := srv.CacheStats()
	if missesAfter != missesBefore+1 {
		t.Fatalf("misses %d -> %d, want exactly one new miss", missesBefore, missesAfter)
	}
	if third.Edges != 5 {
		t.Fatalf("post-ingest answer sees %d edges, want 5", third.Edges)
	}

	// The fresh answer is the batch count over all five edges.
	want, err := hare.Count(temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 10}, {From: 1, To: 2, Time: 20}, {From: 2, To: 3, Time: 30},
		{From: 3, To: 4, Time: 40}, {From: 4, To: 1, Time: 45},
	}), 600)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range hare.AllLabels() {
		if third.Matrix[l.String()] != want.Matrix.At(l) {
			t.Fatalf("post-ingest %s = %d, want %d", l, third.Matrix[l.String()], want.Matrix.At(l))
		}
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  string
}

// watchStream opens /v1/watch and feeds parsed events to a channel until
// the response body closes.
func watchStream(t *testing.T, hs *httptest.Server, query string) (<-chan sseEvent, func()) {
	t.Helper()
	resp, err := http.Get(hs.URL + "/v1/watch?" + query)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch: %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content-type = %q", ct)
	}
	events := make(chan sseEvent, 64)
	go func() {
		defer close(events)
		scan := bufio.NewScanner(resp.Body)
		var cur sseEvent
		for scan.Scan() {
			line := scan.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if cur.event != "" || cur.data != "" {
					events <- cur
					cur = sseEvent{}
				}
			}
		}
	}()
	return events, func() { resp.Body.Close() }
}

func nextEvent(t *testing.T, events <-chan sseEvent, what string) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatalf("watch stream closed waiting for %s", what)
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
	panic("unreachable")
}

func TestWatchEmitsAlertOnPlantedAnomaly(t *testing.T) {
	_, _, hs := liveTestServer(t, "msgs", 600)
	events, stop := watchStream(t, hs, "dataset=msgs")
	defer stop()

	hello := nextEvent(t, events, "hello event")
	if hello.event != "hello" || !strings.Contains(hello.data, `"dataset":"msgs"`) {
		t.Fatalf("first event = %+v, want hello", hello)
	}

	// Quiet baseline: far-apart single messages, no in-window motifs —
	// enough readings to warm the trailing ensemble.
	for i := 0; i < 6; i++ {
		ingestText(t, hs, "msgs", fmt.Sprintf("%d %d %d\n", i, i+1, 10000*i))
	}

	// The planted attack (the examples/anomaly construction): tight a⇄b
	// ping-pong bursts — a->b, b->a, a->b seconds apart — whose motif
	// fingerprint is M65.
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		a, b := 100+2*i, 101+2*i
		base := 100000 + i
		fmt.Fprintf(&sb, "%d %d %d\n%d %d %d\n%d %d %d\n", a, b, base, b, a, base+7, a, b, base+15)
	}
	// Ingest order must be chronological across the interleaved bursts.
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	type tl struct {
		line string
		t    int
	}
	tls := make([]tl, len(lines))
	for i, l := range lines {
		var a, b, ts int
		fmt.Sscanf(l, "%d %d %d", &a, &b, &ts)
		tls[i] = tl{l, ts}
	}
	for i := 1; i < len(tls); i++ {
		for j := i; j > 0 && tls[j].t < tls[j-1].t; j-- {
			tls[j], tls[j-1] = tls[j-1], tls[j]
		}
	}
	var ordered strings.Builder
	for _, e := range tls {
		ordered.WriteString(e.line + "\n")
	}
	res := ingestText(t, hs, "msgs", ordered.String())
	if res["alerts"] == nil {
		t.Fatal("planted anomaly batch reported no alerts")
	}

	// The SSE stream delivers the alert: motif M65, infinite z (flat
	// baseline), the batch's version.
	var alert map[string]any
	for {
		ev := nextEvent(t, events, "M65 alert")
		if ev.event != "alert" {
			t.Fatalf("unexpected event %+v", ev)
		}
		if err := json.Unmarshal([]byte(ev.data), &alert); err != nil {
			t.Fatalf("alert data %q: %v", ev.data, err)
		}
		if alert["motif"] == "M65" {
			break
		}
	}
	if alert["z_inf"] != "+" {
		t.Fatalf("alert z_inf = %v, want + (flat baseline)", alert["z_inf"])
	}
	if v, _ := alert["version"].(float64); int(v) != int(res["version"].(float64)) {
		t.Fatalf("alert version %v != ingest version %v", alert["version"], res["version"])
	}
	if w, _ := alert["window"].(float64); w < 8 {
		t.Fatalf("alert window = %v, want >= 8 ping-pong instances", alert["window"])
	}
}

func TestWatchSilentOnNullStream(t *testing.T) {
	_, d, hs := liveTestServer(t, "null", 600)
	events, stop := watchStream(t, hs, "dataset=null")
	defer stop()
	if ev := nextEvent(t, events, "hello event"); ev.event != "hello" {
		t.Fatalf("first event = %+v", ev)
	}
	// Steady organic traffic: one fresh-pair message per batch. Window
	// counts never reach the alert floor, so the stream stays silent.
	for i := 0; i < 30; i++ {
		ingestText(t, hs, "null", fmt.Sprintf("%d %d %d\n", 2*i, 2*i+1, 100*i))
	}
	if st := d.Stats(); st.Alerts != 0 {
		t.Fatalf("null stream published %d alerts", st.Alerts)
	}
	select {
	case ev, ok := <-events:
		if ok {
			t.Fatalf("null stream delivered event %+v", ev)
		}
	case <-time.After(200 * time.Millisecond):
		// silence — as it should be
	}
}

func TestWatchMotifAndZFilters(t *testing.T) {
	_, d, hs := liveTestServer(t, "f", 600)
	// Two filtered subscribers to one dataset: one pinned to a motif that
	// never fires (M11), one to the anomaly's fingerprint (M65) with an
	// enormous finite z floor — which an infinite-z alert must still pass.
	other, stopOther := watchStream(t, hs, "dataset=f&motif=M11")
	defer stopOther()
	m65, stop65 := watchStream(t, hs, "dataset=f&motif=M65&z=1000000")
	defer stop65()
	if ev := nextEvent(t, other, "hello event"); ev.event != "hello" {
		t.Fatalf("first event = %+v", ev)
	}
	if ev := nextEvent(t, m65, "hello event"); ev.event != "hello" {
		t.Fatalf("first event = %+v", ev)
	}

	for i := 0; i < 6; i++ {
		ingestText(t, hs, "f", fmt.Sprintf("%d %d %d\n", i, i+1, 10000*i))
	}
	// One batch of 6 disjoint ping-pong bursts: window M65 = 6 over a flat
	// baseline, z = +Inf.
	var sb strings.Builder
	for i := 0; i < 6; i++ {
		a, b, base := 100+2*i, 101+2*i, 100000+i
		fmt.Fprintf(&sb, "%d %d %d\n", a, b, base)
	}
	for i := 0; i < 6; i++ {
		a, b, base := 100+2*i, 101+2*i, 100000+i
		fmt.Fprintf(&sb, "%d %d %d\n", b, a, base+7)
	}
	for i := 0; i < 6; i++ {
		a, b, base := 100+2*i, 101+2*i, 100000+i
		fmt.Fprintf(&sb, "%d %d %d\n", a, b, base+15)
	}
	ingestText(t, hs, "f", sb.String())
	if st := d.Stats(); st.Alerts == 0 {
		t.Fatal("expected the burst to publish at least one alert")
	}

	ev := nextEvent(t, m65, "M65 alert")
	if ev.event != "alert" || !strings.Contains(ev.data, `"motif":"M65"`) {
		t.Fatalf("event = %+v, want M65 alert", ev)
	}
	select {
	case ev, ok := <-other:
		if ok {
			t.Fatalf("M11-filtered stream delivered %+v", ev)
		}
	case <-time.After(200 * time.Millisecond):
	}
}
