package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"hare/internal/live"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// maxIngestBody bounds one /v1/ingest request body. At ~20 bytes per text
// edge line this admits multi-million-edge batches while keeping a single
// request from exhausting memory.
const maxIngestBody = 64 << 20

// RegisterLive adds a mutable dataset fed by /v1/ingest and watched by
// /v1/watch. The dataset joins the registry as a volatile entry — query
// endpoints resolve its graph through the same Registry.Get path as
// immutable datasets, but per version and exempt from LRU eviction — and
// its version joins the result-cache key, so cached answers die naturally
// the moment an ingest advances the dataset.
func (s *Server) RegisterLive(d *live.Dataset, desc string) error {
	name := d.Name()
	if err := s.registry.RegisterVolatile(name, desc, "live", func() (*temporal.Graph, error) {
		return d.Graph(), nil
	}); err != nil {
		return err
	}
	s.liveMu.Lock()
	s.live[name] = d
	s.liveMu.Unlock()
	return nil
}

// Live returns the named live dataset, or nil when the name is unknown or
// names an immutable dataset.
func (s *Server) Live(name string) *live.Dataset {
	s.liveMu.RLock()
	defer s.liveMu.RUnlock()
	return s.live[name]
}

// liveDatasets snapshots the registered live datasets for metrics.
func (s *Server) liveDatasets() []*live.Dataset {
	s.liveMu.RLock()
	defer s.liveMu.RUnlock()
	out := make([]*live.Dataset, 0, len(s.live))
	for _, d := range s.live {
		out = append(out, d)
	}
	return out
}

// cacheKey is a request's result-cache key: the canonical Request.Key(),
// plus the dataset version for live datasets — (dataset, version) keying is
// what closes the invalidation gap. The version is read at request arrival:
// a racing ingest can only make a fresher answer land under the old key,
// never a stale answer under the new one.
func (s *Server) cacheKey(req Request) string {
	if d := s.Live(req.Dataset); d != nil {
		return fmt.Sprintf("%s|v%d", req.Key(), d.Version())
	}
	return req.Key()
}

// ingestResponse is the /v1/ingest JSON envelope.
type ingestResponse struct {
	Dataset   string       `json:"dataset"`
	Accepted  int          `json:"accepted"`
	Version   uint64       `json:"version"`
	Watermark int64        `json:"watermark"`
	Alerts    []live.Alert `json:"alerts,omitempty"`
}

// handleIngest serves POST /v1/ingest?dataset=<name>: the body is a text
// edge list ("u v t" lines, #/% comments), appended as one atomic batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := false
	defer func() { s.metrics.observe("ingest", time.Since(start), failed) }()
	if r.Method != http.MethodPost {
		failed = true
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	name := r.URL.Query().Get("dataset")
	if name == "" {
		failed = true
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing dataset"))
		return
	}
	d, err := s.requireLive(name)
	if err != nil {
		failed = true
		status := http.StatusBadRequest
		if _, ok := err.(*UnknownDatasetError); ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	res, err := d.IngestText(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err != nil {
		failed = true
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, ingestResponse{
		Dataset:   name,
		Accepted:  res.Accepted,
		Version:   res.Version,
		Watermark: int64(res.Watermark),
		Alerts:    res.Alerts,
	})
}

// requireLive resolves a name to its live dataset, distinguishing "not
// registered at all" (404) from "registered but immutable" (400).
func (s *Server) requireLive(name string) (*live.Dataset, error) {
	if d := s.Live(name); d != nil {
		return d, nil
	}
	s.registry.mu.Lock()
	_, registered := s.registry.entries[name]
	s.registry.mu.Unlock()
	if !registered {
		return nil, &UnknownDatasetError{Name: name}
	}
	return nil, fmt.Errorf("dataset %q is not live", name)
}

// handleWatch serves GET /v1/watch?dataset=<name>: a Server-Sent Events
// stream of significance alerts. Optional filters: motif=<label> passes
// only that motif's alerts, z=<min> only alerts at or above the given
// z-score (infinite z always passes). The stream opens with a "hello"
// event carrying the dataset's current version, then one "alert" event per
// alert (data: the live.Alert JSON), until the client disconnects.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := false
	defer func() { s.metrics.observe("watch", time.Since(start), failed) }()
	if r.Method != http.MethodGet {
		failed = true
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	q := r.URL.Query()
	name := q.Get("dataset")
	if name == "" {
		failed = true
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing dataset"))
		return
	}
	d, err := s.requireLive(name)
	if err != nil {
		failed = true
		status := http.StatusBadRequest
		if _, ok := err.(*UnknownDatasetError); ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	var only string
	if m := q.Get("motif"); m != "" {
		l, err := motif.ParseLabel(m)
		if err != nil {
			failed = true
			writeError(w, http.StatusBadRequest, err)
			return
		}
		only = l.String()
	}
	minZ := math.Inf(-1)
	if v := q.Get("z"); v != "" {
		minZ, err = strconv.ParseFloat(v, 64)
		if err != nil {
			failed = true
			writeError(w, http.StatusBadRequest, fmt.Errorf("z: %v", err))
			return
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		failed = true
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	ch, cancel := d.Subscribe()
	defer cancel()
	fmt.Fprintf(w, "event: hello\ndata: {\"dataset\":%q,\"version\":%d,\"delta_seconds\":%d}\n\n",
		name, d.Version(), int64(d.Delta()))
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case a, ok := <-ch:
			if !ok {
				return
			}
			if only != "" && a.Motif != only {
				continue
			}
			if !math.IsInf(a.Z, 1) && a.Z < minZ {
				continue
			}
			data, err := a.MarshalJSON()
			if err != nil {
				continue // cannot happen: Alert marshals infallibly
			}
			fmt.Fprintf(w, "event: alert\ndata: %s\n\n", data)
			flusher.Flush()
		}
	}
}
