package server_test

// End-to-end test of the hared serving stack: a real HTTP server on an
// ephemeral port, concurrent mixed queries, and responses checked
// bit-identical against direct library calls — plus cache accounting that
// must add up exactly (each unique canonical request computes once; every
// other request is a cache hit or an in-flight coalesce).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hare"
	"hare/internal/gen"
	"hare/internal/motif"
)

// e2eResponse mirrors the server's query envelope with integer-exact
// count decoding.
type e2eResponse struct {
	Dataset      string            `json:"dataset"`
	DeltaSeconds int64             `json:"delta_seconds"`
	Edges        int               `json:"edges"`
	Matrix       map[string]uint64 `json:"matrix"`
	Motif        string            `json:"motif"`
	Count        *uint64           `json:"count"`
	Patterns     map[string]uint64 `json:"patterns"`
	Paths        map[string]uint64 `json:"paths"`
	Motifs       []struct {
		Label  string  `json:"label"`
		Real   uint64  `json:"real"`
		Mean   float64 `json:"mean"`
		Std    float64 `json:"std"`
		PUpper float64 `json:"p_upper"`
		PLower float64 `json:"p_lower"`
	} `json:"motifs"`
	Total     uint64 `json:"total"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
}

func e2eGraph(t testing.TB) *hare.Graph {
	t.Helper()
	cfg, err := gen.DatasetByName("collegemsg")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Generate(gen.Scaled(cfg, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEndToEndApprox drives epsilon= through the real serving stack: the
// served estimate and interval equal a direct library call bit for bit,
// the interval covers the exact count, and the exact responses stay
// byte-for-byte free of approx fields.
func TestEndToEndApprox(t *testing.T) {
	g := e2eGraph(t)
	srv, err := hare.NewServer(hare.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterGraph("college", "e2e graph", g); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	type approxBody struct {
		Approx     bool     `json:"approx"`
		Epsilon    float64  `json:"epsilon"`
		Confidence float64  `json:"confidence"`
		Estimate   *float64 `json:"estimate"`
		CILow      *float64 `json:"ci_low"`
		CIHigh     *float64 `json:"ci_high"`
		Intervals  map[string]struct {
			Estimate float64 `json:"estimate"`
			Low      float64 `json:"low"`
			High     float64 `json:"high"`
		} `json:"intervals"`
		Total  uint64 `json:"total"`
		Cached bool   `json:"cached"`
	}
	fetch := func(path string) (approxBody, []byte) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, data)
		}
		var body approxBody
		if err := json.Unmarshal(data, &body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body, data
	}

	exact, err := hare.CountStar4(g, 600)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := hare.CountStar4Approx(g, 600, hare.ApproxOptions{Epsilon: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := fetch("/v1/star4?dataset=college&delta=600&epsilon=0.05&seed=3")
	if !body.Approx || body.Estimate == nil || body.CILow == nil || body.CIHigh == nil {
		t.Fatalf("approx response incomplete: %+v", body)
	}
	if *body.Estimate != direct.Total.Estimate || *body.CILow != direct.Total.Low || *body.CIHigh != direct.Total.High {
		t.Errorf("served interval (%v [%v, %v]) != direct library call (%v [%v, %v])",
			*body.Estimate, *body.CILow, *body.CIHigh,
			direct.Total.Estimate, direct.Total.Low, direct.Total.High)
	}
	if got, want := float64(exact.Total()), 0.0; *body.CILow > got+want || *body.CIHigh < got {
		t.Errorf("interval [%v, %v] misses exact count %v", *body.CILow, *body.CIHigh, exact.Total())
	}
	if len(body.Intervals) != 8 {
		t.Fatalf("star4 intervals = %d cells, want 8", len(body.Intervals))
	}
	for i, iv := range direct.Cells {
		d1, d2, d3 := motif.PairDirs(i)
		key := fmt.Sprintf("%s,%s,%s", d1, d2, d3)
		got, ok := body.Intervals[key]
		if !ok || got.Estimate != iv.Estimate || got.Low != iv.Low || got.High != iv.High {
			t.Errorf("cell %s: served %+v, direct %+v", key, got, iv)
		}
	}

	// The exact response is byte-stable and approx-free regardless of
	// approx traffic against the same dataset.
	_, before := fetch("/v1/star4?dataset=college&delta=600")
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(before, &raw); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"approx", "epsilon", "confidence", "estimate", "ci_low", "ci_high", "intervals"} {
		if _, ok := raw[k]; ok {
			t.Errorf("exact response carries approx field %q", k)
		}
	}

	// Approx query kind over the pivot-edge family round-trips too.
	spec := "a->b; b->c; c->d"
	parsed, err := hare.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	qDirect, err := hare.CountMotifApprox(g, parsed, 600, hare.ApproxOptions{Epsilon: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	qBody, _ := fetch("/v1/query?dataset=college&delta=600&spec=a-%3Eb,b-%3Ec,c-%3Ed&epsilon=0.05&seed=11")
	if qBody.Estimate == nil || *qBody.Estimate != qDirect.Total.Estimate ||
		*qBody.CILow != qDirect.Total.Low || *qBody.CIHigh != qDirect.Total.High {
		t.Errorf("served query interval %+v != direct %+v", qBody, qDirect.Total)
	}
}

func TestEndToEndConcurrentMixedQueries(t *testing.T) {
	g := e2eGraph(t)
	srv, err := hare.NewServer(hare.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterGraph("college", "e2e graph", g); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler()) // ephemeral port
	defer hs.Close()

	// The mixed workload: per unique canonical request, several identical
	// concurrent calls that must all coalesce onto one computation.
	queries := []struct {
		path string
		n    int
	}{
		{"/v1/count?dataset=college&delta=600", 8},
		{"/v1/count?dataset=college&delta=300", 4},
		{"/v1/count?dataset=college&delta=600&motif=M26", 4},
		{"/v1/star4?dataset=college&delta=600", 4},
		{"/v1/path4?dataset=college&delta=600", 4},
		{"/v1/sig?dataset=college&delta=600&samples=4&seed=2", 3},
	}
	uniqueKeys := len(queries)
	total := 0
	type reply struct {
		path string
		body e2eResponse
	}
	var mu sync.Mutex
	var replies []reply
	var wg sync.WaitGroup
	for _, q := range queries {
		total += q.n
		for i := 0; i < q.n; i++ {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				resp, err := http.Get(hs.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				data, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %d: %s", path, resp.StatusCode, data)
					return
				}
				var body e2eResponse
				if err := json.Unmarshal(data, &body); err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				mu.Lock()
				replies = append(replies, reply{path, body})
				mu.Unlock()
			}(q.path)
		}
	}
	wg.Wait()
	if len(replies) != total {
		t.Fatalf("got %d replies, want %d", len(replies), total)
	}

	// Direct library answers — what every served response must equal.
	count600, err := hare.Count(g, 600)
	if err != nil {
		t.Fatal(err)
	}
	count300, err := hare.Count(g, 300)
	if err != nil {
		t.Fatal(err)
	}
	star600, err := hare.CountStar4(g, 600)
	if err != nil {
		t.Fatal(err)
	}
	path600, err := hare.CountPath4(g, 600)
	if err != nil {
		t.Fatal(err)
	}
	sig600, err := hare.Significance(g, 600, hare.SignificanceOptions{Trials: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	wantMatrix := func(m hare.Matrix) map[string]uint64 {
		out := make(map[string]uint64, 36)
		for _, l := range hare.AllLabels() {
			out[l.String()] = m.At(l)
		}
		return out
	}
	wantPatterns := make(map[string]uint64, 8)
	for i, v := range star600 {
		d1, d2, d3 := motif.PairDirs(i)
		wantPatterns[fmt.Sprintf("%s,%s,%s", d1, d2, d3)] = v
	}
	wantPaths := make(map[string]uint64)
	for _, lc := range path600.Labels() {
		wantPaths[lc.Label.String()] = lc.Count
	}

	equalMaps := func(got, want map[string]uint64) bool {
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}

	for _, r := range replies {
		switch {
		case strings.Contains(r.path, "motif=M26"):
			if got := r.body.Count; got == nil || *got != count600.Matrix.At(hare.MustLabel("M26")) {
				t.Errorf("%s: count = %v, want %d", r.path, got, count600.Matrix.At(hare.MustLabel("M26")))
			}
			// Restricted mode zeroes the other categories but must keep
			// every triangle cell exact.
			for _, l := range hare.AllLabels() {
				if l.Category() == hare.CategoryTri && r.body.Matrix[l.String()] != count600.Matrix.At(l) {
					t.Errorf("%s: %s = %d, want %d", r.path, l, r.body.Matrix[l.String()], count600.Matrix.At(l))
				}
			}
		case strings.Contains(r.path, "/v1/count?dataset=college&delta=600"):
			if !equalMaps(r.body.Matrix, wantMatrix(count600.Matrix)) {
				t.Errorf("%s: matrix diverges from direct hare.Count", r.path)
			}
			if r.body.Total != count600.Matrix.Total() {
				t.Errorf("%s: total = %d, want %d", r.path, r.body.Total, count600.Matrix.Total())
			}
		case strings.Contains(r.path, "delta=300"):
			if !equalMaps(r.body.Matrix, wantMatrix(count300.Matrix)) {
				t.Errorf("%s: matrix diverges from direct hare.Count", r.path)
			}
		case strings.Contains(r.path, "star4"):
			if !equalMaps(r.body.Patterns, wantPatterns) {
				t.Errorf("%s: patterns = %v, want %v", r.path, r.body.Patterns, wantPatterns)
			}
			if r.body.Total != star600.Total() {
				t.Errorf("%s: total = %d, want %d", r.path, r.body.Total, star600.Total())
			}
		case strings.Contains(r.path, "path4"):
			if !equalMaps(r.body.Paths, wantPaths) {
				t.Errorf("%s: paths = %v, want %v", r.path, r.body.Paths, wantPaths)
			}
		case strings.Contains(r.path, "sig"):
			if len(r.body.Motifs) != 36 {
				t.Fatalf("%s: %d motifs", r.path, len(r.body.Motifs))
			}
			for _, m := range r.body.Motifs {
				l := hare.MustLabel(m.Label)
				if m.Real != sig600.Real.At(l) || m.Mean != sig600.MeanAt(l) ||
					m.Std != sig600.StdAt(l) || m.PUpper != sig600.PUpperAt(l) ||
					m.PLower != sig600.PLowerAt(l) {
					t.Errorf("%s: %s stats diverge from direct hare.Significance", r.path, m.Label)
				}
			}
		default:
			t.Errorf("unmatched reply path %s", r.path)
		}
	}

	// Cache accounting: each unique canonical request computed exactly
	// once; every other request was served by the LRU (hit) or joined an
	// in-flight computation (coalesced).
	hits, misses, evictions, coalesced := srv.CacheStats()
	if misses != uint64(uniqueKeys) {
		t.Errorf("misses = %d, want %d (one compute per unique request)", misses, uniqueKeys)
	}
	if hits+coalesced != uint64(total-uniqueKeys) {
		t.Errorf("hits+coalesced = %d+%d, want %d", hits, coalesced, total-uniqueKeys)
	}
	if evictions != 0 {
		t.Errorf("evictions = %d, want 0", evictions)
	}

	// The responses themselves must agree with the counters.
	var cachedSeen, coalescedSeen, freshSeen uint64
	for _, r := range replies {
		switch {
		case r.body.Cached:
			cachedSeen++
		case r.body.Coalesced:
			coalescedSeen++
		default:
			freshSeen++
		}
	}
	if freshSeen != misses || cachedSeen != hits || coalescedSeen != coalesced {
		t.Errorf("response flags fresh/cached/coalesced = %d/%d/%d, counters = %d/%d/%d",
			freshSeen, cachedSeen, coalescedSeen, misses, hits, coalesced)
	}

	// /metrics aggregates the same story.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		fmt.Sprintf("hared_cache_misses_total %d", misses),
		fmt.Sprintf("hared_cache_hits_total %d", hits),
		fmt.Sprintf("hared_dedup_coalesced_total %d", coalesced),
		"hared_dataset_loads_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
