package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hare/internal/approx"
	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/nullmodel"
	"hare/internal/temporal"
)

// fakeBackend returns deterministic counts derived from δ and tracks how
// many jobs run, and how many concurrently. block, when set, gates every
// job so tests can hold jobs in flight.
type fakeBackend struct {
	calls      atomic.Int64
	inflight   atomic.Int64
	maxSeen    atomic.Int64
	block      chan struct{} // nil = don't block
	workerSeen atomic.Int64
}

func (f *fakeBackend) enter() {
	f.calls.Add(1)
	cur := f.inflight.Add(1)
	for {
		old := f.maxSeen.Load()
		if cur <= old || f.maxSeen.CompareAndSwap(old, cur) {
			break
		}
	}
	if f.block != nil {
		<-f.block
	}
}

func (f *fakeBackend) exit() { f.inflight.Add(-1) }

func (f *fakeBackend) Count(_ context.Context, g *temporal.Graph, req Request) (CountAnswer, error) {
	f.enter()
	defer f.exit()
	f.workerSeen.Store(int64(req.Workers))
	var m motif.Matrix
	m.Set(motif.Label{Row: 2, Col: 6}, uint64(req.Delta))
	return CountAnswer{Matrix: m, Workers: req.Workers, DegreeThreshold: 7}, nil
}

func (f *fakeBackend) Star4(_ context.Context, g *temporal.Graph, req Request) (higher.Star4Counter, error) {
	f.enter()
	defer f.exit()
	var c higher.Star4Counter
	c[0] = uint64(req.Delta) * 2
	return c, nil
}

func (f *fakeBackend) Path4(_ context.Context, g *temporal.Graph, req Request) (higher.PathCounter, error) {
	f.enter()
	defer f.exit()
	var c higher.PathCounter
	c[7] = uint64(req.Delta) * 3
	return c, nil
}

func (f *fakeBackend) Query(_ context.Context, g *temporal.Graph, req Request) (uint64, error) {
	f.enter()
	defer f.exit()
	return uint64(req.Delta) * 5, nil
}

// approxFake builds a recognizable fake estimate: total = δ·scale with a
// ±1 interval, one cell, 5 draws over 2 strata (1 exact).
func approxFake(req Request, scale uint64) *approx.Result {
	est := float64(req.Delta * int64(scale))
	return &approx.Result{
		Cells:       []approx.Interval{{Estimate: est, Low: est - 1, High: est + 1}},
		Total:       approx.Interval{Estimate: est, Low: est - 1, High: est + 1},
		Draws:       5,
		Strata:      2,
		ExactStrata: 1,
		Epsilon:     req.Epsilon,
		Confidence:  req.Conf,
	}
}

func (f *fakeBackend) Star4Approx(_ context.Context, g *temporal.Graph, req Request) (*approx.Result, error) {
	f.enter()
	defer f.exit()
	return approxFake(req, 2), nil
}

func (f *fakeBackend) Path4Approx(_ context.Context, g *temporal.Graph, req Request) (*approx.Result, error) {
	f.enter()
	defer f.exit()
	return approxFake(req, 3), nil
}

func (f *fakeBackend) QueryApprox(_ context.Context, g *temporal.Graph, req Request) (*approx.Result, error) {
	f.enter()
	defer f.exit()
	return approxFake(req, 5), nil
}

func (f *fakeBackend) Significance(_ context.Context, g *temporal.Graph, req Request) (*nullmodel.Report, error) {
	f.enter()
	defer f.exit()
	rep := &nullmodel.Report{Trials: req.Samples, Workers: req.Workers}
	rep.Real.Set(motif.Label{Row: 1, Col: 1}, uint64(req.Seed))
	return rep, nil
}

func tinyGraph() *temporal.Graph {
	return temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
}

func newTestServer(t *testing.T, opts Options) (*Server, *fakeBackend) {
	t.Helper()
	fb := &fakeBackend{}
	if opts.Backend == nil {
		opts.Backend = fb
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGraph("tiny", "test graph", tinyGraph()); err != nil {
		t.Fatal(err)
	}
	return s, fb
}

func get(t *testing.T, s *Server, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		if rec.Header().Get("Content-Type") == "application/json" {
			t.Fatalf("GET %s: bad JSON %q: %v", path, rec.Body.String(), err)
		}
		body = nil
	}
	return rec.Code, body
}

func TestParseRequestDefaultsAndErrors(t *testing.T) {
	req, _, err := ParseRequest(KindCount, url.Values{"dataset": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if req.Delta != 600 {
		t.Fatalf("default delta = %d, want 600", req.Delta)
	}
	req, _, err = ParseRequest(KindSig, url.Values{"dataset": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if req.Model != "time-shuffle" || req.Samples != 20 {
		t.Fatalf("sig defaults = %q/%d", req.Model, req.Samples)
	}
	for _, bad := range []url.Values{
		{}, // missing dataset
		{"dataset": {"x"}, "delta": {"-1"}},
		{"dataset": {"x"}, "delta": {"abc"}},
		{"dataset": {"x"}, "workers": {"-2"}},
		{"dataset": {"x"}, "motif": {"M99"}},
		{"dataset": {"x"}, "thrd": {"zzz"}},
	} {
		if _, _, err := ParseRequest(KindCount, bad); err == nil {
			t.Errorf("ParseRequest(%v): want error", bad)
		}
	}
	if _, _, err := ParseRequest(KindSig, url.Values{"dataset": {"x"}, "model": {"nope"}}); err == nil {
		t.Error("bad model: want error")
	}
	if _, _, err := ParseRequest(KindSig, url.Values{"dataset": {"x"}, "samples": {"-1"}}); err == nil {
		t.Error("negative samples: want error")
	}
	if _, _, err := ParseRequest(KindStar4, url.Values{"dataset": {"x"}, "motif": {"M26"}}); err == nil {
		t.Error("motif on star4: want error")
	}
}

func TestRequestKeyCanonicalization(t *testing.T) {
	base := Request{Kind: KindCount, Dataset: "d", Delta: 600}
	withWorkers := base
	withWorkers.Workers = 8
	withThrd := base
	withThrd.Thrd, withThrd.ThrdSet = 100, true
	if base.Key() != withWorkers.Key() || base.Key() != withThrd.Key() {
		t.Errorf("scheduling knobs leaked into key: %q vs %q vs %q",
			base.Key(), withWorkers.Key(), withThrd.Key())
	}
	// Pair and star categories share one cached matrix.
	pair := base
	pair.Motif = "M11" // a pair motif cell
	star := base
	star.Motif = "M14" // a star motif cell
	tri := base
	tri.Motif = "M26" // a triangle motif cell
	if pair.Key() != star.Key() {
		t.Errorf("pair/star keys differ: %q vs %q", pair.Key(), star.Key())
	}
	if pair.Key() == tri.Key() || base.Key() == tri.Key() {
		t.Errorf("tri key not distinct: %q vs %q vs %q", base.Key(), pair.Key(), tri.Key())
	}
	sig := Request{Kind: KindSig, Dataset: "d", Delta: 600, Model: "time-shuffle", Samples: 20}
	sig2 := sig
	sig2.Seed = 1
	if sig.Key() == sig2.Key() {
		t.Error("sig seed must be part of the key")
	}
}

func TestQueryRequestCanonicalKey(t *testing.T) {
	parse := func(spec string) Request {
		t.Helper()
		req, _, err := ParseRequest(KindQuery, url.Values{"dataset": {"d"}, "spec": {spec}})
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	// Three spellings of one triangle — separators, arrow sugar, variable
	// names, rotation — normalize to one canonical spec and one cache key.
	tri := parse("x->y; y->z; z->x")
	if tri.Spec != "a->b; b->c; c->a" {
		t.Fatalf("canonical spec = %q", tri.Spec)
	}
	rot := parse("c<-b, a<-c, b<-a")
	if tri.Key() != rot.Key() {
		t.Errorf("isomorphic spellings keyed apart: %q vs %q", tri.Key(), rot.Key())
	}
	// The JSON form normalizes into the same key space.
	star := parse(`{"edges":[{"src":"hub","dst":"u"},{"src":"hub","dst":"v"},{"src":"hub","dst":"w"}]}`)
	if star.Spec != "a->b; a->c; a->d" {
		t.Fatalf("canonical JSON spec = %q", star.Spec)
	}
	if star.Key() == tri.Key() {
		t.Error("distinct shapes share a key")
	}
	for _, bad := range []url.Values{
		{"dataset": {"d"}}, // query without spec
		{"dataset": {"d"}, "spec": {"a->a; a->b; b->a"}}, // self-loop
		{"dataset": {"d"}, "spec": {"a->b; b->c"}},       // too few edges
		{"dataset": {"d"}, "spec": {"a->b; c->d; e->f"}}, // too many nodes
		{"dataset": {"d"}, "spec": {"nonsense"}},         // syntax
	} {
		if _, _, err := ParseRequest(KindQuery, bad); err == nil {
			t.Errorf("ParseRequest(%v): want error", bad)
		}
	}
	if _, _, err := ParseRequest(KindCount, url.Values{"dataset": {"d"}, "spec": {"a->b; b->c; c->a"}}); err == nil {
		t.Error("spec on a count request: want error")
	}
}

func TestCacheHitMissEviction(t *testing.T) {
	ctx := context.Background()
	c := NewCache(2)
	compute := func(v int) func(context.Context) (any, error) {
		return func(context.Context) (any, error) { return v, nil }
	}
	for i, key := range []string{"a", "b", "a", "c", "b"} {
		if _, _, _, err := c.Do(ctx, key, compute(i)); err != nil {
			t.Fatal(err)
		}
	}
	// a,b cached; a hit; c evicts b (LRU after a's touch); b recomputes.
	hits, misses, evictions, _ := c.Stats()
	if hits != 1 || misses != 4 || evictions != 2 {
		t.Fatalf("hits/misses/evictions = %d/%d/%d, want 1/4/2", hits, misses, evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Errors are not cached.
	ec := NewCache(2)
	if _, _, _, err := ec.Do(ctx, "k", func(context.Context) (any, error) { return nil, fmt.Errorf("boom") }); err == nil {
		t.Fatal("want error")
	}
	if ec.Len() != 0 {
		t.Fatal("error result was cached")
	}
	// Capacity <= 0 disables storage but still dedups.
	dc := NewCache(-1)
	dc.Do(ctx, "k", compute(1))
	if dc.Len() != 0 {
		t.Fatal("disabled cache stored a result")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	release := make(chan struct{})
	var computes atomic.Int64
	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, _, err := c.Do(context.Background(), "key", func(context.Context) (any, error) {
				computes.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the leader is inside compute, then let everyone go.
	for computes.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the herd pile onto the flight
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %v", i, v)
		}
	}
	hits, misses, _, coalesced := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if hits+coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d+%d, want %d", hits, coalesced, n-1)
	}
}

func TestCachePanicDoesNotWedgeKey(t *testing.T) {
	ctx := context.Background()
	c := NewCache(4)
	inFlight := make(chan struct{})
	release := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(ctx, "key", func(context.Context) (any, error) {
			close(inFlight)
			<-release
			panic("boom")
		})
		leaderErr <- err
	}()
	<-inFlight
	followerErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(ctx, "key", func(context.Context) (any, error) { return nil, nil })
		followerErr <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the follower join the flight
	close(release)
	for name, ch := range map[string]chan error{"leader": leaderErr, "follower": followerErr} {
		select {
		case err := <-ch:
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("%s of a panicked flight: err = %v, want panic error", name, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s wedged on a panicked flight", name)
		}
	}
	// The key must be usable again, and the panic result not cached.
	v, hit, _, err := c.Do(ctx, "key", func(context.Context) (any, error) { return 7, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("key wedged after panic: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestCacheWaiterCancellation(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	gotCanceled := make(chan bool, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(ctx, "key", func(fctx context.Context) (any, error) {
			close(started)
			<-fctx.Done() // flight ctx must cancel once its only waiter leaves
			gotCanceled <- true
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled waiter should get its context error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	select {
	case <-gotCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("flight context not canceled after last waiter left")
	}
}

func TestRegistryPanicDoesNotWedgeDataset(t *testing.T) {
	r := NewRegistry(0)
	first := true
	r.Register("d", "", func() (*temporal.Graph, error) {
		if first {
			first = false
			panic("corrupt input")
		}
		return tinyGraph(), nil
	})
	if _, err := r.Get("d"); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic error", err)
	}
	if _, err := r.Get("d"); err != nil {
		t.Fatalf("dataset wedged after loader panic: %v", err)
	}
}

func TestAdmissionBoundsConcurrency(t *testing.T) {
	const budget = 3
	a := NewAdmission(budget)
	var inflight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := a.Acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			cur := inflight.Add(1)
			for {
				old := maxSeen.Load()
				if cur <= old || maxSeen.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inflight.Add(-1)
			a.Release(w)
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > budget {
		t.Fatalf("max concurrent = %d, budget %d", got, budget)
	}
	waits, inf := a.Stats()
	if waits == 0 {
		t.Error("expected some acquisitions to block")
	}
	if inf != 0 {
		t.Errorf("inflight = %d after drain, want 0", inf)
	}
}

func TestAdmissionWeightClampAndCancel(t *testing.T) {
	a := NewAdmission(4)
	w, err := a.Acquire(context.Background(), 100) // clamped to budget
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Fatalf("clamped weight = %d, want 4", w)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 1)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("want context error")
	}
	a.Release(w)
	// Budget must not have leaked: a full-width acquire succeeds.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if _, err := a.Acquire(ctx2, 4); err != nil {
		t.Fatalf("budget leaked: %v", err)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(2)
	w, _ := a.Acquire(context.Background(), 2)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := a.Acquire(context.Background(), 2)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.Release(got)
		}(i)
		time.Sleep(10 * time.Millisecond) // serialize arrival order
	}
	a.Release(w)
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v, want [0 1 2]", order)
	}
}

func TestRegistryLoadOnceAndEvict(t *testing.T) {
	r := NewRegistry(1)
	var loadsA, loadsB atomic.Int64
	g := tinyGraph()
	r.Register("a", "", func() (*temporal.Graph, error) { loadsA.Add(1); return g, nil })
	r.Register("b", "", func() (*temporal.Graph, error) { loadsB.Add(1); return g, nil })

	// Concurrent first access coalesces to one load.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Get("a"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := loadsA.Load(); got != 1 {
		t.Fatalf("a loaded %d times, want 1", got)
	}
	// Loading b evicts a (maxLoaded=1); touching a again reloads it.
	if _, err := r.Get("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if got := loadsA.Load(); got != 2 {
		t.Fatalf("a loaded %d times after eviction, want 2", got)
	}
	loads, evictions, resident := r.Stats()
	if loads != 3 || evictions != 2 || resident != 1 {
		t.Fatalf("loads/evictions/resident = %d/%d/%d, want 3/2/1", loads, evictions, resident)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("want unknown-dataset error")
	}
	if err := r.Register("a", "", nil); err == nil {
		t.Fatal("want duplicate-registration error")
	}
}

func TestRegistryLoadErrorRetries(t *testing.T) {
	r := NewRegistry(0)
	var n atomic.Int64
	r.Register("flaky", "", func() (*temporal.Graph, error) {
		if n.Add(1) == 1 {
			return nil, fmt.Errorf("transient")
		}
		return tinyGraph(), nil
	})
	if _, err := r.Get("flaky"); err == nil {
		t.Fatal("want first-load error")
	}
	if _, err := r.Get("flaky"); err != nil {
		t.Fatalf("second load should succeed: %v", err)
	}
}

func TestQueryEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Options{WorkerBudget: 2})
	code, body := get(t, s, "/v1/count?dataset=tiny&delta=300")
	if code != http.StatusOK {
		t.Fatalf("count status = %d: %v", code, body)
	}
	if got := body["matrix"].(map[string]any)["M26"].(float64); got != 300 {
		t.Fatalf("M26 = %v, want 300", got)
	}
	if body["cached"].(bool) {
		t.Fatal("first request reported cached")
	}
	if got := body["degree_threshold"].(float64); got != 7 {
		t.Fatalf("degree_threshold = %v", got)
	}
	code, body = get(t, s, "/v1/count?dataset=tiny&delta=300")
	if code != http.StatusOK || !body["cached"].(bool) {
		t.Fatalf("second request not cached: %d %v", code, body)
	}
	// The restricted-motif request extracts its cell per request.
	code, body = get(t, s, "/v1/count?dataset=tiny&delta=300&motif=M26")
	if code != http.StatusOK {
		t.Fatalf("motif count status = %d", code)
	}
	if got := body["count"].(float64); got != 300 {
		t.Fatalf("motif count = %v, want 300", got)
	}

	code, body = get(t, s, "/v1/star4?dataset=tiny&delta=100")
	if code != http.StatusOK || body["total"].(float64) != 200 {
		t.Fatalf("star4 = %d %v", code, body)
	}
	code, body = get(t, s, "/v1/path4?dataset=tiny&delta=100")
	if code != http.StatusOK || body["total"].(float64) != 300 {
		t.Fatalf("path4 = %d %v", code, body)
	}
	code, body = get(t, s, "/v1/sig?dataset=tiny&delta=100&seed=9&samples=5")
	if code != http.StatusOK {
		t.Fatalf("sig = %d %v", code, body)
	}
	if got := body["samples"].(float64); got != 5 {
		t.Fatalf("sig samples = %v", got)
	}
	motifs := body["motifs"].([]any)
	if len(motifs) != 36 {
		t.Fatalf("sig motifs = %d, want 36", len(motifs))
	}
	if m11 := motifs[0].(map[string]any); m11["real"].(float64) != 9 {
		t.Fatalf("sig real M11 = %v, want seed 9", m11["real"])
	}
}

// TestQueryEndpointSharesCanonicalCacheEntry drives /v1/query end to end:
// isomorphic spec spellings land on one cached computation, the response
// echoes the canonical spec, and the pivot family is reported.
func TestQueryEndpointSharesCanonicalCacheEntry(t *testing.T) {
	s, fb := newTestServer(t, Options{WorkerBudget: 2})
	code, body := get(t, s, "/v1/query?dataset=tiny&delta=200&spec=x-%3Ey,y-%3Ez,z-%3Ex")
	if code != http.StatusOK {
		t.Fatalf("query status = %d: %v", code, body)
	}
	if got := body["total"].(float64); got != 1000 { // fakeBackend: delta*5
		t.Fatalf("total = %v, want 1000", got)
	}
	if got := body["spec"].(string); got != "a->b; b->c; c->a" {
		t.Fatalf("echoed spec = %q, want canonical form", got)
	}
	if got := body["pivot"].(string); got != "edge" {
		t.Fatalf("pivot = %q, want edge", got)
	}
	if body["cached"].(bool) {
		t.Fatal("first query reported cached")
	}
	// A rotated, arrow-sugared respelling of the same triangle must hit the
	// cache entry the first spelling populated.
	code, body = get(t, s, "/v1/query?dataset=tiny&delta=200&spec=c%3C-b,a%3C-c,b%3C-a")
	if code != http.StatusOK || !body["cached"].(bool) {
		t.Fatalf("isomorphic respelling missed the cache: %d %v", code, body)
	}
	if got := fb.calls.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1", got)
	}
	// A star spec compiles to the center-pivot family.
	code, body = get(t, s, "/v1/query?dataset=tiny&delta=200&spec=q-%3Er,q-%3Es,q-%3Et")
	if code != http.StatusOK || body["pivot"].(string) != "center" {
		t.Fatalf("star query = %d %v, want pivot=center", code, body)
	}
}

// TestApproxKeysAndValidation pins the approx request surface: exact keys
// stay byte-for-byte what they were before the approx tier existed, approx
// keys carry every estimator knob, and the knob validation rejections.
func TestApproxKeysAndValidation(t *testing.T) {
	exact := Request{Kind: KindStar4, Dataset: "d", Delta: 600}
	if got, want := exact.Key(), "star4|d|600"; got != want {
		t.Fatalf("exact star4 key = %q, want %q", got, want)
	}
	req, _, err := ParseRequest(KindStar4, url.Values{"dataset": {"d"}, "epsilon": {"0.05"}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := req.Key(), "star4|d|600|eps0.05|conf0.95|seed0|m0"; got != want {
		t.Fatalf("approx star4 key = %q, want %q", got, want)
	}
	if req.Conf != 0.95 || !req.ConfSet {
		t.Fatalf("default confidence not canonicalized: %+v", req)
	}
	// Every knob is answer-shaping: each must split the key.
	vary := []url.Values{
		{"dataset": {"d"}, "epsilon": {"0.1"}},
		{"dataset": {"d"}, "epsilon": {"0.05"}, "conf": {"0.99"}},
		{"dataset": {"d"}, "epsilon": {"0.05"}, "seed": {"7"}},
		{"dataset": {"d"}, "epsilon": {"0.05"}, "samples": {"100"}},
	}
	seen := map[string]bool{exact.Key(): true, req.Key(): true}
	for _, q := range vary {
		r, _, err := ParseRequest(KindStar4, q)
		if err != nil {
			t.Fatalf("ParseRequest(%v): %v", q, err)
		}
		if seen[r.Key()] {
			t.Errorf("key collision for %v: %q", q, r.Key())
		}
		seen[r.Key()] = true
	}
	for _, bad := range []struct {
		kind Kind
		q    url.Values
	}{
		{KindCount, url.Values{"dataset": {"d"}, "epsilon": {"0.05"}}},
		{KindSig, url.Values{"dataset": {"d"}, "epsilon": {"0.05"}}},
		{KindStar4, url.Values{"dataset": {"d"}, "conf": {"0.95"}}}, // conf without epsilon
		{KindStar4, url.Values{"dataset": {"d"}, "epsilon": {"0"}}},
		{KindStar4, url.Values{"dataset": {"d"}, "epsilon": {"1"}}},
		{KindStar4, url.Values{"dataset": {"d"}, "epsilon": {"1.5"}}},
		{KindStar4, url.Values{"dataset": {"d"}, "epsilon": {"NaN"}}},
		{KindStar4, url.Values{"dataset": {"d"}, "epsilon": {"abc"}}},
		{KindStar4, url.Values{"dataset": {"d"}, "epsilon": {"0.05"}, "conf": {"1.0"}}},
		{KindStar4, url.Values{"dataset": {"d"}, "epsilon": {"0.05"}, "samples": {"-1"}}},
		{KindPath4, url.Values{"dataset": {"d"}, "samples": {"10"}}}, // samples without epsilon
		{KindPath4, url.Values{"dataset": {"d"}, "seed": {"3"}}},     // seed without epsilon
	} {
		if _, _, err := ParseRequest(bad.kind, bad.q); err == nil {
			t.Errorf("ParseRequest(%s, %v): want error", bad.kind, bad.q)
		}
	}
}

// TestApproxEndpoints drives epsilon= through the handler: the approx
// fields appear with the estimate and interval, the exact response carries
// none of them, and exact and approx answers occupy distinct cache
// entries.
func TestApproxEndpoints(t *testing.T) {
	s, fb := newTestServer(t, Options{WorkerBudget: 2})
	code, body := get(t, s, "/v1/star4?dataset=tiny&delta=100&epsilon=0.05")
	if code != http.StatusOK {
		t.Fatalf("approx star4 status = %d: %v", code, body)
	}
	if body["approx"] != true {
		t.Fatalf("approx flag missing: %v", body)
	}
	if got := body["estimate"].(float64); got != 200 { // fakeBackend: delta*2
		t.Fatalf("estimate = %v, want 200", got)
	}
	if lo, hi := body["ci_low"].(float64), body["ci_high"].(float64); lo != 199 || hi != 201 {
		t.Fatalf("interval = [%v, %v], want [199, 201]", lo, hi)
	}
	if got := body["total"].(float64); got != 200 {
		t.Fatalf("rounded total = %v, want 200", got)
	}
	if body["epsilon"].(float64) != 0.05 || body["confidence"].(float64) != 0.95 {
		t.Fatalf("knob echo = %v/%v", body["epsilon"], body["confidence"])
	}
	if body["approx_samples"].(float64) != 5 || body["approx_strata"].(float64) != 2 || body["approx_exact_strata"].(float64) != 1 {
		t.Fatalf("telemetry = %v/%v/%v", body["approx_samples"], body["approx_strata"], body["approx_exact_strata"])
	}
	// Exact mode: none of the approx keys may appear in the response.
	code, body = get(t, s, "/v1/star4?dataset=tiny&delta=100")
	if code != http.StatusOK {
		t.Fatalf("exact star4 status = %d", code)
	}
	for _, k := range []string{"approx", "epsilon", "confidence", "estimate", "ci_low", "ci_high", "intervals", "approx_samples", "approx_strata", "approx_exact_strata"} {
		if _, present := body[k]; present {
			t.Errorf("exact response leaked approx field %q", k)
		}
	}
	if got := fb.calls.Load(); got != 2 {
		t.Fatalf("backend ran %d times, want 2 (approx and exact are distinct cache entries)", got)
	}
	// Repeating the approx request hits its cache entry.
	code, body = get(t, s, "/v1/star4?dataset=tiny&delta=100&epsilon=0.05")
	if code != http.StatusOK || !body["cached"].(bool) {
		t.Fatalf("approx repeat missed cache: %d %v", code, body)
	}
	// Approx path4 and query route to their backend methods and render the
	// same envelope shape.
	code, body = get(t, s, "/v1/path4?dataset=tiny&delta=100&epsilon=0.1&conf=0.9&seed=4")
	if code != http.StatusOK || body["estimate"].(float64) != 300 {
		t.Fatalf("approx path4 = %d %v", code, body)
	}
	if body["epsilon"].(float64) != 0.1 || body["confidence"].(float64) != 0.9 {
		t.Fatalf("path4 knob echo = %v/%v", body["epsilon"], body["confidence"])
	}
	code, body = get(t, s, "/v1/query?dataset=tiny&delta=100&spec=a-%3Eb,b-%3Ec,c-%3Ea&epsilon=0.05")
	if code != http.StatusOK || body["estimate"].(float64) != 500 {
		t.Fatalf("approx query = %d %v", code, body)
	}
	if body["spec"].(string) != "a->b; b->c; c->a" || body["pivot"].(string) != "edge" {
		t.Fatalf("approx query spec echo = %v/%v", body["spec"], body["pivot"])
	}
	// Knob rejections surface as 400s at the endpoint.
	for _, path := range []string{
		"/v1/count?dataset=tiny&epsilon=0.05",
		"/v1/sig?dataset=tiny&epsilon=0.05",
		"/v1/star4?dataset=tiny&conf=0.95",
		"/v1/star4?dataset=tiny&epsilon=2",
	} {
		if code, body := get(t, s, path); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400 (%v)", path, code, body)
		}
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	for path, want := range map[string]int{
		"/v1/count?dataset=nope":              http.StatusNotFound,
		"/v1/count?dataset=tiny&delta=-1":     http.StatusBadRequest,
		"/v1/count?dataset=tiny&motif=bogus":  http.StatusBadRequest,
		"/v1/count":                           http.StatusBadRequest,
		"/v1/sig?dataset=tiny&model=whatever": http.StatusBadRequest,
		"/v1/query?dataset=tiny":              http.StatusBadRequest, // spec missing
		"/v1/query?dataset=tiny&spec=a-%3Eb":  http.StatusBadRequest, // too few edges
	} {
		code, body := get(t, s, path)
		if code != want {
			t.Errorf("GET %s = %d, want %d (%v)", path, code, want, body)
		}
		if body["error"] == "" {
			t.Errorf("GET %s: missing error body", path)
		}
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/count?dataset=tiny", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", rec.Code)
	}
}

func TestServerAdmissionBoundsJobs(t *testing.T) {
	fb := &fakeBackend{block: make(chan struct{})}
	s, _ := newTestServer(t, Options{Backend: fb, WorkerBudget: 2})
	var wg sync.WaitGroup
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// workers=1 → weight 1 → at most 2 jobs run concurrently;
			// distinct deltas so requests don't coalesce in the cache.
			rec := httptest.NewRecorder()
			url := fmt.Sprintf("/v1/count?dataset=tiny&delta=%d&workers=1", 100+i)
			s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
			if rec.Code != http.StatusOK {
				t.Errorf("status = %d", rec.Code)
			}
		}(i)
	}
	for fb.inflight.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // give extra jobs the chance to (wrongly) start
	close(fb.block)
	wg.Wait()
	if got := fb.maxSeen.Load(); got > 2 {
		t.Fatalf("max concurrent jobs = %d, want <= 2", got)
	}
	if got := fb.calls.Load(); got != n {
		t.Fatalf("jobs ran = %d, want %d", got, n)
	}
}

func TestDatasetsHealthzMetrics(t *testing.T) {
	s, _ := newTestServer(t, Options{Version: "test-v1"})
	code, body := get(t, s, "/v1/datasets")
	if code != http.StatusOK {
		t.Fatalf("datasets = %d", code)
	}
	ds := body["datasets"].([]any)
	if len(ds) != 1 || ds[0].(map[string]any)["name"] != "tiny" {
		t.Fatalf("datasets = %v", ds)
	}
	if ds[0].(map[string]any)["loaded"].(bool) {
		t.Fatal("tiny should be lazy until first query")
	}
	get(t, s, "/v1/count?dataset=tiny&delta=60")
	_, body = get(t, s, "/v1/datasets")
	d0 := body["datasets"].([]any)[0].(map[string]any)
	if !d0["loaded"].(bool) || d0["edges"].(float64) != 3 {
		t.Fatalf("after query: %v", d0)
	}

	code, body = get(t, s, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" || body["version"] != "test-v1" {
		t.Fatalf("healthz = %d %v", code, body)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`hared_requests_total{endpoint="count"} 1`,
		"hared_cache_misses_total 1",
		"hared_cache_hits_total 0",
		"hared_dataset_loads_total 1",
		"hared_worker_budget",
		`hared_build_info{version="test-v1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("want error for missing backend")
	}
}
