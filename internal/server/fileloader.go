package server

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"hare/internal/temporal"
)

// FileLoader returns a SourcedLoadFunc for a graph file, wiring the `.hare`
// snapshot format into the registry's lazy-load path:
//
//   - A text edge-list path first probes the sibling snapshot
//     "<path>.hare" and loads that instead when present — zero-parse,
//     mmapped startup — falling back to the text file if the snapshot is
//     from a newer format version, corrupt, or unreadable. Snapshot
//     trouble is logged and never fails the dataset: the text file
//     remains the source of truth.
//   - A ".hare" (or ".hare.gz") path loads the snapshot directly. If its
//     format version is newer than this binary supports, the loader logs
//     and falls back to a text sibling — the path minus its snapshot
//     suffix, tried bare and with ".txt", ".txt.gz", ".gz" appended — so
//     a dataset written by a newer haregen still serves. Any other
//     snapshot error fails the load: corruption in an explicitly
//     requested snapshot should be loud, not silently papered over.
//
// The returned loader reports which branch actually produced the graph as
// its provenance string — "snapshot <path>", "snapshot-sibling <snap>",
// "text <path>", or "text-fallback <cand>" — surfaced by /v1/datasets so
// operators can see which nodes cold-started off binary snapshots.
//
// logf receives human-readable progress lines (nil discards them); pass
// log.Printf from a daemon. opts applies to text parsing only — snapshots
// fixed their relabeling and edge order when written.
func FileLoader(path string, opts temporal.LoadOptions, logf func(format string, args ...any)) SourcedLoadFunc {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if base, ok := snapshotBase(path); ok {
		return func() (*temporal.Graph, string, error) {
			g, err := temporal.LoadFile(path, opts)
			var ve *temporal.SnapshotVersionError
			if !errors.As(err, &ve) {
				return g, "snapshot " + path, err
			}
			for _, cand := range textSiblings(base) {
				if _, serr := os.Stat(cand); serr != nil {
					continue
				}
				logf("dataset %s: %v; falling back to text load of %s", path, err, cand)
				g, err := temporal.LoadFile(cand, opts)
				return g, "text-fallback " + cand, err
			}
			return nil, "", fmt.Errorf("%w (and no text sibling of %s found to fall back to)", err, base)
		}
	}
	return func() (*temporal.Graph, string, error) {
		snap := path + ".hare"
		if _, serr := os.Stat(snap); serr == nil {
			g, err := temporal.LoadFile(snap, opts)
			if err == nil {
				logf("dataset %s: loaded snapshot sibling %s", path, snap)
				return g, "snapshot-sibling " + snap, nil
			}
			logf("dataset %s: snapshot sibling %s unusable (%v); falling back to text load", path, snap, err)
		}
		g, err := temporal.LoadFile(path, opts)
		return g, "text " + path, err
	}
}

// snapshotBase reports whether path names a snapshot file and returns the
// path with the snapshot suffix removed.
func snapshotBase(path string) (string, bool) {
	if s := strings.TrimSuffix(path, ".hare"); s != path {
		return s, true
	}
	if s := strings.TrimSuffix(path, ".hare.gz"); s != path {
		return s, true
	}
	return "", false
}

// textSiblings lists the text-file candidates a versioned-out snapshot
// falls back to, in probe order.
func textSiblings(base string) []string {
	return []string{base, base + ".txt", base + ".txt.gz", base + ".gz"}
}
