package server

import (
	"container/list"
	"context"
	"sync"
)

// Admission is a weighted FIFO semaphore bounding the total worker budget
// of concurrently running counting jobs. A job declaring weight w (its
// worker count, clamped to [1, budget]) blocks until w budget units are
// free; waiters are granted strictly in arrival order so a wide job cannot
// be starved by a stream of narrow ones.
type Admission struct {
	mu      sync.Mutex
	budget  int
	used    int
	waiters *list.List // of *waiter, front = oldest

	waits    uint64 // acquisitions that had to block
	inflight int    // jobs currently admitted
}

type waiter struct {
	weight int
	ready  chan struct{}
}

// NewAdmission returns a controller with the given worker budget (>= 1).
func NewAdmission(budget int) *Admission {
	if budget < 1 {
		budget = 1
	}
	return &Admission{budget: budget, waiters: list.New()}
}

// Budget returns the total worker budget.
func (a *Admission) Budget() int { return a.budget }

// Acquire blocks until weight units are available or ctx is done. The
// weight is clamped to [1, budget] and returned; pass it to Release.
func (a *Admission) Acquire(ctx context.Context, weight int) (int, error) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.budget {
		weight = a.budget
	}
	a.mu.Lock()
	if a.waiters.Len() == 0 && a.used+weight <= a.budget {
		a.used += weight
		a.inflight++
		a.mu.Unlock()
		return weight, nil
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := a.waiters.PushBack(w)
	a.waits++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return weight, nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx.Done and taking the lock: the units are
			// ours, so hand them back rather than leak them.
			a.used -= weight
			a.inflight--
			a.grant()
		default:
			a.waiters.Remove(elem)
			// Our departure may unblock a narrower waiter behind us.
			a.grant()
		}
		a.mu.Unlock()
		return 0, ctx.Err()
	}
}

// Release returns weight units to the budget and wakes eligible waiters.
func (a *Admission) Release(weight int) {
	a.mu.Lock()
	a.used -= weight
	a.inflight--
	a.grant()
	a.mu.Unlock()
}

// grant admits waiters from the front of the queue while budget lasts.
// Callers hold a.mu.
func (a *Admission) grant() {
	for a.waiters.Len() > 0 {
		w := a.waiters.Front().Value.(*waiter)
		if a.used+w.weight > a.budget {
			return
		}
		a.waiters.Remove(a.waiters.Front())
		a.used += w.weight
		a.inflight++
		close(w.ready)
	}
}

// Stats returns the cumulative blocked-acquire count and current admitted
// job count.
func (a *Admission) Stats() (waits uint64, inflight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waits, a.inflight
}
