package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"hare/internal/live"
	"hare/internal/temporal"
)

// --- Satellite regressions: request canonicalization -----------------------

func TestParseRequestExplicitDeltaZero(t *testing.T) {
	// Absent delta defaults to 600 — pinned by TestParseRequestDefaultsAndErrors.
	// An *explicit* delta=0 is a legal request (the library accepts δ=0:
	// only simultaneous edges form motifs) and must survive parsing instead
	// of being silently rewritten to the default.
	req, _, err := ParseRequest(KindCount, url.Values{"dataset": {"x"}, "delta": {"0"}})
	if err != nil {
		t.Fatal(err)
	}
	if req.Delta != 0 || !req.DeltaSet {
		t.Fatalf("explicit delta=0 parsed to Delta=%d DeltaSet=%v, want 0/true", req.Delta, req.DeltaSet)
	}
	// The two spellings answer differently, so they must key apart.
	def, _, err := ParseRequest(KindCount, url.Values{"dataset": {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if req.Key() == def.Key() {
		t.Fatalf("delta=0 and defaulted delta share cache key %q", req.Key())
	}
	// The validation text matches the contract: >= 0, not > 0.
	_, _, err = ParseRequest(KindCount, url.Values{"dataset": {"x"}, "delta": {"-1"}})
	if err == nil || !strings.Contains(err.Error(), "delta must be >= 0") {
		t.Fatalf("delta=-1 error = %v, want the >= 0 contract", err)
	}
}

func TestNormalizeCanonicalizesThrdZero(t *testing.T) {
	// Explicit thrd=0 means "auto" — exactly like leaving it unset — so
	// normalize clears ThrdSet and every consumer (library backend, shard
	// scatter, response echo) sees one spelling.
	req, _, err := ParseRequest(KindCount, url.Values{"dataset": {"x"}, "thrd": {"0"}})
	if err != nil {
		t.Fatal(err)
	}
	if req.ThrdSet {
		t.Fatalf("explicit thrd=0 left ThrdSet=true (Thrd=%d)", req.Thrd)
	}
	req, _, err = ParseRequest(KindCount, url.Values{"dataset": {"x"}, "thrd": {"25"}})
	if err != nil {
		t.Fatal(err)
	}
	if !req.ThrdSet || req.Thrd != 25 {
		t.Fatalf("thrd=25 parsed to Thrd=%d ThrdSet=%v", req.Thrd, req.ThrdSet)
	}
}

func TestCategoryKeyPanicsOnInvalidMotif(t *testing.T) {
	// normalize guarantees Motif validity before any Key() call; a silent
	// fallback here would file a category-restricted matrix under the
	// unrestricted "all" key. The invariant is enforced with a panic.
	defer func() {
		if recover() == nil {
			t.Fatal("categoryKey on an invalid motif did not panic")
		}
	}()
	categoryKey("M99")
}

// --- Registry: volatile (live) entries --------------------------------------

func TestRegistryVolatileNeverEvicted(t *testing.T) {
	r := NewRegistry(1) // one resident immutable graph max
	var liveLoads atomic.Int64
	g := tinyGraph()
	if err := r.RegisterVolatile("live", "", "live", func() (*temporal.Graph, error) {
		liveLoads.Add(1)
		return g, nil
	}); err != nil {
		t.Fatal(err)
	}
	r.Register("a", "", func() (*temporal.Graph, error) { return tinyGraph(), nil })
	r.Register("b", "", func() (*temporal.Graph, error) { return tinyGraph(), nil })

	// Interleave: volatile resolves between immutable loads that evict each
	// other. The volatile entry never joins the LRU, so churn among the
	// immutables can never evict it, and every Get re-resolves its loader.
	for i := 0; i < 3; i++ {
		if _, err := r.Get("live"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Get("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Get("live"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Get("b"); err != nil {
			t.Fatal(err)
		}
	}
	if got := liveLoads.Load(); got != 6 {
		t.Fatalf("volatile loader ran %d times, want 6 (once per Get)", got)
	}
	_, evictions, resident := r.Stats()
	if resident != 1 {
		t.Fatalf("resident = %d, want 1 (volatile never counts)", resident)
	}
	if evictions != 5 {
		t.Fatalf("evictions = %d, want 5 (a/b churn only)", evictions)
	}
	// List marks the entry live.
	for _, info := range r.List() {
		if info.Name == "live" && !info.Live {
			t.Fatal("List did not mark the volatile entry live")
		}
		if info.Name != "live" && info.Live {
			t.Fatalf("immutable %q marked live", info.Name)
		}
	}
}

// --- Ingest/watch handlers ---------------------------------------------------

func newLiveTestServer(t *testing.T, delta temporal.Timestamp) (*Server, *live.Dataset) {
	t.Helper()
	s, _ := newTestServer(t, Options{})
	d, err := live.New("feed", live.Options{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterLive(d, "test live dataset"); err != nil {
		t.Fatal(err)
	}
	return s, d
}

func post(t *testing.T, s *Server, path, body string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	s.Handler().ServeHTTP(rec, req)
	var out map[string]any
	if rec.Header().Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("POST %s: bad JSON %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec.Code, out
}

func TestIngestHandler(t *testing.T) {
	s, d := newLiveTestServer(t, 600)

	code, body := post(t, s, "/v1/ingest?dataset=feed", "0 1 10\n1 2 20\n")
	if code != http.StatusOK {
		t.Fatalf("ingest status = %d, body %v", code, body)
	}
	if body["accepted"] != 2.0 || body["version"] != 2.0 || body["watermark"] != 20.0 {
		t.Fatalf("ingest response = %v", body)
	}
	if d.Version() != 2 {
		t.Fatalf("dataset version = %d, want 2", d.Version())
	}

	// Line-numbered atomic rejection surfaces as a 400 with the offending
	// line; nothing is ingested.
	code, body = post(t, s, "/v1/ingest?dataset=feed", "2 3 30\n3 4 5\n")
	if code != http.StatusBadRequest {
		t.Fatalf("out-of-order ingest status = %d", code)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "line 2: out-of-order edge at t=5 (last 30)") {
		t.Fatalf("error = %q, want line-numbered rejection", body["error"])
	}
	if d.Version() != 2 || d.Edges() != 2 {
		t.Fatalf("rejected batch mutated dataset: version %d, edges %d", d.Version(), d.Edges())
	}

	// Status-code taxonomy: unknown dataset 404, immutable dataset 400,
	// missing dataset 400, wrong method 405.
	if code, _ := post(t, s, "/v1/ingest?dataset=nope", "0 1 1\n"); code != http.StatusNotFound {
		t.Fatalf("unknown dataset status = %d, want 404", code)
	}
	if code, body := post(t, s, "/v1/ingest?dataset=tiny", "0 1 1\n"); code != http.StatusBadRequest ||
		!strings.Contains(body["error"].(string), "not live") {
		t.Fatalf("immutable dataset status = %d body %v, want 400 'not live'", code, body)
	}
	if code, _ := post(t, s, "/v1/ingest", "0 1 1\n"); code != http.StatusBadRequest {
		t.Fatalf("missing dataset status = %d, want 400", code)
	}
	if code, _ := get(t, s, "/v1/ingest?dataset=feed"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest status = %d, want 405", code)
	}

	// /metrics exports the per-dataset ingest series.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		`hared_ingest_batches_total{dataset="feed"} 1`,
		`hared_ingest_edges_total{dataset="feed"} 2`,
		`hared_ingest_rejected_total{dataset="feed"} 1`,
		`hared_live_version{dataset="feed"} 2`,
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestVersionKeyedCacheKey(t *testing.T) {
	s, d := newLiveTestServer(t, 600)
	req, _, err := ParseRequest(KindCount, url.Values{"dataset": {"feed"}})
	if err != nil {
		t.Fatal(err)
	}
	k1 := s.cacheKey(req)
	if !strings.HasSuffix(k1, "|v1") {
		t.Fatalf("live cache key %q lacks version suffix", k1)
	}
	if _, err := d.Ingest([]temporal.Edge{{From: 0, To: 1, Time: 5}}); err != nil {
		t.Fatal(err)
	}
	if k2 := s.cacheKey(req); k2 == k1 || !strings.HasSuffix(k2, "|v2") {
		t.Fatalf("post-ingest cache key = %q (was %q), want |v2 suffix", k2, k1)
	}
	// Immutable datasets keep their bare canonical key.
	imm, _, err := ParseRequest(KindCount, url.Values{"dataset": {"tiny"}})
	if err != nil {
		t.Fatal(err)
	}
	if k := s.cacheKey(imm); k != imm.Key() {
		t.Fatalf("immutable cache key %q != canonical %q", k, imm.Key())
	}
}

func TestDatasetsReportLiveVersion(t *testing.T) {
	s, d := newLiveTestServer(t, 600)
	if _, err := d.Ingest([]temporal.Edge{{From: 0, To: 1, Time: 5}, {From: 1, To: 2, Time: 9}}); err != nil {
		t.Fatal(err)
	}
	d.Graph() // materialize the snapshot so dims are reportable
	var found bool
	for _, info := range s.Datasets() {
		if info.Name != "feed" {
			continue
		}
		found = true
		if !info.Live || info.Version != 2 || !info.Loaded || info.Edges != 2 {
			t.Fatalf("live dataset info = %+v", info)
		}
	}
	if !found {
		t.Fatal("live dataset missing from Datasets()")
	}
}

func TestWatchHandlerValidation(t *testing.T) {
	s, _ := newLiveTestServer(t, 600)
	cases := []struct {
		path string
		code int
	}{
		{"/v1/watch", http.StatusBadRequest},
		{"/v1/watch?dataset=nope", http.StatusNotFound},
		{"/v1/watch?dataset=tiny", http.StatusBadRequest},
		{"/v1/watch?dataset=feed&motif=M99", http.StatusBadRequest},
		{"/v1/watch?dataset=feed&z=abc", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _ := get(t, s, tc.path); code != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.path, code, tc.code)
		}
	}
	if code, _ := post(t, s, "/v1/watch?dataset=feed", ""); code != http.StatusMethodNotAllowed {
		t.Error("POST watch: want 405")
	}
}
