package server

import (
	"context"
	"fmt"
	"sync"
)

// group is a minimal context-aware singleflight shared by the result
// cache and the graph registry: concurrent calls for one key run fn once,
// and fn receives a context that is canceled only when every caller
// joined on the key has gone — one client disconnecting never fails the
// other members of its flight, while a flight nobody is waiting for
// anymore is shed (its queued admission wait aborts with the context).
//
// fn runs in its own goroutine; a panic inside it resolves the flight
// with an error for every caller instead of wedging the key forever.
type group struct {
	mu sync.Mutex
	m  map[string]*call
}

type call struct {
	done    chan struct{}
	val     any
	err     error
	cancel  context.CancelFunc
	waiters int // callers currently blocked on done; guarded by group.mu
}

// do returns fn's result for key, running it at most once concurrently.
// shared reports that the call was already in flight when this caller
// arrived. If ctx ends first, do returns ctx.Err() — and cancels the
// flight's context if this was its last waiter.
func (g *group) do(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	c, inFlight := g.m[key]
	if !inFlight {
		fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		c = &call{done: make(chan struct{}), cancel: cancel}
		g.m[key] = c
		go g.run(key, c, fctx, fn)
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.val, inFlight, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			c.cancel()
		}
		g.mu.Unlock()
		return nil, inFlight, ctx.Err()
	}
}

func (g *group) run(key string, c *call, fctx context.Context, fn func(context.Context) (any, error)) {
	defer func() {
		if r := recover(); r != nil {
			// Resolve rather than re-panic: the panic happened on a
			// goroutine no HTTP recovery wraps, and an unresolved flight
			// would block every future caller of this key.
			c.val, c.err = nil, fmt.Errorf("internal: compute panicked: %v", r)
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.cancel()
		close(c.done)
	}()
	c.val, c.err = fn(fctx)
}
