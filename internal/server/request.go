package server

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"hare/internal/approx"
	"hare/internal/motif"
	"hare/internal/nullmodel"
	"hare/internal/query"
)

// Kind names a query family. Each kind maps to one /v1 endpoint and one
// Backend method.
type Kind string

// Query kinds.
const (
	KindCount Kind = "count"
	KindStar4 Kind = "star4"
	KindPath4 Kind = "path4"
	KindSig   Kind = "sig"
	KindQuery Kind = "query"
)

// Request is the canonical form of one query. The CLI, the HTTP handlers
// and the result cache all speak this type: handlers parse URL queries into
// it, the cache keys on its Key(), and the daemon's load generator builds
// the same URLs from it.
//
// Workers and Thrd are scheduling hints: every counting algorithm in hare
// is exact and bit-identical at any worker count or degree threshold, so
// they steer resource use but never the answer — and therefore do not
// participate in the cache key.
type Request struct {
	Kind    Kind
	Dataset string
	// Delta is the motif window δ in the dataset's time units. The library
	// accepts δ=0 (only simultaneous edges form motifs), so an explicit
	// delta=0 is honored; only an *absent* delta defaults to 600 — DeltaSet
	// records which was meant.
	Delta    int64
	DeltaSet bool
	// Motif restricts a count query to one motif's category and names the
	// cell to surface as the scalar "count" field (count kind only).
	Motif string
	// Workers is the per-job parallelism hint (0 = the server's job width).
	Workers int
	// Thrd overrides HARE's degree threshold when ThrdSet (0 = auto).
	Thrd    int
	ThrdSet bool
	// Significance options (sig kind only).
	Model   string
	Samples int
	Seed    int64
	// Spec is the motif spec of a query-kind request, in the compact text
	// form or the JSON form (docs/QUERY.md). normalize rewrites it to the
	// canonical text, so isomorphic specs share one cache key.
	Spec string
	// Approximate-mode knobs (star4, path4 and query kinds; docs/APPROX.md).
	// An epsilon parameter switches the request to the sampling estimator;
	// EpsilonSet records that the switch happened (epsilon, confidence, seed
	// and samples then join the cache key — they change the answer). Exact
	// requests leave every approx field zero and their keys byte-unchanged.
	// Samples and Seed are shared with the sig kind: samples pins the draw
	// budget (overriding epsilon sizing), seed fixes the streams.
	Epsilon    float64
	EpsilonSet bool
	Conf       float64
	ConfSet    bool
}

// normalize applies defaults and validates the request. It returns the
// parsed motif label (zero when unrestricted).
func (r *Request) normalize() (motif.Label, error) {
	if r.Dataset == "" {
		return motif.Label{}, fmt.Errorf("missing dataset")
	}
	if !r.DeltaSet && r.Delta == 0 {
		r.Delta = 600
	}
	r.DeltaSet = true // canonical: explicit delta=0 and defaulted 600 both concrete now
	if r.Delta < 0 {
		return motif.Label{}, fmt.Errorf("delta must be >= 0 (got %d)", r.Delta)
	}
	if r.Workers < 0 {
		return motif.Label{}, fmt.Errorf("workers must be >= 0 (got %d)", r.Workers)
	}
	if r.ThrdSet && r.Thrd == 0 {
		// Explicit thrd=0 means "auto", exactly like leaving it unset (the
		// library's WithDegreeThreshold(0) contract) — canonicalize so every
		// consumer (backend options, shard scatter, response echo) agrees.
		r.ThrdSet = false
	}
	var label motif.Label
	if r.Motif != "" {
		if r.Kind != KindCount {
			return motif.Label{}, fmt.Errorf("motif applies only to count queries")
		}
		var err error
		if label, err = motif.ParseLabel(r.Motif); err != nil {
			return motif.Label{}, err
		}
	}
	if r.Spec != "" && r.Kind != KindQuery {
		return motif.Label{}, fmt.Errorf("spec applies only to query requests")
	}
	if r.Kind == KindQuery {
		if r.Spec == "" {
			return motif.Label{}, fmt.Errorf("missing spec")
		}
		s, err := parseSpecParam(r.Spec)
		if err != nil {
			return motif.Label{}, err
		}
		// Canonical rewrite: isomorphic specs (and the text vs JSON forms)
		// collapse to one Key(), so the LRU/singleflight layer works
		// unchanged for the query kind.
		r.Spec = s.Canonical()
	}
	if r.ConfSet && !r.EpsilonSet {
		return motif.Label{}, fmt.Errorf("conf applies only with epsilon")
	}
	if r.EpsilonSet {
		switch r.Kind {
		case KindStar4, KindPath4, KindQuery:
		default:
			return motif.Label{}, fmt.Errorf("epsilon applies only to star4, path4 and query requests")
		}
		if !(r.Epsilon > 0 && r.Epsilon < 1) {
			return motif.Label{}, fmt.Errorf("epsilon must be in (0, 1) (got %v)", r.Epsilon)
		}
		if !r.ConfSet {
			// Canonical: the default confidence is concrete in the request
			// (and its cache key), like the defaulted delta above.
			r.Conf, r.ConfSet = approx.DefaultConfidence, true
		}
		if !(r.Conf > 0 && r.Conf < 1) {
			return motif.Label{}, fmt.Errorf("conf must be in (0, 1) (got %v)", r.Conf)
		}
		if r.Samples < 0 {
			return motif.Label{}, fmt.Errorf("samples must be >= 0 (got %d)", r.Samples)
		}
	} else if r.Kind == KindStar4 || r.Kind == KindPath4 {
		if r.Samples != 0 {
			return motif.Label{}, fmt.Errorf("samples applies only with epsilon or to sig requests")
		}
		if r.Seed != 0 {
			return motif.Label{}, fmt.Errorf("seed applies only with epsilon or to sig requests")
		}
	}
	if r.Kind == KindSig {
		if r.Model == "" {
			r.Model = nullmodel.TimeShuffle.String()
		}
		if _, err := nullmodel.ParseModel(r.Model); err != nil {
			return motif.Label{}, err
		}
		if r.Samples == 0 {
			r.Samples = 20
		}
		if r.Samples < 1 {
			return motif.Label{}, fmt.Errorf("samples must be >= 1 (got %d)", r.Samples)
		}
	}
	return label, nil
}

// categoryKey is the cache-key fragment for a count request's motif
// restriction. Pair and star motifs are counted together (they share
// Algorithm 1), so their categories canonicalize to one key and one cached
// matrix serves both.
func categoryKey(m string) string {
	if m == "" {
		return "all"
	}
	l, err := motif.ParseLabel(m)
	if err != nil {
		// normalize guarantees validity; swallowing the error here would
		// silently poison the unrestricted "all" cache entry with a
		// category-restricted matrix. Fail loudly instead.
		panic(fmt.Sprintf("server: categoryKey(%q) on unvalidated motif: %v", m, err))
	}
	switch l.Category() {
	case motif.CategoryTri:
		return "tri"
	default:
		return "starpair"
	}
}

// Key returns the canonical cache key: every field that can change the
// answer, and none that cannot. Two requests with equal keys are satisfied
// by one computation. Approx-mode keys append every estimator knob; exact
// keys are byte-for-byte what they were before the approx tier existed, so
// exact entries cached by older clients stay addressable.
func (r *Request) Key() string {
	switch r.Kind {
	case KindSig:
		return fmt.Sprintf("sig|%s|%d|%s|%d|%d", r.Dataset, r.Delta, r.Model, r.Samples, r.Seed)
	case KindCount:
		return fmt.Sprintf("count|%s|%d|%s", r.Dataset, r.Delta, categoryKey(r.Motif))
	case KindQuery:
		// r.Spec is canonical after normalize, so every isomorphic spelling
		// of a motif shares one cache entry.
		return fmt.Sprintf("query|%s|%d|%s", r.Dataset, r.Delta, r.Spec) + r.approxKey()
	default:
		return fmt.Sprintf("%s|%s|%d", r.Kind, r.Dataset, r.Delta) + r.approxKey()
	}
}

// approxKey is the estimator-knob key fragment: empty in exact mode (so
// exact keys never change), every answer-shaping knob otherwise.
func (r *Request) approxKey() string {
	if !r.EpsilonSet {
		return ""
	}
	return fmt.Sprintf("|eps%g|conf%g|seed%d|m%d", r.Epsilon, r.Conf, r.Seed, r.Samples)
}

// parseSpecParam accepts both spec forms in one parameter: inputs starting
// with "{" parse as the JSON form, everything else as the compact text form.
func parseSpecParam(s string) (*query.Spec, error) {
	if strings.HasPrefix(strings.TrimSpace(s), "{") {
		return query.ParseSpecJSON([]byte(s))
	}
	return query.ParseSpec(s)
}

// ParseRequest decodes a query string into a normalized Request.
func ParseRequest(kind Kind, q url.Values) (Request, motif.Label, error) {
	r := Request{
		Kind:    kind,
		Dataset: q.Get("dataset"),
		Motif:   q.Get("motif"),
		Model:   q.Get("model"),
		Spec:    q.Get("spec"),
	}
	var err error
	if v := q.Get("delta"); v != "" {
		if r.Delta, err = strconv.ParseInt(v, 10, 64); err != nil {
			return r, motif.Label{}, fmt.Errorf("delta: %v", err)
		}
		r.DeltaSet = true
	}
	w, err := intParam(q, "workers")
	if err != nil {
		return r, motif.Label{}, err
	}
	r.Workers = int(w)
	if v := q.Get("thrd"); v != "" {
		t, err := strconv.Atoi(v)
		if err != nil {
			return r, motif.Label{}, fmt.Errorf("thrd: %v", err)
		}
		r.Thrd, r.ThrdSet = t, true
	}
	s, err := intParam(q, "samples")
	if err != nil {
		return r, motif.Label{}, err
	}
	r.Samples = int(s)
	if r.Seed, err = intParam(q, "seed"); err != nil {
		return r, motif.Label{}, err
	}
	if v := q.Get("epsilon"); v != "" {
		if r.Epsilon, err = strconv.ParseFloat(v, 64); err != nil {
			return r, motif.Label{}, fmt.Errorf("epsilon: %v", err)
		}
		r.EpsilonSet = true
	}
	if v := q.Get("conf"); v != "" {
		if r.Conf, err = strconv.ParseFloat(v, 64); err != nil {
			return r, motif.Label{}, fmt.Errorf("conf: %v", err)
		}
		r.ConfSet = true
	}
	label, err := r.normalize()
	return r, label, err
}

func intParam(q url.Values, name string) (int64, error) {
	v := q.Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	return n, nil
}
