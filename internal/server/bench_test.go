package server_test

// Benchmarks of the serving hot paths, pinned in CI's bench.txt so the
// regression fence watches them: a cached /v1/count hit (the steady-state
// request in production) and a cold request computing a fresh count.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hare"
)

func benchHandler(b *testing.B, cacheSize int) http.Handler {
	b.Helper()
	g := e2eGraph(b)
	srv, err := hare.NewServer(hare.ServerOptions{CacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.RegisterGraph("college", "bench graph", g); err != nil {
		b.Fatal(err)
	}
	return srv.Handler()
}

func serveOnce(b *testing.B, h http.Handler, url string) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("GET %s: %d: %s", url, rec.Code, rec.Body.String())
	}
}

// BenchmarkServeCountCached measures the cache-hit request path:
// routing, canonicalization, LRU lookup and JSON encoding.
func BenchmarkServeCountCached(b *testing.B) {
	h := benchHandler(b, 1024)
	serveOnce(b, h, "/v1/count?dataset=college&delta=600") // warm the key
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveOnce(b, h, "/v1/count?dataset=college&delta=600")
		}
	})
}

// BenchmarkServeCountCold measures the cache-miss request path: every
// iteration uses a fresh δ, so each request runs a full count under
// admission control.
func BenchmarkServeCountCold(b *testing.B) {
	h := benchHandler(b, 1<<20)
	serveOnce(b, h, "/v1/count?dataset=college&delta=600") // load the graph
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			delta := 10_000 + next.Add(1)
			serveOnce(b, h, fmt.Sprintf("/v1/count?dataset=college&delta=%d", delta))
		}
	})
}
