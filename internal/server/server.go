// Package server implements hared, the long-lived concurrent query service
// over hare's counting engines. It is organized as three small layers:
//
//   - a graph Registry that loads each named dataset at most once (via the
//     parallel loader), shares the immutable CSR graph across requests and
//     LRU-evicts residents beyond a budget;
//   - a result Cache keyed by canonicalized request with singleflight
//     deduplication, so a thundering herd of identical queries computes
//     each answer exactly once;
//   - an Admission controller — a weighted FIFO semaphore — bounding the
//     total worker budget of concurrently running counting jobs.
//
// The actual counting is injected through the Backend interface: the root
// hare package (which this package must not import) wires its public
// Count/CountStar4/CountPath4/Ensemble APIs in, so served answers are the
// same bits a direct library call returns.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	"hare/internal/approx"
	"hare/internal/higher"
	"hare/internal/live"
	"hare/internal/motif"
	"hare/internal/nullmodel"
	"hare/internal/query"
	"hare/internal/temporal"
)

// Backend performs the counting for the four query kinds. Implementations
// must be safe for concurrent use and exact: the answer may not depend on
// req.Workers or req.Thrd. ctx is the job's flight context (canceled only
// when every request waiting on the job has gone): the in-process library
// backend may ignore it, a distributed backend (the internal/shard
// coordinator) threads it through its scatter RPCs.
type Backend interface {
	Count(ctx context.Context, g *temporal.Graph, req Request) (CountAnswer, error)
	Star4(ctx context.Context, g *temporal.Graph, req Request) (higher.Star4Counter, error)
	Path4(ctx context.Context, g *temporal.Graph, req Request) (higher.PathCounter, error)
	Significance(ctx context.Context, g *temporal.Graph, req Request) (*nullmodel.Report, error)
	// Query counts the instances of req.Spec (canonical after normalize,
	// guaranteed to parse) within δ — the compiled-plan kind (/v1/query).
	Query(ctx context.Context, g *temporal.Graph, req Request) (uint64, error)
	// Star4Approx, Path4Approx and QueryApprox serve the same three kinds
	// in approximate mode (req.EpsilonSet): a sampled estimate with
	// confidence intervals instead of the exact count. Determinism still
	// holds — the result is a pure function of (g, δ, epsilon, conf, seed,
	// samples), never of req.Workers (docs/APPROX.md).
	Star4Approx(ctx context.Context, g *temporal.Graph, req Request) (*approx.Result, error)
	Path4Approx(ctx context.Context, g *temporal.Graph, req Request) (*approx.Result, error)
	QueryApprox(ctx context.Context, g *temporal.Graph, req Request) (*approx.Result, error)
}

// CountAnswer is a Backend.Count result: the exact matrix plus the
// scheduling the engine actually applied.
type CountAnswer struct {
	Matrix          motif.Matrix
	Workers         int
	DegreeThreshold int
}

// Options configures a Server.
type Options struct {
	// Backend runs the counting jobs (required).
	Backend Backend
	// CacheSize bounds the result cache in entries (0 = default 1024,
	// negative = disable storage; in-flight dedup always applies).
	CacheSize int
	// WorkerBudget bounds the summed worker weight of concurrently running
	// jobs (0 = GOMAXPROCS). A request's weight is its workers parameter,
	// defaulting to the full budget (one exclusive job at a time).
	WorkerBudget int
	// MaxLoadedGraphs bounds resident datasets; least recently used
	// residents are evicted and transparently reload (0 = unbounded).
	MaxLoadedGraphs int
	// Version is reported by /healthz and hared_build_info.
	Version string
	// Role names the process's place in a cluster — "single" (default),
	// "coordinator", or "worker" — reported by /healthz so operators can
	// tell scatter/gather tiers apart (docs/SHARDING.md).
	Role string
}

// Server is the hared HTTP service. Create with New, register datasets,
// then serve Handler.
type Server struct {
	backend   Backend
	registry  *Registry
	cache     *Cache
	admission *Admission
	metrics   *metrics
	version   string
	role      string
	mux       *http.ServeMux

	liveMu sync.RWMutex
	live   map[string]*live.Dataset
}

// New returns a Server with no datasets registered.
func New(opts Options) (*Server, error) {
	if opts.Backend == nil {
		return nil, fmt.Errorf("server: Options.Backend is required")
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 1024
	}
	budget := opts.WorkerBudget
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		backend:   opts.Backend,
		registry:  NewRegistry(opts.MaxLoadedGraphs),
		cache:     NewCache(cacheSize),
		admission: NewAdmission(budget),
		metrics:   newMetrics(),
		version:   opts.Version,
		role:      opts.Role,
		live:      make(map[string]*live.Dataset),
	}
	if s.role == "" {
		s.role = "single"
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/count", s.query(KindCount))
	s.mux.HandleFunc("/v1/star4", s.query(KindStar4))
	s.mux.HandleFunc("/v1/path4", s.query(KindPath4))
	s.mux.HandleFunc("/v1/sig", s.query(KindSig))
	s.mux.HandleFunc("/v1/query", s.query(KindQuery))
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/watch", s.handleWatch)
	s.mux.HandleFunc("/v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Register adds a dataset backed by a loader; see Registry.Register.
func (s *Server) Register(name, desc string, load LoadFunc) error {
	return s.registry.Register(name, desc, load)
}

// RegisterSourced adds a dataset backed by a provenance-reporting loader;
// see Registry.RegisterSourced.
func (s *Server) RegisterSourced(name, desc string, load SourcedLoadFunc) error {
	return s.registry.RegisterSourced(name, desc, load)
}

// RegisterGraph adds a pre-built dataset; see Registry.RegisterGraph.
func (s *Server) RegisterGraph(name, desc string, g *temporal.Graph) error {
	return s.registry.RegisterGraph(name, desc, g)
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Preload loads the named dataset now (instead of on first request) and
// returns its graph.
func (s *Server) Preload(name string) (*temporal.Graph, error) { return s.registry.Get(name) }

// Datasets lists the registered datasets, as /v1/datasets reports them.
// Live datasets report their current version and dimensions; Loaded means
// a graph snapshot for the current version is materialized.
func (s *Server) Datasets() []DatasetInfo {
	out := s.registry.List()
	for i := range out {
		if !out[i].Live {
			continue
		}
		d := s.Live(out[i].Name)
		if d == nil {
			continue // registered volatile but not through RegisterLive
		}
		out[i].Version = d.Version()
		if n, e, ok := d.SnapshotDims(); ok {
			out[i].Loaded = true
			out[i].Nodes, out[i].Edges = n, e
		}
	}
	return out
}

// CacheStats exposes the result-cache counters (hits, misses, evictions,
// coalesced in-flight joins) for tests and load reports.
func (s *Server) CacheStats() (hits, misses, evictions, coalesced uint64) {
	return s.cache.Stats()
}

// httpError is an error with a dedicated HTTP status.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// jobResult is what the cache stores: one computed answer plus the
// scheduling metadata of the job that produced it and the graph shape it
// ran against — carried here so that serving a cached result never needs
// the graph to be resident (a hit on an LRU-evicted dataset must not
// trigger a multi-second reload just to render metadata).
type jobResult struct {
	kind    Kind
	elapsed time.Duration
	workers int
	nodes   int
	edges   int

	count  *CountAnswer
	star4  *higher.Star4Counter
	path4  *higher.PathCounter
	sig    *nullmodel.Report
	motifs *uint64        // query kind: the compiled-spec count
	approx *approx.Result // approx mode of star4/path4/query (req.EpsilonSet)
}

// query returns the handler for one query kind.
func (s *Server) query(kind Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		failed := false
		defer func() { s.metrics.observe(string(kind), time.Since(start), failed) }()
		if r.Method != http.MethodGet {
			failed = true
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		req, label, err := ParseRequest(kind, r.URL.Query())
		if err != nil {
			failed = true
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// The flight's context outlives any single request: one client
		// disconnecting never fails the other members of its coalesced
		// flight. Only when every request for the key has gone is the
		// flight canceled, shedding its queued admission wait.
		// cacheKey appends the dataset version for live datasets, so an
		// answer cached at version v is unreachable once an ingest advances
		// the dataset to v+1 — the entry ages out of the LRU on its own.
		val, hit, shared, err := s.cache.Do(r.Context(), s.cacheKey(req), func(ctx context.Context) (any, error) {
			return s.compute(ctx, req)
		})
		if err != nil {
			failed = true
			status := http.StatusInternalServerError
			var unknown *UnknownDatasetError
			var he *httpError
			switch {
			case errors.As(err, &unknown):
				status = http.StatusNotFound
			case errors.As(err, &he):
				status = he.status
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				// The requester (or its whole flight) went away first.
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		res := val.(*jobResult)
		writeJSON(w, s.response(req, label, res, hit, shared))
	}
}

// compute resolves the dataset and runs one counting job under admission
// control. It executes inside the cache's singleflight: concurrent
// identical requests run it once.
func (s *Server) compute(ctx context.Context, req Request) (any, error) {
	g, err := s.registry.Get(req.Dataset)
	if err != nil {
		return nil, err
	}
	weight, err := s.admission.Acquire(ctx, s.jobWeight(req))
	if err != nil {
		return nil, &httpError{status: http.StatusServiceUnavailable, err: err}
	}
	defer s.admission.Release(weight)
	// The backend always receives the resolved worker count, so the job is
	// exactly as wide as the budget units it holds.
	req.Workers = weight
	start := time.Now()
	res := &jobResult{kind: req.Kind, workers: weight, nodes: g.NumNodes(), edges: g.NumEdges()}
	switch req.Kind {
	case KindCount:
		ans, err := s.backend.Count(ctx, g, req)
		if err != nil {
			return nil, err
		}
		res.count = &ans
	case KindStar4:
		if req.EpsilonSet {
			a, err := s.backend.Star4Approx(ctx, g, req)
			if err != nil {
				return nil, err
			}
			res.approx = a
			break
		}
		c, err := s.backend.Star4(ctx, g, req)
		if err != nil {
			return nil, err
		}
		res.star4 = &c
	case KindPath4:
		if req.EpsilonSet {
			a, err := s.backend.Path4Approx(ctx, g, req)
			if err != nil {
				return nil, err
			}
			res.approx = a
			break
		}
		c, err := s.backend.Path4(ctx, g, req)
		if err != nil {
			return nil, err
		}
		res.path4 = &c
	case KindSig:
		rep, err := s.backend.Significance(ctx, g, req)
		if err != nil {
			return nil, err
		}
		res.sig = rep
	case KindQuery:
		if req.EpsilonSet {
			a, err := s.backend.QueryApprox(ctx, g, req)
			if err != nil {
				return nil, err
			}
			res.approx = a
			break
		}
		n, err := s.backend.Query(ctx, g, req)
		if err != nil {
			return nil, err
		}
		res.motifs = &n
	default:
		return nil, fmt.Errorf("unknown kind %q", req.Kind)
	}
	res.elapsed = time.Since(start)
	return res, nil
}

// jobWeight resolves a request's admission weight: its workers hint, or
// the whole budget when unset.
func (s *Server) jobWeight(req Request) int {
	if req.Workers > 0 {
		return req.Workers
	}
	return s.admission.Budget()
}

// queryResponse is the JSON envelope shared by all /v1 query endpoints.
// Exactly one of Matrix, Patterns, Paths, Motifs is set, per kind.
type queryResponse struct {
	Dataset      string `json:"dataset"`
	DeltaSeconds int64  `json:"delta_seconds"`
	Nodes        int    `json:"nodes"`
	Edges        int    `json:"edges"`

	Matrix          map[string]uint64 `json:"matrix,omitempty"`
	Motif           string            `json:"motif,omitempty"`
	Count           *uint64           `json:"count,omitempty"`
	DegreeThreshold *int              `json:"degree_threshold,omitempty"`

	Patterns map[string]uint64 `json:"patterns,omitempty"`
	Paths    map[string]uint64 `json:"paths,omitempty"`

	// Query kind: the canonical spec text and the compiled plan's pivot
	// family ("center" or "edge"); the count itself is Total.
	Spec  string `json:"spec,omitempty"`
	Pivot string `json:"pivot,omitempty"`

	// Approximate mode (epsilon= on star4/path4/query; docs/APPROX.md).
	// Estimate/CILow/CIHigh carry the total count's interval; Intervals
	// holds the per-cell intervals under the same keys Patterns/Paths use;
	// Total rounds the estimate for clients that only read the exact field.
	// Every approx field is omitted from exact responses, which stay
	// byte-for-byte what they were before the approx tier existed.
	Approx            bool                       `json:"approx,omitempty"`
	Epsilon           float64                    `json:"epsilon,omitempty"`
	Confidence        float64                    `json:"confidence,omitempty"`
	Estimate          *float64                   `json:"estimate,omitempty"`
	CILow             *float64                   `json:"ci_low,omitempty"`
	CIHigh            *float64                   `json:"ci_high,omitempty"`
	Intervals         map[string]approx.Interval `json:"intervals,omitempty"`
	ApproxSamples     int                        `json:"approx_samples,omitempty"`
	ApproxStrata      int                        `json:"approx_strata,omitempty"`
	ApproxExactStrata int                        `json:"approx_exact_strata,omitempty"`

	Model   string     `json:"model,omitempty"`
	Samples int        `json:"samples,omitempty"`
	Seed    *int64     `json:"seed,omitempty"`
	Motifs  []sigMotif `json:"motifs,omitempty"`

	Total     uint64  `json:"total"`
	Workers   int     `json:"workers"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced,omitempty"`
}

// sigMotif is one motif's significance statistics. Z is omitted (ZInf
// carries the sign) when the null has zero variance and the real count
// differs — JSON cannot represent ±Inf.
type sigMotif struct {
	Label  string   `json:"label"`
	Real   uint64   `json:"real"`
	Mean   float64  `json:"mean"`
	Std    float64  `json:"std"`
	Z      *float64 `json:"z,omitempty"`
	ZInf   string   `json:"z_inf,omitempty"`
	PUpper float64  `json:"p_upper"`
	PLower float64  `json:"p_lower"`
}

// response renders a cached or fresh jobResult for one concrete request.
// The same cached matrix serves every motif restriction in its category;
// the requested cell is extracted here, per request.
func (s *Server) response(req Request, label motif.Label, res *jobResult, hit, shared bool) *queryResponse {
	out := &queryResponse{
		Dataset:      req.Dataset,
		DeltaSeconds: req.Delta,
		Nodes:        res.nodes,
		Edges:        res.edges,
		Workers:      res.workers,
		ElapsedMS:    float64(res.elapsed.Nanoseconds()) / 1e6,
		Cached:       hit,
		Coalesced:    shared,
	}
	if res.approx != nil {
		s.renderApprox(out, req, res.approx)
		return out
	}
	switch req.Kind {
	case KindCount:
		m := res.count.Matrix
		out.Matrix = make(map[string]uint64, 36)
		for _, l := range motif.AllLabels() {
			out.Matrix[l.String()] = m.At(l)
		}
		out.Total = m.Total()
		thrd := res.count.DegreeThreshold
		out.DegreeThreshold = &thrd
		if req.Motif != "" {
			out.Motif = label.String()
			c := m.At(label)
			out.Count = &c
		}
	case KindStar4:
		out.Patterns = make(map[string]uint64, 8)
		for i, v := range res.star4 {
			d1, d2, d3 := motif.PairDirs(i)
			out.Patterns[fmt.Sprintf("%s,%s,%s", d1, d2, d3)] = v
		}
		out.Total = res.star4.Total()
	case KindPath4:
		out.Paths = make(map[string]uint64, 24)
		for _, lc := range res.path4.Labels() {
			out.Paths[lc.Label.String()] = lc.Count
		}
		out.Total = res.path4.Total()
	case KindQuery:
		out.Spec = req.Spec
		out.Total = *res.motifs
		// The pivot is a pure function of the canonical spec; recompiling
		// here keeps jobResult backend-agnostic (a shard coordinator's
		// answer renders identically to the local backend's).
		if s, err := query.ParseSpec(req.Spec); err == nil {
			out.Pivot = query.Compile(s).Kind().String()
		}
	case KindSig:
		rep := res.sig
		out.Model = rep.Model.String()
		out.Samples = rep.Trials
		seed := req.Seed
		out.Seed = &seed
		out.Total = rep.Real.Total()
		out.Motifs = make([]sigMotif, 0, 36)
		for _, l := range motif.AllLabels() {
			sm := sigMotif{
				Label:  l.String(),
				Real:   rep.Real.At(l),
				Mean:   rep.MeanAt(l),
				Std:    rep.StdAt(l),
				PUpper: rep.PUpperAt(l),
				PLower: rep.PLowerAt(l),
			}
			switch z := rep.ZScore(l); {
			case math.IsInf(z, 1):
				sm.ZInf = "+"
			case math.IsInf(z, -1):
				sm.ZInf = "-"
			default:
				sm.Z = &z
			}
			out.Motifs = append(out.Motifs, sm)
		}
	}
	return out
}

// renderApprox fills the approx-mode response fields from a finished
// estimate. Per-cell intervals reuse the exact endpoints' cell names, so a
// client can line an estimate up against the exact answer key-for-key.
func (s *Server) renderApprox(out *queryResponse, req Request, a *approx.Result) {
	out.Approx = true
	out.Epsilon = req.Epsilon
	out.Confidence = req.Conf
	t := a.Total
	out.Estimate, out.CILow, out.CIHigh = &t.Estimate, &t.Low, &t.High
	out.Total = uint64(math.Round(t.Estimate))
	out.ApproxSamples = a.Draws
	out.ApproxStrata = a.Strata
	out.ApproxExactStrata = a.ExactStrata
	// Per-cell intervals render only when the backend returned the kind's
	// full cell layout (8 star patterns, 48 path slots) — a backend serving
	// totals only still gets a well-formed envelope.
	switch req.Kind {
	case KindStar4:
		if len(a.Cells) < 8 {
			return
		}
		out.Intervals = make(map[string]approx.Interval, 8)
		for i := 0; i < 8; i++ {
			d1, d2, d3 := motif.PairDirs(i)
			out.Intervals[fmt.Sprintf("%s,%s,%s", d1, d2, d3)] = a.Cells[i]
		}
	case KindPath4:
		labels := higher.AllPathLabels()
		if len(a.Cells) < 48 {
			return
		}
		out.Intervals = make(map[string]approx.Interval, len(labels))
		for _, l := range labels {
			out.Intervals[l.String()] = a.Cells[int(l)]
		}
	case KindQuery:
		out.Spec = req.Spec
		if sp, err := query.ParseSpec(req.Spec); err == nil {
			out.Pivot = query.Compile(sp).Kind().String()
		}
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.metrics.observe("datasets", time.Since(start), false) }()
	writeJSON(w, map[string]any{"datasets": s.Datasets()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.metrics.observe("healthz", time.Since(start), false) }()
	_, _, resident := s.registry.Stats()
	writeJSON(w, map[string]any{
		"status":         "ok",
		"version":        s.version,
		"role":           s.role,
		"datasets":       len(s.registry.List()),
		"loaded":         resident,
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do but note it for the access log.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
