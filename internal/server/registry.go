package server

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"sync"

	"hare/internal/temporal"
)

// LoadFunc produces a dataset's graph. The registry calls it at most once
// per residency: on the first request that needs the dataset, and again
// only if the graph was evicted in between.
type LoadFunc func() (*temporal.Graph, error)

// SourcedLoadFunc is a LoadFunc that also reports the graph's load
// provenance: a short "<kind> <path>" string ("snapshot x.hare",
// "snapshot-sibling x.txt.hare", "text x.txt", "text-fallback x.txt") or a
// bare kind ("memory", "synthetic"). The registry surfaces the last
// successful load's source through /v1/datasets, so operators can see
// which nodes cold-started off binary .hare files and which paid a text
// parse.
type SourcedLoadFunc func() (*temporal.Graph, string, error)

// Registry maps dataset names to immutable graphs, loading each one
// lazily, exactly once per residency (concurrent first requests coalesce
// onto a single load), and evicting the least recently used graph when
// more than maxLoaded are resident. Registrations themselves are never
// evicted — an evicted dataset transparently reloads on next use.
type Registry struct {
	mu        sync.Mutex
	entries   map[string]*regEntry
	lru       *list.List // front = most recently used resident graph
	maxLoaded int
	flights   group // coalesces concurrent first loads per dataset

	loads     uint64
	evictions uint64
}

type regEntry struct {
	name string
	load SourcedLoadFunc
	desc string

	g      *temporal.Graph // nil when not resident
	elem   *list.Element   // position in lru when resident
	source string          // provenance of the last successful load ("" = never loaded)

	// volatile entries (live datasets) re-resolve their graph on every Get
	// and never join the LRU: they cannot be evicted, and their loader —
	// which snapshots mutable state and must stay cheap — is the single
	// source of truth for the current graph.
	volatile bool
}

// NewRegistry returns a registry keeping at most maxLoaded graphs resident
// (0 means unbounded).
func NewRegistry(maxLoaded int) *Registry {
	return &Registry{
		entries:   make(map[string]*regEntry),
		lru:       list.New(),
		maxLoaded: maxLoaded,
	}
}

// Register adds a named dataset backed by a loader with unknown
// provenance. desc is a short human-readable description surfaced by
// /v1/datasets; prefer RegisterSourced when the loader knows where its
// bytes come from.
func (r *Registry) Register(name, desc string, load LoadFunc) error {
	return r.RegisterSourced(name, desc, func() (*temporal.Graph, string, error) {
		g, err := load()
		return g, "", err
	})
}

// RegisterSourced adds a named dataset backed by a provenance-reporting
// loader (see SourcedLoadFunc).
func (r *Registry) RegisterSourced(name, desc string, load SourcedLoadFunc) error {
	if name == "" {
		return fmt.Errorf("server: empty dataset name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.entries[name] = &regEntry{name: name, load: load, desc: desc}
	return nil
}

// RegisterGraph adds a pre-built resident graph. It never loads and, being
// backed by an always-ready loader, reinstates itself at zero cost if
// evicted.
func (r *Registry) RegisterGraph(name, desc string, g *temporal.Graph) error {
	return r.RegisterSourced(name, desc, func() (*temporal.Graph, string, error) { return g, "memory", nil })
}

// RegisterVolatile adds a dataset whose graph changes over time (a live
// dataset): Get calls load on every request — load must therefore be cheap,
// e.g. a version-cached snapshot — and the entry never enters the LRU, so
// eviction pressure from immutable datasets can never touch it.
func (r *Registry) RegisterVolatile(name, desc, source string, load LoadFunc) error {
	if err := r.RegisterSourced(name, desc, func() (*temporal.Graph, string, error) {
		g, err := load()
		return g, source, err
	}); err != nil {
		return err
	}
	r.mu.Lock()
	e := r.entries[name]
	e.volatile = true
	e.source = source
	r.mu.Unlock()
	return nil
}

// Get returns the named graph, loading it if necessary. Concurrent callers
// for the same dataset share one load (and a panicking loader resolves as
// an error instead of wedging the dataset — see group).
func (r *Registry) Get(name string) (*temporal.Graph, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return nil, &UnknownDatasetError{Name: name}
	}
	if e.volatile {
		r.mu.Unlock()
		// No flight, no residency, no LRU: the loader snapshots live state
		// (cheaply, cached per version downstream) and two concurrent Gets
		// may legitimately see different versions.
		g, _, err := e.load()
		return g, err
	}
	if e.g != nil {
		r.lru.MoveToFront(e.elem)
		g := e.g
		r.mu.Unlock()
		return g, nil
	}
	r.mu.Unlock()

	// Loads always run to completion once started — a graph is durable
	// state worth keeping even if the requesters gave up — hence the
	// Background context.
	v, _, err := r.flights.do(context.Background(), name, func(context.Context) (any, error) {
		g, source, err := e.load()
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		// Store before the flight resolves so a Get racing its completion
		// finds the resident graph instead of starting a second load.
		r.loads++
		e.source = source
		if e.elem != nil {
			// Rare duplicate load (a previous flight resolved between this
			// caller's residency check and its flight join): refresh the
			// existing LRU element rather than double-inserting the entry.
			e.g = g
			r.lru.MoveToFront(e.elem)
		} else {
			e.g = g
			e.elem = r.lru.PushFront(e)
			r.evictOverflow()
		}
		r.mu.Unlock()
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*temporal.Graph), nil
}

// evictOverflow drops least-recently-used resident graphs beyond the
// budget. Callers hold r.mu. Graphs handed out earlier stay valid — they
// are immutable and garbage collected once the last request drops them.
func (r *Registry) evictOverflow() {
	if r.maxLoaded <= 0 {
		return
	}
	for r.lru.Len() > r.maxLoaded {
		back := r.lru.Back()
		e := r.lru.Remove(back).(*regEntry)
		e.g, e.elem = nil, nil
		r.evictions++
	}
}

// UnknownDatasetError reports a request for an unregistered dataset.
type UnknownDatasetError struct{ Name string }

func (e *UnknownDatasetError) Error() string {
	return fmt.Sprintf("unknown dataset %q", e.Name)
}

// DatasetInfo describes one registered dataset for /v1/datasets. Source is
// the provenance of the most recent successful load (see SourcedLoadFunc);
// it persists across LRU eviction — it describes where the graph came
// from, not whether it is resident now — and is empty for a dataset that
// has never loaded.
type DatasetInfo struct {
	Name   string `json:"name"`
	Desc   string `json:"desc,omitempty"`
	Loaded bool   `json:"loaded"`
	Source string `json:"source,omitempty"`
	Nodes  int    `json:"nodes,omitempty"`
	Edges  int    `json:"edges,omitempty"`
	// Live datasets (mutable, fed by /v1/ingest) additionally report their
	// current version; immutable datasets are implicitly version 1 and omit
	// both fields. The server fills these in — the registry only knows the
	// entry is volatile.
	Live    bool   `json:"live,omitempty"`
	Version uint64 `json:"version,omitempty"`
}

// List describes the registered datasets, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.entries))
	for _, e := range r.entries {
		info := DatasetInfo{Name: e.name, Desc: e.desc, Loaded: e.g != nil, Source: e.source, Live: e.volatile}
		if e.g != nil {
			info.Nodes = e.g.NumNodes()
			info.Edges = e.g.NumEdges()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns cumulative load and eviction counts and the resident set
// size.
func (r *Registry) Stats() (loads, evictions uint64, resident int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loads, r.evictions, r.lru.Len()
}
