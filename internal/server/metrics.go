package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"hare/internal/live"
)

// metrics aggregates the server's operational counters. Everything is
// cumulative since process start; /metrics renders the Prometheus text
// exposition format so standard scrapers work out of the box.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointStats
}

type endpointStats struct {
	requests uint64
	errors   uint64
	nanos    int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

// observe records one finished request against an endpoint.
func (m *metrics) observe(endpoint string, d time.Duration, failed bool) {
	m.mu.Lock()
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{}
		m.endpoints[endpoint] = st
	}
	st.requests++
	if failed {
		st.errors++
	}
	st.nanos += d.Nanoseconds()
	m.mu.Unlock()
}

// write renders the exposition text. The server passes itself in for the
// cache/registry/admission gauges so all counters appear in one scrape.
func (m *metrics) write(w io.Writer, s *Server) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct {
		name string
		endpointStats
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		rows = append(rows, row{name, *m.endpoints[name]})
	}
	uptime := time.Since(m.start).Seconds()
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP hared_requests_total Requests served, by endpoint.\n# TYPE hared_requests_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hared_requests_total{endpoint=%q} %d\n", r.name, r.requests)
	}
	fmt.Fprintf(w, "# HELP hared_request_errors_total Requests that returned an error status, by endpoint.\n# TYPE hared_request_errors_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hared_request_errors_total{endpoint=%q} %d\n", r.name, r.errors)
	}
	fmt.Fprintf(w, "# HELP hared_request_seconds_total Wall-clock time spent serving, by endpoint.\n# TYPE hared_request_seconds_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "hared_request_seconds_total{endpoint=%q} %g\n", r.name, float64(r.nanos)/1e9)
	}

	hits, misses, evictions, coalesced := s.cache.Stats()
	fmt.Fprintf(w, "# HELP hared_cache_hits_total Results served from the LRU cache.\n# TYPE hared_cache_hits_total counter\nhared_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP hared_cache_misses_total Results computed fresh.\n# TYPE hared_cache_misses_total counter\nhared_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP hared_cache_evictions_total Results aged out of the LRU cache.\n# TYPE hared_cache_evictions_total counter\nhared_cache_evictions_total %d\n", evictions)
	fmt.Fprintf(w, "# HELP hared_dedup_coalesced_total Requests that joined another request's in-flight computation.\n# TYPE hared_dedup_coalesced_total counter\nhared_dedup_coalesced_total %d\n", coalesced)
	fmt.Fprintf(w, "# HELP hared_cache_entries Results currently cached.\n# TYPE hared_cache_entries gauge\nhared_cache_entries %d\n", s.cache.Len())

	waits, inflight := s.admission.Stats()
	fmt.Fprintf(w, "# HELP hared_admission_waits_total Jobs that blocked for worker budget.\n# TYPE hared_admission_waits_total counter\nhared_admission_waits_total %d\n", waits)
	fmt.Fprintf(w, "# HELP hared_jobs_inflight Counting jobs currently admitted.\n# TYPE hared_jobs_inflight gauge\nhared_jobs_inflight %d\n", inflight)
	fmt.Fprintf(w, "# HELP hared_worker_budget Total admission worker budget.\n# TYPE hared_worker_budget gauge\nhared_worker_budget %d\n", s.admission.Budget())

	loads, devictions, resident := s.registry.Stats()
	fmt.Fprintf(w, "# HELP hared_dataset_loads_total Dataset graph loads.\n# TYPE hared_dataset_loads_total counter\nhared_dataset_loads_total %d\n", loads)
	fmt.Fprintf(w, "# HELP hared_dataset_evictions_total Dataset graphs evicted from the registry.\n# TYPE hared_dataset_evictions_total counter\nhared_dataset_evictions_total %d\n", devictions)
	fmt.Fprintf(w, "# HELP hared_datasets_resident Dataset graphs currently loaded.\n# TYPE hared_datasets_resident gauge\nhared_datasets_resident %d\n", resident)

	if lds := s.liveDatasets(); len(lds) > 0 {
		type liveRow struct {
			name  string
			stats live.Stats
		}
		lrows := make([]liveRow, 0, len(lds))
		for _, d := range lds {
			lrows = append(lrows, liveRow{d.Name(), d.Stats()})
		}
		sort.Slice(lrows, func(i, j int) bool { return lrows[i].name < lrows[j].name })
		fmt.Fprintf(w, "# HELP hared_ingest_batches_total Accepted ingest batches, by live dataset.\n# TYPE hared_ingest_batches_total counter\n")
		for _, r := range lrows {
			fmt.Fprintf(w, "hared_ingest_batches_total{dataset=%q} %d\n", r.name, r.stats.Ingests)
		}
		fmt.Fprintf(w, "# HELP hared_ingest_edges_total Accepted ingested edges, by live dataset.\n# TYPE hared_ingest_edges_total counter\n")
		for _, r := range lrows {
			fmt.Fprintf(w, "hared_ingest_edges_total{dataset=%q} %d\n", r.name, r.stats.Edges)
		}
		fmt.Fprintf(w, "# HELP hared_ingest_rejected_total Rejected ingest batches, by live dataset.\n# TYPE hared_ingest_rejected_total counter\n")
		for _, r := range lrows {
			fmt.Fprintf(w, "hared_ingest_rejected_total{dataset=%q} %d\n", r.name, r.stats.Rejected)
		}
		fmt.Fprintf(w, "# HELP hared_live_version Current version, by live dataset.\n# TYPE hared_live_version gauge\n")
		for _, r := range lrows {
			fmt.Fprintf(w, "hared_live_version{dataset=%q} %d\n", r.name, r.stats.Version)
		}
		fmt.Fprintf(w, "# HELP hared_watch_alerts_total Significance alerts published, by live dataset.\n# TYPE hared_watch_alerts_total counter\n")
		for _, r := range lrows {
			fmt.Fprintf(w, "hared_watch_alerts_total{dataset=%q} %d\n", r.name, r.stats.Alerts)
		}
		fmt.Fprintf(w, "# HELP hared_watch_dropped_total Alerts dropped on full subscriber buffers, by live dataset.\n# TYPE hared_watch_dropped_total counter\n")
		for _, r := range lrows {
			fmt.Fprintf(w, "hared_watch_dropped_total{dataset=%q} %d\n", r.name, r.stats.Dropped)
		}
		fmt.Fprintf(w, "# HELP hared_watch_subscribers Watch subscribers currently connected, by live dataset.\n# TYPE hared_watch_subscribers gauge\n")
		for _, r := range lrows {
			fmt.Fprintf(w, "hared_watch_subscribers{dataset=%q} %d\n", r.name, r.stats.Subscribers)
		}
	}

	fmt.Fprintf(w, "# HELP hared_uptime_seconds Seconds since the server started.\n# TYPE hared_uptime_seconds gauge\nhared_uptime_seconds %g\n", uptime)
	fmt.Fprintf(w, "# HELP hared_build_info Build metadata as labels; value is always 1.\n# TYPE hared_build_info gauge\nhared_build_info{version=%q} 1\n", s.version)
}
