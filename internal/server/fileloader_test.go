package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hare/internal/temporal"
)

// fileLoaderGraph returns a small graph plus a second, distinguishable one
// so tests can tell which file a loader actually read.
func fileLoaderGraphs(t *testing.T) (text, snap *temporal.Graph) {
	t.Helper()
	text = temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 10}, {From: 1, To: 2, Time: 20},
	})
	snap = temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 10}, {From: 1, To: 2, Time: 20}, {From: 2, To: 0, Time: 30},
	})
	return text, snap
}

// futureSnapshot writes g as a snapshot at path, then bumps the format
// version field so decoding yields a *temporal.SnapshotVersionError.
func futureSnapshot(t *testing.T, path string, g *temporal.Graph) {
	t.Helper()
	if err := temporal.SaveSnapshot(path, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:12], temporal.SnapshotVersion+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFileLoaderTextPath(t *testing.T) {
	textG, snapG := fileLoaderGraphs(t)
	dir := t.TempDir()
	text := filepath.Join(dir, "edges.txt")
	if err := temporal.SaveFile(text, textG); err != nil {
		t.Fatal(err)
	}

	t.Run("no sibling", func(t *testing.T) {
		g, source, err := FileLoader(text, temporal.LoadOptions{}, t.Logf)()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != textG.NumEdges() {
			t.Fatalf("got %d edges, want %d (text)", g.NumEdges(), textG.NumEdges())
		}
		if want := "text " + text; source != want {
			t.Fatalf("source = %q, want %q", source, want)
		}
	})

	t.Run("prefers snapshot sibling", func(t *testing.T) {
		if err := temporal.SaveSnapshot(text+".hare", snapG); err != nil {
			t.Fatal(err)
		}
		defer os.Remove(text + ".hare")
		var logs []string
		logf := func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
		g, source, err := FileLoader(text, temporal.LoadOptions{}, logf)()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != snapG.NumEdges() {
			t.Fatalf("got %d edges, want %d (snapshot sibling)", g.NumEdges(), snapG.NumEdges())
		}
		if len(logs) != 1 || !strings.Contains(logs[0], "snapshot sibling") {
			t.Fatalf("want one sibling log line, got %q", logs)
		}
		if want := "snapshot-sibling " + text + ".hare"; source != want {
			t.Fatalf("source = %q, want %q", source, want)
		}
	})

	t.Run("corrupt sibling falls back to text", func(t *testing.T) {
		if err := os.WriteFile(text+".hare", []byte("not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		defer os.Remove(text + ".hare")
		var logs []string
		logf := func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
		g, source, err := FileLoader(text, temporal.LoadOptions{}, logf)()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != textG.NumEdges() {
			t.Fatalf("got %d edges, want %d (text fallback)", g.NumEdges(), textG.NumEdges())
		}
		if len(logs) != 1 || !strings.Contains(logs[0], "unusable") {
			t.Fatalf("want one fallback log line, got %q", logs)
		}
		if want := "text " + text; source != want {
			t.Fatalf("source = %q, want %q", source, want)
		}
	})
}

func TestFileLoaderSnapshotPath(t *testing.T) {
	textG, snapG := fileLoaderGraphs(t)

	t.Run("valid", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "g.hare")
		if err := temporal.SaveSnapshot(path, snapG); err != nil {
			t.Fatal(err)
		}
		g, source, err := FileLoader(path, temporal.LoadOptions{}, nil)()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != snapG.NumEdges() {
			t.Fatalf("got %d edges, want %d", g.NumEdges(), snapG.NumEdges())
		}
		if want := "snapshot " + path; source != want {
			t.Fatalf("source = %q, want %q", source, want)
		}
	})

	t.Run("future version falls back to text sibling", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "g.txt.hare")
		futureSnapshot(t, path, snapG)
		if err := temporal.SaveFile(filepath.Join(dir, "g.txt"), textG); err != nil {
			t.Fatal(err)
		}
		var logs []string
		logf := func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }
		g, source, err := FileLoader(path, temporal.LoadOptions{}, logf)()
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != textG.NumEdges() {
			t.Fatalf("got %d edges, want %d (text fallback)", g.NumEdges(), textG.NumEdges())
		}
		if len(logs) != 1 || !strings.Contains(logs[0], "falling back to text load") {
			t.Fatalf("want one fallback log line, got %q", logs)
		}
		if want := "text-fallback " + filepath.Join(dir, "g.txt"); source != want {
			t.Fatalf("source = %q, want %q", source, want)
		}
	})

	t.Run("future version without sibling fails typed", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "g.hare")
		futureSnapshot(t, path, snapG)
		_, _, err := FileLoader(path, temporal.LoadOptions{}, nil)()
		var ve *temporal.SnapshotVersionError
		if !errors.As(err, &ve) {
			t.Fatalf("want *SnapshotVersionError, got %v", err)
		}
		if ve.Version != temporal.SnapshotVersion+1 {
			t.Fatalf("version = %d, want %d", ve.Version, temporal.SnapshotVersion+1)
		}
	})

	t.Run("corruption is loud", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "g.txt.hare")
		if err := temporal.SaveSnapshot(path, snapG); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// A text sibling exists, but corruption must NOT fall back to it.
		if err := temporal.SaveFile(filepath.Join(dir, "g.txt"), textG); err != nil {
			t.Fatal(err)
		}
		_, _, err = FileLoader(path, temporal.LoadOptions{}, nil)()
		if !errors.Is(err, temporal.ErrSnapshotChecksum) && !errors.Is(err, temporal.ErrSnapshotMalformed) {
			t.Fatalf("want a typed corruption error, got %v", err)
		}
	})
}

func TestFileLoaderInRegistry(t *testing.T) {
	_, snapG := fileLoaderGraphs(t)
	path := filepath.Join(t.TempDir(), "g.hare")
	if err := temporal.SaveSnapshot(path, snapG); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(0)
	if err := r.RegisterSourced("snap", "snapshot "+path, FileLoader(path, temporal.LoadOptions{}, nil)); err != nil {
		t.Fatal(err)
	}
	g, err := r.Get("snap")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != snapG.NumEdges() {
		t.Fatalf("got %d edges, want %d", g.NumEdges(), snapG.NumEdges())
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Source != "snapshot "+path {
		t.Fatalf("List source = %+v, want snapshot %s", infos, path)
	}
}
