package server

import (
	"container/list"
	"context"
	"sync"
)

// Cache is an LRU result cache with singleflight deduplication: for each
// canonical request key, a thundering herd of concurrent identical
// requests computes the answer exactly once — one flight runs compute,
// every request for the key joins it — and subsequent requests hit the
// stored value until it ages out of the LRU.
//
// Only successful results are stored; errors propagate to the flight's
// cohort and the next request retries. compute receives a context that
// ends only when every request joined on the key has gone (see group).
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	flights group

	hits      uint64
	misses    uint64
	evictions uint64
	coalesced uint64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache holding at most capacity results. capacity <= 0
// disables storage; deduplication of in-flight computations still applies.
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Do returns the cached value for key, or computes it via compute. hit
// reports a cache hit; shared reports that the value came from another
// request's in-flight computation (a dedup coalesce).
func (c *Cache) Do(ctx context.Context, key string, compute func(context.Context) (any, error)) (val any, hit, shared bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		val = el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true, false, nil
	}
	c.mu.Unlock()

	val, shared, err = c.flights.do(ctx, key, func(fctx context.Context) (any, error) {
		v, err := compute(fctx)
		if err == nil {
			// Store before the flight resolves, so a caller re-entering
			// right after its flight completes finds the entry.
			c.store(key, v)
		}
		return v, err
	})
	c.mu.Lock()
	if shared {
		c.coalesced++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return val, false, shared, err
}

// store inserts a computed value and evicts beyond capacity.
func (c *Cache) store(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// A rare duplicate compute (flight resolved between this caller's
		// cache check and flight join): refresh rather than double-insert.
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	}
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		e := c.lru.Remove(back).(*cacheEntry)
		delete(c.entries, e.key)
		c.evictions++
	}
	c.mu.Unlock()
}

// Len returns the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns cumulative hit, miss, eviction and coalesce counts.
func (c *Cache) Stats() (hits, misses, evictions, coalesced uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.coalesced
}
