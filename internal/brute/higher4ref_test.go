package brute

import (
	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// 4-node, 3-edge reference counters. Like Count they enumerate every
// chronologically ordered edge triple within δ and classify its induced
// shape from first principles — shared with the algorithms under test is
// only the label *encoding* (motif.PairIndex / higher.CanonicalPath), never
// the counting or window logic. They live in the test build (not brute's
// shipped API) so the brute package itself stays free of a higher
// dependency, which would cycle through the in-package tests of higher's
// own dependencies (fast, engine).

// CountStar4 exhaustively counts 4-node star instances: ordered triples
// within δ whose edges share one common center and reach three distinct
// far endpoints.
func CountStar4(g *temporal.Graph, delta temporal.Timestamp) higher.Star4Counter {
	var out higher.Star4Counter
	edges := g.Edges()
	forTriples(edges, delta, func(i, j, k int) {
		e1, e2, e3 := edges[i], edges[j], edges[k]
		for _, u := range [2]temporal.NodeID{e1.From, e1.To} {
			if !incident4(e2, u) || !incident4(e3, u) {
				continue
			}
			o1, o2, o3 := other4(e1, u), other4(e2, u), other4(e3, u)
			if o1 == o2 || o1 == o3 || o2 == o3 {
				continue
			}
			out[motif.PairIndex(dir4(e1, u), dir4(e2, u), dir4(e3, u))]++
		}
	})
	return out
}

// CountPath4 exhaustively counts 4-node path instances: ordered triples
// within δ over exactly four distinct nodes where one edge (the structural
// middle) shares one endpoint with each of the other two, whose far ends
// differ. The canonical label derives from the middle's stored orientation
// exactly as documented on CountPaths.
func CountPath4(g *temporal.Graph, delta temporal.Timestamp) higher.PathCounter {
	var out higher.PathCounter
	edges := g.Edges()
	forTriples(edges, delta, func(i, j, k int) {
		idx := [3]int{i, j, k}
		// Try each edge in the middle role; a genuine path admits exactly
		// one, so no instance can be double-counted.
		for m := 0; m < 3; m++ {
			mid := edges[idx[m]]
			legF := edges[idx[(m+1)%3]]
			legG := edges[idx[(m+2)%3]]
			b, c := mid.From, mid.To
			if b == c {
				continue
			}
			// legF must touch b (not c); legG must touch c (not b) — try
			// both assignments of the two non-middle edges.
			for swap := 0; swap < 2; swap++ {
				if swap == 1 {
					legF, legG = legG, legF
				}
				a, okF := farEnd(legF, b, c)
				d, okG := farEnd(legG, c, b)
				if !okF || !okG || a == d {
					continue
				}
				rankF := rankOf(idx[(m+1+swap)%3], idx) // index of legF after swap
				rankG := rankOf(idx[(m+2-swap)%3], idx)
				rankM := rankOf(idx[m], idx)
				fwdF := legF.To == b   // f points into b: a→b
				fwdG := legG.From == c // g points out of c: c→d
				out[higher.CanonicalPath(rankF, rankM, rankG, fwdF, true, fwdG)]++
			}
		}
	})
	return out
}

// forTriples calls fn for every chronologically ordered triple i<j<k with
// t_k − t_i ≤ δ (edges are EdgeID-sorted, so index order is the total
// temporal order).
func forTriples(edges []temporal.Edge, delta temporal.Timestamp, fn func(i, j, k int)) {
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			if edges[j].Time-edges[i].Time > delta {
				break
			}
			for k := j + 1; k < len(edges); k++ {
				if edges[k].Time-edges[i].Time > delta {
					break
				}
				fn(i, j, k)
			}
		}
	}
}

// farEnd returns the endpoint of leg opposite to anchor, requiring that leg
// touches anchor exactly once and avoids the forbidden node (the middle's
// other endpoint — a leg reaching it would close a triangle or multi-edge).
func farEnd(leg temporal.Edge, anchor, forbidden temporal.NodeID) (temporal.NodeID, bool) {
	var far temporal.NodeID
	switch anchor {
	case leg.From:
		far = leg.To
	case leg.To:
		far = leg.From
	default:
		return 0, false
	}
	if far == anchor || far == forbidden {
		return 0, false
	}
	return far, true
}

// rankOf returns the temporal rank (0..2) of index x within the sorted
// triple idx (idx is ascending, so rank is the position).
func rankOf(x int, idx [3]int) int {
	switch x {
	case idx[0]:
		return 0
	case idx[1]:
		return 1
	default:
		return 2
	}
}

func incident4(e temporal.Edge, u temporal.NodeID) bool { return e.From == u || e.To == u }

func other4(e temporal.Edge, u temporal.NodeID) temporal.NodeID {
	if e.From == u {
		return e.To
	}
	return e.From
}

func dir4(e temporal.Edge, u temporal.NodeID) motif.Dir {
	if e.From == u {
		return motif.Out
	}
	return motif.In
}
