package brute

import (
	"testing"

	"hare/internal/motif"
	"hare/internal/temporal"
)

func TestCountTinyKnown(t *testing.T) {
	// Three parallel edges u->v within δ: exactly one M55 instance.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 0}, {From: 0, To: 1, Time: 5}, {From: 0, To: 1, Time: 9},
	})
	m := Count(g, 10)
	if m.Total() != 1 || m.At(motif.Label{Row: 5, Col: 5}) != 1 {
		t.Fatalf("matrix:\n%v", &m)
	}
	// With δ = 8 the window excludes the triple.
	m = Count(g, 8)
	if m.Total() != 0 {
		t.Fatalf("δ=8 total = %d, want 0", m.Total())
	}
}

func TestCountCycle(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	m := Count(g, 10)
	if m.Total() != 1 || m.At(motif.Label{Row: 2, Col: 6}) != 1 {
		t.Fatalf("cycle should be one M26:\n%v", &m)
	}
}

func TestEnumerate(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
		{From: 3, To: 4, Time: 100}, // unrelated edge far away in time
	})
	inst := Enumerate(g, 10)
	if len(inst) != 1 {
		t.Fatalf("instances = %d, want 1", len(inst))
	}
	if inst[0].Label != (motif.Label{Row: 2, Col: 6}) {
		t.Fatalf("label = %v, want M26", inst[0].Label)
	}
	if inst[0].Edges != [3]temporal.EdgeID{0, 1, 2} {
		t.Fatalf("edges = %v", inst[0].Edges)
	}
}

func TestCountLabel(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	if got := CountLabel(g, 10, motif.Label{Row: 2, Col: 6}); got != 1 {
		t.Fatalf("M26 = %d, want 1", got)
	}
	if got := CountLabel(g, 10, motif.Label{Row: 1, Col: 1}); got != 0 {
		t.Fatalf("M11 = %d, want 0", got)
	}
}

func TestFourNodePatternsIgnored(t *testing.T) {
	// Connected in aggregate but any triple spans 4 nodes -> no motifs...
	// here: a path of 3 edges over 4 nodes.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 3, Time: 3},
	})
	if m := Count(g, 10); m.Total() != 0 {
		t.Fatalf("4-node path counted: %d", m.Total())
	}
}
