package brute

import "hare/internal/temporal"

// SpecEdge is one directed edge of a motif spec, endpoints given as node
// *variable* indices. It mirrors internal/query's edge type without
// importing it: brute is the oracle for every counting package, including
// the ones query compiles onto, and those packages' in-package tests import
// brute — an import of query here would close that cycle. Callers hand in
// query's Spec.Edges() (canonicalized or not; the count is invariant under
// variable renaming).
type SpecEdge struct {
	Src, Dst int
}

// CountSpec exhaustively counts the instances of a 3-edge motif spec: the
// chronologically ordered edge triples (i < j < k by EdgeID, t_k − t_i ≤ δ)
// admitting an injective assignment of the spec's node variables such that
// the spec's n-th listed edge is the triple's n-th edge with matching
// direction. It shares nothing with the compiled plans — no windows, no
// pivots, no canonicalization — only the triple scan above: the independent
// reference the query compiler is validated against.
func CountSpec(g *temporal.Graph, delta temporal.Timestamp, spec [3]SpecEdge) uint64 {
	src, dst, ts := g.Src(), g.Dst(), g.Times()
	var count uint64
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			if ts[j]-ts[i] > delta {
				break
			}
			for k := j + 1; k < len(ts); k++ {
				if ts[k]-ts[i] > delta {
					break
				}
				if unifies(spec, [3]int{i, j, k}, src, dst) {
					count++
				}
			}
		}
	}
	return count
}

// unifies reports whether binding the spec's slots to the given edge rows
// yields a consistent, injective variable assignment.
func unifies(spec [3]SpecEdge, rows [3]int, src, dst []temporal.NodeID) bool {
	var bind [8]temporal.NodeID // variable -> node, while set
	var set [8]bool
	assign := func(v int, node temporal.NodeID) bool {
		if set[v] {
			return bind[v] == node
		}
		for u, ok := range set {
			if ok && bind[u] == node {
				return false // injectivity: two variables, one node
			}
		}
		bind[v], set[v] = node, true
		return true
	}
	for slot, e := range spec {
		if !assign(e.Src, src[rows[slot]]) || !assign(e.Dst, dst[rows[slot]]) {
			return false
		}
	}
	return true
}
