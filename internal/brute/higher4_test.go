package brute

import (
	"math/rand"
	"testing"

	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func randomGraph4(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % temporal.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

// Known instances pin the reference itself before it referees anything.
func TestBruteStar4Known(t *testing.T) {
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 2, To: 0, Time: 2},
		{From: 0, To: 3, Time: 3},
	})
	c := CountStar4(g, 10)
	if c.Total() != 1 || c.At(motif.Out, motif.In, motif.Out) != 1 {
		t.Fatalf("star reference wrong: %s", &c)
	}
	if c := CountStar4(g, 1); c.Total() != 0 {
		t.Fatal("δ window ignored")
	}
}

func TestBrutePath4Known(t *testing.T) {
	// a→b (t1), b→c (t2), c→d (t3): one path, roles in temporal order
	// f,m,g, all forward.
	g := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 1, To: 2, Time: 2},
		{From: 2, To: 3, Time: 3},
	})
	c := CountPath4(g, 10)
	if c.Total() != 1 {
		t.Fatalf("path reference total = %d, want 1", c.Total())
	}
	if got := c.At(higher.CanonicalPath(0, 1, 2, true, true, true)); got != 1 {
		t.Fatalf("canonical forward path not counted: %v", c.Labels())
	}
	// A star and a triangle must contribute nothing.
	star := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 0, To: 2, Time: 2}, {From: 0, To: 3, Time: 3},
	})
	if c := CountPath4(star, 10); c.Total() != 0 {
		t.Fatal("star counted as path")
	}
	tri := temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	if c := CountPath4(tri, 10); c.Total() != 0 {
		t.Fatal("triangle counted as path")
	}
}

// Differential: higher.CountStar4 — sequential and every parallel
// scheduling regime — must agree bit-for-bit with exhaustive enumeration.
// Run under -race in CI, this also vets the worker machinery.
func TestDifferentialStar4(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph4(r, 3+r.Intn(10), 1+r.Intn(130), 1+int64(r.Intn(30)))
		delta := int64(r.Intn(20))
		want := CountStar4(g, delta)
		for _, opts := range []higher.Options{
			{Workers: 1},
			{Workers: 4},
			{Workers: 4, DegreeThreshold: 1}, // force the intra-center stage
		} {
			got := higher.CountStar4(g, delta, opts)
			if got != want {
				t.Fatalf("trial %d δ=%d opts %+v:\n got %s\nwant %s",
					trial, delta, opts, &got, &want)
			}
		}
	}
}

// Differential for the path counter, same regimes.
func TestDifferentialPath4(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph4(r, 4+r.Intn(8), 1+r.Intn(110), 1+int64(r.Intn(25)))
		delta := int64(r.Intn(15))
		want := CountPath4(g, delta)
		for _, opts := range []higher.Options{
			{Workers: 1},
			{Workers: 4},
			{Workers: 4, DegreeThreshold: 1}, // every middle edge heavy
		} {
			got := higher.CountPath4(g, delta, opts)
			if got != want {
				t.Fatalf("trial %d δ=%d opts %+v: mismatch\n got %v\nwant %v",
					trial, delta, opts, got.Labels(), want.Labels())
			}
		}
	}
}

// Tie-heavy timestamps stress EdgeID rank derivation on both shapes.
func TestDifferentialTieHeavy(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph4(r, 4+r.Intn(5), 1+r.Intn(90), 1+int64(r.Intn(3)))
		delta := int64(r.Intn(4))
		if got, want := higher.CountStar4(g, delta, higher.Options{Workers: 4}), CountStar4(g, delta); got != want {
			t.Fatalf("trial %d: star mismatch", trial)
		}
		if got, want := higher.CountPath4(g, delta, higher.Options{Workers: 4}), CountPath4(g, delta); got != want {
			t.Fatalf("trial %d: path mismatch", trial)
		}
	}
}
