// Package brute enumerates δ-temporal motif instances by exhaustive window
// scanning. It is the ground-truth oracle used to validate every counting
// algorithm in this repository; it shares no code with the algorithms under
// test (classification goes through motif.Classify, which derives labels from
// first principles).
//
// Complexity is O(|E| · w²) for window size w — use only on test-sized
// graphs.
package brute

import (
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Count enumerates every chronologically ordered edge triple (i < j < k by
// EdgeID) with t_k − t_i ≤ δ whose induced graph is a connected 2- or 3-node
// pattern, and tallies the triples per motif label.
func Count(g *temporal.Graph, delta temporal.Timestamp) motif.Matrix {
	var m motif.Matrix
	// Read the columnar edge store directly; EdgeID order is the row order.
	src, dst, ts := g.Src(), g.Dst(), g.Times()
	for i := 0; i < len(ts); i++ {
		ei := temporal.Edge{From: src[i], To: dst[i], Time: ts[i]}
		for j := i + 1; j < len(ts); j++ {
			if ts[j]-ts[i] > delta {
				break
			}
			ej := temporal.Edge{From: src[j], To: dst[j], Time: ts[j]}
			for k := j + 1; k < len(ts); k++ {
				if ts[k]-ts[i] > delta {
					break
				}
				ek := temporal.Edge{From: src[k], To: dst[k], Time: ts[k]}
				if l, ok := motif.Classify(ei, ej, ek); ok {
					m.AddAt(l, 1)
				}
			}
		}
	}
	return m
}

// CountLabel counts instances of a single motif label (convenience for
// baseline tests).
func CountLabel(g *temporal.Graph, delta temporal.Timestamp, label motif.Label) uint64 {
	m := Count(g, delta)
	return m.At(label)
}

// Instance is one enumerated motif occurrence (EdgeIDs in chronological
// order).
type Instance struct {
	Label motif.Label
	Edges [3]temporal.EdgeID
}

// Enumerate returns every motif instance explicitly. Intended for tests and
// examples that need to inspect occurrences, not just counts.
func Enumerate(g *temporal.Graph, delta temporal.Timestamp) []Instance {
	var out []Instance
	src, dst, ts := g.Src(), g.Dst(), g.Times()
	edge := func(i int) temporal.Edge { return temporal.Edge{From: src[i], To: dst[i], Time: ts[i]} }
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			if ts[j]-ts[i] > delta {
				break
			}
			for k := j + 1; k < len(ts); k++ {
				if ts[k]-ts[i] > delta {
					break
				}
				if l, ok := motif.Classify(edge(i), edge(j), edge(k)); ok {
					out = append(out, Instance{
						Label: l,
						Edges: [3]temporal.EdgeID{temporal.EdgeID(i), temporal.EdgeID(j), temporal.EdgeID(k)},
					})
				}
			}
		}
	}
	return out
}
