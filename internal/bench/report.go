package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/nullmodel"
	"hare/internal/temporal"
)

// ReportSchema versions the JSON benchmark report format. Schema 2 added
// the load_* fields (edge-list text parsing throughput, sequential and
// parallel, and whole-load allocations per edge). Schema 3 added the sig_*
// fields (null-model ensemble throughput, parallel vs sequential). Schema
// 5 added the serve_* fields (hared query-service throughput, cold vs
// cached requests under concurrency); 4 was skipped so that from here on
// the schema number also names the CI bench artifact (BENCH_<schema>),
// which CI derives from this field — the workflow never hardcodes it.
// Schema 6 added the snap_* fields (cold start from a binary .hare
// snapshot file vs parsing the text edge list). Schema 7 added the
// shard_* fields (scatter/gather /v1/star4 latency through 1/2/4
// single-threaded shard workers over loopback HTTP, docs/SHARDING.md).
// Schema 8 added the query_* fields (the motif-spec compiler of
// docs/QUERY.md: a compiled star plan against the hand-tuned CountStar4
// it lowers to, and the generic edge-pivot executor on a temporal
// triangle). Schema 9 added the ingest_http_* fields (the live-dataset
// tier of docs/LIVE.md: corpus replay through the POST /v1/ingest
// handler — distinct from ingest_*, which is the in-memory CSR build —
// plus the cached-vs-post-ingest invalidation correctness bit). Schema 10
// added the approx_* fields (the sampling estimator of docs/APPROX.md:
// path4 at epsilon=0.05 vs exact, observed CI coverage over a seed sweep).
const ReportSchema = 10

// DatasetReport holds one dataset's measured numbers. Timings are
// best-of-Runs wall times; rates derive from them.
type DatasetReport struct {
	Name         string `json:"name"`
	Nodes        int    `json:"nodes"`
	Edges        int    `json:"edges"`
	DeltaSeconds int64  `json:"delta_seconds"`

	// Ingest: building the columnar CSR graph from an edge slice.
	IngestNsOp        int64   `json:"ingest_ns_op"`
	IngestEdgesPerSec float64 `json:"ingest_edges_per_sec"`

	// Load: parsing the dataset's edge-list text into a Graph — the full
	// ingestion pipeline (parse + relabel-free build) — with the parallel
	// loader at LoadWorkers workers and with the sequential reference
	// loader. LoadAllocsPerEdge is whole-load mallocs per edge for the
	// parallel loader (columns and indexes included; the parse loop itself
	// is allocation free, guarded by a testing.AllocsPerRun test).
	LoadNsOp           int64   `json:"load_ns_op"`
	LoadEdgesPerSec    float64 `json:"load_edges_per_sec"`
	LoadWorkers        int     `json:"load_workers"`
	LoadSeqNsOp        int64   `json:"load_seq_ns_op"`
	LoadSeqEdgesPerSec float64 `json:"load_seq_edges_per_sec"`
	LoadAllocsPerEdge  float64 `json:"load_allocs_per_edge"`

	// Count: single-threaded FAST (stars+pairs+triangles, dedup mode).
	CountNsOp        int64   `json:"count_ns_op"`
	CountEdgesPerSec float64 `json:"count_edges_per_sec"`

	// Parallel: HARE with default options (all CPUs).
	ParallelNsOp        int64   `json:"parallel_ns_op"`
	ParallelEdgesPerSec float64 `json:"parallel_edges_per_sec"`
	ParallelWorkers     int     `json:"parallel_workers"`

	// Steady-state allocation behaviour of the FAST per-center hot path
	// (full pass over all centers with a warmed-up reused Scratch).
	AllocsPerCenter float64 `json:"allocs_per_center"`
	BytesPerCenter  float64 `json:"bytes_per_center"`

	// Significance: one TimeShuffle null-model ensemble of SigSamples
	// samples (draw + count per sample), measured with the parallel engine
	// at SigWorkers workers and again forced sequential (workers=1).
	// SigSpeedup = sig_seq_ns_op / sig_ns_op — the scaling headline for the
	// significance workload.
	SigSamples       int     `json:"sig_samples"`
	SigWorkers       int     `json:"sig_workers"`
	SigNsOp          int64   `json:"sig_ns_op"`
	SigSamplesPerSec float64 `json:"sig_samples_per_sec"`
	SigSeqNsOp       int64   `json:"sig_seq_ns_op"`
	SigSpeedup       float64 `json:"sig_speedup"`

	// Serve: the hared query service driven end-to-end through its HTTP
	// handler by ServeConcurrency concurrent clients on /v1/count — cold
	// (every request a cache miss computing a fresh count) vs cached
	// (every request an LRU hit). ServeCacheSpeedup = cold/cached; the
	// serving layer targets >= 10x.
	ServeConcurrency   int     `json:"serve_concurrency"`
	ServeColdNsOp      int64   `json:"serve_cold_ns_op"`
	ServeColdReqPerSec float64 `json:"serve_cold_req_per_sec"`
	ServeCachedNsOp    int64   `json:"serve_cached_ns_op"`
	ServeCachedReqSec  float64 `json:"serve_cached_req_per_sec"`
	ServeCacheSpeedup  float64 `json:"serve_cache_speedup"`

	// Snap: cold start from the binary .hare snapshot — LoadSnapshot of a
	// freshly written file (mmap + checksum/structure validation, no
	// parsing) — against the parallel text parse of the same graph.
	// SnapSpeedupVsText = load_ns_op / snap_load_ns_op; the snapshot
	// format targets >= 10x.
	SnapBytes         int64   `json:"snap_bytes"`
	SnapLoadNsOp      int64   `json:"snap_load_ns_op"`
	SnapLoadMBPerSec  float64 `json:"snap_load_mb_per_sec"`
	SnapSpeedupVsText float64 `json:"snap_speedup_vs_text"`

	// Shard: the scatter/gather tier's horizontal scaling — /v1/star4
	// computed through in-process clusters of 1, 2 and 4 shard workers on
	// loopback HTTP, every sub-request pinned to one counting thread so
	// only the worker count varies. ShardStar4Speedup2 = 1w/2w latency;
	// the wire protocol targets >= 1.7x at 2 workers (docs/SHARDING.md).
	ShardStar4NsOp1    int64   `json:"shard_star4_1w_ns_op"`
	ShardStar4NsOp2    int64   `json:"shard_star4_2w_ns_op"`
	ShardStar4NsOp4    int64   `json:"shard_star4_4w_ns_op"`
	ShardStar4Speedup2 float64 `json:"shard_star4_speedup_2w"`
	ShardStar4Speedup4 float64 `json:"shard_star4_speedup_4w"`

	// Query: the motif-spec compiler (docs/QUERY.md). The compiled
	// all-out star spec lowers to the hand-tuned CountStar4 machinery;
	// QueryStar4Overhead = query_star4_ns_op / star4 hand-tuned ns/op and
	// targets <= 1.15 — the allowed price of generality for a spec with a
	// specialized lowering. The temporal triangle exercises the generic
	// edge-pivot executor, which has no hand-tuned counterpart.
	QueryStar4NsOp     int64   `json:"query_star4_ns_op"`
	QueryStar4HandNsOp int64   `json:"query_star4_hand_ns_op"`
	QueryStar4Overhead float64 `json:"query_star4_overhead"`
	QueryTriangleNsOp  int64   `json:"query_triangle_ns_op"`

	// Live: the dataset's edge list replayed through the POST /v1/ingest
	// HTTP handler into a live dataset (text parse + ordering validation +
	// exact online counting, docs/LIVE.md) — per-batch handler latency and
	// whole-replay edge throughput. LiveInvalidationOK reports the ride-
	// along correctness check: an answer cached at version v was verified
	// to recompute (one new cache miss) after the ingest to v+1 — the
	// measurement errors out if it ever serves stale.
	IngestHTTPBatchNsOp   int64   `json:"ingest_http_batch_ns_op"`
	IngestHTTPEdgesPerSec float64 `json:"ingest_http_edges_per_sec"`
	LiveInvalidationOK    bool    `json:"live_invalidation_ok"`

	// Approx: the sampling estimator (docs/APPROX.md) on the path4 family
	// at the headline epsilon=0.05 against the exact counter, plus the
	// observed interval coverage rate over a fixed seed sweep. These
	// per-dataset columns are informational at suite scale; the enforced
	// >= 10x and interval-coverage checks run once per report on a pinned
	// hub-skewed graph (the report's approx_fence_* fields).
	ApproxExactNsOp    int64   `json:"approx_exact_ns_op"`
	ApproxNsOp         int64   `json:"approx_ns_op"`
	ApproxSpeedup      float64 `json:"approx_speedup"`
	ApproxCoverageRate float64 `json:"approx_coverage_rate"`
	ApproxExactStrata  int     `json:"approx_exact_strata"`
	ApproxStrata       int     `json:"approx_strata"`
}

// Report is the machine-readable benchmark report emitted by
// `harebench -json` and archived by CI as BENCH_<pr>.json.
type Report struct {
	Schema    int             `json:"schema"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	CPUs      int             `json:"cpus"`
	Scale     float64         `json:"scale"`
	Runs      int             `json:"runs"`
	Datasets  []DatasetReport `json:"datasets"`

	// The approx fence (docs/APPROX.md): exact-vs-estimator path4 on a
	// pinned hub-skewed graph, independent of Scale so the asymptotic
	// >= 10x claim is measured where it is real. The producing
	// measurement errors the whole report if the headline interval
	// misses the exact count or the speedup falls under 10x.
	ApproxFenceDataset      string  `json:"approx_fence_dataset"`
	ApproxFenceScale        float64 `json:"approx_fence_scale"`
	ApproxFenceExactNsOp    int64   `json:"approx_fence_exact_ns_op"`
	ApproxFenceNsOp         int64   `json:"approx_fence_ns_op"`
	ApproxFenceSpeedup      float64 `json:"approx_fence_speedup"`
	ApproxFenceCoverageRate float64 `json:"approx_fence_coverage_rate"`
}

// jsonDefaults is the dataset list measured when Options.Datasets is empty:
// a skew spread (wikitalk hub-heavy, sms-a bursty, collegemsg small-dense)
// that runs in CI-friendly time at small scales.
var jsonDefaults = []string{"collegemsg", "sms-a", "wikitalk"}

// JSONReport measures ingest and counting performance per dataset and
// returns the structured report. runs is the best-of repetition count
// (>= 1); Options.Out is not used.
func JSONReport(opts Options, runs int) (*Report, error) {
	if runs < 1 {
		runs = 1
	}
	rep := &Report{
		Schema:    ReportSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Scale:     opts.scale(),
		Runs:      runs,
	}
	s := newSuite(opts)
	delta := opts.delta()
	for _, name := range s.names(jsonDefaults) {
		g, err := s.graph(name)
		if err != nil {
			return nil, err
		}
		edges := g.Edges()
		d := DatasetReport{
			Name:         name,
			Nodes:        g.NumNodes(),
			Edges:        g.NumEdges(),
			DeltaSeconds: int64(delta),
		}

		d.IngestNsOp = bestOf(runs, func() {
			temporal.FromEdges(edges)
		})
		d.IngestEdgesPerSec = rate(d.Edges, d.IngestNsOp)

		// Load throughput over the serialized edge-list text, kept in
		// memory so the measurement tracks parsing, not disk.
		var text bytes.Buffer
		if err := temporal.WriteEdgeList(&text, g); err != nil {
			return nil, err
		}
		data := text.Bytes()
		loadWorkers := opts.LoadWorkers
		if loadWorkers <= 0 {
			loadWorkers = runtime.GOMAXPROCS(0)
		}
		d.LoadWorkers = loadWorkers
		d.LoadNsOp = bestOf(runs, func() {
			if _, err := temporal.ReadEdgeList(bytes.NewReader(data), temporal.LoadOptions{Workers: loadWorkers}); err != nil {
				panic(err) // synthetic dataset text cannot fail to parse
			}
		})
		d.LoadEdgesPerSec = rate(d.Edges, d.LoadNsOp)
		d.LoadSeqNsOp = bestOf(runs, func() {
			if _, err := temporal.ReadEdgeList(bytes.NewReader(data), temporal.LoadOptions{Workers: 1}); err != nil {
				panic(err)
			}
		})
		d.LoadSeqEdgesPerSec = rate(d.Edges, d.LoadSeqNsOp)
		d.LoadAllocsPerEdge = measureLoadAllocs(data, loadWorkers, d.Edges)

		d.CountNsOp = bestOf(runs, func() {
			fast.Count(g, delta)
		})
		d.CountEdgesPerSec = rate(d.Edges, d.CountNsOp)

		eo := engine.Options{}
		d.ParallelWorkers = runtime.GOMAXPROCS(0)
		d.ParallelNsOp = bestOf(runs, func() {
			engine.Count(g, delta, eo)
		})
		d.ParallelEdgesPerSec = rate(d.Edges, d.ParallelNsOp)

		d.AllocsPerCenter, d.BytesPerCenter = measureHotPathAllocs(g, delta)

		// Enough samples that the ensemble's deterministic aggregation
		// chunks outnumber the CPUs — otherwise the worker clamp would cap
		// the measurable speedup. SigWorkers records the parallelism the
		// ensemble actually ran with (its Report.Workers), not the request.
		sigSamples := max(16, 4*runtime.GOMAXPROCS(0))
		d.SigSamples = sigSamples
		runEnsemble := func(workers int) int {
			e := nullmodel.Ensemble{Model: nullmodel.TimeShuffle, Samples: sigSamples, Seed: 1, Workers: workers}
			rep, err := e.Run(g, delta)
			if err != nil {
				panic(err) // synthetic graphs and a valid model cannot fail
			}
			return rep.Workers
		}
		d.SigNsOp = bestOf(runs, func() { d.SigWorkers = runEnsemble(0) })
		d.SigSamplesPerSec = rate(sigSamples, d.SigNsOp)
		d.SigSeqNsOp = bestOf(runs, func() { runEnsemble(1) })
		if d.SigNsOp > 0 {
			d.SigSpeedup = float64(d.SigSeqNsOp) / float64(d.SigNsOp)
		}

		sm, err := measureServe(name, g, delta, runs)
		if err != nil {
			return nil, err
		}
		d.ServeConcurrency = sm.Concurrency
		d.ServeColdNsOp = sm.ColdNsOp
		d.ServeColdReqPerSec = sm.ColdReqSec
		d.ServeCachedNsOp = sm.CachedNsOp
		d.ServeCachedReqSec = sm.CachedReqSec
		d.ServeCacheSpeedup = sm.Speedup

		d.SnapBytes, d.SnapLoadNsOp, err = measureSnapshotLoad(g, runs)
		if err != nil {
			return nil, err
		}
		d.SnapLoadMBPerSec = rate(int(d.SnapBytes), d.SnapLoadNsOp) / (1 << 20)
		if d.SnapLoadNsOp > 0 {
			d.SnapSpeedupVsText = float64(d.LoadNsOp) / float64(d.SnapLoadNsOp)
		}

		shm, err := measureShard(name, g, delta, runs)
		if err != nil {
			return nil, err
		}
		d.ShardStar4NsOp1 = shm.Star4NsOp1
		d.ShardStar4NsOp2 = shm.Star4NsOp2
		d.ShardStar4NsOp4 = shm.Star4NsOp4
		d.ShardStar4Speedup2 = shm.Speedup2
		d.ShardStar4Speedup4 = shm.Speedup4

		qm, err := measureQuery(g, delta, runs)
		if err != nil {
			return nil, err
		}
		d.QueryStar4NsOp = qm.Star4NsOp
		d.QueryStar4HandNsOp = qm.HandNsOp
		d.QueryStar4Overhead = qm.Overhead
		d.QueryTriangleNsOp = qm.TriangleNsOp

		lm, err := measureLive(name, g, delta, runs)
		if err != nil {
			return nil, err
		}
		d.IngestHTTPBatchNsOp = lm.BatchNsOp
		d.IngestHTTPEdgesPerSec = lm.EdgesPerSec
		d.LiveInvalidationOK = lm.Invalidated

		am, err := measureApprox(g, delta, runs)
		if err != nil {
			return nil, err
		}
		d.ApproxExactNsOp = am.ExactNsOp
		d.ApproxNsOp = am.ApproxNsOp
		d.ApproxSpeedup = am.Speedup
		d.ApproxCoverageRate = am.CoverageRate
		d.ApproxExactStrata = am.ExactStrata
		d.ApproxStrata = am.Strata

		rep.Datasets = append(rep.Datasets, d)
	}

	fence, err := measureApproxFence(delta, runs)
	if err != nil {
		return nil, err
	}
	rep.ApproxFenceDataset = approxFenceDataset
	rep.ApproxFenceScale = approxFenceScale
	rep.ApproxFenceExactNsOp = fence.ExactNsOp
	rep.ApproxFenceNsOp = fence.ApproxNsOp
	rep.ApproxFenceSpeedup = fence.Speedup
	rep.ApproxFenceCoverageRate = fence.CoverageRate
	return rep, nil
}

// WriteJSON runs JSONReport and writes it, indented, to w.
func WriteJSON(w io.Writer, opts Options, runs int) error {
	rep, err := JSONReport(opts, runs)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// bestOf returns the fastest of runs wall-clock timings of f, in ns.
func bestOf(runs int, f func()) int64 {
	best := int64(-1)
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		f()
		if ns := time.Since(t0).Nanoseconds(); best < 0 || ns < best {
			best = ns
		}
	}
	return best
}

func rate(edges int, nsOp int64) float64 {
	if nsOp <= 0 {
		return 0
	}
	return float64(edges) / (float64(nsOp) / 1e9)
}

// measureSnapshotLoad writes g to a temporary .hare snapshot and times
// cold LoadSnapshot calls against it (best of runs): the full production
// path — open, mmap where available, verify every checksum and CSR
// invariant, alias the columns. The file lives in the OS page cache
// between runs, matching the serve-restart scenario the snapshot format
// exists for.
func measureSnapshotLoad(g *temporal.Graph, runs int) (size, nsOp int64, err error) {
	dir, err := os.MkdirTemp("", "harebench-snap-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.hare")
	if err := temporal.SaveSnapshot(path, g); err != nil {
		return 0, 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	nsOp = bestOf(runs, func() {
		if _, err := temporal.LoadSnapshot(path); err != nil {
			panic(err) // the file was just written by this process
		}
	})
	return fi.Size(), nsOp, nil
}

// measureLoadAllocs reports whole-load mallocs per edge for one parallel
// load of the in-memory edge-list text: steady-state parse allocations are
// zero, so this tracks the per-load fixed costs (columns, CSR indexes,
// chunk bookkeeping) amortised over the edges.
func measureLoadAllocs(data []byte, workers, edges int) float64 {
	if edges == 0 {
		return 0
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := temporal.ReadEdgeList(bytes.NewReader(data), temporal.LoadOptions{Workers: workers}); err != nil {
		panic(err)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(edges)
}

// measureHotPathAllocs runs the FAST per-center hot path (Algorithm 1 + 2,
// recount mode — exactly what a HARE worker executes) over every center with
// a reused Scratch, and reports steady-state allocations per center: one
// warm-up pass grows the scratch, then a measured pass counts mallocs. With
// the dense epoch-versioned Scratch this is ~0.
func measureHotPathAllocs(g *temporal.Graph, delta temporal.Timestamp) (allocs, bytes float64) {
	centers := g.NumNodes()
	if centers == 0 {
		return 0, 0
	}
	scratch := fast.NewScratch()
	scratch.Grow(centers)
	counts := &motif.Counts{TriMultiplicity: 3}
	pass := func() {
		for u := 0; u < centers; u++ {
			fast.CountStarPairNode(g, temporal.NodeID(u), delta, counts, scratch)
			fast.CountTriNode(g, temporal.NodeID(u), delta, &counts.Tri, false)
		}
	}
	pass() // warm up scratch growth and lazily built state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	pass()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(centers),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(centers)
}
