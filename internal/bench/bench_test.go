package bench

import (
	"strings"
	"testing"
)

// tinyOpts keeps harness smoke tests fast.
func tinyOpts(buf *strings.Builder, datasets ...string) Options {
	return Options{
		Out:      buf,
		Scale:    0.01,
		Datasets: datasets,
		Threads:  []int{1, 2},
	}
}

func TestTable2(t *testing.T) {
	var buf strings.Builder
	if err := Table2(tinyOpts(&buf, "email-eu", "collegemsg")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "email-eu", "collegemsg", "#edges"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	var buf strings.Builder
	if err := Table3(tinyOpts(&buf, "collegemsg")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III", "FAST-Pair", "2SCENT", "collegemsg"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9(t *testing.T) {
	var buf strings.Builder
	if err := Fig9(tinyOpts(&buf, "wikitalk")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "degree bucket") {
		t.Errorf("output missing bucket table:\n%s", buf.String())
	}
}

func TestFig10(t *testing.T) {
	var buf strings.Builder
	if err := Fig10(tinyOpts(&buf, "collegemsg")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IDENTICAL") {
		t.Errorf("FAST and EX should agree:\n%s", buf.String())
	}
}

func TestFig11(t *testing.T) {
	var buf strings.Builder
	if err := Fig11(tinyOpts(&buf, "sms-a")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"HARE", "EX", "BTS-Pair", "#threads"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig12a(t *testing.T) {
	var buf strings.Builder
	if err := Fig12a(tinyOpts(&buf, "mathoverflow")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "runtime vs δ") {
		t.Errorf("output missing sweep header:\n%s", buf.String())
	}
}

func TestFig12b(t *testing.T) {
	var buf strings.Builder
	if err := Fig12b(tinyOpts(&buf, "wikitalk")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"without-thrd(static)", "dynamic", "thrd=auto(top20)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	var buf strings.Builder
	if err := Run("table2", tinyOpts(&buf, "collegemsg")); err != nil {
		t.Fatal(err)
	}
	if err := Run("nope", tinyOpts(&buf)); err == nil {
		t.Fatal("want error for unknown experiment")
	}
	if got := Experiments(); len(got) != 7 {
		t.Fatalf("experiments = %v", got)
	}
}

func TestUnknownDataset(t *testing.T) {
	var buf strings.Builder
	if err := Table2(tinyOpts(&buf, "not-a-dataset")); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestJSONReportLoadMetrics(t *testing.T) {
	opts := Options{Scale: 0.01, Datasets: []string{"collegemsg"}, LoadWorkers: 2}
	rep, err := JSONReport(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %d, want %d", rep.Schema, ReportSchema)
	}
	if len(rep.Datasets) != 1 {
		t.Fatalf("datasets = %d, want 1", len(rep.Datasets))
	}
	d := rep.Datasets[0]
	if d.Edges <= 0 {
		t.Fatalf("edges = %d", d.Edges)
	}
	if d.LoadNsOp <= 0 || d.LoadEdgesPerSec <= 0 {
		t.Fatalf("parallel load not measured: ns=%d rate=%g", d.LoadNsOp, d.LoadEdgesPerSec)
	}
	if d.LoadSeqNsOp <= 0 || d.LoadSeqEdgesPerSec <= 0 {
		t.Fatalf("sequential load not measured: ns=%d rate=%g", d.LoadSeqNsOp, d.LoadSeqEdgesPerSec)
	}
	if d.LoadWorkers != 2 {
		t.Fatalf("load workers = %d, want 2", d.LoadWorkers)
	}
	if d.LoadAllocsPerEdge <= 0 {
		// Whole-load allocations include the graph's columns, so per edge
		// this is small but never exactly zero.
		t.Fatalf("load allocs/edge = %g, want > 0", d.LoadAllocsPerEdge)
	}
	if d.SigSamples <= 0 || d.SigWorkers <= 0 {
		t.Fatalf("significance shape not recorded: samples=%d workers=%d", d.SigSamples, d.SigWorkers)
	}
	if d.SigNsOp <= 0 || d.SigSamplesPerSec <= 0 || d.SigSeqNsOp <= 0 {
		t.Fatalf("significance not measured: ns=%d seq=%d rate=%g",
			d.SigNsOp, d.SigSeqNsOp, d.SigSamplesPerSec)
	}
	if d.SigSpeedup <= 0 {
		t.Fatalf("sig speedup = %g, want > 0", d.SigSpeedup)
	}
}

func TestCapThreads(t *testing.T) {
	got := capThreads([]int{0, 1, 1, 4, 1 << 20})
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("capThreads = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not strictly increasing: %v", got)
		}
	}
	if got := capThreads(nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("empty capThreads = %v", got)
	}
}
