package bench

import (
	"fmt"

	"hare/internal/approx"
	"hare/internal/gen"
	"hare/internal/higher"
	"hare/internal/temporal"
)

// approxEpsilon is the headline knob the report measures at — the default
// the docs quote and the e2e suites exercise (docs/APPROX.md).
const approxEpsilon = 0.05

// approxSeeds is the seed sweep behind the observed-coverage column: each
// seed is an independent sampling run whose interval either covers the
// exact count or misses it.
const approxSeeds = 40

// The speedup fence runs on its own pinned hub-skewed graph rather than
// the -scale'd suite datasets: the estimator's cost is dominated by a
// fixed draw budget (~(z/epsilon)^2), so its advantage is asymptotic and
// a CI-sized dataset can't exhibit it. wikitalk at scale 0.5 (~140k
// edges, the suite's heaviest hubs) is the smallest config where the
// >= 10x claim is comfortably real.
const (
	approxFenceDataset = "wikitalk"
	approxFenceScale   = 0.5
)

// approxMeasurement is one sampling-estimator profile on the path4 family
// — the heavier of the two hand-tuned higher-order counters, where
// skipping tail pivots buys the most.
type approxMeasurement struct {
	ExactNsOp    int64
	ApproxNsOp   int64
	Speedup      float64
	CoverageRate float64
	ExactStrata  int
	Strata       int
}

// measureApprox times exact path4 against the epsilon=0.05 estimator on g
// and sweeps seeds for the observed CI coverage rate.
func measureApprox(g *temporal.Graph, delta temporal.Timestamp, runs int) (approxMeasurement, error) {
	var m approxMeasurement
	var exactTotal uint64
	m.ExactNsOp = bestOf(runs, func() {
		pc := higher.CountPath4(g, delta, higher.Options{})
		exactTotal = pc.Total()
	})

	var head *approx.Result
	m.ApproxNsOp = bestOf(runs, func() {
		r, err := approx.Path4(g, delta, approx.Options{Epsilon: approxEpsilon, Seed: 1})
		if err != nil {
			panic(err) // valid knobs on a valid graph cannot fail
		}
		head = r
	})
	m.ExactStrata = head.ExactStrata
	m.Strata = head.Strata
	if m.ApproxNsOp > 0 {
		m.Speedup = float64(m.ExactNsOp) / float64(m.ApproxNsOp)
	}

	exact := float64(exactTotal)
	covered := 0
	for s := int64(0); s < approxSeeds; s++ {
		r, err := approx.Path4(g, delta, approx.Options{Epsilon: approxEpsilon, Seed: s})
		if err != nil {
			return approxMeasurement{}, err
		}
		if r.Total.Low <= exact && exact <= r.Total.High {
			covered++
		}
	}
	m.CoverageRate = float64(covered) / approxSeeds
	return m, nil
}

// measureApproxFence runs the estimator's two ride-along checks on the
// pinned fence graph and fails the report rather than publish a
// wrong-fast or wrong-tight number: the headline run's interval (seed 1,
// deterministic for the pinned graph, so never flaky) must cover the
// exact path4 count, and the estimator must be >= 10x faster than exact
// — the speedup the sampling tier exists to deliver (docs/APPROX.md).
func measureApproxFence(delta temporal.Timestamp, runs int) (approxMeasurement, error) {
	cfg, err := gen.DatasetByName(approxFenceDataset)
	if err != nil {
		return approxMeasurement{}, err
	}
	g, err := gen.Generate(gen.Scaled(cfg, approxFenceScale))
	if err != nil {
		return approxMeasurement{}, err
	}

	var m approxMeasurement
	var exactTotal uint64
	m.ExactNsOp = bestOf(runs, func() {
		pc := higher.CountPath4(g, delta, higher.Options{})
		exactTotal = pc.Total()
	})
	var head *approx.Result
	m.ApproxNsOp = bestOf(runs, func() {
		r, err := approx.Path4(g, delta, approx.Options{Epsilon: approxEpsilon, Seed: 1})
		if err != nil {
			panic(err)
		}
		head = r
	})
	m.ExactStrata = head.ExactStrata
	m.Strata = head.Strata
	if m.ApproxNsOp > 0 {
		m.Speedup = float64(m.ExactNsOp) / float64(m.ApproxNsOp)
	}

	exact := float64(exactTotal)
	if head.Total.Low > exact || head.Total.High < exact {
		return approxMeasurement{}, fmt.Errorf(
			"approx fence: headline interval [%.1f, %.1f] misses exact path4 count %d on %s@%g",
			head.Total.Low, head.Total.High, exactTotal, approxFenceDataset, approxFenceScale)
	}
	if m.Speedup < 10 {
		return approxMeasurement{}, fmt.Errorf(
			"approx fence: %.1fx speedup over exact at epsilon=%g on %s@%g, want >= 10x",
			m.Speedup, approxEpsilon, approxFenceDataset, approxFenceScale)
	}

	covered := 0
	for s := int64(0); s < approxSeeds; s++ {
		r, err := approx.Path4(g, delta, approx.Options{Epsilon: approxEpsilon, Seed: s})
		if err != nil {
			return approxMeasurement{}, err
		}
		if r.Total.Low <= exact && exact <= r.Total.High {
			covered++
		}
	}
	m.CoverageRate = float64(covered) / approxSeeds
	return m, nil
}
