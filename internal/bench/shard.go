package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"

	"hare"
	"hare/internal/server"
	"hare/internal/shard"
	"hare/internal/temporal"
)

// shardMeasurement is one dataset's scatter/gather scaling profile:
// /v1/star4 throughput through in-process clusters of 1, 2 and 4 workers,
// each worker pinned to a single counting thread (Workers=1 sub-requests)
// so the horizontal axis — not intra-process parallelism — is what the
// speedup measures. The workers are real HTTP servers on loopback
// sockets, so the numbers include the wire protocol's JSON and transport
// costs, exactly what a deployed cluster pays. Throughput is measured
// with a pipelined volley (several queries in flight) because that is the
// regime scale-out exists for: a loaded coordinator, where per-query wire
// overhead overlaps the counting and the fleet's aggregate compute
// bandwidth is the limit.
type shardMeasurement struct {
	Star4NsOp1 int64
	Star4NsOp2 int64
	Star4NsOp4 int64
	Speedup2   float64
	Speedup4   float64
}

// bootShardCluster starts n single-threaded shard workers over g and
// returns a coordinator backend scattering across them. Each worker's
// compute handler is serialized behind its own mutex, emulating a
// single-core remote machine: the in-process stand-ins all share this
// host's CPUs, so without the serialization a "1-worker cluster" would
// happily run sub-requests of concurrent queries in parallel and the
// cluster-size axis would measure nothing. With it, the measured speedup
// is min(workers, cores) scaling — the same thing adding machines buys.
func bootShardCluster(name string, g *temporal.Graph, n int) (*shard.Coordinator, func(), error) {
	var servers []*httptest.Server
	closeAll := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := hare.NewServer(hare.ServerOptions{Role: "worker", WorkerBudget: 1})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		if err := srv.RegisterGraph(name, "bench", g); err != nil {
			closeAll()
			return nil, nil, err
		}
		w := &shard.Worker{Graphs: srv, Backend: hare.LocalBackend(), Version: "bench"}
		h := w.Handler()
		var core sync.Mutex
		serial := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			core.Lock()
			defer core.Unlock()
			h.ServeHTTP(rw, r)
		})
		mux := http.NewServeMux()
		mux.Handle(shard.PathCompute, serial)
		mux.Handle(shard.PathInfo, h)
		hs := httptest.NewServer(mux)
		servers = append(servers, hs)
		peers[i] = hs.URL
	}
	client, err := shard.NewClient(peers, shard.Policy{}, nil)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	return shard.NewCoordinator(client), closeAll, nil
}

// measureShard drives a volley of star4 queries through 1-, 2- and
// 4-worker clusters (best of runs each) and cross-checks that every
// cluster size produced the identical counter — a wrong merge must fail
// the bench, not publish a fast wrong number. The reported ns/op is
// volley wall time divided by query count, so its inverse is the
// cluster's sustained queries-per-second.
func measureShard(name string, g *temporal.Graph, delta temporal.Timestamp, runs int) (shardMeasurement, error) {
	var m shardMeasurement
	req := server.Request{Kind: server.KindStar4, Dataset: name, Delta: int64(delta), Workers: 1}
	ctx := context.Background()
	const queries = 24

	var reference interface{}
	for _, n := range []int{1, 2, 4} {
		co, closeAll, err := bootShardCluster(name, g, n)
		if err != nil {
			return shardMeasurement{}, err
		}
		got, err := co.Star4(ctx, g, req) // warm up registries, verify once
		if err != nil {
			closeAll()
			return shardMeasurement{}, fmt.Errorf("shard bench (%d workers): %w", n, err)
		}
		if reference == nil {
			reference = got
		} else if got != reference {
			closeAll()
			return shardMeasurement{}, fmt.Errorf("shard bench: %d-worker counter diverges from 1-worker", n)
		}
		// Enough clients in flight to keep every worker busy; any scatter
		// error surfaces after the volley.
		clients := n + 2
		var failed atomic.Value
		volley := func() {
			var wg sync.WaitGroup
			next := atomic.Int64{}
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for int(next.Add(1)) <= queries {
						if _, err := co.Star4(ctx, g, req); err != nil {
							failed.Store(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		}
		ns := bestOf(runs, volley) / queries
		closeAll()
		if err, ok := failed.Load().(error); ok {
			return shardMeasurement{}, fmt.Errorf("shard bench (%d workers): %w", n, err)
		}
		switch n {
		case 1:
			m.Star4NsOp1 = ns
		case 2:
			m.Star4NsOp2 = ns
		case 4:
			m.Star4NsOp4 = ns
		}
	}
	if m.Star4NsOp2 > 0 {
		m.Speedup2 = float64(m.Star4NsOp1) / float64(m.Star4NsOp2)
	}
	if m.Star4NsOp4 > 0 {
		m.Speedup4 = float64(m.Star4NsOp1) / float64(m.Star4NsOp4)
	}
	return m, nil
}
