package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"hare"
	"hare/internal/temporal"
)

// liveMeasurement is one dataset's live-tier numbers: edge throughput of a
// full corpus replay through the POST /v1/ingest HTTP handler, and the
// version-keyed cache invalidation correctness check (a cached answer must
// never survive an ingest).
type liveMeasurement struct {
	BatchNsOp   int64   // per ingest-batch handler latency (best of runs)
	EdgesPerSec float64 // whole-replay edge throughput (best of runs)
	Invalidated bool    // cached-vs-post-ingest correctness check passed
}

// liveIngestBatch is the replay batch size: large enough to amortize HTTP
// per-request overhead the way a real feeder would, small enough that a
// replay is many batches.
const liveIngestBatch = 2048

// measureLive replays g's edge list into a live dataset through the
// /v1/ingest handler (httptest recorders, no sockets — the measurement
// tracks parse + validate + online count, not TCP) and proves the
// version-keyed cache invalidates: a /v1/count answer cached before the
// final batch must come back fresh, with one new cache miss, after it.
func measureLive(name string, g *temporal.Graph, delta temporal.Timestamp, runs int) (liveMeasurement, error) {
	edges := g.Edges()
	if len(edges) == 0 {
		return liveMeasurement{}, fmt.Errorf("live bench: empty graph")
	}
	// Pre-render the batch bodies once; the replay then measures only the
	// handler (text parse, ordering validation, online counting).
	var bodies []string
	for lo := 0; lo < len(edges); {
		hi := lo + liveIngestBatch
		if hi > len(edges) {
			hi = len(edges)
		}
		var sb strings.Builder
		for _, e := range edges[lo:hi] {
			fmt.Fprintf(&sb, "%d %d %d\n", e.From, e.To, e.Time)
		}
		bodies = append(bodies, sb.String())
		lo = hi
	}

	var m liveMeasurement
	best := int64(-1)
	for run := 0; run < runs; run++ {
		// A fresh server + dataset per run: ingest is ordered and
		// cumulative, so a replay cannot repeat against a fed dataset.
		srv, err := hare.NewServer(hare.ServerOptions{})
		if err != nil {
			return liveMeasurement{}, err
		}
		d, err := hare.NewLiveDataset(name, hare.LiveOptions{Delta: delta})
		if err != nil {
			return liveMeasurement{}, err
		}
		if err := srv.RegisterLive(d, "bench live dataset"); err != nil {
			return liveMeasurement{}, err
		}
		handler := srv.Handler()
		post := func(body string) error {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/v1/ingest?dataset="+name, strings.NewReader(body))
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("live bench: ingest status %d: %s", rec.Code, rec.Body.String())
			}
			return nil
		}
		count := func() (cached bool, err error) {
			rec := httptest.NewRecorder()
			url := fmt.Sprintf("/v1/count?dataset=%s&delta=%d", name, delta)
			handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
			if rec.Code != http.StatusOK {
				return false, fmt.Errorf("live bench: count status %d: %s", rec.Code, rec.Body.String())
			}
			var body struct {
				Cached bool `json:"cached"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				return false, err
			}
			return body.Cached, nil
		}

		// Replay all but the final batch, timed; the /v1/count probes of the
		// invalidation check below stay off the clock.
		t0 := time.Now()
		for _, body := range bodies[:len(bodies)-1] {
			if err := post(body); err != nil {
				return liveMeasurement{}, err
			}
		}
		elapsed := time.Since(t0).Nanoseconds()
		// The invalidation correctness check rides the final batch: warm
		// the cache at version v, ingest (v+1), and the next answer must be
		// computed fresh — one new miss, not a stale hit.
		if _, err := count(); err != nil { // miss: computes and caches
			return liveMeasurement{}, err
		}
		warm, err := count() // hit at version v
		if err != nil {
			return liveMeasurement{}, err
		}
		_, missesBefore, _, _ := srv.CacheStats()
		t1 := time.Now()
		if err := post(bodies[len(bodies)-1]); err != nil {
			return liveMeasurement{}, err
		}
		elapsed += time.Since(t1).Nanoseconds()
		after, err := count() // must recompute at v+1
		if err != nil {
			return liveMeasurement{}, err
		}
		_, missesAfter, _, _ := srv.CacheStats()
		if !warm || after || missesAfter != missesBefore+1 {
			return liveMeasurement{}, fmt.Errorf(
				"live bench: invalidation check failed (warm=%v post-ingest-cached=%v misses %d -> %d)",
				warm, after, missesBefore, missesAfter)
		}
		if best < 0 || elapsed < best {
			best = elapsed
		}
	}
	m.Invalidated = true
	m.BatchNsOp = best / int64(len(bodies))
	m.EdgesPerSec = rate(len(edges), best)
	return m, nil
}
