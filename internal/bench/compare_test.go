package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchText(name string, samples []float64) string {
	var b strings.Builder
	for _, s := range samples {
		fmt.Fprintf(&b, "%s-8   \t      20\t   %.0f ns/op\t     120 B/op\t       3 allocs/op\n", name, s)
	}
	return b.String()
}

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	text := "goos: linux\ngoarch: amd64\npkg: hare\ncpu: something\n" +
		benchText("BenchmarkFoo", []float64{100, 110, 90}) +
		benchText("BenchmarkBar", []float64{5000}) +
		"PASS\nok  \there\t1.2s\n"
	set, err := ParseBenchOutput(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// The -8 GOMAXPROCS suffix is stripped so runners with different core
	// counts compare.
	if len(set.Order) != 2 || set.Order[0] != "BenchmarkFoo" || set.Order[1] != "BenchmarkBar" {
		t.Fatalf("order = %v", set.Order)
	}
	if got := set.Samples["BenchmarkFoo"]; len(got) != 3 || got[0] != 100 {
		t.Fatalf("foo samples = %v", got)
	}
	// A benchmark line without ns/op (custom units only) is skipped.
	set, err = ParseBenchOutput(strings.NewReader("BenchmarkX-4 10 99 MB/s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Order) != 0 {
		t.Fatalf("custom-unit-only line parsed: %v", set.Order)
	}
	if _, err := ParseBenchOutput(strings.NewReader("BenchmarkX-4 10 abc ns/op\n")); err == nil {
		t.Fatal("want parse error for bad ns/op")
	}
}

func TestFencePassesOnEquivalentRuns(t *testing.T) {
	// Same distribution, mild noise: must not fail.
	old := benchText("BenchmarkFoo", []float64{1000, 1020, 990, 1010, 1005})
	cur := benchText("BenchmarkFoo", []float64{1008, 995, 1015, 1002, 992})
	var out strings.Builder
	err := Fence(&out, writeBench(t, "old.txt", old), writeBench(t, "new.txt", cur), 0.05, 15)
	if err != nil {
		t.Fatalf("fence failed on noise: %v\n%s", err, out.String())
	}
}

// TestFenceFailsOnInjectedSlowdown is the acceptance check for the CI
// fence, kept as a regression test: a consistent >15% slowdown with
// ordinary run-to-run noise must fail the comparison.
func TestFenceFailsOnInjectedSlowdown(t *testing.T) {
	old := benchText("BenchmarkFoo", []float64{1000, 1020, 990, 1010, 1005}) +
		benchText("BenchmarkBar", []float64{400, 404, 398, 401, 399})
	// Foo injected 30% slower; Bar unchanged.
	cur := benchText("BenchmarkFoo", []float64{1300, 1326, 1287, 1313, 1307}) +
		benchText("BenchmarkBar", []float64{401, 399, 403, 400, 402})
	var out strings.Builder
	err := Fence(&out, writeBench(t, "old.txt", old), writeBench(t, "new.txt", cur), 0.05, 15)
	if err == nil {
		t.Fatalf("fence passed an injected 30%% slowdown:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkFoo") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkBar") {
		t.Errorf("error names the unchanged benchmark: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("table missing REGRESSION verdict:\n%s", out.String())
	}
}

func TestFenceToleratesSlowdownWithinThreshold(t *testing.T) {
	// Statistically significant but only ~8% slower: within the fence.
	old := benchText("BenchmarkFoo", []float64{1000, 1001, 999, 1000, 1002})
	cur := benchText("BenchmarkFoo", []float64{1080, 1081, 1079, 1080, 1082})
	var out strings.Builder
	err := Fence(&out, writeBench(t, "old.txt", old), writeBench(t, "new.txt", cur), 0.05, 15)
	if err != nil {
		t.Fatalf("fence failed inside threshold: %v", err)
	}
	if !strings.Contains(out.String(), "slower (within fence)") {
		t.Errorf("significant slowdown not reported:\n%s", out.String())
	}
}

func TestFenceInsignificantLargeDelta(t *testing.T) {
	// Huge but wildly noisy difference: the permutation test cannot call
	// it at alpha=0.05 with overlapping samples, so the fence holds.
	old := benchText("BenchmarkFoo", []float64{1000, 4000, 800, 3500, 900})
	cur := benchText("BenchmarkFoo", []float64{3900, 1000, 4100, 950, 3800})
	var out strings.Builder
	if err := Fence(&out, writeBench(t, "old.txt", old), writeBench(t, "new.txt", cur), 0.05, 15); err != nil {
		t.Fatalf("fence failed on insignificant noise: %v", err)
	}
}

func TestFenceReportsAddedAndRemoved(t *testing.T) {
	old := benchText("BenchmarkGone", []float64{100, 101, 99, 100, 100}) +
		benchText("BenchmarkKept", []float64{200, 201, 199, 200, 200})
	cur := benchText("BenchmarkKept", []float64{200, 199, 201, 200, 200}) +
		benchText("BenchmarkNew", []float64{50, 51, 49, 50, 50})
	var out strings.Builder
	if err := Fence(&out, writeBench(t, "old.txt", old), writeBench(t, "new.txt", cur), 0.05, 15); err != nil {
		t.Fatalf("added/removed benchmarks must not fail the fence: %v", err)
	}
	if !strings.Contains(out.String(), "only in baseline") || !strings.Contains(out.String(), "only in current run") {
		t.Errorf("missing added/removed report:\n%s", out.String())
	}
}

func TestFenceComparesAcrossProcsSuffixes(t *testing.T) {
	// Baseline recorded on a 4-core runner, current run on 8 cores: the
	// names must still match (and a real regression must still fail).
	old := "BenchmarkFoo-4 20 1000 ns/op\nBenchmarkFoo-4 20 1010 ns/op\nBenchmarkFoo-4 20 990 ns/op\nBenchmarkFoo-4 20 1005 ns/op\nBenchmarkFoo-4 20 995 ns/op\n"
	cur := "BenchmarkFoo-8 20 1300 ns/op\nBenchmarkFoo-8 20 1313 ns/op\nBenchmarkFoo-8 20 1287 ns/op\nBenchmarkFoo-8 20 1306 ns/op\nBenchmarkFoo-8 20 1294 ns/op\n"
	var out strings.Builder
	if err := Fence(&out, writeBench(t, "old.txt", old), writeBench(t, "new.txt", cur), 0.05, 15); err == nil {
		t.Fatalf("suffix mismatch hid a 30%% regression:\n%s", out.String())
	}
}

func TestFenceFailsOnZeroOverlap(t *testing.T) {
	// Disjoint benchmark sets must fail loudly, not pass vacuously.
	old := benchText("BenchmarkOld", []float64{100, 101, 99, 100, 100})
	cur := benchText("BenchmarkRenamed", []float64{100, 101, 99, 100, 100})
	var out strings.Builder
	err := Fence(&out, writeBench(t, "old.txt", old), writeBench(t, "new.txt", cur), 0.05, 15)
	if err == nil || !strings.Contains(err.Error(), "no benchmark appears in both") {
		t.Fatalf("err = %v, want zero-overlap failure", err)
	}
}

func TestStripProcsSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-128":      "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/sub-2":    "BenchmarkFoo/sub",
		"BenchmarkFoo/p-q":      "BenchmarkFoo/p-q", // non-numeric suffix kept
		"BenchmarkFoo-":         "BenchmarkFoo-",
		"-8":                    "-8",
		"BenchmarkFoo/size=1-4": "BenchmarkFoo/size=1",
	} {
		if got := stripProcsSuffix(in); got != want {
			t.Errorf("stripProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFenceEmptyInputs(t *testing.T) {
	empty := writeBench(t, "empty.txt", "PASS\n")
	full := writeBench(t, "full.txt", benchText("BenchmarkFoo", []float64{1, 1, 1}))
	var out strings.Builder
	if err := Fence(&out, empty, full, 0.05, 15); err == nil {
		t.Fatal("want error for empty baseline")
	}
	if err := Fence(&out, full, empty, 0.05, 15); err == nil {
		t.Fatal("want error for empty current run")
	}
	if err := Fence(&out, filepath.Join(t.TempDir(), "missing.txt"), full, 0.05, 15); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestPermTestRankSum(t *testing.T) {
	// Too few samples on either side: no inference, p = 1.
	if p := permTestRankSum([]float64{1}, []float64{2, 3}); p != 1 {
		t.Fatalf("p = %g, want 1", p)
	}
	// Identical samples: nothing is extreme-er than observed 0 diff; p = 1.
	if p := permTestRankSum([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("identical p = %g, want 1", p)
	}
	// Fully separated groups: p is the minimum the split count allows.
	p := permTestRankSum([]float64{1, 2, 3, 4, 5}, []float64{101, 102, 103, 104, 105})
	if p >= 0.05 {
		t.Fatalf("separated p = %g, want < 0.05", p)
	}
	if p <= 0 {
		t.Fatalf("exact permutation p can never be 0 (got %g)", p)
	}
	// The normal-approximation fallback also separates clear shifts.
	big := make([]float64, 30)
	bigSlow := make([]float64, 30)
	for i := range big {
		big[i] = 1000 + float64(i%5)
		bigSlow[i] = 1400 + float64(i%5)
	}
	if p := permTestRankSum(big, bigSlow); p >= 0.05 {
		t.Fatalf("fallback p = %g, want < 0.05", p)
	}
}

func TestJSONReportServeMetrics(t *testing.T) {
	rep, err := JSONReport(Options{Scale: 0.01, Datasets: []string{"collegemsg"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Datasets[0]
	if d.ServeConcurrency < 2 {
		t.Fatalf("serve concurrency = %d", d.ServeConcurrency)
	}
	if d.ServeColdNsOp <= 0 || d.ServeCachedNsOp <= 0 {
		t.Fatalf("serve not measured: cold=%d cached=%d", d.ServeColdNsOp, d.ServeCachedNsOp)
	}
	if d.ServeColdReqPerSec <= 0 || d.ServeCachedReqSec <= 0 || d.ServeCacheSpeedup <= 0 {
		t.Fatalf("serve rates not derived: %+v", d)
	}
	if d.ServeCachedNsOp >= d.ServeColdNsOp {
		t.Fatalf("cached (%d ns) not faster than cold (%d ns)", d.ServeCachedNsOp, d.ServeColdNsOp)
	}
}
