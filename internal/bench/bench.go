// Package bench regenerates every table and figure of the paper's evaluation
// section (Tables II–III, Figures 9–12) on the synthetic dataset suite. Each
// experiment prints rows mirroring the paper's layout so measured shapes can
// be compared side by side with the published ones (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"hare/internal/baseline/bt"
	"hare/internal/baseline/bts"
	"hare/internal/baseline/ews"
	"hare/internal/baseline/exact"
	"hare/internal/baseline/twoscent"
	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/gen"
	"hare/internal/motif"
	"hare/internal/temporal"
)

// Options configures an experiment run.
type Options struct {
	// Out receives the report (required).
	Out io.Writer
	// Scale multiplies every dataset's node/edge/time-span counts
	// (default 1.0 — the full synthetic suite).
	Scale float64
	// Delta is the motif window in seconds (default 600, as in the paper).
	Delta temporal.Timestamp
	// Datasets restricts the run to the named datasets (nil = the
	// experiment's paper-default set).
	Datasets []string
	// Threads is the thread sweep for the scalability experiments
	// (default 1,2,4,8,16,32 as in Fig. 11, capped at NumCPU×2).
	Threads []int
	// Seed offsets the dataset seeds (default 0: the canonical suite).
	Seed int64
	// LoadWorkers is the parallel-loader worker count used by the JSON
	// report's load measurements (0 = GOMAXPROCS).
	LoadWorkers int
}

func (o Options) scale() float64 {
	if o.Scale > 0 {
		return o.Scale
	}
	return 1
}

func (o Options) delta() temporal.Timestamp {
	if o.Delta > 0 {
		return o.Delta
	}
	return 600
}

func (o Options) threads() []int {
	if len(o.Threads) > 0 {
		return o.Threads
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// Experiments lists the runnable experiment names in paper order.
func Experiments() []string {
	return []string{"table2", "table3", "fig9", "fig10", "fig11", "fig12a", "fig12b"}
}

// Run dispatches an experiment by name.
func Run(name string, opts Options) error {
	switch name {
	case "table2":
		return Table2(opts)
	case "table3":
		return Table3(opts)
	case "fig9":
		return Fig9(opts)
	case "fig10":
		return Fig10(opts)
	case "fig11":
		return Fig11(opts)
	case "fig12a":
		return Fig12a(opts)
	case "fig12b":
		return Fig12b(opts)
	case "all":
		for _, n := range Experiments() {
			if err := Run(n, opts); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("bench: unknown experiment %q (known: %v, all)", name, Experiments())
	}
}

// suite resolves the dataset list for an experiment, applying scale and seed.
type suite struct {
	opts  Options
	cache map[string]*temporal.Graph
}

func newSuite(opts Options) *suite {
	return &suite{opts: opts, cache: make(map[string]*temporal.Graph)}
}

func (s *suite) names(def []string) []string {
	if len(s.opts.Datasets) > 0 {
		return s.opts.Datasets
	}
	return def
}

func (s *suite) graph(name string) (*temporal.Graph, error) {
	if g, ok := s.cache[name]; ok {
		return g, nil
	}
	cfg, err := gen.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	cfg = gen.Scaled(cfg, s.opts.scale())
	cfg.Seed += s.opts.Seed
	g, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	s.cache[name] = g
	return g, nil
}

func timeIt(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

func secs(d time.Duration) float64 { return d.Seconds() }

// Table2 prints the dataset statistics table (paper Table II).
func Table2(opts Options) error {
	w := opts.Out
	s := newSuite(opts)
	fmt.Fprintf(w, "== Table II: dataset statistics (synthetic analogues, scale=%.2f) ==\n", opts.scale())
	fmt.Fprintf(w, "%-16s %10s %12s %14s %9s %9s %7s\n",
		"dataset", "#nodes", "#edges", "timespan(s)", "maxdeg", "meandeg", "gini")
	for _, name := range s.names(gen.DatasetNames()) {
		g, err := s.graph(name)
		if err != nil {
			return err
		}
		st := temporal.ComputeStats(g, 20)
		fmt.Fprintf(w, "%-16s %10d %12d %14d %9d %9.2f %7.3f\n",
			name, st.Nodes, st.Edges, st.TimeSpan, st.MaxDegree, st.MeanDegree, st.DegreeGini)
	}
	fmt.Fprintln(w)
	return nil
}

// Table3 prints single-threaded runtimes of every algorithm plus speedups
// (paper Table III; δ = 600s, one thread).
func Table3(opts Options) error {
	w := opts.Out
	s := newSuite(opts)
	delta := opts.delta()
	fmt.Fprintf(w, "== Table III: single-thread runtime in seconds (δ=%ds, scale=%.2f) ==\n", delta, opts.scale())
	fmt.Fprintf(w, "%-16s %8s %8s %8s %6s | %8s %8s %9s %6s | %9s %9s %6s\n",
		"dataset", "EX", "EWS", "FAST", "spd",
		"BT-Pair", "BTS-Pair", "FAST-Pair", "spd",
		"2SCENT", "FAST-Tri", "spd")
	for _, name := range s.names(gen.DatasetNames()) {
		g, err := s.graph(name)
		if err != nil {
			return err
		}
		var exM, fastM motif.Matrix
		tEX := timeIt(func() { exM = exact.Count(g, delta) })
		tEWS := timeIt(func() { ews.EstimateAll(g, delta, ews.Options{P: 0.05, Seed: 1}) })
		var fc *motif.Counts
		tFAST := timeIt(func() { fc = fast.Count(g, delta) })
		fastM = fc.ToMatrix()
		if !fastM.Equal(&exM) {
			return fmt.Errorf("table3: %s: EX and FAST disagree at %v", name, fastM.Diff(&exM))
		}
		tBT := timeIt(func() { bt.CountPairs(g, delta) })
		tBTS := timeIt(func() { bts.EstimatePairs(g, delta, bts.Options{Q: 0.3, Seed: 1}) })
		tFP := timeIt(func() { fast.CountStarPair(g, delta) })
		tTS := timeIt(func() { twoscent.CountCycles(g, delta) })
		tFT := timeIt(func() { fast.CountTri(g, delta) })
		fmt.Fprintf(w, "%-16s %8.3f %8.3f %8.3f %5.1fx | %8.3f %8.3f %9.3f %5.1fx | %9.3f %9.3f %5.1fx\n",
			name, secs(tEX), secs(tEWS), secs(tFAST), secs(tEX)/secs(tFAST),
			secs(tBT), secs(tBTS), secs(tFP), secs(tBT)/secs(tFP),
			secs(tTS), secs(tFT), secs(tTS)/secs(tFT))
	}
	fmt.Fprintln(w)
	return nil
}

// fig9Buckets groups per-node work by log2 degree bucket.
func Fig9(opts Options) error {
	w := opts.Out
	s := newSuite(opts)
	delta := opts.delta()
	names := s.names([]string{"wikitalk"})
	for _, name := range names {
		g, err := s.graph(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Fig. 9: degree distribution and per-node counting time (%s, δ=%ds) ==\n", name, delta)
		hist := temporal.DegreeHistogram(g)
		type bucket struct {
			nodes int
			total time.Duration
		}
		buckets := make([]bucket, len(hist))
		scratch := fast.NewScratch()
		counts := &motif.Counts{TriMultiplicity: 3}
		for u := 0; u < g.NumNodes(); u++ {
			d := g.Degree(temporal.NodeID(u))
			if d == 0 {
				continue
			}
			b := 0
			for dd := d; dd >= 2; dd >>= 1 {
				b++
			}
			el := timeIt(func() {
				fast.CountStarPairNode(g, temporal.NodeID(u), delta, counts, scratch)
				fast.CountTriNode(g, temporal.NodeID(u), delta, &counts.Tri, false)
			})
			buckets[b].nodes++
			buckets[b].total += el
		}
		fmt.Fprintf(w, "%-14s %10s %14s %16s\n", "degree bucket", "#nodes", "total time", "avg time/node")
		var grand time.Duration
		for _, b := range buckets {
			grand += b.total
		}
		for i, b := range buckets {
			if b.nodes == 0 {
				continue
			}
			lo := 1 << i
			fmt.Fprintf(w, "[%5d,%5d) %10d %14v %16v\n",
				lo, lo*2, b.nodes, b.total.Round(time.Microsecond),
				(b.total / time.Duration(b.nodes)).Round(time.Nanosecond))
		}
		if len(buckets) > 0 && grand > 0 {
			top := buckets[len(buckets)-1]
			fmt.Fprintf(w, "top bucket holds %.1f%% of total counting time with %d node(s)\n",
				100*float64(top.total)/float64(grand), top.nodes)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig10 prints the 6×6 count matrices of FAST and EX side by side and checks
// exact agreement (paper Fig. 10; the paper's datasets are CollegeMsg,
// Superuser, WikiTalk, StackOverflow).
func Fig10(opts Options) error {
	w := opts.Out
	s := newSuite(opts)
	delta := opts.delta()
	for _, name := range s.names([]string{"collegemsg", "superuser", "wikitalk", "stackoverflow"}) {
		g, err := s.graph(name)
		if err != nil {
			return err
		}
		fastM := fast.Count(g, delta).ToMatrix()
		exM := exact.Count(g, delta)
		status := "IDENTICAL"
		if !fastM.Equal(&exM) {
			status = fmt.Sprintf("MISMATCH at %v", fastM.Diff(&exM))
		}
		fmt.Fprintf(w, "== Fig. 10: motif count matrix, %s (δ=%ds) — FAST vs EX: %s ==\n", name, delta, status)
		fmt.Fprintln(w, "FAST:")
		fastM.Write(w)
		fmt.Fprintln(w, "EX:")
		exM.Write(w)
		fmt.Fprintln(w)
		if status != "IDENTICAL" {
			return fmt.Errorf("fig10: %s: FAST and EX disagree", name)
		}
	}
	return nil
}

// fig11Defaults is the paper's Fig. 11 dataset list.
var fig11Defaults = []string{
	"stackoverflow", "wikitalk", "mathoverflow", "superuser", "fb-wall", "askubuntu",
	"sms-a", "act-mooc", "ia-online-ads", "rec-movielens", "soc-bitcoin", "redditcomments",
}

// Fig11 sweeps thread counts: HARE vs parallel EX, and HARE-Pair vs parallel
// BTS-Pair (paper Fig. 11).
func Fig11(opts Options) error {
	w := opts.Out
	s := newSuite(opts)
	delta := opts.delta()
	threads := capThreads(opts.threads())
	for _, name := range s.names(fig11Defaults) {
		g, err := s.graph(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Fig. 11: runtime vs #threads, %s (δ=%ds, scale=%.2f) ==\n", name, delta, opts.scale())
		fmt.Fprintf(w, "%8s %10s %10s %12s %12s\n", "#threads", "HARE", "EX", "HARE-Pair", "BTS-Pair")
		for _, th := range threads {
			tHARE := timeIt(func() { engine.Count(g, delta, engine.Options{Workers: th}) })
			tEX := timeIt(func() { exact.CountParallel(g, delta, th) })
			tHP := timeIt(func() { engine.CountStarPair(g, delta, engine.Options{Workers: th}) })
			tBTS := timeIt(func() { bts.EstimatePairs(g, delta, bts.Options{Q: 0.3, Seed: 1, Workers: th}) })
			fmt.Fprintf(w, "%8d %10.3f %10.3f %12.3f %12.3f\n",
				th, secs(tHARE), secs(tEX), secs(tHP), secs(tBTS))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig12a sweeps δ: HARE (max threads) vs EX on the paper's three datasets.
func Fig12a(opts Options) error {
	w := opts.Out
	s := newSuite(opts)
	threads := capThreads([]int{32})[0]
	deltas := []temporal.Timestamp{7200, 14400, 21600, 28800}
	for _, name := range s.names([]string{"superuser", "askubuntu", "mathoverflow"}) {
		g, err := s.graph(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Fig. 12(a): runtime vs δ, %s (#threads=%d) ==\n", name, threads)
		fmt.Fprintf(w, "%10s %12s %12s\n", "δ(s)", "HARE", "EX")
		for _, d := range deltas {
			tHARE := timeIt(func() { engine.Count(g, d, engine.Options{Workers: threads}) })
			tEX := timeIt(func() { exact.Count(g, d) })
			fmt.Fprintf(w, "%10d %12.3f %12.3f\n", d, secs(tHARE), secs(tEX))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig12b sweeps the degree threshold thrd on WikiTalk across thread counts,
// including the "without thrd" (static, flat) ablation and pure dynamic
// scheduling (paper Fig. 12(b)).
func Fig12b(opts Options) error {
	w := opts.Out
	s := newSuite(opts)
	delta := opts.delta()
	threads := capThreads(opts.threads())
	names := s.names([]string{"wikitalk"})
	for _, name := range names {
		g, err := s.graph(name)
		if err != nil {
			return err
		}
		// Scale the paper's absolute thresholds (10K–30K on the real
		// WikiTalk) to this graph via its top degrees.
		st := temporal.ComputeStats(g, 20)
		maxDeg := st.MaxDegree
		mk := func(f float64) int { return int(f * float64(maxDeg)) }
		configs := []struct {
			label string
			opt   engine.Options
		}{
			{"without-thrd(static)", engine.Options{Schedule: engine.ScheduleStatic, DegreeThreshold: -1}},
			{"dynamic", engine.Options{DegreeThreshold: -1}},
			{fmt.Sprintf("thrd=%d", mk(0.05)), engine.Options{DegreeThreshold: mk(0.05)}},
			{fmt.Sprintf("thrd=%d", mk(0.10)), engine.Options{DegreeThreshold: mk(0.10)}},
			{fmt.Sprintf("thrd=%d", mk(0.25)), engine.Options{DegreeThreshold: mk(0.25)}},
			{fmt.Sprintf("thrd=%d", mk(0.50)), engine.Options{DegreeThreshold: mk(0.50)}},
			{"thrd=auto(top20)", engine.Options{}},
		}
		fmt.Fprintf(w, "== Fig. 12(b): runtime vs thrd, %s (δ=%ds, maxdeg=%d) ==\n", name, delta, maxDeg)
		fmt.Fprintf(w, "%-22s", "config \\ #threads")
		for _, th := range threads {
			fmt.Fprintf(w, "%10d", th)
		}
		fmt.Fprintln(w)
		for _, c := range configs {
			fmt.Fprintf(w, "%-22s", c.label)
			for _, th := range threads {
				o := c.opt
				o.Workers = th
				t := timeIt(func() { engine.Count(g, delta, o) })
				fmt.Fprintf(w, "%10.3f", secs(t))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// capThreads limits requested thread counts to a sane bound for the host.
func capThreads(ths []int) []int {
	limit := runtime.NumCPU() * 2
	out := make([]int, 0, len(ths))
	for _, t := range ths {
		if t < 1 {
			continue
		}
		if t > limit {
			t = limit
		}
		out = append(out, t)
	}
	sort.Ints(out)
	// dedupe after capping
	uniq := out[:0]
	for i, t := range out {
		if i == 0 || t != out[i-1] {
			uniq = append(uniq, t)
		}
	}
	if len(uniq) == 0 {
		uniq = append(uniq, 1)
	}
	return uniq
}
