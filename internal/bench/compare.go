package bench

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file is the CI performance fence: it compares two `go test -bench`
// output files (the previous main-branch baseline and the current run,
// each with -count >= 2 so every benchmark has repeated samples) and fails
// on statistically significant regressions. The test is an exact
// Mann-Whitney rank-sum permutation test — the same distribution-free
// test benchstat applies — so noisy benchmarks don't trip the fence and
// consistent slowdowns can't hide behind "it's just noise".

// BenchSet holds ns/op samples per benchmark name, in first-seen order.
type BenchSet struct {
	Order   []string
	Samples map[string][]float64
}

// ParseBenchOutput reads `go test -bench` text and collects the ns/op
// samples of every benchmark line. Non-benchmark lines (goos/pkg headers,
// PASS, ok) are ignored. Repeated names (from -count) accumulate. The
// trailing GOMAXPROCS suffix ("-8") is stripped from names so a baseline
// recorded on a runner with a different core count still matches — with
// the suffix kept, every benchmark would land in the added/removed
// buckets and the fence would pass vacuously.
func ParseBenchOutput(r io.Reader) (*BenchSet, error) {
	set := &BenchSet{Samples: make(map[string][]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a benchmark result line
		}
		// Value/unit pairs follow the iteration count; take ns/op.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: bad ns/op %q in %q", fields[i], sc.Text())
			}
			name := stripProcsSuffix(fields[0])
			if _, seen := set.Samples[name]; !seen {
				set.Order = append(set.Order, name)
			}
			set.Samples[name] = append(set.Samples[name], v)
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// stripProcsSuffix removes a trailing "-<digits>" GOMAXPROCS marker.
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// ParseBenchFile is ParseBenchOutput over a file.
func ParseBenchFile(path string) (*BenchSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := ParseBenchOutput(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return set, nil
}

// Comparison is one benchmark's old-vs-new verdict.
type Comparison struct {
	Name                 string
	OldMedian, NewMedian float64
	// DeltaPct is the median ns/op change in percent (positive = slower).
	DeltaPct float64
	// P is the two-sided permutation-test p-value for a median shift; 1
	// when either side has fewer than 2 samples (no inference possible).
	P float64
	// Significant is P < alpha; Regression additionally requires the
	// slowdown to exceed the fence threshold.
	Significant bool
	Regression  bool
}

// FenceResult is the full comparison of two benchmark sets.
type FenceResult struct {
	Alpha         float64
	MaxRegressPct float64
	Comparisons   []Comparison
	// OldOnly and NewOnly are benchmarks present in exactly one set —
	// renamed, added or removed since the baseline. They never fail the
	// fence but are listed so silent disappearances stay visible.
	OldOnly, NewOnly []string
}

// Regressions returns the comparisons that fail the fence.
func (f *FenceResult) Regressions() []Comparison {
	var out []Comparison
	for _, c := range f.Comparisons {
		if c.Regression {
			out = append(out, c)
		}
	}
	return out
}

// CompareBench compares baseline and current sample sets. A benchmark
// fails the fence when its median slowdown exceeds maxRegressPct AND the
// permutation test rejects "same distribution" at alpha.
func CompareBench(old, cur *BenchSet, alpha, maxRegressPct float64) *FenceResult {
	res := &FenceResult{Alpha: alpha, MaxRegressPct: maxRegressPct}
	for _, name := range old.Order {
		ns, ok := cur.Samples[name]
		if !ok {
			res.OldOnly = append(res.OldOnly, name)
			continue
		}
		olds := old.Samples[name]
		c := Comparison{
			Name:      name,
			OldMedian: median(olds),
			NewMedian: median(ns),
			P:         permTestRankSum(olds, ns),
		}
		if c.OldMedian > 0 {
			c.DeltaPct = (c.NewMedian - c.OldMedian) / c.OldMedian * 100
		}
		c.Significant = c.P < alpha
		c.Regression = c.Significant && c.DeltaPct > maxRegressPct
		res.Comparisons = append(res.Comparisons, c)
	}
	for _, name := range cur.Order {
		if _, ok := old.Samples[name]; !ok {
			res.NewOnly = append(res.NewOnly, name)
		}
	}
	return res
}

// Write renders a benchstat-style table plus the fence verdict.
func (f *FenceResult) Write(w io.Writer) {
	fmt.Fprintf(w, "bench fence: alpha=%g, fail on significant slowdown > %g%%\n", f.Alpha, f.MaxRegressPct)
	fmt.Fprintf(w, "%-44s %14s %14s %9s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "p", "verdict")
	for _, c := range f.Comparisons {
		verdict := "~"
		switch {
		case c.Regression:
			verdict = "REGRESSION"
		case c.Significant && c.DeltaPct < 0:
			verdict = "improved"
		case c.Significant:
			verdict = "slower (within fence)"
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+8.1f%% %8.3f  %s\n",
			c.Name, c.OldMedian, c.NewMedian, c.DeltaPct, c.P, verdict)
	}
	for _, name := range f.OldOnly {
		fmt.Fprintf(w, "%-44s only in baseline (renamed or removed?)\n", name)
	}
	for _, name := range f.NewOnly {
		fmt.Fprintf(w, "%-44s only in current run (new benchmark)\n", name)
	}
}

// Fence compares two bench files and returns an error naming every fenced
// regression (nil when the fence holds). The table is written to w.
func Fence(w io.Writer, oldPath, newPath string, alpha, maxRegressPct float64) error {
	old, err := ParseBenchFile(oldPath)
	if err != nil {
		return err
	}
	cur, err := ParseBenchFile(newPath)
	if err != nil {
		return err
	}
	if len(old.Order) == 0 {
		return fmt.Errorf("bench: no benchmark results in baseline %s", oldPath)
	}
	if len(cur.Order) == 0 {
		return fmt.Errorf("bench: no benchmark results in %s", newPath)
	}
	res := CompareBench(old, cur, alpha, maxRegressPct)
	res.Write(w)
	if len(res.Comparisons) == 0 {
		// Nothing overlapped: comparing would be vacuous, and exiting 0
		// would silently disable the fence (and promote this run to the
		// next baseline). Fail loudly instead.
		return fmt.Errorf("bench: no benchmark appears in both %s and %s — fence cannot compare", oldPath, newPath)
	}
	if regs := res.Regressions(); len(regs) > 0 {
		names := make([]string, len(regs))
		for i, c := range regs {
			names[i] = fmt.Sprintf("%s (+%.1f%%, p=%.3f)", c.Name, c.DeltaPct, c.P)
		}
		return fmt.Errorf("bench: %d significant regression(s) > %g%%: %s",
			len(regs), maxRegressPct, strings.Join(names, "; "))
	}
	return nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// permTestRankSum is an exact two-sided Mann-Whitney/Wilcoxon test: the
// statistic is the rank sum of the first group over the pooled samples
// (midranks for ties), and the p-value is the fraction of all C(n+m,n)
// group assignments whose rank sum deviates from its permutation mean at
// least as much as the observed one. Exact, distribution free, and never
// below 1/C(n+m,n) because the identity split always counts. Beyond
// maxExactSplits it switches to the standard normal approximation with
// tie correction.
func permTestRankSum(a, b []float64) float64 {
	n, m := len(a), len(b)
	if n < 2 || m < 2 {
		return 1
	}
	ranks := midranks(a, b)
	obsW := 0.0
	for i := 0; i < n; i++ {
		obsW += ranks[i]
	}
	meanW := float64(n) * float64(n+m+1) / 2
	obsDev := math.Abs(obsW - meanW)
	const eps = 1e-9
	tol := eps * (1 + obsDev)

	if binomial(n+m, n) > maxExactSplits {
		return rankSumNormalP(ranks, n, m, obsDev)
	}
	// Enumerate every choice of n rank positions for group A.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	total, extreme := 0, 0
	for {
		total++
		w := 0.0
		for _, j := range idx {
			w += ranks[j]
		}
		if math.Abs(w-meanW) >= obsDev-tol {
			extreme++
		}
		// next combination of n indices out of n+m
		i := n - 1
		for i >= 0 && idx[i] == m+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < n; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return float64(extreme) / float64(total)
}

// midranks returns the pooled midranks of a then b: ranks 1..n+m with
// tied values sharing the average of the ranks they span.
func midranks(a, b []float64) []float64 {
	n, m := len(a), len(b)
	pool := append(append(make([]float64, 0, n+m), a...), b...)
	order := make([]int, n+m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return pool[order[i]] < pool[order[j]] })
	ranks := make([]float64, n+m)
	for i := 0; i < len(order); {
		j := i
		for j < len(order) && pool[order[j]] == pool[order[i]] {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[order[k]] = mid
		}
		i = j
	}
	return ranks
}

// maxExactSplits bounds the exact enumeration: C(10,5)=252 for the CI
// default of -count=5 vs -count=5; C(20,10)=184756 still enumerates in
// well under a second.
const maxExactSplits = 200_000

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
		if r > 10*maxExactSplits { // avoid overflow; caller only thresholds
			return r
		}
	}
	return r
}

// rankSumNormalP is the large-sample normal approximation of the rank-sum
// permutation distribution, with the usual tie correction. Only used
// beyond maxExactSplits, i.e. -count well above anything CI runs.
func rankSumNormalP(ranks []float64, n, m int, obsDev float64) float64 {
	N := float64(n + m)
	// Tie correction: sum over tie groups of (t^3 - t).
	counts := make(map[float64]float64, len(ranks))
	for _, r := range ranks {
		counts[r]++
	}
	tieSum := 0.0
	for _, t := range counts {
		tieSum += t*t*t - t
	}
	sigma2 := float64(n) * float64(m) / 12 * (N + 1 - tieSum/(N*(N-1)))
	if sigma2 <= 0 {
		return 1 // all values tied: no evidence of a shift
	}
	z := obsDev / math.Sqrt(sigma2)
	return math.Erfc(z / math.Sqrt2)
}
