package bench

import (
	"fmt"

	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/query"
	"hare/internal/temporal"
)

// queryMeasurement is one dataset's query-compiler profile: the compiled
// all-out star plan ("a->b; a->c; a->d") against the hand-tuned
// CountStar4 it lowers to, and the generic edge-pivot executor on a
// temporal triangle ("a->b; b->c; c->a") — a shape no hand-tuned counter
// covers, so its only baseline is its own throughput.
type queryMeasurement struct {
	Star4NsOp    int64
	HandNsOp     int64
	Overhead     float64
	TriangleNsOp int64
}

// measureQuery times both compiled-plan families with the default
// scheduling options (all CPUs, auto threshold) and cross-checks the
// star plan's count against the hand-tuned counter cell — a divergence
// fails the bench rather than publishing a wrong-fast number. The star
// overhead ratio (compiled / hand-tuned) is the price of generality for
// a spec the compiler can lower to the specialized machinery; it targets
// <= 1.15 (a center plan is one CountStar4Range call plus one cell read,
// so anything above noise indicates a lowering regression).
func measureQuery(g *temporal.Graph, delta temporal.Timestamp, runs int) (queryMeasurement, error) {
	var m queryMeasurement
	opts := query.Options{}

	star, err := query.ParseSpec("a->b; a->c; a->d")
	if err != nil {
		return queryMeasurement{}, err
	}
	plan := query.Compile(star)
	var compiled uint64
	m.Star4NsOp = bestOf(runs, func() { compiled = plan.Execute(g, delta, opts) })
	var hand higher.Star4Counter
	m.HandNsOp = bestOf(runs, func() { hand = higher.CountStar4(g, delta, opts) })
	if want := hand.At(motif.Out, motif.Out, motif.Out); compiled != want {
		return queryMeasurement{}, fmt.Errorf("query bench: compiled star plan = %d, hand-tuned cell = %d", compiled, want)
	}
	if m.HandNsOp > 0 {
		m.Overhead = float64(m.Star4NsOp) / float64(m.HandNsOp)
	}

	tri, err := query.ParseSpec("a->b; b->c; c->a")
	if err != nil {
		return queryMeasurement{}, err
	}
	triPlan := query.Compile(tri)
	m.TriangleNsOp = bestOf(runs, func() { triPlan.Execute(g, delta, opts) })
	return m, nil
}
