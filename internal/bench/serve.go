package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"

	"hare"
	"hare/internal/temporal"
)

// serveMeasurement is one dataset's hared query-service throughput: cold
// requests (every request a cache miss computing a fresh count) versus
// cached requests (every request a cache hit), both under Concurrency
// concurrent clients driving /v1/count.
type serveMeasurement struct {
	Concurrency  int
	ColdNsOp     int64
	CachedNsOp   int64
	ColdReqSec   float64
	CachedReqSec float64
	Speedup      float64
}

// serveConcurrency is the client parallelism of the serve measurements:
// enough to exercise the admission controller and cache locking, low
// enough that CI runners aren't oversubscribed.
func serveConcurrency() int {
	c := runtime.GOMAXPROCS(0)
	if c > 8 {
		c = 8
	}
	if c < 2 {
		c = 2
	}
	return c
}

// measureServe drives an in-process hared server over its HTTP handler
// (httptest recorders, no sockets: the measurement tracks the service
// stack — routing, registry, cache, admission, counting, JSON — not
// kernel TCP). Cold requests use pairwise-distinct δ values so each one
// misses the cache; cached requests repeat one δ so all but the warm-up
// hit. runs is the best-of repetition count.
func measureServe(name string, g *temporal.Graph, delta temporal.Timestamp, runs int) (serveMeasurement, error) {
	srv, err := hare.NewServer(hare.ServerOptions{CacheSize: 1 << 16})
	if err != nil {
		return serveMeasurement{}, err
	}
	if err := srv.RegisterGraph(name, "bench", g); err != nil {
		return serveMeasurement{}, err
	}
	handler := srv.Handler()

	conc := serveConcurrency()
	m := serveMeasurement{Concurrency: conc}

	var badStatus atomic.Value
	do := func(delta int64) {
		url := fmt.Sprintf("/v1/count?dataset=%s&delta=%d", name, delta)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			badStatus.Store(fmt.Sprintf("GET %s: status %d: %s", url, rec.Code, rec.Body.String()))
		}
	}
	// fire issues total requests across conc workers, request i getting
	// its δ from deltaAt; bestOf times the whole volley and the callers
	// divide by the request count.
	fire := func(total int, deltaAt func(i int) int64) {
		var wg sync.WaitGroup
		next := atomic.Int64{}
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= total {
						return
					}
					do(deltaAt(i))
				}
			}()
		}
		wg.Wait()
	}

	// Cold: a distinct δ per request, and distinct across best-of runs
	// too, so every request misses and computes. The drift of a few dozen
	// seconds around the base δ leaves the workload essentially constant.
	coldN := 2 * conc
	nextDelta := int64(delta)
	m.ColdNsOp = bestOf(runs, func() {
		base := nextDelta
		nextDelta += int64(coldN)
		fire(coldN, func(i int) int64 { return base + int64(i) })
	}) / int64(coldN)

	// Cached: warm one key, then hammer it.
	do(int64(delta))
	cachedN := 512 * conc
	m.CachedNsOp = bestOf(runs, func() {
		fire(cachedN, func(int) int64 { return int64(delta) })
	}) / int64(cachedN)

	if msg := badStatus.Load(); msg != nil {
		return serveMeasurement{}, fmt.Errorf("serve bench: %s", msg)
	}
	m.ColdReqSec = rate(1, m.ColdNsOp)
	m.CachedReqSec = rate(1, m.CachedNsOp)
	if m.CachedNsOp > 0 {
		m.Speedup = float64(m.ColdNsOp) / float64(m.CachedNsOp)
	}
	// Sanity: the cache must actually have been hit — a wiring mistake
	// here would silently benchmark cold twice.
	if hits, _, _, _ := srv.CacheStats(); hits == 0 {
		return serveMeasurement{}, fmt.Errorf("serve bench: no cache hits recorded")
	}
	return m, nil
}
