package gen

import (
	"testing"

	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Name: "n", Nodes: 1, Edges: 1, TimeSpan: 10, ZipfS: 1.5},
		{Name: "e", Nodes: 5, Edges: -1, TimeSpan: 10, ZipfS: 1.5},
		{Name: "t", Nodes: 5, Edges: 1, TimeSpan: 0, ZipfS: 1.5},
		{Name: "z", Nodes: 5, Edges: 1, TimeSpan: 10, ZipfS: 1.0},
		{Name: "p", Nodes: 5, Edges: 1, TimeSpan: 10, ZipfS: 1.5, ReplyProb: 0.6, RepeatProb: 0.6},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q: want validation error", c.Name)
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("config %q: Generate should fail", c.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "d", Nodes: 100, Edges: 2000, TimeSpan: 50_000, ZipfS: 1.7,
		ReplyProb: 0.2, RepeatProb: 0.1, TriadProb: 0.05, BurstLen: 4, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	cfg.Seed = 8
	c, _ := Generate(cfg)
	same := true
	for i := range a.Edges() {
		if a.Edges()[i] != c.Edges()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{Name: "s", Nodes: 500, Edges: 10_000, TimeSpan: 200_000, ZipfS: 1.8,
		ReplyProb: 0.25, RepeatProb: 0.1, TriadProb: 0.05, BurstLen: 5, Seed: 3}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != cfg.Edges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), cfg.Edges)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_, max, ok := g.TimeSpan()
	if !ok || max <= 0 {
		t.Fatal("degenerate time span")
	}
	st := temporal.ComputeStats(g, 20)
	if st.DegreeGini < 0.3 {
		t.Errorf("degree gini = %.2f, want heavy tail (> 0.3)", st.DegreeGini)
	}
	if st.MaxDegree < 20*int(st.MeanDegree) {
		t.Errorf("max degree %d not hub-like vs mean %.1f", st.MaxDegree, st.MeanDegree)
	}
}

// The processes must actually produce all three motif categories — otherwise
// the benchmark workloads would be degenerate.
func TestGenerateProducesAllCategories(t *testing.T) {
	cfg := Config{Name: "m", Nodes: 300, Edges: 8000, TimeSpan: 80_000, ZipfS: 1.7,
		ReplyProb: 0.25, RepeatProb: 0.1, TriadProb: 0.08, BurstLen: 5, Seed: 11}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := fast.Count(g, 600).ToMatrix()
	if m.CategoryTotal(motif.CategoryPair) == 0 {
		t.Error("no pair motifs generated")
	}
	if m.CategoryTotal(motif.CategoryStar) == 0 {
		t.Error("no star motifs generated")
	}
	if m.CategoryTotal(motif.CategoryTri) == 0 {
		t.Error("no triangle motifs generated")
	}
}

func TestDatasetsTable(t *testing.T) {
	if len(Datasets) != 16 {
		t.Fatalf("datasets = %d, want 16 (paper Table II)", len(Datasets))
	}
	seen := map[string]bool{}
	for _, c := range Datasets {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if seen[c.Name] {
			t.Errorf("duplicate dataset %q", c.Name)
		}
		seen[c.Name] = true
	}
	if _, err := DatasetByName("wikitalk"); err != nil {
		t.Error(err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("want error for unknown dataset")
	}
	if len(DatasetNames()) != 16 {
		t.Error("DatasetNames size wrong")
	}
}

func TestScaled(t *testing.T) {
	cfg, _ := DatasetByName("wikitalk")
	s := Scaled(cfg, 0.1)
	if s.Nodes != cfg.Nodes/10 || s.Edges != cfg.Edges/10 {
		t.Fatalf("scaled = %d/%d", s.Nodes, s.Edges)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if tiny := Scaled(cfg, 1e-9); tiny.Validate() != nil {
		t.Fatal("tiny scale must stay valid")
	}
	if same := Scaled(cfg, 1); same != cfg {
		t.Fatal("scale 1 must be identity")
	}
}

func TestMustGenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate should panic on invalid config")
		}
	}()
	MustGenerate(Config{Name: "bad", Nodes: 0, Edges: 1, TimeSpan: 1, ZipfS: 2})
}
