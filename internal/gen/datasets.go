package gen

import (
	"fmt"
	"math"
	"sort"

	"hare/internal/temporal"
)

// Datasets mirrors the paper's Table II with seeded synthetic analogues.
// Sizes are scaled down roughly two orders of magnitude on the largest
// datasets so the full experiment suite runs on one machine; node/edge
// ratios, degree skew (ZipfS), conversational structure (reply/repeat/triad)
// and burstiness are chosen per dataset character (email, messaging,
// transactions, Q&A, ratings, talk pages, ads, comments). See DESIGN.md §4
// for the substitution argument.
var Datasets = []Config{
	{Name: "email-eu", Nodes: 986, Edges: 60_000, TimeSpan: 1_200_000, ZipfS: 1.6, ReplyProb: 0.25, RepeatProb: 0.15, TriadProb: 0.08, BurstLen: 6, Seed: 42},
	{Name: "collegemsg", Nodes: 1_899, Edges: 20_000, TimeSpan: 500_000, ZipfS: 1.5, ReplyProb: 0.30, RepeatProb: 0.10, TriadProb: 0.05, BurstLen: 4, Seed: 42},
	{Name: "bitcoinotc", Nodes: 5_881, Edges: 36_000, TimeSpan: 1_400_000, ZipfS: 1.8, ReplyProb: 0.05, RepeatProb: 0.05, TriadProb: 0.04, BurstLen: 3, Seed: 42},
	{Name: "bitcoinalpha", Nodes: 3_783, Edges: 24_000, TimeSpan: 950_000, ZipfS: 1.8, ReplyProb: 0.05, RepeatProb: 0.05, TriadProb: 0.04, BurstLen: 3, Seed: 42},
	{Name: "act-mooc", Nodes: 7_143, Edges: 80_000, TimeSpan: 400_000, ZipfS: 2.0, ReplyProb: 0, RepeatProb: 0.30, TriadProb: 0.02, BurstLen: 8, Seed: 42},
	{Name: "sms-a", Nodes: 20_000, Edges: 90_000, TimeSpan: 2_700_000, ZipfS: 1.7, ReplyProb: 0.40, RepeatProb: 0.15, TriadProb: 0.02, BurstLen: 5, Seed: 42},
	{Name: "fb-wall", Nodes: 20_000, Edges: 100_000, TimeSpan: 3_000_000, ZipfS: 1.7, ReplyProb: 0.20, RepeatProb: 0.10, TriadProb: 0.06, BurstLen: 5, Seed: 42},
	{Name: "mathoverflow", Nodes: 12_000, Edges: 90_000, TimeSpan: 2_700_000, ZipfS: 1.9, ReplyProb: 0.25, RepeatProb: 0.10, TriadProb: 0.05, BurstLen: 6, Seed: 42},
	{Name: "askubuntu", Nodes: 40_000, Edges: 140_000, TimeSpan: 4_200_000, ZipfS: 2.0, ReplyProb: 0.20, RepeatProb: 0.08, TriadProb: 0.04, BurstLen: 6, Seed: 42},
	{Name: "superuser", Nodes: 50_000, Edges: 180_000, TimeSpan: 5_400_000, ZipfS: 2.0, ReplyProb: 0.20, RepeatProb: 0.08, TriadProb: 0.04, BurstLen: 6, Seed: 42},
	{Name: "rec-movielens", Nodes: 80_000, Edges: 350_000, TimeSpan: 3_500_000, ZipfS: 1.9, ReplyProb: 0, RepeatProb: 0.05, TriadProb: 0, BurstLen: 10, Seed: 42},
	{Name: "wikitalk", Nodes: 100_000, Edges: 280_000, TimeSpan: 8_400_000, ZipfS: 2.2, ReplyProb: 0.20, RepeatProb: 0.10, TriadProb: 0.02, BurstLen: 7, Seed: 42},
	{Name: "stackoverflow", Nodes: 150_000, Edges: 500_000, TimeSpan: 15_000_000, ZipfS: 2.0, ReplyProb: 0.20, RepeatProb: 0.08, TriadProb: 0.03, BurstLen: 6, Seed: 42},
	{Name: "ia-online-ads", Nodes: 200_000, Edges: 220_000, TimeSpan: 8_800_000, ZipfS: 1.8, ReplyProb: 0, RepeatProb: 0.10, TriadProb: 0, BurstLen: 4, Seed: 42},
	{Name: "soc-bitcoin", Nodes: 200_000, Edges: 650_000, TimeSpan: 13_000_000, ZipfS: 2.1, ReplyProb: 0.05, RepeatProb: 0.05, TriadProb: 0.03, BurstLen: 5, Seed: 42},
	{Name: "redditcomments", Nodes: 150_000, Edges: 800_000, TimeSpan: 16_000_000, ZipfS: 2.0, ReplyProb: 0.35, RepeatProb: 0.10, TriadProb: 0.03, BurstLen: 8, Seed: 42},
}

// DatasetNames lists the dataset names in Table II order.
func DatasetNames() []string {
	out := make([]string, len(Datasets))
	for i, c := range Datasets {
		out[i] = c.Name
	}
	return out
}

// DatasetByName returns the named config.
func DatasetByName(name string) (Config, error) {
	for _, c := range Datasets {
		if c.Name == name {
			return c, nil
		}
	}
	names := DatasetNames()
	sort.Strings(names)
	return Config{}, fmt.Errorf("gen: unknown dataset %q (known: %v)", name, names)
}

// Scaled returns cfg with node, edge and time-span counts multiplied by f
// (minimums enforced so tiny scales remain valid configs).
func Scaled(cfg Config, f float64) Config {
	if f <= 0 || f == 1 {
		return cfg
	}
	s := cfg
	s.Nodes = maxInt(2, int(math.Round(float64(cfg.Nodes)*f)))
	s.Edges = maxInt(1, int(math.Round(float64(cfg.Edges)*f)))
	s.TimeSpan = temporal.Timestamp(maxInt(1, int(math.Round(float64(cfg.TimeSpan)*f))))
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
