// Package gen produces seeded synthetic temporal graphs that stand in for
// the paper's sixteen real-world datasets (Table II), which are not
// available offline. The generator reproduces the structural properties the
// counting algorithms are sensitive to:
//
//   - heavy-tailed node popularity (Zipf) — drives the load imbalance that
//     motivates HARE's hierarchical parallelism (paper Fig. 9);
//   - reply and repeat processes — multi-edges between the same pair, the
//     source of pair motifs;
//   - triadic closure over recent edges — temporal triangles;
//   - bursty timestamps — realistic in-window degrees d^δ, which set FAST's
//     effective workload.
//
// Everything is deterministic for a given Config (including its Seed).
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"hare/internal/temporal"
)

// Config parameterises one synthetic dataset.
type Config struct {
	Name string
	// Nodes and Edges size the graph.
	Nodes int
	Edges int
	// TimeSpan is the total simulated duration in seconds.
	TimeSpan temporal.Timestamp
	// ZipfS is the Zipf exponent (> 1) of the node-popularity distribution;
	// larger means more skew.
	ZipfS float64
	// ReplyProb is the probability that an event is a reply: the reverse of
	// a recently generated edge.
	ReplyProb float64
	// RepeatProb is the probability that an event repeats a recent edge in
	// the same direction.
	RepeatProb float64
	// TriadProb is the probability that an event closes a two-hop path over
	// recent edges into a triangle.
	TriadProb float64
	// BurstLen > 1 emits timestamps in bursts of roughly this many events
	// (bursts share a short time neighbourhood), mimicking conversational
	// data.
	BurstLen int
	// Seed feeds the deterministic RNG.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("gen: %q: need at least 2 nodes", c.Name)
	case c.Edges < 0:
		return fmt.Errorf("gen: %q: negative edge count", c.Name)
	case c.TimeSpan < 1:
		return fmt.Errorf("gen: %q: need a positive time span", c.Name)
	case c.ZipfS <= 1:
		return fmt.Errorf("gen: %q: ZipfS must be > 1", c.Name)
	case c.ReplyProb+c.RepeatProb+c.TriadProb > 1:
		return fmt.Errorf("gen: %q: event probabilities exceed 1", c.Name)
	default:
		return nil
	}
}

// Generate builds the synthetic temporal graph described by cfg.
func Generate(cfg Config) (*temporal.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Nodes-1))

	b := temporal.NewBuilder(cfg.Edges)
	// Ring buffer of recent edges feeding the reply/repeat/triad processes.
	const recentCap = 256
	recent := make([]temporal.Edge, 0, recentCap)
	push := func(e temporal.Edge) {
		if len(recent) < recentCap {
			recent = append(recent, e)
			return
		}
		recent[r.Intn(recentCap)] = e
	}
	pick := func() temporal.Edge { return recent[r.Intn(len(recent))] }

	// Timestamp process: advance by exponential gaps scaled so the expected
	// total duration is TimeSpan; bursts reuse a small neighbourhood.
	meanGap := float64(cfg.TimeSpan) / float64(cfg.Edges+1)
	burst := cfg.BurstLen
	if burst < 1 {
		burst = 1
	}
	var t temporal.Timestamp
	burstLeft := 0
	nextTime := func() temporal.Timestamp {
		if burstLeft > 0 {
			burstLeft--
			t += temporal.Timestamp(r.Intn(3)) // nearly simultaneous events
			return t
		}
		burstLeft = r.Intn(2 * burst) // on average, bursts of ~BurstLen
		gap := r.ExpFloat64() * meanGap * float64(burst)
		t += temporal.Timestamp(math.Ceil(gap))
		return t
	}

	fresh := func() (temporal.NodeID, temporal.NodeID) {
		u := temporal.NodeID(zipf.Uint64())
		v := temporal.NodeID(zipf.Uint64())
		for v == u {
			v = temporal.NodeID(r.Intn(cfg.Nodes))
		}
		// Randomise orientation: Zipf draws concentrate low IDs; hubs
		// should both send and receive.
		if r.Intn(2) == 0 {
			u, v = v, u
		}
		return u, v
	}

	for i := 0; i < cfg.Edges; i++ {
		ts := nextTime()
		var u, v temporal.NodeID
		p := r.Float64()
		switch {
		case len(recent) > 0 && p < cfg.ReplyProb:
			e := pick()
			u, v = e.To, e.From
		case len(recent) > 0 && p < cfg.ReplyProb+cfg.RepeatProb:
			e := pick()
			u, v = e.From, e.To
		case len(recent) > 1 && p < cfg.ReplyProb+cfg.RepeatProb+cfg.TriadProb:
			// Close a wedge: find recent edges (a,b), (b,c) and emit (a,c)
			// or (c,a). A few attempts; fall back to a fresh edge.
			u, v = 0, 0
			for try := 0; try < 4; try++ {
				e1, e2 := pick(), pick()
				var a, c temporal.NodeID
				switch {
				case e1.To == e2.From && e1.From != e2.To:
					a, c = e1.From, e2.To
				case e2.To == e1.From && e2.From != e1.To:
					a, c = e2.From, e1.To
				default:
					continue
				}
				if r.Intn(2) == 0 {
					a, c = c, a
				}
				u, v = a, c
				break
			}
			if u == v {
				u, v = fresh()
			}
		default:
			u, v = fresh()
		}
		e := temporal.Edge{From: u, To: v, Time: ts}
		if err := b.AddEdge(u, v, ts); err != nil {
			return nil, err
		}
		push(e)
	}
	return b.Build(), nil
}

// MustGenerate is Generate for static configs known to be valid (panics on
// error). Used by the benchmark harness.
func MustGenerate(cfg Config) *temporal.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}
