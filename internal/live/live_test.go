package live

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"hare/internal/engine"
	"hare/internal/motif"
	"hare/internal/temporal"
)

func mustNew(t *testing.T, name string, opts Options) *Dataset {
	t.Helper()
	d, err := New(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", Options{Delta: 10}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New("x", Options{Delta: -1}); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := New("x", Options{Delta: 1, Z: -2}); err == nil {
		t.Fatal("negative z accepted")
	}
	if _, err := New("x", Options{Delta: 1, Warmup: -1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestVersioningAndAtomicReject(t *testing.T) {
	d := mustNew(t, "txn", Options{Delta: 100})
	if v := d.Version(); v != 1 {
		t.Fatalf("empty dataset version = %d, want 1", v)
	}

	res, err := d.Ingest([]temporal.Edge{
		{From: 0, To: 1, Time: 10}, {From: 1, To: 2, Time: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Accepted != 2 || res.Watermark != 20 {
		t.Fatalf("res = %+v, want version 2, accepted 2, watermark 20", res)
	}

	// An empty batch accepts trivially and must not advance the version.
	res, err = d.Ingest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Accepted != 0 {
		t.Fatalf("empty batch res = %+v, want version 2, accepted 0", res)
	}

	// A batch with one out-of-order edge is rejected atomically: version,
	// counts and log are untouched.
	before := d.Matrix()
	_, err = d.Ingest([]temporal.Edge{
		{From: 2, To: 3, Time: 30}, {From: 3, To: 4, Time: 5},
	})
	if err == nil || !strings.Contains(err.Error(), "batch edge 1") {
		t.Fatalf("out-of-order batch error = %v, want batch-indexed rejection", err)
	}
	if v := d.Version(); v != 2 {
		t.Fatalf("version after rejected batch = %d, want 2", v)
	}
	after := d.Matrix()
	if !after.Equal(&before) {
		t.Fatal("rejected batch mutated counts")
	}
	if st := d.Stats(); st.Rejected != 1 || st.Ingests != 1 || st.Edges != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestTextLineNumberedErrors(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed", "0 1 10\nnot an edge\n", "line 2"},
		{"out-of-range", "0 1 10\n99999999999 1 20\n", "line 2: node id out of range"},
		{"out-of-order", "# comment\n0 1 10\n1 2 5\n", "line 3: out-of-order edge at t=5 (last 10)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := mustNew(t, "txn", Options{Delta: 100})
			_, err := d.IngestText(strings.NewReader(tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
			if v := d.Version(); v != 1 {
				t.Fatalf("version after rejected text batch = %d, want 1", v)
			}
			if st := d.Stats(); st.Rejected != 1 {
				t.Fatalf("rejected = %d, want 1", st.Rejected)
			}
		})
	}

	// Ordering is enforced across batches too: the watermark carries over.
	d := mustNew(t, "txn", Options{Delta: 100})
	if _, err := d.IngestText(strings.NewReader("0 1 10\n")); err != nil {
		t.Fatal(err)
	}
	_, err := d.IngestText(strings.NewReader("1 2 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1: out-of-order edge at t=3 (last 10)") {
		t.Fatalf("cross-batch ordering error = %v", err)
	}
}

func TestCumulativeCountsMatchBatchEngine(t *testing.T) {
	// A deliberately motif-dense little stream, ingested in uneven
	// batches: the online cumulative counts must be bit-identical to the
	// batch engine over the same edges.
	var edges []temporal.Edge
	for i := 0; i < 120; i++ {
		edges = append(edges,
			temporal.Edge{From: temporal.NodeID(i % 7), To: temporal.NodeID((i + 1) % 7), Time: temporal.Timestamp(i * 3)},
			temporal.Edge{From: temporal.NodeID((i + 2) % 5), To: temporal.NodeID(i % 5), Time: temporal.Timestamp(i*3 + 1)},
		)
	}
	const delta = 50
	d := mustNew(t, "txn", Options{Delta: delta})
	for lo := 0; lo < len(edges); {
		hi := lo + 17
		if hi > len(edges) {
			hi = len(edges)
		}
		if _, err := d.Ingest(edges[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	want := engine.Count(temporal.FromEdges(edges), delta, engine.Options{}).ToMatrix()
	got := d.Matrix()
	if !got.Equal(&want) {
		t.Fatalf("online counts diverge from batch engine: %v", got.Diff(&want))
	}
	// The graph snapshot must hold the same edges (and is cached per
	// version: two calls at one version return the same graph).
	g1, g2 := d.Graph(), d.Graph()
	if g1 != g2 {
		t.Fatal("snapshot not cached within a version")
	}
	if g1.NumEdges() != len(edges) {
		t.Fatalf("snapshot edges = %d, want %d", g1.NumEdges(), len(edges))
	}
	if n, e, ok := d.SnapshotDims(); !ok || e != len(edges) || n != g1.NumNodes() {
		t.Fatalf("SnapshotDims = (%d,%d,%v)", n, e, ok)
	}
	if _, err := d.Ingest([]temporal.Edge{{From: 0, To: 1, Time: 100000}}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.SnapshotDims(); ok {
		t.Fatal("SnapshotDims fresh after ingest invalidated the snapshot")
	}
	if g3 := d.Graph(); g3 == g1 || g3.NumEdges() != len(edges)+1 {
		t.Fatal("snapshot not rebuilt after version advance")
	}
}

// plantPingPong appends the examples/anomaly attack construction: tight
// a⇄b message bursts (a→b, b→a, a→b within seconds) — motif M65.
func plantPingPong(t0 temporal.Timestamp, pairs int) []temporal.Edge {
	var out []temporal.Edge
	for i := 0; i < pairs; i++ {
		a := temporal.NodeID(100 + 2*i)
		b := a + 1
		base := t0 + temporal.Timestamp(i)
		out = append(out,
			temporal.Edge{From: a, To: b, Time: base},
			temporal.Edge{From: b, To: a, Time: base + 7},
			temporal.Edge{From: a, To: b, Time: base + 15},
		)
	}
	// Per-burst edges interleave in time; globally sort by construction:
	// bursts start 1 apart but spread 15, so merge-sort by time.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Time < out[j-1].Time; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestWatchAlertsOnPlantedAnomalyAndStaysSilentOnNull(t *testing.T) {
	const delta = 600
	d := mustNew(t, "msgs", Options{Delta: delta})
	ch, cancel := d.Subscribe()
	defer cancel()

	// Quiet baseline: far-apart single edges form no in-window motifs, so
	// every warmup reading is all-zero (a zero-variance ensemble).
	for i := 0; i < 6; i++ {
		_, err := d.Ingest([]temporal.Edge{{
			From: temporal.NodeID(i), To: temporal.NodeID(i + 1),
			Time: temporal.Timestamp(10000 * i),
		}})
		if err != nil {
			t.Fatal(err)
		}
		if st := d.Stats(); st.Alerts != 0 {
			t.Fatalf("baseline batch %d raised %d alerts", i, st.Alerts)
		}
	}

	// The planted attack: 8 ping-pong bursts inside one window.
	res, err := d.Ingest(plantPingPong(100000, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alerts) == 0 {
		t.Fatal("planted ping-pong burst raised no alerts")
	}
	var m65 *Alert
	for i := range res.Alerts {
		if res.Alerts[i].Motif == "M65" {
			m65 = &res.Alerts[i]
		}
	}
	if m65 == nil {
		t.Fatalf("alerts %v missing the ping-pong signature M65", res.Alerts)
	}
	if !math.IsInf(m65.Z, 1) || m65.Window < 8 || m65.Version != res.Version {
		t.Fatalf("M65 alert = %+v, want z=+Inf, window >= 8, version %d", m65, res.Version)
	}
	// The window reading really is the sliding count.
	wm := d.WindowMatrix()
	if got := wm.At(motif.Label{Row: 6, Col: 5}); got != m65.Window {
		t.Fatalf("alert window %d != WindowMatrix M65 %d", m65.Window, got)
	}

	// Subscribers received the published alerts.
	got := 0
	for range res.Alerts {
		select {
		case a := <-ch:
			if a.Dataset != "msgs" {
				t.Fatalf("alert dataset = %q", a.Dataset)
			}
			got++
		default:
			t.Fatalf("subscriber received %d alerts, want %d", got, len(res.Alerts))
		}
	}

	// MarshalJSON: infinite z encodes as z_inf, finite z as z.
	data, err := json.Marshal(m65)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"z_inf":"+"`) || strings.Contains(string(data), `"z":`) {
		t.Fatalf("infinite-z alert JSON = %s", data)
	}
	fin := Alert{Motif: "M11", Z: 5.5}
	data, err = json.Marshal(fin)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"z":5.5`) {
		t.Fatalf("finite-z alert JSON = %s", data)
	}
}

func TestWatchNullStreamNeverAlerts(t *testing.T) {
	// The null stream: organic-looking steady traffic with no planted
	// burst. Per batch one fresh-pair edge — window counts never reach
	// MinCount, so the watcher must stay silent forever.
	d := mustNew(t, "null", Options{Delta: 600})
	ch, cancel := d.Subscribe()
	defer cancel()
	for i := 0; i < 50; i++ {
		_, err := d.Ingest([]temporal.Edge{{
			From: temporal.NodeID(2 * i), To: temporal.NodeID(2*i + 1),
			Time: temporal.Timestamp(100 * i),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.Alerts != 0 {
		t.Fatalf("null stream raised %d alerts", st.Alerts)
	}
	select {
	case a := <-ch:
		t.Fatalf("null stream delivered alert %+v", a)
	default:
	}
}

func TestSubscribeCancelAndDrop(t *testing.T) {
	// A near-zero z threshold: every burst batch alerts even as the
	// trailing baseline absorbs the repeats, so we can overfill buffers.
	d := mustNew(t, "x", Options{Delta: 600, MinCount: 1, Warmup: 1, Z: 1e-9})
	ch, cancel := d.Subscribe()
	if st := d.Stats(); st.Subscribers != 1 {
		t.Fatalf("subscribers = %d, want 1", st.Subscribers)
	}
	cancel()
	cancel() // idempotent
	if st := d.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscribers after cancel = %d, want 0", st.Subscribers)
	}
	if _, ok := <-ch; ok {
		t.Fatal("canceled subscriber channel not closed")
	}

	// A full subscriber buffer drops alerts instead of blocking ingest.
	slow, cancel2 := d.Subscribe()
	defer cancel2()
	t0 := temporal.Timestamp(0)
	if _, err := d.Ingest([]temporal.Edge{{From: 0, To: 1, Time: t0}}); err != nil {
		t.Fatal(err) // warmup reading
	}
	for i := 0; i < subscriberBuffer+8; i++ {
		t0 += 2000
		// Each batch is a burst of distinct in-window pair motifs: with
		// MinCount 1 and a (near-)zero baseline it alerts every time.
		batch := plantPingPong(t0, 2)
		if _, err := d.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Dropped == 0 {
		t.Fatalf("no alerts dropped after overfilling the buffer (alerts=%d)", st.Alerts)
	}
	if len(slow) != subscriberBuffer {
		t.Fatalf("subscriber holds %d alerts, want full buffer %d", len(slow), subscriberBuffer)
	}
}

func TestConcurrentIngestAndReads(t *testing.T) {
	// Race hygiene: one ingester, many concurrent readers of every
	// accessor. Run under -race this pins the locking discipline.
	d := mustNew(t, "conc", Options{Delta: 100})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Version()
				d.Matrix()
				d.WindowMatrix()
				d.Graph()
				d.Stats()
				d.Edges()
			}
		}()
	}
	for i := 0; i < 60; i++ {
		batch := []temporal.Edge{
			{From: temporal.NodeID(i % 9), To: temporal.NodeID((i + 1) % 9), Time: temporal.Timestamp(5 * i)},
			{From: temporal.NodeID((i + 3) % 9), To: temporal.NodeID(i % 9), Time: temporal.Timestamp(5*i + 2)},
		}
		if _, err := d.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got, want := d.Version(), uint64(61); got != want {
		t.Fatalf("version = %d, want %d", got, want)
	}
}

func TestIngestTextAcceptsAndCounts(t *testing.T) {
	d := mustNew(t, "txt", Options{Delta: 100})
	body := "# header\n0 1 10\n1 2 15\n2 2 16\n2 0 20\n"
	res, err := d.IngestText(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 4 || res.Version != 2 || res.Watermark != 20 {
		t.Fatalf("res = %+v", res)
	}
	// The self-loop (2 2 16) is accepted, counted as a loop, and dropped
	// from the motif counts — like Add and batch loading.
	if d.Edges() != 3 {
		t.Fatalf("counted edges = %d, want 3 (self-loop dropped)", d.Edges())
	}
	want := engine.Count(temporal.FromEdges([]temporal.Edge{
		{From: 0, To: 1, Time: 10}, {From: 1, To: 2, Time: 15}, {From: 2, To: 0, Time: 20},
	}), 100, engine.Options{}).ToMatrix()
	got := d.Matrix()
	if !got.Equal(&want) {
		t.Fatalf("text-ingested counts diverge: %v", got.Diff(&want))
	}
}

func TestAlertString(t *testing.T) {
	// Finite-z alerts survive a JSON round trip through the wire form.
	a := Alert{Dataset: "d", Version: 3, Motif: "M26", Window: 9, Mean: 1.5, Std: 0.5, Z: 15, Watermark: 42}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]any{
		"dataset": "d", "version": 3.0, "motif": "M26", "window": 9.0,
		"mean": 1.5, "std": 0.5, "z": 15.0, "watermark": 42.0,
	} {
		if m[k] != want {
			t.Fatalf("wire %q = %v, want %v (json: %s)", k, m[k], want, data)
		}
	}
	if _, ok := m["z_inf"]; ok {
		t.Fatalf("finite alert carries z_inf: %s", data)
	}
}

func TestIngestErrorsMentionLiveTier(t *testing.T) {
	// The package prefixes its line-numbered rejections so operators can
	// tell serving-tier rejections from library misuse.
	d := mustNew(t, "x", Options{Delta: 10})
	_, err := d.IngestText(strings.NewReader("nope\n"))
	if err == nil || !strings.HasPrefix(err.Error(), "live: line 1: ") {
		t.Fatalf("err = %v", err)
	}
	_ = fmt.Sprintf("%v", err)
}
