// Package live implements mutable, versioned datasets for the hared
// serving layer — the "frequently updated dynamic systems" the paper's
// introduction motivates, made reachable through HTTP.
//
// A Dataset pairs an exact sliding-window stream.Counter with an
// appendable edge log and a monotonic version: every accepted ingest
// batch appends to the log, feeds the online counter, and advances the
// version by one. The serving layer keys its result cache on
// (dataset, version), so cached answers for an older version die
// naturally on append — no TTLs, no explicit invalidation fan-out.
// Batches are validated and rejected atomically with the stream tier's
// line-numbered errors: on error not one edge of the batch has been
// ingested.
//
// On top of the sliding window sits the watch pipeline: each accepted
// batch takes one WindowMatrix reading, compares every motif's in-window
// count against the trailing ensemble of previous readings (Welford
// mean/std), and publishes an Alert to subscribers whenever a count
// crosses the z-score threshold — the examples/anomaly and
// examples/streamwatch logic running as a real server workload
// (docs/LIVE.md documents the rule and the SSE framing).
package live

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"hare/internal/motif"
	"hare/internal/stream"
	"hare/internal/temporal"
)

// Defaults for the zero values of Options.
const (
	// DefaultZ is the alert z-score threshold.
	DefaultZ = 4.0
	// DefaultMinCount is the minimum in-window count an alert requires —
	// a floor that keeps near-zero baselines from alerting on noise.
	DefaultMinCount = 5
	// DefaultWarmup is how many window readings seed the baseline before
	// any alert may fire.
	DefaultWarmup = 5
	// subscriberBuffer is each watch subscriber's channel depth; alerts
	// beyond it are dropped (and counted) rather than stalling ingest.
	subscriberBuffer = 32
)

// Options configures a live Dataset. The zero value of everything but
// Delta is usable.
type Options struct {
	// Delta is the motif window δ (>= 0) of the sliding stream counter.
	// It governs the watch window and the stream-tier ordering contract;
	// queries against the dataset's graph snapshot may use any δ.
	Delta temporal.Timestamp
	// Workers is the AddBatch fan-out (<= 0 selects GOMAXPROCS).
	Workers int
	// Z is the alert threshold: a motif alerts when its in-window count
	// sits Z trailing standard deviations above the trailing mean
	// (0 selects DefaultZ; a zero-variance baseline alerts on any rise).
	Z float64
	// MinCount is the minimum in-window count an alert requires
	// (0 selects DefaultMinCount).
	MinCount uint64
	// Warmup is the number of window readings that must seed the baseline
	// before alerts fire (0 selects DefaultWarmup).
	Warmup int
}

// Alert is one significance alert: a motif whose sliding-window count
// crossed the ensemble z-score threshold at some version.
type Alert struct {
	// Dataset and Version locate the reading: the alert fired on the
	// ingest batch that advanced the dataset to Version.
	Dataset string
	Version uint64
	// Motif is the crossing motif's label ("M11".."M66").
	Motif string
	// Window is the motif's count over the last δ; Mean and Std summarise
	// the trailing ensemble of window readings it was compared against.
	Window uint64
	Mean   float64
	Std    float64
	// Z is (Window-Mean)/Std, or +Inf when the trailing baseline has zero
	// variance (any rise off a flat baseline is infinitely surprising).
	Z float64
	// Watermark is the stream time of the reading (the batch's largest
	// timestamp).
	Watermark temporal.Timestamp
}

// MarshalJSON encodes the alert with the serving layer's ±Inf convention:
// a finite z emits "z", an infinite one emits "z_inf": "+" instead — JSON
// cannot represent Inf (the sigMotif convention of /v1/sig).
func (a Alert) MarshalJSON() ([]byte, error) {
	type wire struct {
		Dataset   string   `json:"dataset"`
		Version   uint64   `json:"version"`
		Motif     string   `json:"motif"`
		Window    uint64   `json:"window"`
		Mean      float64  `json:"mean"`
		Std       float64  `json:"std"`
		Z         *float64 `json:"z,omitempty"`
		ZInf      string   `json:"z_inf,omitempty"`
		Watermark int64    `json:"watermark"`
	}
	w := wire{
		Dataset: a.Dataset, Version: a.Version, Motif: a.Motif,
		Window: a.Window, Mean: a.Mean, Std: a.Std, Watermark: int64(a.Watermark),
	}
	if math.IsInf(a.Z, 1) {
		w.ZInf = "+"
	} else {
		z := a.Z
		w.Z = &z
	}
	return json.Marshal(w)
}

// IngestResult reports one accepted ingest batch.
type IngestResult struct {
	// Accepted is the number of edges appended (self-loops included; the
	// counter tallies and drops them, exactly like batch loading).
	Accepted int
	// Version is the dataset version after the batch; an empty batch
	// leaves it unchanged.
	Version uint64
	// Watermark is the stream time after the batch.
	Watermark temporal.Timestamp
	// Alerts are the significance alerts this batch triggered, in motif
	// grid order (they were also published to subscribers).
	Alerts []Alert
}

// Stats is a point-in-time snapshot of a dataset's operational counters,
// exported through /metrics as the hared_ingest_* / hared_watch_* series.
type Stats struct {
	Version     uint64
	Ingests     uint64 // accepted batches
	Edges       uint64 // accepted edges (self-loops included)
	Rejected    uint64 // rejected batches (parse, ordering, or range)
	Alerts      uint64 // alerts published
	Dropped     uint64 // alerts dropped on full subscriber channels
	Subscribers int
}

// Dataset is a named mutable dataset: an appendable edge log, an exact
// sliding-window online counter over it, a monotonic version, and the
// watch baseline. All methods are safe for concurrent use; ingest batches
// serialize on an internal mutex, so accepted batches (and the versions
// they stamp) form one total order.
type Dataset struct {
	name string
	opts Options

	mu      sync.Mutex
	ctr     *stream.Counter
	log     []temporal.Edge
	version uint64
	lastT   temporal.Timestamp
	snap    *temporal.Graph // version-stamped graph snapshot (nil = stale)
	snapVer uint64

	// Trailing baseline: Welford moments of every prior window reading,
	// per motif cell (grid order, matching motif.AllLabels).
	readings int
	mean     [36]float64
	m2       [36]float64

	subs    map[int]chan Alert
	nextSub int

	ingests, edges, rejected, alerts, dropped uint64
}

// New returns an empty live dataset at version 1 (the version immutable
// registry datasets carry, so a first ingest moves it to 2 and invalidates
// anything cached against the empty graph).
func New(name string, opts Options) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("live: empty dataset name")
	}
	if opts.Z < 0 || opts.Warmup < 0 {
		return nil, fmt.Errorf("live: negative watch option (z=%g, warmup=%d)", opts.Z, opts.Warmup)
	}
	if opts.Z == 0 {
		opts.Z = DefaultZ
	}
	if opts.MinCount == 0 {
		opts.MinCount = DefaultMinCount
	}
	if opts.Warmup == 0 {
		opts.Warmup = DefaultWarmup
	}
	ctr, err := stream.NewCounter(stream.Options{
		Delta: opts.Delta, Mode: stream.Sliding, Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{
		name:    name,
		opts:    opts,
		ctr:     ctr,
		version: 1,
		subs:    make(map[int]chan Alert),
	}, nil
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// Delta returns the sliding window δ.
func (d *Dataset) Delta() temporal.Timestamp { return d.opts.Delta }

// Version returns the current version: 1 when empty, +1 per accepted
// non-empty ingest batch.
func (d *Dataset) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// Edges returns the number of edges counted so far (self-loops excluded,
// matching the stream counter).
func (d *Dataset) Edges() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctr.Edges()
}

// Matrix returns the exact cumulative per-motif counts over everything
// ingested — bit-identical to batch counting the same edges.
func (d *Dataset) Matrix() motif.Matrix {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctr.Matrix()
}

// WindowMatrix returns the exact per-motif counts of the instances lying
// entirely in the last δ.
func (d *Dataset) WindowMatrix() motif.Matrix {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := d.ctr.WindowMatrix()
	if err != nil {
		panic(err) // unreachable: the counter is always sliding-mode
	}
	return m
}

// Ingest appends one batch of timestamp-ordered edges. The batch is
// validated and rejected atomically by the stream tier: on error, no edge
// has been ingested and the version is unchanged. Errors carry the batch
// index of the offending edge; IngestText carries input line numbers.
func (d *Dataset) Ingest(edges []temporal.Edge) (IngestResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ctr.AddBatch(edges); err != nil {
		d.rejected++
		return IngestResult{}, err
	}
	return d.accepted(edges), nil
}

// accepted finalizes an already-counted batch: log append, version stamp,
// window reading, alert evaluation and publication. Callers hold d.mu.
func (d *Dataset) accepted(edges []temporal.Edge) IngestResult {
	res := IngestResult{Accepted: len(edges), Version: d.version, Watermark: d.lastT}
	if len(edges) == 0 {
		return res
	}
	d.log = append(d.log, edges...)
	d.version++
	d.lastT = edges[len(edges)-1].Time
	d.ingests++
	d.edges += uint64(len(edges))
	res.Version, res.Watermark = d.version, d.lastT

	wm, err := d.ctr.WindowMatrix()
	if err != nil {
		panic(err) // unreachable: the counter is always sliding-mode
	}
	res.Alerts = d.observeWindow(&wm)
	for _, a := range res.Alerts {
		d.publish(a)
	}
	return res
}

// observeWindow evaluates one window reading against the trailing
// baseline, returns the alerts it triggers, and folds the reading into
// the baseline. Callers hold d.mu.
func (d *Dataset) observeWindow(wm *motif.Matrix) []Alert {
	var out []Alert
	labels := motif.AllLabels()
	warm := d.readings >= d.opts.Warmup
	n := float64(d.readings)
	for i, l := range labels {
		cur := wm.At(l)
		if warm {
			mean := d.mean[i]
			std := math.Sqrt(d.m2[i] / n)
			rise := float64(cur) - mean
			if cur >= d.opts.MinCount && rise > 0 {
				z := math.Inf(1)
				if std > 0 {
					z = rise / std
				}
				if z >= d.opts.Z {
					out = append(out, Alert{
						Dataset: d.name, Version: d.version, Motif: l.String(),
						Window: cur, Mean: mean, Std: std, Z: z, Watermark: d.lastT,
					})
				}
			}
		}
		// Welford update — anomalous readings are folded in too, so a
		// sustained shift becomes the new normal instead of alerting
		// forever (the streamwatch trailing-baseline discipline).
		x := float64(cur)
		delta := x - d.mean[i]
		d.mean[i] += delta / (n + 1)
		d.m2[i] += delta * (x - d.mean[i])
	}
	d.readings++
	d.alerts += uint64(len(out))
	return out
}

// publish hands one alert to every subscriber without blocking: a
// subscriber whose channel is full loses the alert (counted in Dropped)
// rather than stalling ingest. Callers hold d.mu.
func (d *Dataset) publish(a Alert) {
	for _, ch := range d.subs {
		select {
		case ch <- a:
		default:
			d.dropped++
		}
	}
}

// Subscribe registers a watch subscriber and returns its alert channel
// plus a cancel function. The channel is buffered (alerts beyond the
// buffer are dropped, never blocking ingest) and closed by cancel.
func (d *Dataset) Subscribe() (<-chan Alert, func()) {
	d.mu.Lock()
	id := d.nextSub
	d.nextSub++
	ch := make(chan Alert, subscriberBuffer)
	d.subs[id] = ch
	d.mu.Unlock()
	cancel := func() {
		d.mu.Lock()
		if _, ok := d.subs[id]; ok {
			delete(d.subs, id)
			close(ch) // safe: publish only sends to channels still in subs
		}
		d.mu.Unlock()
	}
	return ch, cancel
}

// Graph returns an immutable graph snapshot of the full edge log, built
// on first use per version and cached until the next accepted batch. The
// serving layer counts against these snapshots, so any δ (not just the
// stream window) and every query kind work on live datasets.
func (d *Dataset) Graph() *temporal.Graph {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snap == nil || d.snapVer != d.version {
		d.snap = temporal.FromEdges(d.log)
		d.snapVer = d.version
	}
	return d.snap
}

// SnapshotDims reports the cached snapshot's dimensions without building
// one: ok is false when no snapshot for the current version exists yet.
func (d *Dataset) SnapshotDims() (nodes, edges int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snap == nil || d.snapVer != d.version {
		return 0, 0, false
	}
	return d.snap.NumNodes(), d.snap.NumEdges(), true
}

// Stats returns the dataset's operational counters.
func (d *Dataset) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Version:     d.version,
		Ingests:     d.ingests,
		Edges:       d.edges,
		Rejected:    d.rejected,
		Alerts:      d.alerts,
		Dropped:     d.dropped,
		Subscribers: len(d.subs),
	}
}
