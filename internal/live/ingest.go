package live

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"hare/internal/temporal"
)

// IngestText parses a whitespace-separated "u v t" edge list from r (the
// grammar of temporal.ParseEdgeLine: blank and '#'/'%' comment lines are
// skipped) and ingests it as one atomic batch. Validation failures —
// malformed lines, out-of-range node ids, out-of-order timestamps —
// reject the whole batch with the stream tier's line-numbered error
// naming the exact input line, and not one edge has been ingested.
func (d *Dataset) IngestText(r io.Reader) (IngestResult, error) {
	var (
		edges []temporal.Edge
		lines []int // lines[i] is the input line of edges[i]
	)
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		el, skip, err := temporal.ParseEdgeLine(scan.Text(), false)
		if err != nil {
			d.reject()
			return IngestResult{}, fmt.Errorf("live: line %d: %v", lineNo, err)
		}
		if skip {
			continue
		}
		if el.U < 0 || el.V < 0 || el.U > math.MaxInt32 || el.V > math.MaxInt32 {
			d.reject()
			return IngestResult{}, fmt.Errorf("live: line %d: node id out of range (%d,%d)", lineNo, el.U, el.V)
		}
		edges = append(edges, temporal.Edge{
			From: temporal.NodeID(el.U), To: temporal.NodeID(el.V), Time: el.T,
		})
		lines = append(lines, lineNo)
	}
	if err := scan.Err(); err != nil {
		d.reject()
		return IngestResult{}, err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	// Order is validated here, against the live watermark under the
	// ingest lock, so the rejection names the input line; AddBatch's own
	// atomic re-check then cannot fail on ordering.
	last, started := d.lastT, d.readings > 0
	for i, e := range edges {
		if started && e.Time < last {
			d.rejected++
			return IngestResult{}, fmt.Errorf("live: line %d: out-of-order edge at t=%d (last %d)", lines[i], e.Time, last)
		}
		started, last = true, e.Time
	}
	if err := d.ctr.AddBatch(edges); err != nil {
		// Stream-level failures the per-line checks can't see (e.g.
		// edge-id-space exhaustion): localise to the batch's line range,
		// as Counter.Feed does.
		d.rejected++
		if len(lines) > 0 {
			err = fmt.Errorf("live: lines %d-%d: %v", lines[0], lines[len(lines)-1], err)
		}
		return IngestResult{}, err
	}
	return d.accepted(edges), nil
}

// reject counts one rejected batch (for errors detected before d.mu is
// held).
func (d *Dataset) reject() {
	d.mu.Lock()
	d.rejected++
	d.mu.Unlock()
}
