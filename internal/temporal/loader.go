package temporal

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadOptions controls edge-list parsing.
type LoadOptions struct {
	// Comma treats ',' as an additional field separator (SNAP files are
	// whitespace separated, NetworkRepository files are often CSV).
	Comma bool
	// Relabel maps arbitrary non-negative source IDs to a dense [0,n) space.
	// Without it node IDs must already be dense-ish non-negative integers.
	Relabel bool
	// MaxEdges, when > 0, stops after reading that many edges (useful for
	// sampling the head of a very large file).
	MaxEdges int
}

// EdgeLine is one parsed edge-list line, with raw (possibly sparse or
// out-of-range) node ids: range policy is the caller's.
type EdgeLine struct {
	U, V int64
	T    Timestamp
}

// ParseEdgeLine parses one "u v t" edge-list line, the grammar shared by
// every reader in this repository (batch loading and stream feeding).
// skip reports blank and '#'/'%' comment lines. comma additionally treats
// ',' as a field separator. Extra trailing fields are ignored, so 4-column
// formats such as Bitcoin-OTC's "u,v,rating,t" are NOT auto-detected —
// pre-process those or use exactly three leading columns.
func ParseEdgeLine(line string, comma bool) (e EdgeLine, skip bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || line[0] == '#' || line[0] == '%' {
		return EdgeLine{}, true, nil
	}
	if comma {
		line = strings.ReplaceAll(line, ",", " ")
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return EdgeLine{}, false, fmt.Errorf("want at least 3 fields, got %d", len(fields))
	}
	if e.U, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return EdgeLine{}, false, fmt.Errorf("bad source node %q: %v", fields[0], err)
	}
	if e.V, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return EdgeLine{}, false, fmt.Errorf("bad target node %q: %v", fields[1], err)
	}
	if e.T, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
		return EdgeLine{}, false, fmt.Errorf("bad timestamp %q: %v", fields[2], err)
	}
	return e, false, nil
}

// ReadEdgeList parses "u v t" lines from r and builds a Graph.
//
// The line grammar is ParseEdgeLine's.
func ReadEdgeList(r io.Reader, opts LoadOptions) (*Graph, error) {
	b := NewBuilder(1024)
	relabel := map[int64]NodeID{}
	next := NodeID(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		el, skip, err := ParseEdgeLine(sc.Text(), opts.Comma)
		if err != nil {
			return nil, fmt.Errorf("temporal: line %d: %v", lineNo, err)
		}
		if skip {
			continue
		}
		u64, v64, t := el.U, el.V, el.T
		var u, v NodeID
		if opts.Relabel {
			u, next = relabelID(relabel, u64, next)
			v, next = relabelID(relabel, v64, next)
		} else {
			if u64 < 0 || v64 < 0 || u64 > 1<<31-1 || v64 > 1<<31-1 {
				return nil, fmt.Errorf("temporal: line %d: node id out of range (use Relabel)", lineNo)
			}
			u, v = NodeID(u64), NodeID(v64)
		}
		if err := b.AddEdge(u, v, t); err != nil {
			return nil, fmt.Errorf("temporal: line %d: %v", lineNo, err)
		}
		if opts.MaxEdges > 0 && b.Len() >= opts.MaxEdges {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("temporal: read: %v", err)
	}
	return b.Build(), nil
}

func relabelID(m map[int64]NodeID, raw int64, next NodeID) (NodeID, NodeID) {
	if id, ok := m[raw]; ok {
		return id, next
	}
	m[raw] = next
	return next, next + 1
}

// LoadFile reads an edge-list file, transparently decompressing ".gz" paths.
func LoadFile(path string, opts LoadOptions) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("temporal: gzip %s: %v", path, err)
		}
		defer zr.Close()
		r = zr
	}
	return ReadEdgeList(r, opts)
}

// WriteEdgeList writes the graph as "u v t" lines in chronological order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.From, e.To, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the graph to path as an edge list, gzip-compressed when the
// path ends in ".gz".
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := WriteEdgeList(zw, g); err != nil {
			zw.Close()
			return err
		}
		return zw.Close()
	}
	return WriteEdgeList(f, g)
}
