package temporal

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadOptions controls edge-list parsing.
type LoadOptions struct {
	// Comma treats ',' as an additional field separator (SNAP files are
	// whitespace separated, NetworkRepository files are often CSV).
	Comma bool
	// Relabel maps arbitrary non-negative source IDs to a dense [0,n) space.
	// Without it node IDs must already be dense-ish non-negative integers.
	Relabel bool
	// MaxEdges, when > 0, stops after that many kept edges (useful for
	// sampling the head of a very large file). It counts edges added to the
	// graph — self-loops, which the Builder drops, do not count — not input
	// lines; reading stops at the line holding the MaxEdges-th kept edge.
	MaxEdges int
	// Workers is the parallelism of the ingestion pipeline: the input is
	// split into newline-aligned chunks parsed concurrently (a zero-alloc
	// byte-level parser with ParseEdgeLine as its reference grammar) and
	// the CSR build is parallelised. The result is bit-identical to the
	// sequential loader: same EdgeIDs, same relabel assignment, and the
	// same error on the same line number. 0 selects GOMAXPROCS; 1 or any
	// negative value forces the sequential reference path.
	Workers int
}

// EdgeLine is one parsed edge-list line, with raw (possibly sparse or
// out-of-range) node ids: range policy is the caller's.
type EdgeLine struct {
	U, V int64
	T    Timestamp
}

// ParseEdgeLine parses one "u v t" edge-list line, the grammar shared by
// every reader in this repository (batch loading and stream feeding).
// skip reports blank and '#'/'%' comment lines. comma additionally treats
// ',' as a field separator. Extra trailing fields are ignored, so 4-column
// formats such as Bitcoin-OTC's "u,v,rating,t" are NOT auto-detected —
// pre-process those or use exactly three leading columns.
func ParseEdgeLine(line string, comma bool) (e EdgeLine, skip bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || line[0] == '#' || line[0] == '%' {
		return EdgeLine{}, true, nil
	}
	if comma {
		line = strings.ReplaceAll(line, ",", " ")
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return EdgeLine{}, false, fmt.Errorf("want at least 3 fields, got %d", len(fields))
	}
	if e.U, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return EdgeLine{}, false, fmt.Errorf("bad source node %q: %v", fields[0], err)
	}
	if e.V, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return EdgeLine{}, false, fmt.Errorf("bad target node %q: %v", fields[1], err)
	}
	if e.T, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
		return EdgeLine{}, false, fmt.Errorf("bad timestamp %q: %v", fields[2], err)
	}
	return e, false, nil
}

// ReadEdgeList parses "u v t" lines from r and builds a Graph, in parallel
// when opts.Workers allows (see LoadOptions.Workers).
//
// The line grammar is ParseEdgeLine's.
func ReadEdgeList(r io.Reader, opts LoadOptions) (*Graph, error) {
	if w := opts.loadWorkers(); w > 1 {
		return readEdgeListParallel(newStreamSource(r, defaultChunkSize, w), opts, w)
	}
	return readEdgeListSeq(r, opts)
}

// readEdgeListSeq is the sequential reference loader the parallel pipeline
// must be bit-identical to (ploader_test.go enforces the equivalence).
func readEdgeListSeq(r io.Reader, opts LoadOptions) (*Graph, error) {
	b := NewBuilder(1024)
	relabel := map[int64]NodeID{}
	next := NodeID(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		el, skip, err := ParseEdgeLine(sc.Text(), opts.Comma)
		if err != nil {
			return nil, fmt.Errorf("temporal: line %d: %v", lineNo, err)
		}
		if skip {
			continue
		}
		u64, v64, t := el.U, el.V, el.T
		var u, v NodeID
		if opts.Relabel {
			u, next = relabelID(relabel, u64, next)
			v, next = relabelID(relabel, v64, next)
		} else {
			if u64 < 0 || v64 < 0 || u64 > 1<<31-1 || v64 > 1<<31-1 {
				return nil, fmt.Errorf("temporal: line %d: node id out of range (use Relabel)", lineNo)
			}
			u, v = NodeID(u64), NodeID(v64)
		}
		if err := b.AddEdge(u, v, t); err != nil {
			return nil, fmt.Errorf("temporal: line %d: %v", lineNo, err)
		}
		if opts.MaxEdges > 0 && b.Len() >= opts.MaxEdges {
			break
		}
	}
	if err := sc.Err(); err != nil {
		// The scanner failed reading the line after the last complete one,
		// so the error (an I/O failure or a line past the buffer cap)
		// carries that line's number.
		return nil, fmt.Errorf("temporal: line %d: read: %v", lineNo+1, err)
	}
	return b.Build(), nil
}

func relabelID(m map[int64]NodeID, raw int64, next NodeID) (NodeID, NodeID) {
	if id, ok := m[raw]; ok {
		return id, next
	}
	m[raw] = next
	return next, next + 1
}

// LoadFile reads a graph file, dispatching on the extension: ".hare"
// paths load as binary snapshots (see LoadSnapshot — mmapped, zero-parse;
// ".hare.gz" decompresses through the portable snapshot reader), anything
// else parses as an edge-list text file, transparently decompressing ".gz"
// paths. Snapshot loads ignore the parse-oriented LoadOptions — relabeling
// and ordering were fixed when the snapshot was written.
//
// With parallel loading enabled (LoadOptions.Workers), plain text files
// are memory-mapped (read wholesale when mapping is unavailable) and
// chunked in place, while ".gz" files pipeline decompression with parsing:
// the producer goroutine inflates while the workers parse.
func LoadFile(path string, opts LoadOptions) (*Graph, error) {
	if strings.HasSuffix(path, ".hare") {
		return LoadSnapshot(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".hare.gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("temporal: gzip %s: %v", path, err)
		}
		defer zr.Close()
		return ReadSnapshot(zr)
	}
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("temporal: gzip %s: %v", path, err)
		}
		defer zr.Close()
		if w := opts.loadWorkers(); w > 1 {
			// File-backed: the pipeline may join the producer on early
			// stops, which it must before the deferred Closes run.
			src := newStreamSource(zr, defaultChunkSize, w)
			src.fileBacked = true
			return readEdgeListParallel(src, opts, w)
		}
		return ReadEdgeList(zr, opts)
	}
	if w := opts.loadWorkers(); w > 1 {
		if data, unmap, ok := mmapFile(f); ok {
			defer unmap()
			return readEdgeListParallel(newMemSource(data, defaultChunkSize), opts, w)
		}
		src := newStreamSource(f, defaultChunkSize, w)
		src.fileBacked = true
		return readEdgeListParallel(src, opts, w)
	}
	return ReadEdgeList(f, opts)
}

// WriteEdgeList writes the graph as "u v t" lines in chronological order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.From, e.To, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the graph to path, dispatching on the extension like
// LoadFile: ".hare" (and ".hare.gz") paths save the binary snapshot
// format, anything else an edge list, gzip-compressed when the path ends
// in ".gz". The file's Close error is propagated — on many filesystems a
// full disk or a flush failure only surfaces there, and swallowing it
// would report a truncated file as saved.
func SaveFile(path string, g *Graph) error {
	if strings.HasSuffix(path, ".hare") {
		return SaveSnapshot(path, g)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := WriteEdgeList
	if strings.HasSuffix(path, ".hare.gz") {
		write = WriteSnapshot
	}
	werr := writeGraphTo(f, g, write, strings.HasSuffix(path, ".gz"))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func writeGraphTo(f *os.File, g *Graph, write func(io.Writer, *Graph) error, gz bool) error {
	if !gz {
		return write(f, g)
	}
	zw := gzip.NewWriter(f)
	if err := write(zw, g); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}
