package temporal

import "sort"

// TimeSlice returns the subgraph of edges with timestamps in [lo, hi).
// Relative edge order (and hence tie-breaking) is preserved.
func (g *Graph) TimeSlice(lo, hi Timestamp) *Graph {
	edges := g.edges
	from := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= lo })
	to := sort.Search(len(edges), func(i int) bool { return edges[i].Time >= hi })
	return FromEdges(edges[from:to])
}

// InducedSubgraph returns the subgraph of edges whose both endpoints are in
// nodes. Node IDs are preserved (the result has the same ID space).
func (g *Graph) InducedSubgraph(nodes []NodeID) *Graph {
	keep := make(map[NodeID]struct{}, len(nodes))
	for _, u := range nodes {
		keep[u] = struct{}{}
	}
	b := NewBuilder(len(g.edges) / 4)
	for _, e := range g.edges {
		if _, ok := keep[e.From]; !ok {
			continue
		}
		if _, ok := keep[e.To]; !ok {
			continue
		}
		_ = b.AddEdge(e.From, e.To, e.Time) // inputs come from a valid graph
	}
	return b.Build()
}

// FilterMinDegree returns the subgraph restricted to nodes whose temporal
// degree in g is at least k (a one-shot degree filter, not an iterated
// k-core).
func (g *Graph) FilterMinDegree(k int) *Graph {
	var nodes []NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(NodeID(u)) >= k {
			nodes = append(nodes, NodeID(u))
		}
	}
	return g.InducedSubgraph(nodes)
}

// EgoNetwork returns the subgraph induced by u and its static neighbors.
func (g *Graph) EgoNetwork(u NodeID) *Graph {
	if int(u) >= len(g.nbrIndex) || g.nbrIndex[u] == nil {
		return g.InducedSubgraph([]NodeID{u})
	}
	nodes := make([]NodeID, 0, len(g.nbrIndex[u])+1)
	nodes = append(nodes, u)
	for w := range g.nbrIndex[u] {
		nodes = append(nodes, w)
	}
	return g.InducedSubgraph(nodes)
}
