package temporal

import "sort"

// TimeSlice returns the subgraph of edges with timestamps in [lo, hi).
// Relative edge order (and hence tie-breaking) is preserved.
func (g *Graph) TimeSlice(lo, hi Timestamp) *Graph {
	from := sort.Search(len(g.ts), func(i int) bool { return g.ts[i] >= lo })
	to := sort.Search(len(g.ts), func(i int) bool { return g.ts[i] >= hi })
	b := NewBuilder(to - from)
	for i := from; i < to; i++ {
		_ = b.AddEdge(g.src[i], g.dst[i], g.ts[i]) // columns come from a valid graph
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph of edges whose both endpoints are in
// nodes. Node IDs are preserved (the result has the same ID space).
func (g *Graph) InducedSubgraph(nodes []NodeID) *Graph {
	keep := make(map[NodeID]struct{}, len(nodes))
	for _, u := range nodes {
		keep[u] = struct{}{}
	}
	b := NewBuilder(len(g.ts) / 4)
	for i := range g.ts {
		if _, ok := keep[g.src[i]]; !ok {
			continue
		}
		if _, ok := keep[g.dst[i]]; !ok {
			continue
		}
		_ = b.AddEdge(g.src[i], g.dst[i], g.ts[i])
	}
	return b.Build()
}

// FilterMinDegree returns the subgraph restricted to nodes whose temporal
// degree in g is at least k (a one-shot degree filter, not an iterated
// k-core).
func (g *Graph) FilterMinDegree(k int) *Graph {
	var nodes []NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(NodeID(u)) >= k {
			nodes = append(nodes, NodeID(u))
		}
	}
	return g.InducedSubgraph(nodes)
}

// EgoNetwork returns the subgraph induced by u and its static neighbors.
func (g *Graph) EgoNetwork(u NodeID) *Graph {
	nbrs := g.Neighbors(u)
	nodes := make([]NodeID, 0, len(nbrs)+1)
	nodes = append(nodes, u)
	nodes = append(nodes, nbrs...)
	return g.InducedSubgraph(nodes)
}
