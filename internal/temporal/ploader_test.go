package temporal

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// chattyReader returns data in deterministic, irregular small reads, to
// stress chunk boundary handling in the stream source.
type chattyReader struct {
	data []byte
	pos  int
	rng  *rand.Rand
}

func (r *chattyReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := 1 + r.rng.Intn(min(len(p), 700))
	n = min(n, len(r.data)-r.pos)
	copy(p, r.data[r.pos:r.pos+n])
	r.pos += n
	return n, nil
}

// failingReader yields data then fails with err.
type failingReader struct {
	data []byte
	pos  int
	err  error
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// checkLoaderEquivalence runs the sequential reference loader and every
// parallel configuration over the same input and requires bit-identical
// outcomes: equal graphs on success, equal error strings on failure.
func checkLoaderEquivalence(t *testing.T, ctx, input string, opts LoadOptions) {
	t.Helper()
	want, wantErr := readEdgeListSeq(strings.NewReader(input), opts)
	for _, workers := range []int{2, 3, 8} {
		for _, chunkSize := range []int{37, 512, defaultChunkSize} {
			mem, memErr := readEdgeListParallel(
				newMemSource([]byte(input), chunkSize), opts, workers)
			compareLoads(t, fmt.Sprintf("%s mem workers=%d chunk=%d", ctx, workers, chunkSize),
				want, wantErr, mem, memErr)
			rng := rand.New(rand.NewSource(int64(workers*1000 + chunkSize)))
			st, stErr := readEdgeListParallel(
				newStreamSource(&chattyReader{data: []byte(input), rng: rng}, chunkSize, workers),
				opts, workers)
			compareLoads(t, fmt.Sprintf("%s stream workers=%d chunk=%d", ctx, workers, chunkSize),
				want, wantErr, st, stErr)
		}
	}
}

func compareLoads(t *testing.T, ctx string, want *Graph, wantErr error, got *Graph, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: sequential=%v parallel=%v", ctx, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text mismatch:\n sequential: %v\n parallel:   %v", ctx, wantErr, gotErr)
		}
		return
	}
	graphsEqual(t, ctx, want, got)
}

// randomEdgeListInput generates an edge-list text exercising the grammar:
// comments, blanks, uneven whitespace, self-loops, sparse ids (relabel
// mode), extra fields, and (optionally) malformed lines.
func randomEdgeListInput(rng *rand.Rand, lines int, comma, sparseIDs, withBad bool) string {
	var sb strings.Builder
	sep := " "
	if comma {
		sep = ","
	}
	id := func() int64 {
		if sparseIDs {
			return rng.Int63n(1 << 40)
		}
		return rng.Int63n(50)
	}
	for i := 0; i < lines; i++ {
		switch r := rng.Intn(100); {
		case r < 6:
			sb.WriteString("# comment\n")
		case r < 10:
			sb.WriteString("\n")
		case r < 12:
			sb.WriteString("   % also a comment\n")
		case withBad && r < 14:
			sb.WriteString("bogus line\n")
		case withBad && r < 15:
			fmt.Fprintf(&sb, "%d %d\n", id(), id()) // too few fields
		case withBad && r < 16:
			fmt.Fprintf(&sb, "%d%s%d%snot-a-time\n", id(), sep, id(), sep)
		default:
			u := id()
			v := id()
			if rng.Intn(12) == 0 {
				v = u // self-loop
			}
			fmt.Fprintf(&sb, "%d%s%d%s%d", u, sep, v, sep, rng.Intn(100))
			if rng.Intn(10) == 0 {
				fmt.Fprintf(&sb, "%s%d", sep, rng.Intn(9)) // trailing field
			}
			if rng.Intn(15) == 0 {
				sb.WriteString("  ")
			}
			sb.WriteString("\n")
		}
	}
	s := sb.String()
	if rng.Intn(3) == 0 { // sometimes no trailing newline
		s = strings.TrimSuffix(s, "\n")
	}
	return s
}

func TestParallelLoaderEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		comma := trial%2 == 1
		sparse := trial%3 == 0
		withBad := trial%4 >= 2
		lines := 1 + rng.Intn(400)
		input := randomEdgeListInput(rng, lines, comma, sparse, withBad)
		opts := LoadOptions{Comma: comma, Relabel: sparse || trial%5 == 0}
		switch trial % 5 {
		case 2:
			opts.MaxEdges = 1 + rng.Intn(10)
		case 3:
			opts.MaxEdges = 1 + rng.Intn(lines+1)
		}
		ctx := fmt.Sprintf("trial=%d comma=%v relabel=%v max=%d bad=%v",
			trial, comma, opts.Relabel, opts.MaxEdges, withBad)
		checkLoaderEquivalence(t, ctx, input, opts)
	}
}

func TestParallelLoaderEquivalenceCorpus(t *testing.T) {
	// Inputs built around the fuzz seed corpus lines: each corpus line is
	// embedded between valid edges so chunk boundaries can land anywhere
	// around the tricky grammar cases.
	lines := fuzzCorpusLines(t)
	var sb strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&sb, "%d %d %d\n", i, i+1, i)
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	input := sb.String()
	for _, opts := range []LoadOptions{
		{},
		{Relabel: true},
		{Comma: true},
		{Comma: true, Relabel: true},
		{Relabel: true, MaxEdges: 3},
	} {
		ctx := fmt.Sprintf("corpus comma=%v relabel=%v max=%d", opts.Comma, opts.Relabel, opts.MaxEdges)
		checkLoaderEquivalence(t, ctx, input, opts)
	}
}

func TestParallelLoaderEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		input string
		opts  LoadOptions
	}{
		{"empty", "", LoadOptions{}},
		{"only-comments", "# a\n% b\n\n\n", LoadOptions{}},
		{"no-trailing-newline", "0 1 5", LoadOptions{}},
		{"single-selfloop", "7 7 1\n", LoadOptions{}},
		{"selfloop-relabel", "7 7 1\n8 9 2\n", LoadOptions{Relabel: true}},
		{"max-stops-before-bad", "0 1 1\nbogus\n", LoadOptions{MaxEdges: 1}},
		{"max-stops-before-selfloop", "0 1 1\n5 5 9\n", LoadOptions{MaxEdges: 1}},
		{"bad-before-max", "bogus\n0 1 1\n", LoadOptions{MaxEdges: 1}},
		{"range-error", "0 1 1\n2147483648 1 2\n", LoadOptions{}},
		{"negative-id", "0 1 1\n-2 1 2\n", LoadOptions{}},
		{"range-ok-relabel", "2147483648 1 2\n-2 1 3\n", LoadOptions{Relabel: true}},
		{"max-larger-than-input", "0 1 1\n1 2 2\n", LoadOptions{MaxEdges: 99}},
		{"max-exact-boundary", "0 1 1\n1 2 2\n5 5 3\nbogus\n", LoadOptions{MaxEdges: 2}},
		{"unicode-spaces", "1 2 3\n # c\n4 5 6\n", LoadOptions{}},
		{"dup-relabel", "9 9 1\n3 9 2\n9 3 3\n3 9 4\n", LoadOptions{Relabel: true}},
	}
	for _, tc := range cases {
		checkLoaderEquivalence(t, tc.name, tc.input, tc.opts)
	}
}

func TestParallelLoaderReadError(t *testing.T) {
	boom := errors.New("disk on fire")
	data := []byte("0 1 1\n1 2 2\n2 3 3\n4 5")
	want, wantErr := readEdgeListSeq(&failingReader{data: data, err: boom}, LoadOptions{})
	for _, workers := range []int{2, 5} {
		got, gotErr := readEdgeListParallel(
			newStreamSource(&failingReader{data: data, err: boom}, 37, workers),
			LoadOptions{}, workers)
		compareLoads(t, fmt.Sprintf("readerr workers=%d", workers), want, wantErr, got, gotErr)
	}
	if wantErr == nil || !strings.Contains(wantErr.Error(), "line 4") {
		t.Fatalf("sequential read error should name line 4, got %v", wantErr)
	}
	// A read error past the MaxEdges stop line is never observed, exactly
	// like the sequential loader which stops scanning.
	for _, workers := range []int{2, 5} {
		g, err := readEdgeListParallel(
			newStreamSource(&failingReader{data: data, err: boom}, 8, workers),
			LoadOptions{MaxEdges: 2}, workers)
		if err != nil || g.NumEdges() != 2 {
			t.Fatalf("workers=%d: want clean 2-edge graph before read error, got g=%v err=%v", workers, g, err)
		}
	}
}

// blockingReader serves its data and then blocks like a quiet live pipe
// until the test finishes.
type blockingReader struct {
	data    []byte
	pos     int
	release chan struct{}
}

func (r *blockingReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		<-r.release
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// TestParallelLoaderStopsOnBlockedReader: when a parse error (or MaxEdges)
// stops the pipeline, ReadEdgeList must return even though the producer is
// parked in a blocking Read that will never deliver another byte — the
// live-pipe shape. Regression test for a shutdown deadlock where idle
// workers waited on the jobs channel that only a finished producer closes.
func TestParallelLoaderStopsOnBlockedReader(t *testing.T) {
	for name, opts := range map[string]LoadOptions{
		"parse-error": {Workers: 4},
		"max-edges":   {Workers: 4, MaxEdges: 2},
	} {
		release := make(chan struct{})
		t.Cleanup(func() { close(release) })
		r := &blockingReader{data: []byte("0 1 1\nbogus\n2 3 3\n"), release: release}
		if name == "max-edges" {
			r.data = []byte("0 1 1\n1 2 2\n2 3 3\n")
		}
		type result struct {
			g   *Graph
			err error
		}
		ch := make(chan result, 1)
		go func() {
			g, err := readEdgeListParallel(newStreamSource(r, 8, 4), opts, 4)
			ch <- result{g, err}
		}()
		select {
		case res := <-ch:
			if name == "parse-error" {
				if res.err == nil || !strings.Contains(res.err.Error(), "line 2") {
					t.Fatalf("%s: err = %v, want line-2 parse error", name, res.err)
				}
			} else if res.err != nil || res.g.NumEdges() != 2 {
				t.Fatalf("%s: g=%v err=%v, want clean 2-edge graph", name, res.g, res.err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: parallel loader deadlocked on a blocked reader", name)
		}
	}
}

func TestReadEdgeListParallelPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	input := randomEdgeListInput(rng, 3000, false, false, false)
	want, err := readEdgeListSeq(strings.NewReader(input), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(strings.NewReader(input), LoadOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "public", want, got)
}

func TestLoadFileParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	input := randomEdgeListInput(rng, 2500, false, true, false)
	want, err := readEdgeListSeq(strings.NewReader(input), LoadOptions{Relabel: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	plain := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(plain, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write([]byte(input)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(dir, "edges.txt.gz")
	if err := os.WriteFile(gz, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{plain, gz} {
		for _, workers := range []int{1, 2, 6} {
			got, err := LoadFile(path, LoadOptions{Relabel: true, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", path, workers, err)
			}
			graphsEqual(t, fmt.Sprintf("%s workers=%d", filepath.Base(path), workers), want, got)
		}
	}
}

// TestLoadFileParallelEarlyStop exercises early pipeline stops (parse
// error, MaxEdges) on multi-chunk mmapped and gzip files: LoadFile unmaps
// and closes right after returning, so the pipeline must have joined every
// goroutine still touching the mapping or the reader (regression test for
// a use-after-unmap; meaningful under -race and on multi-core hosts).
func TestLoadFileParallelEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var sb strings.Builder
	for i := 0; sb.Len() < 2500*1024; i++ {
		if i == 60_000 {
			sb.WriteString("bogus line\n")
		}
		fmt.Fprintf(&sb, "%d %d %d\n", rng.Intn(500), rng.Intn(500), i)
	}
	input := sb.String()
	dir := t.TempDir()
	plain := filepath.Join(dir, "big.txt")
	if err := os.WriteFile(plain, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(dir, "big.txt.gz")
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write([]byte(input)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gz, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{plain, gz} {
		// Parse error mid-file: the pipeline stops with later chunks still
		// in flight.
		_, err := LoadFile(path, LoadOptions{Workers: 6})
		if err == nil || !strings.Contains(err.Error(), "line 60001") {
			t.Fatalf("%s: err = %v, want parse error on line 60001", filepath.Base(path), err)
		}
		// MaxEdges stop in the first chunk with the rest unread.
		g, err := LoadFile(path, LoadOptions{Workers: 6, MaxEdges: 100})
		if err != nil || g.NumEdges() != 100 {
			t.Fatalf("%s: g=%v err=%v, want clean 100-edge graph", filepath.Base(path), g, err)
		}
	}
}

func TestMmapEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path, LoadOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || g.NumNodes() != 0 {
		t.Fatalf("edges=%d nodes=%d, want empty", g.NumEdges(), g.NumNodes())
	}
}
