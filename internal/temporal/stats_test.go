package temporal

import (
	"math/rand"
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	g := FromEdges([]Edge{
		{0, 1, 0}, {0, 1, 10}, {0, 2, 20}, {3, 0, 30},
	})
	s := ComputeStats(g, 20)
	if s.Nodes != 4 || s.Edges != 4 {
		t.Fatalf("nodes=%d edges=%d, want 4/4", s.Nodes, s.Edges)
	}
	if s.TimeSpan != 30 {
		t.Fatalf("span=%d, want 30", s.TimeSpan)
	}
	if s.MaxDegree != 4 { // node 0 touches all four edges
		t.Fatalf("maxdeg=%d, want 4", s.MaxDegree)
	}
	if s.ActiveNodes != 4 {
		t.Fatalf("active=%d, want 4", s.ActiveNodes)
	}
	if s.DistinctPairs != 3 { // {0,1},{0,2},{0,3}
		t.Fatalf("pairs=%d, want 3", s.DistinctPairs)
	}
	if s.MeanDegree != 2 { // total degree 8 over 4 active nodes
		t.Fatalf("meandeg=%f, want 2", s.MeanDegree)
	}
	if len(s.TopDegrees) != 4 || s.TopDegrees[0] != 4 {
		t.Fatalf("top degrees = %v", s.TopDegrees)
	}
}

func TestGini(t *testing.T) {
	if g := gini([]int{5, 5, 5, 5}); g != 0 {
		t.Fatalf("uniform gini = %f, want 0", g)
	}
	if g := gini(nil); g != 0 {
		t.Fatalf("empty gini = %f, want 0", g)
	}
	// One node owns everything: gini -> (n-1)/n.
	if g := gini([]int{100, 0, 0, 0}); g < 0.74 || g > 0.76 {
		t.Fatalf("concentrated gini = %f, want ~0.75", g)
	}
	// Skewed distributions rank above flatter ones.
	skewed := gini([]int{100, 10, 5, 1})
	flat := gini([]int{30, 29, 29, 28})
	if skewed <= flat {
		t.Fatalf("gini ordering wrong: skewed=%f flat=%f", skewed, flat)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges([]Edge{
		{0, 1, 0}, {0, 2, 1}, {0, 3, 2}, {0, 4, 3}, // deg(0)=4 -> bin 2
	})
	h := DegreeHistogram(g)
	// deg 1 nodes (1,2,3,4) -> bin 0; deg 4 node -> bin 2.
	if len(h) != 3 || h[0] != 4 || h[1] != 0 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestTopKDegreeThreshold(t *testing.T) {
	b := NewBuilder(0)
	// Node degrees: node i gets i+1 edges to a fresh sink each.
	next := NodeID(100)
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			_ = b.AddEdge(NodeID(i), next, Timestamp(j))
			next++
		}
	}
	g := b.Build()
	// Top-3 hub degrees are 10, 9, 8 -> threshold 8.
	if got := TopKDegreeThreshold(g, 3); got != 8 {
		t.Fatalf("threshold = %d, want 8", got)
	}
	// More slots than active nodes -> 0 (disable intra-node stage).
	if got := TopKDegreeThreshold(g, 10_000); got != 0 {
		t.Fatalf("threshold = %d, want 0", got)
	}
}

func TestTopKDegreeThresholdRandomAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 30, 400, 100)
		k := 1 + r.Intn(10)
		var degs []int
		for u := 0; u < g.NumNodes(); u++ {
			if d := g.Degree(NodeID(u)); d > 0 {
				degs = append(degs, d)
			}
		}
		want := 0
		if len(degs) >= k {
			// selection by sort
			for i := 0; i < len(degs); i++ {
				for j := i + 1; j < len(degs); j++ {
					if degs[j] > degs[i] {
						degs[i], degs[j] = degs[j], degs[i]
					}
				}
			}
			want = degs[k-1]
		}
		if got := TopKDegreeThreshold(g, k); got != want {
			t.Fatalf("trial %d k=%d: threshold=%d want %d", trial, k, got, want)
		}
	}
}

func TestWriteStats(t *testing.T) {
	g := FromEdges([]Edge{{0, 1, 0}, {1, 2, 5}})
	var b strings.Builder
	WriteStats(&b, "tiny", ComputeStats(g, 5))
	out := b.String()
	if !strings.Contains(out, "tiny") || !strings.Contains(out, "edges=2") {
		t.Fatalf("unexpected stats line: %q", out)
	}
}
