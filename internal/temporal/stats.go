package temporal

import (
	"fmt"
	"io"
	"sort"
)

// Stats summarises a temporal graph, mirroring the columns of the paper's
// Table II plus the degree-skew quantities behind Fig. 9.
type Stats struct {
	Nodes         int
	Edges         int
	SelfLoops     int
	TimeSpan      Timestamp // max(t) - min(t)
	MaxDegree     int
	MeanDegree    float64
	TopDegrees    []int   // highest temporal degrees, descending
	DegreeGini    float64 // Gini coefficient of the temporal degree sequence
	ActiveNodes   int     // nodes with degree > 0
	DistinctPairs int     // unordered node pairs with at least one edge
}

// ComputeStats scans the graph once and returns its statistics. topK bounds
// len(TopDegrees); topK <= 0 defaults to 20 (the paper's thrd heuristic uses
// the top-20 degrees).
func ComputeStats(g *Graph, topK int) Stats {
	if topK <= 0 {
		topK = 20
	}
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), SelfLoops: g.SelfLoopsDropped()}
	if min, max, ok := g.TimeSpan(); ok {
		s.TimeSpan = max - min
	}
	degs := make([]int, 0, g.NumNodes())
	var sum int
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(NodeID(u))
		if d == 0 {
			continue
		}
		s.ActiveNodes++
		degs = append(degs, d)
		sum += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		s.DistinctPairs += g.NeighborCount(NodeID(u))
	}
	s.DistinctPairs /= 2
	if s.ActiveNodes > 0 {
		s.MeanDegree = float64(sum) / float64(s.ActiveNodes)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	if len(degs) > topK {
		s.TopDegrees = append([]int(nil), degs[:topK]...)
	} else {
		s.TopDegrees = append([]int(nil), degs...)
	}
	s.DegreeGini = gini(degs)
	return s
}

// gini computes the Gini coefficient of a descending-sorted positive slice.
func gini(desc []int) float64 {
	n := len(desc)
	if n == 0 {
		return 0
	}
	// Work on the ascending order for the standard formula
	// G = (2*sum(i*x_i)/(n*sum(x)) - (n+1)/n), i is 1-based ascending rank.
	var total, weighted float64
	for i := n - 1; i >= 0; i-- {
		rank := float64(n - i) // ascending rank of desc[i]
		x := float64(desc[i])
		total += x
		weighted += rank * x
	}
	if total == 0 {
		return 0
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// DegreeHistogram returns log-binned (base-2) counts of temporal degrees:
// bin b holds nodes with degree in [2^b, 2^(b+1)). Used by the Fig. 9
// reproduction.
func DegreeHistogram(g *Graph) []int {
	var bins []int
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(NodeID(u))
		if d == 0 {
			continue
		}
		b := 0
		for d >= 2 {
			d >>= 1
			b++
		}
		for len(bins) <= b {
			bins = append(bins, 0)
		}
		bins[b]++
	}
	return bins
}

// TopKDegreeThreshold returns the paper's default degree threshold thrd: the
// minimum temporal degree among the k highest-degree nodes. Returns 0 when
// the graph has fewer than k active nodes (meaning: no intra-node stage).
func TopKDegreeThreshold(g *Graph, k int) int {
	if k <= 0 {
		k = 20
	}
	top := make([]int, 0, k) // ascending min-heap substitute: small k, keep sorted
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(NodeID(u))
		if d == 0 {
			continue
		}
		if len(top) < k {
			top = append(top, d)
			sort.Ints(top)
			continue
		}
		if d > top[0] {
			top[0] = d
			sort.Ints(top)
		}
	}
	if len(top) < k {
		return 0
	}
	return top[0]
}

// WriteStats renders s as an aligned human-readable block.
func WriteStats(w io.Writer, name string, s Stats) {
	fmt.Fprintf(w, "%-16s nodes=%-9d edges=%-10d span=%-12d maxdeg=%-8d meandeg=%-8.2f gini=%.3f\n",
		name, s.Nodes, s.Edges, s.TimeSpan, s.MaxDegree, s.MeanDegree, s.DegreeGini)
}
