package temporal

import (
	"fmt"
	"sort"
)

// Graph is an immutable directed temporal multigraph.
//
// Edges are stored sorted by (Time, insertion order); the index of an edge in
// that order is its EdgeID. For every node the graph keeps the incident edge
// sequence S_u (sorted by EdgeID) and a neighbor index that yields E(v,w),
// the chronologically sorted multi-edges between two nodes.
//
// A Graph is safe for concurrent readers.
type Graph struct {
	edges []Edge       // sorted by (Time, original order)
	seq   [][]HalfEdge // seq[u] = S_u, sorted by EdgeID
	// nbrIndex[v] maps a neighbor w to the slice of v's half-edges whose
	// Other == w, sorted by EdgeID. Shared backing with pairStore.
	nbrIndex  []map[NodeID][]HalfEdge
	numNodes  int
	selfLoops int // self-loops dropped at build time
}

// NumNodes returns the number of nodes (the node ID space is [0, NumNodes)).
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns the number of temporal edges (excluding dropped
// self-loops).
func (g *Graph) NumEdges() int { return len(g.edges) }

// SelfLoopsDropped reports how many self-loop edges were discarded when the
// graph was built. δ-temporal motifs never contain self-loops.
func (g *Graph) SelfLoopsDropped() int { return g.selfLoops }

// Edges returns the chronologically sorted edge list. The caller must not
// modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Seq returns S_u: node u's incident edges in chronological (EdgeID) order.
// Out-of-range nodes yield nil. The caller must not modify the result.
func (g *Graph) Seq(u NodeID) []HalfEdge {
	if u < 0 || int(u) >= len(g.seq) {
		return nil
	}
	return g.seq[u]
}

// Degree returns the temporal degree of u, i.e. len(S_u); a multi-edge
// contributes once per occurrence. Out-of-range nodes have degree 0.
func (g *Graph) Degree(u NodeID) int {
	if u < 0 || int(u) >= len(g.seq) {
		return 0
	}
	return len(g.seq[u])
}

// Between returns E(v,w): every edge between v and w in either direction,
// sorted by EdgeID, with Out recorded relative to v (Out == true means
// v -> w). Returns nil when no edge exists. The caller must not modify it.
func (g *Graph) Between(v, w NodeID) []HalfEdge {
	if int(v) >= len(g.nbrIndex) {
		return nil
	}
	return g.nbrIndex[v][w]
}

// TimeSpan returns the minimum and maximum timestamps. ok is false for an
// empty graph.
func (g *Graph) TimeSpan() (min, max Timestamp, ok bool) {
	if len(g.edges) == 0 {
		return 0, 0, false
	}
	return g.edges[0].Time, g.edges[len(g.edges)-1].Time, true
}

// Builder accumulates edges and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	edges     []Edge
	maxNode   NodeID
	selfLoops int
}

// NewBuilder returns a Builder with capacity for n edges.
func NewBuilder(n int) *Builder {
	return &Builder{edges: make([]Edge, 0, n)}
}

// AddEdge records the directed temporal edge u -> v at time t. Self-loops
// (u == v) are counted and dropped. Negative node IDs are rejected.
func (b *Builder) AddEdge(u, v NodeID, t Timestamp) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("temporal: negative node id (%d,%d)", u, v)
	}
	if u == v {
		b.selfLoops++
		return nil
	}
	if u > b.maxNode {
		b.maxNode = u
	}
	if v > b.maxNode {
		b.maxNode = v
	}
	b.edges = append(b.edges, Edge{From: u, To: v, Time: t})
	return nil
}

// Len returns the number of edges added so far (self-loops excluded).
func (b *Builder) Len() int { return len(b.edges) }

// Build finalises the graph: stable-sorts edges by time (assigning EdgeIDs),
// builds per-node sequences and the neighbor index. The Builder must not be
// reused afterwards.
func (b *Builder) Build() *Graph {
	edges := b.edges
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })

	n := 0
	if len(edges) > 0 || b.maxNode > 0 {
		n = int(b.maxNode) + 1
	}
	g := &Graph{
		edges:     edges,
		numNodes:  n,
		selfLoops: b.selfLoops,
	}

	// Per-node degree counting, then one backing array per node to keep
	// allocation count low on large graphs.
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.From]++
		deg[e.To]++
	}
	g.seq = make([][]HalfEdge, n)
	for u := range g.seq {
		if deg[u] > 0 {
			g.seq[u] = make([]HalfEdge, 0, deg[u])
		}
	}
	for i, e := range edges {
		id := EdgeID(i)
		g.seq[e.From] = append(g.seq[e.From], HalfEdge{ID: id, Time: e.Time, Other: e.To, Out: true})
		g.seq[e.To] = append(g.seq[e.To], HalfEdge{ID: id, Time: e.Time, Other: e.From, Out: false})
	}

	g.nbrIndex = make([]map[NodeID][]HalfEdge, n)
	for u := range g.nbrIndex {
		if len(g.seq[u]) == 0 {
			continue
		}
		m := make(map[NodeID][]HalfEdge)
		for _, h := range g.seq[u] {
			m[h.Other] = append(m[h.Other], h)
		}
		g.nbrIndex[u] = m
	}
	return g
}

// FromEdges builds a Graph directly from an edge slice. The input slice is
// copied. Self-loops are dropped.
func FromEdges(edges []Edge) *Graph {
	b := NewBuilder(len(edges))
	for _, e := range edges {
		_ = b.AddEdge(e.From, e.To, e.Time) // AddEdge only fails on negative IDs
	}
	return b.Build()
}

// Validate performs internal-consistency checks (intended for tests and the
// CLI's --check flag). It returns the first violation found.
func (g *Graph) Validate() error {
	for i := 1; i < len(g.edges); i++ {
		if g.edges[i].Time < g.edges[i-1].Time {
			return fmt.Errorf("temporal: edges out of order at id %d", i)
		}
	}
	var halves int
	for u, s := range g.seq {
		for i, h := range s {
			if i > 0 && h.ID <= s[i-1].ID {
				return fmt.Errorf("temporal: S_%d out of EdgeID order at %d", u, i)
			}
			e := g.edges[h.ID]
			switch {
			case h.Out && (e.From != NodeID(u) || e.To != h.Other):
				return fmt.Errorf("temporal: S_%d[%d] inconsistent outward half-edge", u, i)
			case !h.Out && (e.To != NodeID(u) || e.From != h.Other):
				return fmt.Errorf("temporal: S_%d[%d] inconsistent inward half-edge", u, i)
			}
		}
		halves += len(s)
	}
	if halves != 2*len(g.edges) {
		return fmt.Errorf("temporal: %d half-edges for %d edges", halves, len(g.edges))
	}
	for v, m := range g.nbrIndex {
		for w, hs := range m {
			for i, h := range hs {
				if h.Other != w {
					return fmt.Errorf("temporal: nbrIndex[%d][%d] contains edge to %d", v, w, h.Other)
				}
				if i > 0 && h.ID <= hs[i-1].ID {
					return fmt.Errorf("temporal: nbrIndex[%d][%d] out of order", v, w)
				}
			}
		}
	}
	return nil
}
