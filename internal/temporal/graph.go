package temporal

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Graph is an immutable directed temporal multigraph in a columnar
// (struct-of-arrays) CSR layout.
//
// Edges are stored as three parallel columns src[]/dst[]/ts[] sorted by
// (Time, insertion order); the index of an edge in that order is its EdgeID.
// Two derived indexes cover the access patterns of the counting algorithms:
//
//   - a CSR incident index: for every node u the half-edges of S_u — u's
//     incident edges in EdgeID (chronological, input-order tie-broken) order —
//     live in one contiguous span of four parallel columns, addressed by
//     incOff[u] : incOff[u+1];
//   - a grouped per-pair index: the same half-edges re-sorted stably by
//     (owner, neighbor), so E(v,w) — the multi-edges between two nodes,
//     EdgeID-sorted — is one contiguous span located by binary search over
//     v's sorted distinct-neighbor keys.
//
// Hot loops iterate the column slices directly via the Seq views returned by
// Seq and Between; no per-node pointers or maps are touched after Build.
//
// A Graph is safe for concurrent readers.
type Graph struct {
	src []NodeID    // src[id] = source node of edge id
	dst []NodeID    // dst[id] = destination node
	ts  []Timestamp // ts[id] = timestamp, non-decreasing in id

	// CSR incident index: columns of S_u spans.
	incOff   []int // n+1 offsets into the inc columns
	incID    []EdgeID
	incTime  []Timestamp
	incOther []NodeID
	incOut   []bool

	// Grouped per-pair index: the incident half-edges of each node re-sorted
	// stably by neighbor. Group i (a (node, neighbor) pair) spans
	// grp*[grpOff[i]:grpOff[i+1]]; node u owns groups nbrOff[u]:nbrOff[u+1]
	// whose neighbor keys nbrKey are ascending, enabling binary search.
	nbrOff   []int // n+1 offsets into nbrKey / grpOff
	nbrKey   []NodeID
	grpOff   []int // len(nbrKey)+1 offsets into the grp columns
	grpID    []EdgeID
	grpTime  []Timestamp
	grpOther []NodeID
	grpOut   []bool

	numNodes  int
	selfLoops int // self-loops dropped at build time

	// Lazily materialised row-major copy for cold paths. An atomic pointer
	// rather than a sync.Once so a Rebuilder can reset it between rebuilds;
	// concurrent first readers may race to build it, but they build identical
	// slices, so whichever store wins is correct.
	edgesAoS atomic.Pointer[[]Edge]
}

// NumNodes returns the number of nodes (the node ID space is [0, NumNodes)).
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns the number of temporal edges (excluding dropped
// self-loops).
func (g *Graph) NumEdges() int { return len(g.ts) }

// SelfLoopsDropped reports how many self-loop edges were discarded when the
// graph was built. δ-temporal motifs never contain self-loops.
func (g *Graph) SelfLoopsDropped() int { return g.selfLoops }

// Src returns the source-node column, indexed by EdgeID. The caller must not
// modify it.
func (g *Graph) Src() []NodeID { return g.src }

// Dst returns the destination-node column, indexed by EdgeID. The caller
// must not modify it.
func (g *Graph) Dst() []NodeID { return g.dst }

// Times returns the timestamp column, indexed by EdgeID and non-decreasing.
// The caller must not modify it.
func (g *Graph) Times() []Timestamp { return g.ts }

// Edges returns the chronologically sorted edge list as a row-major slice.
// The columnar storage is authoritative; the slice is materialised lazily on
// first call and cached (cold-path convenience — hot paths should read the
// Src/Dst/Times columns). The caller must not modify it.
func (g *Graph) Edges() []Edge {
	if p := g.edgesAoS.Load(); p != nil {
		return *p
	}
	var aos []Edge
	if len(g.ts) > 0 {
		aos = make([]Edge, len(g.ts))
		for i := range aos {
			aos[i] = Edge{From: g.src[i], To: g.dst[i], Time: g.ts[i]}
		}
	}
	g.edgesAoS.Store(&aos)
	return aos
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge {
	return Edge{From: g.src[id], To: g.dst[id], Time: g.ts[id]}
}

// Seq returns S_u: node u's incident edges in chronological (EdgeID) order,
// as a columnar view. Out-of-range nodes yield an empty view. The caller
// must not modify the underlying columns.
func (g *Graph) Seq(u NodeID) Seq {
	if u < 0 || int(u) >= g.numNodes {
		return Seq{}
	}
	lo, hi := g.incOff[u], g.incOff[u+1]
	return Seq{
		ID:    g.incID[lo:hi],
		Time:  g.incTime[lo:hi],
		Other: g.incOther[lo:hi],
		Out:   g.incOut[lo:hi],
	}
}

// Degree returns the temporal degree of u, i.e. len(S_u); a multi-edge
// contributes once per occurrence. Out-of-range nodes have degree 0.
func (g *Graph) Degree(u NodeID) int {
	if u < 0 || int(u) >= g.numNodes {
		return 0
	}
	return g.incOff[u+1] - g.incOff[u]
}

// Between returns E(v,w): every edge between v and w in either direction,
// sorted by EdgeID, with Out recorded relative to v (Out == true means
// v -> w). Returns an empty view when no edge exists.
func (g *Graph) Between(v, w NodeID) Seq {
	if v < 0 || int(v) >= g.numNodes {
		return Seq{}
	}
	lo, hi := g.nbrOff[v], g.nbrOff[v+1]
	keys := g.nbrKey[lo:hi]
	i := sort.Search(len(keys), func(k int) bool { return keys[k] >= w })
	if i == len(keys) || keys[i] != w {
		return Seq{}
	}
	a, b := g.grpOff[lo+i], g.grpOff[lo+i+1]
	return Seq{
		ID:    g.grpID[a:b],
		Time:  g.grpTime[a:b],
		Other: g.grpOther[a:b],
		Out:   g.grpOut[a:b],
	}
}

// Neighbors returns u's distinct static neighbors in ascending order. The
// caller must not modify the result.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	if u < 0 || int(u) >= g.numNodes {
		return nil
	}
	return g.nbrKey[g.nbrOff[u]:g.nbrOff[u+1]]
}

// NeighborCount returns the number of distinct static neighbors of u.
func (g *Graph) NeighborCount(u NodeID) int {
	if u < 0 || int(u) >= g.numNodes {
		return 0
	}
	return g.nbrOff[u+1] - g.nbrOff[u]
}

// TimeSpan returns the minimum and maximum timestamps. ok is false for an
// empty graph.
func (g *Graph) TimeSpan() (min, max Timestamp, ok bool) {
	if len(g.ts) == 0 {
		return 0, 0, false
	}
	return g.ts[0], g.ts[len(g.ts)-1], true
}

// Builder accumulates edges and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	edges     []Edge
	maxNode   NodeID
	selfLoops int
}

// NewBuilder returns a Builder with capacity for n edges.
func NewBuilder(n int) *Builder {
	return &Builder{edges: make([]Edge, 0, n)}
}

// AddEdge records the directed temporal edge u -> v at time t. Self-loops
// (u == v) are counted and dropped. Negative node IDs are rejected.
func (b *Builder) AddEdge(u, v NodeID, t Timestamp) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("temporal: negative node id (%d,%d)", u, v)
	}
	if u == v {
		b.selfLoops++
		return nil
	}
	if u > b.maxNode {
		b.maxNode = u
	}
	if v > b.maxNode {
		b.maxNode = v
	}
	b.edges = append(b.edges, Edge{From: u, To: v, Time: t})
	return nil
}

// Len returns the number of edges added so far (self-loops excluded).
func (b *Builder) Len() int { return len(b.edges) }

// Build finalises the graph: stable-sorts edges by time (assigning EdgeIDs),
// scatters them into the src/dst/ts columns, and builds the CSR incident and
// grouped per-pair indexes. The Builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	var rb Rebuilder // fresh: the returned graph owns its storage outright
	return rb.build(b.edges, b.selfLoops, b.maxNode)
}

// FromEdges builds a Graph directly from an edge slice. The input slice is
// copied. Self-loops are dropped.
func FromEdges(edges []Edge) *Graph {
	b := NewBuilder(len(edges))
	for _, e := range edges {
		_ = b.AddEdge(e.From, e.To, e.Time) // AddEdge only fails on negative IDs
	}
	return b.Build()
}

// Validate performs internal-consistency checks (intended for tests and the
// CLI's --check flag). It returns the first violation found.
func (g *Graph) Validate() error {
	m := len(g.ts)
	if len(g.src) != m || len(g.dst) != m {
		return fmt.Errorf("temporal: ragged edge columns (%d/%d/%d)", len(g.src), len(g.dst), m)
	}
	for i := 1; i < m; i++ {
		if g.ts[i] < g.ts[i-1] {
			return fmt.Errorf("temporal: edges out of order at id %d", i)
		}
	}
	for i := 0; i < m; i++ {
		// The Builder guarantees endpoint range, but a Graph decoded from
		// an untrusted snapshot does not: counting kernels index per-node
		// scratch by these IDs, so out-of-range endpoints must be caught
		// here, not by a downstream panic.
		if g.src[i] < 0 || int(g.src[i]) >= g.numNodes || g.dst[i] < 0 || int(g.dst[i]) >= g.numNodes {
			return fmt.Errorf("temporal: edge %d endpoints (%d,%d) out of range [0,%d)", i, g.src[i], g.dst[i], g.numNodes)
		}
	}
	h := 2 * m
	if len(g.incID) != h || len(g.incTime) != h || len(g.incOther) != h || len(g.incOut) != h {
		return fmt.Errorf("temporal: ragged incident columns for %d edges", m)
	}
	if len(g.incOff) != g.numNodes+1 || g.incOff[0] != 0 || g.incOff[g.numNodes] != h {
		return fmt.Errorf("temporal: malformed incident offsets")
	}
	for u := 0; u < g.numNodes; u++ {
		lo, hi := g.incOff[u], g.incOff[u+1]
		if lo > hi || hi > h {
			// hi is bounded before it is used to index: the end anchor
			// above only constrains the last offset, so an intermediate
			// value beyond h would otherwise walk j out of the columns.
			return fmt.Errorf("temporal: incident offsets malformed at node %d", u)
		}
		for j := lo; j < hi; j++ {
			if j > lo && g.incID[j] <= g.incID[j-1] {
				return fmt.Errorf("temporal: S_%d out of EdgeID order at %d", u, j-lo)
			}
			id := g.incID[j]
			if id < 0 || int(id) >= m {
				return fmt.Errorf("temporal: S_%d references edge %d of %d", u, id, m)
			}
			if g.incTime[j] != g.ts[id] {
				return fmt.Errorf("temporal: S_%d[%d] timestamp mismatch", u, j-lo)
			}
			switch {
			case g.incOut[j] && (g.src[id] != NodeID(u) || g.dst[id] != g.incOther[j]):
				return fmt.Errorf("temporal: S_%d[%d] inconsistent outward half-edge", u, j-lo)
			case !g.incOut[j] && (g.dst[id] != NodeID(u) || g.src[id] != g.incOther[j]):
				return fmt.Errorf("temporal: S_%d[%d] inconsistent inward half-edge", u, j-lo)
			}
		}
	}
	if len(g.nbrOff) != g.numNodes+1 || len(g.grpOff) != len(g.nbrKey)+1 {
		return fmt.Errorf("temporal: malformed neighbor index offsets")
	}
	if g.nbrOff[0] != 0 || g.nbrOff[g.numNodes] != len(g.nbrKey) {
		// Anchoring both ends (with the per-node lo <= hi checks below)
		// keeps every nbrOff value inside [0, len(nbrKey)] — required
		// before nbrKey/grpOff are indexed, e.g. on untrusted snapshots.
		return fmt.Errorf("temporal: neighbor offsets do not span the key column")
	}
	if len(g.grpID) != h || g.grpOff[len(g.nbrKey)] != h {
		return fmt.Errorf("temporal: grouped columns do not cover the half-edges")
	}
	for u := 0; u < g.numNodes; u++ {
		lo, hi := g.nbrOff[u], g.nbrOff[u+1]
		if lo > hi || hi > len(g.nbrKey) {
			return fmt.Errorf("temporal: neighbor offsets malformed at node %d", u)
		}
		if lo < hi && g.grpOff[lo] != g.incOff[u] {
			return fmt.Errorf("temporal: node %d groups do not start at its incident span", u)
		}
		if hi > lo && g.grpOff[hi] != g.incOff[u+1] {
			return fmt.Errorf("temporal: node %d groups do not end at its incident span", u)
		}
		for i := lo; i < hi; i++ {
			if i > lo && g.nbrKey[i] <= g.nbrKey[i-1] {
				return fmt.Errorf("temporal: neighbor keys of node %d out of order", u)
			}
			a, b := g.grpOff[i], g.grpOff[i+1]
			if a >= b || b > h {
				// b > h guards the j indexing below, as for incOff above.
				return fmt.Errorf("temporal: malformed group for nodes (%d,%d)", u, g.nbrKey[i])
			}
			for j := a; j < b; j++ {
				if g.grpOther[j] != g.nbrKey[i] {
					return fmt.Errorf("temporal: E(%d,%d) contains edge to %d", u, g.nbrKey[i], g.grpOther[j])
				}
				if j > a && g.grpID[j] <= g.grpID[j-1] {
					return fmt.Errorf("temporal: E(%d,%d) out of order", u, g.nbrKey[i])
				}
				id := g.grpID[j]
				if id < 0 || int(id) >= m {
					return fmt.Errorf("temporal: E(%d,%d) references edge %d of %d", u, g.nbrKey[i], id, m)
				}
				if g.grpTime[j] != g.ts[id] {
					return fmt.Errorf("temporal: E(%d,%d) timestamp mismatch", u, g.nbrKey[i])
				}
				switch {
				case g.grpOut[j] && (g.src[id] != NodeID(u) || g.dst[id] != g.nbrKey[i]):
					return fmt.Errorf("temporal: E(%d,%d) inconsistent outward half-edge", u, g.nbrKey[i])
				case !g.grpOut[j] && (g.dst[id] != NodeID(u) || g.src[id] != g.nbrKey[i]):
					return fmt.Errorf("temporal: E(%d,%d) inconsistent inward half-edge", u, g.nbrKey[i])
				}
			}
		}
	}
	return nil
}
