package temporal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// parseLinesEqual asserts the byte-level fast path and the reference
// grammar agree on one line: same edge, same skip, same error text.
func parseLinesEqual(t *testing.T, line string, comma bool) {
	t.Helper()
	we, ws, werr := ParseEdgeLine(line, comma)
	ge, gs, gerr := parseEdgeLineBytes([]byte(line), comma)
	if ws != gs || we != ge || (werr == nil) != (gerr == nil) ||
		(werr != nil && werr.Error() != gerr.Error()) {
		t.Fatalf("line %q comma=%v:\n reference: e=%+v skip=%v err=%v\n fast path: e=%+v skip=%v err=%v",
			line, comma, we, ws, werr, ge, gs, gerr)
	}
}

// fuzzCorpusLines extracts the string inputs from the checked-in
// FuzzParseEdgeLine seed corpus, so the byte parser is held to the same
// grammar corpus the fuzz target guards.
func fuzzCorpusLines(t *testing.T) []string {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzParseEdgeLine")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus: %v", err)
	}
	var lines []string
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(l, "string(") {
				continue
			}
			q := strings.TrimSuffix(strings.TrimPrefix(l, "string("), ")")
			s, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s: unquote %q: %v", e.Name(), q, err)
			}
			lines = append(lines, s)
		}
	}
	if len(lines) == 0 {
		t.Fatal("no corpus lines found")
	}
	return lines
}

func TestParseEdgeLineBytesCorpus(t *testing.T) {
	extra := []string{
		"", " ", "\t", "# c", "  % c", "1 2 3", " 1\t2\v3 ", "1 2 3 4 5",
		"+1 -2 +3", "-0 -0 -0", "01 002 0003", "1,2,3", ",,1,,2,,3,,", ",# not a comment?",
		"9223372036854775807 -9223372036854775808 1",
		"9223372036854775808 1 2", "-9223372036854775809 1 2",
		"92233720368547758070000 1 2", "1 2", "x y z", "1 2 z", "1 z 3",
		"+ 1 2", "- 1 2", "1 2 +", "0x10 1 2", "1_0 1 2", "1. 2 3", "1e3 2 3",
		"7\u00a08\u00a09", "\u00a0# nbsp comment", "\u20281 2 3", "1\u20292 3",
		"1 2 3\u00a0junk", "1 2 3x\u00a04", "\x001 2 3", "1 \x02 3", "1 2 3\r",
	}
	for _, line := range append(fuzzCorpusLines(t), extra...) {
		parseLinesEqual(t, line, false)
		parseLinesEqual(t, line, true)
	}
}

func TestParseEdgeLineBytesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte("0123456789 \t,-+#%xyz.\r\v\f\x00\xc2\xa0\xe2\x80")
	n := 30000
	if testing.Short() {
		n = 5000
	}
	for i := 0; i < n; i++ {
		b := make([]byte, rng.Intn(24))
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		parseLinesEqual(t, string(b), rng.Intn(2) == 0)
	}
	// Well-formed numeric lines, including boundary magnitudes.
	for i := 0; i < n; i++ {
		u := rng.Uint64() >> uint(rng.Intn(64))
		v := rng.Uint64() >> uint(rng.Intn(64))
		w := rng.Uint64() >> uint(rng.Intn(64))
		line := fmt.Sprintf("%d %d %d", int64(u), int64(v), int64(w))
		parseLinesEqual(t, line, false)
		parseLinesEqual(t, line, true)
	}
}

// TestParseChunkSteadyStateAllocs pins the acceptance criterion that the
// chunk parse loop performs zero allocations per edge in steady state: with
// columns grown once, re-parsing allocates nothing at all.
func TestParseChunkSteadyStateAllocs(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "%d %d %d\n", i, i+1, i*3)
	}
	data := []byte(sb.String())
	c := &rawChunk{}
	c.grow(2001)
	allocs := testing.AllocsPerRun(50, func() {
		c.reset()
		parseChunk(c, data, false)
		if c.err != nil || len(c.u) != 2000 {
			t.Fatalf("parse failed: err=%v rows=%d", c.err, len(c.u))
		}
	})
	if allocs != 0 {
		t.Fatalf("parse loop allocates %.1f times per chunk, want 0", allocs)
	}
}

func TestParseChunkLineAccounting(t *testing.T) {
	c := &rawChunk{}
	c.grow(16)
	parseChunk(c, []byte("# head\n\n1 2 3\n%x\n4 5 6"), false)
	if c.err != nil {
		t.Fatal(c.err)
	}
	if c.lines != 5 || len(c.u) != 2 {
		t.Fatalf("lines=%d rows=%d, want 5/2", c.lines, len(c.u))
	}
	if c.line[0] != 3 || c.line[1] != 5 {
		t.Fatalf("row lines = %v, want [3 5]", c.line)
	}
	c.reset()
	parseChunk(c, []byte("1 2 3\nbad\n4 5 6\n"), false)
	if c.err == nil || c.errLine != 2 || len(c.u) != 1 {
		t.Fatalf("err=%v errLine=%d rows=%d, want error at line 2 after 1 row", c.err, c.errLine, len(c.u))
	}
}
