package temporal

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseEdgeLine exercises the shared edge-line grammar used by both the
// batch loader and the stream feeder. Invariants:
//
//   - never panics, for any input and either separator mode;
//   - skip is reported exactly for blank and '#'/'%' comment lines;
//   - a successfully parsed line round-trips: re-serialising (u, v, t) in
//     the canonical "u v t" form parses back to the same values;
//   - error and skip are mutually exclusive with a parsed edge.
func FuzzParseEdgeLine(f *testing.F) {
	seeds := []struct {
		line  string
		comma bool
	}{
		{"1 2 3", false},
		{"0 0 0", false},
		{" 10\t20  30 ", false},
		{"# comment", false},
		{"% matrix-market comment", false},
		{"", false},
		{"1,2,3", true},
		{"1,2,3,extra", true},
		{"4 5 6 7 8", false},
		{"-1 -2 -3", false},
		{"9223372036854775807 1 9223372036854775807", false},
		{"9223372036854775808 1 2", false}, // int64 overflow
		{"a b c", false},
		{"1 2", false},
		{"\x00\x01\x02", false},
		{"7\u00a08\u00a09", false}, // unicode spaces separate fields too
	}
	for _, s := range seeds {
		f.Add(s.line, s.comma)
	}
	f.Fuzz(func(t *testing.T, line string, comma bool) {
		e, skip, err := ParseEdgeLine(line, comma)
		trimmed := strings.TrimSpace(line)
		wantSkip := trimmed == "" || trimmed[0] == '#' || trimmed[0] == '%'
		if skip != wantSkip {
			t.Fatalf("skip = %v for %q, want %v", skip, line, wantSkip)
		}
		if skip || err != nil {
			if e != (EdgeLine{}) {
				t.Fatalf("non-zero edge %+v alongside skip=%v err=%v", e, skip, err)
			}
			return
		}
		canon := fmt.Sprintf("%d %d %d", e.U, e.V, e.T)
		e2, skip2, err2 := ParseEdgeLine(canon, comma)
		if skip2 || err2 != nil {
			t.Fatalf("canonical form %q failed: skip=%v err=%v", canon, skip2, err2)
		}
		if e2 != e {
			t.Fatalf("round trip changed %q: %+v -> %+v", line, e, e2)
		}
	})
}
