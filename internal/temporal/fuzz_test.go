package temporal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// FuzzParseEdgeLine exercises the shared edge-line grammar used by both the
// batch loader and the stream feeder. Invariants:
//
//   - never panics, for any input and either separator mode;
//   - skip is reported exactly for blank and '#'/'%' comment lines;
//   - a successfully parsed line round-trips: re-serialising (u, v, t) in
//     the canonical "u v t" form parses back to the same values;
//   - error and skip are mutually exclusive with a parsed edge.
func FuzzParseEdgeLine(f *testing.F) {
	seeds := []struct {
		line  string
		comma bool
	}{
		{"1 2 3", false},
		{"0 0 0", false},
		{" 10\t20  30 ", false},
		{"# comment", false},
		{"% matrix-market comment", false},
		{"", false},
		{"1,2,3", true},
		{"1,2,3,extra", true},
		{"4 5 6 7 8", false},
		{"-1 -2 -3", false},
		{"9223372036854775807 1 9223372036854775807", false},
		{"9223372036854775808 1 2", false}, // int64 overflow
		{"a b c", false},
		{"1 2", false},
		{"\x00\x01\x02", false},
		{"7\u00a08\u00a09", false}, // unicode spaces separate fields too
	}
	for _, s := range seeds {
		f.Add(s.line, s.comma)
	}
	f.Fuzz(func(t *testing.T, line string, comma bool) {
		e, skip, err := ParseEdgeLine(line, comma)
		trimmed := strings.TrimSpace(line)
		wantSkip := trimmed == "" || trimmed[0] == '#' || trimmed[0] == '%'
		if skip != wantSkip {
			t.Fatalf("skip = %v for %q, want %v", skip, line, wantSkip)
		}
		if skip || err != nil {
			if e != (EdgeLine{}) {
				t.Fatalf("non-zero edge %+v alongside skip=%v err=%v", e, skip, err)
			}
			return
		}
		canon := fmt.Sprintf("%d %d %d", e.U, e.V, e.T)
		e2, skip2, err2 := ParseEdgeLine(canon, comma)
		if skip2 || err2 != nil {
			t.Fatalf("canonical form %q failed: skip=%v err=%v", canon, skip2, err2)
		}
		if e2 != e {
			t.Fatalf("round trip changed %q: %+v -> %+v", line, e, e2)
		}
	})
}

// FuzzSnapshot feeds arbitrary bytes to the .hare snapshot decoder.
// Invariants (the tentpole's correctness bar — a snapshot load must never
// crash or silently mis-load, whatever is on disk):
//
//   - never panics, on either the copying or the borrowing decode path;
//   - failure is always one of the typed sentinel errors (or a
//     *SnapshotVersionError), so callers can classify it;
//   - the borrow and copy paths agree on accept/reject;
//   - an accepted input is exactly canonical: re-encoding the decoded
//     Graph with WriteSnapshot reproduces the input bytes bit for bit.
func FuzzSnapshot(f *testing.F) {
	for name, g := range snapshotTestGraphs(f) {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g); err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		data := buf.Bytes()
		f.Add(append([]byte(nil), data...))
		// Damaged variants seed the interesting error paths directly.
		f.Add(data[:len(data)-1])                            // truncated payload
		f.Add(append([]byte(nil), data...)[:snapHeaderSize]) // header only
		flip := append([]byte(nil), data...)
		flip[len(flip)/2] ^= 0x40
		f.Add(flip) // checksum mismatch
		ver := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(ver[8:], SnapshotVersion+1)
		f.Add(ver) // future version
	}
	f.Add([]byte{})
	f.Add([]byte(SnapshotMagic))
	f.Add([]byte("1 2 3\n4 5 6\n")) // an edge list is not a snapshot

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := decodeSnapshot(data, false, nil)
		if err != nil {
			var ve *SnapshotVersionError
			if !errors.Is(err, ErrSnapshotMagic) && !errors.Is(err, ErrSnapshotTruncated) &&
				!errors.Is(err, ErrSnapshotChecksum) && !errors.Is(err, ErrSnapshotMalformed) &&
				!errors.As(err, &ve) {
				t.Fatalf("untyped decode error: %v", err)
			}
		}
		if canBorrowSnapshot() {
			bg, berr := decodeSnapshot(data, true, nil)
			if (err == nil) != (berr == nil) {
				t.Fatalf("borrow/copy disagree: copy err=%v, borrow err=%v", err, berr)
			}
			if berr == nil {
				var a, b bytes.Buffer
				if e1, e2 := WriteSnapshot(&a, g), WriteSnapshot(&b, bg); e1 != nil || e2 != nil {
					t.Fatalf("re-encode: %v / %v", e1, e2)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Fatal("borrow and copy decoded different graphs")
				}
			}
		}
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteSnapshot(&out, g); err != nil {
			t.Fatalf("re-encode accepted input: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes out", len(data), out.Len())
		}
	})
}
