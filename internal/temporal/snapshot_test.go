package temporal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// snapshotTestGraphs returns named graphs spanning the shapes the format
// must round-trip: empty, trivial, multi-edges with timestamp ties,
// self-loops dropped, isolated trailing nodes, and a randomized hub-skewed
// graph.
func snapshotTestGraphs(t testing.TB) map[string]*Graph {
	t.Helper()
	graphs := map[string]*Graph{
		"empty":  FromEdges(nil),
		"single": FromEdges([]Edge{{0, 1, 5}}),
		"ties-multi": FromEdges([]Edge{
			{0, 1, 10}, {1, 0, 10}, {0, 1, 10}, {2, 0, 7}, {1, 2, 12}, {0, 1, 12},
		}),
		"selfloops": FromEdges([]Edge{
			{0, 0, 1}, {0, 1, 2}, {3, 3, 3}, {1, 2, 4}, {2, 2, 5},
		}),
	}
	// Isolated high node: numNodes > max active node + 1 is impossible via
	// FromEdges, but trailing isolated nodes (referenced only as endpoints
	// of dropped self-loops are NOT kept) — build one via a far endpoint.
	graphs["sparse-ids"] = FromEdges([]Edge{{0, 99, 1}, {99, 50, 2}})
	rng := rand.New(rand.NewSource(42))
	edges := make([]Edge, 5000)
	for i := range edges {
		u := NodeID(rng.Intn(40)) // hub-skewed: small node space, many multi-edges
		v := NodeID(rng.Intn(400))
		edges[i] = Edge{From: u, To: v, Time: Timestamp(rng.Intn(1000))}
	}
	graphs["random"] = FromEdges(edges)
	return graphs
}

// TestSnapshotRoundTrip proves a snapshot-loaded graph is bit-identical to
// the original on every internal column, through all three load paths:
// portable reader, copying decode, and the borrowing (mmap-shaped) decode.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, g := range snapshotTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, g); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			data := buf.Bytes()

			rd, err := ReadSnapshot(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("ReadSnapshot: %v", err)
			}
			graphsEqual(t, "read", g, rd)

			cp, err := decodeSnapshot(data, false, nil)
			if err != nil {
				t.Fatalf("decodeSnapshot(copy): %v", err)
			}
			graphsEqual(t, "copy-decode", g, cp)

			if canBorrowSnapshot() {
				bw, err := decodeSnapshot(data, true, nil)
				if err != nil {
					t.Fatalf("decodeSnapshot(borrow): %v", err)
				}
				graphsEqual(t, "borrow-decode", g, bw)
			}
		})
	}
}

// TestSnapshotDeterministic pins that serialisation is byte-deterministic.
func TestSnapshotDeterministic(t *testing.T) {
	g := snapshotTestGraphs(t)["random"]
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serialisations of the same graph differ")
	}
}

// TestSnapshotFileRoundTrip exercises the real file paths: SaveSnapshot,
// then LoadSnapshot (mmap-backed where available) — and the graph must
// stay valid and identical, including after the source file handle is gone.
func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, g := range snapshotTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".hare")
			if err := SaveSnapshot(path, g); err != nil {
				t.Fatalf("SaveSnapshot: %v", err)
			}
			got, err := LoadSnapshot(path)
			if err != nil {
				t.Fatalf("LoadSnapshot: %v", err)
			}
			graphsEqual(t, "file", g, got)
			if err := got.Validate(); err != nil {
				t.Fatalf("loaded graph invalid: %v", err)
			}
		})
	}
}

// TestSnapshotViaLoadSaveFile verifies the extension dispatch in
// SaveFile/LoadFile, including the gzipped portable path.
func TestSnapshotViaLoadSaveFile(t *testing.T) {
	g := snapshotTestGraphs(t)["ties-multi"]
	dir := t.TempDir()
	for _, ext := range []string{".hare", ".hare.gz"} {
		path := filepath.Join(dir, "g"+ext)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", ext, err)
		}
		got, err := LoadFile(path, LoadOptions{})
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", ext, err)
		}
		graphsEqual(t, "file", g, got)
	}
}

// TestSnapshotTextEquivalence is the headline round-trip guarantee: a graph
// loaded from a snapshot is bit-identical to the graph parsed from the
// equivalent edge-list text, column for column.
func TestSnapshotTextEquivalence(t *testing.T) {
	g := snapshotTestGraphs(t)["random"]
	var text bytes.Buffer
	if err := WriteEdgeList(&text, g); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadEdgeList(bytes.NewReader(text.Bytes()), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := WriteSnapshot(&snap, fromText); err != nil {
		t.Fatal(err)
	}
	fromSnap, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "text-vs-snapshot", fromText, fromSnap)
}

// patch returns a copy of data with the bytes at off replaced.
func patch(data []byte, off int, repl ...byte) []byte {
	out := append([]byte(nil), data...)
	copy(out[off:], repl)
	return out
}

// fixHeaderCRC recomputes the header CRC after a deliberate header/table
// patch, so tests can reach the checks behind it.
func fixHeaderCRC(data []byte) []byte {
	out := append([]byte(nil), data...)
	crc := crc32.Update(0, snapCRCTable, out[:snapCRCOff])
	crc = crc32.Update(crc, snapCRCTable, out[snapHeaderSize:snapPayloadOff])
	binary.LittleEndian.PutUint32(out[snapCRCOff:], crc)
	return out
}

// TestSnapshotCorruption is the table-driven corruption suite: truncation
// at every section boundary, bit flips in every region, wrong magic, and
// version skew must each yield the right typed error — never a panic, and
// never a silently loaded graph.
func TestSnapshotCorruption(t *testing.T) {
	g := snapshotTestGraphs(t)["ties-multi"]
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	n, m, k := g.numNodes, len(g.ts), len(g.nbrKey)
	specs := snapSpecs(n, m, k)

	type tc struct {
		name string
		data []byte
		want error
	}
	cases := []tc{
		{"empty", nil, ErrSnapshotTruncated},
		{"magic-prefix-only", valid[:4], ErrSnapshotTruncated},
		{"wrong-magic", patch(valid, 0, 'X'), ErrSnapshotMagic},
		{"text-file", []byte("1 2 3\n4 5 6\n"), ErrSnapshotMagic},
		{"header-only", valid[:snapHeaderSize], ErrSnapshotTruncated},
		{"mid-table", valid[:snapHeaderSize+3*snapEntrySize+7], ErrSnapshotTruncated},
		{"trailing-garbage", append(append([]byte(nil), valid...), 0xAB), ErrSnapshotMalformed},
		{"flip-header-count", fixHeaderCRC(patch(valid, 16, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)), ErrSnapshotMalformed},
		{"flip-header-crc", patch(valid, snapCRCOff, valid[snapCRCOff]^1), ErrSnapshotChecksum},
		{"flip-table-offset", patch(valid, snapHeaderSize, valid[snapHeaderSize]^1), ErrSnapshotChecksum},
		{"flip-table-offset-fixed-crc", fixHeaderCRC(patch(valid, snapHeaderSize, valid[snapHeaderSize]^1)), ErrSnapshotMalformed},
		{"bad-flags", fixHeaderCRC(patch(valid, 12, 1)), ErrSnapshotMalformed},
		{"bad-section-count", fixHeaderCRC(patch(valid, 48, 14)), ErrSnapshotMalformed},
	}
	// Version skew: newer and zero versions both refuse with the typed
	// version error, before any checksum check (so a v2 file with a
	// different layout is still classified correctly).
	cases = append(cases,
		tc{"version-2", patch(valid, 8, 2, 0, 0, 0), &SnapshotVersionError{}},
		tc{"version-0", patch(valid, 8, 0, 0, 0, 0), &SnapshotVersionError{}},
	)
	// Truncation at (and just before) every section boundary.
	off := snapPayloadOff
	for i, s := range specs {
		cases = append(cases, tc{fmt.Sprintf("truncate-before-section-%d", i), valid[:off], ErrSnapshotTruncated})
		end := off + align8(s.elem*s.count)
		if end > off {
			cases = append(cases, tc{fmt.Sprintf("truncate-inside-section-%d", i), valid[:end-1], ErrSnapshotTruncated})
		}
		off = end
	}
	// A bit flip inside every non-empty section payload must be caught by
	// that section's CRC.
	off = snapPayloadOff
	for i, s := range specs {
		if l := s.elem * s.count; l > 0 {
			cases = append(cases, tc{fmt.Sprintf("flip-section-%d", i), patch(valid, off+l/2, valid[off+l/2]^0x10), ErrSnapshotChecksum})
		}
		off += align8(s.elem * s.count)
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, borrow := range []bool{false, true} {
				if borrow && !canBorrowSnapshot() {
					continue
				}
				g, err := decodeSnapshot(c.data, borrow, nil)
				if err == nil {
					t.Fatalf("borrow=%v: corrupted snapshot loaded successfully (%d nodes)", borrow, g.NumNodes())
				}
				if ve := (*SnapshotVersionError)(nil); errors.As(c.want, &ve) {
					if !errors.As(err, &ve) {
						t.Fatalf("borrow=%v: got %v, want a *SnapshotVersionError", borrow, err)
					}
				} else if !errors.Is(err, c.want) {
					t.Fatalf("borrow=%v: got %v, want %v", borrow, err, c.want)
				}
			}
		})
	}
}

// TestSnapshotBoolBytes rejects snapshots whose direction columns contain
// bytes other than 0/1 (which would corrupt bool semantics if aliased).
func TestSnapshotBoolBytes(t *testing.T) {
	g := snapshotTestGraphs(t)["ties-multi"]
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	specs := snapSpecs(g.numNodes, len(g.ts), len(g.nbrKey))
	off := snapPayloadOff
	for i, s := range specs {
		if s.kind == secIncOut || s.kind == secGrpOut {
			data := patch(valid, off, 2) // not a valid bool byte
			// Re-sign the section so the corruption reaches the bool check.
			crc := crc32.Checksum(data[off:off+s.elem*s.count], snapCRCTable)
			e := snapHeaderSize + i*snapEntrySize
			binary.LittleEndian.PutUint32(data[e+24:], crc)
			data = fixHeaderCRC(data)
			if _, err := decodeSnapshot(data, false, nil); !errors.Is(err, ErrSnapshotMalformed) {
				t.Errorf("section %d: got %v, want ErrSnapshotMalformed", i, err)
			}
		}
		off += align8(s.elem * s.count)
	}
}

// TestSnapshotVersionError pins the error text contract used in logs.
func TestSnapshotVersionError(t *testing.T) {
	err := &SnapshotVersionError{Version: 7}
	if got := err.Error(); got == "" || !bytes.Contains([]byte(got), []byte("version 7")) {
		t.Fatalf("unhelpful version error: %q", got)
	}
}

// TestSnapshotNilGraph covers the writer's nil guard.
func TestSnapshotNilGraph(t *testing.T) {
	if err := WriteSnapshot(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("WriteSnapshot(nil) succeeded")
	}
}

// TestSnapshotSaveToBadPath propagates file-creation errors.
func TestSnapshotSaveToBadPath(t *testing.T) {
	g := FromEdges([]Edge{{0, 1, 1}})
	if err := SaveSnapshot(filepath.Join(t.TempDir(), "no", "such", "dir", "g.hare"), g); err == nil {
		t.Fatal("SaveSnapshot into a missing directory succeeded")
	}
}

// TestLoadSnapshotMissing propagates open errors untyped (not snapshot
// corruption: the file simply is not there).
func TestLoadSnapshotMissing(t *testing.T) {
	_, err := LoadSnapshot(filepath.Join(t.TempDir(), "absent.hare"))
	if err == nil {
		t.Fatal("LoadSnapshot of a missing file succeeded")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("got %v, want fs not-exist", err)
	}
}

// TestSnapshotPaddingNotCanonical checks that alignment padding — which no
// CRC covers — must be zero: the format admits exactly one byte string per
// graph.
func TestSnapshotPaddingNotCanonical(t *testing.T) {
	g := FromEdges([]Edge{{From: 0, To: 1, Time: 1}}) // incOut: 2 bools + 6 pad bytes
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	specs := snapSpecs(g.NumNodes(), g.NumEdges(), len(g.nbrKey))
	off := snapPayloadOff
	patched := false
	for _, s := range specs {
		length := s.elem * s.count
		if pad := align8(length) - length; pad > 0 {
			data[off+length] = 0xcc
			patched = true
			break
		}
		off += align8(length)
	}
	if !patched {
		t.Fatal("no padded section in test graph")
	}
	if _, err := decodeSnapshot(data, false, nil); !errors.Is(err, ErrSnapshotMalformed) {
		t.Fatalf("want ErrSnapshotMalformed for nonzero padding, got %v", err)
	}
}

func benchmarkSnapshotGraph(b *testing.B) (*Graph, string) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	const n, m = 20000, 200000
	bld := NewBuilder(m)
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			v = (v + 1) % n
		}
		if err := bld.AddEdge(u, v, Timestamp(rng.Intn(1<<20))); err != nil {
			b.Fatal(err)
		}
	}
	g := bld.Build()
	path := filepath.Join(b.TempDir(), "g.hare")
	if err := SaveSnapshot(path, g); err != nil {
		b.Fatal(err)
	}
	return g, path
}

func BenchmarkLoadSnapshot(b *testing.B) {
	_, path := benchmarkSnapshotGraph(b)
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadSnapshot(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteSnapshot(b *testing.B) {
	g, path := benchmarkSnapshotGraph(b)
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteSnapshot(io.Discard, g); err != nil {
			b.Fatal(err)
		}
	}
}

// resignSection rewrites 8 bytes at wordOff inside section kind with a
// little-endian value, then re-signs the section and header CRCs — crafting
// a checksum-valid file whose rejection must come from structural
// validation alone.
func resignSection(t *testing.T, valid []byte, g *Graph, kind uint32, wordOff int, value uint64) []byte {
	t.Helper()
	specs := snapSpecs(g.numNodes, len(g.ts), len(g.nbrKey))
	off := snapPayloadOff
	for i, s := range specs {
		if s.kind != kind {
			off += align8(s.elem * s.count)
			continue
		}
		data := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(data[off+wordOff:], value)
		crc := crc32.Checksum(data[off:off+s.elem*s.count], snapCRCTable)
		binary.LittleEndian.PutUint32(data[snapHeaderSize+i*snapEntrySize+24:], crc)
		return fixHeaderCRC(data)
	}
	t.Fatalf("section kind %d not found", kind)
	return nil
}

// TestSnapshotCraftedOffsetRamp rejects checksum-valid snapshots whose
// offset columns ramp past the columns they index — intermediate values
// beyond the end anchor must fail validation, not walk the span loops out
// of bounds (a crash here is a fuzz-bar violation, hence the regression
// test at the exact hole).
func TestSnapshotCraftedOffsetRamp(t *testing.T) {
	g := snapshotTestGraphs(t)["random"]
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	huge := uint64(1) << 40
	cases := []struct {
		name string
		kind uint32
		word int // which int64 of the section to overwrite
	}{
		{"incOff-mid-ramp", secIncOff, g.numNodes / 2},
		{"nbrOff-mid-ramp", secNbrOff, g.numNodes / 2},
		{"grpOff-mid-ramp", secGrpOff, len(g.nbrKey) / 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := resignSection(t, valid, g, tc.kind, 8*tc.word, huge)
			for _, borrow := range []bool{false, canBorrowSnapshot()} {
				g2, err := decodeSnapshot(data, borrow, nil)
				if g2 != nil || !errors.Is(err, ErrSnapshotMalformed) {
					t.Fatalf("borrow=%v: got (%v, %v), want ErrSnapshotMalformed", borrow, g2, err)
				}
			}
		})
	}
	// The same corruption must also fail the full cross-checking Validate
	// without panicking (hareconvert -verify path) — mutated in place,
	// since package-internal tests can reach the columns directly.
	mutate := []func(g *Graph){
		func(g *Graph) { g.incOff[g.numNodes/2] = 1 << 40 },
		func(g *Graph) { g.nbrOff[g.numNodes/2] = 1 << 40 },
		func(g *Graph) { g.grpOff[len(g.nbrKey)/2] = 1 << 40 },
	}
	for i, mut := range mutate {
		evil := snapshotTestGraphs(t)["random"]
		mut(evil)
		if err := evil.Validate(); err == nil {
			t.Fatalf("mutation %d: full Validate accepted a crafted offset ramp", i)
		}
	}
}

// TestSnapshotCraftedEndpointRange rejects checksum-valid snapshots whose
// src/dst columns point outside [0, n): counting kernels index per-node
// state by endpoint, so these must die in validation.
func TestSnapshotCraftedEndpointRange(t *testing.T) {
	g := snapshotTestGraphs(t)["random"]
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Overwrite dst[0] and dst[1] (one int64 word) with two huge int32s.
	evil := uint64(0x7fffffff_7fffffff)
	data := resignSection(t, valid, g, secDst, 0, evil)
	if _, err := decodeSnapshot(data, false, nil); !errors.Is(err, ErrSnapshotMalformed) {
		t.Fatalf("got %v, want ErrSnapshotMalformed", err)
	}
	evil2 := snapshotTestGraphs(t)["random"]
	evil2.dst[0] = 1 << 30
	if verr := evil2.Validate(); verr == nil {
		t.Fatal("full Validate accepted out-of-range endpoints")
	}
}
