package temporal

import (
	"bufio"
	"bytes"
	"io"
	"slices"
	"sync"
)

// defaultChunkSize is the target size of one parallel-parse work unit.
// Large enough that per-chunk overhead (goroutine handoff, a map for the
// relabel shard) amortises to nothing, small enough that a handful of
// in-flight chunks bound the pipeline's memory.
const defaultChunkSize = 1 << 20

// chunkSource produces newline-aligned chunks of an edge-list input in
// order. next is called from a single producer goroutine; recycle may be
// called from any worker once a chunk's bytes have been parsed.
type chunkSource interface {
	// next returns the next chunk (every line complete, except that the
	// final line of the input may lack its newline), nil at end of input,
	// or a read error positioned at the first line it could not deliver.
	next() ([]byte, error)
	// recycle hands a chunk's buffer back for reuse.
	recycle([]byte)
	// joinable reports that next always completes in bounded time (memory
	// or file-backed I/O, never a live pipe), so a cancelled pipeline can
	// safely wait for the producer goroutine before returning. Sources
	// whose backing store is unmapped or closed right after the parallel
	// loader returns MUST be joinable, or a still-running producer would
	// touch freed memory.
	joinable() bool
}

// memSource chunks an in-memory buffer (a read or mmapped file) by slicing
// — zero copies. Overlong lines simply produce an oversized chunk; the
// parser enforces the line-length cap.
type memSource struct {
	data []byte
	pos  int
	size int
}

func newMemSource(data []byte, size int) *memSource {
	if size <= 0 {
		size = defaultChunkSize
	}
	return &memSource{data: data, size: size}
}

func (s *memSource) next() ([]byte, error) {
	if s.pos >= len(s.data) {
		return nil, nil
	}
	end := s.pos + s.size
	if end >= len(s.data) {
		end = len(s.data)
	} else if nl := bytes.IndexByte(s.data[end:], '\n'); nl >= 0 {
		end += nl + 1
	} else {
		end = len(s.data)
	}
	c := s.data[s.pos:end]
	s.pos = end
	return c, nil
}

func (s *memSource) recycle([]byte) {}

func (s *memSource) joinable() bool { return true }

// streamSource chunks an io.Reader with read-ahead buffers recycled through
// a free list — the path for gzip inputs (the producer goroutine
// decompresses while workers parse, pipelining the two) and arbitrary
// readers. The partial line after the last newline of each read is carried
// into the next chunk.
type streamSource struct {
	r    io.Reader
	size int
	free chan []byte
	tail []byte // carried partial line (owned, never aliases an emitted chunk)
	err  error  // deferred read error, surfaced after the chunks before it
	done bool

	// fileBacked marks readers whose Read always completes promptly (a
	// regular file, or gzip over one) as opposed to live pipes that may
	// block forever. Only file-backed producers are joined on early stop —
	// which LoadFile needs, since it closes the reader right after.
	fileBacked bool
}

func newStreamSource(r io.Reader, size, workers int) *streamSource {
	if size <= 0 {
		size = defaultChunkSize
	}
	return &streamSource{r: r, size: size, free: make(chan []byte, 3*workers+2)}
}

func (s *streamSource) joinable() bool { return s.fileBacked }

func (s *streamSource) getBuf() []byte {
	select {
	case b := <-s.free:
		return b[:0]
	default:
		return make([]byte, 0, s.size+bytes.MinRead)
	}
}

func (s *streamSource) recycle(b []byte) {
	select {
	case s.free <- b:
	default:
	}
}

func (s *streamSource) next() ([]byte, error) {
	if s.done {
		err := s.err
		s.err = nil
		return nil, err
	}
	buf := s.getBuf()
	buf = append(buf, s.tail...)
	s.tail = s.tail[:0]
	target := s.size
	for {
		for len(buf) < target {
			buf = slices.Grow(buf, target-len(buf))
			n, err := s.r.Read(buf[len(buf):cap(buf)])
			buf = buf[:len(buf)+n]
			if err == io.EOF {
				s.done = true
				if len(buf) == 0 {
					s.recycle(buf)
					return nil, nil
				}
				return buf, nil
			}
			if err != nil {
				// A read error behaves like EOF followed by the error:
				// everything buffered — including a partial final line —
				// is delivered for parsing, and the error surfaces on the
				// next call. bufio.Scanner does the same (a recorded read
				// error makes it treat the buffer as final input), so line
				// numbering and partial-line parse errors match exactly.
				s.done, s.err = true, err
				if len(buf) == 0 {
					s.recycle(buf)
					s.err = nil
					return nil, err
				}
				return buf, nil
			}
		}
		if last := bytes.LastIndexByte(buf, '\n'); last >= 0 {
			s.tail = append(s.tail[:0], buf[last+1:]...)
			return buf[:last+1], nil
		}
		if len(buf) >= maxLineLen {
			// An unterminated line at least as long as the sequential
			// scanner's buffer cap: fail like it does, without buffering
			// the rest of the line.
			s.done = true
			return nil, bufio.ErrTooLong
		}
		target = len(buf) + s.size
	}
}

// ParsedChunk is one parallel-parsed piece of an edge-list input, delivered
// in input order by ForEachParsedChunk. Rows are raw parsed lines in input
// order — no range checks, relabeling, or self-loop policy applied; row i
// came from absolute input line LineBase + Line[i].
type ParsedChunk struct {
	U, V []int64     // raw endpoint ids, one entry per parsed row
	T    []Timestamp // timestamps, parallel to U/V
	Line []int32     // 1-based line number within the chunk, per row

	LineBase int // input lines preceding this chunk
	Lines    int // lines scanned in this chunk

	Err     error // first failing line's error; the chunk's rows stop before it
	ErrLine int   // 1-based line within the chunk of Err
	ErrRead bool  // Err is a read-level failure (e.g. an overlong line)
}

// ForEachParsedChunk parses "u v t" lines from r with `workers` goroutines
// (the batch loader's chunk pipeline and byte-level parser) and delivers
// the parsed chunks to yield in input order on the calling goroutine; yield
// returning false cancels the rest. The returned error is a read error
// positioned after every delivered chunk, reported raw — the stream
// counter's Feed, the main consumer, surfaces read errors unwrapped just
// like its sequential scanner path does.
func ForEachParsedChunk(r io.Reader, comma bool, workers int, yield func(ParsedChunk) bool) error {
	if workers < 1 {
		workers = 1
	}
	base := 0
	return forEachChunk(newStreamSource(r, defaultChunkSize, workers), comma, workers, nil,
		func(c *rawChunk) bool {
			ok := yield(ParsedChunk{
				U: c.u, V: c.v, T: c.t, Line: c.line,
				LineBase: base, Lines: c.lines,
				Err: c.err, ErrLine: c.errLine, ErrRead: c.errRead,
			})
			base += c.lines
			return ok
		})
}

// forEachChunk reads newline-aligned chunks from src, parses them with
// `workers` goroutines (running post, when non-nil, on each parsed chunk in
// the worker before handoff), and delivers the results to yield in input
// order on the calling goroutine. yield returning false cancels the
// remaining work. The returned error is a source read error, positioned
// after the lines of every chunk yielded before it; it is suppressed when
// yield stopped the pipeline first (the sequential loader, too, never sees
// a read error past the point where it stops consuming lines).
func forEachChunk(src chunkSource, comma bool, workers int, post func(*rawChunk), yield func(*rawChunk) bool) error {
	type job struct {
		idx  int
		data []byte
	}
	jobs := make(chan job, workers)
	results := make(chan *rawChunk, workers)
	done := make(chan struct{})

	var srcN int // chunks produced before the source ended or failed
	var srcErr error
	prodDone := make(chan struct{})
	go func() {
		defer close(jobs)
		defer close(prodDone)
		for idx := 0; ; idx++ {
			// Check for cancellation before touching the source: once the
			// consumer stops, at most the one read already in flight runs
			// to completion, so a stopped pipeline does not keep draining
			// the caller's reader. (Like the sequential scanner's buffer,
			// read-ahead may still have consumed input past the stop line.)
			select {
			case <-done:
				srcN = idx
				return
			default:
			}
			data, err := src.next()
			if err != nil || data == nil {
				srcN, srcErr = idx, err
				return
			}
			select {
			case jobs <- job{idx, data}:
			case <-done:
				srcN = idx
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Select on done in BOTH directions: a worker waiting for
				// jobs must exit on cancellation even while the producer is
				// parked in a blocking Read (a live pipe) and will never
				// close the jobs channel.
				var j job
				var ok bool
				select {
				case j, ok = <-jobs:
					if !ok {
						return
					}
				case <-done:
					return
				}
				c := &rawChunk{idx: j.idx}
				c.grow(bytes.Count(j.data, []byte{'\n'}) + 1)
				parseChunk(c, j.data, comma)
				src.recycle(j.data)
				if post != nil {
					post(c)
				}
				select {
				case results <- c:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]*rawChunk)
	nextIdx := 0
	for c := range results {
		pending[c.idx] = c
		for {
			r, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			nextIdx++
			if !yield(r) {
				// Cancel, then join the workers — their remaining work is
				// bounded (they select on done at every channel edge), and
				// the caller may unmap the bytes they parse the moment we
				// return. Join the producer only for joinable sources:
				// memory- and file-backed producers finish promptly and
				// must be joined for the same lifetime reason, while a
				// producer parked in a live pipe's Read can block forever
				// and is left to exit on its own (its source outlives us).
				close(done)
				wg.Wait()
				if src.joinable() {
					<-prodDone
				}
				return nil
			}
		}
	}
	<-prodDone
	if srcErr != nil && nextIdx == srcN {
		return srcErr
	}
	return nil
}
