//go:build !unix

package temporal

import "os"

// mmapFile is unavailable on this platform; the loader falls back to
// streaming reads.
func mmapFile(*os.File) (data []byte, unmap func(), ok bool) {
	return nil, nil, false
}
