package temporal

import (
	"math/rand"
	"testing"
)

// graphsIdentical compares every observable surface of two graphs: columns,
// incident sequences, grouped per-pair views, and metadata.
func graphsIdentical(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() ||
		a.SelfLoopsDropped() != b.SelfLoopsDropped() {
		t.Fatalf("shape mismatch: (%d,%d,%d) vs (%d,%d,%d)",
			a.NumNodes(), a.NumEdges(), a.SelfLoopsDropped(),
			b.NumNodes(), b.NumEdges(), b.SelfLoopsDropped())
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(EdgeID(i)) != b.Edge(EdgeID(i)) {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edge(EdgeID(i)), b.Edge(EdgeID(i)))
		}
	}
	for u := 0; u < a.NumNodes(); u++ {
		sa, sb := a.Seq(NodeID(u)), b.Seq(NodeID(u))
		if sa.Len() != sb.Len() {
			t.Fatalf("S_%d length differs: %d vs %d", u, sa.Len(), sb.Len())
		}
		for i := 0; i < sa.Len(); i++ {
			if sa.At(i) != sb.At(i) || sa.ID[i] != sb.ID[i] {
				t.Fatalf("S_%d[%d] differs", u, i)
			}
		}
		na, nb := a.Neighbors(NodeID(u)), b.Neighbors(NodeID(u))
		if len(na) != len(nb) {
			t.Fatalf("neighbors of %d differ in count", u)
		}
		for i, w := range na {
			if nb[i] != w {
				t.Fatalf("neighbors of %d differ at %d", u, i)
			}
			ea, eb := a.Between(NodeID(u), w), b.Between(NodeID(u), w)
			if ea.Len() != eb.Len() {
				t.Fatalf("E(%d,%d) length differs", u, w)
			}
			for i := 0; i < ea.Len(); i++ {
				if ea.At(i) != eb.At(i) || ea.ID[i] != eb.ID[i] {
					t.Fatalf("E(%d,%d)[%d] differs", u, w, i)
				}
			}
		}
	}
}

func randomEdgeSlice(r *rand.Rand, nodes, edges int, span int64, selfLoopProb float64) []Edge {
	out := make([]Edge, edges)
	for i := range out {
		u := NodeID(r.Intn(nodes))
		v := NodeID(r.Intn(nodes))
		if r.Float64() < selfLoopProb {
			v = u
		}
		out[i] = Edge{From: u, To: v, Time: r.Int63n(span)}
	}
	return out
}

// A reused Rebuilder must produce graphs bit-identical to FromEdges, across
// rebuilds of different sizes, self-loop mixes, and timestamp tie densities.
func TestRebuilderMatchesFromEdges(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	var rb Rebuilder
	for trial := 0; trial < 30; trial++ {
		nodes := 2 + r.Intn(30)
		count := r.Intn(400)
		span := 1 + int64(r.Intn(50)) // dense ties stress the stable sort
		edges := randomEdgeSlice(r, nodes, count, span, 0.05)
		want := FromEdges(edges)
		// Rebuild reorders its input; hand it a scratch copy like a sampler
		// would.
		buf := append([]Edge(nil), edges...)
		got := rb.Rebuild(buf)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: rebuilt graph invalid: %v", trial, err)
		}
		graphsIdentical(t, got, want)
	}
}

// The scratch graph's lazy Edges cache must be invalidated by each rebuild.
func TestRebuilderResetsEdgeCache(t *testing.T) {
	var rb Rebuilder
	g := rb.Rebuild([]Edge{{From: 0, To: 1, Time: 5}})
	if es := g.Edges(); len(es) != 1 || es[0].Time != 5 {
		t.Fatalf("first rebuild edges = %v", g.Edges())
	}
	g = rb.Rebuild([]Edge{{From: 2, To: 3, Time: 9}, {From: 3, To: 2, Time: 1}})
	es := g.Edges()
	if len(es) != 2 || es[0] != (Edge{From: 3, To: 2, Time: 1}) {
		t.Fatalf("stale edge cache after rebuild: %v", es)
	}
}

// Rebuild must mirror FromEdges' degenerate-input semantics exactly.
func TestRebuilderDegenerateInputs(t *testing.T) {
	var rb Rebuilder
	cases := [][]Edge{
		nil,
		{{From: 1, To: 1, Time: 3}}, // only a self-loop
		{{From: -1, To: 2, Time: 0}, {From: 0, To: 1, Time: 1}}, // negative id dropped
	}
	for i, edges := range cases {
		want := FromEdges(edges)
		got := rb.Rebuild(append([]Edge(nil), edges...))
		if err := got.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		graphsIdentical(t, got, want)
	}
}

// Steady-state rebuilds of same-shaped inputs must not allocate new columns:
// the per-sample cost of an ensemble is the rebuild work, not fresh graphs.
func TestRebuilderSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	edges := randomEdgeSlice(r, 50, 4000, 600, 0)
	buf := make([]Edge, len(edges))
	var rb Rebuilder
	copy(buf, edges)
	rb.Rebuild(buf) // warm up capacity growth
	avg := testing.AllocsPerRun(5, func() {
		copy(buf, edges)
		rb.Rebuild(buf)
	})
	// A handful of fixed allocations (the atomic cache reset) is tolerated;
	// the columns and indexes themselves must be reused.
	if avg > 4 {
		t.Fatalf("steady-state rebuild allocates %.1f times, want O(1)", avg)
	}
}
