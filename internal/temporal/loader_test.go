package temporal

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment line
% another comment

0 1 100
1 2 105 extra-field-ignored
2 0 110
`
	g, err := ReadEdgeList(strings.NewReader(in), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.NumNodes() != 3 {
		t.Fatalf("edges=%d nodes=%d, want 3/3", g.NumEdges(), g.NumNodes())
	}
}

func TestReadEdgeListComma(t *testing.T) {
	in := "0,1,100\n1,2,105\n"
	g, err := ReadEdgeList(strings.NewReader(in), LoadOptions{Comma: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges=%d, want 2", g.NumEdges())
	}
}

func TestReadEdgeListRelabel(t *testing.T) {
	in := "1000000000000 9 5\n9 1000000000000 6\n"
	if _, err := ReadEdgeList(strings.NewReader(in), LoadOptions{}); err == nil {
		t.Fatal("want out-of-range error without Relabel")
	}
	g, err := ReadEdgeList(strings.NewReader(in), LoadOptions{Relabel: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d, want 2/2", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0 1\n",       // too few fields
		"x 1 5\n",     // bad source
		"0 y 5\n",     // bad target
		"0 1 zzz\n",   // bad timestamp
		"-4 1 5\n",    // negative node without relabel
		"0 1 5\n-1 2", // negative later line
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), LoadOptions{}); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestReadEdgeListMaxEdges(t *testing.T) {
	in := "0 1 1\n1 2 2\n2 3 3\n3 4 4\n"
	g, err := ReadEdgeList(strings.NewReader(in), LoadOptions{MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges=%d, want 2", g.NumEdges())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges([]Edge{{0, 1, 3}, {2, 1, 1}, {1, 0, 7}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Fatalf("edge %d = %v, want %v", i, g2.Edges()[i], e)
		}
	}
}

func TestSaveLoadFileGzip(t *testing.T) {
	g := FromEdges([]Edge{{0, 1, 3}, {2, 1, 1}, {1, 0, 7}})
	for _, name := range []string{"g.txt", "g.txt.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		g2, err := LoadFile(path, LoadOptions{})
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edges=%d, want %d", name, g2.NumEdges(), g.NumEdges())
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt"), LoadOptions{}); err == nil {
		t.Fatal("want error for missing file")
	}
}
