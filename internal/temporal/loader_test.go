package temporal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment line
% another comment

0 1 100
1 2 105 extra-field-ignored
2 0 110
`
	g, err := ReadEdgeList(strings.NewReader(in), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.NumNodes() != 3 {
		t.Fatalf("edges=%d nodes=%d, want 3/3", g.NumEdges(), g.NumNodes())
	}
}

func TestReadEdgeListComma(t *testing.T) {
	in := "0,1,100\n1,2,105\n"
	g, err := ReadEdgeList(strings.NewReader(in), LoadOptions{Comma: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges=%d, want 2", g.NumEdges())
	}
}

func TestReadEdgeListRelabel(t *testing.T) {
	in := "1000000000000 9 5\n9 1000000000000 6\n"
	if _, err := ReadEdgeList(strings.NewReader(in), LoadOptions{}); err == nil {
		t.Fatal("want out-of-range error without Relabel")
	}
	g, err := ReadEdgeList(strings.NewReader(in), LoadOptions{Relabel: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d, want 2/2", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0 1\n",       // too few fields
		"x 1 5\n",     // bad source
		"0 y 5\n",     // bad target
		"0 1 zzz\n",   // bad timestamp
		"-4 1 5\n",    // negative node without relabel
		"0 1 5\n-1 2", // negative later line
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), LoadOptions{}); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestReadEdgeListMaxEdges(t *testing.T) {
	in := "0 1 1\n1 2 2\n2 3 3\n3 4 4\n"
	g, err := ReadEdgeList(strings.NewReader(in), LoadOptions{MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges=%d, want 2", g.NumEdges())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges([]Edge{{0, 1, 3}, {2, 1, 1}, {1, 0, 7}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Fatalf("edge %d = %v, want %v", i, g2.Edges()[i], e)
		}
	}
}

func TestSaveLoadFileGzip(t *testing.T) {
	g := FromEdges([]Edge{{0, 1, 3}, {2, 1, 1}, {1, 0, 7}})
	for _, name := range []string{"g.txt", "g.txt.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		g2, err := LoadFile(path, LoadOptions{})
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edges=%d, want %d", name, g2.NumEdges(), g.NumEdges())
		}
	}
}

// TestReadEdgeListScannerErrorLine pins the bugfix that scanner-level read
// failures (I/O errors, overlong lines) carry the failing line's number
// instead of an anonymous "read:" wrap.
func TestReadEdgeListScannerErrorLine(t *testing.T) {
	boom := errors.New("boom")
	_, err := ReadEdgeList(&failingReader{data: []byte("0 1 2\n1 2 3\n"), err: boom}, LoadOptions{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "temporal: line 3: read: boom") {
		t.Fatalf("want line-numbered read error, got %v", err)
	}
	// Same failure through the parallel pipeline.
	_, perr := ReadEdgeList(&failingReader{data: []byte("0 1 2\n1 2 3\n"), err: boom}, LoadOptions{Workers: 4})
	if perr == nil || perr.Error() != err.Error() {
		t.Fatalf("parallel read error %v, want %v", perr, err)
	}
}

func TestReadEdgeListTokenTooLongLine(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a 17MB line")
	}
	input := "0 1 2\n1 " + strings.Repeat("9", 17*1024*1024) + " 3\n2 3 4\n"
	want, err := ReadEdgeList(strings.NewReader(input), LoadOptions{Workers: 1})
	if err == nil || want != nil || !strings.Contains(err.Error(), "line 2") ||
		!strings.Contains(err.Error(), "token too long") {
		t.Fatalf("want line-2 token-too-long error, got %v", err)
	}
	for _, workers := range []int{2, 4} {
		_, perr := ReadEdgeList(strings.NewReader(input), LoadOptions{Workers: workers})
		if perr == nil || perr.Error() != err.Error() {
			t.Fatalf("workers=%d: error %v, want %v", workers, perr, err)
		}
	}
}

// TestSaveFileWriteError covers the bugfix that SaveFile reports late write
// and close failures instead of silently "succeeding": /dev/full accepts
// the open but fails every flush with ENOSPC. (A true close-only failure
// needs an interposing filesystem; the structural fix — single Close, its
// error propagated — is exercised by the happy-path round-trip tests.)
func TestSaveFileWriteError(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("needs /dev/full")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("no /dev/full")
	}
	g := FromEdges([]Edge{{0, 1, 3}, {2, 1, 1}, {1, 0, 7}})
	if err := SaveFile("/dev/full", g); err == nil {
		t.Fatal("plain save to /dev/full reported success")
	}
	// Exercise the gzip branch against the same device via a symlink whose
	// name carries the .gz suffix.
	link := filepath.Join(t.TempDir(), "full.gz")
	if err := os.Symlink("/dev/full", link); err != nil {
		t.Skip("cannot symlink:", err)
	}
	g2 := FromEdges(bigEdgeSet(4096))
	if err := SaveFile(link, g2); err == nil {
		t.Fatal("gzip save to /dev/full reported success")
	}
}

func bigEdgeSet(n int) []Edge {
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{From: NodeID(i % 97), To: NodeID((i + 1) % 89), Time: Timestamp(i)}
	}
	return edges
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt"), LoadOptions{}); err == nil {
		t.Fatal("want error for missing file")
	}
}
