// Package temporal provides the temporal-graph substrate used by every
// algorithm in this repository: directed timestamped multigraphs with
// per-node time-ordered edge sequences and per-pair edge indexes.
//
// The representation is tuned for the access patterns of δ-temporal motif
// counting (Gao et al., ICDE 2022):
//
//   - Seq(u) returns the edge sequence S_u of a center node u, sorted
//     chronologically, with each entry carrying the neighbor, the direction
//     relative to u, and the global edge ID;
//   - Between(v, w) returns E(v,w), all edges between two nodes regardless
//     of direction, sorted chronologically, with directions relative to v.
//
// Tie-breaking: after a stable sort by timestamp every edge receives an
// EdgeID equal to its sorted position. All chronological-order comparisons in
// this module tree use EdgeID (a total order), while δ-window checks use raw
// timestamps. This makes instance counting deterministic and consistent
// across all algorithms even when timestamps collide.
package temporal

import "fmt"

// NodeID identifies a node. Nodes are dense integers in [0, NumNodes).
type NodeID = int32

// EdgeID identifies an edge by its position in the chronologically sorted
// edge list. EdgeIDs define the total temporal order used for motif
// instances.
type EdgeID = int32

// Timestamp is an edge's time in arbitrary integer units (seconds in all of
// the paper's datasets).
type Timestamp = int64

// Edge is a directed temporal edge From -> To at time Time.
type Edge struct {
	From NodeID
	To   NodeID
	Time Timestamp
}

// String renders the edge in "(u,v,t)" paper notation.
func (e Edge) String() string {
	return fmt.Sprintf("(%d,%d,%d)", e.From, e.To, e.Time)
}

// HalfEdge is an edge viewed from one of its endpoints ("w.r.t. the center
// node u" in the paper's terminology: e = (t, v, dir)).
type HalfEdge struct {
	ID    EdgeID    // global chronological edge ID
	Time  Timestamp // edge timestamp
	Other NodeID    // the node on the other side
	Out   bool      // true if the edge points away from the owning node
}

// Dir returns 1 for outward edges and 0 for inward edges, matching the
// direction index used by the motif counters.
func (h HalfEdge) Dir() int {
	if h.Out {
		return 1
	}
	return 0
}

// Seq is a columnar (struct-of-arrays) view of a chronologically ordered
// half-edge sequence: four parallel slices, one per HalfEdge field, all the
// same length. Hot loops iterate the columns directly; cold paths can use
// At. A Seq aliases the graph's (or window's) backing arrays — callers must
// not modify the slices, and a view into mutable storage (package stream's
// windows) is invalidated by the owner's next mutation.
//
// Entries are sorted by EdgeID, which for graph-backed views means sorted by
// timestamp with ties broken by input order.
type Seq struct {
	ID    []EdgeID
	Time  []Timestamp
	Other []NodeID
	Out   []bool
}

// Len returns the number of half-edges in the view.
func (s Seq) Len() int { return len(s.ID) }

// At gathers the i-th half-edge from the columns.
func (s Seq) At(i int) HalfEdge {
	return HalfEdge{ID: s.ID[i], Time: s.Time[i], Other: s.Other[i], Out: s.Out[i]}
}

// Slice returns the sub-view [lo, hi).
func (s Seq) Slice(lo, hi int) Seq {
	return Seq{ID: s.ID[lo:hi], Time: s.Time[lo:hi], Other: s.Other[lo:hi], Out: s.Out[lo:hi]}
}

// After returns the suffix with EdgeID strictly greater than id (binary
// search; the view is EdgeID-sorted).
func (s Seq) After(id EdgeID) Seq {
	lo, hi := 0, len(s.ID)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ID[mid] <= id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.Slice(lo, s.Len())
}

// LowerBoundTime returns the first index with Time >= t (== Len() when none).
func (s Seq) LowerBoundTime(t Timestamp) int {
	lo, hi := 0, len(s.Time)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Time[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBoundTime returns the first index with Time > t (== Len() when none).
func (s Seq) UpperBoundTime(t Timestamp) int {
	lo, hi := 0, len(s.Time)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Time[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
