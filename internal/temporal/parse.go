package temporal

import (
	"bufio"
	"bytes"
)

// Byte-level edge-line parsing: the zero-allocation fast path of the
// parallel ingestion pipeline. ParseEdgeLine (loader.go) remains the
// reference grammar — it is what the sequential loader executes and what
// the fuzz target exercises — and parseEdgeLineBytes defers to it on any
// line outside the common all-ASCII shape, so the two can never disagree.

// maxLineLen mirrors the sequential loader's bufio.Scanner buffer limit so
// overlong lines fail identically on both paths: a line whose content
// (excluding the newline) reaches this length is a read-level error.
const maxLineLen = 16 * 1024 * 1024

// asciiSpace marks the ASCII bytes unicode.IsSpace reports true for — the
// separator set the fast path handles without decoding UTF-8.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// parseEdgeLineBytes parses one edge-list line with ParseEdgeLine's exact
// grammar, allocating nothing on the common path: ASCII whitespace (plus
// ',' in comma mode) separating three base-10 int64 fields, with extra
// trailing fields ignored. Any deviation — non-ASCII bytes, malformed or
// overflowing numbers, too few fields — falls back to ParseEdgeLine on a
// copied string, so results (including error text) are identical by
// construction.
func parseEdgeLineBytes(line []byte, comma bool) (e EdgeLine, skip bool, err error) {
	i, n := 0, len(line)
	// Blank/comment detection happens on the whitespace-trimmed line BEFORE
	// comma replacement (see ParseEdgeLine), so only whitespace is skipped
	// here; a leading comma never introduces a comment.
	for i < n && asciiSpace[line[i]] {
		i++
	}
	if i == n {
		return EdgeLine{}, true, nil
	}
	if c := line[i]; c == '#' || c == '%' {
		return EdgeLine{}, true, nil
	}
	if line[i] >= 0x80 {
		// Could be a multi-byte unicode space still subject to trimming —
		// let the reference grammar decide.
		return parseEdgeLineSlow(line, comma)
	}
	for f := 0; f < 3; f++ {
		for i < n && (asciiSpace[line[i]] || (comma && line[i] == ',')) {
			i++
		}
		if i == n {
			return parseEdgeLineSlow(line, comma) // fewer than 3 fields
		}
		neg := false
		if c := line[i]; c == '+' || c == '-' {
			neg = c == '-'
			i++
		}
		start := i
		var mag uint64
		for i < n {
			c := line[i]
			if c >= '0' && c <= '9' {
				if mag > (1<<63)/10 {
					return parseEdgeLineSlow(line, comma) // magnitude overflow
				}
				mag = mag*10 + uint64(c-'0')
				i++
				continue
			}
			if asciiSpace[c] || (comma && c == ',') {
				break
			}
			return parseEdgeLineSlow(line, comma) // junk or non-ASCII byte
		}
		if i == start || mag > 1<<63-1 && !(neg && mag == 1<<63) {
			return parseEdgeLineSlow(line, comma) // empty digits or overflow
		}
		v := int64(mag)
		if neg {
			v = -v // mag == 1<<63 wraps to MinInt64, which is exactly -mag
		}
		switch f {
		case 0:
			e.U = v
		case 1:
			e.V = v
		default:
			e.T = v
		}
	}
	// Anything after the third field's terminator is trailing data, which
	// the reference grammar ignores whatever its bytes are.
	return e, false, nil
}

// parseEdgeLineSlow is the fallback onto the reference grammar; the string
// copy allocates, but only lines outside the fast path's shape reach it.
func parseEdgeLineSlow(line []byte, comma bool) (EdgeLine, bool, error) {
	return ParseEdgeLine(string(line), comma)
}

// rawChunk is one newline-aligned piece of the input after parsing: the
// parsed rows as columns in input order, plus the bookkeeping needed to
// reconstruct the sequential loader's observable behaviour exactly.
type rawChunk struct {
	idx   int // chunk index in input order
	lines int // lines scanned, up to and including the failing line if any

	u, v []int64 // raw endpoint ids, one entry per parsed edge row
	t    []Timestamp
	line []int32 // 1-based line number within the chunk, per row

	err     error // first failing line's error; parsing stopped there
	errLine int   // 1-based line within the chunk of err
	errRead bool  // err is a read-level failure (overlong line), not a parse error

	aux any // consumer-specific post-processing result (see forEachChunk)
}

// reset clears c for reuse, keeping column capacity. The pipeline workers
// allocate a fresh rawChunk per job (results are handed off downstream);
// reset serves callers that re-parse into one chunk, like the
// zero-allocation regression test.
func (c *rawChunk) reset() {
	c.lines = 0
	c.u, c.v, c.t, c.line = c.u[:0], c.v[:0], c.t[:0], c.line[:0]
	c.err, c.errLine, c.errRead = nil, 0, false
	c.aux = nil
}

// grow ensures the columns can hold rows more entries without reallocating,
// so the parse loop itself performs zero allocations per edge.
func (c *rawChunk) grow(rows int) {
	if cap(c.u)-len(c.u) >= rows {
		return
	}
	need := len(c.u) + rows
	u := make([]int64, len(c.u), need)
	copy(u, c.u)
	c.u = u
	v := make([]int64, len(c.v), need)
	copy(v, c.v)
	c.v = v
	t := make([]Timestamp, len(c.t), need)
	copy(t, c.t)
	c.t = t
	ln := make([]int32, len(c.line), need)
	copy(ln, c.line)
	c.line = ln
}

// parseChunk scans data — full lines, except that the final line may lack
// its trailing newline — appending one row per parsed edge to c's columns.
// It stops at the first failing line, recording the error and its chunk-
// relative line number. The caller is expected to have sized the columns
// via grow (one '\n' bound suffices: every line yields at most one row), so
// the loop allocates only when a line needs the slow-path fallback.
func parseChunk(c *rawChunk, data []byte, comma bool) {
	for len(data) > 0 {
		c.lines++
		var ln []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			ln, data = data[:nl], data[nl+1:]
		} else {
			ln, data = data, nil
		}
		if len(ln) >= maxLineLen {
			c.err, c.errLine, c.errRead = bufio.ErrTooLong, c.lines, true
			return
		}
		el, skip, err := parseEdgeLineBytes(ln, comma)
		if err != nil {
			c.err, c.errLine = err, c.lines
			return
		}
		if skip {
			continue
		}
		c.u = append(c.u, el.U)
		c.v = append(c.v, el.V)
		c.t = append(c.t, el.T)
		c.line = append(c.line, int32(c.lines))
	}
}
