package temporal

import "testing"

func TestEdgeString(t *testing.T) {
	e := Edge{From: 3, To: 7, Time: 42}
	if got := e.String(); got != "(3,7,42)" {
		t.Fatalf("String = %q", got)
	}
}

func TestHalfEdgeDir(t *testing.T) {
	out := HalfEdge{Out: true}
	in := HalfEdge{Out: false}
	if out.Dir() != 1 || in.Dir() != 0 {
		t.Fatalf("Dir: out=%d in=%d", out.Dir(), in.Dir())
	}
}

func TestBuilderLen(t *testing.T) {
	b := NewBuilder(4)
	if b.Len() != 0 {
		t.Fatal("fresh builder not empty")
	}
	_ = b.AddEdge(0, 1, 5)
	_ = b.AddEdge(1, 1, 6) // self-loop: dropped
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

// Isolated high node IDs must size the graph correctly even with no edges
// touching the intermediate IDs.
func TestSparseNodeIDs(t *testing.T) {
	g := FromEdges([]Edge{{From: 0, To: 999, Time: 1}})
	if g.NumNodes() != 1000 {
		t.Fatalf("NumNodes = %d, want 1000", g.NumNodes())
	}
	if g.Degree(500) != 0 {
		t.Fatal("untouched node should have degree 0")
	}
	if g.Seq(500).Len() != 0 {
		t.Fatal("untouched node should have an empty sequence")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeTimestampsAllowed(t *testing.T) {
	g := FromEdges([]Edge{{From: 0, To: 1, Time: -100}, {From: 1, To: 0, Time: -50}})
	min, max, ok := g.TimeSpan()
	if !ok || min != -100 || max != -50 {
		t.Fatalf("span = (%d,%d,%v)", min, max, ok)
	}
}
