package temporal

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// benchEdgeListText builds a ~240k-line SNAP-style edge-list text once:
// power-law-ish endpoints, non-decreasing timestamps, occasional comments —
// the shape the ingestion pipeline sees on the paper's datasets.
var benchEdgeListText = sync.OnceValue(func() []byte {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	tnow := int64(1_100_000_000)
	for i := 0; i < 240_000; i++ {
		if i%10_000 == 0 {
			buf.WriteString("# checkpoint\n")
		}
		u := rng.Intn(1 + rng.Intn(40_000))
		v := rng.Intn(1 + rng.Intn(40_000))
		tnow += int64(rng.Intn(30))
		fmt.Fprintf(&buf, "%d %d %d\n", u, v, tnow)
	}
	return buf.Bytes()
})

func benchLoad(b *testing.B, workers int) {
	data := benchEdgeListText()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var edges int
	for i := 0; i < b.N; i++ {
		g, err := ReadEdgeList(bytes.NewReader(data), LoadOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		edges = g.NumEdges()
	}
	b.ReportMetric(float64(edges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkReadEdgeListSeq(b *testing.B) { benchLoad(b, 1) }

func BenchmarkReadEdgeListParallel(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchLoad(b, w) })
	}
}

// BenchmarkBuildParallel isolates the CSR finalisation stage.
func BenchmarkBuildParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	edges := randomEdges(rng, 40_000, 240_000, 1_000_000)
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bu := NewBuilder(len(edges))
				for _, e := range edges {
					_ = bu.AddEdge(e.From, e.To, e.Time)
				}
				b.StartTimer()
				bu.BuildParallel(w)
			}
		})
	}
}
