package temporal

import (
	"math/rand"
	"testing"
)

// hubGraph builds a hub-skewed graph: a few hub nodes participate in most
// edges, stressing long per-node spans and big per-pair groups.
func hubGraph(r *rand.Rand, hubs, leaves, edges int, span Timestamp) *Graph {
	b := NewBuilder(edges)
	for i := 0; i < edges; i++ {
		hub := NodeID(r.Intn(hubs))
		other := NodeID(hubs + r.Intn(leaves))
		if r.Intn(4) == 0 { // occasional hub-hub multi-edges
			other = NodeID(r.Intn(hubs))
		}
		t := Timestamp(r.Int63n(int64(span)))
		if r.Intn(2) == 0 {
			_ = b.AddEdge(hub, other, t)
		} else {
			_ = b.AddEdge(other, hub, t)
		}
	}
	return b.Build()
}

// refSeqs independently derives every node's expected incident sequence from
// a raw edge list, replaying the Builder contract from first principles:
// drop self-loops, stable-sort by timestamp (ties keep input order), then
// append each edge's two half-edges in sorted order.
func refSeqs(edges []Edge, numNodes int) [][]HalfEdge {
	type rec struct {
		e   Edge
		pos int
	}
	recs := make([]rec, 0, len(edges))
	for i, e := range edges {
		if e.From == e.To {
			continue
		}
		recs = append(recs, rec{e, i})
	}
	// Insertion sort by (Time, input position): an intentionally independent
	// (and obviously stable) reimplementation of the sort under test.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0; j-- {
			a, b := recs[j-1], recs[j]
			if b.e.Time < a.e.Time || (b.e.Time == a.e.Time && b.pos < a.pos) {
				recs[j-1], recs[j] = b, a
			} else {
				break
			}
		}
	}
	seqs := make([][]HalfEdge, numNodes)
	for id, r := range recs {
		e := r.e
		seqs[e.From] = append(seqs[e.From], HalfEdge{ID: EdgeID(id), Time: e.Time, Other: e.To, Out: true})
		seqs[e.To] = append(seqs[e.To], HalfEdge{ID: EdgeID(id), Time: e.Time, Other: e.From, Out: false})
	}
	return seqs
}

// checkCSRInvariants asserts, for every node, that the CSR span is
// timestamp-sorted with ties in input (EdgeID) order and exactly equals the
// independently derived reference, and that every per-pair group is the
// EdgeID-ordered filter of the owner's sequence.
func checkCSRInvariants(t *testing.T, g *Graph, rawEdges []Edge) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := refSeqs(rawEdges, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		seq := g.Seq(NodeID(u))
		if seq.Len() != len(want[u]) {
			t.Fatalf("node %d: |S_u| = %d, want %d", u, seq.Len(), len(want[u]))
		}
		for i := 0; i < seq.Len(); i++ {
			if i > 0 {
				if seq.Time[i] < seq.Time[i-1] {
					t.Fatalf("node %d: S_u not timestamp-sorted at %d", u, i)
				}
				if seq.ID[i] <= seq.ID[i-1] {
					t.Fatalf("node %d: tie not broken by input order at %d", u, i)
				}
			}
			if seq.At(i) != want[u][i] {
				t.Fatalf("node %d: S_u[%d] = %+v, want %+v", u, i, seq.At(i), want[u][i])
			}
		}
		// Per-pair groups must partition S_u: the concatenation of
		// Between(u, w) over the distinct neighbors, each EdgeID-sorted,
		// reorders S_u without loss, and each group equals the filter of
		// S_u by that neighbor.
		total := 0
		for _, w := range g.Neighbors(NodeID(u)) {
			grp := g.Between(NodeID(u), w)
			total += grp.Len()
			k := 0
			for i := 0; i < seq.Len(); i++ {
				if seq.Other[i] != w {
					continue
				}
				if k >= grp.Len() || grp.At(k) != seq.At(i) {
					t.Fatalf("node %d: E(%d,%d) differs from the S_u filter at %d", u, u, w, k)
				}
				k++
			}
			if k != grp.Len() {
				t.Fatalf("node %d: E(%d,%d) has %d extra entries", u, u, w, grp.Len()-k)
			}
		}
		if total != seq.Len() {
			t.Fatalf("node %d: groups cover %d of %d half-edges", u, total, seq.Len())
		}
	}
}

func TestCSRInvariantsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		nodes := 2 + r.Intn(25)
		nEdges := r.Intn(300)
		span := Timestamp(1 + r.Intn(20)) // small span: heavy timestamp ties
		edges := make([]Edge, 0, nEdges)
		for i := 0; i < nEdges; i++ {
			edges = append(edges, Edge{
				From: NodeID(r.Intn(nodes)),
				To:   NodeID(r.Intn(nodes)), // self-loops included on purpose
				Time: Timestamp(r.Int63n(int64(span))),
			})
		}
		checkCSRInvariants(t, FromEdges(edges), edges)
	}
}

func TestCSRInvariantsHubSkewed(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g := hubGraph(r, 2, 30, 400, 25)
		checkCSRInvariants(t, g, g.Edges())
	}
}

func TestColumnsMatchEdgeAccessors(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := hubGraph(r, 3, 20, 200, 50)
	src, dst, ts := g.Src(), g.Dst(), g.Times()
	if len(src) != g.NumEdges() || len(dst) != g.NumEdges() || len(ts) != g.NumEdges() {
		t.Fatalf("column lengths %d/%d/%d, want %d", len(src), len(dst), len(ts), g.NumEdges())
	}
	edges := g.Edges()
	for i := range edges {
		if e := g.Edge(EdgeID(i)); e != edges[i] {
			t.Fatalf("Edge(%d) = %v, Edges()[%d] = %v", i, e, i, edges[i])
		}
		if src[i] != edges[i].From || dst[i] != edges[i].To || ts[i] != edges[i].Time {
			t.Fatalf("columns diverge from Edges() at %d", i)
		}
	}
}

func TestNeighborsSortedDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := hubGraph(r, 2, 15, 300, 40)
	for u := 0; u < g.NumNodes(); u++ {
		ns := g.Neighbors(NodeID(u))
		if len(ns) != g.NeighborCount(NodeID(u)) {
			t.Fatalf("node %d: NeighborCount mismatch", u)
		}
		for i := 1; i < len(ns); i++ {
			if ns[i] <= ns[i-1] {
				t.Fatalf("node %d: neighbors not strictly ascending", u)
			}
		}
		for _, w := range ns {
			if g.Between(NodeID(u), w).Len() == 0 {
				t.Fatalf("node %d: neighbor %d has empty pair group", u, w)
			}
		}
	}
}
