package temporal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"unsafe"
)

// Binary graph snapshots (".hare" format v1).
//
// A snapshot persists the complete columnar CSR Graph — edge columns,
// incident index, grouped per-pair index, and the scalar stats — in a
// versioned little-endian on-disk layout, so a serve-time restart pays a
// single mmap plus checksum/consistency pass instead of a full text parse
// and CSR build. docs/FORMAT.md is the normative spec; the constants and
// layout here are that spec's implementation.
//
// Layout (all integers little-endian, every section 8-byte aligned):
//
//	header (56 bytes):
//	  [0:8)   magic "HARESNAP"
//	  [8:12)  format version (uint32) — currently 1
//	  [12:16) flags (uint32, reserved, must be 0)
//	  [16:24) numNodes n (uint64)
//	  [24:32) numEdges m (uint64)
//	  [32:40) selfLoopsDropped (uint64)
//	  [40:48) nbrKeys k = len(nbrKey) (uint64)
//	  [48:52) section count (uint32) — 15 in v1
//	  [52:56) header CRC-32C over bytes [0:52) plus the section table
//	section table (15 × 32 bytes):
//	  [0:8)   absolute payload offset (uint64, multiple of 8)
//	  [8:16)  payload length in bytes (uint64)
//	  [16:20) section kind (uint32)
//	  [20:24) element size in bytes (uint32): 1, 4 or 8
//	  [24:28) CRC-32C of the payload bytes (uint32)
//	  [28:32) reserved (uint32, must be 0)
//	payload sections in kind order, each zero-padded to 8 bytes.
//
// v1 is canonical: the 15 sections appear in kind order at tightly packed
// offsets fully determined by (n, m, k), and the file ends exactly at the
// last section's padded end. The reader enforces the canonical layout, so
// a malformed table can never alias sections or smuggle trailing data.

// SnapshotMagic is the 8-byte marker opening every .hare snapshot.
const SnapshotMagic = "HARESNAP"

// SnapshotVersion is the format version this build reads and writes.
// Readers reject newer versions with *SnapshotVersionError so callers can
// fall back (e.g. to re-parsing the source text) instead of mis-loading.
const SnapshotVersion = 1

const (
	snapHeaderSize  = 56
	snapEntrySize   = 32
	snapNumSections = 15
	snapTableSize   = snapNumSections * snapEntrySize
	snapPayloadOff  = snapHeaderSize + snapTableSize
	snapCRCOff      = 52 // header CRC field offset; the CRC covers [0:52)+table
)

// Section kinds, in canonical file order.
const (
	secSrc uint32 = iota + 1
	secDst
	secTs
	secIncOff
	secIncID
	secIncTime
	secIncOther
	secIncOut
	secNbrOff
	secNbrKey
	secGrpOff
	secGrpID
	secGrpTime
	secGrpOther
	secGrpOut
)

// snapCRCTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64), shared by writer and reader.
var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Typed snapshot error sentinels. Every load failure wraps exactly one of
// these (or is a *SnapshotVersionError), so callers can dispatch with
// errors.Is / errors.As; the fuzz target enforces that no other error —
// and no panic — can escape the loader.
var (
	// ErrSnapshotMagic reports a file that is not a .hare snapshot at all.
	ErrSnapshotMagic = errors.New("temporal: not a hare snapshot (bad magic)")
	// ErrSnapshotTruncated reports a snapshot shorter than its header and
	// section table require.
	ErrSnapshotTruncated = errors.New("temporal: truncated hare snapshot")
	// ErrSnapshotChecksum reports a header or section CRC mismatch.
	ErrSnapshotChecksum = errors.New("temporal: hare snapshot checksum mismatch")
	// ErrSnapshotMalformed reports a structurally invalid snapshot: a
	// non-canonical section table, out-of-range values, or graph columns
	// that fail the CSR consistency checks.
	ErrSnapshotMalformed = errors.New("temporal: malformed hare snapshot")
)

// SnapshotVersionError reports a snapshot whose format version this build
// does not support (typically: written by a newer build). It is returned
// before any checksum or structure checks, so a caller holding the source
// text can fall back to parsing it.
type SnapshotVersionError struct{ Version uint32 }

func (e *SnapshotVersionError) Error() string {
	return fmt.Sprintf("temporal: unsupported hare snapshot version %d (this build reads version %d)",
		e.Version, SnapshotVersion)
}

// nativeLittleEndian reports whether the host stores integers little-endian,
// which (with 64-bit ints) lets the loader alias mapped file bytes directly
// as column slices instead of copying.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// canBorrowSnapshot reports whether this platform can back a Graph directly
// by snapshot bytes (zero-copy): little-endian and 64-bit int, so the
// on-disk int64 offset columns are exactly []int in memory.
func canBorrowSnapshot() bool {
	return nativeLittleEndian && strconv.IntSize == 64
}

// snapSpec describes one canonical v1 section: its kind, element width,
// and expected element count, all derivable from the header counts.
type snapSpec struct {
	kind  uint32
	elem  int
	count int
}

// snapSpecs derives the canonical v1 section specs — and therefore the
// whole file layout — from the three header counts.
func snapSpecs(n, m, k int) [snapNumSections]snapSpec {
	h := 2 * m
	return [snapNumSections]snapSpec{
		{secSrc, 4, m},
		{secDst, 4, m},
		{secTs, 8, m},
		{secIncOff, 8, n + 1},
		{secIncID, 4, h},
		{secIncTime, 8, h},
		{secIncOther, 4, h},
		{secIncOut, 1, h},
		{secNbrOff, 8, n + 1},
		{secNbrKey, 4, k},
		{secGrpOff, 8, k + 1},
		{secGrpID, 4, h},
		{secGrpTime, 8, h},
		{secGrpOther, 4, h},
		{secGrpOut, 1, h},
	}
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// snapSize returns the exact canonical file size for the given counts.
func snapSize(specs [snapNumSections]snapSpec) int {
	size := snapPayloadOff
	for _, s := range specs {
		size += align8(s.elem * s.count)
	}
	return size
}

// columnBytes returns the raw in-memory bytes of a numeric or bool column
// when the platform representation already matches the on-disk format
// (little-endian hosts), and ok=false otherwise, in which case the caller
// encodes element by element.
func columnBytes[T int32 | int64 | int | bool](col []T) (b []byte, ok bool) {
	var zero T
	if size := int(unsafe.Sizeof(zero)); size > 1 && !nativeLittleEndian {
		return nil, false
	}
	if _, isInt := any(zero).(int); isInt && strconv.IntSize != 64 {
		return nil, false // on-disk layout is int64; 32-bit ints must widen
	}
	if len(col) == 0 {
		return nil, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&col[0])), len(col)*int(unsafe.Sizeof(col[0]))), true
}

// encodeColumn serialises a column little-endian into dst (exactly sized).
func encodeColumn[T int32 | int64 | int | bool](dst []byte, col []T) {
	switch c := any(col).(type) {
	case []int32:
		for i, v := range c {
			binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
		}
	case []int64:
		for i, v := range c {
			binary.LittleEndian.PutUint64(dst[8*i:], uint64(v))
		}
	case []int:
		for i, v := range c {
			binary.LittleEndian.PutUint64(dst[8*i:], uint64(v))
		}
	case []bool:
		for i, v := range c {
			if v {
				dst[i] = 1
			} else {
				dst[i] = 0
			}
		}
	}
}

// sectionPayload returns the little-endian payload bytes of section i of g,
// using scratch as the encode buffer when the in-memory bytes cannot be
// used directly.
func (g *Graph) sectionPayload(kind uint32, scratch []byte) []byte {
	payload := func(col any) []byte {
		switch c := col.(type) {
		case []int32:
			if b, ok := columnBytes(c); ok {
				return b
			}
			encodeColumn(scratch[:4*len(c)], c)
			return scratch[:4*len(c)]
		case []int64:
			if b, ok := columnBytes(c); ok {
				return b
			}
			encodeColumn(scratch[:8*len(c)], c)
			return scratch[:8*len(c)]
		case []int:
			// Byte-compatible with the on-disk int64 layout only on 64-bit
			// little-endian hosts; otherwise widened element-wise.
			if b, ok := columnBytes(c); ok {
				return b
			}
			encodeColumn(scratch[:8*len(c)], c)
			return scratch[:8*len(c)]
		case []bool:
			b, _ := columnBytes(c) // bool is one byte everywhere
			return b
		}
		panic("unreachable")
	}
	switch kind {
	case secSrc:
		return payload(g.src)
	case secDst:
		return payload(g.dst)
	case secTs:
		return payload(g.ts)
	case secIncOff:
		return payload(g.incOff)
	case secIncID:
		return payload(g.incID)
	case secIncTime:
		return payload(g.incTime)
	case secIncOther:
		return payload(g.incOther)
	case secIncOut:
		return payload(g.incOut)
	case secNbrOff:
		return payload(g.nbrOff)
	case secNbrKey:
		return payload(g.nbrKey)
	case secGrpOff:
		return payload(g.grpOff)
	case secGrpID:
		return payload(g.grpID)
	case secGrpTime:
		return payload(g.grpTime)
	case secGrpOther:
		return payload(g.grpOther)
	case secGrpOut:
		return payload(g.grpOut)
	}
	panic("unreachable")
}

// WriteSnapshot serialises g to w in the .hare v1 binary snapshot format.
// The output is deterministic: the same graph always produces the same
// bytes.
func WriteSnapshot(w io.Writer, g *Graph) error {
	if g == nil {
		return fmt.Errorf("temporal: nil graph")
	}
	n, m, k := g.numNodes, len(g.ts), len(g.nbrKey)
	specs := snapSpecs(n, m, k)

	// Scratch buffer for hosts where columns must be re-encoded; sized to
	// the largest section. Little-endian hosts never touch it.
	var scratch []byte
	if !nativeLittleEndian || strconv.IntSize != 64 {
		maxLen := 0
		for _, s := range specs {
			if l := s.elem * s.count; l > maxLen {
				maxLen = l
			}
		}
		scratch = make([]byte, maxLen)
	}

	hdr := make([]byte, snapPayloadOff)
	copy(hdr[0:8], SnapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:], SnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(m))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(g.selfLoops))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(k))
	binary.LittleEndian.PutUint32(hdr[48:], snapNumSections)

	off := snapPayloadOff
	for i, s := range specs {
		e := hdr[snapHeaderSize+i*snapEntrySize:]
		length := s.elem * s.count
		binary.LittleEndian.PutUint64(e[0:], uint64(off))
		binary.LittleEndian.PutUint64(e[8:], uint64(length))
		binary.LittleEndian.PutUint32(e[16:], s.kind)
		binary.LittleEndian.PutUint32(e[20:], uint32(s.elem))
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(g.sectionPayload(s.kind, scratch), snapCRCTable))
		binary.LittleEndian.PutUint32(e[28:], 0)
		off += align8(length)
	}
	crc := crc32.Update(0, snapCRCTable, hdr[:snapCRCOff])
	crc = crc32.Update(crc, snapCRCTable, hdr[snapHeaderSize:])
	binary.LittleEndian.PutUint32(hdr[snapCRCOff:], crc)

	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var pad [8]byte
	for _, s := range specs {
		payload := g.sectionPayload(s.kind, scratch)
		if _, err := w.Write(payload); err != nil {
			return err
		}
		if p := align8(len(payload)) - len(payload); p > 0 {
			if _, err := w.Write(pad[:p]); err != nil {
				return err
			}
		}
	}
	return nil
}

// SaveSnapshot writes g to path in the .hare binary snapshot format. The
// file's Close error is propagated, matching SaveFile.
func SaveSnapshot(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	werr := WriteSnapshot(bw, g)
	if werr == nil {
		werr = bw.Flush()
	}
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadSnapshot reads a .hare snapshot from r into a freshly allocated Graph
// (the portable read-into-slices path, also used for gzip and other
// non-file inputs). For plain files prefer LoadSnapshot, which memory-maps.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data, false, nil)
}

// LoadSnapshot opens a .hare snapshot file. On platforms that support it,
// the file is memory-mapped read-only and the returned Graph's columns
// alias the mapping directly — zero-copy, zero-parse, page-cache shared
// across processes; the mapping is released when the Graph becomes
// unreachable. Elsewhere (and on mapping failure) it falls back to reading
// the file into freshly allocated columns.
//
// A mapped Graph's column slices (Src, Times, Seq views, ...) are valid
// only while the Graph itself is reachable.
func LoadSnapshot(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, unmap, ok := mmapFile(f)
	if !ok {
		return ReadSnapshot(bufio.NewReaderSize(f, 1<<20))
	}
	if !canBorrowSnapshot() {
		defer unmap()
		return decodeSnapshot(data, false, nil)
	}
	g, err := decodeSnapshot(data, true, unmap)
	if err != nil {
		unmap()
		return nil, err
	}
	return g, nil
}

// snapReader walks the canonical section layout over the raw file bytes.
// Checksums are verified separately (see decodeSnapshot), concurrently
// with this walk.
type snapReader struct {
	data []byte
	spec [snapNumSections]snapSpec
	next int // next section index handed out
	off  int // canonical offset of that section
}

// section returns the payload bytes of the next canonical section.
func (r *snapReader) section() []byte {
	s := r.spec[r.next]
	length := s.elem * s.count
	payload := r.data[r.off : r.off+length]
	r.next++
	r.off += align8(length)
	return payload
}

// borrowColumn aliases payload bytes as a column of T (little-endian,
// 64-bit hosts only; alignment is guaranteed by the canonical layout).
func borrowColumn[T int32 | int64 | int | bool](payload []byte) []T {
	var zero T
	count := len(payload) / int(unsafe.Sizeof(zero))
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&payload[0])), count)
}

// decodeColumn copies payload bytes into a freshly allocated column,
// decoding little-endian explicitly (works on any host).
func decodeColumn[T int32 | int64 | int | bool](payload []byte) ([]T, error) {
	var zero T
	size := int(unsafe.Sizeof(zero))
	count := len(payload) / size
	if count == 0 {
		return nil, nil
	}
	out := make([]T, count)
	switch o := any(out).(type) {
	case []int32:
		for i := range o {
			o[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
		}
	case []int64:
		for i := range o {
			o[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case []int:
		for i := range o {
			v := int64(binary.LittleEndian.Uint64(payload[8*i:]))
			if int64(int(v)) != v {
				return nil, fmt.Errorf("%w: offset value %d overflows int", ErrSnapshotMalformed, v)
			}
			o[i] = int(v)
		}
	case []bool:
		for i := range o {
			o[i] = payload[i] != 0
		}
	}
	return out, nil
}

// validBoolBytes reports whether every payload byte is 0 or 1 — required
// before aliasing file bytes as []bool (and for a well-formed file in
// general: the writer only emits 0/1). Checked eight bytes at a time: a
// word of 0/1 bytes has no bits outside the low bit of each lane.
func validBoolBytes(payload []byte) bool {
	for len(payload) >= 8 {
		if binary.LittleEndian.Uint64(payload)&^0x0101010101010101 != 0 {
			return false
		}
		payload = payload[8:]
	}
	for _, b := range payload {
		if b > 1 {
			return false
		}
	}
	return true
}

// validateSnapshotGraph enforces every structural invariant a decoded
// snapshot graph needs for crash-free downstream use, in streaming passes:
// sorted edge times, endpoint and edge IDs in range, offset columns
// anchored at both ends and monotone, per-span ID/time ordering, non-empty
// groups, and the grouped/incident partition coupling. It deliberately
// skips Graph.Validate's gather-style cross-checks (half-edge time and
// endpoint equality against the edge columns), which cost most of a cold
// start and defend only against a *crafted* file whose checksums all pass:
// CRC-32C over every section already rejects any accidental corruption,
// and nothing that passes here can make the counting kernels index out of
// bounds. `hareconvert -verify` runs the full Validate for callers that
// want the cross-checks on an untrusted file.
func validateSnapshotGraph(g *Graph) error {
	n, m := g.numNodes, len(g.ts)
	h, k := 2*m, len(g.nbrKey)
	un, um := uint32(n), uint32(m)
	// Flat streaming passes first: sorted times, then every ID column in
	// range. The unsigned compare folds the negative and the >= bound
	// checks into one branch (a negative int32 casts to a huge uint32);
	// with n == 0 it correctly rejects any element at all.
	ts := g.ts
	for i := 1; i < m; i++ {
		if ts[i] < ts[i-1] {
			return fmt.Errorf("edges out of order at id %d", i)
		}
	}
	for i, s := range g.src {
		if uint32(s) >= un || uint32(g.dst[i]) >= un {
			return fmt.Errorf("edge %d endpoints out of range", i)
		}
	}
	for _, id := range g.incID {
		if uint32(id) >= um {
			return fmt.Errorf("incident index references edge %d of %d", id, m)
		}
	}
	for _, o := range g.incOther {
		if uint32(o) >= un {
			return fmt.Errorf("incident neighbor out of range")
		}
	}
	for _, id := range g.grpID {
		if uint32(id) >= um {
			return fmt.Errorf("grouped index references edge %d of %d", id, m)
		}
	}
	for _, key := range g.nbrKey {
		if uint32(key) >= un {
			return fmt.Errorf("neighbor key out of range")
		}
	}
	// Offset columns: anchored at both ends, monotone, and bounded so the
	// span loops below cannot index past the columns (the end anchor only
	// pins the final offset, not intermediate values).
	incOff := g.incOff
	if incOff[0] != 0 || incOff[n] != h {
		return fmt.Errorf("incident offsets not anchored")
	}
	for u := 1; u <= n; u++ {
		if incOff[u] < incOff[u-1] || incOff[u] > h {
			return fmt.Errorf("incident offsets malformed at node %d", u-1)
		}
	}
	nbrOff, grpOff := g.nbrOff, g.grpOff
	if nbrOff[0] != 0 || nbrOff[n] != k || grpOff[0] != 0 || grpOff[k] != h {
		return fmt.Errorf("neighbor index offsets not anchored")
	}
	for u := 1; u <= n; u++ {
		if nbrOff[u] < nbrOff[u-1] || nbrOff[u] > k {
			return fmt.Errorf("neighbor offsets malformed at node %d", u-1)
		}
	}
	for i := 0; i < k; i++ {
		if grpOff[i] >= grpOff[i+1] {
			return fmt.Errorf("empty or decreasing group %d", i)
		}
	}
	// Per-span ordering, with all indices already proven in bounds.
	incID, incTime := g.incID, g.incTime
	for u := 0; u < n; u++ {
		lo, hi := incOff[u], incOff[u+1]
		for j := lo + 1; j < hi; j++ {
			if incID[j] <= incID[j-1] || incTime[j] < incTime[j-1] {
				return fmt.Errorf("S_%d out of order", u)
			}
		}
	}
	nbrKey, grpID, grpTime, grpOther := g.nbrKey, g.grpID, g.grpTime, g.grpOther
	for u := 0; u < n; u++ {
		lo, hi := nbrOff[u], nbrOff[u+1]
		if lo < hi && (grpOff[lo] != incOff[u] || grpOff[hi] != incOff[u+1]) {
			return fmt.Errorf("node %d groups do not cover its incident span", u)
		}
		if lo == hi && incOff[u] != incOff[u+1] {
			return fmt.Errorf("node %d has half-edges but no groups", u)
		}
		for i := lo; i < hi; i++ {
			key := nbrKey[i]
			if i > lo && key <= nbrKey[i-1] {
				return fmt.Errorf("neighbor keys of node %d out of order", u)
			}
			a, b := grpOff[i], grpOff[i+1]
			if grpOther[a] != key {
				return fmt.Errorf("E(%d,%d) contains edge to %d", u, key, grpOther[a])
			}
			for j := a + 1; j < b; j++ {
				if grpOther[j] != key {
					return fmt.Errorf("E(%d,%d) contains edge to %d", u, key, grpOther[j])
				}
				if grpID[j] <= grpID[j-1] || grpTime[j] < grpTime[j-1] {
					return fmt.Errorf("E(%d,%d) out of order", u, key)
				}
			}
		}
	}
	return nil
}

// decodeSnapshot parses and fully validates a v1 snapshot. With borrow set
// (little-endian 64-bit hosts only) the returned Graph's columns alias
// data, and unmap — the mapping's release function, may be nil — is
// attached to run when the Graph is garbage collected; otherwise every
// column is copied out and unmap is ignored.
//
// Validation is total: the canonical layout, every checksum, and the full
// CSR cross-consistency checks (Graph.Validate) all pass before a Graph is
// returned, so a corrupted or adversarial snapshot yields a typed error,
// never a crash or a silently wrong graph.
func decodeSnapshot(data []byte, borrow bool, unmap func()) (*Graph, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: %d bytes", ErrSnapshotTruncated, len(data))
	}
	if string(data[:8]) != SnapshotMagic {
		return nil, ErrSnapshotMagic
	}
	if len(data) < snapHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes (want at least %d)", ErrSnapshotTruncated, len(data), snapHeaderSize)
	}
	// Version gates everything else: a newer format may change any later
	// byte, so checking it first keeps *SnapshotVersionError reliable for
	// fall-back dispatch.
	if v := binary.LittleEndian.Uint32(data[8:]); v != SnapshotVersion {
		return nil, &SnapshotVersionError{Version: v}
	}
	if flags := binary.LittleEndian.Uint32(data[12:]); flags != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrSnapshotMalformed, flags)
	}
	n64 := binary.LittleEndian.Uint64(data[16:])
	m64 := binary.LittleEndian.Uint64(data[24:])
	loops64 := binary.LittleEndian.Uint64(data[32:])
	k64 := binary.LittleEndian.Uint64(data[40:])
	// NodeID and EdgeID are int32; k <= 2m because every grouped span is
	// non-empty. These bounds also keep every derived size within int,
	// including on 32-bit hosts.
	if n64 > math.MaxInt32 || m64 > math.MaxInt32 || k64 > 2*m64 || loops64 > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible counts (n=%d m=%d k=%d)", ErrSnapshotMalformed, n64, m64, k64)
	}
	n, m, k := int(n64), int(m64), int(k64)
	if sections := binary.LittleEndian.Uint32(data[48:]); sections != snapNumSections {
		return nil, fmt.Errorf("%w: %d sections (v1 has %d)", ErrSnapshotMalformed, sections, snapNumSections)
	}
	specs := snapSpecs(n, m, k)
	want := snapSize(specs)
	if len(data) < want {
		return nil, fmt.Errorf("%w: %d bytes (layout requires %d)", ErrSnapshotTruncated, len(data), want)
	}
	if len(data) > want {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotMalformed, len(data)-want)
	}
	crc := crc32.Update(0, snapCRCTable, data[:snapCRCOff])
	crc = crc32.Update(crc, snapCRCTable, data[snapHeaderSize:snapPayloadOff])
	if crc != binary.LittleEndian.Uint32(data[snapCRCOff:]) {
		return nil, fmt.Errorf("%w: header", ErrSnapshotChecksum)
	}
	// The table must match the canonical layout exactly: v1 admits no
	// reordering, gaps, overlaps, or padding tricks.
	off := snapPayloadOff
	for i, s := range specs {
		e := data[snapHeaderSize+i*snapEntrySize:]
		length := s.elem * s.count
		switch {
		case binary.LittleEndian.Uint64(e[0:]) != uint64(off):
			return nil, fmt.Errorf("%w: section %d at non-canonical offset", ErrSnapshotMalformed, i)
		case binary.LittleEndian.Uint64(e[8:]) != uint64(length):
			return nil, fmt.Errorf("%w: section %d has non-canonical length", ErrSnapshotMalformed, i)
		case binary.LittleEndian.Uint32(e[16:]) != s.kind:
			return nil, fmt.Errorf("%w: section %d has kind %d (want %d)", ErrSnapshotMalformed, i, binary.LittleEndian.Uint32(e[16:]), s.kind)
		case binary.LittleEndian.Uint32(e[20:]) != uint32(s.elem):
			return nil, fmt.Errorf("%w: section %d element size", ErrSnapshotMalformed, i)
		case binary.LittleEndian.Uint32(e[28:]) != 0:
			return nil, fmt.Errorf("%w: section %d reserved field", ErrSnapshotMalformed, i)
		}
		// Alignment padding sits outside every CRC, so canonicality has to
		// be enforced directly: a writer only emits zeros there.
		for _, b := range data[off+length : off+align8(length)] {
			if b != 0 {
				return nil, fmt.Errorf("%w: section %d has nonzero padding", ErrSnapshotMalformed, i)
			}
		}
		off += align8(length)
	}

	// The per-section checksums are one linear pass over the file and the
	// CSR cross-consistency checks (Graph.Validate) another; both are
	// cold-start critical. The sections' CRCs are independent, so they
	// run concurrently with each other and with column extraction +
	// validation below, roughly halving snapshot load wall time. Checksum
	// failures take precedence over structural errors when both fire (a
	// flipped bit usually trips both), and every goroutine is joined
	// before returning so the caller may unmap data immediately on error.
	secErr := make([]error, snapNumSections)
	var wg sync.WaitGroup
	crcOff := snapPayloadOff
	for i, s := range specs {
		payload := data[crcOff : crcOff+s.elem*s.count]
		want := binary.LittleEndian.Uint32(data[snapHeaderSize+i*snapEntrySize+24:])
		wg.Add(1)
		go func(i int, kind uint32, payload []byte, want uint32) {
			defer wg.Done()
			if crc32.Checksum(payload, snapCRCTable) != want {
				secErr[i] = fmt.Errorf("%w: section %d (kind %d)", ErrSnapshotChecksum, i, kind)
			}
		}(i, s.kind, payload, want)
		crcOff += align8(s.elem * s.count)
	}

	g := &Graph{numNodes: n, selfLoops: int(loops64)}
	r := &snapReader{data: data, spec: specs, off: snapPayloadOff}
	column := func(dst any) error {
		payload := r.section()
		var err error
		// NodeID/EdgeID alias int32 and Timestamp aliases int64, so four
		// cases cover all fifteen columns.
		switch d := dst.(type) {
		case *[]int32:
			if borrow {
				*d = borrowColumn[int32](payload)
				return nil
			}
			*d, err = decodeColumn[int32](payload)
		case *[]int64:
			if borrow {
				*d = borrowColumn[int64](payload)
				return nil
			}
			*d, err = decodeColumn[int64](payload)
		case *[]int:
			if borrow {
				*d = borrowColumn[int](payload)
				return nil
			}
			*d, err = decodeColumn[int](payload)
		case *[]bool:
			// Validated synchronously, before anything (Validate included)
			// reads through the column: a Go bool must never hold a byte
			// other than 0 or 1.
			if !validBoolBytes(payload) {
				return fmt.Errorf("%w: non-boolean direction byte", ErrSnapshotMalformed)
			}
			if borrow {
				*d = borrowColumn[bool](payload)
				return nil
			}
			*d, err = decodeColumn[bool](payload)
		}
		return err
	}
	var structErr error
	for _, dst := range []any{
		&g.src, &g.dst, &g.ts,
		&g.incOff, &g.incID, &g.incTime, &g.incOther, &g.incOut,
		&g.nbrOff, &g.nbrKey, &g.grpOff, &g.grpID, &g.grpTime, &g.grpOther, &g.grpOut,
	} {
		if structErr = column(dst); structErr != nil {
			break
		}
	}
	if structErr == nil {
		// validateSnapshotGraph never trusts what it reads — every offset
		// is bounded before it is dereferenced — so it is safe on
		// not-yet-checksummed bytes; a corrupted column merely fails it,
		// and the checksum verdict below outranks it anyway.
		if err := validateSnapshotGraph(g); err != nil {
			structErr = fmt.Errorf("%w: %v", ErrSnapshotMalformed, err)
		}
	}
	wg.Wait()
	for _, err := range secErr {
		if err != nil {
			return nil, err
		}
	}
	if structErr != nil {
		return nil, structErr
	}
	if borrow && unmap != nil {
		runtime.AddCleanup(g, func(u func()) { u() }, unmap)
	}
	return g, nil
}
