package temporal

import (
	"math/rand"
	"testing"
)

func TestTimeSlice(t *testing.T) {
	g := FromEdges([]Edge{
		{From: 0, To: 1, Time: 10}, {From: 1, To: 2, Time: 20},
		{From: 2, To: 0, Time: 30}, {From: 0, To: 2, Time: 40},
	})
	s := g.TimeSlice(15, 40)
	if s.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", s.NumEdges())
	}
	if s.Edges()[0].Time != 20 || s.Edges()[1].Time != 30 {
		t.Fatalf("wrong slice: %v", s.Edges())
	}
	if g.TimeSlice(100, 200).NumEdges() != 0 {
		t.Fatal("out-of-range slice should be empty")
	}
	full := g.TimeSlice(0, 1000)
	if full.NumEdges() != g.NumEdges() {
		t.Fatal("full slice lost edges")
	}
}

func TestTimeSlicePreservesTieOrder(t *testing.T) {
	g := FromEdges([]Edge{
		{From: 0, To: 1, Time: 5}, {From: 1, To: 2, Time: 5}, {From: 2, To: 0, Time: 5},
	})
	s := g.TimeSlice(5, 6)
	for i, e := range g.Edges() {
		if s.Edges()[i] != e {
			t.Fatalf("tie order changed at %d", i)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges([]Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2},
		{From: 2, To: 3, Time: 3}, {From: 0, To: 3, Time: 4},
	})
	s := g.InducedSubgraph([]NodeID{0, 1, 2})
	if s.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (0-1 and 1-2)", s.NumEdges())
	}
	if s.Degree(3) != 0 {
		t.Fatal("excluded node has edges")
	}
	if g.InducedSubgraph(nil).NumEdges() != 0 {
		t.Fatal("empty node set should give empty graph")
	}
}

func TestFilterMinDegree(t *testing.T) {
	// Node 0 has degree 3; nodes 1,2,3 have degree 1 each... plus 1-2 edge.
	g := FromEdges([]Edge{
		{From: 0, To: 1, Time: 1}, {From: 0, To: 2, Time: 2},
		{From: 0, To: 3, Time: 3}, {From: 1, To: 2, Time: 4},
	})
	s := g.FilterMinDegree(2)
	// Qualifying nodes: 0 (deg 3), 1 (deg 2), 2 (deg 2); edges among them:
	// 0-1, 0-2, 1-2.
	if s.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", s.NumEdges())
	}
	if s.Degree(3) != 0 {
		t.Fatal("degree-1 node survived")
	}
	if g.FilterMinDegree(100).NumEdges() != 0 {
		t.Fatal("impossible threshold should empty the graph")
	}
}

func TestEgoNetwork(t *testing.T) {
	g := FromEdges([]Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2},
		{From: 2, To: 3, Time: 3}, {From: 1, To: 3, Time: 4},
	})
	ego := g.EgoNetwork(1)
	// Ego of 1: nodes {0,1,2,3}; all edges qualify except none excluded...
	// 2-3 qualifies because both are neighbors of 1.
	if ego.NumEdges() != 4 {
		t.Fatalf("ego edges = %d, want 4", ego.NumEdges())
	}
	// Isolated node's ego is empty.
	iso := g.EgoNetwork(399)
	if iso.NumEdges() != 0 {
		t.Fatal("isolated ego should have no edges")
	}
}

func TestSubgraphValidates(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := randomGraph(r, 20, 300, 100)
	for _, s := range []*Graph{
		g.TimeSlice(20, 80),
		g.InducedSubgraph([]NodeID{1, 3, 5, 7, 9}),
		g.FilterMinDegree(5),
		g.EgoNetwork(2),
	} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
