package temporal

import (
	"runtime"
	"sort"
	"sync"
)

// Parallel graph finalisation: the column-level core behind
// Builder.BuildParallel and the parallel loader. Every stage is a
// deterministic reformulation of Builder.Build — a stable timestamp sort
// via sorted segments merged left-to-right, a counting-sort CSR scatter
// with per-(worker, node) bases, and per-node-range grouped-index
// construction — so the resulting Graph is bit-identical to Build's.

// minParallelBuildEdges is the edge count below which buildColumns runs
// single-threaded; goroutine fan-out costs more than it saves there.
const minParallelBuildEdges = 1 << 13

// BuildParallel is Build with the sort and index construction fanned out
// over `workers` goroutines (0 selects GOMAXPROCS). The resulting graph is
// bit-identical to Build's: same EdgeID assignment, same index layout. Like
// Build, it consumes the Builder, which must not be reused afterwards.
func (b *Builder) BuildParallel(workers int) *Graph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := len(b.edges)
	if workers == 1 || m < minParallelBuildEdges {
		return b.Build()
	}
	src := make([]NodeID, m)
	dst := make([]NodeID, m)
	ts := make([]Timestamp, m)
	parallelRanges(m, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := b.edges[i]
			src[i], dst[i], ts[i] = e.From, e.To, e.Time
		}
	})
	n := 0
	if m > 0 || b.maxNode > 0 {
		n = int(b.maxNode) + 1
	}
	return buildColumns(src, dst, ts, n, b.selfLoops, workers)
}

// buildColumns finalises a Graph from input-order edge columns. src/dst/ts
// are consumed (reordered into the graph). numNodes and selfLoops follow
// Builder semantics: numNodes is maxNode+1 over the kept edges (0 for an
// empty graph), selfLoops the count dropped upstream.
func buildColumns(src, dst []NodeID, ts []Timestamp, numNodes, selfLoops, workers int) *Graph {
	m := len(ts)
	if workers <= 1 || m < minParallelBuildEdges {
		return buildColumnsSeq(src, dst, ts, numNodes, selfLoops)
	}
	if workers > m/4096 {
		workers = max(m/4096, 1)
	}
	return buildColumnsParallel(src, dst, ts, numNodes, selfLoops, workers)
}

// buildColumnsParallel is the parallel core, with no sequential shortcut —
// the tests drive it directly on small inputs.
func buildColumnsParallel(src, dst []NodeID, ts []Timestamp, numNodes, selfLoops, workers int) *Graph {
	m := len(ts)
	n := numNodes
	g := &Graph{numNodes: n, selfLoops: selfLoops}

	// Stable sort by timestamp: sort contiguous segments concurrently by
	// (time, input index) — a total order, so the faster non-stable sort is
	// safe — then merge pairs level by level. A left segment holds only
	// smaller input indices than its right neighbour, so taking the left
	// element on timestamp ties keeps the merge stable.
	perm := make([]int32, m)
	parallelRanges(m, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			perm[i] = int32(i)
		}
	})
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * m / workers
	}
	runConcurrently(workers, func(w int) {
		seg := perm[bounds[w]:bounds[w+1]]
		sort.Slice(seg, func(a, b int) bool {
			ta, tb := ts[seg[a]], ts[seg[b]]
			return ta < tb || (ta == tb && seg[a] < seg[b])
		})
	})
	tmp := make([]int32, m)
	for len(bounds) > 2 {
		pairs := (len(bounds) - 1) / 2
		nb := make([]int, 0, pairs+2)
		nb = append(nb, 0)
		runConcurrently(pairs, func(p int) {
			lo, mid, hi := bounds[2*p], bounds[2*p+1], bounds[2*p+2]
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				a, b := perm[i], perm[j]
				if ts[a] <= ts[b] { // tie → left, preserving input order
					tmp[k] = a
					i++
				} else {
					tmp[k] = b
					j++
				}
				k++
			}
			copy(tmp[k:hi], perm[i:mid])
			copy(tmp[k+(mid-i):hi], perm[j:hi])
		})
		for p := 0; p < pairs; p++ {
			nb = append(nb, bounds[2*p+2])
		}
		if len(bounds)%2 == 0 { // odd segment count: carry the last as is
			copy(tmp[bounds[len(bounds)-2]:], perm[bounds[len(bounds)-2]:])
			nb = append(nb, bounds[len(bounds)-1])
		}
		perm, tmp = tmp, perm
		bounds = nb
	}

	// Scatter the edge columns into EdgeID order.
	g.src = make([]NodeID, m)
	g.dst = make([]NodeID, m)
	g.ts = make([]Timestamp, m)
	parallelRanges(m, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := perm[i]
			g.src[i], g.dst[i], g.ts[i] = src[p], dst[p], ts[p]
		}
	})

	// CSR incident index as a parallel counting sort: per-(worker, node)
	// counts over contiguous EdgeID ranges, then exclusive bases so worker
	// w's half-edges of node u land after workers <w's — which, with each
	// worker scanning its range in order, keeps every span EdgeID-sorted.
	// The scratch is cw*n ints, so cap the stage's worker count at m/n to
	// keep it proportional to the edge storage itself on sparse graphs
	// (where n approaches m); the stage is bandwidth bound, so the extra
	// workers buy little there anyway.
	cw := workers
	if n > 0 && cw > m/n {
		cw = max(m/n, 1)
	}
	h := 2 * m
	ebounds := make([]int, cw+1)
	for w := 0; w <= cw; w++ {
		ebounds[w] = w * m / cw
	}
	cnt := make([]int, cw*n)
	runConcurrently(cw, func(w int) {
		c := cnt[w*n : (w+1)*n]
		for i := ebounds[w]; i < ebounds[w+1]; i++ {
			c[g.src[i]]++
			c[g.dst[i]]++
		}
	})
	g.incOff = make([]int, n+1)
	parallelRanges(n, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			t := 0
			for w := 0; w < cw; w++ {
				t += cnt[w*n+u]
			}
			g.incOff[u+1] = t
		}
	})
	for u := 0; u < n; u++ {
		g.incOff[u+1] += g.incOff[u]
	}
	parallelRanges(n, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			run := g.incOff[u]
			for w := 0; w < cw; w++ {
				c := cnt[w*n+u]
				cnt[w*n+u] = run
				run += c
			}
		}
	})
	g.incID = make([]EdgeID, h)
	g.incTime = make([]Timestamp, h)
	g.incOther = make([]NodeID, h)
	g.incOut = make([]bool, h)
	runConcurrently(cw, func(w int) {
		base := cnt[w*n : (w+1)*n]
		for i := ebounds[w]; i < ebounds[w+1]; i++ {
			id := EdgeID(i)
			u, v, t := g.src[i], g.dst[i], g.ts[i]
			p := base[u]
			base[u]++
			g.incID[p], g.incTime[p], g.incOther[p], g.incOut[p] = id, t, v, true
			p = base[v]
			base[v]++
			g.incID[p], g.incTime[p], g.incOther[p], g.incOut[p] = id, t, u, false
		}
	})

	// Grouped per-pair index, built per node range: each range is a
	// contiguous slice of the half-edge columns, so workers never touch the
	// same cache lines. Ranges are balanced by half-edge count.
	nbounds := nodeRangesByWeight(g.incOff, workers)
	nranges := len(nbounds) - 1
	g.grpID = make([]EdgeID, h)
	g.grpTime = make([]Timestamp, h)
	g.grpOther = make([]NodeID, h)
	g.grpOut = make([]bool, h)
	perm2 := make([]int32, h)
	nbrCnt := make([]int, n)
	runConcurrently(nranges, func(r int) {
		for u := nbounds[r]; u < nbounds[r+1]; u++ {
			lo, hi := g.incOff[u], g.incOff[u+1]
			span := perm2[lo:hi]
			for i := range span {
				span[i] = int32(lo + i)
			}
			sort.SliceStable(span, func(a, b int) bool {
				return g.incOther[span[a]] < g.incOther[span[b]]
			})
			k := 0
			for j := lo; j < hi; j++ {
				p := span[j-lo]
				g.grpID[j] = g.incID[p]
				g.grpTime[j] = g.incTime[p]
				g.grpOther[j] = g.incOther[p]
				g.grpOut[j] = g.incOut[p]
				if j == lo || g.grpOther[j] != g.grpOther[j-1] {
					k++
				}
			}
			nbrCnt[u] = k
		}
	})
	g.nbrOff = make([]int, n+1)
	for u := 0; u < n; u++ {
		g.nbrOff[u+1] = g.nbrOff[u] + nbrCnt[u]
	}
	nk := g.nbrOff[n]
	g.nbrKey = make([]NodeID, nk)
	g.grpOff = make([]int, nk+1)
	runConcurrently(nranges, func(r int) {
		for u := nbounds[r]; u < nbounds[r+1]; u++ {
			k := g.nbrOff[u]
			lo, hi := g.incOff[u], g.incOff[u+1]
			for j := lo; j < hi; j++ {
				if j == lo || g.grpOther[j] != g.grpOther[j-1] {
					g.nbrKey[k] = g.grpOther[j]
					g.grpOff[k] = j
					k++
				}
			}
		}
	})
	g.grpOff[nk] = h
	return g
}

// buildColumnsSeq is buildColumns through the sequential Builder, the
// reference the parallel path must match.
func buildColumnsSeq(src, dst []NodeID, ts []Timestamp, numNodes, selfLoops int) *Graph {
	b := NewBuilder(len(ts))
	for i := range ts {
		b.edges = append(b.edges, Edge{From: src[i], To: dst[i], Time: ts[i]})
	}
	if numNodes > 0 {
		b.maxNode = NodeID(numNodes - 1)
	}
	b.selfLoops = selfLoops
	return b.Build()
}

// nodeRangesByWeight splits [0, n) into up to `workers` contiguous ranges
// of roughly equal half-edge count, using the CSR offsets as weights.
func nodeRangesByWeight(incOff []int, workers int) []int {
	n := len(incOff) - 1
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := []int{0}
	h := incOff[n]
	for w := 1; w < workers; w++ {
		target := w * h / workers
		// first node whose span starts at or after the target weight
		u := sort.SearchInts(incOff, target)
		if u > n {
			u = n
		}
		if u <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, u)
	}
	if bounds[len(bounds)-1] != n {
		bounds = append(bounds, n)
	}
	return bounds
}

// parallelRanges splits [0, n) into contiguous pieces and runs fn on each
// concurrently.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// runConcurrently runs fn(0..k-1) on k goroutines and waits.
func runConcurrently(k int, fn func(i int)) {
	if k <= 1 {
		if k == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
