package temporal

import (
	"cmp"
	"slices"
)

// Rebuilder rebuilds a scratch Graph from an edge slice, reusing every
// column and index allocation across rebuilds. It exists for workloads that
// derive many same-sized graphs from one base graph — null-model ensembles
// permute the ts column or rewire the dst column and recount — where a
// FromEdges call per sample would allocate a full set of columns each time.
//
// The graph returned by Rebuild aliases the Rebuilder's storage: the next
// Rebuild call overwrites it. Callers that need the result to outlive the
// next rebuild must copy it. A Rebuilder must not be shared between
// goroutines; use one per worker.
//
// The zero value is ready to use.
type Rebuilder struct {
	g    *Graph
	perm []int32
	cur  []int
}

// Rebuild sorts edges by time (stably, in place — the caller's slice is
// reordered) and rebuilds the scratch graph from them. Semantics are
// identical to FromEdges: self-loops are counted and dropped, edges with
// negative node IDs are discarded, and the node space is [0, max id + 1).
// The result is bit-identical to FromEdges on the same input.
func (rb *Rebuilder) Rebuild(edges []Edge) *Graph {
	kept := edges[:0]
	selfLoops := 0
	var maxNode NodeID
	for _, e := range edges {
		if e.From < 0 || e.To < 0 {
			continue // Builder.AddEdge rejects these; FromEdges drops them
		}
		if e.From == e.To {
			selfLoops++
			continue
		}
		if e.From > maxNode {
			maxNode = e.From
		}
		if e.To > maxNode {
			maxNode = e.To
		}
		kept = append(kept, e)
	}
	return rb.build(kept, selfLoops, maxNode)
}

// build is the shared core behind Builder.Build and Rebuild: edges must be
// free of self-loops and negative IDs, with maxNode their largest node ID.
// It reuses rb's storage wherever capacities allow.
func (rb *Rebuilder) build(edges []Edge, selfLoops int, maxNode NodeID) *Graph {
	// slices.SortStableFunc rather than sort.SliceStable: same stable
	// ordering, but no reflection swapper, so repeated rebuilds stay
	// allocation free.
	slices.SortStableFunc(edges, func(a, b Edge) int { return cmp.Compare(a.Time, b.Time) })

	m := len(edges)
	n := 0
	if m > 0 || maxNode > 0 {
		n = int(maxNode) + 1
	}
	if rb.g == nil {
		rb.g = &Graph{}
	}
	g := rb.g
	g.numNodes, g.selfLoops = n, selfLoops
	g.edgesAoS.Store(nil) // invalidate the lazy row-major cache

	g.src = grow(g.src, m)
	g.dst = grow(g.dst, m)
	g.ts = grow(g.ts, m)
	for i, e := range edges {
		g.src[i], g.dst[i], g.ts[i] = e.From, e.To, e.Time
	}

	// CSR incident index: count, prefix-sum, scatter. Scattering in EdgeID
	// order leaves every per-node span EdgeID-sorted — i.e. timestamp-sorted
	// with input-order tie-breaking, inherited from the stable sort above.
	h := 2 * m
	g.incOff = grow(g.incOff, n+1)
	clear(g.incOff)
	for i := 0; i < m; i++ {
		g.incOff[g.src[i]+1]++
		g.incOff[g.dst[i]+1]++
	}
	for u := 0; u < n; u++ {
		g.incOff[u+1] += g.incOff[u]
	}
	g.incID = grow(g.incID, h)
	g.incTime = grow(g.incTime, h)
	g.incOther = grow(g.incOther, h)
	g.incOut = grow(g.incOut, h)
	rb.cur = grow(rb.cur, n)
	cur := rb.cur
	copy(cur, g.incOff[:n])
	for i := 0; i < m; i++ {
		id := EdgeID(i)
		u, v, t := g.src[i], g.dst[i], g.ts[i]
		p := cur[u]
		cur[u]++
		g.incID[p], g.incTime[p], g.incOther[p], g.incOut[p] = id, t, v, true
		p = cur[v]
		cur[v]++
		g.incID[p], g.incTime[p], g.incOther[p], g.incOut[p] = id, t, u, false
	}

	// Grouped per-pair index: within each node's incident span, stably
	// re-sort a permutation by neighbor (stability preserves EdgeID order
	// inside each group), gather into the grp columns, then record group
	// boundaries as (neighbor key, offset) pairs.
	rb.perm = grow(rb.perm, h)
	perm := rb.perm
	for i := range perm {
		perm[i] = int32(i)
	}
	for u := 0; u < n; u++ {
		span := perm[g.incOff[u]:g.incOff[u+1]]
		slices.SortStableFunc(span, func(a, b int32) int {
			return cmp.Compare(g.incOther[a], g.incOther[b])
		})
	}
	g.grpID = grow(g.grpID, h)
	g.grpTime = grow(g.grpTime, h)
	g.grpOther = grow(g.grpOther, h)
	g.grpOut = grow(g.grpOut, h)
	for j, p := range perm {
		g.grpID[j] = g.incID[p]
		g.grpTime[j] = g.incTime[p]
		g.grpOther[j] = g.incOther[p]
		g.grpOut[j] = g.incOut[p]
	}
	g.nbrOff = grow(g.nbrOff, n+1)
	g.nbrKey = g.nbrKey[:0]
	g.grpOff = g.grpOff[:0]
	for u := 0; u < n; u++ {
		g.nbrOff[u] = len(g.nbrKey)
		lo, hi := g.incOff[u], g.incOff[u+1]
		for j := lo; j < hi; j++ {
			if j == lo || g.grpOther[j] != g.grpOther[j-1] {
				g.nbrKey = append(g.nbrKey, g.grpOther[j])
				g.grpOff = append(g.grpOff, j)
			}
		}
	}
	g.nbrOff[n] = len(g.nbrKey)
	g.grpOff = append(g.grpOff, h)
	return g
}

// grow returns s resized to n elements, reusing its backing array when the
// capacity allows. Contents are unspecified; callers overwrite or clear.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
