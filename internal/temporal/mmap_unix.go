//go:build unix

package temporal

import (
	"os"
	"syscall"
)

// mmapFile maps a regular file read-only, returning the mapped bytes and an
// unmap function. ok is false when the file is not a regular file or the
// mapping fails — callers fall back to streaming reads. The mapping must be
// released (and every parsed byte copied out) before unmap is called; the
// loader copies all parsed data into the graph's columns, so nothing
// outlives the map.
func mmapFile(f *os.File) (data []byte, unmap func(), ok bool) {
	fi, err := f.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		return nil, nil, false
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, true
	}
	if size != int64(int(size)) {
		return nil, nil, false // larger than the address space
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return b, func() { _ = syscall.Munmap(b) }, true
}
