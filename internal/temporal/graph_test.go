package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildToy(t *testing.T) *Graph {
	t.Helper()
	// The paper's Fig. 1 graph: nodes a=0, b=1, c=2, d=3, e=4.
	edges := []Edge{
		{4, 3, 1},  // e->d 1s
		{0, 2, 4},  // a->c 4s
		{4, 2, 6},  // e->c 6s
		{0, 2, 8},  // a->c 8s
		{3, 0, 9},  // d->a 9s
		{3, 2, 10}, // d->c 10s
		{0, 1, 11}, // a->b 11s
		{3, 4, 14}, // d->e 14s
		{0, 2, 15}, // a->c 15s
		{2, 3, 17}, // c->d 17s
		{4, 3, 18}, // e->d 18s
		{3, 4, 21}, // d->e 21s
	}
	return FromEdges(edges)
}

func TestBuildToyGraph(t *testing.T) {
	g := buildToy(t)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 12 {
		t.Fatalf("NumEdges = %d, want 12", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	min, max, ok := g.TimeSpan()
	if !ok || min != 1 || max != 21 {
		t.Fatalf("TimeSpan = (%d,%d,%v), want (1,21,true)", min, max, ok)
	}
}

func TestSeqMatchesPaperExample(t *testing.T) {
	g := buildToy(t)
	// Paper: S_a = <(4s,c,o),(8s,c,o),(9s,d,in),(11s,b,o),(15s,c,o)>.
	sa := g.Seq(0)
	want := []struct {
		time  Timestamp
		other NodeID
		out   bool
	}{
		{4, 2, true}, {8, 2, true}, {9, 3, false}, {11, 1, true}, {15, 2, true},
	}
	if sa.Len() != len(want) {
		t.Fatalf("len(S_a) = %d, want %d", sa.Len(), len(want))
	}
	for i, w := range want {
		h := sa.At(i)
		if h.Time != w.time || h.Other != w.other || h.Out != w.out {
			t.Errorf("S_a[%d] = (%d,%d,%v), want (%d,%d,%v)", i, h.Time, h.Other, h.Out, w.time, w.other, w.out)
		}
	}
	// Paper: S_e = <(1s,d,o),(6s,c,o),(14s,d,in),(18s,d,o),(21s,d,in)>.
	se := g.Seq(4)
	wantE := []struct {
		time  Timestamp
		other NodeID
		out   bool
	}{
		{1, 3, true}, {6, 2, true}, {14, 3, false}, {18, 3, true}, {21, 3, false},
	}
	if se.Len() != len(wantE) {
		t.Fatalf("len(S_e) = %d, want %d", se.Len(), len(wantE))
	}
	for i, w := range wantE {
		h := se.At(i)
		if h.Time != w.time || h.Other != w.other || h.Out != w.out {
			t.Errorf("S_e[%d] = (%d,%d,%v), want (%d,%d,%v)", i, h.Time, h.Other, h.Out, w.time, w.other, w.out)
		}
	}
}

func TestBetween(t *testing.T) {
	g := buildToy(t)
	// E(c,d) = {(d->c,10s), (c->d,17s)}; relative to c: in then out.
	cd := g.Between(2, 3)
	if cd.Len() != 2 {
		t.Fatalf("len(E(c,d)) = %d, want 2", cd.Len())
	}
	if cd.Time[0] != 10 || cd.Out[0] {
		t.Errorf("E(c,d)[0] = (%d, out=%v), want (10, in)", cd.Time[0], cd.Out[0])
	}
	if cd.Time[1] != 17 || !cd.Out[1] {
		t.Errorf("E(c,d)[1] = (%d, out=%v), want (17, out)", cd.Time[1], cd.Out[1])
	}
	// Symmetric view from d flips directions.
	dc := g.Between(3, 2)
	if dc.Len() != 2 || !dc.Out[0] || dc.Out[1] {
		t.Errorf("E(d,c) directions wrong: %+v", dc)
	}
	if g.Between(0, 4).Len() != 0 {
		t.Errorf("E(a,e) should be empty")
	}
	if g.Between(400, 4).Len() != 0 {
		t.Errorf("out-of-range node should yield an empty view")
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(1, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1, 6); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumEdges() != 1 || g.SelfLoopsDropped() != 1 {
		t.Fatalf("edges=%d loops=%d, want 1/1", g.NumEdges(), g.SelfLoopsDropped())
	}
}

func TestNegativeNodeRejected(t *testing.T) {
	b := NewBuilder(1)
	if err := b.AddEdge(-1, 2, 0); err == nil {
		t.Fatal("want error for negative node id")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(nil)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if _, _, ok := g.TimeSpan(); ok {
		t.Fatal("empty graph should have no time span")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStableTieOrdering(t *testing.T) {
	// Three edges share a timestamp: EdgeIDs must preserve insertion order.
	edges := []Edge{{0, 1, 5}, {1, 2, 5}, {2, 0, 5}, {0, 2, 3}}
	g := FromEdges(edges)
	got := g.Edges()
	if got[0].Time != 3 {
		t.Fatalf("first edge time = %d, want 3", got[0].Time)
	}
	want := []Edge{{0, 1, 5}, {1, 2, 5}, {2, 0, 5}}
	for i, w := range want {
		if got[i+1] != w {
			t.Errorf("edge %d = %v, want %v (stable tie order)", i+1, got[i+1], w)
		}
	}
}

func randomGraph(r *rand.Rand, nodes, edges int, span Timestamp) *Graph {
	b := NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := NodeID(r.Intn(nodes))
		v := NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % NodeID(nodes)
		}
		_ = b.AddEdge(u, v, Timestamp(r.Int63n(int64(span))))
	}
	return b.Build()
}

func TestValidateRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 2+r.Intn(20), r.Intn(200), 50)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 3+r.Intn(30), 1+r.Intn(300), 100)
		sum := 0
		for u := 0; u < g.NumNodes(); u++ {
			sum += g.Degree(NodeID(u))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweenSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 3+r.Intn(15), 1+r.Intn(150), 60)
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			for w := NodeID(0); int(w) < g.NumNodes(); w++ {
				a, b := g.Between(v, w), g.Between(w, v)
				if a.Len() != b.Len() {
					return false
				}
				for i := 0; i < a.Len(); i++ {
					if a.ID[i] != b.ID[i] || a.Out[i] == b.Out[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
