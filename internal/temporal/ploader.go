package temporal

import (
	"fmt"
	"math"
	"runtime"
)

// Parallel edge-list ingestion: newline-aligned chunks parsed concurrently
// by the byte-level fast path (parse.go), per-chunk relabel shards merged
// deterministically in input order, and the CSR build parallelised
// (pbuild.go). The result is bit-identical to the sequential loader — same
// EdgeIDs, same relabel assignment, same self-loop accounting, and the
// same error on the same line number — which the equivalence tests in
// ploader_test.go enforce over the fuzz corpus and randomized inputs.

// loaderChunk is the loader-specific post-processing of a rawChunk, built
// in the parsing worker: range checks applied, self-loops dropped, and in
// relabel mode ids rewritten to chunk-local dense indices with the shard's
// first-appearance list kept for the deterministic merge.
type loaderChunk struct {
	u, v []int32     // kept rows: node ids, or chunk-local indices when relabeling
	t    []Timestamp // kept rows: timestamps

	loops   int32   // self-loop rows dropped in this chunk
	loopsAt []int32 // MaxEdges mode: self-loops preceding each kept row

	newIDs []int64 // relabel shard: first-appearance raw ids, local-index order
	remap  []NodeID

	err     error // range error (non-relabel mode); rows stop before it
	errLine int32 // 1-based line within the chunk of err
}

var errIDOutOfRange = fmt.Errorf("node id out of range (use Relabel)")

// postLoaderChunk turns raw parsed rows into a loaderChunk, mirroring the
// sequential loader's per-line order of operations exactly: relabel (or
// range-check) both endpoints first, then drop self-loops.
func postLoaderChunk(c *rawChunk, opts LoadOptions) {
	lc := &loaderChunk{}
	n := len(c.u)
	lc.u = make([]int32, 0, n)
	lc.v = make([]int32, 0, n)
	lc.t = make([]Timestamp, 0, n)
	if opts.MaxEdges > 0 {
		lc.loopsAt = make([]int32, 0, n)
	}
	if opts.Relabel {
		local := make(map[int64]int32, min(n, 1024))
		assign := func(raw int64) int32 {
			id, ok := local[raw]
			if !ok {
				id = int32(len(lc.newIDs))
				local[raw] = id
				lc.newIDs = append(lc.newIDs, raw)
			}
			return id
		}
		for i := 0; i < n; i++ {
			lu := assign(c.u[i])
			lv := assign(c.v[i])
			if c.u[i] == c.v[i] {
				lc.loops++
				continue
			}
			if opts.MaxEdges > 0 {
				lc.loopsAt = append(lc.loopsAt, lc.loops)
			}
			lc.u = append(lc.u, lu)
			lc.v = append(lc.v, lv)
			lc.t = append(lc.t, c.t[i])
		}
	} else {
		for i := 0; i < n; i++ {
			u64, v64 := c.u[i], c.v[i]
			if u64 < 0 || v64 < 0 || u64 > math.MaxInt32 || v64 > math.MaxInt32 {
				lc.err, lc.errLine = errIDOutOfRange, c.line[i]
				break
			}
			if u64 == v64 {
				lc.loops++
				continue
			}
			if opts.MaxEdges > 0 {
				lc.loopsAt = append(lc.loopsAt, lc.loops)
			}
			lc.u = append(lc.u, int32(u64))
			lc.v = append(lc.v, int32(v64))
			lc.t = append(lc.t, c.t[i])
		}
	}
	c.aux = lc
}

// readEdgeListParallel is ReadEdgeList's parallel path over an arbitrary
// chunk source.
func readEdgeListParallel(src chunkSource, opts LoadOptions, workers int) (*Graph, error) {
	var (
		accepted []*loaderChunk // chunks contributing rows, truncated in place
		baseLine int            // lines before the current chunk
		kept     int            // kept edges so far
		loops    int            // self-loops dropped so far
		relabel  map[int64]NodeID
		next     NodeID
		finalErr error
	)
	if opts.Relabel {
		relabel = make(map[int64]NodeID)
	}

	yield := func(c *rawChunk) bool {
		lc := c.aux.(*loaderChunk)
		rows := len(lc.u)
		if opts.Relabel && len(lc.newIDs) > 0 {
			// Deterministic shard merge: within a chunk, first local
			// appearance equals first appearance in the input scan, so
			// walking shards in chunk order reproduces the sequential
			// assignment exactly.
			lc.remap = make([]NodeID, len(lc.newIDs))
			for i, raw := range lc.newIDs {
				id, ok := relabel[raw]
				if !ok {
					id = next
					relabel[raw] = id
					next++
				}
				lc.remap[i] = id
			}
		}
		if opts.MaxEdges > 0 && kept+rows >= opts.MaxEdges {
			// The sequential loader stops at the line holding the
			// MaxEdges-th kept edge: later rows, later self-loops, and any
			// error on a later line are never observed.
			take := opts.MaxEdges - kept
			lc.u, lc.v, lc.t = lc.u[:take], lc.v[:take], lc.t[:take]
			loops += int(lc.loopsAt[take-1])
			kept += take
			accepted = append(accepted, lc)
			return false
		}
		kept += rows
		loops += int(lc.loops)
		if rows > 0 {
			accepted = append(accepted, lc)
		}
		if lc.err != nil {
			finalErr = fmt.Errorf("temporal: line %d: %v", baseLine+int(lc.errLine), lc.err)
			return false
		}
		if c.err != nil {
			if c.errRead {
				finalErr = fmt.Errorf("temporal: line %d: read: %v", baseLine+c.errLine, c.err)
			} else {
				finalErr = fmt.Errorf("temporal: line %d: %v", baseLine+c.errLine, c.err)
			}
			return false
		}
		baseLine += c.lines
		return true
	}
	post := func(c *rawChunk) { postLoaderChunk(c, opts) }
	if err := forEachChunk(src, opts.Comma, workers, post, yield); err != nil {
		return nil, fmt.Errorf("temporal: line %d: read: %v", baseLine+1, err)
	}
	if finalErr != nil {
		return nil, finalErr
	}

	// Assemble the input-order edge columns from the accepted chunks in
	// parallel, translating relabel-mode local indices through each shard's
	// merged remap.
	src32 := make([]NodeID, kept)
	dst32 := make([]NodeID, kept)
	ts := make([]Timestamp, kept)
	offs := make([]int, len(accepted)+1)
	for i, lc := range accepted {
		offs[i+1] = offs[i] + len(lc.u)
	}
	maxPer := make([]NodeID, len(accepted))
	parallelRanges(len(accepted), workers, func(clo, chi int) {
		for ci := clo; ci < chi; ci++ {
			lc := accepted[ci]
			o := offs[ci]
			var maxNode NodeID = -1
			if opts.Relabel {
				for i := range lc.u {
					u, v := lc.remap[lc.u[i]], lc.remap[lc.v[i]]
					src32[o+i], dst32[o+i] = u, v
					maxNode = max(maxNode, u, v)
				}
			} else {
				copy(src32[o:], lc.u)
				copy(dst32[o:], lc.v)
				for i := range lc.u {
					maxNode = max(maxNode, lc.u[i], lc.v[i])
				}
			}
			copy(ts[o:], lc.t)
			maxPer[ci] = maxNode
		}
	})
	var maxNode NodeID = -1
	for _, mn := range maxPer {
		maxNode = max(maxNode, mn)
	}
	n := 0
	if kept > 0 {
		n = int(maxNode) + 1
	}
	return buildColumns(src32, dst32, ts, n, loops, workers), nil
}

// loadWorkers resolves LoadOptions.Workers: 0 selects GOMAXPROCS, anything
// below 2 means the sequential reference path.
func (o LoadOptions) loadWorkers() int {
	w := o.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}
