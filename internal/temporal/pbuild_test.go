package temporal

import (
	"math/rand"
	"slices"
	"testing"
)

// graphsEqual asserts a and b are bit-identical: every column, every index,
// every counter. This is the loader/build equivalence contract — EdgeIDs,
// relabel assignment, and index layouts must match exactly, not just the
// logical edge multiset.
func graphsEqual(t *testing.T, ctx string, a, b *Graph) {
	t.Helper()
	if a.numNodes != b.numNodes {
		t.Fatalf("%s: numNodes %d != %d", ctx, a.numNodes, b.numNodes)
	}
	if a.selfLoops != b.selfLoops {
		t.Fatalf("%s: selfLoops %d != %d", ctx, a.selfLoops, b.selfLoops)
	}
	if !slices.Equal(a.src, b.src) || !slices.Equal(a.dst, b.dst) || !slices.Equal(a.ts, b.ts) {
		t.Fatalf("%s: edge columns differ", ctx)
	}
	if !slices.Equal(a.incOff, b.incOff) || !slices.Equal(a.incID, b.incID) ||
		!slices.Equal(a.incTime, b.incTime) || !slices.Equal(a.incOther, b.incOther) ||
		!slices.Equal(a.incOut, b.incOut) {
		t.Fatalf("%s: incident index differs", ctx)
	}
	if !slices.Equal(a.nbrOff, b.nbrOff) || !slices.Equal(a.nbrKey, b.nbrKey) ||
		!slices.Equal(a.grpOff, b.grpOff) || !slices.Equal(a.grpID, b.grpID) ||
		!slices.Equal(a.grpTime, b.grpTime) || !slices.Equal(a.grpOther, b.grpOther) ||
		!slices.Equal(a.grpOut, b.grpOut) {
		t.Fatalf("%s: grouped index differs", ctx)
	}
}

// randomEdges draws m edges over n nodes with ts collisions (small time
// range) and a few self-loops, the shapes that stress stable ordering.
func randomEdges(rng *rand.Rand, n, m, tspan int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if rng.Intn(20) == 0 {
			v = u // self-loop
		}
		edges[i] = Edge{From: u, To: v, Time: Timestamp(rng.Intn(tspan))}
	}
	return edges
}

func hubEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		u := NodeID(0) // hub
		if rng.Intn(4) == 0 {
			u = NodeID(rng.Intn(n))
		}
		edges[i] = Edge{From: u, To: NodeID(rng.Intn(n)), Time: Timestamp(rng.Intn(50))}
	}
	return edges
}

func TestBuildParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name  string
		edges []Edge
	}{
		{"empty", nil},
		{"single", []Edge{{0, 1, 5}}},
		{"selfloops-only", []Edge{{3, 3, 1}, {2, 2, 2}}},
		{"small", randomEdges(rng, 10, 40, 5)},
		{"uniform", randomEdges(rng, 200, 20000, 100)},
		{"ties", randomEdges(rng, 50, 20000, 3)},
		{"hub", hubEdges(rng, 300, 20000)},
	}
	for _, tc := range cases {
		want := FromEdges(tc.edges)
		for _, w := range []int{2, 3, 8} {
			b := NewBuilder(len(tc.edges))
			for _, e := range tc.edges {
				_ = b.AddEdge(e.From, e.To, e.Time)
			}
			got := b.BuildParallel(w)
			graphsEqual(t, tc.name, want, got)
			if err := got.Validate(); err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
		}
	}
}

// TestBuildColumnsParallelForced drives the parallel build core directly so
// the minParallelBuildEdges shortcut cannot hide it on small inputs.
func TestBuildColumnsParallelForced(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		m := rng.Intn(300)
		var src, dst []NodeID
		var ts []Timestamp
		maxNode := NodeID(-1)
		b := NewBuilder(m)
		for i := 0; i < m; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u == v {
				v = (v + 1) % NodeID(n) // keep columns self-loop free, as the loader does
				if u == v {
					continue
				}
			}
			tt := Timestamp(rng.Intn(7))
			src, dst, ts = append(src, u), append(dst, v), append(ts, tt)
			maxNode = max(maxNode, u, v)
			_ = b.AddEdge(u, v, tt)
		}
		numNodes := 0
		if len(ts) > 0 {
			numNodes = int(maxNode) + 1
		}
		want := b.Build()
		for _, w := range []int{2, 5} {
			s2 := slices.Clone(src)
			d2 := slices.Clone(dst)
			t2 := slices.Clone(ts)
			got := buildColumnsParallel(s2, d2, t2, numNodes, 0, w)
			graphsEqual(t, "forced", want, got)
		}
	}
}
