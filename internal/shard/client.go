package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Policy bounds one sub-request's delivery: per-attempt timeout, how many
// extra attempts to make (each on the next peer in rotation, after a
// doubling backoff), and how long to wait on a straggling attempt before
// hedging a duplicate to the next peer. The zero value selects the
// defaults; HedgeAfter stays disabled unless set.
type Policy struct {
	// Timeout bounds each attempt (default 30s).
	Timeout time.Duration
	// Retries is the number of additional attempts after the first
	// (0 = default 2; negative = no retries).
	Retries int
	// Backoff is the pause before the first retry, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// HedgeAfter launches a duplicate attempt on the next peer when the
	// current one has not answered in this long; the first answer wins
	// (0 = no hedging). Safe at any setting: the gather is idempotent.
	HedgeAfter time.Duration
}

func (p Policy) timeout() time.Duration {
	if p.Timeout > 0 {
		return p.Timeout
	}
	return 30 * time.Second
}

func (p Policy) retries() int {
	if p.Retries < 0 {
		return 0
	}
	if p.Retries == 0 {
		return 2
	}
	return p.Retries
}

func (p Policy) backoff() time.Duration {
	if p.Backoff > 0 {
		return p.Backoff
	}
	return 50 * time.Millisecond
}

// PermanentError marks a sub-request failure retrying cannot fix — the
// worker understood the request and rejected it (4xx): malformed sub,
// unknown dataset, graph-shape mismatch (409), protocol version refusal
// (426). The scatter fails fast instead of burning the retry budget.
type PermanentError struct {
	Status int
	Msg    string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("shard: peer rejected sub-request (HTTP %d): %s", e.Status, e.Msg)
}

// Client scatters sub-requests across a fixed peer list. Safe for
// concurrent use.
type Client struct {
	peers   []string
	http    *http.Client
	policy  Policy
	metrics *Metrics
}

// NewClient returns a scatter client over the given worker base URLs
// (e.g. "http://10.0.0.2:8315"; a missing scheme defaults to http://).
// metrics may be nil.
func NewClient(peers []string, policy Policy, metrics *Metrics) (*Client, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("shard: no peers")
	}
	norm := make([]string, len(peers))
	for i, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			return nil, fmt.Errorf("shard: empty peer address")
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		if u, err := url.Parse(p); err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("shard: invalid peer address %q", peers[i])
		}
		norm[i] = p
	}
	if metrics == nil {
		metrics = NewMetrics()
	}
	return &Client{
		peers:   norm,
		http:    &http.Client{},
		policy:  policy,
		metrics: metrics,
	}, nil
}

// Peers returns the normalized peer base URLs.
func (c *Client) Peers() []string { return c.peers }

// Metrics returns the client's scatter counters.
func (c *Client) Metrics() *Metrics { return c.metrics }

// task is one sub-request plus its home peer (the first peer tried;
// retries and hedges rotate onward from it).
type task struct {
	sub  SubRequest
	home int
}

// scatter delivers every task concurrently and gathers the partials.
// It returns a loud error naming the failed shards if any task exhausts
// its attempts — partial answers are never silently served as whole ones.
func (c *Client) scatter(ctx context.Context, tasks []task) (*Gather, error) {
	g := NewGather(tasks[0].sub.Kind, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.do(ctx, tasks[i].home, tasks[i].sub)
			if err != nil {
				errs[i] = err
				return
			}
			if err := g.Add(p); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	var failed []string
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Sprintf("shard %d: %v", tasks[i].sub.Shard, err))
		}
	}
	if len(failed) > 0 {
		c.metrics.failure(string(tasks[0].sub.Kind), len(failed))
		return nil, fmt.Errorf("shard: %s scatter degraded, %d/%d shard(s) failed: %s",
			tasks[0].sub.Kind, len(failed), len(tasks), strings.Join(failed, "; "))
	}
	return g, nil
}

// do delivers one sub-request: up to 1+Retries attempts, attempt a going
// to peer (home+a) mod len(peers) after a doubling backoff, each attempt
// individually timed out and optionally hedged. Permanent (4xx)
// rejections abort immediately.
func (c *Client) do(ctx context.Context, home int, sub SubRequest) (*Partial, error) {
	kind := string(sub.Kind)
	backoff := c.policy.backoff()
	retries := c.policy.retries()
	var lastErr error
	for a := 0; a <= retries; a++ {
		if a > 0 {
			c.metrics.retry(kind)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		p, err := c.attempt(ctx, (home+a)%len(c.peers), sub)
		if err == nil {
			return p, nil
		}
		var pe *PermanentError
		if errors.As(err, &pe) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%d attempt(s) exhausted: %w", retries+1, lastErr)
}

// attempt runs one timed attempt against peer, hedging a duplicate to the
// next peer if the policy's hedge delay expires first. The first success
// wins; a permanent rejection from either copy wins over waiting.
func (c *Client) attempt(ctx context.Context, peer int, sub SubRequest) (*Partial, error) {
	actx, cancel := context.WithTimeout(ctx, c.policy.timeout())
	defer cancel()
	type outcome struct {
		p   *Partial
		err error
	}
	ch := make(chan outcome, 2)
	post := func(pi int) {
		p, err := c.post(actx, pi, sub)
		ch <- outcome{p, err}
	}
	go post(peer)
	inflight := 1
	var hedge <-chan time.Time
	if c.policy.HedgeAfter > 0 && len(c.peers) > 1 {
		hedge = time.After(c.policy.HedgeAfter)
	}
	var firstErr error
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				return o.p, nil
			}
			var pe *PermanentError
			if errors.As(o.err, &pe) {
				return nil, o.err
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inflight--; inflight == 0 {
				return nil, firstErr
			}
		case <-hedge:
			hedge = nil
			c.metrics.hedge(string(sub.Kind))
			go post((peer + 1) % len(c.peers))
			inflight++
		case <-actx.Done():
			if firstErr != nil {
				return nil, firstErr
			}
			return nil, actx.Err()
		}
	}
}

// post performs the raw HTTP exchange with one peer and classifies the
// failure modes: transport errors and 5xx are retryable, other non-2xx
// are permanent, and a proto/shard mismatch in an otherwise-OK body is
// permanent (the fleet is misconfigured, not flaky).
func (c *Client) post(ctx context.Context, peer int, sub SubRequest) (*Partial, error) {
	body, err := json.Marshal(&sub)
	if err != nil {
		return nil, &PermanentError{Status: 0, Msg: err.Error()}
	}
	url := c.peers[peer] + PathCompute
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, &PermanentError{Status: 0, Msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.http.Do(req)
	c.metrics.observe(string(sub.Kind), peer, c.peers[peer], time.Since(start), err != nil)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", c.peers[peer], err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("peer %s: reading response: %w", c.peers[peer], err)
	}
	if resp.StatusCode != http.StatusOK {
		var we wireError
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &we) == nil && we.Error != "" {
			msg = we.Error
		}
		if resp.StatusCode >= 500 {
			return nil, fmt.Errorf("peer %s: HTTP %d: %s", c.peers[peer], resp.StatusCode, msg)
		}
		return nil, &PermanentError{Status: resp.StatusCode, Msg: fmt.Sprintf("peer %s: %s", c.peers[peer], msg)}
	}
	var p Partial
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("peer %s: decoding partial: %w", c.peers[peer], err)
	}
	if p.Proto != ProtoVersion {
		return nil, &PermanentError{Status: 0, Msg: fmt.Sprintf("peer %s answered proto %d, want %d", c.peers[peer], p.Proto, ProtoVersion)}
	}
	if p.Shard != sub.Shard {
		return nil, &PermanentError{Status: 0, Msg: fmt.Sprintf("peer %s answered shard %d, want %d", c.peers[peer], p.Shard, sub.Shard)}
	}
	return &p, nil
}
