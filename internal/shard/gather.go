package shard

import (
	"fmt"
	"sync"

	"hare/internal/approx"
	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/nullmodel"
	"hare/internal/server"
)

// Gather accumulates partial answers for one scatter plan, keyed by shard
// index. It is idempotent under the delivery anomalies retries and hedges
// produce — duplicates, reordering, a late straggler answering after its
// hedge already landed: the first partial accepted for a shard wins and
// every later delivery for that index is dropped. Merge order is fixed by
// shard index, never by arrival order, so the assembled answer is a pure
// function of the plan.
type Gather struct {
	mu    sync.Mutex
	kind  server.Kind
	parts []*Partial
	have  int
}

// NewGather returns an empty gather for a plan of `shards` partials of
// one kind.
func NewGather(kind server.Kind, shards int) *Gather {
	return &Gather{kind: kind, parts: make([]*Partial, shards)}
}

// Add offers one partial. Duplicates for an already-filled shard index
// are silently dropped (idempotent delivery); a partial that cannot
// belong to the plan — wrong kind, shard index out of range, or missing
// its kind's payload — is an error.
func (g *Gather) Add(p *Partial) error {
	if p == nil {
		return fmt.Errorf("shard: nil partial")
	}
	if p.Kind != g.kind {
		return fmt.Errorf("shard: partial kind %q in a %q gather", p.Kind, g.kind)
	}
	if p.Shard < 0 || p.Shard >= len(g.parts) {
		return fmt.Errorf("shard: partial for shard %d, plan has %d", p.Shard, len(g.parts))
	}
	var ok bool
	switch g.kind {
	case server.KindCount:
		ok = p.Count != nil
	case server.KindStar4:
		ok = p.Star4 != nil
	case server.KindPath4:
		ok = p.Path4 != nil
	case server.KindSig:
		ok = p.Sig != nil
	case server.KindQuery:
		ok = p.Query != nil
	case KindStar4Approx, KindPath4Approx, KindQueryApprox:
		ok = p.Approx != nil
	}
	if !ok {
		return fmt.Errorf("shard: partial for shard %d carries no %s payload", p.Shard, g.kind)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.parts[p.Shard] == nil {
		g.parts[p.Shard] = p
		g.have++
	}
	return nil
}

// Complete reports whether every shard has answered.
func (g *Gather) Complete() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.have == len(g.parts)
}

// Missing lists the shard indices still unanswered, in order.
func (g *Gather) Missing() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []int
	for i, p := range g.parts {
		if p == nil {
			out = append(out, i)
		}
	}
	return out
}

// incomplete returns the loud error for a gather with holes.
func (g *Gather) incomplete() error {
	return fmt.Errorf("shard: %s gather incomplete: missing shards %v", g.kind, g.Missing())
}

// MergeStar4 sums the per-range Star4Counters in shard order. The cells
// are exact uint64 tallies over disjoint center ranges, so the sum equals
// the single-node counter bit for bit.
func (g *Gather) MergeStar4() (higher.Star4Counter, error) {
	var total higher.Star4Counter
	if !g.Complete() {
		return total, g.incomplete()
	}
	for _, p := range g.parts {
		total.Add(p.Star4)
	}
	return total, nil
}

// MergePath4 sums the per-range PathCounters in shard order; exact for
// the same reason as MergeStar4 (disjoint middle-edge ranges).
func (g *Gather) MergePath4() (higher.PathCounter, error) {
	var total higher.PathCounter
	if !g.Complete() {
		return total, g.incomplete()
	}
	for _, p := range g.parts {
		total.Add(p.Path4)
	}
	return total, nil
}

// MergeCount returns the single count partial as a server.CountAnswer (a
// count plan always has exactly one shard).
func (g *Gather) MergeCount() (server.CountAnswer, error) {
	if !g.Complete() {
		return server.CountAnswer{}, g.incomplete()
	}
	c := g.parts[0].Count
	return server.CountAnswer{Matrix: c.Matrix, Workers: c.Workers, DegreeThreshold: c.DegreeThreshold}, nil
}

// MergeQuery sums the per-range spec counts in shard order. Each instance
// has a unique pivot ID (center node or pivot edge), so partial counts
// over disjoint ranges sum — exactly, as uint64 tallies — to the
// single-node answer.
func (g *Gather) MergeQuery() (uint64, error) {
	if !g.Complete() {
		return 0, g.incomplete()
	}
	var total uint64
	for _, p := range g.parts {
		total += *p.Query
	}
	return total, nil
}

// MergeApprox concatenates the per-stratum moments in shard order —
// recovering exactly the stratum order a single process would have
// produced, because the scatter ranges are contiguous and ascending — and
// finishes against the coordinator's plan. Finish re-validates every
// stratum's draw count and exactness against the plan, so a worker whose
// replica rebuilt a different plan fails the merge loudly instead of
// contributing silently-wrong moments.
func (g *Gather) MergeApprox(plan *approx.Plan) (*approx.Result, error) {
	if !g.Complete() {
		return nil, g.incomplete()
	}
	var moments []approx.Moments
	for _, p := range g.parts {
		moments = append(moments, p.Approx...)
	}
	return approx.Finish(plan, moments)
}

// MergeSig concatenates the raw per-sample matrices in shard order —
// recovering exactly the sample-index order a single process would have
// observed, because the plan's ranges are contiguous and ascending — and
// folds them through the deterministic Welford chunk tree. The resulting
// report is bit-identical to a local nullmodel Ensemble.Run with the same
// model, seed and total sample count.
func (g *Gather) MergeSig(model nullmodel.Model, real motif.Matrix, workers int) (*nullmodel.Report, error) {
	if !g.Complete() {
		return nil, g.incomplete()
	}
	var samples []motif.Matrix
	for _, p := range g.parts {
		samples = append(samples, p.Sig...)
	}
	return nullmodel.ReportFromSamples(model, real, samples, workers)
}
