package shard

// Fault-injection tests for the scatter client: dead, hanging and
// misbehaving workers, exercised through the Coordinator so the
// failure-handling the serving path relies on is what is tested —
// retry-with-rotation rescues a query when a healthy peer remains, a
// straggler is hedged around, permanent rejections fail fast, and a fully
// failed scatter degrades loudly instead of answering partially.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hare/internal/approx"
	"hare/internal/engine"
	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/nullmodel"
	"hare/internal/server"
	"hare/internal/temporal"
)

// fakeSource serves one fixed graph under one name.
type fakeSource struct {
	name string
	g    *temporal.Graph
}

func (f *fakeSource) Preload(name string) (*temporal.Graph, error) {
	if name != f.name {
		return nil, &server.UnknownDatasetError{Name: name}
	}
	return f.g, nil
}

func (f *fakeSource) Datasets() []server.DatasetInfo {
	return []server.DatasetInfo{{Name: f.name, Loaded: true}}
}

// countBackend is the minimal count implementation a test worker needs.
type countBackend struct{}

func (countBackend) Count(_ context.Context, g *temporal.Graph, req server.Request) (server.CountAnswer, error) {
	eo := engine.Options{Workers: req.Workers}
	return server.CountAnswer{
		Matrix:          engine.Count(g, temporal.Timestamp(req.Delta), eo).ToMatrix(),
		Workers:         req.Workers,
		DegreeThreshold: engine.EffectiveDegreeThreshold(g, eo),
	}, nil
}

func (countBackend) Star4(context.Context, *temporal.Graph, server.Request) (higher.Star4Counter, error) {
	return higher.Star4Counter{}, errors.New("unused")
}

func (countBackend) Path4(context.Context, *temporal.Graph, server.Request) (higher.PathCounter, error) {
	return higher.PathCounter{}, errors.New("unused")
}

func (countBackend) Significance(context.Context, *temporal.Graph, server.Request) (*nullmodel.Report, error) {
	return nil, errors.New("unused")
}

func (countBackend) Query(context.Context, *temporal.Graph, server.Request) (uint64, error) {
	return 0, errors.New("unused")
}

func (countBackend) Star4Approx(context.Context, *temporal.Graph, server.Request) (*approx.Result, error) {
	return nil, errors.New("unused")
}

func (countBackend) Path4Approx(context.Context, *temporal.Graph, server.Request) (*approx.Result, error) {
	return nil, errors.New("unused")
}

func (countBackend) QueryApprox(context.Context, *temporal.Graph, server.Request) (*approx.Result, error) {
	return nil, errors.New("unused")
}

// liveWorker boots a real shard worker over g.
func liveWorker(t *testing.T, g *temporal.Graph) *httptest.Server {
	t.Helper()
	w := &Worker{Graphs: &fakeSource{name: "d", g: g}, Backend: countBackend{}, Version: "test"}
	hs := httptest.NewServer(w.Handler())
	t.Cleanup(hs.Close)
	return hs
}

func starReq() server.Request {
	return server.Request{Kind: server.KindStar4, Dataset: "d", Delta: 600, Workers: 2}
}

// TestRetryRotatesPastDeadWorker: one peer answers 500, its shard retries
// onto the healthy peer and the query still returns the exact counter.
func TestRetryRotatesPastDeadWorker(t *testing.T) {
	g := shardTestGraph(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "injected crash", http.StatusInternalServerError)
	}))
	defer dead.Close()
	live := liveWorker(t, g)

	m := NewMetrics()
	client, err := NewClient([]string{dead.URL, live.URL}, Policy{Timeout: 5 * time.Second, Retries: 2, Backoff: time.Millisecond}, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewCoordinator(client).Star4(context.Background(), g, starReq())
	if err != nil {
		t.Fatal(err)
	}
	want := higher.CountStar4(g, 600, higher.Options{Workers: 2})
	if got != want {
		t.Fatalf("degraded-fleet counter diverges from single-node count")
	}
	retries, _, failures := m.Snapshot()
	if retries == 0 {
		t.Error("no retries recorded despite a dead peer")
	}
	if failures != 0 {
		t.Errorf("failures = %d, want 0 (the retry rescued the shard)", failures)
	}
}

// TestTimeoutThenRetry: a worker that hangs past the per-attempt timeout
// is abandoned and its shard retried on the healthy peer.
func TestTimeoutThenRetry(t *testing.T) {
	g := shardTestGraph(t)
	done := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Never answers: the client abandons the attempt at its timeout.
		// (done unblocks the handler at test end so Close can return.)
		select {
		case <-done:
		case <-r.Context().Done():
		}
	}))
	defer hang.Close()
	defer close(done)
	live := liveWorker(t, g)

	m := NewMetrics()
	client, err := NewClient([]string{hang.URL, live.URL},
		Policy{Timeout: 150 * time.Millisecond, Retries: 1, Backoff: time.Millisecond}, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewCoordinator(client).Star4(context.Background(), g, starReq())
	if err != nil {
		t.Fatal(err)
	}
	if want := higher.CountStar4(g, 600, higher.Options{Workers: 2}); got != want {
		t.Fatal("counter diverges after timeout+retry")
	}
	if retries, _, _ := m.Snapshot(); retries == 0 {
		t.Error("no retries recorded despite a hanging peer")
	}
}

// TestHedgeBeatsStraggler: the straggling shard is duplicated onto the
// next peer after HedgeAfter and the fast copy's answer wins, well before
// the straggler's own timeout.
func TestHedgeBeatsStraggler(t *testing.T) {
	g := shardTestGraph(t)
	live := liveWorker(t, g)
	var delayed atomic.Int64
	done := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delayed.Add(1)
		select {
		case <-done: // straggles until the test ends
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(done)

	m := NewMetrics()
	client, err := NewClient([]string{slow.URL, live.URL},
		Policy{Timeout: 30 * time.Second, Retries: 0, Backoff: time.Millisecond, HedgeAfter: 50 * time.Millisecond}, m)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := NewCoordinator(client).Star4(context.Background(), g, starReq())
	if err != nil {
		t.Fatal(err)
	}
	if want := higher.CountStar4(g, 600, higher.Options{Workers: 2}); got != want {
		t.Fatal("counter diverges after hedged dispatch")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedge did not rescue the straggler (took %v)", elapsed)
	}
	if _, hedges, _ := m.Snapshot(); hedges == 0 {
		t.Error("no hedges recorded despite a straggling peer")
	}
	if delayed.Load() == 0 {
		t.Error("straggler was never consulted — hedge test exercised nothing")
	}
}

// TestAllPeersDownDegradesLoudly: when every attempt fails the scatter
// errors naming the lost shards; no partial counter is ever returned.
func TestAllPeersDownDegradesLoudly(t *testing.T) {
	g := shardTestGraph(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()

	m := NewMetrics()
	client, err := NewClient([]string{dead.URL, dead.URL},
		Policy{Timeout: time.Second, Retries: 1, Backoff: time.Millisecond}, m)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewCoordinator(client).Star4(context.Background(), g, starReq())
	if err == nil {
		t.Fatal("fully dead fleet still answered")
	}
	for _, want := range []string{"scatter degraded", "shard"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if _, _, failures := m.Snapshot(); failures == 0 {
		t.Error("degraded scatter not counted in metrics")
	}
}

// TestPermanentRejectionsFailFast: 4xx answers (proto mismatch, shape
// mismatch, unknown dataset) abort without retries.
func TestPermanentRejectionsFailFast(t *testing.T) {
	g := shardTestGraph(t)
	live := liveWorker(t, g)
	m := NewMetrics()
	client, err := NewClient([]string{live.URL}, Policy{Timeout: time.Second, Retries: 3, Backoff: time.Millisecond}, m)
	if err != nil {
		t.Fatal(err)
	}

	base := SubRequest{
		Proto: ProtoVersion, Kind: server.KindStar4, Dataset: "d", Delta: 600,
		Shard: 0, Shards: 1, Lo: 0, Hi: g.NumNodes(),
		Nodes: g.NumNodes(), Edges: g.NumEdges(), Workers: 1,
	}
	cases := []struct {
		name   string
		mutate func(*SubRequest)
		status int
	}{
		{"proto mismatch", func(s *SubRequest) { s.Proto = ProtoVersion + 1 }, http.StatusUpgradeRequired},
		{"shape mismatch", func(s *SubRequest) { s.Nodes++ }, http.StatusConflict},
		{"unknown dataset", func(s *SubRequest) { s.Dataset = "nope" }, http.StatusNotFound},
		{"bad range", func(s *SubRequest) { s.Lo, s.Hi = 5, 2 }, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sub := base
			tc.mutate(&sub)
			before, _, _ := m.Snapshot()
			_, err := client.do(context.Background(), 0, sub)
			var pe *PermanentError
			if !errors.As(err, &pe) {
				t.Fatalf("want PermanentError, got %v", err)
			}
			if pe.Status != tc.status {
				t.Fatalf("status = %d, want %d (%v)", pe.Status, tc.status, err)
			}
			if after, _, _ := m.Snapshot(); after != before {
				t.Errorf("permanent rejection consumed %d retries", after-before)
			}
		})
	}
}

// TestWorkerComputeMatchesLibrary: a worker's partials for full ranges
// equal direct library calls — the worker-side half of the bit-identity
// argument, without the coordinator in the loop.
func TestWorkerComputeMatchesLibrary(t *testing.T) {
	g := shardTestGraph(t)
	live := liveWorker(t, g)
	client, err := NewClient([]string{live.URL}, Policy{Timeout: 10 * time.Second, Retries: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(client)
	ctx := context.Background()

	star, err := co.Star4(ctx, g, starReq())
	if err != nil {
		t.Fatal(err)
	}
	if want := higher.CountStar4(g, 600, higher.Options{Workers: 2}); star != want {
		t.Error("star4 diverges")
	}
	path, err := co.Path4(ctx, g, server.Request{Kind: server.KindPath4, Dataset: "d", Delta: 600, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := higher.CountPath4(g, 600, higher.Options{Workers: 2}); path != want {
		t.Error("path4 diverges")
	}
	ans, err := co.Count(ctx, g, server.Request{Kind: server.KindCount, Dataset: "d", Delta: 600, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eo := engine.Options{Workers: 2}
	if want := engine.Count(g, 600, eo).ToMatrix(); ans.Matrix != want {
		t.Error("count matrix diverges")
	}
	var _ motif.Matrix = ans.Matrix
}
