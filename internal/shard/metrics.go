package shard

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Metrics counts the coordinator side of the scatter/gather tier. A
// coordinator hared appends these to its Prometheus /metrics text; all
// methods are safe for concurrent use and a nil-safe zero is available
// via NewMetrics.
type Metrics struct {
	mu sync.Mutex
	// per (kind, peer): sub-request attempts and latency
	attempts map[string]*peerStat
	// per kind: retries, hedges, scatters that failed shards
	retries  map[string]uint64
	hedges   map[string]uint64
	failures map[string]uint64
	// failedShards accumulates the total shard count lost across degraded
	// scatters (a 4-shard plan losing 2 adds 2).
	failedShards uint64
}

type peerStat struct {
	count      uint64
	errors     uint64
	latencySum float64 // seconds
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		attempts: make(map[string]*peerStat),
		retries:  make(map[string]uint64),
		hedges:   make(map[string]uint64),
		failures: make(map[string]uint64),
	}
}

func key(kind, peer string) string { return kind + "\x00" + peer }

// observe records one sub-request attempt against a peer.
func (m *Metrics) observe(kind string, peerIdx int, peer string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := key(kind, peer)
	st := m.attempts[k]
	if st == nil {
		st = &peerStat{}
		m.attempts[k] = st
	}
	st.count++
	if failed {
		st.errors++
	}
	st.latencySum += d.Seconds()
}

// retry records one retry attempt for a kind.
func (m *Metrics) retry(kind string) {
	m.mu.Lock()
	m.retries[kind]++
	m.mu.Unlock()
}

// hedge records one hedged duplicate dispatch for a kind.
func (m *Metrics) hedge(kind string) {
	m.mu.Lock()
	m.hedges[kind]++
	m.mu.Unlock()
}

// failure records one degraded scatter (lost shard count attached).
func (m *Metrics) failure(kind string, shards int) {
	m.mu.Lock()
	m.failures[kind]++
	m.failedShards += uint64(shards)
	m.mu.Unlock()
}

// Snapshot returns the total retries, hedges and degraded scatters across
// all kinds (for tests and load reports).
func (m *Metrics) Snapshot() (retries, hedges, failures uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range m.retries {
		retries += v
	}
	for _, v := range m.hedges {
		hedges += v
	}
	for _, v := range m.failures {
		failures += v
	}
	return
}

// Write renders the counters in Prometheus text exposition format, in
// deterministic label order. The coordinator appends this to the serving
// layer's /metrics output.
func (m *Metrics) Write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP hared_shard_requests_total Sub-request attempts sent to shard workers.\n")
	fmt.Fprintf(w, "# TYPE hared_shard_requests_total counter\n")
	keys := make([]string, 0, len(m.attempts))
	for k := range m.attempts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		kind, peer := split(k)
		fmt.Fprintf(w, "hared_shard_requests_total{kind=%q,peer=%q} %d\n", kind, peer, m.attempts[k].count)
	}
	fmt.Fprintf(w, "# HELP hared_shard_request_errors_total Sub-request attempts that failed (transport or non-2xx).\n")
	fmt.Fprintf(w, "# TYPE hared_shard_request_errors_total counter\n")
	for _, k := range keys {
		kind, peer := split(k)
		fmt.Fprintf(w, "hared_shard_request_errors_total{kind=%q,peer=%q} %d\n", kind, peer, m.attempts[k].errors)
	}
	fmt.Fprintf(w, "# HELP hared_shard_latency_seconds_sum Summed sub-request latency per worker.\n")
	fmt.Fprintf(w, "# TYPE hared_shard_latency_seconds_sum counter\n")
	for _, k := range keys {
		kind, peer := split(k)
		fmt.Fprintf(w, "hared_shard_latency_seconds_sum{kind=%q,peer=%q} %g\n", kind, peer, m.attempts[k].latencySum)
	}
	writeKindCounter(w, "hared_shard_retries_total", "Sub-request retry attempts after a shard failure.", m.retries)
	writeKindCounter(w, "hared_shard_hedges_total", "Hedged duplicate dispatches on straggling shards.", m.hedges)
	writeKindCounter(w, "hared_shard_scatter_failures_total", "Scatters that failed at least one shard after all retries.", m.failures)
	fmt.Fprintf(w, "# HELP hared_shard_failed_shards_total Shards lost across all degraded scatters.\n")
	fmt.Fprintf(w, "# TYPE hared_shard_failed_shards_total counter\n")
	fmt.Fprintf(w, "hared_shard_failed_shards_total %d\n", m.failedShards)
}

func writeKindCounter(w io.Writer, name, help string, byKind map[string]uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "%s{kind=%q} %d\n", name, k, byKind[k])
	}
}

func split(k string) (kind, peer string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}
