package shard

import "hash/fnv"

// Range is one half-open work slice [Lo, Hi).
type Range struct{ Lo, Hi int }

// Ranges splits [0, n) into at most k contiguous ranges of near-equal
// size (sizes differ by at most one, larger ranges first), dropping empty
// tails when n < k. The split is a pure function of (n, k): the
// coordinator and any replay of the plan agree on every boundary.
func Ranges(n, k int) []Range {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]Range, k)
	q, r := n/k, n%k
	lo := 0
	for i := range out {
		hi := lo + q
		if i < r {
			hi++
		}
		out[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// PickShard maps a dataset name onto one of n workers by rendezvous
// (highest-random-weight) hashing: each worker scores FNV-1a(name, index)
// and the highest score wins. Unlike modulo placement, adding or removing
// one worker only moves the datasets that scored highest on it — the rest
// of the fleet keeps its (warm, resident) assignments.
func PickShard(dataset string, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	var buf [8]byte
	for i := 0; i < n; i++ {
		h := fnv.New64a()
		h.Write([]byte(dataset))
		buf[0] = 0xff // separator: "ab"+1 must not collide with "a"+b1
		for b, v := 1, uint64(i); b < 8; b, v = b+1, v>>8 {
			buf[b] = byte(v)
		}
		h.Write(buf[:])
		if score := h.Sum64(); i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}
