package shard

import (
	"context"
	"fmt"

	"hare/internal/approx"
	"hare/internal/engine"
	"hare/internal/higher"
	"hare/internal/nullmodel"
	"hare/internal/query"
	"hare/internal/server"
	"hare/internal/temporal"
)

// Coordinator implements server.Backend by scattering each query across
// the client's worker fleet and gathering the partials into the exact
// single-node answer. Plug it into server.Options.Backend: the serving
// layer's cache, singleflight and admission control then all sit
// coordinator-side — workers only ever see already-deduplicated,
// already-admitted sub-requests.
//
// Every partition rides a uniqueness argument (unique star center, unique
// path middle edge, index-derived sample seed) so the merged answer is
// bit-identical to the in-process library backend at any fleet size;
// /v1/count is not range-splittable and is routed whole to the worker
// that rendezvous hashing assigns the dataset.
type Coordinator struct {
	client *Client
}

// NewCoordinator returns a scatter/gather backend over the client's
// peers.
func NewCoordinator(client *Client) *Coordinator {
	return &Coordinator{client: client}
}

// sub builds the plan-invariant fields of a sub-request for one query.
func sub(req server.Request, g *temporal.Graph, shard, shards, lo, hi int) SubRequest {
	return SubRequest{
		Proto:   ProtoVersion,
		Kind:    req.Kind,
		Dataset: req.Dataset,
		Delta:   req.Delta,
		Shard:   shard,
		Shards:  shards,
		Lo:      lo,
		Hi:      hi,
		Nodes:   g.NumNodes(),
		Edges:   g.NumEdges(),
		Workers: req.Workers,
		Thrd:    req.Thrd,
		ThrdSet: req.ThrdSet,
		Motif:   req.Motif,
		Model:   req.Model,
		Seed:    req.Seed,
		Spec:    req.Spec,
	}
}

// rangeTasks plans one task per contiguous range of [0, n), home peer i
// for shard i (ranges and peers are both position-indexed, so shard i's
// work lands on worker i unless retries or hedges move it).
func (c *Coordinator) rangeTasks(req server.Request, g *temporal.Graph, n int) []task {
	ranges := Ranges(n, len(c.client.peers))
	tasks := make([]task, len(ranges))
	for i, r := range ranges {
		tasks[i] = task{sub: sub(req, g, i, len(ranges), r.Lo, r.Hi), home: i}
	}
	return tasks
}

// Count routes the whole query to the worker rendezvous hashing assigns
// the dataset: the 2/3-node kernel is not range-splittable, but distinct
// datasets spread across the fleet and stay resident where they land.
func (c *Coordinator) Count(ctx context.Context, g *temporal.Graph, req server.Request) (server.CountAnswer, error) {
	home := PickShard(req.Dataset, len(c.client.peers))
	tasks := []task{{sub: sub(req, g, 0, 1, 0, 0), home: home}}
	gather, err := c.client.scatter(ctx, tasks)
	if err != nil {
		return server.CountAnswer{}, err
	}
	return gather.MergeCount()
}

// Star4 scatters center-node ID ranges and sums the partial counters in
// shard order.
func (c *Coordinator) Star4(ctx context.Context, g *temporal.Graph, req server.Request) (higher.Star4Counter, error) {
	tasks := c.rangeTasks(req, g, g.NumNodes())
	if len(tasks) == 0 {
		return higher.Star4Counter{}, nil
	}
	gather, err := c.client.scatter(ctx, tasks)
	if err != nil {
		return higher.Star4Counter{}, err
	}
	return gather.MergeStar4()
}

// Path4 scatters middle-edge ID ranges and sums the partial counters in
// shard order.
func (c *Coordinator) Path4(ctx context.Context, g *temporal.Graph, req server.Request) (higher.PathCounter, error) {
	tasks := c.rangeTasks(req, g, g.NumEdges())
	if len(tasks) == 0 {
		return higher.PathCounter{}, nil
	}
	gather, err := c.client.scatter(ctx, tasks)
	if err != nil {
		return higher.PathCounter{}, err
	}
	return gather.MergePath4()
}

// Query compiles the (already canonical) spec and scatters ranges of the
// plan's pivot domain — center-node IDs for center plans, pivot-edge IDs
// for edge plans — summing the partial counts in shard order. A plan
// without a splittable pivot (none exists today: both plan kinds
// partition over a contiguous ID range) is routed whole to the worker
// rendezvous hashing assigns the dataset, like /v1/count.
func (c *Coordinator) Query(ctx context.Context, g *temporal.Graph, req server.Request) (uint64, error) {
	spec, err := query.ParseSpec(req.Spec)
	if err != nil {
		return 0, err
	}
	plan := query.Compile(spec)
	var tasks []task
	if plan.Splittable() {
		tasks = c.rangeTasks(req, g, plan.Domain(g))
	} else {
		home := PickShard(req.Dataset, len(c.client.peers))
		tasks = []task{{sub: sub(req, g, 0, 1, 0, plan.Domain(g)), home: home}}
	}
	if len(tasks) == 0 {
		return 0, nil
	}
	gather, err := c.client.scatter(ctx, tasks)
	if err != nil {
		return 0, err
	}
	return gather.MergeQuery()
}

// approxScatter runs one approximate-mode query: build the sampling plan
// locally, scatter contiguous stratum-index ranges across the fleet (one
// range per peer, like every range kind), and finish the gathered moments
// against the local plan. Workers rebuild the identical plan from the
// knobs on the wire, so the finished result is bit-identical to the
// in-process backend at any fleet size (docs/APPROX.md).
func (c *Coordinator) approxScatter(ctx context.Context, g *temporal.Graph, req server.Request, kind server.Kind, k approx.Kernel) (*approx.Result, error) {
	plan, err := approx.NewPlan(g, k, approx.Options{
		Epsilon:    req.Epsilon,
		Confidence: req.Conf,
		Seed:       req.Seed,
		Samples:    req.Samples,
	})
	if err != nil {
		return nil, err
	}
	ranges := Ranges(len(plan.Strata), len(c.client.peers))
	tasks := make([]task, len(ranges))
	for i, r := range ranges {
		s := sub(req, g, i, len(ranges), r.Lo, r.Hi)
		s.Kind = kind
		s.Epsilon, s.Conf, s.Samples = req.Epsilon, req.Conf, req.Samples
		tasks[i] = task{sub: s, home: i}
	}
	if len(tasks) == 0 {
		// Empty domain: the plan has no strata and the finish is the
		// all-zero estimate, same as a local run on the empty graph.
		return approx.Finish(plan, nil)
	}
	gather, err := c.client.scatter(ctx, tasks)
	if err != nil {
		return nil, err
	}
	return gather.MergeApprox(plan)
}

// Star4Approx scatters stratum ranges of the star sampling plan.
func (c *Coordinator) Star4Approx(ctx context.Context, g *temporal.Graph, req server.Request) (*approx.Result, error) {
	return c.approxScatter(ctx, g, req, KindStar4Approx, approx.StarKernel{})
}

// Path4Approx scatters stratum ranges of the path sampling plan.
func (c *Coordinator) Path4Approx(ctx context.Context, g *temporal.Graph, req server.Request) (*approx.Result, error) {
	return c.approxScatter(ctx, g, req, KindPath4Approx, approx.PathKernel{})
}

// QueryApprox compiles the (already canonical) spec and scatters stratum
// ranges of its plan-kernel sampling plan.
func (c *Coordinator) QueryApprox(ctx context.Context, g *temporal.Graph, req server.Request) (*approx.Result, error) {
	spec, err := query.ParseSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	return c.approxScatter(ctx, g, req, KindQueryApprox, approx.PlanKernel{Plan: query.Compile(spec)})
}

// Significance counts the real graph locally (the coordinator holds a
// replica anyway, and the real count is one engine run), scatters
// sample-index ranges, and folds the returned raw sample matrices through
// the deterministic Welford chunk tree — bit-identical to a local
// ensemble run because the per-sample seed chain is index-derived and the
// shard ranges are contiguous and ascending.
func (c *Coordinator) Significance(ctx context.Context, g *temporal.Graph, req server.Request) (*nullmodel.Report, error) {
	model, err := nullmodel.ParseModel(req.Model)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	samples := req.Samples
	if samples <= 0 {
		samples = 20
	}
	real := engine.Count(g, temporal.Timestamp(req.Delta), engine.Options{Workers: req.Workers}).ToMatrix()
	tasks := c.rangeTasks(req, g, samples)
	gather, err := c.client.scatter(ctx, tasks)
	if err != nil {
		return nil, err
	}
	return gather.MergeSig(model, real, req.Workers)
}
