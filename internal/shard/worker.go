package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hare/internal/approx"
	"hare/internal/higher"
	"hare/internal/nullmodel"
	"hare/internal/query"
	"hare/internal/server"
	"hare/internal/temporal"
)

// GraphSource resolves dataset names to loaded graphs and lists what is
// registered. *server.Server satisfies it, so a worker process shares one
// registry (and its load-once, LRU, singleflight behavior) between its
// public /v1 endpoints and its shard endpoints.
type GraphSource interface {
	Preload(name string) (*temporal.Graph, error)
	Datasets() []server.DatasetInfo
}

// Worker serves the shard side of the wire protocol: it resolves each
// sub-request's dataset from Graphs, computes the partial for the range
// it was handed, and answers with exact integer payloads. Count
// sub-requests delegate to Backend so a routed count is computed by the
// very same code path a single-node hared would use.
type Worker struct {
	// Graphs resolves datasets (required).
	Graphs GraphSource
	// Backend computes count sub-requests (required) — wire the same
	// in-process backend a single-node server uses.
	Backend server.Backend
	// Version is reported by /shard/v1/info.
	Version string
}

// Handler returns the handler serving PathCompute and PathInfo. Mount it
// at the server root (it matches only the /shard/ paths).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathCompute, w.handleCompute)
	mux.HandleFunc(PathInfo, w.handleInfo)
	return mux
}

func writeWireError(rw http.ResponseWriter, status int, err error, proto int) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(wireError{Error: err.Error(), Proto: proto})
}

func (w *Worker) handleCompute(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeWireError(rw, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method), 0)
		return
	}
	var sub SubRequest
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("decoding sub-request: %w", err), 0)
		return
	}
	if sub.Proto != ProtoVersion {
		// 426 Upgrade Required: version negotiation is explicit, never a
		// silent best-effort answer from mismatched merge semantics.
		writeWireError(rw, http.StatusUpgradeRequired,
			fmt.Errorf("protocol version %d not supported (this worker speaks %d)", sub.Proto, ProtoVersion), ProtoVersion)
		return
	}
	if err := sub.validate(); err != nil {
		writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
		return
	}
	g, err := w.Graphs.Preload(sub.Dataset)
	if err != nil {
		status := http.StatusInternalServerError
		var unknown *server.UnknownDatasetError
		if errors.As(err, &unknown) {
			status = http.StatusNotFound
		}
		writeWireError(rw, status, err, ProtoVersion)
		return
	}
	if g.NumNodes() != sub.Nodes || g.NumEdges() != sub.Edges {
		// 409 Conflict: this worker's replica is not the coordinator's
		// graph. A partial from a different graph would merge silently
		// into a wrong answer — refuse instead.
		writeWireError(rw, http.StatusConflict,
			fmt.Errorf("dataset %s shape mismatch: worker has %d nodes/%d edges, coordinator sent %d/%d",
				sub.Dataset, g.NumNodes(), g.NumEdges(), sub.Nodes, sub.Edges), ProtoVersion)
		return
	}

	p := Partial{Proto: ProtoVersion, Kind: sub.Kind, Shard: sub.Shard}
	delta := temporal.Timestamp(sub.Delta)
	switch sub.Kind {
	case server.KindCount:
		ans, err := w.Backend.Count(r.Context(), g, server.Request{
			Kind:    server.KindCount,
			Dataset: sub.Dataset,
			Delta:   sub.Delta,
			Motif:   sub.Motif,
			Workers: sub.Workers,
			Thrd:    sub.Thrd,
			ThrdSet: sub.ThrdSet,
		})
		if err != nil {
			writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
			return
		}
		p.Count = &CountPartial{Matrix: ans.Matrix, Workers: ans.Workers, DegreeThreshold: ans.DegreeThreshold}
	case server.KindStar4:
		c := higher.CountStar4Range(g, delta, w.higherOpts(sub), sub.Lo, sub.Hi)
		p.Star4 = &c
	case server.KindPath4:
		c := higher.CountPath4Range(g, delta, w.higherOpts(sub), sub.Lo, sub.Hi)
		p.Path4 = &c
	case server.KindQuery:
		spec, err := query.ParseSpec(sub.Spec)
		if err != nil {
			writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
			return
		}
		n := query.Compile(spec).ExecuteRange(g, delta, w.higherOpts(sub), sub.Lo, sub.Hi)
		p.Query = &n
	case KindStar4Approx:
		ms, err := approxMoments(g, delta, sub, approx.StarKernel{})
		if err != nil {
			writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
			return
		}
		p.Approx = ms
	case KindPath4Approx:
		ms, err := approxMoments(g, delta, sub, approx.PathKernel{})
		if err != nil {
			writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
			return
		}
		p.Approx = ms
	case KindQueryApprox:
		spec, err := query.ParseSpec(sub.Spec)
		if err != nil {
			writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
			return
		}
		ms, err := approxMoments(g, delta, sub, approx.PlanKernel{Plan: query.Compile(spec)})
		if err != nil {
			writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
			return
		}
		p.Approx = ms
	case server.KindSig:
		model, err := nullmodel.ParseModel(sub.Model)
		if err != nil {
			writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
			return
		}
		ms, err := nullmodel.SampleMatrices(g, delta, model, sub.Seed, sub.Lo, sub.Hi, sub.Workers)
		if err != nil {
			writeWireError(rw, http.StatusBadRequest, err, ProtoVersion)
			return
		}
		p.Sig = ms
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(&p)
}

// approxMoments rebuilds the sampling plan from the wire knobs — the plan
// is a pure function of (graph, knobs), so this worker's plan is
// byte-identical to the coordinator's — and samples the stratum range the
// sub-request owns. The raw moments go back over the wire; only the
// coordinator finishes.
func approxMoments(g *temporal.Graph, delta temporal.Timestamp, sub SubRequest, k approx.Kernel) ([]approx.Moments, error) {
	plan, err := approx.NewPlan(g, k, approx.Options{
		Epsilon:    sub.Epsilon,
		Confidence: sub.Conf,
		Seed:       sub.Seed,
		Samples:    sub.Samples,
	})
	if err != nil {
		return nil, err
	}
	if sub.Hi > len(plan.Strata) {
		return nil, fmt.Errorf("shard: stratum range [%d, %d) exceeds plan's %d strata (plan drift)",
			sub.Lo, sub.Hi, len(plan.Strata))
	}
	return approx.EstimateStrata(g, k, delta, plan, sub.Workers, sub.Lo, sub.Hi), nil
}

// higherOpts maps a sub-request's scheduling hints onto the higher-order
// counters' options, matching the single-node backend's interpretation
// (an unset or zero threshold selects the automatic heuristic).
func (w *Worker) higherOpts(sub SubRequest) higher.Options {
	opts := higher.Options{Workers: sub.Workers}
	// ThrdSet alone decides: normalize canonicalized thrd=0 to unset on the
	// coordinator, and DegreeThreshold 0 means "auto" here anyway.
	if sub.ThrdSet {
		opts.DegreeThreshold = sub.Thrd
	}
	return opts
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	infos := w.Graphs.Datasets()
	names := make([]string, len(infos))
	for i, d := range infos {
		names[i] = d.Name
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(Info{
		Proto:    ProtoVersion,
		Version:  w.Version,
		Role:     "worker",
		Datasets: names,
	})
}
