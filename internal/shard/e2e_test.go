package shard_test

// End-to-end proof of the scale-out invariant: clusters of 1, 2 and 4
// worker processes (real HTTP servers on ephemeral ports, the full
// hared serving stack on the coordinator) must answer every /v1 endpoint
// byte-identically to a single-node hared — which PR 5's e2e pins to
// direct library calls — and the load-bearing cells are additionally
// spot-checked against the library here. Runs under -race in CI.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hare"
	"hare/internal/gen"
	"hare/internal/shard"
)

func e2eGraph(t testing.TB) *hare.Graph {
	t.Helper()
	cfg, err := gen.DatasetByName("collegemsg")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Generate(gen.Scaled(cfg, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// bootWorker starts one worker process: the public /v1 stack plus the
// /shard endpoints, sharing one registry, counting with the same
// in-process backend a single-node hared uses.
func bootWorker(t *testing.T, g *hare.Graph) *httptest.Server {
	t.Helper()
	srv, err := hare.NewServer(hare.ServerOptions{Role: "worker", WorkerBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterGraph("college", "e2e graph", g); err != nil {
		t.Fatal(err)
	}
	w := &shard.Worker{Graphs: srv, Backend: hare.LocalBackend(), Version: "e2e"}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle(shard.PathCompute, w.Handler())
	mux.Handle(shard.PathInfo, w.Handler())
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs
}

// bootCoordinator starts the scatter/gather tier over the given workers.
func bootCoordinator(t *testing.T, g *hare.Graph, peers []string) *httptest.Server {
	t.Helper()
	client, err := shard.NewClient(peers, shard.Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hare.NewServer(hare.ServerOptions{
		Backend:      shard.NewCoordinator(client),
		Role:         "coordinator",
		WorkerBudget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterGraph("college", "e2e graph", g); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// fetchNormalized GETs a query and strips the only legitimately
// nondeterministic field (elapsed_ms) so bodies byte-compare.
func fetchNormalized(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, data)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

var e2eQueries = []string{
	"/v1/count?dataset=college&delta=600",
	"/v1/count?dataset=college&delta=600&motif=M26",
	"/v1/star4?dataset=college&delta=600",
	"/v1/path4?dataset=college&delta=600",
	"/v1/sig?dataset=college&delta=600&samples=6&seed=3",
	// Both compiled-plan pivot families: a star spec scatters center-node
	// ranges, a triangle spec scatters pivot-edge ranges. (Comma is the
	// spec separator here because raw semicolons are invalid in URL query
	// strings; %3E is ">".)
	"/v1/query?dataset=college&delta=600&spec=a-%3Eb,a-%3Ec,a-%3Ed",
	"/v1/query?dataset=college&delta=600&spec=a-%3Eb,b-%3Ec,c-%3Ea",
	// Approximate mode: the coordinator scatters stratum-index ranges,
	// workers rebuild the identical sampling plan from the wire knobs and
	// return raw moments, and the gathered finish — estimate, intervals,
	// telemetry — must byte-match the single node's (docs/APPROX.md).
	"/v1/star4?dataset=college&delta=600&epsilon=0.05&seed=7",
	"/v1/path4?dataset=college&delta=600&epsilon=0.1&conf=0.99&seed=7",
	"/v1/query?dataset=college&delta=600&spec=a-%3Eb,b-%3Ec,c-%3Ed&epsilon=0.05&seed=7",
}

// TestClusterBitIdenticalAcrossWorkerCounts is the acceptance test: every
// /v1 endpoint, served through 1-, 2- and 4-worker scatter/gather
// clusters, answers byte-identically to the single-node server.
func TestClusterBitIdenticalAcrossWorkerCounts(t *testing.T) {
	g := e2eGraph(t)

	// The single-node reference: same serving stack, in-process backend.
	single, err := hare.NewServer(hare.ServerOptions{WorkerBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.RegisterGraph("college", "e2e graph", g); err != nil {
		t.Fatal(err)
	}
	ref := httptest.NewServer(single.Handler())
	defer ref.Close()
	want := make(map[string]string, len(e2eQueries))
	for _, q := range e2eQueries {
		want[q] = fetchNormalized(t, ref.URL, q)
	}

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			peers := make([]string, workers)
			for i := range peers {
				peers[i] = bootWorker(t, g).URL
			}
			coord := bootCoordinator(t, g, peers)
			for _, q := range e2eQueries {
				if got := fetchNormalized(t, coord.URL, q); got != want[q] {
					t.Errorf("%s: %d-worker cluster response diverges from single node\n got %s\nwant %s",
						q, workers, got, want[q])
				}
			}
		})
	}

	// Spot-check the reference against direct library calls, so the chain
	// cluster == single-node == library is closed inside this test too.
	count, err := hare.Count(g, 600)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Total  uint64            `json:"total"`
		Matrix map[string]uint64 `json:"matrix"`
	}
	if err := json.Unmarshal([]byte(want["/v1/count?dataset=college&delta=600"]), &body); err != nil {
		t.Fatal(err)
	}
	if body.Total != count.Matrix.Total() {
		t.Errorf("served total %d, library total %d", body.Total, count.Matrix.Total())
	}
	for _, l := range hare.AllLabels() {
		if body.Matrix[l.String()] != count.Matrix.At(l) {
			t.Errorf("served %s = %d, library %d", l, body.Matrix[l.String()], count.Matrix.At(l))
		}
	}
}

// TestClusterHealthAndInfo checks the operator surface: roles in
// /healthz and the worker's shard info endpoint.
func TestClusterHealthAndInfo(t *testing.T) {
	g := e2eGraph(t)
	worker := bootWorker(t, g)
	coord := bootCoordinator(t, g, []string{worker.URL})

	var health struct {
		Role string `json:"role"`
	}
	resp, err := http.Get(coord.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Role != "coordinator" {
		t.Errorf("coordinator /healthz role = %q", health.Role)
	}

	var info shard.Info
	resp2, err := http.Get(worker.URL + shard.PathInfo)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Proto != shard.ProtoVersion || info.Role != "worker" {
		t.Errorf("info = %+v", info)
	}
	if len(info.Datasets) != 1 || info.Datasets[0] != "college" {
		t.Errorf("info datasets = %v", info.Datasets)
	}
}

// TestDatasetsReportProvenance covers the /v1/datasets provenance field
// end to end: a memory-registered graph reports "memory" once loaded.
func TestDatasetsReportProvenance(t *testing.T) {
	g := e2eGraph(t)
	worker := bootWorker(t, g)
	// Touch the dataset so the (lazy) load provenance is recorded.
	if _, err := http.Get(worker.URL + "/v1/count?dataset=college&delta=600"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(worker.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(data), `"source": "memory"`) {
		t.Errorf("/v1/datasets missing memory provenance: %s", data)
	}
}
