package shard

// Unit tests for the scatter/gather building blocks: the deterministic
// partitioner, the rendezvous dataset router, and the idempotent gather —
// including the delivery anomalies the retry/hedge layer can produce
// (reordering, duplicates) and the loud-incomplete contract.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hare/internal/engine"
	"hare/internal/gen"
	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/nullmodel"
	"hare/internal/server"
	"hare/internal/temporal"
)

func TestRangesProperties(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for k := 1; k <= 7; k++ {
			rs := Ranges(n, k)
			if n == 0 {
				if rs != nil {
					t.Fatalf("Ranges(0, %d) = %v, want nil", k, rs)
				}
				continue
			}
			wantLen := k
			if k > n {
				wantLen = n
			}
			if len(rs) != wantLen {
				t.Fatalf("Ranges(%d, %d): %d ranges, want %d", n, k, len(rs), wantLen)
			}
			lo, minSz, maxSz := 0, n, 0
			for _, r := range rs {
				if r.Lo != lo {
					t.Fatalf("Ranges(%d, %d): gap at %d (got lo %d)", n, k, lo, r.Lo)
				}
				sz := r.Hi - r.Lo
				if sz <= 0 {
					t.Fatalf("Ranges(%d, %d): empty range %v", n, k, r)
				}
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("Ranges(%d, %d): covers [0, %d), want [0, %d)", n, k, lo, n)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("Ranges(%d, %d): imbalance %d vs %d", n, k, minSz, maxSz)
			}
		}
	}
	if Ranges(5, 0) != nil || Ranges(-1, 3) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}

func TestPickShardRendezvous(t *testing.T) {
	const names = 500
	for _, n := range []int{1, 2, 4, 7} {
		hits := make([]int, n)
		for i := 0; i < names; i++ {
			s := PickShard(fmt.Sprintf("dataset-%d", i), n)
			if s < 0 || s >= n {
				t.Fatalf("PickShard out of range: %d with n=%d", s, n)
			}
			if again := PickShard(fmt.Sprintf("dataset-%d", i), n); again != s {
				t.Fatalf("PickShard not deterministic: %d then %d", s, again)
			}
			hits[s]++
		}
		for p, h := range hits {
			if n <= 8 && h == 0 {
				t.Errorf("n=%d: peer %d got no datasets out of %d", n, p, names)
			}
		}
	}
	// The rendezvous property: growing the fleet from n to n+1 only moves
	// datasets onto the new peer — nothing shuffles between old peers.
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("dataset-%d", i)
		before, after := PickShard(name, 4), PickShard(name, 5)
		if after != before && after != 4 {
			t.Fatalf("%s moved %d -> %d when adding peer 4 (rendezvous violated)", name, before, after)
		}
	}
}

func shardTestGraph(t testing.TB) *temporal.Graph {
	t.Helper()
	cfg, err := gen.DatasetByName("collegemsg")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Generate(gen.Scaled(cfg, 0.03))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGatherIdempotentStar4 feeds a star4 gather its partials reordered
// and duplicated — the retry/hedge anomalies — and checks the merged
// counter equals the full-range count and that first-write-wins holds.
func TestGatherIdempotentStar4(t *testing.T) {
	g := shardTestGraph(t)
	const delta = temporal.Timestamp(600)
	const shards = 4
	full := higher.CountStar4(g, delta, higher.Options{Workers: 2})

	rs := Ranges(g.NumNodes(), shards)
	parts := make([]*Partial, len(rs))
	for i, r := range rs {
		c := higher.CountStar4Range(g, delta, higher.Options{Workers: 2}, r.Lo, r.Hi)
		parts[i] = &Partial{Proto: ProtoVersion, Kind: server.KindStar4, Shard: i, Star4: &c}
	}

	// Delivery order: shuffled, with every partial delivered twice and a
	// poisoned duplicate (same shard index, corrupt counter) interleaved —
	// the gather must keep the first accepted partial.
	rng := rand.New(rand.NewSource(7))
	order := append(append([]int{}, rng.Perm(len(parts))...), rng.Perm(len(parts))...)
	gather := NewGather(server.KindStar4, len(parts))
	if gather.Complete() {
		t.Fatal("fresh gather reports complete")
	}
	seen := map[int]bool{}
	for _, i := range order {
		p := parts[i]
		if seen[i] {
			bad := *parts[i].Star4
			bad[0] += 999 // a poisoned late duplicate must be dropped
			p = &Partial{Proto: ProtoVersion, Kind: server.KindStar4, Shard: i, Star4: &bad}
		}
		seen[i] = true
		if err := gather.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if !gather.Complete() {
		t.Fatalf("gather incomplete, missing %v", gather.Missing())
	}
	got, err := gather.MergeStar4()
	if err != nil {
		t.Fatal(err)
	}
	if got != full {
		t.Fatalf("merged star4 counter diverges from full-range count:\n got %v\nwant %v", got, full)
	}

	// Structural rejects.
	if err := gather.Add(nil); err == nil {
		t.Error("nil partial accepted")
	}
	if err := gather.Add(&Partial{Kind: server.KindPath4, Shard: 0}); err == nil {
		t.Error("wrong-kind partial accepted")
	}
	if err := gather.Add(&Partial{Kind: server.KindStar4, Shard: len(parts)}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := gather.Add(&Partial{Kind: server.KindStar4, Shard: 0}); err == nil {
		t.Error("payload-less partial accepted")
	}
}

// TestGatherIncompleteIsLoud checks a merge with missing shards fails by
// naming them instead of returning a silently partial counter.
func TestGatherIncompleteIsLoud(t *testing.T) {
	gather := NewGather(server.KindPath4, 3)
	var c higher.PathCounter
	if err := gather.Add(&Partial{Proto: ProtoVersion, Kind: server.KindPath4, Shard: 1, Path4: &c}); err != nil {
		t.Fatal(err)
	}
	if _, err := gather.MergePath4(); err == nil {
		t.Fatal("incomplete merge succeeded")
	} else if want := "missing shards [0 2]"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the holes (%q)", err, want)
	}
}

// TestGatherMergeSigBitIdentical is the distributed-ensemble proof at the
// merge layer: raw sample matrices split across shard ranges, delivered
// shuffled with duplicates, must fold into a report bit-identical to a
// local Ensemble.Run — floats included, because the Welford chunk tree is
// rebuilt in sample-index order regardless of delivery order.
func TestGatherMergeSigBitIdentical(t *testing.T) {
	g := shardTestGraph(t)
	const delta = temporal.Timestamp(600)
	const samples, seed = 11, int64(42)
	for _, model := range []nullmodel.Model{nullmodel.TimeShuffle, nullmodel.DegreeRewire} {
		ens := nullmodel.Ensemble{Model: model, Samples: samples, Seed: seed, Workers: 3}
		want, err := ens.Run(g, delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4} {
			rs := Ranges(samples, shards)
			parts := make([]*Partial, len(rs))
			for i, r := range rs {
				ms, err := nullmodel.SampleMatrices(g, delta, model, seed, r.Lo, r.Hi, 2)
				if err != nil {
					t.Fatal(err)
				}
				parts[i] = &Partial{Proto: ProtoVersion, Kind: server.KindSig, Shard: i, Sig: ms}
			}
			rng := rand.New(rand.NewSource(int64(shards)))
			gather := NewGather(server.KindSig, len(parts))
			for _, i := range append(rng.Perm(len(parts)), rng.Perm(len(parts))...) {
				if err := gather.Add(parts[i]); err != nil {
					t.Fatal(err)
				}
			}
			real := engine.Count(g, delta, engine.Options{Workers: 2}).ToMatrix()
			got, err := gather.MergeSig(model, real, want.Workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Real != want.Real || got.Trials != want.Trials {
				t.Fatalf("model %v shards %d: real/trials diverge", model, shards)
			}
			if got.Mean != want.Mean || got.Std != want.Std ||
				got.PUpper != want.PUpper || got.PLower != want.PLower {
				t.Fatalf("model %v shards %d: statistics not bit-identical to local Ensemble.Run", model, shards)
			}
		}
	}
}

// TestGatherMergeCount round-trips a count partial.
func TestGatherMergeCount(t *testing.T) {
	var m motif.Matrix
	m.Set(motif.Label{Row: 2, Col: 3}, 17)
	gather := NewGather(server.KindCount, 1)
	err := gather.Add(&Partial{Proto: ProtoVersion, Kind: server.KindCount, Shard: 0,
		Count: &CountPartial{Matrix: m, Workers: 3, DegreeThreshold: 9}})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := gather.MergeCount()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Matrix != m || ans.Workers != 3 || ans.DegreeThreshold != 9 {
		t.Fatalf("MergeCount = %+v", ans)
	}
}
