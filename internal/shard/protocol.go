// Package shard implements hared's scatter/gather tier: a coordinator
// that partitions one query into per-worker sub-requests, scatters them
// over HTTP with per-shard timeout/retry/backoff and hedged re-dispatch,
// and gathers the partial answers into the exact single-node result.
//
// The partitions ride the same associativity every in-process parallel
// path already uses, lifted across processes:
//
//   - /v1/star4 splits by center-node ID range — every 4-node star has a
//     unique center, so per-range Star4Counters sum exactly;
//   - /v1/path4 splits by middle-edge ID range — every 4-node path has a
//     unique structural-middle edge;
//   - /v1/sig splits by sample-index range — per-sample seeds are
//     index-derived, and the coordinator re-folds the raw sample count
//     matrices through the same fixed-chunk Welford tree as a local run;
//   - /v1/count is routed whole to one worker picked by rendezvous
//     hashing of the dataset name (the counting kernel is not
//     range-splittable, but datasets spread across the fleet).
//
// Merged in deterministic shard order, the gathered answer is
// bit-identical to the single-node one at any worker count. The wire
// protocol is specified normatively in docs/SHARDING.md; this file is the
// reference implementation of its message types.
package shard

import (
	"fmt"

	"hare/internal/approx"
	"hare/internal/higher"
	"hare/internal/motif"
	"hare/internal/server"
)

// ProtoVersion is the scatter/gather wire-protocol version. A worker
// refuses (HTTP 426) sub-requests whose proto field it does not speak;
// versions are totally ordered and bumped on any incompatible change to
// the message shapes or merge semantics below.
const ProtoVersion = 1

// Worker endpoint paths, mounted next to (not replacing) the public /v1
// API.
const (
	PathCompute = "/shard/v1/compute"
	PathInfo    = "/shard/v1/info"
)

// Wire-only kinds for approximate-mode scatter (docs/APPROX.md). The
// coordinator rebuilds the sampling plan worker-side from the knobs on the
// wire and scatters contiguous ranges of *stratum indices* (not pivot
// IDs); each worker samples its strata with the plan's per-stratum seeded
// streams and returns raw moments, so the gathered finish is bit-identical
// to a local run. Additive within ProtoVersion 1: an older worker answers
// 400 unknown kind, never a wrong partial.
const (
	KindStar4Approx server.Kind = "star4approx"
	KindPath4Approx server.Kind = "path4approx"
	KindQueryApprox server.Kind = "queryapprox"
)

// SubRequest is one shard's slice of a query: the kind plus the work
// range it owns. Lo/Hi are half-open and kind-relative — center-node IDs
// for star4, middle-edge IDs for path4, sample indices for sig, unused
// for count (a count sub always covers the whole dataset).
//
// Nodes/Edges carry the coordinator's view of the dataset shape; a worker
// whose resident graph disagrees answers 409 rather than silently
// contributing partials from a different graph.
type SubRequest struct {
	Proto   int         `json:"proto"`
	Kind    server.Kind `json:"kind"`
	Dataset string      `json:"dataset"`
	Delta   int64       `json:"delta"`

	// Shard and Shards locate this slice in the scatter plan; the worker
	// echoes Shard back so the gather can key partials idempotently.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	Lo     int `json:"lo"`
	Hi     int `json:"hi"`

	// Nodes and Edges are the coordinator's graph shape (consistency check).
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`

	// Workers bounds the worker's local parallelism for this sub-request
	// (0 = all CPUs). Never changes the partial.
	Workers int `json:"workers,omitempty"`
	// Thrd overrides the degree threshold when ThrdSet. Never changes the
	// partial.
	Thrd    int  `json:"thrd,omitempty"`
	ThrdSet bool `json:"thrd_set,omitempty"`

	// Motif restricts a count sub to one motif category (count kind only).
	Motif string `json:"motif,omitempty"`
	// Model and Seed configure null sampling (sig kind only).
	Model string `json:"model,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Spec is the canonical motif spec text (query kind only). Lo/Hi then
	// range over the compiled plan's pivot domain: center-node IDs for
	// center plans, pivot-edge IDs for edge plans. Adding the query kind
	// was additive — older workers answer 400 unknown kind, not a wrong
	// partial — so ProtoVersion stayed at 1.
	Spec string `json:"spec,omitempty"`
	// Epsilon, Conf and Samples are the estimator knobs of the approx
	// kinds; with Seed (shared with sig) they determine the sampling plan
	// every end rebuilds identically. Lo/Hi then range over stratum
	// indices. Spec rides along for queryapprox.
	Epsilon float64 `json:"epsilon,omitempty"`
	Conf    float64 `json:"conf,omitempty"`
	Samples int     `json:"samples,omitempty"`
}

// CountPartial is a count sub-request's answer: the full (possibly
// category-restricted) matrix plus the scheduling the worker applied,
// mirroring server.CountAnswer on the wire.
type CountPartial struct {
	Matrix          motif.Matrix `json:"matrix"`
	Workers         int          `json:"workers"`
	DegreeThreshold int          `json:"degree_threshold"`
}

// Partial is one shard's partial answer. Exactly one of the kind fields
// is set. All counters are exact integers, so JSON round-trips them
// bit-identically; Sig carries the raw per-sample count matrices (sample
// lo up to hi, in index order) — the coordinator folds them through the
// deterministic Welford chunk tree itself, because floating-point merge
// order must not depend on the cluster layout.
type Partial struct {
	Proto int         `json:"proto"`
	Kind  server.Kind `json:"kind"`
	Shard int         `json:"shard"`

	Count *CountPartial        `json:"count,omitempty"`
	Star4 *higher.Star4Counter `json:"star4,omitempty"`
	Path4 *higher.PathCounter  `json:"path4,omitempty"`
	Sig   []motif.Matrix       `json:"sig,omitempty"`
	Query *uint64              `json:"query,omitempty"`
	// Approx carries the per-stratum moments for strata [lo, hi), in
	// stratum order. Floats round-trip JSON exactly (shortest-repr
	// encoding), so a remote finish equals a local one bit for bit.
	Approx []approx.Moments `json:"approx,omitempty"`
}

// Info is a worker's /shard/v1/info self-description, used by operators
// and by version-negotiation probes.
type Info struct {
	Proto    int      `json:"proto"`
	Version  string   `json:"version,omitempty"`
	Role     string   `json:"role"`
	Datasets []string `json:"datasets"`
}

// wireError is the JSON error body a worker returns alongside a non-2xx
// status.
type wireError struct {
	Error string `json:"error"`
	// Proto is set on 426 responses: the version the worker speaks.
	Proto int `json:"proto,omitempty"`
}

// validate checks the fields every kind requires; kind-specific range
// checks happen against the resolved graph.
func (s *SubRequest) validate() error {
	if s.Proto != ProtoVersion {
		return fmt.Errorf("shard: protocol version %d not supported (this end speaks %d)", s.Proto, ProtoVersion)
	}
	if s.Dataset == "" {
		return fmt.Errorf("shard: missing dataset")
	}
	if s.Delta < 0 {
		return fmt.Errorf("shard: negative delta %d", s.Delta)
	}
	if s.Shards < 1 || s.Shard < 0 || s.Shard >= s.Shards {
		return fmt.Errorf("shard: shard %d/%d out of range", s.Shard, s.Shards)
	}
	switch s.Kind {
	case server.KindCount:
	case server.KindQuery, KindQueryApprox:
		if s.Spec == "" {
			return fmt.Errorf("shard: query sub-request missing spec")
		}
		if s.Lo < 0 || s.Hi < s.Lo {
			return fmt.Errorf("shard: invalid range [%d, %d)", s.Lo, s.Hi)
		}
	case server.KindStar4, server.KindPath4, server.KindSig, KindStar4Approx, KindPath4Approx:
		if s.Lo < 0 || s.Hi < s.Lo {
			return fmt.Errorf("shard: invalid range [%d, %d)", s.Lo, s.Hi)
		}
	default:
		return fmt.Errorf("shard: unknown kind %q", s.Kind)
	}
	return nil
}
