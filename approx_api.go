package hare

import (
	"hare/internal/approx"
	"hare/internal/query"
)

// ApproxOptions configures the approximate counters. The zero value asks
// for the default target: a ±5% relative-error interval at 95% confidence
// (epsilon 0.05, confidence 0.95), sized automatically. See docs/APPROX.md
// for the estimator's normative specification.
type ApproxOptions struct {
	// Epsilon is the relative-error target in (0, 1); it sizes the sample
	// as ceil((z/epsilon)²). Zero means the 0.05 default. Tightening
	// epsilon grows the sample until it saturates the pivot domain, at
	// which point the estimate degrades gracefully to the exact count with
	// a zero-width interval.
	Epsilon float64
	// Confidence is the interval's coverage level in (0, 1); zero means
	// the 0.95 default.
	Confidence float64
	// Seed fixes the sampling streams. The same (graph, delta, knobs,
	// seed) always yields bit-identical estimates and intervals, at any
	// worker count.
	Seed int64
	// Samples, when positive, pins the draw budget directly and overrides
	// the epsilon-driven sizing. Budgets of at least a few hundred draws
	// are the calibrated regime; see docs/APPROX.md.
	Samples int
	// Workers bounds counting parallelism; zero or negative means all
	// CPUs. The estimate does not depend on it.
	Workers int
}

// ApproxResult is a finished approximate count: per-cell intervals (in the
// kernel's cell order) plus the total-count interval, with the sampling
// telemetry needed to judge it (draws performed, strata, how many strata
// were enumerated exactly).
type ApproxResult = approx.Result

// ApproxInterval is one estimated count with its confidence bounds.
type ApproxInterval = approx.Interval

func (o ApproxOptions) internal() approx.Options {
	return approx.Options{
		Epsilon:    o.Epsilon,
		Confidence: o.Confidence,
		Seed:       o.Seed,
		Samples:    o.Samples,
		Workers:    o.Workers,
	}
}

// CountStar4Approx estimates the 4-node star counts by importance-sampled
// stratified sampling over center nodes: the heaviest centers (by degree³)
// land in saturated strata and are enumerated exactly, the tail is sampled
// without replacement, and each cell gets an unbiased estimate with a
// confidence interval. Result.Cells holds the 8 direction patterns in
// Star4Counter order; Result.Total is the all-pattern sum. Estimates are
// deterministic: bit-identical for the same options at any worker count.
func CountStar4Approx(g *Graph, delta Timestamp, o ApproxOptions) (*ApproxResult, error) {
	if g == nil {
		return nil, errNilGraph
	}
	if delta < 0 {
		return nil, errNegativeDelta(delta)
	}
	return approx.Star4(g, delta, o.internal())
}

// CountPath4Approx estimates the 4-node path counts by sampling
// structural-middle edges, with the same stratification, determinism, and
// interval guarantees as CountStar4Approx. Result.Cells holds the 48-slot
// path counter (canonical labels carry the counts, as in Path4Counter);
// Result.Total sums them.
func CountPath4Approx(g *Graph, delta Timestamp, o ApproxOptions) (*ApproxResult, error) {
	if g == nil {
		return nil, errNilGraph
	}
	if delta < 0 {
		return nil, errNegativeDelta(delta)
	}
	return approx.Path4(g, delta, o.internal())
}

// CountMotifApprox estimates a compiled motif spec's count by sampling the
// plan's pivot domain (centers for star-shaped specs, pivot-slot edges
// otherwise). Result.Total is the estimate; Result.Cells has the single
// per-pivot series. Sparse specs whose exact count is a handful of
// instances are better served by CountMotif — rare-event tallies are below
// the calibrated regime (docs/APPROX.md).
func CountMotifApprox(g *Graph, spec *MotifSpec, delta Timestamp, o ApproxOptions) (*ApproxResult, error) {
	if g == nil {
		return nil, errNilGraph
	}
	if spec == nil {
		return nil, temporalError("nil spec")
	}
	if delta < 0 {
		return nil, errNegativeDelta(delta)
	}
	return approx.Query(g, query.Compile(spec), delta, o.internal())
}
