package hare_test

import (
	"math/rand"
	"strings"
	"testing"

	"hare"
	"hare/internal/temporal"
)

func fig1Graph() *hare.Graph {
	return hare.FromEdges([]hare.Edge{
		{From: 4, To: 3, Time: 1},
		{From: 0, To: 2, Time: 4},
		{From: 4, To: 2, Time: 6},
		{From: 0, To: 2, Time: 8},
		{From: 3, To: 0, Time: 9},
		{From: 3, To: 2, Time: 10},
		{From: 0, To: 1, Time: 11},
		{From: 3, To: 4, Time: 14},
		{From: 0, To: 2, Time: 15},
		{From: 2, To: 3, Time: 17},
		{From: 4, To: 3, Time: 18},
		{From: 3, To: 4, Time: 21},
	})
}

func randomGraph(seed int64, nodes, edges int, span int64) *hare.Graph {
	r := rand.New(rand.NewSource(seed))
	b := hare.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := hare.NodeID(r.Intn(nodes))
		v := hare.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % hare.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

func TestCountFig1(t *testing.T) {
	g := fig1Graph()
	res, err := hare.Count(g, 10, hare.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"M63", "M46", "M65"} {
		if res.Matrix.At(hare.MustLabel(name)) < 1 {
			t.Errorf("%s missing from Fig. 1 counts", name)
		}
	}
	if res.Workers != 1 {
		t.Errorf("workers = %d", res.Workers)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestCountParallelEqualsSequential(t *testing.T) {
	g := randomGraph(1, 25, 600, 120)
	seq, err := hare.Count(g, 30, hare.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]hare.Option{
		{hare.WithWorkers(4)},
		{hare.WithWorkers(8), hare.WithDegreeThreshold(10)},
		{hare.WithWorkers(3), hare.WithStaticSchedule()},
		{},
	} {
		par, err := hare.Count(g, 30, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Matrix.Equal(&seq.Matrix) {
			t.Fatalf("parallel result differs: %v", par.Matrix.Diff(&seq.Matrix))
		}
	}
}

// TestCountReportsEffectiveThreshold pins the bugfix that Result reports
// the thrd the engine derived (the top-20 heuristic) rather than echoing
// the unset option back as 0.
func TestCountReportsEffectiveThreshold(t *testing.T) {
	g := randomGraph(3, 40, 2000, 200)
	res, err := hare.Count(g, 30, hare.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := temporal.TopKDegreeThreshold(g, 20)
	if want == 0 {
		t.Fatal("test graph too small to derive a threshold")
	}
	if res.DegreeThreshold != want {
		t.Fatalf("DegreeThreshold = %d, want auto-derived %d", res.DegreeThreshold, want)
	}
	res, err = hare.Count(g, 30, hare.WithWorkers(2), hare.WithDegreeThreshold(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.DegreeThreshold != 7 {
		t.Fatalf("explicit DegreeThreshold = %d, want 7", res.DegreeThreshold)
	}
	res, err = hare.Count(g, 30, hare.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.DegreeThreshold != 0 {
		t.Fatalf("sequential DegreeThreshold = %d, want 0", res.DegreeThreshold)
	}
}

func TestCountOnlyCategory(t *testing.T) {
	g := randomGraph(2, 15, 400, 80)
	full, err := hare.Count(g, 25, hare.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	tri, err := hare.Count(g, 25, hare.WithWorkers(2), hare.WithOnly(hare.CategoryTri))
	if err != nil {
		t.Fatal(err)
	}
	if tri.Matrix.CategoryTotal(hare.CategoryTri) != full.Matrix.CategoryTotal(hare.CategoryTri) {
		t.Error("triangle-only counts differ from full run")
	}
	if tri.Matrix.CategoryTotal(hare.CategoryStar) != 0 || tri.Matrix.CategoryTotal(hare.CategoryPair) != 0 {
		t.Error("triangle-only run leaked other categories")
	}
	pair, err := hare.Count(g, 25, hare.WithOnly(hare.CategoryPair))
	if err != nil {
		t.Fatal(err)
	}
	if pair.Matrix.CategoryTotal(hare.CategoryPair) != full.Matrix.CategoryTotal(hare.CategoryPair) {
		t.Error("pair-only counts differ from full run")
	}
	if pair.Matrix.CategoryTotal(hare.CategoryTri) != 0 {
		t.Error("pair-only run leaked triangles")
	}
}

func TestCountErrors(t *testing.T) {
	if _, err := hare.Count(nil, 10); err == nil {
		t.Error("want error for nil graph")
	}
	g := fig1Graph()
	if _, err := hare.Count(g, -1); err == nil {
		t.Error("want error for negative δ")
	}
	if _, err := hare.CountNode(nil, 0, 10); err == nil {
		t.Error("want error for nil graph in CountNode")
	}
	if _, err := hare.CountNode(g, 99, 10); err == nil {
		t.Error("want error for out-of-range node")
	}
}

func TestCountNode(t *testing.T) {
	g := fig1Graph()
	m, err := hare.CountNode(g, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.CategoryTotal(hare.CategoryStar) != 4 {
		t.Errorf("node a star profile = %d, want 4", m.CategoryTotal(hare.CategoryStar))
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	g := fig1Graph()
	path := t.TempDir() + "/g.txt"
	if err := hare.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := hare.LoadFile(path, hare.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	a, _ := hare.Count(g, 10, hare.WithWorkers(1))
	b, _ := hare.Count(g2, 10, hare.WithWorkers(1))
	if !a.Matrix.Equal(&b.Matrix) {
		t.Error("round-tripped graph counts differently")
	}
}

func TestReadEdgeList(t *testing.T) {
	g, err := hare.ReadEdgeList(strings.NewReader("0 1 5\n1 0 6\n0 1 7\n"), hare.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hare.Count(g, 10, hare.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.At(hare.MustLabel("M65")) != 1 {
		t.Fatalf("M65 = %d, want 1", res.Matrix.At(hare.MustLabel("M65")))
	}
}

func TestStatsAndLabels(t *testing.T) {
	g := fig1Graph()
	st := hare.ComputeStats(g, 5)
	if st.Edges != 12 || st.Nodes != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if len(hare.AllLabels()) != 36 {
		t.Fatal("AllLabels size wrong")
	}
	if _, err := hare.ParseLabel("M99"); err == nil {
		t.Fatal("want parse error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLabel should panic on bad input")
		}
	}()
	hare.MustLabel("bogus")
}
