package hare

import (
	"hare/internal/stream"
)

// StreamCounter is an exact online motif counter: feed it edges in
// non-decreasing time order — one at a time with Add, or fanned out over
// worker goroutines with AddBatch / Feed — and read cumulative counts at
// any point. Sliding-mode counters additionally retire instances as their
// edges expire, so WindowMatrix reports exactly the last δ window. It is
// the incremental counterpart of Count for live systems (see
// examples/streamwatch).
type StreamCounter = stream.Counter

// StreamMode selects cumulative-only or sliding-window stream counting.
type StreamMode = stream.Mode

// Stream counting modes.
const (
	// StreamCumulative counts every instance completed since the stream
	// began (the cheapest mode).
	StreamCumulative = stream.Cumulative
	// StreamSliding additionally retires instances as their first edge
	// leaves the δ window, enabling WindowMatrix.
	StreamSliding = stream.Sliding
)

// StreamOptions configures NewStreamCounter: window δ, mode, and the
// worker/shard fan-out of the batched ingest path.
type StreamOptions = stream.Options

// StreamFeedOptions configures StreamCounter.Feed (batch size and the
// per-batch snapshot hook).
type StreamFeedOptions = stream.FeedOptions

// StreamFeedBatch is Feed's default batch size.
const StreamFeedBatch = stream.DefaultFeedBatch

// StreamMinParallelBatch is the batch size below which AddBatch ingests
// sequentially (fan-out overhead would outweigh the parallel scans).
const StreamMinParallelBatch = stream.MinParallelBatch

// NewStream returns an empty cumulative online counter with window δ.
func NewStream(delta Timestamp) (*StreamCounter, error) { return stream.New(delta) }

// NewSlidingStream returns an empty sliding-window online counter with
// window δ: WindowMatrix reports the instances lying entirely in the last δ.
func NewSlidingStream(delta Timestamp) (*StreamCounter, error) { return stream.NewSliding(delta) }

// NewStreamCounter returns an empty online counter with the given options.
func NewStreamCounter(opts StreamOptions) (*StreamCounter, error) { return stream.NewCounter(opts) }
