package hare

import (
	"hare/internal/nullmodel"
	"hare/internal/stream"
)

// StreamCounter is an exact online motif counter: feed it edges in
// non-decreasing time order and read cumulative counts at any point. It is
// the incremental counterpart of Count for live systems (see
// examples/streamwatch).
type StreamCounter = stream.Counter

// NewStream returns an empty online counter with window δ.
func NewStream(delta Timestamp) (*StreamCounter, error) { return stream.New(delta) }

// NullModel selects a randomisation strategy for significance testing.
type NullModel = nullmodel.Model

// Null model constants.
const (
	// NullTimeShuffle permutes timestamps, preserving static structure.
	NullTimeShuffle = nullmodel.TimeShuffle
	// NullDegreeRewire rewires targets, preserving degree sequences and
	// timestamps.
	NullDegreeRewire = nullmodel.DegreeRewire
)

// SignificanceOptions configures Significance.
type SignificanceOptions = nullmodel.Options

// SignificanceReport holds real counts and null-model statistics; use
// ZScore to rank motifs by over/under-representation.
type SignificanceReport = nullmodel.Report

// Significance counts motifs in g and in randomised null samples, returning
// per-motif z-scores — the standard way to decide which motif counts are
// structurally meaningful rather than chance.
func Significance(g *Graph, delta Timestamp, opts SignificanceOptions) (*SignificanceReport, error) {
	return nullmodel.Significance(g, delta, opts)
}

// NullSample draws one randomised reference graph under the given model.
func NullSample(g *Graph, model NullModel, seed int64) (*Graph, error) {
	return nullmodel.Sample(g, model, seed)
}
