package hare

import (
	"hare/internal/query"
	"hare/internal/server"
)

// MotifSpec is a validated, canonicalized temporal-motif spec: an ordered,
// directed 3-edge pattern over at most four node variables, counted under
// the same δ-window semantics as every counter in this package (edge
// listing order = temporal order, injective node bindings, span ≤ δ).
// Obtain one from ParseSpec or ParseSpecJSON; isomorphic specs (equal up to
// variable renaming) canonicalize to the same value, and Canonical() is the
// serving tier's cache key.
type MotifSpec = query.Spec

// ParseSpec parses the compact text form of a motif spec — three "x->y"
// edge terms in temporal order, separated by ";" or "," (e.g. the temporal
// triangle "a->b; b->c; c->a"). Rejections carry the typed errors of
// internal/query (syntax, edge count, self-loop, node arity, connectivity),
// matched with errors.Is.
func ParseSpec(text string) (*MotifSpec, error) { return query.ParseSpec(text) }

// ParseSpecJSON parses the JSON spec form
// {"edges":[{"src":"a","dst":"b"},...]} with the same validation and
// canonicalization as ParseSpec.
func ParseSpecJSON(data []byte) (*MotifSpec, error) { return query.ParseSpecJSON(data) }

// QueryMotif is the query kind served by /v1/query.
const QueryMotif = server.KindQuery

// CountMotif exactly counts the instances of a compiled motif spec in g
// within δ: the generalized form of CountStar4/CountPath4 that serves any
// 3-edge shape — temporal triangles, cycles, ping-pong multi-edges —
// without per-shape code. The spec compiles to a counting plan over the
// same columnar machinery (a 4-node star spec delegates to the hand-tuned
// star counter; everything else runs the generic edge-pivot scan), and
// scheduling follows the shared knobs: WithWorkers and WithDegreeThreshold
// apply, and the count is bit-identical at any setting.
func CountMotif(g *Graph, spec *MotifSpec, delta Timestamp, opts ...Option) (uint64, error) {
	if g == nil {
		return 0, errNilGraph
	}
	if spec == nil {
		return 0, temporalError("nil spec")
	}
	if delta < 0 {
		return 0, errNegativeDelta(delta)
	}
	return query.Compile(spec).Execute(g, delta, higherOptions(opts)), nil
}
