// Social pulse: star and pair motifs distinguish how accounts communicate —
// the paper's motivating use case ("communication motifs ... understand how
// human communication unfolds"). A broadcaster fires outgoing bursts
// (all-out star motifs); an audience magnet accumulates incoming bursts; a
// conversationalist alternates directions with a partner (pair motifs).
//
// This example plants one account of each style inside an organic messaging
// graph and shows that per-node motif profiles identify all three, while the
// organic hubs read as mixed traffic.
//
//	go run ./examples/socialpulse
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"hare"
	"hare/internal/gen"
)

const delta = 600 // ten minutes

func main() {
	cfg := gen.Config{
		Name: "sms-like", Nodes: 8000, Edges: 120_000, TimeSpan: 3_000_000,
		ZipfS: 1.7, ReplyProb: 0.4, RepeatProb: 0.15, TriadProb: 0.02,
		BurstLen: 5, Seed: 21,
	}
	base, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Plant three stylised accounts.
	r := rand.New(rand.NewSource(3))
	edges := append([]hare.Edge(nil), base.Edges()...)
	_, maxT, _ := base.TimeSpan()
	broadcaster := hare.NodeID(cfg.Nodes)
	magnet := hare.NodeID(cfg.Nodes + 1)
	talker := hare.NodeID(cfg.Nodes + 2)
	partner := hare.NodeID(cfg.Nodes + 3)
	rnd := func(n int64) hare.Timestamp { return hare.Timestamp(r.Int63n(n)) }
	for burst := 0; burst < 40; burst++ {
		t0 := rnd(int64(maxT))
		// Star motifs need a repeated neighbor within the window, so each
		// burst concentrates on two favourite counterparties.
		favA := hare.NodeID(r.Intn(cfg.Nodes))
		favB := hare.NodeID(r.Intn(cfg.Nodes))
		for k := 0; k < 4; k++ {
			tgt, src := favA, favA
			if k == 3 {
				tgt, src = favB, favB
			}
			edges = append(edges,
				hare.Edge{From: broadcaster, To: tgt, Time: t0 + hare.Timestamp(k*30)},
				hare.Edge{From: src, To: magnet, Time: t0 + hare.Timestamp(k*30)},
			)
			if k%2 == 0 {
				edges = append(edges, hare.Edge{From: talker, To: partner, Time: t0 + hare.Timestamp(k*40)})
			} else {
				edges = append(edges, hare.Edge{From: partner, To: talker, Time: t0 + hare.Timestamp(k*40)})
			}
		}
	}
	g := hare.FromEdges(edges)
	fmt.Printf("message graph: %d users, %d messages (3 planted styles)\n\n",
		g.NumNodes(), g.NumEdges())

	// Profile the busiest organic hubs plus the planted accounts.
	type row struct {
		node  hare.NodeID
		label string
	}
	var rows []row
	type hub struct {
		node   hare.NodeID
		degree int
	}
	hubs := make([]hub, 0, g.NumNodes())
	for u := 0; u < cfg.Nodes; u++ {
		if d := g.Degree(hare.NodeID(u)); d > 0 {
			hubs = append(hubs, hub{hare.NodeID(u), d})
		}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].degree > hubs[j].degree })
	for _, h := range hubs[:5] {
		rows = append(rows, row{h.node, "organic hub"})
	}
	rows = append(rows,
		row{broadcaster, "planted broadcaster"},
		row{magnet, "planted magnet"},
		row{talker, "planted talker"},
	)

	fmt.Printf("%8s %8s %10s %10s %10s %8s  %-19s %s\n",
		"user", "degree", "out-stars", "in-stars", "pairs", "p-ratio", "truth", "classified")
	agree := 0
	for _, rw := range rows {
		m, err := hare.CountNode(g, rw.node, delta)
		if err != nil {
			log.Fatal(err)
		}
		outStars := m.At(hare.MustLabel("M13")) + m.At(hare.MustLabel("M33")) + m.At(hare.MustLabel("M53"))
		inStars := m.At(hare.MustLabel("M22")) + m.At(hare.MustLabel("M42")) + m.At(hare.MustLabel("M62"))
		stars := m.CategoryTotal(hare.CategoryStar)
		pairs := m.CategoryTotal(hare.CategoryPair)
		pRatio := float64(pairs) / float64(stars+pairs+1)
		style := classify(outStars, inStars, stars, pRatio)
		fmt.Printf("%8d %8d %10d %10d %10d %8.3f  %-19s %s\n",
			rw.node, g.Degree(rw.node), outStars, inStars, pairs, pRatio, rw.label, style)
		switch {
		case rw.label == "planted broadcaster" && style == "broadcaster",
			rw.label == "planted magnet" && style == "audience magnet",
			rw.label == "planted talker" && style == "conversationalist",
			rw.label == "organic hub" && style == "mixed":
			agree++
		}
	}
	fmt.Printf("\n%d/%d profiles classified as planted/expected\n", agree, len(rows))
	if agree < len(rows)-1 {
		log.Fatal("motif profiling failed to recover the planted styles")
	}
}

// classify derives a communication style from a node's motif profile.
func classify(outStars, inStars, stars uint64, pairRatio float64) string {
	switch {
	case pairRatio > 0.6:
		return "conversationalist"
	case stars > 0 && outStars > 4*(inStars+1):
		return "broadcaster"
	case stars > 0 && inStars > 4*(outStars+1):
		return "audience magnet"
	default:
		return "mixed"
	}
}
