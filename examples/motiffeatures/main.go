// Motif features: per-node motif count vectors are structural embeddings
// (the paper's network-representation-learning motivation). This example
// builds a graph with three behavioural populations — broadcasters,
// conversationalists and triangle-forming cliques — computes each node's
// 36-dimensional motif vector, and shows that simple cosine similarity on
// those vectors separates the populations without any labels.
//
//	go run ./examples/motiffeatures
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hare"
)

const (
	perGroup = 40
	delta    = 500
)

func main() {
	g, roles := buildPopulations()
	fmt.Printf("graph: %d nodes, %d edges; 3 behavioural populations × %d members\n\n",
		g.NumNodes(), g.NumEdges(), perGroup)

	// 36-dimensional motif vector per node (log-damped).
	vecs := make(map[hare.NodeID][]float64)
	for u := range roles {
		m, err := hare.CountNode(g, u, delta)
		if err != nil {
			log.Fatal(err)
		}
		v := make([]float64, 0, 36)
		for _, l := range hare.AllLabels() {
			v = append(v, math.Log1p(float64(m.At(l))))
		}
		vecs[u] = v
	}

	// For every node: does its nearest neighbour (cosine) share its role?
	correct, total := 0, 0
	agreeByRole := map[string][2]int{}
	for u, vu := range vecs {
		bestSim, bestNode := -2.0, hare.NodeID(-1)
		for w, vw := range vecs {
			if w == u {
				continue
			}
			if s := cosine(vu, vw); s > bestSim {
				bestSim, bestNode = s, w
			}
		}
		if bestNode < 0 {
			continue
		}
		total++
		pair := agreeByRole[roles[u]]
		pair[1]++
		if roles[u] == roles[bestNode] {
			correct++
			pair[0]++
		}
		agreeByRole[roles[u]] = pair
	}
	fmt.Printf("nearest-neighbour role agreement: %d/%d (%.1f%%)\n",
		correct, total, 100*float64(correct)/float64(total))
	for _, role := range []string{"broadcaster", "conversationalist", "clique"} {
		p := agreeByRole[role]
		fmt.Printf("  %-18s %d/%d\n", role, p[0], p[1])
	}
	if float64(correct)/float64(total) < 0.7 {
		log.Fatal("motif vectors failed to separate the populations")
	}
	fmt.Println("\nmotif vectors alone recover behavioural roles — the structure-preserving")
	fmt.Println("property that makes exact counts preferable to sampling for embeddings.")
}

// buildPopulations wires three behaviours onto disjoint node groups over a
// shared pool of peripheral nodes.
func buildPopulations() (*hare.Graph, map[hare.NodeID]string) {
	r := rand.New(rand.NewSource(5))
	roles := make(map[hare.NodeID]string)
	b := hare.NewBuilder(0)
	var t hare.Timestamp
	next := func() hare.Timestamp { t += hare.Timestamp(1 + r.Intn(20)); return t }
	peripheralBase := hare.NodeID(3 * perGroup)
	peripheral := func() hare.NodeID { return peripheralBase + hare.NodeID(r.Intn(500)) }

	for i := 0; i < perGroup; i++ {
		// Broadcasters: bursts of outgoing edges to many targets.
		u := hare.NodeID(i)
		roles[u] = "broadcaster"
		for burst := 0; burst < 6; burst++ {
			t0 := next()
			for k := 0; k < 5; k++ {
				_ = b.AddEdge(u, peripheral(), t0+hare.Timestamp(k*7))
			}
		}
		// Conversationalists: long back-and-forth pair exchanges.
		v := hare.NodeID(perGroup + i)
		roles[v] = "conversationalist"
		partner := peripheral()
		for burst := 0; burst < 6; burst++ {
			t0 := next()
			for k := 0; k < 5; k++ {
				if k%2 == 0 {
					_ = b.AddEdge(v, partner, t0+hare.Timestamp(k*9))
				} else {
					_ = b.AddEdge(partner, v, t0+hare.Timestamp(k*9))
				}
			}
		}
		// Clique members: repeated fast triangles with two peers.
		w := hare.NodeID(2*perGroup + i)
		roles[w] = "clique"
		p1 := hare.NodeID(2*perGroup + (i+1)%perGroup)
		p2 := hare.NodeID(2*perGroup + (i+2)%perGroup)
		for burst := 0; burst < 6; burst++ {
			t0 := next()
			_ = b.AddEdge(w, p1, t0)
			_ = b.AddEdge(p1, p2, t0+11)
			_ = b.AddEdge(p2, w, t0+23)
		}
	}
	return b.Build(), roles
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
