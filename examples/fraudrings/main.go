// Fraud rings: temporal cycles (motif M26 — funds moving a→b→c→a within a
// short window) are a classic money-laundering signal in transaction
// networks. This example builds a Bitcoin-OTC-like synthetic transaction
// graph, plants laundering rings on otherwise quiet accounts, and flags
// accounts by their *cycle concentration* — the share of their motif
// activity that is cyclic. Organic hubs participate in some cycles amid
// mountains of star traffic; ring mules do almost nothing but cycle.
//
// It also cross-checks the graph-wide exact cycle count of HARE against the
// dedicated 2SCENT cycle enumerator.
//
//	go run ./examples/fraudrings
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"hare"
	"hare/internal/baseline/twoscent"
	"hare/internal/gen"
)

const (
	delta     = 3600 // one hour: rings cycle fast
	rings     = 40   // planted 3-party laundering loops
	ringNodes = 24   // mule accounts involved in rings
)

func main() {
	// Organic background with transaction-network character.
	cfg := gen.Config{
		Name: "otc-like", Nodes: 4000, Edges: 120_000, TimeSpan: 2_000_000,
		ZipfS: 1.8, ReplyProb: 0.05, RepeatProb: 0.05, TriadProb: 0.04,
		BurstLen: 3, Seed: 7,
	}
	base, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Plant rings among dedicated mule accounts (IDs cfg.Nodes ..).
	r := rand.New(rand.NewSource(99))
	edges := append([]hare.Edge(nil), base.Edges()...)
	_, maxT, _ := base.TimeSpan()
	mule := func() hare.NodeID { return hare.NodeID(cfg.Nodes + r.Intn(ringNodes)) }
	for i := 0; i < rings; i++ {
		a, b, c := mule(), mule(), mule()
		if a == b || b == c || a == c {
			continue
		}
		t0 := hare.Timestamp(r.Int63n(int64(maxT)))
		edges = append(edges,
			hare.Edge{From: a, To: b, Time: t0},
			hare.Edge{From: b, To: c, Time: t0 + hare.Timestamp(60+r.Int63n(600))},
			hare.Edge{From: c, To: a, Time: t0 + hare.Timestamp(900+r.Int63n(1200))},
		)
	}
	g := hare.FromEdges(edges)
	fmt.Printf("transaction graph: %d accounts, %d transfers, %d planted ring edges\n",
		g.NumNodes(), g.NumEdges(), g.NumEdges()-base.NumEdges())

	// Graph-wide exact counts, cross-checked against 2SCENT.
	t0 := time.Now()
	res, err := hare.Count(g, delta)
	if err != nil {
		log.Fatal(err)
	}
	cycles := res.Matrix.At(hare.MustLabel("M26"))
	fmt.Printf("HARE:   %d temporal cycles (M26) among %d total motifs in %v\n",
		cycles, res.Matrix.Total(), time.Since(t0))
	t0 = time.Now()
	ref := twoscent.CountCycles(g, delta)
	fmt.Printf("2SCENT: %d temporal cycles in %v (cycle-only enumerator)\n", ref, time.Since(t0))
	if cycles != ref {
		log.Fatalf("cycle counts disagree: %d vs %d", cycles, ref)
	}

	// Per-account screening: cycle concentration = cycles / total motifs.
	type suspect struct {
		node   hare.NodeID
		cycles uint64
		total  uint64
		score  float64
	}
	var scored []suspect
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(hare.NodeID(u)) < 3 {
			continue
		}
		m, err := hare.CountNode(g, hare.NodeID(u), delta)
		if err != nil {
			log.Fatal(err)
		}
		cyc := m.At(hare.MustLabel("M26"))
		if cyc == 0 {
			continue
		}
		tot := m.Total()
		scored = append(scored, suspect{hare.NodeID(u), cyc, tot, float64(cyc) / float64(tot)})
	}
	sort.Slice(scored, func(i, j int) bool { return scored[i].score > scored[j].score })

	fmt.Printf("\ntop accounts by cycle concentration (mules are IDs %d..%d):\n",
		cfg.Nodes, cfg.Nodes+ringNodes-1)
	fmt.Printf("%8s %8s %10s %8s  %s\n", "account", "cycles", "motifs", "score", "verdict")
	hits := 0
	k := 15
	if len(scored) < k {
		k = len(scored)
	}
	for _, s := range scored[:k] {
		verdict := "organic"
		if int(s.node) >= cfg.Nodes {
			verdict = "PLANTED MULE"
			hits++
		}
		fmt.Printf("%8d %8d %10d %8.3f  %s\n", s.node, s.cycles, s.total, s.score, verdict)
	}
	fmt.Printf("\n%d of the top %d flagged accounts are planted mules\n", hits, k)
	if hits < k*2/3 {
		log.Fatal("cycle-concentration screening failed to surface the rings")
	}
}
