// Stream watch: exact online motif counting over a live edge stream — the
// "frequently updated dynamic systems" the paper's introduction motivates.
// A transaction stream is replayed in batches through a sliding-window
// hare.StreamCounter (parallel ingest, per-worker counters merged — the
// HARE discipline applied online); the detector watches the *windowed*
// temporal-cycle count (M26, the laundering signature) and raises an alarm
// during an injected laundering burst. Sliding-window counts make the
// detector trivially self-resetting: old cycles retire on their own instead
// of having to be differenced away from cumulative totals.
//
//	go run ./examples/streamwatch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"hare"
	"hare/internal/gen"
)

const (
	delta      = 1800 // motif window: 30 minutes
	bucketSize = 50_000
	burstStart = 1_000_000 // injected burst covers this time range
	burstEnd   = 1_100_000
)

func main() {
	// Background transaction stream.
	cfg := gen.Config{
		Name: "txn-stream", Nodes: 3000, Edges: 90_000, TimeSpan: 2_000_000,
		ZipfS: 1.6, ReplyProb: 0.05, RepeatProb: 0.05, TriadProb: 0,
		BurstLen: 3, Seed: 17,
	}
	base, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Payment networks are largely hierarchical (consumers pay merchants,
	// merchants pay processors): orient background transfers up the ID
	// order, which makes directed cycles — the laundering signature —
	// organically impossible. Only the injected rings can close cycles.
	baseEdges := append([]hare.Edge(nil), base.Edges()...)
	for i, e := range baseEdges {
		if e.From > e.To {
			baseEdges[i].From, baseEdges[i].To = e.To, e.From
		}
	}

	// Inject a laundering burst: rapid 3-cycles among a small clique inside
	// a known time range.
	r := rand.New(rand.NewSource(5))
	edges := baseEdges
	for i := 0; i < 150; i++ {
		a := hare.NodeID(cfg.Nodes + r.Intn(8))
		b := hare.NodeID(cfg.Nodes + r.Intn(8))
		c := hare.NodeID(cfg.Nodes + r.Intn(8))
		if a == b || b == c || a == c {
			continue
		}
		t0 := burstStart + r.Int63n(burstEnd-burstStart)
		edges = append(edges,
			hare.Edge{From: a, To: b, Time: t0},
			hare.Edge{From: b, To: c, Time: t0 + r.Int63n(300)},
			hare.Edge{From: c, To: a, Time: t0 + 400 + r.Int63n(600)},
		)
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })

	sc, err := hare.NewStreamCounter(hare.StreamOptions{
		Delta: delta, Mode: hare.StreamSliding, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	m26 := hare.MustLabel("M26")

	fmt.Printf("replaying %d transactions through the sliding-window counter (δ=%ds, batched ingest)...\n\n", len(edges), delta)
	fmt.Printf("%14s %12s %14s %10s\n", "time bucket", "edges", "cycles in δ", "status")

	start := time.Now()
	alarms := 0
	alarmInBurst := 0
	var rates []float64

	// Replay bucket by bucket: each time bucket is one AddBatch call, then
	// one sliding-window reading — exactly how a dashboard would poll.
	nextBucket := edges[0].Time + bucketSize
	lo := 0
	for lo < len(edges) {
		hi := lo
		for hi < len(edges) && edges[hi].Time < nextBucket {
			hi++
		}
		if err := sc.AddBatch(edges[lo:hi]); err != nil {
			log.Fatal(err)
		}
		if hi > lo { // skip empty buckets: no reading to take
			w, err := sc.WindowMatrix()
			if err != nil {
				log.Fatal(err)
			}
			rate := float64(w.At(m26))
			status := ""
			// Alarm when the in-window count exceeds 4× the trailing median
			// plus one. The window gauge is an instantaneous reading (only
			// rings whose first edge is still within δ count), so its
			// baseline sits at zero on this structurally cycle-free
			// background and even a couple of live rings is a strong signal.
			if med := median(rates); len(rates) >= 5 && rate > 4*med+1 {
				status = "ALARM: cycle burst"
				alarms++
				if nextBucket-bucketSize >= burstStart-delta && nextBucket <= burstEnd+2*delta {
					alarmInBurst++
				}
			}
			fmt.Printf("%14d %12d %14d %10s\n", nextBucket, hi-lo, w.At(m26), status)
			rates = append(rates, rate)
		}
		lo = hi
		nextBucket += bucketSize
	}
	elapsed := time.Since(start)

	final := sc.Matrix()
	fmt.Printf("\nprocessed %d edges in %v (%.0f edges/s), %d total motifs\n",
		sc.Edges(), elapsed, float64(sc.Edges())/elapsed.Seconds(), final.Total())
	fmt.Printf("alarms raised: %d (%d inside the injected burst window)\n", alarms, alarmInBurst)

	// Verify the online result against a batch recount.
	batch, err := hare.Count(hare.FromEdges(edges), delta)
	if err != nil {
		log.Fatal(err)
	}
	if !final.Equal(&batch.Matrix) {
		log.Fatalf("online and batch counts disagree: %v", final.Diff(&batch.Matrix))
	}
	fmt.Println("online counts verified exactly against batch HARE recount")
	if alarmInBurst == 0 {
		log.Fatal("detector missed the injected burst")
	}
	// The stream has been quiet since the burst: draining the window must
	// leave no live cycles.
	if err := sc.Advance(edges[len(edges)-1].Time + 10*delta); err != nil {
		log.Fatal(err)
	}
	w, err := sc.WindowMatrix()
	if err != nil {
		log.Fatal(err)
	}
	if w.Total() != 0 {
		log.Fatalf("drained window still holds %d instances", w.Total())
	}
	fmt.Println("window drained cleanly after the stream went quiet")
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
