// Command loadgen drives a running hared with concurrent query traffic
// and reports throughput, latency percentiles and the server's cache
// behaviour — a minimal load harness for sizing a deployment:
//
//	hared -listen :8315 -gen collegemsg:0.2 &
//	go run ./examples/loadgen -url http://localhost:8315 -dataset collegemsg:0.2 \
//	    -concurrency 16 -requests 2000
//
// By default every request repeats one query (steady-state cache-hit
// traffic). -spread N rotates through N distinct δ values instead, forcing
// a cold compute per distinct value — the worst case the admission
// controller exists for.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		base        = flag.String("url", "http://localhost:8315", "hared base URL")
		dataset     = flag.String("dataset", "", "dataset name (required)")
		delta       = flag.Int64("delta", 600, "base δ in seconds")
		endpoint    = flag.String("endpoint", "count", "query kind: count, star4, path4 or sig")
		concurrency = flag.Int("concurrency", 8, "concurrent clients")
		requests    = flag.Int("requests", 1000, "total requests to fire")
		spread      = flag.Int("spread", 1, "rotate through N distinct δ values (1 = one hot key)")
	)
	flag.Parse()
	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -dataset is required")
		flag.Usage()
		os.Exit(2)
	}
	if *concurrency < 1 || *requests < 1 || *spread < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -concurrency, -requests and -spread must be >= 1")
		os.Exit(2)
	}
	switch *endpoint {
	case "count", "star4", "path4", "sig":
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -endpoint %q\n", *endpoint)
		os.Exit(2)
	}

	hitsBefore, missesBefore := scrapeCache(*base)

	urlFor := func(i int) string {
		d := *delta + int64(i%*spread)
		return fmt.Sprintf("%s/v1/%s?dataset=%s&delta=%d", *base, *endpoint, *dataset, d)
	}
	latencies := make([]time.Duration, *requests)
	var next, failures atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				t0 := time.Now()
				resp, err := http.Get(urlFor(i))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok := make([]time.Duration, 0, *requests)
	for _, l := range latencies {
		if l > 0 {
			ok = append(ok, l)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	pct := func(p float64) time.Duration {
		if len(ok) == 0 {
			return 0
		}
		i := int(p * float64(len(ok)-1))
		return ok[i]
	}
	fmt.Printf("%d requests (%d failed), %d clients, spread %d, in %v\n",
		*requests, failures.Load(), *concurrency, *spread, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f req/s\n", float64(len(ok))/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))

	hitsAfter, missesAfter := scrapeCache(*base)
	if hitsAfter >= hitsBefore && missesAfter >= missesBefore {
		dh, dm := hitsAfter-hitsBefore, missesAfter-missesBefore
		if dh+dm > 0 {
			fmt.Printf("server cache during run: %d hits, %d misses (%.1f%% hit rate)\n",
				dh, dm, 100*float64(dh)/float64(dh+dm))
		}
	}
}

var cacheRe = regexp.MustCompile(`hared_cache_(hits|misses)_total (\d+)`)

// scrapeCache reads the hit/miss counters from /metrics; zeros when the
// endpoint is unreachable (the run report simply omits the cache line).
func scrapeCache(base string) (hits, misses int64) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0
	}
	for _, m := range cacheRe.FindAllStringSubmatch(string(body), -1) {
		v, _ := strconv.ParseInt(m[2], 10, 64)
		if m[1] == "hits" {
			hits = v
		} else {
			misses = v
		}
	}
	return hits, misses
}
